// Package phloem is a reproduction of "Phloem: Automatic Acceleration of
// Irregular Applications with Fine-Grain Pipeline Parallelism" (HPCA 2023):
// a compiler that automatically transforms serial C-subset kernels into
// fine-grain pipeline-parallel programs for a Pipette-style architecture
// (SMT out-of-order cores with architecturally visible queues, reference
// accelerators, and control-value handlers), together with a cycle-level
// simulator of that architecture.
//
// The top-level API wraps the compiler driver and simulator:
//
//	result, err := phloem.Compile(source, phloem.Options{})
//	stats, inst, err := phloem.Run(result.Pipeline, phloem.Bindings{...})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package phloem

import (
	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
)

// Options configures a compilation. The zero value requests the static
// compilation flow with all passes on a 1-core Table III machine.
type Options = core.Options

// Result is a compiled pipeline.
type Result = core.Result

// Budget bounds one candidate measurement in the autotune search; apply it
// to the instantiated machine with Budget.Apply.
type Budget = core.Budget

// TrainFunc measures a candidate pipeline on one training input under a
// budget, returning its cycle count (or an error to skip the candidate).
type TrainFunc = core.TrainFunc

// CandidateSkip records one candidate the autotuner dropped and why (see
// Result.Skips).
type CandidateSkip = core.CandidateSkip

// Pipeline is the compiler's output: stages, queues, and reference
// accelerators.
type Pipeline = pipeline.Pipeline

// Bindings supplies the concrete arrays and scalars for a run.
type Bindings = pipeline.Bindings

// Instance is an instantiated pipeline whose arrays hold results after Run.
type Instance = pipeline.Instance

// Stats is the simulator's timing, stall-breakdown, and energy report.
type Stats = sim.Stats

// MachineConfig describes the simulated Pipette machine.
type MachineConfig = arch.Config

// Static and Autotune select the compilation flow of Fig. 8.
const (
	Static   = core.Static
	Autotune = core.Autotune
)

// DefaultOptions returns an all-passes static compilation for the paper's
// Table III machine.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultMachine returns the Table III configuration with the given core count.
func DefaultMachine(cores int) MachineConfig { return arch.DefaultConfig(cores) }

// Compile parses, checks, and pipelines a serial kernel written in the C
// subset (see internal/source for the language).
func Compile(source string, opt Options) (*Result, error) {
	return core.CompileSource(source, opt)
}

// Serial wraps a compiled program as a single-thread baseline; compile with
// Compile first and pass Result.Prog.
func Serial(res *Result) *Pipeline { return pipeline.NewSerial(res.Prog) }

// Run instantiates the pipeline on a machine and simulates it end to end.
// Functional results are read back through the returned Instance's Arrays.
func Run(p *Pipeline, cfg MachineConfig, b Bindings) (*Stats, *Instance, error) {
	inst, err := pipeline.Instantiate(p, cfg, b)
	if err != nil {
		return nil, nil, err
	}
	st, err := inst.Run()
	if err != nil {
		return nil, nil, err
	}
	return st, inst, nil
}
