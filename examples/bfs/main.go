// BFS end to end: compile the paper's breadth-first search kernel with the
// profile-guided flow, then compare serial, Phloem, and the hand-optimized
// Pipette-style pipeline on a road-network-like graph.
package main

import (
	"fmt"
	"log"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func main() {
	g := graph.Grid("road", 120, 120, 7)
	fmt.Println("input:", g)

	serialProg, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		log.Fatal(err)
	}

	// Profile-guided compilation: candidate pipelines are measured on the
	// training inputs (Fig. 8's autotuning flow).
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	for _, tr := range graph.TrainingInputs() {
		tg := tr.Graph
		opt.Training = append(opt.Training, func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
			inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), workloads.BFSBindings(tg, 0))
			if err != nil {
				return 0, err
			}
			b.Apply(inst.Machine)
			st, err := inst.Run()
			if err != nil {
				return 0, err
			}
			if err := workloads.BFSVerify(inst, tg, 0); err != nil {
				return 0, err
			}
			return st.Cycles, nil
		})
	}
	res, err := core.Compile(serialProg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d candidate pipelines\n%s", res.Searched, res.Pipeline.Describe())

	run := func(name string, p *pipeline.Pipeline) uint64 {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		st, err := inst.Run()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-8s %10d cycles  breakdown: %s", name, st.Cycles, st.String())
		return st.Cycles
	}

	sc := run("serial", pipeline.NewSerial(serialProg))
	pc := run("phloem", res.Pipeline)
	manual, err := workloads.ManualBFS()
	if err != nil {
		log.Fatal(err)
	}
	mc := run("manual", manual)

	fmt.Printf("\nphloem speedup: %.2fx   manual speedup: %.2fx\n",
		float64(sc)/float64(pc), float64(sc)/float64(mc))
}
