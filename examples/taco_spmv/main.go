// Taco integration (Sec. IV-D): a tensor expression is compiled to a CSR
// kernel by the mini-Taco frontend, then pipelined by Phloem, showing the
// DSL-compiler composition the paper demonstrates.
package main

import (
	"fmt"
	"log"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

func main() {
	k := taco.SpMV
	fmt.Printf("tensor expression: %s\n", taco.Expression(k))

	src, err := taco.Emit(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTaco-emitted kernel:\n%s\n", src)

	serialProg, err := workloads.CompileSerial(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Compile(serialProg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Pipeline.Describe())

	m := matrix.Scattered("mac-econ-like", 80000, 5, 52)
	fmt.Println("\ninput:", m)
	run := func(name string, p *pipeline.Pipeline) uint64 {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), taco.Bindings(k, m, 7))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		st, err := inst.Run()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := taco.Verify(k, m, 7, inst); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-8s %10d cycles (IPC %.2f)\n", name, st.Cycles, st.IPC())
		return st.Cycles
	}
	sc := run("serial", pipeline.NewSerial(serialProg))
	pc := run("phloem", res.Pipeline)
	fmt.Printf("speedup: %.2fx\n", float64(sc)/float64(pc))
}
