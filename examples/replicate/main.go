// Replication (Sec. IV-C): a compiled BFS pipeline is replicated over four
// cores, each replica solving an independent instance of a shared graph,
// and compared against running the batch serially on one thread.
package main

import (
	"fmt"
	"log"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

const replicas = 4

func main() {
	g := graph.Grid("road", 90, 90, 7)
	fmt.Println("input:", g)

	serialProg, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Compile(serialProg, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// One instance, one thread.
	inst, err := pipeline.Instantiate(pipeline.NewSerial(serialProg),
		arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
	if err != nil {
		log.Fatal(err)
	}
	ser, err := inst.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := workloads.BFSVerify(inst, g, 0); err != nil {
		log.Fatal(err)
	}
	batchSerial := ser.Cycles * replicas
	fmt.Printf("serial: %d cycles per instance (%d for the batch of %d)\n",
		ser.Cycles, batchSerial, replicas)

	// Replicate: the graph (nodes/edges) is shared; distances and fringes
	// are private per replica (the paper's replicate_arguments()).
	repl, err := pipeline.Replicate(res.Pipeline, replicas,
		[]string{"nodes", "edges"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repl.Describe())

	base := workloads.BFSBindings(g, 0)
	b := pipeline.Bindings{
		Ints:    map[string][]int64{"nodes": g.Nodes, "edges": g.Edges},
		Scalars: base.Scalars,
	}
	for r := 0; r < replicas; r++ {
		for _, name := range []string{"distances", "cur_fringe", "next_fringe"} {
			b.Ints[fmt.Sprintf("r%d.%s", r, name)] = append([]int64(nil), base.Ints[name]...)
		}
	}
	rinst, err := pipeline.Instantiate(repl, arch.DefaultConfig(replicas), b)
	if err != nil {
		log.Fatal(err)
	}
	rst, err := rinst.Run()
	if err != nil {
		log.Fatal(err)
	}
	want := workloads.BFSRef(g, 0)
	for r := 0; r < replicas; r++ {
		got := rinst.Arrays[fmt.Sprintf("r%d.distances", r)].Ints()
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("replica %d: distances[%d] = %d, want %d", r, i, got[i], want[i])
			}
		}
	}
	fmt.Printf("\nreplicated: %d cycles for the batch\n", rst.Cycles)
	fmt.Printf("throughput speedup over 1-thread serial: %.2fx\n",
		float64(batchSerial)/float64(rst.Cycles))
}
