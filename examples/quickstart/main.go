// Quickstart: compile the paper's introductory snippet
//
//	for (i = 0; i < N; i++)
//	    if (A[i] > 0) work(B[A[i]]);
//
// into a fine-grain pipeline and compare it with serial execution on the
// simulated Pipette machine.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"phloem"
)

const kernel = `
#pragma phloem
void intro(int* restrict A, int* restrict B, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int a = A[i];
    if (a > 0) {
      int b = B[a];
      int w = ((b + 3) * 5 + 1) & 65535;
      acc = acc + w;
    }
  }
  out[0] = acc;
}
`

func main() {
	// Compile: the cost model finds the decoupling points, the passes add
	// queues, recompute cheap values, offload loads to reference
	// accelerators, and switch loop control to control values.
	res, err := phloem.Compile(kernel, phloem.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Pipeline.Describe())

	// Build an unpredictable input: A alternates between negatives and
	// random indices into B.
	const n = 20000
	rng := rand.New(rand.NewSource(42))
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		if rng.Intn(2) == 0 {
			a[i] = -1
		} else {
			a[i] = int64(rng.Intn(n))
		}
		b[i] = int64(rng.Intn(1 << 16))
	}
	bind := func() phloem.Bindings {
		return phloem.Bindings{
			Ints: map[string][]int64{
				"A":   append([]int64(nil), a...),
				"B":   append([]int64(nil), b...),
				"out": make([]int64, 1),
			},
			Scalars: map[string]int64{"n": n},
		}
	}

	machine := phloem.DefaultMachine(1)
	serStats, serInst, err := phloem.Run(phloem.Serial(res), machine, bind())
	if err != nil {
		log.Fatal(err)
	}
	pipeStats, pipeInst, err := phloem.Run(res.Pipeline, machine, bind())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nserial:   %d cycles (IPC %.2f)\n", serStats.Cycles, serStats.IPC())
	fmt.Printf("pipeline: %d cycles (IPC %.2f)\n", pipeStats.Cycles, pipeStats.IPC())
	fmt.Printf("speedup:  %.2fx\n", float64(serStats.Cycles)/float64(pipeStats.Cycles))
	if serInst.Arrays["out"].Ints()[0] != pipeInst.Arrays["out"].Ints()[0] {
		log.Fatal("results differ!")
	}
	fmt.Printf("results match: out[0] = %d\n", pipeInst.Arrays["out"].Ints()[0])
}
