// Package-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation, so `go test -bench=.` regenerates the whole study.
// Each benchmark prints its table once (the work is cycle-accurate
// simulation; wall-clock time is not the interesting output).
package phloem_test

import (
	"os"
	"sync"
	"testing"

	"phloem/internal/bench"
	"phloem/internal/workloads"
)

func benchCfg(b *testing.B) bench.Config {
	return bench.Config{Scale: workloads.ScaleTest, Out: os.Stdout}
}

// suiteOnce shares the Fig. 9/10/11 measurement across the three benchmarks.
var (
	suiteOnce    sync.Once
	suiteResults []*bench.BenchResult
	suiteErr     error
)

func suite(b *testing.B) []*bench.BenchResult {
	suiteOnce.Do(func() {
		cfg := bench.Config{Scale: workloads.ScaleTest, Out: os.Stdout}
		for _, bm := range workloads.Benchmarks(cfg.Scale) {
			r, err := bench.RunBenchmark(cfg, bm)
			if err != nil {
				suiteErr = err
				return
			}
			suiteResults = append(suiteResults, r)
		}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteResults
}

func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table3(benchCfg(b))
		break
	}
}

func BenchmarkTable4Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4(benchCfg(b))
		break
	}
}

func BenchmarkTable5Matrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table5(benchCfg(b))
		break
	}
}

func BenchmarkFig6PassAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig6(benchCfg(b)); err != nil {
			b.Fatal(err)
		}
		break
	}
}

func BenchmarkFig9Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig9(benchCfg(b), suite(b))
		break
	}
}

func BenchmarkFig10CycleBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig10(benchCfg(b), suite(b))
		break
	}
}

func BenchmarkFig11Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig11(benchCfg(b), suite(b))
		break
	}
}

func BenchmarkFig12Taco(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig12(benchCfg(b)); err != nil {
			b.Fatal(err)
		}
		break
	}
}

func BenchmarkFig13StageSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig13(benchCfg(b)); err != nil {
			b.Fatal(err)
		}
		break
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablations(benchCfg(b)); err != nil {
			b.Fatal(err)
		}
		break
	}
}

func BenchmarkFig14Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig14(benchCfg(b)); err != nil {
			b.Fatal(err)
		}
		break
	}
}
