// Command tacoc emits the C-subset kernel for one of the supported sparse
// tensor expressions, optionally compiling it through Phloem (Sec. IV-D's
// Taco integration).
//
// Usage:
//
//	tacoc spmv            # print the emitted serial kernel
//	tacoc -pipeline spmv  # also compile it and print the pipeline
package main

import (
	"flag"
	"fmt"
	"os"

	"phloem/internal/core"
	"phloem/internal/taco"
)

func main() {
	pipe := flag.Bool("pipeline", false, "compile the kernel through Phloem")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tacoc [-pipeline] spmv|sddmm|mtmul|residual")
		os.Exit(2)
	}
	k := taco.Kernel(flag.Arg(0))
	src, err := taco.Emit(k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tacoc:", err)
		os.Exit(1)
	}
	fmt.Printf("// %s\n%s", taco.Expression(k), src)
	if *pipe {
		res, err := core.CompileSource(src, core.DefaultOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tacoc:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(res.Pipeline.Describe())
	}
}
