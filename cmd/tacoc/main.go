// Command tacoc emits the C-subset kernel for one of the supported sparse
// tensor expressions, optionally compiling it through Phloem (Sec. IV-D's
// Taco integration).
//
// Usage:
//
//	tacoc spmv                        # print the emitted serial kernel
//	tacoc -pipeline spmv              # also compile it and print the pipeline
//	tacoc -pipeline -timeout 10s spmv # bound the compile in wall-clock time
//
// Exit codes: 0 success, 1 emit/compile errors, 2 usage errors,
// 4 compile cancelled by -timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"phloem/internal/core"
	"phloem/internal/obs"
	"phloem/internal/taco"
)

func main() {
	pipe := flag.Bool("pipeline", false, "compile the kernel through Phloem")
	timeout := flag.Duration("timeout", 0,
		"with -pipeline: wall-clock compile budget (exit code 4 on expiry; 0 = unbounded)")
	stats := flag.Bool("stats", false,
		"with -pipeline: print the compile's phase wall-time metrics (build/commopt/verify)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tacoc [-pipeline] [-timeout D] [-stats] spmv|sddmm|mtmul|residual")
		os.Exit(2)
	}
	k := taco.Kernel(flag.Arg(0))
	src, err := taco.Emit(k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tacoc:", err)
		os.Exit(1)
	}
	fmt.Printf("// %s\n%s", taco.Expression(k), src)
	if *pipe {
		opt := core.DefaultOptions()
		opt.Deadline = *timeout
		var col *obs.Collector
		if *stats {
			col = obs.NewCollector()
			opt.Observer = col
		}
		res, err := core.CompileSource(src, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tacoc:", err)
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				os.Exit(4)
			}
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(res.Pipeline.Describe())
		if col != nil {
			fmt.Printf("\n%s", col.Metrics().String())
		}
	}
}
