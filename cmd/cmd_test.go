// Package cmd_test smoke-tests the command-line tools end to end: each
// binary is built once and driven the way a user would.
package cmd_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "phloem-cmds")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"phloemc", "phloemsim", "phloembench", "tacoc"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "phloem/cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + ": " + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, tool), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestPhloemcCompilesKernel(t *testing.T) {
	src := `
#pragma phloem
void k(int* restrict a, int* restrict b, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    int v = b[idx];
    acc = acc + v;
  }
  out[0] = acc;
}
`
	f := filepath.Join(t.TempDir(), "k.c")
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "phloemc", "-dump", f)
	for _, want := range []string{"pipeline k:", "stage", "RA", "deq"} {
		if !strings.Contains(out, want) {
			t.Errorf("phloemc output missing %q:\n%s", want, out)
		}
	}
	// Ablation flags change the pipeline.
	out2 := run(t, "phloemc", "-passes", "Q,R,CV", f)
	if strings.Contains(out2, "RA ") {
		t.Errorf("passes without RA should not place accelerators:\n%s", out2)
	}
}

func TestPhloemcLint(t *testing.T) {
	src := `
#pragma phloem
void k(int* restrict a, int* restrict b, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    int v = b[idx];
    acc = acc + v;
  }
  out[0] = acc;
}
`
	f := filepath.Join(t.TempDir(), "k.c")
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "phloemc", "-lint", f)
	if !strings.Contains(out, "verifies clean") {
		t.Errorf("clean kernel should lint clean:\n%s", out)
	}
	// With an injected protocol violation, lint must report the rule and
	// exit non-zero.
	cmd := exec.Command(filepath.Join(binDir, "phloemc"), "-lint", "-lint-inject", f)
	broken, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-lint-inject should exit non-zero:\n%s", broken)
	}
	if !strings.Contains(string(broken), "[C2]") {
		t.Errorf("injected violation should report rule C2:\n%s", broken)
	}
}

// TestPhloemcLintExitCodes asserts the documented contract: 0 clean (or
// warnings only), 1 compile failure or verifier errors, 2 usage errors.
// It also requires -lint output to be byte-identical across runs.
func TestPhloemcLintExitCodes(t *testing.T) {
	exitCode := func(args ...string) (int, string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(binDir, "phloemc"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("phloemc %v: %v\n%s", args, err, out)
		}
		return ee.ExitCode(), string(out)
	}

	clean := filepath.Join(t.TempDir(), "clean.c")
	os.WriteFile(clean, []byte(`
#pragma phloem
void k(int* restrict a, int* restrict out, int n) {
  for (int i = 0; i < n; i = i + 1) {
    out[i] = a[i] + 1;
  }
}
`), 0o644)
	if code, out := exitCode("-lint", clean); code != 0 {
		t.Errorf("clean kernel: exit %d, want 0:\n%s", code, out)
	}

	// Warnings (non-restrict params proven safe) still exit 0.
	warn := filepath.Join(t.TempDir(), "warn.c")
	os.WriteFile(warn, []byte(`
#pragma phloem
void k(int* a, int* b, int* restrict out, int n) {
  for (int i = 0; i < n; i = i + 1) {
    out[i] = a[i] + b[i];
  }
}
`), 0o644)
	code, out := exitCode("-lint", warn)
	if code != 0 {
		t.Errorf("warnings-only kernel: exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "[E0]") || !strings.Contains(out, "proved its accesses safe") {
		t.Errorf("lint should surface the E0 warnings:\n%s", out)
	}

	// Determinism: two runs render byte-identical output.
	_, out2 := exitCode("-lint", warn)
	if out != out2 {
		t.Errorf("lint output differs between runs:\n--- first ---\n%s--- second ---\n%s", out, out2)
	}

	bad := filepath.Join(t.TempDir(), "bad.c")
	os.WriteFile(bad, []byte("void k(int n) { undefined_thing; }"), 0o644)
	if code, out := exitCode("-lint", bad); code != 1 {
		t.Errorf("compile failure: exit %d, want 1:\n%s", code, out)
	}
	if code, out := exitCode("-lint", clean, "extra-arg"); code != 2 {
		t.Errorf("usage error: exit %d, want 2:\n%s", code, out)
	}
	if code, _ := exitCode("-lint", filepath.Join(t.TempDir(), "missing.c")); code != 1 {
		t.Errorf("unreadable file: exit %d, want 1", code)
	}
}

// TestPhloemcEffects drives the -effects report on a provably-safe kernel
// and on one the analysis must reject.
func TestPhloemcEffects(t *testing.T) {
	safe := filepath.Join(t.TempDir(), "safe.c")
	os.WriteFile(safe, []byte(`
#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}
`), 0o644)
	out := run(t, "phloemc", "-effects", safe)
	for _, want := range []string{"effects spmv:", "cols/rows", "no-conflict", "stats: pairs="} {
		if !strings.Contains(out, want) {
			t.Errorf("-effects output missing %q:\n%s", want, out)
		}
	}

	aliased := filepath.Join(t.TempDir(), "aliased.c")
	os.WriteFile(aliased, []byte(`
#pragma phloem
void k(int* idx, int* data, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = idx[i];
    data[j] = i;
  }
}
`), 0o644)
	cmd := exec.Command(filepath.Join(binDir, "phloemc"), "-effects", aliased)
	broken, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-effects on a may-alias kernel should exit non-zero:\n%s", broken)
	}
	if !strings.Contains(string(broken), "[E0]") || !strings.Contains(string(broken), "may-alias") {
		t.Errorf("-effects should show the may-alias verdict and E0 error:\n%s", broken)
	}
}

func TestPhloemcRejectsBadInput(t *testing.T) {
	f := filepath.Join(t.TempDir(), "bad.c")
	os.WriteFile(f, []byte("void k(int n) { undefined_thing; }"), 0o644)
	cmd := exec.Command(filepath.Join(binDir, "phloemc"), f)
	if err := cmd.Run(); err == nil {
		t.Error("phloemc should fail on a bad kernel")
	}
}

// TestPhloemcAutotune drives the -autotune mode: the profile-guided search
// over a built-in benchmark must print the winning pipeline and its search
// statistics, and serial and parallel runs must agree on everything except
// wall-clock time.
func TestPhloemcAutotune(t *testing.T) {
	stripTiming := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "search took") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	parallel := run(t, "phloemc", "-autotune", "BFS", "-j", "4")
	for _, want := range []string{"pipeline bfs", "enumerated", "deduplicated", "cycles"} {
		if !strings.Contains(parallel, want) {
			t.Errorf("-autotune output missing %q:\n%s", want, parallel)
		}
	}
	serial := run(t, "phloemc", "-autotune", "BFS", "-j", "1")
	if stripTiming(serial) != stripTiming(parallel) {
		t.Errorf("-j 1 and -j 4 diverged:\n--- serial\n%s--- parallel\n%s", serial, parallel)
	}

	// A kernel argument alongside -autotune is a usage error (exit 2).
	cmd := exec.Command(filepath.Join(binDir, "phloemc"), "-autotune", "BFS", "extra.c")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Errorf("-autotune with a kernel argument should exit 2: %v\n%s", err, out)
	}
	// An unknown benchmark is a runtime error (exit 1).
	cmd = exec.Command(filepath.Join(binDir, "phloemc"), "-autotune", "no-such-bench")
	out, err = cmd.CombinedOutput()
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Errorf("-autotune with an unknown benchmark should exit 1: %v\n%s", err, out)
	}
}

// TestPhloemcCost drives the -cost dump mode: the static cost model's
// report must name the bottleneck, price every stage and RA, and plan queue
// capacities — and reproduce byte-identically across runs.
func TestPhloemcCost(t *testing.T) {
	src := `
#pragma phloem
void k(int* restrict a, int* restrict b, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    int v = b[idx];
    acc = acc + v;
  }
  out[0] = acc;
}
`
	f := filepath.Join(t.TempDir(), "k.c")
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "phloemc", "-cost", f)
	for _, want := range []string{"cost k:", "predicted", "bottleneck", "stage", "util", "depth default rec"} {
		if !strings.Contains(out, want) {
			t.Errorf("-cost output missing %q:\n%s", want, out)
		}
	}
	if out2 := run(t, "phloemc", "-cost", f); out2 != out {
		t.Errorf("-cost output differs between runs:\n--- first ---\n%s--- second ---\n%s", out, out2)
	}
	// A bad kernel still exits 1.
	bad := filepath.Join(t.TempDir(), "bad.c")
	os.WriteFile(bad, []byte("void k(int n) { undefined_thing; }"), 0o644)
	cmd := exec.Command(filepath.Join(binDir, "phloemc"), "-cost", bad)
	if err := cmd.Run(); err == nil {
		t.Error("-cost on a bad kernel should exit non-zero")
	}
}

// TestPhloemcAutotuneTopK drives -autotune with -topk: the run must report
// the rank phase's pruning and still print a winning pipeline, and -topk 0
// must not print a rank line at all.
func TestPhloemcAutotuneTopK(t *testing.T) {
	out := run(t, "phloemc", "-autotune", "BFS", "-topk", "5")
	for _, want := range []string{"pipeline bfs", "static rank: pruned", "outside top-5", "best training run"} {
		if !strings.Contains(out, want) {
			t.Errorf("-autotune -topk output missing %q:\n%s", want, out)
		}
	}
	full := run(t, "phloemc", "-autotune", "BFS")
	if strings.Contains(full, "static rank") {
		t.Errorf("-autotune without -topk should not report a rank phase:\n%s", full)
	}
}

// TestPhloemsimFaultsList asserts `-faults list` enumerates both fault
// families — the timing plans and the search-layer chaos plans — each with a
// one-line description, and exits 0 without running anything.
func TestPhloemsimFaultsList(t *testing.T) {
	out := run(t, "phloemsim", "-faults", "list")
	for _, want := range []string{
		"timing-fault plans",
		"min-queues", "cap every architectural queue at depth 1",
		"kitchen-sink",
		"seed-N",
		"search-fault plans",
		"search-panic", "search-sabotage", "search-cancel", "search-storm",
		"search-seed-N",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-faults list missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "speedup") {
		t.Errorf("-faults list should not run a simulation:\n%s", out)
	}
}

// TestPhloemcCheckpointResume drives the interrupt/resume surface end to
// end: a checkpointed run leaves a journal, and a -resume run replays every
// measurement and reproduces the search result byte-identically.
func TestPhloemcCheckpointResume(t *testing.T) {
	stripVariant := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "search took") ||
				strings.HasPrefix(line, "checkpoint: replayed") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	ckpt := filepath.Join(t.TempDir(), "bfs.ckpt")
	first := run(t, "phloemc", "-autotune", "BFS", "-checkpoint", ckpt)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint journal not written: %v", err)
	}
	resumed := run(t, "phloemc", "-autotune", "BFS", "-checkpoint", ckpt, "-resume")
	if !strings.Contains(resumed, "checkpoint: replayed") {
		t.Errorf("-resume should report replayed measurements:\n%s", resumed)
	}
	if stripVariant(first) != stripVariant(resumed) {
		t.Errorf("resumed run diverged from original:\n--- first\n%s--- resumed\n%s",
			first, resumed)
	}
	// -resume without -checkpoint is a usage error.
	cmd := exec.Command(filepath.Join(binDir, "phloemc"), "-autotune", "BFS", "-resume")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Errorf("-resume without -checkpoint should exit 2: %v\n%s", err, out)
	}
}

// TestTimeoutExitCodes asserts the cancellation exit-code contract (4)
// across the binaries that accept -timeout.
func TestTimeoutExitCodes(t *testing.T) {
	exitCode := func(tool string, args ...string) (int, string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(binDir, tool), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return ee.ExitCode(), string(out)
	}
	// An expired search deadline exits 4 whether it fires before the search
	// starts or mid-flight; a generous one leaves the run untouched.
	if code, out := exitCode("phloemc", "-autotune", "BFS", "-timeout", "1ns"); code != 4 {
		t.Errorf("phloemc expired -timeout: exit %d, want 4:\n%s", code, out)
	}
	if code, out := exitCode("phloemc", "-autotune", "BFS", "-timeout", "1h"); code != 0 {
		t.Errorf("phloemc generous -timeout: exit %d, want 0:\n%s", code, out)
	}
	if code, out := exitCode("phloemsim", "-bench", "BFS", "-input", "road-ny", "-timeout", "1ns"); code != 4 {
		t.Errorf("phloemsim expired -timeout: exit %d, want 4:\n%s", code, out)
	}
	if code, out := exitCode("tacoc", "-pipeline", "-timeout", "1ns", "spmv"); code != 4 {
		t.Errorf("tacoc expired -timeout: exit %d, want 4:\n%s", code, out)
	}
}

func TestTacocEmitsAndPipelines(t *testing.T) {
	out := run(t, "tacoc", "-pipeline", "spmv")
	for _, want := range []string{"y(i) = A(i,j) * x(j)", "taco_spmv", "pipeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("tacoc output missing %q:\n%s", want, out)
		}
	}
}

func TestPhloemsimRunsBFS(t *testing.T) {
	out := run(t, "phloemsim", "-bench", "BFS", "-input", "road-ny")
	for _, want := range []string{"serial", "phloem", "speedup", "cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("phloemsim output missing %q:\n%s", want, out)
		}
	}
}

// TestPhloemsimExitCodes drives the guardrail demo flags and asserts the
// documented exit-code contract: 0 success, 1 deadlock/other, 2 budget
// exceeded, 3 functional trap.
func TestPhloemsimExitCodes(t *testing.T) {
	exitCode := func(args ...string) (int, string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(binDir, "phloemsim"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("phloemsim %v: %v\n%s", args, err, out)
		}
		return ee.ExitCode(), string(out)
	}

	if code, out := exitCode("-bench", "BFS", "-input", "road-ny", "-faults", "kitchen-sink"); code != 0 {
		t.Errorf("faulted run should still succeed (results are timing-independent), exit %d:\n%s", code, out)
	}
	if code, out := exitCode("-bench", "BFS", "-input", "road-ny", "-cycle-budget", "1000"); code != 2 {
		t.Errorf("budget abort: exit %d, want 2:\n%s", code, out)
	}
	code, out := exitCode("-bench", "BFS", "-input", "road-ny", "-inject", "deadlock")
	if code != 1 {
		t.Errorf("deadlock: exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "injected_dead") {
		t.Errorf("deadlock report should name the blocking queue:\n%s", out)
	}
	if code, out := exitCode("-bench", "BFS", "-input", "road-ny", "-inject", "trap"); code != 3 {
		t.Errorf("trap: exit %d, want 3:\n%s", code, out)
	}
	if code, _ := exitCode("-bench", "BFS", "-faults", "no-such-plan"); code != 1 {
		t.Errorf("unknown fault plan: exit %d, want 1", code)
	}
}

// TestPhloemsimNativeBackend drives `-backend native` end to end and
// asserts the exit-code contract is backend-independent: the native engine
// fails with the same sentinel classes the simulator does, so 0/1/2/3/4
// mean the same thing under both backends. It also pins the flag-gating:
// simulator-only observability flags are rejected up front.
func TestPhloemsimNativeBackend(t *testing.T) {
	exitCode := func(args ...string) (int, string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(binDir, "phloemsim"), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("phloemsim %v: %v\n%s", args, err, out)
		}
		return ee.ExitCode(), string(out)
	}
	native := func(extra ...string) []string {
		return append([]string{"-bench", "BFS", "-input", "road-ny", "-backend", "native"}, extra...)
	}

	code, out := exitCode(native()...)
	if code != 0 {
		t.Fatalf("native run: exit %d, want 0:\n%s", code, out)
	}
	for _, want := range []string{"(native)", "wall on", "not simulated cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("native output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "speedup") {
		t.Errorf("native run must not claim a cycle speedup:\n%s", out)
	}

	// Same guardrail demos, same exit codes as the simulator.
	code, out = exitCode(native("-inject", "deadlock")...)
	if code != 1 {
		t.Errorf("native deadlock: exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "injected_dead") {
		t.Errorf("native deadlock report should name the blocking queue:\n%s", out)
	}
	if code, out := exitCode(native("-inject", "trap")...); code != 3 {
		t.Errorf("native trap: exit %d, want 3:\n%s", code, out)
	}
	if code, out := exitCode(native("-timeout", "1ns")...); code != 4 {
		t.Errorf("native expired -timeout: exit %d, want 4:\n%s", code, out)
	}
	// -trace-limit is the budget mechanism shared by both backends.
	if code, out := exitCode(native("-trace-limit", "100")...); code != 2 {
		t.Errorf("native trace limit: exit %d, want 2:\n%s", code, out)
	}
	if code, out := exitCode("-bench", "BFS", "-input", "road-ny", "-trace-limit", "100"); code != 2 {
		t.Errorf("sim trace limit: exit %d, want 2:\n%s", code, out)
	}

	// Simulator-only flags are rejected before any run starts.
	csv := filepath.Join(t.TempDir(), "series.csv")
	code, out = exitCode(native("-telemetry", csv)...)
	if code != 1 || !strings.Contains(out, "requires -backend sim") {
		t.Errorf("-telemetry under native should exit 1 with a gating message, got %d:\n%s", code, out)
	}
	if code, out := exitCode(native("-cycle-budget", "1000")...); code != 1 ||
		!strings.Contains(out, "requires -backend sim") {
		t.Errorf("-cycle-budget under native should exit 1, got %d:\n%s", code, out)
	}
	// -commopt is a compile-side pass; it must still work natively.
	if code, out := exitCode(native("-commopt")...); code != 0 {
		t.Errorf("native -commopt run: exit %d, want 0:\n%s", code, out)
	}
	if code, _ := exitCode("-bench", "BFS", "-input", "road-ny", "-backend", "gpu"); code != 1 {
		t.Errorf("unknown backend: exit %d, want 1", code)
	}
}

// TestPhloembenchBenchdiffNative drives the regression gate against the
// committed native report: self-diff is clean, tampering with a
// deterministic column (instructions) regresses, and tripling a wall-time
// column changes nothing — wall clock is never a gated metric.
func TestPhloembenchBenchdiffNative(t *testing.T) {
	committed := "../BENCH_native.json"
	data, err := os.ReadFile(committed)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	write := func(rep map[string]any) string {
		t.Helper()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		f := filepath.Join(t.TempDir(), "native.json")
		if err := os.WriteFile(f, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return f
	}

	exitCode := func(args ...string) (int, string) {
		t.Helper()
		out, err := exec.Command(filepath.Join(binDir, "phloembench"), args...).CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("phloembench %v: %v\n%s", args, err, out)
		}
		return ee.ExitCode(), string(out)
	}

	if code, out := exitCode("-benchdiff", committed, committed); code != 0 ||
		!strings.Contains(out, "ok: no metric changes") {
		t.Errorf("native self-diff should exit 0 clean, got %d:\n%s", code, out)
	}

	row := rep["benchmarks"].([]any)[0].(map[string]any)
	row["instructions"] = float64(int64(row["instructions"].(float64) * 2))
	code, out := exitCode("-benchdiff", committed, write(rep))
	if code != 3 || !strings.Contains(out, "REGRESSION") {
		t.Errorf("doubled instructions should exit 3 with a REGRESSION line, got %d:\n%s", code, out)
	}

	// Wall time changes are invisible to the gate.
	var fresh map[string]any
	if err := json.Unmarshal(data, &fresh); err != nil {
		t.Fatal(err)
	}
	for _, b := range fresh["benchmarks"].([]any) {
		m := b.(map[string]any)
		m["sim_wall_ms"] = m["sim_wall_ms"].(float64) * 3
		m["native_wall_ms"] = m["native_wall_ms"].(float64) * 3
	}
	if code, out := exitCode("-benchdiff", committed, write(fresh)); code != 0 {
		t.Errorf("tripled wall columns should exit 0, got %d:\n%s", code, out)
	}

	// Mixed report kinds are a usage-level error (1).
	if code, _ := exitCode("-benchdiff", committed, "../BENCH_commopt.json"); code != 1 {
		t.Errorf("native-vs-commopt diff should exit 1, got %d", code)
	}
}

// TestPhloemsimTelemetry drives the observability flags end to end: the
// stall profile prints, the series and Chrome trace land on disk well-formed,
// and a second identical run reproduces both files byte for byte.
func TestPhloemsimTelemetry(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "series.csv")
	tracePath := filepath.Join(dir, "trace.json")
	args := []string{"-bench", "BFS", "-input", "road-ny",
		"-profile", "-interval", "1000",
		"-telemetry", csvPath, "-chrome-trace", tracePath}
	out := run(t, "phloemsim", args...)
	for _, want := range []string{"stall profile", "hot lines:", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("phloemsim output missing %q:\n%s", want, out)
		}
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("series CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "cycle,dcycles,dissued,") {
		t.Errorf("series CSV header:\n%.120s", csv)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("chrome trace not written: %v", err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("chrome trace does not parse as JSON: %v", err)
	}
	tracks := 0
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks++
		}
	}
	// The compiled BFS pipeline has multiple stage threads and RAs; each gets
	// a named track.
	if tracks < 4 {
		t.Errorf("chrome trace has %d named tracks, want several:\n%.200s", tracks, raw)
	}

	// Determinism: the same run must reproduce both artifacts exactly.
	csv2Path := filepath.Join(dir, "series2.csv")
	trace2Path := filepath.Join(dir, "trace2.json")
	run(t, "phloemsim", "-bench", "BFS", "-input", "road-ny",
		"-profile", "-interval", "1000",
		"-telemetry", csv2Path, "-chrome-trace", trace2Path)
	csv2, _ := os.ReadFile(csv2Path)
	raw2, _ := os.ReadFile(trace2Path)
	if !bytes.Equal(csv, csv2) {
		t.Error("series CSV differs between identical runs")
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("chrome trace differs between identical runs")
	}
}

func TestPhloembenchTelemetry(t *testing.T) {
	out := run(t, "phloembench", "-exp", "telemetry")
	for _, want := range []string{"telemetry", "BFS", "hottest stall site", "avg="} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry summary missing %q:\n%s", want, out)
		}
	}
}

func TestPhloembenchChaos(t *testing.T) {
	out := run(t, "phloembench", "-exp", "chaos", "-chaos-seeds", "0")
	if !strings.Contains(out, "all results identical") {
		t.Errorf("chaos output:\n%s", out)
	}
}

func TestPhloembenchTables(t *testing.T) {
	out := run(t, "phloembench", "-exp", "table3")
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "L3 cache") {
		t.Errorf("table3 output:\n%s", out)
	}
	out4 := run(t, "phloembench", "-exp", "table4")
	if !strings.Contains(out4, "road-usa") {
		t.Errorf("table4 output:\n%s", out4)
	}
	out5 := run(t, "phloembench", "-exp", "table5")
	if !strings.Contains(out5, "pwtk") {
		t.Errorf("table5 output:\n%s", out5)
	}
}

// TestPhloemcSearchObservability drives the opt-in search observability
// flags: -search-stats prints the metrics table, -search-trace writes
// well-formed Chrome trace JSON whose candidate spans carry fingerprints,
// and -progress draws a live line ending in a summary. With no flags set,
// none of that output appears.
func TestPhloemcSearchObservability(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "search.json")
	cmd := exec.Command(filepath.Join(binDir, "phloemc"),
		"-autotune", "BFS", "-j", "4", "-topk", "5",
		"-progress", "-search-stats", "-search-trace", trace)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("phloemc observability run: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	for _, want := range []string{
		"search metrics (autotune)",
		"candidates:", "verdicts:", "phase", "train",
		"search trace: wrote",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-search-stats output missing %q:\n%s", want, stdout.String())
		}
	}
	for _, want := range []string{"serial baseline", "done —", "measured"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("-progress stderr missing %q:\n%s", want, stderr.String())
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("search trace is not valid JSON: %v", err)
	}
	workers, cands := 0, 0
	for _, e := range tr.TraceEvents {
		if e.Pid != 1 {
			t.Fatalf("search trace event outside pid 1: %+v", e)
		}
		if e.Ph == "M" && e.Name == "thread_name" {
			workers++
		}
		if e.Cat == "candidate" {
			cands++
			if _, ok := e.Args["fp"]; !ok {
				t.Errorf("candidate span without fp args: %+v", e)
			}
		}
	}
	if workers < 5 { // merger + 4 pool workers
		t.Errorf("want >=5 worker tracks, got %d", workers)
	}
	if cands == 0 {
		t.Error("no candidate spans in search trace")
	}

	// The plain run carries none of the observability output.
	plain := run(t, "phloemc", "-autotune", "BFS", "-topk", "5")
	if strings.Contains(plain, "search metrics") || strings.Contains(plain, "search trace") {
		t.Errorf("observability output without its flags:\n%s", plain)
	}
}

// TestTacocStats: -stats on the static flow prints the compile-phase
// metrics table.
func TestTacocStats(t *testing.T) {
	out := run(t, "tacoc", "-pipeline", "-stats", "spmv")
	for _, want := range []string{"search metrics (static)", "build", "verify"} {
		if !strings.Contains(out, want) {
			t.Errorf("tacoc -stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(run(t, "tacoc", "-pipeline", "spmv"), "search metrics") {
		t.Error("tacoc without -stats should not print metrics")
	}
}

// TestPhloembenchBenchdiff drives the regression gate's file mode against
// the committed commopt report: self-diff passes, an injected cycles
// regression beyond threshold exits 3, and widening the threshold
// clears it.
func TestPhloembenchBenchdiff(t *testing.T) {
	committed := "../BENCH_commopt.json"
	data, err := os.ReadFile(committed)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	leg := rep["benchmarks"].([]any)[0].(map[string]any)["legs"].([]any)[0].(map[string]any)
	leg["cycles"] = float64(int64(leg["cycles"].(float64) * 1.5))
	tampered, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	tf := filepath.Join(t.TempDir(), "tampered.json")
	if err := os.WriteFile(tf, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	exitCode := func(args ...string) (int, string) {
		t.Helper()
		out, err := exec.Command(filepath.Join(binDir, "phloembench"), args...).CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("phloembench %v: %v\n%s", args, err, out)
		}
		return ee.ExitCode(), string(out)
	}

	if code, out := exitCode("-benchdiff", committed, committed); code != 0 ||
		!strings.Contains(out, "ok: no metric changes") {
		t.Errorf("self-diff should exit 0 clean, got %d:\n%s", code, out)
	}
	code, out := exitCode("-benchdiff", committed, tf)
	if code != 3 || !strings.Contains(out, "REGRESSION") {
		t.Errorf("+50%% cycles should exit 3 with a REGRESSION line, got %d:\n%s", code, out)
	}
	if code, out := exitCode("-benchdiff", "-cycles-tol", "60", committed, tf); code != 0 {
		t.Errorf("+50%% within -cycles-tol 60 should exit 0, got %d:\n%s", code, out)
	}
	// Mixed report kinds are a usage-level error (1), not a regression.
	if code, _ := exitCode("-benchdiff", committed, "../BENCH_search.json"); code != 1 {
		t.Errorf("mixed-kind diff should exit 1, got %d", code)
	}
	if code, _ := exitCode("-benchdiff", committed); code != 2 {
		t.Errorf("-benchdiff with one argument should exit 2, got %d", code)
	}
}
