// Command phloemsim compiles a kernel and simulates it on a built-in
// workload, comparing serial and pipelined execution. It is a quick way to
// see the simulator's timing reports without writing a harness.
//
// Usage:
//
//	phloemsim -bench BFS -input road
package main

import (
	"flag"
	"fmt"
	"os"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "BFS", "benchmark: BFS|CC|PRD|Radii|SpMM")
	inputName := flag.String("input", "", "input name (default: the road-like test input)")
	flag.Parse()

	bench, err := workloads.ByName(workloads.ScaleTest, *benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemsim:", err)
		os.Exit(1)
	}
	in := bench.Test[len(bench.Test)-1]
	if *inputName != "" {
		in = nil
		for _, cand := range append(bench.Train, bench.Test...) {
			if cand.Name == *inputName {
				in = cand
			}
		}
		if in == nil {
			fmt.Fprintf(os.Stderr, "phloemsim: unknown input %q\n", *inputName)
			os.Exit(1)
		}
	}

	serialProg, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemsim:", err)
		os.Exit(1)
	}
	run := func(name string, p *pipeline.Pipeline) uint64 {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			fmt.Fprintf(os.Stderr, "phloemsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		st, err := inst.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "phloemsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := in.Verify(inst); err != nil {
			fmt.Fprintf(os.Stderr, "phloemsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s\n%s", name, st.String())
		return st.Cycles
	}

	sc := run("serial", pipeline.NewSerial(serialProg))
	res, err := core.Compile(serialProg, core.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemsim:", err)
		os.Exit(1)
	}
	fmt.Printf("--- phloem pipeline\n%s", res.Pipeline.Describe())
	pc := run("phloem", res.Pipeline)
	fmt.Printf("\nspeedup on %s: %.2fx\n", in.Name, float64(sc)/float64(pc))
}
