// Command phloemsim compiles a kernel and simulates it on a built-in
// workload, comparing serial and pipelined execution. It is a quick way to
// see the simulator's timing reports without writing a harness.
//
// Usage:
//
//	phloemsim -bench BFS -input road
//	phloemsim -bench BFS -faults kitchen-sink   # chaos plan, results must match
//	phloemsim -bench BFS -cycle-budget 1000     # guardrail demo, exits 2
//	phloemsim -bench BFS -inject deadlock       # guardrail demo, exits 1
//
// Exit codes: 0 success, 1 compile failure/deadlock/any other error,
// 2 cycle or trace budget exceeded, 3 functional trap.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/fault"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/workloads"
)

func main() { os.Exit(run()) }

// exitCode maps a failure onto the documented exit codes using the
// simulator's sentinel error classes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, sim.ErrCycleBudget), errors.Is(err, sim.ErrTraceLimit):
		return 2
	case errors.Is(err, sim.ErrTrap):
		return 3
	default:
		return 1
	}
}

// injectDeadlock adds a dequeue from a fresh queue no stage feeds, so the
// pipeline blocks forever and the simulator's deadlock guardrail fires.
func injectDeadlock(pl *pipeline.Pipeline) {
	q := len(pl.Queues)
	pl.Queues = append(pl.Queues, pipeline.Queue{Name: "injected_dead"})
	v := pl.Prog.NewVar("injected_dead", ir.KInt)
	st := pl.Stages[0]
	st.Body = append([]ir.Stmt{&ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: q}}}, st.Body...)
}

// injectTrap adds an out-of-bounds store, tripping a functional trap.
func injectTrap(pl *pipeline.Pipeline) {
	st := pl.Stages[0]
	st.Body = append([]ir.Stmt{
		&ir.Store{StoreID: 1 << 20, Slot: 0, Idx: ir.C(-1), Val: ir.C(0)},
	}, st.Body...)
}

func run() int {
	benchName := flag.String("bench", "BFS", "benchmark: BFS|CC|PRD|Radii|SpMM")
	inputName := flag.String("input", "", "input name (default: the road-like test input)")
	cycleBudget := flag.Uint64("cycle-budget", 0, "abort any run past this many cycles (exit code 2)")
	faultPlan := flag.String("faults", "", "timing-fault plan: a named plan or seed-N (results must still match)")
	inject := flag.String("inject", "", "sabotage the pipeline to demo guardrails: deadlock|trap")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "phloemsim:", err)
		return exitCode(err)
	}

	bench, err := workloads.ByName(workloads.ScaleTest, *benchName)
	if err != nil {
		return fail(err)
	}
	in := bench.Test[len(bench.Test)-1]
	if *inputName != "" {
		in = nil
		for _, cand := range append(bench.Train, bench.Test...) {
			if cand.Name == *inputName {
				in = cand
			}
		}
		if in == nil {
			return fail(fmt.Errorf("unknown input %q", *inputName))
		}
	}
	var plan fault.Plan
	if *faultPlan != "" {
		if plan, err = fault.ByName(*faultPlan); err != nil {
			return fail(err)
		}
		fmt.Printf("fault plan: %s\n", plan)
	}
	opt := core.DefaultOptions()
	switch *inject {
	case "":
	case "deadlock":
		opt.PostBuild, opt.SkipVerify = injectDeadlock, true
	case "trap":
		opt.PostBuild, opt.SkipVerify = injectTrap, true
	default:
		return fail(fmt.Errorf("unknown -inject mode %q (deadlock|trap)", *inject))
	}

	serialProg, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		return fail(err)
	}
	runPipe := func(name string, p *pipeline.Pipeline) (uint64, error) {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		plan.Apply(inst.Machine)
		inst.Machine.Cfg.CycleBudget = *cycleBudget
		st, err := inst.Run()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if err := in.Verify(inst); err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("--- %s\n%s", name, st.String())
		return st.Cycles, nil
	}

	sc, err := runPipe("serial", pipeline.NewSerial(serialProg))
	if err != nil {
		return fail(err)
	}
	res, err := core.Compile(serialProg, opt)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("--- phloem pipeline\n%s", res.Pipeline.Describe())
	pc, err := runPipe("phloem", res.Pipeline)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("\nspeedup on %s: %.2fx\n", in.Name, float64(sc)/float64(pc))
	return 0
}
