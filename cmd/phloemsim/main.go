// Command phloemsim compiles a kernel and simulates it on a built-in
// workload, comparing serial and pipelined execution. It is a quick way to
// see the simulator's timing reports without writing a harness.
//
// Usage:
//
//	phloemsim -bench BFS -input road
//	phloemsim -faults list                      # list fault plans and stop
//	phloemsim -bench BFS -faults kitchen-sink   # chaos plan, results must match
//	phloemsim -bench BFS -cycle-budget 1000     # guardrail demo, exits 2
//	phloemsim -bench BFS -timeout 100ms         # wall-clock bound, exits 4
//	phloemsim -bench BFS -inject deadlock       # guardrail demo, exits 1
//	phloemsim -bench BFS -profile               # source-line stall profile
//	phloemsim -bench BFS -chrome-trace out.json # chrome://tracing timeline
//	phloemsim -bench BFS -telemetry s.csv -interval 1000
//	phloemsim -bench Radii -commopt             # apply commopt; occupancy table
//	phloemsim -bench BFS -backend native        # run on real Go concurrency
//
// With -commopt the compiled pipeline additionally runs through the static
// queue-communication optimization pass (internal/commopt) before
// simulation. The pass's capacity/fan-out plan is printed, and after the
// run a per-queue table compares the statically predicted maximum
// occupancy against the occupancy the simulator actually observed.
//
// With -backend native both legs execute on the native backend
// (internal/native): one goroutine per stage and RA, one bounded channel
// per queue. There is no cycle model, so the summary reports wall time,
// and the simulator-only flags (-telemetry, -profile, -chrome-trace,
// -faults, -cycle-budget) are rejected. -commopt still applies (its
// capacities size the native channels), but the occupancy table needs the
// simulator's probe and is skipped.
//
// Exit codes: 0 success, 1 compile failure/deadlock/any other error,
// 2 cycle or trace budget exceeded, 3 functional trap, 4 wall-clock
// timeout (-timeout) or interruption. The contract is backend-independent:
// the native backend fails with the same sentinel error classes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"phloem/internal/arch"
	"phloem/internal/commopt"
	"phloem/internal/core"
	"phloem/internal/fault"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/telemetry"
	"phloem/internal/workloads"
)

func main() { os.Exit(run()) }

// exitCode maps a failure onto the documented exit codes using the
// simulator's sentinel error classes.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, sim.ErrCycleBudget), errors.Is(err, sim.ErrTraceLimit):
		return 2
	case errors.Is(err, sim.ErrTrap):
		return 3
	case errors.Is(err, sim.ErrWallBudget), errors.Is(err, sim.ErrCancelled):
		return 4
	default:
		return 1
	}
}

// listFaults prints every named fault plan (timing and search layer) with
// its description, plus the seeded-plan syntax.
func listFaults() {
	fmt.Println("timing-fault plans (phloemsim -faults <name>):")
	for _, p := range fault.Named() {
		fmt.Printf("  %-16s %s\n", p.Name, p.Desc)
	}
	fmt.Println("  seed-N           pseudo-random perturbation mix expanded from seed N")
	fmt.Println("search-fault plans (chaos-testing the autotune search layer):")
	for _, p := range fault.NamedSearch() {
		fmt.Printf("  %-16s %s\n", p.Name, p.Desc)
	}
	fmt.Println("  search-seed-N    pseudo-random search-fault mix expanded from seed N")
}

// injectDeadlock adds a dequeue from a fresh queue no stage feeds, so the
// pipeline blocks forever and the simulator's deadlock guardrail fires.
func injectDeadlock(pl *pipeline.Pipeline) {
	q := len(pl.Queues)
	pl.Queues = append(pl.Queues, pipeline.Queue{Name: "injected_dead"})
	v := pl.Prog.NewVar("injected_dead", ir.KInt)
	st := pl.Stages[0]
	st.Body = append([]ir.Stmt{&ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: q}}}, st.Body...)
}

// injectTrap adds an out-of-bounds store, tripping a functional trap.
func injectTrap(pl *pipeline.Pipeline) {
	st := pl.Stages[0]
	st.Body = append([]ir.Stmt{
		&ir.Store{StoreID: 1 << 20, Slot: 0, Idx: ir.C(-1), Val: ir.C(0)},
	}, st.Body...)
}

func run() int {
	benchName := flag.String("bench", "BFS", "benchmark: BFS|CC|PRD|Radii|SpMM")
	inputName := flag.String("input", "", "input name (default: the road-like test input)")
	cycleBudget := flag.Uint64("cycle-budget", 0, "abort any run past this many cycles (exit code 2)")
	traceLimit := flag.Int("trace-limit", 0, "abort any run past this many executed instructions (exit code 2; works on both backends)")
	timeout := flag.Duration("timeout", 0, "abort any run past this wall-clock duration (exit code 4)")
	faultPlan := flag.String("faults", "", "timing-fault plan: a named plan or seed-N (results must still match); 'list' prints all plans")
	inject := flag.String("inject", "", "sabotage the pipeline to demo guardrails: deadlock|trap")
	seriesOut := flag.String("telemetry", "", "write the pipelined run's interval time-series to this file (.csv, else JSON; \"-\" = stdout)")
	profile := flag.Bool("profile", false, "print the pipelined run's source-annotated hot-lines stall profile")
	profileTop := flag.Int("profile-top", 10, "hot lines to show with -profile")
	chromeOut := flag.String("chrome-trace", "", "write the pipelined run as Chrome trace_event JSON to this file")
	interval := flag.Uint64("interval", 0, "telemetry sampling period in cycles (0: one end-of-run sample)")
	commOpt := flag.Bool("commopt", false,
		"apply the static queue-communication optimization pass and print its plan plus a predicted-vs-observed occupancy table")
	backendName := flag.String("backend", "sim",
		"execution backend: sim (cycle-accurate simulator) or native (real Go concurrency; wall time + functional results, no cycle model)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "phloemsim:", err)
		return exitCode(err)
	}

	if *faultPlan == "list" {
		listFaults()
		return 0
	}

	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		return fail(err)
	}
	if backend == core.BackendNative {
		// These features live in the timing simulator; there is no cycle
		// model or probe stream to drive natively.
		for flagName, set := range map[string]bool{
			"-telemetry":    *seriesOut != "",
			"-profile":      *profile,
			"-chrome-trace": *chromeOut != "",
			"-faults":       *faultPlan != "",
			"-cycle-budget": *cycleBudget != 0,
		} {
			if set {
				return fail(fmt.Errorf("%s requires -backend sim (the native backend has no cycle model)", flagName))
			}
		}
	}

	bench, err := workloads.ByName(workloads.ScaleTest, *benchName)
	if err != nil {
		return fail(err)
	}
	in := bench.Test[len(bench.Test)-1]
	if *inputName != "" {
		in = nil
		for _, cand := range append(bench.Train, bench.Test...) {
			if cand.Name == *inputName {
				in = cand
			}
		}
		if in == nil {
			return fail(fmt.Errorf("unknown input %q", *inputName))
		}
	}
	var plan fault.Plan
	if *faultPlan != "" {
		if plan, err = fault.ByName(*faultPlan); err != nil {
			return fail(err)
		}
		fmt.Printf("fault plan: %s\n", plan)
	}
	opt := core.DefaultOptions()
	switch *inject {
	case "":
	case "deadlock":
		opt.PostBuild, opt.SkipVerify = injectDeadlock, true
	case "trap":
		opt.PostBuild, opt.SkipVerify = injectTrap, true
	default:
		return fail(fmt.Errorf("unknown -inject mode %q (deadlock|trap)", *inject))
	}

	serialProg, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		return fail(err)
	}
	runPipe := func(name string, p *pipeline.Pipeline, col *telemetry.Collector) (*core.ExecStats, error) {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		plan.Apply(inst.Machine)
		inst.Machine.Cfg.CycleBudget = *cycleBudget
		if *traceLimit > 0 {
			inst.Machine.MaxTraceEntries = *traceLimit
		}
		if *timeout > 0 {
			inst.Machine.WallDeadline = time.Now().Add(*timeout)
		}
		if col != nil {
			inst.Machine.Probe = col
			inst.Machine.Cfg.TelemetryInterval = *interval
		}
		st, err := core.Execute(inst, backend)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if err := in.Verify(inst); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("--- %s (%s)\n%s", name, backend, st.Report)
		return st, nil
	}

	sc, err := runPipe("serial", pipeline.NewSerial(serialProg), nil)
	if err != nil {
		return fail(err)
	}
	res, err := core.Compile(serialProg, opt)
	if err != nil {
		return fail(err)
	}
	var plan2 *commopt.Plan
	if *commOpt {
		plan2, err = commopt.Apply(res.Pipeline, arch.DefaultConfig(1),
			commopt.Options{Capacities: true, Multicast: true})
		if err != nil {
			return fail(err)
		}
		fmt.Printf("--- %s\n%s", plan2.Summary(), plan2.String())
	}
	fmt.Printf("--- phloem pipeline\n%s", res.Pipeline.Describe())
	var col *telemetry.Collector
	if backend == core.BackendSim && (*seriesOut != "" || *profile || *chromeOut != "" || *commOpt) {
		col = telemetry.NewCollector()
		// Stamp the run's identity into the trace header so a sim-level
		// trace can be matched to the bench/input (and, under the
		// autotuner's CandidateProbe, to a candidate span in a search
		// trace) that produced it.
		col.SetMeta("bench", bench.Name)
		col.SetMeta("input", in.Name)
	}
	pc, err := runPipe("phloem", res.Pipeline, col)
	if err != nil {
		return fail(err)
	}
	if col != nil {
		if err := export(col, *seriesOut, *chromeOut, *profile, *profileTop, bench.SerialSource); err != nil {
			return fail(err)
		}
	}
	if plan2 != nil && col != nil {
		printOccupancy(plan2, col.Series())
	}
	if backend == core.BackendNative {
		// No cycle model natively: report wall time, and say what it is
		// not — on a single-core host this is serial-interpreter vs
		// goroutine-pipeline wall clock, not simulated speedup.
		fmt.Printf("\nwall on %s: serial %v, phloem %v (%s backend; wall-clock on this host, not simulated cycles)\n",
			in.Name, sc.Wall.Round(time.Microsecond), pc.Wall.Round(time.Microsecond), backend)
		return 0
	}
	fmt.Printf("\nspeedup on %s: %.2fx\n", in.Name, float64(sc.Cycles)/float64(pc.Cycles))
	return 0
}

// printOccupancy compares the commopt plan's statically predicted maximum
// queue occupancy against the occupancy the simulator observed. Predicted
// is an upper bound (the assigned or default capacity under backpressure),
// so observed must never exceed it.
func printOccupancy(plan *commopt.Plan, s *telemetry.Series) {
	obs := make([]int, len(plan.Queues))
	for _, row := range s.Rows {
		for q, qs := range row.Queues {
			if q < len(obs) && qs.Max > obs[q] {
				obs[q] = qs.Max
			}
		}
	}
	fmt.Println("--- occupancy: statically predicted max vs observed max")
	fmt.Printf("  %-3s %-14s %6s %6s %9s %9s\n", "q", "name", "before", "after", "predicted", "observed")
	for _, q := range plan.Queues {
		o := 0
		if q.ID < len(obs) {
			o = obs[q.ID]
		}
		fmt.Printf("  q%-2d %-14s %6d %6d %9d %9d\n", q.ID, q.Name, q.Before, q.After, q.MaxOcc, o)
	}
}

// export writes the telemetry artifacts requested on the command line.
func export(col *telemetry.Collector, seriesOut, chromeOut string, profile bool, top int, source string) error {
	if profile {
		fmt.Printf("--- stall profile\n%s", col.Profile().Render(top, source))
	}
	if seriesOut != "" {
		s := col.Series()
		write := func(w *os.File) error {
			if strings.HasSuffix(seriesOut, ".csv") {
				return s.WriteCSV(w)
			}
			return s.WriteJSON(w)
		}
		if seriesOut == "-" {
			if err := s.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(seriesOut)
			if err != nil {
				return err
			}
			if err := write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		if err := col.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
