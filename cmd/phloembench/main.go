// Command phloembench regenerates the paper's tables and figures on the
// simulated Pipette machine with the synthetic input suite.
//
// Usage:
//
//	phloembench -exp all
//	phloembench -exp fig9 -scale full -v
package main

import (
	"flag"
	"fmt"
	"os"

	"phloem/internal/bench"
	"phloem/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: table3|table4|table5|fig6|fig9|fig10|fig11|fig12|fig13|fig14|ablations|chaos|telemetry|search|interrupt|commopt|all")
	scale := flag.String("scale", "test", "input scale: test|full")
	verbose := flag.Bool("v", false, "print per-input rows")
	chaosSeeds := flag.Int("chaos-seeds", 4, "seeded fault plans to add to the chaos sweep (beyond the named plans)")
	parallel := flag.Int("j", 0,
		"autotune/search worker parallelism (0 = GOMAXPROCS, 1 = serial; results are identical for every value)")
	searchOut := flag.String("search-out", "BENCH_search.json",
		"output path for the -exp search report")
	commOptOut := flag.String("commopt-out", "BENCH_commopt.json",
		"output path for the -exp commopt report")
	topK := flag.Int("topk", 0,
		"with -exp search: K for the static rank-and-prune leg (0 = default 5)")
	flag.Parse()

	cfg := bench.Config{Scale: workloads.ScaleTest, Out: os.Stdout, Verbose: *verbose,
		Parallelism: *parallel, TopK: *topK}
	if *scale == "full" {
		cfg.Scale = workloads.ScaleFull
	}

	run := func() error {
		switch *exp {
		case "table3":
			bench.Table3(cfg)
		case "table4":
			bench.Table4(cfg)
		case "table5":
			bench.Table5(cfg)
		case "fig6":
			return bench.Fig6(cfg)
		case "fig9", "fig10", "fig11":
			var results []*bench.BenchResult
			for _, b := range workloads.Benchmarks(cfg.Scale) {
				fmt.Fprintf(os.Stderr, "running %s...\n", b.Name)
				r, err := bench.RunBenchmark(cfg, b)
				if err != nil {
					return err
				}
				results = append(results, r)
			}
			switch *exp {
			case "fig9":
				bench.Fig9(cfg, results)
			case "fig10":
				bench.Fig10(cfg, results)
			case "fig11":
				bench.Fig11(cfg, results)
			}
		case "fig12":
			return bench.Fig12(cfg)
		case "fig13":
			return bench.Fig13(cfg)
		case "fig14":
			return bench.Fig14(cfg)
		case "ablations":
			return bench.Ablations(cfg)
		case "chaos":
			return bench.Chaos(cfg, *chaosSeeds)
		case "interrupt":
			return bench.InterruptResume(cfg)
		case "telemetry":
			return bench.Telemetry(cfg)
		case "search":
			if err := bench.SearchPerfJSON(cfg, *searchOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *searchOut)
		case "commopt":
			if err := bench.CommOptJSON(cfg, *commOptOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *commOptOut)
		case "all":
			return bench.All(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		return nil
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phloembench:", err)
		os.Exit(1)
	}
}
