// Command phloembench regenerates the paper's tables and figures on the
// simulated Pipette machine with the synthetic input suite.
//
// -exp compare is the benchmark regression gate: it re-runs the search and
// commopt suites at the committed BENCH_*.json reports' scale/topk and diffs
// the fresh counts and simulator cycles against them (never wall time, which
// is host-dependent). Any metric beyond threshold exits 3. -benchdiff diffs
// two already-written report files the same way without running anything.
//
// Usage:
//
//	phloembench -exp all
//	phloembench -exp fig9 -scale full -v
//	phloembench -exp compare -j 4
//	phloembench -benchdiff BENCH_search.json fresh.json
package main

import (
	"flag"
	"fmt"
	"os"

	"phloem/internal/bench"
	"phloem/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: table3|table4|table5|fig6|fig9|fig10|fig11|fig12|fig13|fig14|ablations|chaos|telemetry|search|interrupt|commopt|native|compare|all")
	scale := flag.String("scale", "test", "input scale: test|full")
	verbose := flag.Bool("v", false, "print per-input rows")
	chaosSeeds := flag.Int("chaos-seeds", 4, "seeded fault plans to add to the chaos sweep (beyond the named plans)")
	parallel := flag.Int("j", 0,
		"autotune/search worker parallelism (0 = GOMAXPROCS, 1 = serial; results are identical for every value)")
	searchOut := flag.String("search-out", "BENCH_search.json",
		"output path for the -exp search report (for -exp compare: the committed report to diff against; \"\" skips it)")
	commOptOut := flag.String("commopt-out", "BENCH_commopt.json",
		"output path for the -exp commopt report (for -exp compare: the committed report to diff against; \"\" skips it)")
	nativeOut := flag.String("native-out", "BENCH_native.json",
		"output path for the -exp native report (sim-vs-native wall time and the scale sweep)")
	topK := flag.Int("topk", 0,
		"with -exp search: K for the static rank-and-prune leg (0 = default 5)")
	benchdiff := flag.Bool("benchdiff", false,
		"diff two BENCH report files (old new) with the regression thresholds and exit 3 on regression; no benchmarks are run")
	cyclesTol := flag.Float64("cycles-tol", bench.DefaultDiffOptions().CyclesTolPct,
		"compare/benchdiff: allowed cycle/stall increase in percent before a metric counts as a regression")
	countTol := flag.Int("count-tol", bench.DefaultDiffOptions().CountTol,
		"compare/benchdiff: allowed absolute drift on count metrics (0 = counts must match exactly)")
	flag.Parse()

	diffOpt := bench.DiffOptions{CyclesTolPct: *cyclesTol, CountTol: *countTol}
	if *benchdiff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: phloembench -benchdiff [-cycles-tol P] [-count-tol N] old.json new.json")
			os.Exit(2)
		}
		findings, err := bench.DiffReportFiles(os.Stdout, flag.Arg(0), flag.Arg(1), diffOpt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phloembench:", err)
			os.Exit(1)
		}
		if len(bench.Regressions(findings)) > 0 {
			os.Exit(3)
		}
		return
	}

	cfg := bench.Config{Scale: workloads.ScaleTest, Out: os.Stdout, Verbose: *verbose,
		Parallelism: *parallel, TopK: *topK}
	if *scale == "full" {
		cfg.Scale = workloads.ScaleFull
	}

	run := func() error {
		switch *exp {
		case "table3":
			bench.Table3(cfg)
		case "table4":
			bench.Table4(cfg)
		case "table5":
			bench.Table5(cfg)
		case "fig6":
			return bench.Fig6(cfg)
		case "fig9", "fig10", "fig11":
			var results []*bench.BenchResult
			for _, b := range workloads.Benchmarks(cfg.Scale) {
				fmt.Fprintf(os.Stderr, "running %s...\n", b.Name)
				r, err := bench.RunBenchmark(cfg, b)
				if err != nil {
					return err
				}
				results = append(results, r)
			}
			switch *exp {
			case "fig9":
				bench.Fig9(cfg, results)
			case "fig10":
				bench.Fig10(cfg, results)
			case "fig11":
				bench.Fig11(cfg, results)
			}
		case "fig12":
			return bench.Fig12(cfg)
		case "fig13":
			return bench.Fig13(cfg)
		case "fig14":
			return bench.Fig14(cfg)
		case "ablations":
			return bench.Ablations(cfg)
		case "chaos":
			return bench.Chaos(cfg, *chaosSeeds)
		case "interrupt":
			return bench.InterruptResume(cfg)
		case "telemetry":
			return bench.Telemetry(cfg)
		case "search":
			if err := bench.SearchPerfJSON(cfg, *searchOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *searchOut)
		case "commopt":
			if err := bench.CommOptJSON(cfg, *commOptOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *commOptOut)
		case "native":
			if err := bench.NativeJSON(cfg, *nativeOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *nativeOut)
		case "compare":
			findings, err := bench.Compare(cfg, *searchOut, *commOptOut, diffOpt)
			if err != nil {
				return err
			}
			if n := len(bench.Regressions(findings)); n > 0 {
				fmt.Fprintf(os.Stderr, "phloembench: %d metric(s) regressed beyond threshold\n", n)
				os.Exit(3)
			}
		case "all":
			return bench.All(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		return nil
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phloembench:", err)
		os.Exit(1)
	}
}
