// Command phloemc compiles a serial C-subset kernel into a pipeline and
// prints its structure (stages, queues, reference accelerators) and,
// with -dump, the generated per-stage IR.
//
// Usage:
//
//	phloemc kernel.c
//	phloemc -threads 4 -passes Q,R,CV -dump kernel.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"phloem/internal/core"
	"phloem/internal/passes"
)

func main() {
	threads := flag.Int("threads", 4, "maximum pipeline threads (SMT width)")
	passList := flag.String("passes", "all",
		"comma-separated passes: Q (always on), R, RA, CV, CH, DCE, or 'all'")
	dump := flag.Bool("dump", false, "print per-stage IR")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: phloemc [flags] kernel.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemc:", err)
		os.Exit(1)
	}

	opt := core.DefaultOptions()
	opt.MaxThreads = *threads
	if *passList != "all" {
		opt.EnableAblation = true
		var p passes.Options
		for _, name := range strings.Split(*passList, ",") {
			switch strings.TrimSpace(strings.ToUpper(name)) {
			case "Q", "":
				// decouple + add queues is always on
			case "R":
				p.Recompute = true
			case "RA":
				p.RAs = true
			case "CV":
				p.CtrlValues = true
			case "CH":
				p.Handlers = true
			case "DCE":
				p.InterstageDCE = true
			default:
				fmt.Fprintf(os.Stderr, "phloemc: unknown pass %q\n", name)
				os.Exit(2)
			}
		}
		opt.Passes = p
	}

	res, err := core.CompileSource(string(src), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemc:", err)
		os.Exit(1)
	}
	fmt.Print(res.Pipeline.Describe())
	if *dump {
		fmt.Println()
		fmt.Print(res.Pipeline.DumpStages())
	}
}
