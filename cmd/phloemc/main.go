// Command phloemc compiles a serial C-subset kernel into a pipeline and
// prints its structure (stages, queues, reference accelerators) and,
// with -dump, the generated per-stage IR.
//
// With -lint it instead runs the static pipeline verifier over the
// compiled pipeline and prints every diagnostic (warnings included, which
// a normal compile does not reject), exiting non-zero if any are errors.
//
// With -effects it stops after the frontend and prints the memory-effects
// analysis: per-parameter points-to sets, the MOD/REF summary of every
// array access, and the alias verdict for each parameter pair. Exits 1
// when the kernel has a may-alias conflict the analysis cannot prove safe.
//
// With -cost it compiles the kernel and prints the static cost model's
// report: per-entity cycle estimates (abstract units), the predicted
// bottleneck, per-core issue load, and per-queue token traffic with the
// recommended capacity. This is the same model the autotuner's -topk
// pruning ranks candidates with.
//
// With -commopt it compiles the kernel, applies the static
// queue-communication optimization pass (internal/commopt), and prints its
// plan: per-queue class, burst, commitment floor, before/after capacity,
// and predicted occupancy, plus any multicast fan-out rewrites. The
// printed pipeline below the plan reflects the applied assignments.
//
// Exit codes: 0 clean (warnings allowed), 1 compile or verifier errors,
// 2 usage errors, 4 search cancelled by -timeout (the partial best-so-far
// result is still printed).
//
// With -autotune <bench> it runs the profile-guided search for one of the
// built-in workload benchmarks on its training inputs (no kernel argument)
// and prints the chosen pipeline plus search statistics; -j sets the search
// worker parallelism (results are identical at every level), and -topk N
// restricts measurement to the N best candidates by static predicted cost.
// -timeout bounds the search in wall-clock time: on expiry the best
// pipeline measured so far is printed and the process exits 4. -checkpoint
// journals every completed measurement to a file, and -resume replays a
// journal left by an interrupted run, reproducing the uninterrupted result
// byte-identically without re-simulating finished candidates.
//
// The search itself is observable (internal/obs), strictly opt-in:
// -progress draws a live measured/remaining/ETA line on stderr, -search-stats
// prints per-phase wall-time and candidate-lifecycle metrics after the run,
// and -search-trace writes the whole search as Chrome trace_event JSON (one
// track per worker, per-candidate phase spans). With none of these flags the
// Observer stays nil and the search output is bit-identical.
//
// Usage:
//
//	phloemc kernel.c
//	phloemc -threads 4 -passes Q,R,CV -dump kernel.c
//	phloemc -lint kernel.c
//	phloemc -effects kernel.c
//	phloemc -cost kernel.c
//	phloemc -autotune BFS -j 4 -topk 5
//	phloemc -autotune BFS -progress -search-stats -search-trace search.json
//	phloemc -autotune BFS -timeout 30s -checkpoint bfs.ckpt
//	phloemc -autotune BFS -checkpoint bfs.ckpt -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"phloem/internal/arch"
	"phloem/internal/bench"
	"phloem/internal/commopt"
	"phloem/internal/core"
	"phloem/internal/costmodel"
	"phloem/internal/effects"
	"phloem/internal/ir"
	"phloem/internal/obs"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/source"
	"phloem/internal/verify"
	"phloem/internal/workloads"
)

// injectRogueCode plants a control code no consumer dispatches next to the
// first control enqueue it finds. Used by -lint-inject to demonstrate what
// a verifier failure looks like on otherwise-clean source.
func injectRogueCode(pl *pipeline.Pipeline) {
	for _, st := range pl.Stages {
		for i, s := range st.Body {
			if ec, ok := s.(*ir.EnqCtrl); ok {
				rogue := &ir.EnqCtrl{Q: ec.Q, Code: arch.CtrlUser + 7}
				st.Body = append(st.Body[:i:i], append([]ir.Stmt{rogue}, st.Body[i:]...)...)
				return
			}
		}
	}
}

// autotuneFlags carries the -autotune run configuration.
type autotuneFlags struct {
	parallelism, threads, topK int
	timeout                    time.Duration
	checkpoint                 string
	resume                     bool
	progress                   bool
	searchTrace                string
	searchStats                bool
}

// runAutotune searches the candidate space of one built-in workload
// benchmark on its training inputs and prints the winning pipeline plus
// search statistics. Returns cancelled=true when the -timeout expired and
// the printed result is the partial best-so-far.
func runAutotune(name string, f autotuneFlags) (cancelled bool, err error) {
	wl, err := workloads.ByName(workloads.ScaleTest, name)
	if err != nil {
		return false, err
	}
	prog, err := workloads.CompileSerial(wl.SerialSource)
	if err != nil {
		return false, err
	}
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.MaxThreads = f.threads
	opt.Training = bench.Trainers(wl)
	opt.Parallelism = f.parallelism
	opt.TopK = f.topK
	opt.Deadline = f.timeout
	opt.Checkpoint = f.checkpoint
	opt.Resume = f.resume
	// Observability is strictly opt-in: with none of the flags set the
	// Observer stays nil and the search output is bit-identical.
	var observers obs.Tee
	var col *obs.Collector
	if f.progress {
		observers = append(observers, obs.NewProgress(os.Stderr))
	}
	if f.searchTrace != "" || f.searchStats {
		col = obs.NewCollector()
		observers = append(observers, col)
	}
	if len(observers) > 0 {
		opt.Observer = observers
	}
	start := time.Now()
	res, err := core.Compile(prog, opt)
	if err != nil {
		return false, err
	}
	elapsed := time.Since(start)
	fmt.Print(res.Pipeline.Describe())
	fmt.Printf("\nsearch: enumerated %d candidates, measured %d, deduplicated %d, skipped %d\n",
		res.Enumerated, res.Searched, res.Deduped, len(res.Skips))
	if f.topK > 0 {
		fmt.Printf("static rank: pruned %d candidates outside top-%d (rank phase took %dms)\n",
			res.Pruned, f.topK, res.RankMillis)
	}
	if res.Replayed > 0 {
		fmt.Printf("checkpoint: replayed %d measurements from %s\n", res.Replayed, f.checkpoint)
	}
	fmt.Printf("best training run: %d cycles; search took %s (parallelism %d)\n",
		res.TrainCycles, elapsed.Round(time.Millisecond), f.parallelism)
	if res.Cancelled {
		fmt.Printf("search cancelled (%v): result is the best of the candidates measured before the cut\n",
			res.CancelCause)
	}
	if col != nil {
		if f.searchStats {
			fmt.Printf("\n%s", col.Metrics().String())
		}
		if f.searchTrace != "" {
			w, err := os.Create(f.searchTrace)
			if err != nil {
				return res.Cancelled, err
			}
			if err := col.WriteChromeTrace(w); err != nil {
				w.Close()
				return res.Cancelled, err
			}
			if err := w.Close(); err != nil {
				return res.Cancelled, err
			}
			fmt.Printf("search trace: wrote %s (%d events; open in chrome://tracing or Perfetto)\n",
				f.searchTrace, col.Len())
		}
	}
	return res.Cancelled, nil
}

func main() {
	threads := flag.Int("threads", 4, "maximum pipeline threads (SMT width)")
	passList := flag.String("passes", "all",
		"comma-separated passes: Q (always on), R, RA, CV, CH, DCE, or 'all'")
	dump := flag.Bool("dump", false, "print per-stage IR")
	lint := flag.Bool("lint", false, "run the static pipeline verifier and print its report")
	effDump := flag.Bool("effects", false,
		"print the frontend memory-effects analysis (points-to, MOD/REF, alias verdicts) and stop")
	lintInject := flag.Bool("lint-inject", false,
		"with -lint: inject a control-protocol violation first (demonstration)")
	costDump := flag.Bool("cost", false,
		"print the static cost model's report (bottleneck, per-entity estimates, queue capacity plan)")
	commOpt := flag.Bool("commopt", false,
		"apply the static queue-communication optimization pass and print its capacity/fan-out plan")
	autotuneBench := flag.String("autotune", "",
		"run the profile-guided search for a built-in benchmark (e.g. BFS) instead of compiling a kernel file")
	parallel := flag.Int("j", 0,
		"with -autotune: search worker parallelism (0 = GOMAXPROCS, 1 = serial; results are identical for every value)")
	topK := flag.Int("topk", 0,
		"with -autotune: measure only the K best candidates by static predicted cost (0 = measure all)")
	timeout := flag.Duration("timeout", 0,
		"with -autotune: wall-clock search budget; on expiry the best-so-far pipeline is printed and the exit code is 4 (0 = unbounded)")
	checkpoint := flag.String("checkpoint", "",
		"with -autotune: journal completed measurements to this file so an interrupted search can be resumed")
	resume := flag.Bool("resume", false,
		"with -autotune: replay measurements from the -checkpoint journal instead of re-simulating them")
	progress := flag.Bool("progress", false,
		"with -autotune: live search progress on stderr (measured/remaining/ETA)")
	searchTrace := flag.String("search-trace", "",
		"with -autotune: write the search itself as Chrome trace_event JSON (one track per worker, per-candidate phase spans)")
	searchStats := flag.Bool("search-stats", false,
		"with -autotune: print per-phase wall-time and candidate-lifecycle metrics after the search")
	flag.Parse()
	if *autotuneBench != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: phloemc -autotune <bench> [-j N] [-topk K] [-timeout D] [-checkpoint F [-resume]] (no kernel argument)")
			os.Exit(2)
		}
		if *resume && *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "phloemc: -resume requires -checkpoint")
			os.Exit(2)
		}
		cancelled, err := runAutotune(*autotuneBench, autotuneFlags{
			parallelism: *parallel, threads: *threads, topK: *topK,
			timeout: *timeout, checkpoint: *checkpoint, resume: *resume,
			progress: *progress, searchTrace: *searchTrace, searchStats: *searchStats,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "phloemc:", err)
			// A deadline so tight the search never got started still honors
			// the cancellation exit code, it just has no partial result.
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				os.Exit(4)
			}
			os.Exit(1)
		}
		if cancelled {
			os.Exit(4)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: phloemc [flags] kernel.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemc:", err)
		os.Exit(1)
	}

	opt := core.DefaultOptions()
	opt.MaxThreads = *threads
	if *passList != "all" {
		opt.EnableAblation = true
		var p passes.Options
		for _, name := range strings.Split(*passList, ",") {
			switch strings.TrimSpace(strings.ToUpper(name)) {
			case "Q", "":
				// decouple + add queues is always on
			case "R":
				p.Recompute = true
			case "RA":
				p.RAs = true
			case "CV":
				p.CtrlValues = true
			case "CH":
				p.Handlers = true
			case "DCE":
				p.InterstageDCE = true
			default:
				fmt.Fprintf(os.Stderr, "phloemc: unknown pass %q\n", name)
				os.Exit(2)
			}
		}
		opt.Passes = p
	}

	if *effDump {
		fn, err := source.Parse(string(src))
		if err == nil {
			err = source.Check(fn)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "phloemc:", err)
			os.Exit(1)
		}
		eff := effects.Analyze(fn)
		fmt.Print(eff.Dump())
		for _, w := range eff.Warnings() {
			fmt.Println(w)
		}
		if err := eff.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "phloemc:", err)
			os.Exit(1)
		}
		return
	}

	if *lint {
		// Lint compiles with verification deferred so the full report —
		// warnings included — can be printed, rather than just the first
		// batch of errors a rejected Compile would surface.
		opt.SkipVerify = true
		if *lintInject {
			opt.PostBuild = injectRogueCode
		}
		res, err := core.CompileSource(string(src), opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phloemc:", err)
			os.Exit(1)
		}
		for _, w := range res.SourceWarnings {
			fmt.Println(w)
		}
		rep := verify.Check(res.Pipeline)
		if len(rep.Diags) == 0 {
			fmt.Printf("%s: pipeline %s verifies clean\n", flag.Arg(0), rep.Pipeline)
			return
		}
		fmt.Print(rep.String())
		if rep.HasErrors() {
			os.Exit(1)
		}
		return
	}

	res, err := core.CompileSource(string(src), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phloemc:", err)
		os.Exit(1)
	}
	if *costDump {
		rep, err := costmodel.Analyze(res.Pipeline, arch.DefaultConfig(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "phloemc:", err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		return
	}
	if *commOpt {
		plan, err := commopt.Apply(res.Pipeline, arch.DefaultConfig(1),
			commopt.Options{Capacities: true, Multicast: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "phloemc:", err)
			os.Exit(1)
		}
		fmt.Print(plan.String())
		fmt.Println(plan.Summary())
		fmt.Println()
	}
	fmt.Print(res.Pipeline.Describe())
	if *dump {
		fmt.Printf("\nalias: %s\n\n", res.AliasStats)
		fmt.Print(res.Pipeline.DumpStages())
	}
}
