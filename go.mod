module phloem

go 1.22
