package phloem_test

import (
	"strings"
	"testing"

	"phloem"
)

const testKernel = `
#pragma phloem
void sumidx(int* restrict a, int* restrict b, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    int v = b[idx];
    acc = acc + v;
  }
  out[0] = acc;
}
`

func bindings(n int) phloem.Bindings {
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64((i * 7) % n)
		b[i] = int64(i * i)
	}
	return phloem.Bindings{
		Ints: map[string][]int64{
			"a": a, "b": b, "out": make([]int64, 1),
		},
		Scalars: map[string]int64{"n": int64(n)},
	}
}

func TestPublicAPICompileAndRun(t *testing.T) {
	res, err := phloem.Compile(testKernel, phloem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.NumStages() < 2 {
		t.Errorf("expected a multi-stage pipeline, got %d stages", res.Pipeline.NumStages())
	}
	const n = 3000
	machine := phloem.DefaultMachine(1)
	serStats, serInst, err := phloem.Run(phloem.Serial(res), machine, bindings(n))
	if err != nil {
		t.Fatal(err)
	}
	pipeStats, pipeInst, err := phloem.Run(res.Pipeline, machine, bindings(n))
	if err != nil {
		t.Fatal(err)
	}
	if serInst.Arrays["out"].Ints()[0] != pipeInst.Arrays["out"].Ints()[0] {
		t.Fatalf("results differ: serial %d vs pipeline %d",
			serInst.Arrays["out"].Ints()[0], pipeInst.Arrays["out"].Ints()[0])
	}
	if pipeStats.Cycles == 0 || serStats.Cycles == 0 {
		t.Fatal("zero cycle counts")
	}
	t.Logf("serial %d cycles, pipeline %d cycles (%.2fx)",
		serStats.Cycles, pipeStats.Cycles,
		float64(serStats.Cycles)/float64(pipeStats.Cycles))
}

func TestPublicAPICompileErrors(t *testing.T) {
	if _, err := phloem.Compile("void k(int* a) { a[0] = 1; }",
		phloem.DefaultOptions()); err != nil {
		// non-phloem function without restrict is fine (no pragma)...
		t.Logf("compile: %v", err)
	}
	// A single unqualified array is provably safe (nothing to alias), so it
	// compiles; an unprovable may-alias pair must still fail with E0.
	if _, err := phloem.Compile("#pragma phloem\nvoid k(int* a) { a[0] = 1; }",
		phloem.DefaultOptions()); err != nil {
		t.Errorf("single unqualified array should compile: %v", err)
	}
	mayAlias := `#pragma phloem
void k(int* idx, int* data, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = idx[i];
    data[j] = i;
  }
}`
	if _, err := phloem.Compile(mayAlias, phloem.DefaultOptions()); err == nil {
		t.Error("unprovable may-alias pair with #pragma phloem must fail")
	} else if !strings.Contains(err.Error(), "[E0]") {
		t.Errorf("rejection should carry the E0 code: %v", err)
	}
	if _, err := phloem.Compile("not a kernel", phloem.DefaultOptions()); err == nil {
		t.Error("garbage input must fail")
	}
}

func TestAutotuneMode(t *testing.T) {
	opt := phloem.DefaultOptions()
	opt.Mode = phloem.Autotune
	opt.Training = []phloem.TrainFunc{
		func(p *phloem.Pipeline, _ phloem.Budget) (uint64, error) {
			st, _, err := phloem.Run(p, phloem.DefaultMachine(1), bindings(400))
			if err != nil {
				return 0, err
			}
			return st.Cycles, nil
		},
	}
	res, err := phloem.Compile(testKernel, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Searched < 2 {
		t.Errorf("autotune searched %d pipelines", res.Searched)
	}
}
