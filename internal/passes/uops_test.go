package passes_test

import (
	"testing"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/graph"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func buildBFSWith(t *testing.T, opt passes.Options) *pipeline.Pipeline {
	t.Helper()
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cands := an.Candidates(analysis.ProgramPhases(p.Body)[0])
	var movable []*analysis.Candidate
	for _, c := range cands {
		if !c.PrefetchOnly {
			movable = append(movable, c)
		}
	}
	pipe, err := passes.Build(p, [][]*analysis.Candidate{analysis.OrderPoints(movable)},
		opt, passes.DefaultBuildConfig())
	if err != nil {
		t.Fatalf("[%s]: %v", opt, err)
	}
	return pipe
}

// TestPassesReduceInstructionCounts checks the property behind Fig. 6: each
// added pass removes dynamic work — DCE removes unneeded markers, handlers
// remove per-item checks, RAs take the loads off the threads entirely.
func TestPassesReduceInstructionCounts(t *testing.T) {
	g := graph.Grid("grid", 32, 32, 7)
	ladder := []struct {
		name string
		opt  passes.Options
	}{
		{"CV", passes.Options{Recompute: true, CtrlValues: true}},
		{"CV+DCE", passes.Options{Recompute: true, CtrlValues: true, InterstageDCE: true}},
		{"CV+DCE+CH", passes.Options{Recompute: true, CtrlValues: true, InterstageDCE: true, Handlers: true}},
		{"full (RA)", passes.Default()},
	}
	var prev uint64
	for i, cfg := range ladder {
		pipe := buildBFSWith(t, cfg.opt)
		inst, err := pipeline.Instantiate(pipe, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		st, err := inst.Run()
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		t.Logf("%-12s %8d uops %8d cycles", cfg.name, st.Issued, st.Cycles)
		if i > 0 && st.Issued >= prev {
			t.Errorf("%s should run fewer micro-ops than the previous config (%d >= %d)",
				cfg.name, st.Issued, prev)
		}
		prev = st.Issued
	}
}

// TestGlueElisionChainsRAs: the full BFS pipeline must contain a chained RA
// pair (one RA's output queue is another's input) and no forwarding-only
// thread stage.
func TestGlueElisionChainsRAs(t *testing.T) {
	pipe := buildBFSWith(t, passes.Default())
	chained := false
	for _, a := range pipe.RAs {
		for _, b := range pipe.RAs {
			if a.OutQ == b.InQ {
				chained = true
			}
		}
	}
	if !chained {
		t.Errorf("expected chained RAs:\n%s", pipe.Describe())
	}
	// With the nodes->edges chain in place, the forwarding-only relay stage
	// dissolves, leaving exactly three thread stages (driver, vertex
	// doubler, update).
	if pipe.NumStages() != 3 {
		t.Errorf("glue elision should leave 3 thread stages, got %d:\n%s",
			pipe.NumStages(), pipe.Describe())
	}
}
