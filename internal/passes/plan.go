// Package passes implements Phloem's pipelining passes (Sec. IV-B): decouple
// + add queues, recompute, accelerate accesses (reference accelerators with
// chaining), control values, control-value handlers, and inter-stage dead
// code elimination, plus pipeline replication (Sec. IV-C).
//
// The passes operate on a per-phase plan: the decoupling points split the
// loop nest into stage regions; liveness determines the value bundles that
// cross each boundary and the loop level (rate) at which each value is sent;
// the later passes rewrite the plan (trimming bundles, offloading loads to
// RAs, switching the framing protocol); finally codegen emits each stage's
// IR from the plan.
//
// Inter-stage framing protocols (in increasing order of sophistication):
//
//   - flag mode ("add queues" only): the producer precedes every group and
//     item with a 1 flag on the boundary queue and terminates each loop
//     level with a 0 flag; the consumer mirrors the loop structure with
//     while(deq) loops. This is the functionally correct but slow pipeline
//     of pass 1.
//   - control-value mode: flags disappear; group ends are in-band control
//     values (CtrlNext+depth), the stream ends with CtrlEnd, and the
//     consumer tests is_control() after each item (pass 4). With handlers
//     (pass 5) the explicit test disappears: the hardware redirects to the
//     stage's dispatch block when a control value is about to be dequeued.
//   - inter-stage DCE (pass 6) removes group-end control values for loop
//     levels no consumer acts on.
package passes

import (
	"fmt"

	"phloem/internal/analysis"
	"phloem/internal/ir"
)

// Options selects which passes run (Fig. 6's ablation knobs). The zero value
// is pass-1-only ("add queues"); Default() enables everything.
type Options struct {
	Recompute     bool // pass 2
	RAs           bool // pass 3 (includes chaining/glue elision)
	CtrlValues    bool // pass 4
	Handlers      bool // pass 5 (requires CtrlValues)
	InterstageDCE bool // pass 6 (requires CtrlValues)
}

// Default returns all passes enabled.
func Default() Options {
	return Options{Recompute: true, RAs: true, CtrlValues: true, Handlers: true, InterstageDCE: true}
}

func (o Options) String() string {
	s := "Q"
	if o.Recompute {
		s += ",R"
	}
	if o.RAs {
		s += ",RA"
	}
	if o.CtrlValues {
		s += ",CV"
	}
	if o.Handlers {
		s += ",CH"
	}
	if o.InterstageDCE {
		s += ",DCE"
	}
	return s
}

// stageOf maps statements and loops of one phase's nest to stage indices.
type plan struct {
	p      *ir.Prog
	nest   *ir.Loop
	points []*analysis.Candidate
	n      int // number of stages

	stmtStage map[ir.Stmt]int
	loopOwner map[*ir.Loop]int
	loopDepth map[*ir.Loop]int
	// pointChain[k] is the loop chain containing point k (outermost first);
	// boundary k (between stage k-1 and k) spans exactly these loops.
	pointChain [][]*ir.Loop

	// bundles[k][d] lists the values crossing boundary k (1..n-1) at loop
	// depth d (1-based).
	bundles [][][]ir.Var
	// feedback lists values defined in a later stage and used in an earlier
	// one, carried on dedicated queues.
	feedback []feedbackVal

	defStage map[ir.Var]int
	defDepth map[ir.Var]int
	useStage map[ir.Var]map[int]bool

	affine map[ir.Var]analysis.AffineDef

	// preamble handling
	preamblePure []ir.Stmt       // pure scalar init statements (replicated)
	preambleS0   []ir.Stmt       // statements pinned to stage 0
	preambleVars map[ir.Var]bool // vars defined in the pure preamble
	onceVals     [][]ir.Var      // per boundary: level-0 values sent once
	pinnedStmts  map[ir.Stmt]int // loop-control statements pinned to a stage
	storedSlots  map[int]bool
	swappedSlots map[int]bool
	// hoisted maps naively-communicated index temporaries (pass 1 without
	// recompute) to their defining statements, emitted at the crossing.
	hoisted  map[ir.Var]*ir.Assign
	opt      Options
	phaseIdx int
}

type feedbackVal struct {
	v        ir.Var
	from, to int
	depth    int // loop depth of the carrying loop
	loop     *ir.Loop
}

func (pl *plan) stageOfStmt(s ir.Stmt) int {
	if st, ok := pl.pinnedStmts[s]; ok {
		return st
	}
	return pl.stmtStage[s]
}

// assignStages walks the nest in traversal order, bumping the stage counter
// at each decoupling point. Loop-control statements (counted-loop
// increments) are pinned to the loop's owner.
func (pl *plan) assignStages() error {
	pl.stmtStage = map[ir.Stmt]int{}
	pl.loopOwner = map[*ir.Loop]int{}
	pl.loopDepth = map[*ir.Loop]int{}
	pl.pinnedStmts = map[ir.Stmt]int{}
	pl.pointChain = make([][]*ir.Loop, pl.n)

	pointIdx := map[ir.Stmt]int{}
	for k, c := range pl.points {
		pointIdx[c.Stmt] = k + 1 // boundary k+1 starts stage k+1
	}

	cur := 0
	var chain []*ir.Loop
	var walk func(list []ir.Stmt) error
	walk = func(list []ir.Stmt) error {
		for _, s := range list {
			if b, ok := pointIdx[s]; ok {
				if b != cur+1 {
					return fmt.Errorf("passes: decoupling points out of traversal order (boundary %d reached at stage %d)", b, cur)
				}
				cur = b
				pl.pointChain[b] = append([]*ir.Loop(nil), chain...)
			}
			switch s := s.(type) {
			case *ir.If:
				// Decoupling points never sit inside conditionals; the whole
				// subtree belongs to the current stage.
				pl.stmtStage[s] = cur
				pl.assignSubtree(s.Then, cur, len(chain))
				pl.assignSubtree(s.Else, cur, len(chain))
			case *ir.Loop:
				pl.loopOwner[s] = cur
				pl.loopDepth[s] = len(chain) + 1
				pl.stmtStage[s] = cur
				pl.assignSubtree(s.Pre, cur, len(chain))
				chain = append(chain, s)
				// Pin the counted increment to the owner: the for-lowering
				// puts `i = i + 1` at the body's end, which would otherwise
				// land in the last stage.
				owner := cur
				if s.Counted != nil {
					if inc := findIncrement(s); inc != nil {
						pl.pinnedStmts[inc] = owner
					}
				}
				if err := walk(s.Body); err != nil {
					return err
				}
				chain = chain[:len(chain)-1]
				// Pre statements evaluate at every iteration under the
				// owner's control.
				pl.pinSubtree(s.Pre, owner)
			default:
				pl.stmtStage[s] = cur
			}
		}
		return nil
	}
	if err := walk([]ir.Stmt{pl.nest}); err != nil {
		return err
	}
	if cur != pl.n-1 {
		return fmt.Errorf("passes: %d points produced %d stages, expected %d", len(pl.points), cur+1, pl.n)
	}
	return nil
}

// assignSubtree assigns every statement in a fully-owned subtree to stage.
func (pl *plan) assignSubtree(list []ir.Stmt, stage, depth int) {
	for _, s := range list {
		pl.stmtStage[s] = stage
		switch s := s.(type) {
		case *ir.If:
			pl.assignSubtree(s.Then, stage, depth)
			pl.assignSubtree(s.Else, stage, depth)
		case *ir.Loop:
			pl.loopOwner[s] = stage
			pl.loopDepth[s] = depth + 1
			for _, ps := range s.Pre {
				pl.stmtStage[ps] = stage
			}
			pl.assignSubtree(s.Body, stage, depth+1)
		}
	}
}

// pinSubtree pins a statement subtree to a stage.
func (pl *plan) pinSubtree(list []ir.Stmt, stage int) {
	for _, s := range list {
		pl.pinnedStmts[s] = stage
		switch s := s.(type) {
		case *ir.If:
			pl.pinSubtree(s.Then, stage)
			pl.pinSubtree(s.Else, stage)
		case *ir.Loop:
			pl.pinSubtree(s.Pre, stage)
			pl.pinSubtree(s.Body, stage)
		}
	}
}

// findIncrement locates the final `ind = ind + 1` statement of a counted
// loop's body.
func findIncrement(lp *ir.Loop) ir.Stmt {
	for i := len(lp.Body) - 1; i >= 0; i-- {
		if a, ok := lp.Body[i].(*ir.Assign); ok && a.Dst == lp.Counted.Ind {
			if bin, ok := a.Src.(*ir.RvalBin); ok && bin.Op == ir.OpAdd &&
				!bin.A.IsConst && bin.A.Var == lp.Counted.Ind &&
				bin.B.IsConst && bin.B.Imm == 1 {
				return a
			}
		}
	}
	return nil
}
