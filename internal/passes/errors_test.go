package passes_test

import (
	"strings"
	"testing"

	"phloem/internal/analysis"
	"phloem/internal/passes"
	"phloem/internal/workloads"
)

// TestRaceRuleRejectsSplitAccesses: a point set that separates a read-write
// array's load from its store must be rejected at build time, not silently
// produce racy code.
func TestRaceRuleRejectsSplitAccesses(t *testing.T) {
	src := `
#pragma phloem
void k(int* restrict a, int* restrict x, int* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    int old = x[idx];
    int t = y[old];
    x[idx] = t;
  }
}
`
	p, err := workloads.CompileSerial(src)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cands := an.Candidates(analysis.ProgramPhases(p.Body)[0])
	// Force a boundary at the y load: it sits between x's load and store,
	// splitting them across stages.
	var pts []*analysis.Candidate
	for _, c := range cands {
		if p.Slots[c.Load.Slot].Name == "y" {
			pts = append(pts, c)
		}
	}
	if len(pts) != 1 {
		t.Fatalf("expected the y load as a candidate, got %d", len(pts))
	}
	_, err = passes.Build(p, [][]*analysis.Candidate{pts}, passes.Default(),
		passes.DefaultBuildConfig())
	if err == nil {
		t.Fatal("expected a race-rule rejection")
	}
	if !strings.Contains(err.Error(), "race rule") {
		t.Errorf("error should name the race rule: %v", err)
	}
}

// TestPointsOutOfOrderRejected: the builder requires traversal order.
func TestPointsOutOfOrderRejected(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cands := an.Candidates(analysis.ProgramPhases(p.Body)[0])
	var movable []*analysis.Candidate
	for _, c := range cands {
		if !c.PrefetchOnly {
			movable = append(movable, c)
		}
	}
	if len(movable) < 2 {
		t.Skip("not enough candidates")
	}
	ordered := analysis.OrderPoints(movable[:2])
	reversed := []*analysis.Candidate{ordered[1], ordered[0]}
	if _, err := passes.Build(p, [][]*analysis.Candidate{reversed},
		passes.Default(), passes.DefaultBuildConfig()); err == nil {
		t.Error("out-of-order points should be rejected")
	}
}

// TestRABudgetRespected: with zero accelerators allowed, the pipeline must
// fall back to thread-only stages (never exceed the budget).
func TestRABudgetRespected(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cands := an.Candidates(analysis.ProgramPhases(p.Body)[0])
	var movable []*analysis.Candidate
	for _, c := range cands {
		if !c.PrefetchOnly {
			movable = append(movable, c)
		}
	}
	bc := passes.DefaultBuildConfig()
	bc.MaxRAs = 1
	pipe, err := passes.Build(p, [][]*analysis.Candidate{analysis.OrderPoints(movable)},
		passes.Default(), bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.RAs) > 1 {
		t.Errorf("RA budget 1 exceeded: %d RAs", len(pipe.RAs))
	}
}

// TestOptionsString covers the ablation-label formatting used in reports.
func TestOptionsString(t *testing.T) {
	if got := (passes.Options{}).String(); got != "Q" {
		t.Errorf("zero options: %q", got)
	}
	full := passes.Default().String()
	for _, want := range []string{"Q", "R", "RA", "CV", "CH", "DCE"} {
		if !strings.Contains(full, want) {
			t.Errorf("default options string %q missing %s", full, want)
		}
	}
}

// TestWrongPhaseCountRejected: Build demands one point list per phase.
func TestWrongPhaseCountRejected(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := passes.Build(p, nil, passes.Default(), passes.DefaultBuildConfig()); err == nil {
		t.Error("zero point lists for a one-phase program should be rejected")
	}
}
