package passes

import (
	"fmt"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
)

// BuildConfig carries machine-shape inputs for pipeline construction.
type BuildConfig struct {
	// MaxRAs bounds reference accelerators for the pipeline (Table III: 4).
	MaxRAs int
	// ThreadsPerCore controls how stages map onto hardware threads.
	ThreadsPerCore int
	// BaseCore/BaseThread offset thread assignment (used by replication).
	BaseCore int
}

// DefaultBuildConfig matches the Table III machine.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{MaxRAs: 4, ThreadsPerCore: 4}
}

// Build constructs a pipeline from a program and the chosen decoupling
// points (one point list per phase; a phase with an empty list stays on
// stage 0). This is the "decouple + add queues" transformation plus all the
// optional passes selected in opt.
func Build(p *ir.Prog, pointsPerPhase [][]*analysis.Candidate, opt Options, bc BuildConfig) (*pipeline.Pipeline, error) {
	// Pass dependencies: control-value handlers, RAs, and inter-stage DCE
	// all build on control values.
	if opt.Handlers || opt.RAs || opt.InterstageDCE {
		opt.CtrlValues = true
	}
	if bc.MaxRAs == 0 {
		bc.MaxRAs = 4
	}
	if bc.ThreadsPerCore == 0 {
		bc.ThreadsPerCore = 4
	}

	// Replicable outer loop (Sec. IV-A "Program phases"): a counted
	// top-level loop with parameter/constant bounds whose body holds several
	// loop nests runs in every stage, with barriers between the inner
	// phases. PageRank-Delta has this shape.
	body := p.Body
	var outer *ir.Loop
	var outerPre []ir.Stmt
	if lp, pre, ok := analysis.ReplicableOuter(p.Body); ok {
		outer = lp
		outerPre = pre
		body = lp.Body
	}

	phases := analysis.SplitPhases(body)
	if len(pointsPerPhase) != len(phases) {
		return nil, fmt.Errorf("passes: %d point lists for %d phases", len(pointsPerPhase), len(phases))
	}
	nStages := 1
	for _, pts := range pointsPerPhase {
		if len(pts)+1 > nStages {
			nStages = len(pts) + 1
		}
	}

	pipe := &pipeline.Pipeline{Prog: p}
	stageBodies := make([][]ir.Stmt, nStages)
	raBudget := bc.MaxRAs

	for pi, ph := range phases {
		points := pointsPerPhase[pi]
		if ph.Nest == nil && allPure(ph.Pre) {
			// Pure trailing scalar statements (e.g., the replicated outer
			// loop's induction update) run in every stage.
			for s := 0; s < nStages; s++ {
				stageBodies[s] = append(stageBodies[s], ph.Pre...)
			}
		} else if ph.Nest == nil {
			// Impure trailing statements (e.g., storing a reduction result)
			// read values the deepest stage computed: run them there.
			stageBodies[nStages-1] = append(stageBodies[nStages-1], ph.Pre...)
		} else if len(points) == 0 {
			// Undecoupled loop phase: everything on stage 0.
			var body []ir.Stmt
			body = append(body, ph.Pre...)
			body = append(body, ph.Nest)
			stageBodies[0] = append(stageBodies[0], body...)
		} else {
			bodies, err := buildPhase(p, ph, points, opt, pipe, &raBudget)
			if err != nil {
				return nil, fmt.Errorf("passes: phase %d: %w", pi, err)
			}
			for s, b := range bodies {
				stageBodies[s] = append(stageBodies[s], b...)
			}
		}
		if len(phases) > 1 && pi < len(phases)-1 {
			for s := 0; s < nStages; s++ {
				stageBodies[s] = append(stageBodies[s], &ir.Barrier{})
			}
		}
	}

	if outer != nil {
		// Wrap every stage's phase sequence in its own copy of the outer
		// loop, with a barrier closing each iteration so phases from
		// successive iterations cannot overlap.
		for s := 0; s < nStages; s++ {
			inner := append(stageBodies[s], &ir.Barrier{})
			wrapped := append([]ir.Stmt{}, outerPre...)
			wrapped = append(wrapped, &ir.Loop{
				ID: outer.ID, Pre: outer.Pre, Cond: outer.Cond,
				Counted: outer.Counted, Body: inner,
			})
			stageBodies[s] = wrapped
		}
	}

	for s := 0; s < nStages; s++ {
		pipe.Stages = append(pipe.Stages, &pipeline.Stage{
			Name: fmt.Sprintf("%s.stage%d", p.Name, s),
			Body: stageBodies[s],
		})
	}
	for _, st := range pipe.Stages {
		st.Body = ir.Optimize(p, st.Body)
	}
	if opt.RAs {
		// Pass 3's chaining: stages reduced to pure forwarding dissolve,
		// connecting reference accelerators directly.
		elideGlueStages(pipe)
	}
	compactQueues(pipe)
	for s, st := range pipe.Stages {
		st.Thread = arch.ThreadID{
			Core:   bc.BaseCore + s/bc.ThreadsPerCore,
			Thread: s % bc.ThreadsPerCore,
		}
	}
	pipe.Description = fmt.Sprintf("phloem [%s], %d threads", opt, len(pipe.Stages))
	return pipe, nil
}

// buildPhase plans and generates one phase's stages.
func buildPhase(p *ir.Prog, ph *analysis.Phase, points []*analysis.Candidate,
	opt Options, pipe *pipeline.Pipeline, raBudget *int) ([][]ir.Stmt, error) {

	pl := &plan{
		p:        p,
		nest:     ph.Nest,
		points:   points,
		n:        len(points) + 1,
		opt:      opt,
		phaseIdx: ph.Index,
	}
	if err := pl.assignStages(); err != nil {
		return nil, err
	}
	if err := pl.checkRaceRule(); err != nil {
		return nil, err
	}

	// Preamble split: pure scalar computation is replicated into every
	// stage; the rest stays on stage 0 and its results become once-values.
	pl.preambleVars = map[ir.Var]bool{}
	for _, s := range ph.Pre {
		if a, ok := s.(*ir.Assign); ok && isPureRval(a.Src) {
			pl.preamblePure = append(pl.preamblePure, s)
			pl.preambleVars[a.Dst] = true
			continue
		}
		pl.preambleS0 = append(pl.preambleS0, s)
	}
	preDefs := map[ir.Var]bool{}
	for _, s := range pl.preambleS0 {
		if a, ok := s.(*ir.Assign); ok {
			preDefs[a.Dst] = true
		}
	}

	if err := pl.computeLiveness(preDefs); err != nil {
		return nil, err
	}
	if !opt.Recompute {
		// Pass 1 without pass 2 communicates naively: index temporaries
		// like v+1 are computed by the producer and passed through queues
		// (Fig. 5, pass 1); recompute later moves them back.
		if pl.hoistAffineTemps() {
			if err := pl.computeLiveness(preDefs); err != nil {
				return nil, err
			}
		}
	}
	bs := pl.buildBoundaries()
	if err := pl.validate(bs); err != nil {
		return nil, err
	}
	pl.planRAs(bs, raBudget)
	pl.planRecompute(bs)
	pl.planMarkers(bs, pl.stageActs)

	// Queue and RA wiring.
	cg := &codegen{pl: pl, bs: bs, useCtrl: opt.CtrlValues}
	for k := 1; k < pl.n; k++ {
		b := bs[k]
		prim := b.primaryRA()
		if prim == nil || len(b.itemVars) > 0 {
			b.frameQ = pipe.AddQueue(fmt.Sprintf("p%d.b%d.frame", ph.Index, k))
			b.ctrlQ = b.frameQ
			b.probeQ = b.frameQ
		}
		if cg.useCtrl {
			needSide := len(b.once) > 0
			for lvl := 1; lvl < b.m; lvl++ {
				if len(b.side[lvl]) > 0 {
					needSide = true
				}
			}
			if needSide {
				b.sideQ = pipe.AddQueue(fmt.Sprintf("p%d.b%d.side", ph.Index, k))
			}
		}
		for i, ra := range b.ras {
			ra.inQ = pipe.AddQueue(fmt.Sprintf("p%d.b%d.ra%d.in", ph.Index, k, i))
			ra.outQ = pipe.AddQueue(fmt.Sprintf("p%d.b%d.ra%d.out", ph.Index, k, i))
			if ra.primary {
				b.ctrlQ = ra.inQ
				b.probeQ = ra.outQ
			}
			if ra.emitNext {
				// The scan marker survives only if some stage acts on it.
				d := int(ra.nextCode-arch.CtrlNext) + 2
				ra.emitNext = b.endNeeded[d]
			}
			pipe.RAs = append(pipe.RAs, arch.RASpec{
				Name: ra.name, Mode: ra.mode, Slot: ra.slot,
				InQ: ra.inQ, OutQ: ra.outQ,
				EmitNext: ra.emitNext, NextCode: ra.nextCode,
			})
		}
	}
	for i := range pl.feedback {
		fb := &pl.feedback[i]
		q := pipe.AddQueue(fmt.Sprintf("p%d.fb.%s.%d", ph.Index, p.Vars[fb.v].Name, fb.to))
		cg.fbq = append(cg.fbq, q)
	}

	bodies := make([][]ir.Stmt, pl.n)
	for s := 0; s < pl.n; s++ {
		code, err := cg.genStage(s)
		if err != nil {
			return nil, err
		}
		bodies[s] = code
	}
	return bodies, nil
}

func allPure(list []ir.Stmt) bool {
	for _, s := range list {
		a, ok := s.(*ir.Assign)
		if !ok || !isPureRval(a.Src) {
			return false
		}
	}
	return len(list) > 0
}

func isPureRval(r ir.Rval) bool {
	switch r.(type) {
	case *ir.RvalBin, *ir.RvalUn:
		return true
	}
	return false
}

// stageActs reports whether stage s has work tied to the end of a
// depth-level frame: tail statements or feedback traffic.
func (pl *plan) stageActs(s, depth int) bool {
	chain := pl.pointChain[s]
	if depth < 1 || depth > len(chain) {
		return false
	}
	body := chain[depth-1].Body
	var descend *ir.Loop
	if depth < len(chain) {
		descend = chain[depth]
	}
	acts := false
	var scan func(list []ir.Stmt)
	scan = func(list []ir.Stmt) {
		for _, st := range list {
			if lp, ok := st.(*ir.Loop); ok && lp == descend {
				continue
			}
			if pl.stageOfStmt(st) == s {
				acts = true
				return
			}
			switch st := st.(type) {
			case *ir.If:
				scan(st.Then)
				scan(st.Else)
			case *ir.Loop:
				if pl.loopOwner[st] == s {
					acts = true
					return
				}
				scan(st.Body)
			}
		}
	}
	scan(body)
	if acts {
		return true
	}
	for _, fb := range pl.feedback {
		if (fb.to == s || fb.from == s) && fb.depth == depth {
			return true
		}
	}
	return false
}

// checkRaceRule rejects point sets that split a read-write array's accesses
// across stages (Fig. 4); arrays in a swap class are epoch-synchronized and
// exempt. Accesses are compared per may-alias group: distinct slots the
// frontend's effects analysis could not prove disjoint (Prog.Alias) are
// unioned and must co-locate just like accesses to one array. Restrict
// kernels have all cross-slot verdicts disjoint, so every group is a
// singleton and this is the historical per-slot rule.
func (pl *plan) checkRaceRule() error {
	pl.collectSlotAccess()
	rep := make([]int, len(pl.p.Slots))
	for i := range rep {
		rep[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if rep[i] != i {
			rep[i] = find(rep[i])
		}
		return rep[i]
	}
	conflicts := func(a, b int) bool {
		if pl.p.Alias == nil || a == b {
			return false
		}
		if pl.swappedSlots[a] && pl.swappedSlots[b] {
			return false // a shared swap epoch synchronizes the pair
		}
		return pl.p.Alias.Conflicts(pl.p.Slots[a].Name, pl.p.Slots[b].Name)
	}
	hasPartner := make([]bool, len(pl.p.Slots))
	for a := range pl.p.Slots {
		for b := a + 1; b < len(pl.p.Slots); b++ {
			if conflicts(a, b) {
				rep[find(a)] = find(b)
				hasPartner[a], hasPartner[b] = true, true
			}
		}
	}
	loadStage := map[int]int{}
	storeStage := map[int]int{}
	bad := -1
	var walk func(list []ir.Stmt)
	record := func(m map[int]int, slot, stage int) {
		g := find(slot)
		if prev, ok := m[g]; ok && prev != stage {
			bad = slot
		}
		m[g] = stage
	}
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Assign:
				if ld, ok := s.Src.(*ir.RvalLoad); ok && pl.loadPinned(ld.Slot) {
					record(loadStage, ld.Slot, pl.stageOfStmt(s))
					if st, ok := storeStage[find(ld.Slot)]; ok && st != pl.stageOfStmt(s) {
						bad = ld.Slot
					}
				}
			case *ir.Store:
				if !pl.swappedSlots[s.Slot] || hasPartner[s.Slot] {
					record(storeStage, s.Slot, pl.stageOfStmt(s))
					if lst, ok := loadStage[find(s.Slot)]; ok && lst != pl.stageOfStmt(s) {
						bad = s.Slot
					}
				}
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				walk(s.Pre)
				walk(s.Body)
			}
		}
	}
	walk([]ir.Stmt{pl.nest})
	if bad >= 0 {
		return fmt.Errorf("race rule: reads and writes of %q would land in different stages (Fig. 4)",
			pl.p.Slots[bad].Name)
	}
	return nil
}

// validate rejects program shapes the generator does not support.
// (Depth checks on crossing values happen during liveness, where the
// reaching definition per boundary is known.)
func (pl *plan) validate(bs []*boundary) error {
	_ = bs
	// Every loop containing statements of stage s must be on boundary s's
	// chain, be owned by s, or sit inside an owned subtree.
	var chain []*ir.Loop
	var err error
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, st := range list {
			if err != nil {
				return
			}
			switch st := st.(type) {
			case *ir.If:
				walk(st.Then)
				walk(st.Else)
			case *ir.Loop:
				chain = append(chain, st)
				walk(st.Body)
				chain = chain[:len(chain)-1]
			default:
				s := pl.stageOfStmt(st)
				if s == 0 {
					continue
				}
				// Each enclosing loop must either be on chain(s) or owned
				// by a stage >= its position... enforce: on chain(s) or
				// owner == s.
				for _, lp := range chain {
					if pl.loopOwner[lp] == s {
						continue
					}
					on := false
					for _, c := range pl.pointChain[s] {
						if c == lp {
							on = true
						}
					}
					if !on && pl.loopOwner[lp] < s {
						err = fmt.Errorf("statement of stage %d sits in a loop that stage %d does not span (unsupported shape)", s, s)
						return
					}
				}
			}
		}
	}
	walk([]ir.Stmt{pl.nest})
	return err
}
