package passes

import (
	"fmt"
	"sort"

	"phloem/internal/ir"
)

// codegen emits per-stage IR from the per-phase plan and its boundaries.
type codegen struct {
	pl *plan
	bs []*boundary
	// feedback queue ids parallel to pl.feedback.
	fbq []int
	// fbBySrc/fbByDst index feedback entries by stage.
	useCtrl bool
	labelN  int
}

func (cg *codegen) label(prefix string, s int) string {
	cg.labelN++
	return fmt.Sprintf(".%s.p%d.s%d.%d", prefix, cg.pl.phaseIdx, s, cg.labelN)
}

// genStage produces the phase-body statements for stage s.
func (cg *codegen) genStage(s int) ([]ir.Stmt, error) {
	pl := cg.pl
	var out []ir.Stmt
	var inB, outB *boundary
	if s > 0 {
		inB = cg.bs[s]
	}
	if s+1 < pl.n {
		outB = cg.bs[s+1]
	}

	// Replicated pure preamble, then stage-0 pinned preamble.
	out = append(out, pl.preamblePure...)
	if s == 0 {
		out = append(out, pl.preambleS0...)
	}
	// Once values: receive then forward.
	onceIn := -1
	onceOut := -1
	if inB != nil {
		onceIn = cg.onceQueue(inB)
		for _, v := range inB.once {
			out = append(out, &ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: onceIn}})
		}
	}
	if outB != nil {
		onceOut = cg.onceQueue(outB)
		for _, v := range outB.once {
			out = append(out, &ir.Enq{Q: onceOut, Val: ir.V(v)})
		}
	}

	if inB == nil {
		// Pure producer: original loop structure.
		body, err := cg.genBody([]ir.Stmt{pl.nest}, 0, s, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
		if outB != nil && cg.useCtrl {
			out = append(out, &ir.EnqCtrl{Q: outB.ctrlQ, Code: codeEnd()})
		}
		return out, nil
	}

	if cg.useCtrl {
		body, err := cg.genCtrlConsumer(s, inB, outB)
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
	} else {
		// Counter inits for depth-1 spanning counters.
		out = append(out, cg.counterInits(inB, 1)...)
		body, err := cg.genFlagMirror(s, inB, outB, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
		if outB != nil {
			// Terminate the outermost level downstream.
			out = append(out, &ir.Enq{Q: outB.frameQ, Val: ir.C(0)})
		}
	}
	return out, nil
}

// onceQueue picks the queue carrying once-values for a boundary.
func (cg *codegen) onceQueue(b *boundary) int {
	if !cg.useCtrl {
		return b.frameQ
	}
	return b.sideQ
}

// counterInits emits `v = init` for induction recipes whose loop is at the
// given depth (run at the start of each enclosing frame).
func (cg *codegen) counterInits(b *boundary, depth int) []ir.Stmt {
	var out []ir.Stmt
	vars := cg.sortedRecomputed(b)
	for _, v := range vars {
		r := b.recomputed[v]
		if r.kind == recInduction && r.depth == depth {
			out = append(out, &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpMov, A: r.init}})
		}
	}
	return out
}

// counterIncrements emits `v = v + 1` for induction counters at the depth.
func (cg *codegen) counterIncrements(b *boundary, depth int) []ir.Stmt {
	var out []ir.Stmt
	for _, v := range cg.sortedRecomputed(b) {
		r := b.recomputed[v]
		if r.kind == recInduction && r.depth == depth {
			out = append(out, &ir.Assign{Dst: v,
				Src: &ir.RvalBin{Op: ir.OpAdd, A: ir.V(v), B: ir.C(1)}})
		}
	}
	return out
}

// recomputeInserts emits const/affine rebuilds tied to the given level.
func (cg *codegen) recomputeInserts(b *boundary, level int) []ir.Stmt {
	var out []ir.Stmt
	for _, v := range cg.sortedRecomputed(b) {
		r := b.recomputed[v]
		switch r.kind {
		case recConst:
			if r.depth == level {
				out = append(out, &ir.Assign{Dst: v,
					Src: &ir.RvalUn{Op: ir.OpMov, Float: r.isFloat, A: ir.Operand{IsConst: true, Imm: r.imm}}})
			}
		case recAffine:
			if r.depth == level {
				out = append(out, &ir.Assign{Dst: v,
					Src: &ir.RvalBin{Op: ir.OpAdd, A: ir.V(r.base), B: ir.C(r.off)}})
			}
		}
	}
	return out
}

func (cg *codegen) sortedRecomputed(b *boundary) []ir.Var {
	vars := make([]ir.Var, 0, len(b.recomputed))
	for v := range b.recomputed {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

// feedback helpers -----------------------------------------------------------

// fbDeqsAt returns `v = deq(fbq)` statements for feedback values targeting
// stage s carried at the given depth.
func (cg *codegen) fbDeqsAt(s, depth int) []ir.Stmt {
	var out []ir.Stmt
	for i, fb := range cg.pl.feedback {
		if fb.to == s && fb.depth == depth {
			out = append(out, &ir.Assign{Dst: fb.v, Src: &ir.RvalDeq{Q: cg.fbq[i]}})
		}
	}
	return out
}

// fbEnqsAt returns the feedback enqueues a source stage performs at the end
// of each frame at the carrying depth.
func (cg *codegen) fbEnqsAt(s, depth int) []ir.Stmt {
	var out []ir.Stmt
	for i, fb := range cg.pl.feedback {
		if fb.from == s && fb.depth == depth {
			out = append(out, &ir.Enq{Q: cg.fbq[i], Val: ir.V(fb.v)})
		}
	}
	return out
}

// producer-side structural generation ----------------------------------------

// genBody emits stage-s code for a statement list at the given depth.
// skip marks loops that must not be regenerated (the consumer's spanning
// descend when generating tails).
func (cg *codegen) genBody(list []ir.Stmt, depth, s int, skip map[*ir.Loop]bool) ([]ir.Stmt, error) {
	pl := cg.pl
	var outB *boundary
	if s+1 < pl.n {
		outB = cg.bs[s+1]
	}
	var out []ir.Stmt
	crossed := false

	// emitCrossing emits the boundary-(s+1) traffic for this body's depth.
	// Frame starts (d < outB.m) fire only at the spanning descend loop;
	// item sends fire at the first downstream statement.
	mIn := 0
	if s > 0 && cg.bs[s] != nil {
		mIn = cg.bs[s].m
	}
	emitCrossing := func(d int, atLoop bool) {
		if outB == nil || crossed || d > outB.m || d < 1 {
			return
		}
		if d < outB.m {
			// Frame starts for levels above the stage's own item level are
			// forwarded by the mirror/dispatch structure; frame starts at
			// or below it (values computed by this stage per item) are
			// emitted positionally, after the defining statements.
			positional := atLoop && d >= mIn
			if !positional {
				return
			}
		}
		crossed = true
		if d == outB.m {
			out = append(out, cg.itemSendCode(outB)...)
			return
		}
		// Frame start for level d.
		if cg.useCtrl {
			if outB.startNeeded[d] {
				out = append(out, &ir.EnqCtrl{Q: outB.ctrlQ, Code: codeFrameStart(d)})
				for _, v := range outB.side[d] {
					out = append(out, &ir.Enq{Q: outB.sideQ, Val: ir.V(v)})
				}
			}
		} else {
			out = append(out, &ir.Enq{Q: outB.frameQ, Val: ir.C(1)})
			for _, v := range outB.side[d] {
				out = append(out, &ir.Enq{Q: outB.frameQ, Val: ir.V(v)})
			}
		}
	}

	downstreamIn := func(st ir.Stmt) bool {
		has := false
		var walkList func(l []ir.Stmt)
		walkList = func(l []ir.Stmt) {
			for _, x := range l {
				if has {
					return
				}
				if pl.stageOfStmt(x) > s {
					has = true
					return
				}
				switch x := x.(type) {
				case *ir.Loop:
					walkList(x.Body)
				case *ir.If:
					walkList(x.Then)
					walkList(x.Else)
				}
			}
		}
		if lp, ok := st.(*ir.Loop); ok {
			walkList(lp.Body)
		}
		return has
	}

	for _, st := range list {
		stage := pl.stageOfStmt(st)
		if lp, ok := st.(*ir.Loop); ok {
			if skip[lp] {
				continue
			}
			if outB != nil && cg.onChain(outB, lp) && downstreamIn(lp) {
				// The descend loop at this depth: frame traffic for the
				// enclosing level comes first.
				emitCrossing(depth, true)
			}
			if pl.loopOwner[lp] == s {
				code, err := cg.genOwnedLoop(lp, depth+1, s, skip)
				if err != nil {
					return nil, err
				}
				out = append(out, code...)
			} else if pl.loopOwner[lp] > s {
				// Entirely downstream: its contents belong to later stages;
				// crossing (if any) already emitted.
				continue
			} else {
				// owner < s: upstream loop; it can only appear here when
				// generating tails of an enclosing structure with the
				// spanning descend not skipped properly.
				return nil, fmt.Errorf("passes: stage %d encountered upstream loop (owner %d) during generation", s, pl.loopOwner[lp])
			}
			continue
		}
		if stage > s {
			emitCrossing(depth, false)
			continue
		}
		if stage < s {
			continue
		}
		// Own statement.
		switch v := st.(type) {
		case *ir.Assign:
			if def, hoisted := pl.hoisted[v.Dst]; hoisted && def == v {
				// Emitted with the crossing sends.
				continue
			}
			if cg.useCtrl {
				if raIdx, off := cg.loadReplOf(s, v); raIdx >= 0 {
					_ = off
					b := cg.bs[s]
					if b != nil && b.probeStmt == v {
						// hoisted to the probe; skip here
						continue
					}
					out = append(out, &ir.Assign{Dst: v.Dst, Src: &ir.RvalDeq{Q: cg.bs[s].ras[raIdx].outQ}})
					continue
				}
			}
			out = append(out, st)
		default:
			out = append(out, st)
		}
	}
	// Trailing crossing: if the body's downstream content is purely trailing
	// statements, crossing was already emitted above.
	return out, nil
}

// loadReplOf reports whether stage s replaces this load with an RA dequeue.
func (cg *codegen) loadReplOf(s int, a *ir.Assign) (int, int64) {
	if s <= 0 || cg.bs[s] == nil {
		return -1, 0
	}
	if idx, ok := cg.bs[s].loadRepl[a]; ok {
		return idx, 0
	}
	return -1, 0
}

// onChain reports whether lp is on b's spanning chain.
func (cg *codegen) onChain(b *boundary, lp *ir.Loop) bool {
	for _, c := range b.chain {
		if c == lp {
			return true
		}
	}
	return false
}

// genOwnedLoop generates a loop the stage owns, including downstream frame
// markers after it and SCAN RA replacement.
func (cg *codegen) genOwnedLoop(lp *ir.Loop, depth, s int, skip map[*ir.Loop]bool) ([]ir.Stmt, error) {
	pl := cg.pl
	var outB *boundary
	if s+1 < pl.n {
		outB = cg.bs[s+1]
	}
	var out []ir.Stmt

	if outB != nil {
		if feeds, ok := outB.scanLoops[lp]; ok {
			// The loop dissolves into SCAN RA feeds.
			for _, f := range feeds {
				ra := outB.ras[f.raIdx]
				out = append(out, &ir.Enq{Q: ra.inQ, Val: f.init})
				out = append(out, &ir.Enq{Q: ra.inQ, Val: f.bound})
			}
			return out, nil
		}
	}

	body, err := cg.genBody(lp.Body, depth, s, skip)
	if err != nil {
		return nil, err
	}
	// Feedback traffic at the end of the carrying loop's body.
	body = append(body, cg.fbEnqsAt(s, depth)...)
	body = append(body, cg.fbDeqsAt(s, depth)...)
	// Downstream counter frame signals do not apply to owned loops; only
	// the loop-end marker after it.
	out = append(out, &ir.Loop{ID: lp.ID, Pre: lp.Pre, Cond: lp.Cond, Body: body, Counted: lp.Counted, Line: lp.Line})
	if outB != nil && depth <= outB.m {
		if cg.useCtrl {
			// Depth 1 is terminated by the END marker in genStage.
			if depth >= 2 && outB.endNeeded[depth] {
				out = append(out, &ir.EnqCtrl{Q: outB.ctrlQ, Code: codeLoopEnd(depth)})
			}
		} else {
			out = append(out, &ir.Enq{Q: outB.frameQ, Val: ir.C(0)})
		}
	}
	return out, nil
}

// itemSendCode emits the producer's per-item traffic for a boundary.
func (cg *codegen) itemSendCode(b *boundary) []ir.Stmt {
	pl := cg.pl
	var out []ir.Stmt
	// Hoisted index temporaries are computed here, at the crossing.
	for _, v := range b.itemVars {
		if def, ok := pl.hoisted[v]; ok {
			out = append(out, def)
		}
	}
	// Prefetches for consumer-pinned read-write loads (Sec. IV-A).
	for _, pf := range b.prefetch {
		out = append(out, &ir.Prefetch{Slot: pf.slot, Idx: ir.V(pf.val)})
	}
	if cg.useCtrl {
		for _, v := range b.itemVars {
			out = append(out, &ir.Enq{Q: b.frameQ, Val: ir.V(v)})
		}
		if len(b.itemVars) == 0 && b.primaryRA() == nil {
			// Dummy probe token keeps item multiplicity observable.
			out = append(out, &ir.Enq{Q: b.frameQ, Val: ir.C(0)})
		}
		for _, rs := range b.raSends {
			ra := b.ras[rs.raIdx]
			if rs.off == 0 {
				out = append(out, &ir.Enq{Q: ra.inQ, Val: ir.V(rs.val)})
			} else {
				t := pl.p.NewVar(fmt.Sprintf("raidx%d", len(pl.p.Vars)), ir.KInt)
				out = append(out, &ir.Assign{Dst: t,
					Src: &ir.RvalBin{Op: ir.OpAdd, A: ir.V(rs.val), B: ir.C(rs.off)}})
				out = append(out, &ir.Enq{Q: ra.inQ, Val: ir.V(t)})
			}
		}
	} else {
		out = append(out, &ir.Enq{Q: b.frameQ, Val: ir.C(1)})
		for _, v := range b.itemVars {
			out = append(out, &ir.Enq{Q: b.frameQ, Val: ir.V(v)})
		}
	}
	return out
}

// flag-mode consumer ----------------------------------------------------------

// genFlagMirror builds the nested while(deq(frameQ)) structure for levels
// lvl..m, with the item region inside the innermost mirror.
func (cg *codegen) genFlagMirror(s int, inB, outB *boundary, lvl int) ([]ir.Stmt, error) {
	pl := cg.pl
	flag := pl.p.NewVar(fmt.Sprintf("flag%d.s%d", lvl, s), ir.KInt)
	var body []ir.Stmt

	// Per-frame receives.
	if lvl == inB.m {
		for _, v := range inB.itemVars {
			body = append(body, &ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: inB.frameQ}})
		}
	} else {
		for _, v := range inB.side[lvl] {
			body = append(body, &ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: inB.frameQ}})
		}
	}
	body = append(body, cg.recomputeInserts(inB, lvl)...)

	// Downstream frame start for this level: only levels the stage itself
	// receives as frames are forwarded here; its own item level (lvl ==
	// inB.m) and deeper are emitted positionally by genBody, after the
	// values are computed.
	if outB != nil && lvl < outB.m && lvl < inB.m {
		body = append(body, &ir.Enq{Q: outB.frameQ, Val: ir.C(1)})
		for _, v := range outB.side[lvl] {
			body = append(body, &ir.Enq{Q: outB.frameQ, Val: ir.V(v)})
		}
	}

	if lvl == inB.m {
		// Item region.
		region, err := cg.genBody(inB.chain[inB.m-1].Body, inB.m, s, nil)
		if err != nil {
			return nil, err
		}
		body = append(body, region...)
		body = append(body, cg.counterIncrements(inB, inB.m)...)
		body = append(body, cg.fbEnqsAt(s, inB.m)...)
		body = append(body, cg.fbDeqsAt(s, inB.m)...)
	} else {
		body = append(body, cg.counterInits(inB, lvl+1)...)
		inner, err := cg.genFlagMirror(s, inB, outB, lvl+1)
		if err != nil {
			return nil, err
		}
		body = append(body, inner...)
		if outB != nil && lvl+1 <= outB.m {
			body = append(body, &ir.Enq{Q: outB.frameQ, Val: ir.C(0)})
		}
		// Tails at this depth.
		tails, err := cg.genTails(s, inB, lvl)
		if err != nil {
			return nil, err
		}
		body = append(body, tails...)
		body = append(body, cg.counterIncrements(inB, lvl)...)
		body = append(body, cg.fbEnqsAt(s, lvl)...)
		body = append(body, cg.fbDeqsAt(s, lvl)...)
	}

	loop := &ir.Loop{
		ID:   -1,
		Pre:  []ir.Stmt{&ir.Assign{Dst: flag, Src: &ir.RvalDeq{Q: inB.frameQ}}},
		Cond: ir.V(flag),
		Body: body,
	}
	return []ir.Stmt{loop}, nil
}

// genTails generates the stage's statements at the given depth after the
// spanning descend (the suffix of the chain loop's body).
func (cg *codegen) genTails(s int, inB *boundary, depth int) ([]ir.Stmt, error) {
	if depth < 1 || depth > len(inB.chain) {
		return nil, nil
	}
	body := inB.chain[depth-1].Body
	skip := map[*ir.Loop]bool{}
	if depth < len(inB.chain) {
		skip[inB.chain[depth]] = true
	}
	return cg.genBody(body, depth, s, skip)
}

// ctrl-mode consumer ----------------------------------------------------------

func (cg *codegen) genCtrlConsumer(s int, inB, outB *boundary) ([]ir.Stmt, error) {
	pl := cg.pl
	var out []ir.Stmt
	probeL := cg.label("probe", s)
	dispatchL := cg.label("dispatch", s)
	doneL := cg.label("done", s)

	if pl.opt.Handlers {
		out = append(out, &ir.SetHandler{Q: inB.probeQ, Label: dispatchL})
	}
	// Counters for depth-1 loops initialize at stage start.
	out = append(out, cg.counterInits(inB, 1)...)
	out = append(out, cg.recomputeInserts(inB, 0)...)

	// Probe + item path.
	var probeVar ir.Var
	if inB.probeStmt != nil {
		probeVar = inB.probeStmt.Dst
	} else if len(inB.itemVars) > 0 {
		probeVar = inB.itemVars[0]
	} else {
		probeVar = pl.p.NewVar(fmt.Sprintf("probe.s%d", s), ir.KInt)
	}
	out = append(out, &ir.Label{Name: probeL})
	out = append(out, &ir.Assign{Dst: probeVar, Src: &ir.RvalDeq{Q: inB.probeQ}})
	if !pl.opt.Handlers {
		isc := pl.p.NewVar(fmt.Sprintf("isc.s%d", s), ir.KInt)
		out = append(out, &ir.Assign{Dst: isc, Src: &ir.RvalUn{Op: ir.OpIsCtrl, A: ir.V(probeVar)}})
		out = append(out, &ir.If{Cond: ir.V(isc), Then: []ir.Stmt{&ir.Goto{Name: dispatchL}}})
	}
	// Remaining in-band item values.
	start := 0
	if inB.probeStmt == nil && len(inB.itemVars) > 0 {
		start = 1
	}
	for _, v := range inB.itemVars[start:] {
		out = append(out, &ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: inB.probeQ}})
	}
	out = append(out, cg.recomputeInserts(inB, inB.m)...)
	region, err := cg.genBody(inB.chain[inB.m-1].Body, inB.m, s, nil)
	if err != nil {
		return nil, err
	}
	out = append(out, region...)
	out = append(out, cg.counterIncrements(inB, inB.m)...)
	out = append(out, cg.fbEnqsAt(s, inB.m)...)
	out = append(out, cg.fbDeqsAt(s, inB.m)...)
	out = append(out, &ir.Goto{Name: probeL})

	// Dispatch block.
	out = append(out, &ir.Label{Name: dispatchL})
	code := pl.p.NewVar(fmt.Sprintf("ctrl.s%d", s), ir.KInt)
	if pl.opt.Handlers {
		out = append(out, &ir.Assign{Dst: code, Src: &ir.RvalHandlerVal{}})
	} else {
		out = append(out, &ir.Assign{Dst: code, Src: &ir.RvalUn{Op: ir.OpCtrlCode, A: ir.V(probeVar)}})
	}
	emitCase := func(imm int64, body []ir.Stmt) {
		t := pl.p.NewVar("", ir.KInt)
		out = append(out, &ir.Assign{Dst: t, Src: &ir.RvalBin{Op: ir.OpEQ, A: ir.V(code), B: ir.C(imm)}})
		out = append(out, &ir.If{Cond: ir.V(t), Then: body})
	}

	// Frame starts.
	var lvls []int
	for lvl := range inB.startNeeded {
		lvls = append(lvls, lvl)
	}
	sort.Ints(lvls)
	for _, lvl := range lvls {
		var body []ir.Stmt
		for _, v := range inB.side[lvl] {
			body = append(body, &ir.Assign{Dst: v, Src: &ir.RvalDeq{Q: inB.sideQ}})
		}
		body = append(body, cg.recomputeInserts(inB, lvl)...)
		body = append(body, cg.counterInits(inB, lvl+1)...)
		if outB != nil && outB.startNeeded[lvl] {
			body = append(body, &ir.EnqCtrl{Q: outB.ctrlQ, Code: codeFrameStart(lvl)})
			for _, v := range outB.side[lvl] {
				body = append(body, &ir.Enq{Q: outB.sideQ, Val: ir.V(v)})
			}
		}
		body = append(body, &ir.Goto{Name: probeL})
		emitCase(codeFrameStart(lvl), body)
	}

	// Loop ends, innermost first (most frequent).
	var ends []int
	for d := range inB.endNeeded {
		ends = append(ends, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ends)))
	for _, d := range ends {
		var body []ir.Stmt
		tails, err := cg.genTails(s, inB, d-1)
		if err != nil {
			return nil, err
		}
		body = append(body, tails...)
		body = append(body, cg.counterIncrements(inB, d-1)...)
		body = append(body, cg.fbEnqsAt(s, d-1)...)
		body = append(body, cg.fbDeqsAt(s, d-1)...)
		if outB != nil && d <= outB.m && outB.endNeeded[d] {
			body = append(body, &ir.EnqCtrl{Q: outB.ctrlQ, Code: codeLoopEnd(d)})
		}
		body = append(body, &ir.Goto{Name: probeL})
		emitCase(codeLoopEnd(d), body)
	}

	// End of stream.
	{
		var body []ir.Stmt
		tails, err := cg.genTails(s, inB, 0)
		if err != nil {
			return nil, err
		}
		body = append(body, tails...)
		if outB != nil {
			body = append(body, &ir.EnqCtrl{Q: outB.ctrlQ, Code: codeEnd()})
		}
		body = append(body, &ir.Goto{Name: doneL})
		emitCase(codeEnd(), body)
	}
	// Unknown code: fall into done (protocol bug guard).
	out = append(out, &ir.Goto{Name: doneL})
	out = append(out, &ir.Label{Name: doneL})
	return out, nil
}
