package passes

import (
	"phloem/internal/ir"
	"phloem/internal/pipeline"
)

// elideGlueStages removes stages whose generated code is pure token
// forwarding: dequeue from one queue, re-enqueue the same values (and the
// same control markers) to another. Such stages arise when reference
// accelerators absorb all of a stage's loads — e.g., BFS's "enumerate
// neighbors" stage, whose nodes[v]/nodes[v+1] results feed straight into the
// edges SCAN accelerator. Eliding the stage chains the RAs directly
// (Sec. III, "Chained reference accelerators").
//
// Because control codes are global (loop depth based), forwarding is the
// identity and rewiring is a queue substitution.
func elideGlueStages(pipe *pipeline.Pipeline) {
	for {
		removed := false
		for i, st := range pipe.Stages {
			inQ, outQ, ok := matchGlue(st.Body)
			if !ok {
				continue
			}
			// Rewire: everything that consumed outQ now consumes inQ.
			for _, other := range pipe.Stages {
				if other != st {
					substQueue(other.Body, outQ, inQ)
				}
			}
			for j := range pipe.RAs {
				if pipe.RAs[j].InQ == outQ {
					pipe.RAs[j].InQ = inQ
				}
				if pipe.RAs[j].OutQ == outQ {
					pipe.RAs[j].OutQ = inQ
				}
			}
			pipe.Stages = append(pipe.Stages[:i], pipe.Stages[i+1:]...)
			removed = true
			break
		}
		if !removed {
			return
		}
	}
}

// matchGlue recognizes the generated forwarding skeleton:
//
//	[set_handler inQ -> dispatch]
//	probe: v1 = deq(inQ); [isctrl check -> dispatch]
//	       v2 = deq(inQ) ... vk = deq(inQ)
//	       enq(outQ, v1) ... enq(outQ, vk)
//	       goto probe
//	dispatch: code = ...; per-code: enq_ctrl(outQ, code); goto probe/done
//	done:
//
// All data moves must be 1:1 and order-preserving between exactly one input
// and one output queue; any computation, memory access, or side traffic
// disqualifies the stage.
func matchGlue(body []ir.Stmt) (inQ, outQ int, ok bool) {
	inQ, outQ = -1, -1
	var deqVars []ir.Var
	enqIdx := 0
	phase := 0 // 0: deqs, 1: enqs (within the probe block)

	sawDeq := func(q int, dst ir.Var) bool {
		if inQ == -1 {
			inQ = q
		}
		if q != inQ || phase != 0 {
			return false
		}
		deqVars = append(deqVars, dst)
		return true
	}
	sawEnq := func(q int, v ir.Operand) bool {
		if v.IsConst {
			return false
		}
		if outQ == -1 {
			outQ = q
		}
		if q != outQ || enqIdx >= len(deqVars) || deqVars[enqIdx] != v.Var {
			return false
		}
		phase = 1
		enqIdx++
		return true
	}

	for _, s := range body {
		switch s := s.(type) {
		case *ir.Label:
			// A new block: reset the probe-pattern state.
			if enqIdx != len(deqVars) && len(deqVars) > 0 && phase == 1 {
				return 0, 0, false
			}
			deqVars = deqVars[:0]
			enqIdx = 0
			phase = 0
		case *ir.Goto:
			if len(deqVars) > 0 && enqIdx != len(deqVars) {
				return 0, 0, false // dequeued values not all forwarded
			}
			deqVars = deqVars[:0]
			enqIdx = 0
			phase = 0
		case *ir.SetHandler:
			if inQ == -1 {
				inQ = s.Q
			}
			if s.Q != inQ {
				return 0, 0, false
			}
		case *ir.Assign:
			switch r := s.Src.(type) {
			case *ir.RvalDeq:
				if !sawDeq(r.Q, s.Dst) {
					return 0, 0, false
				}
			case *ir.RvalUn:
				// is_ctrl probes and ctrlcode reads are part of the skeleton.
				if r.Op != ir.OpIsCtrl && r.Op != ir.OpCtrlCode {
					return 0, 0, false
				}
			case *ir.RvalHandlerVal:
				// part of the dispatch skeleton
			case *ir.RvalBin:
				// dispatch case comparisons only (cmp against constants)
				if !r.Op.IsCmp() {
					return 0, 0, false
				}
			default:
				return 0, 0, false
			}
		case *ir.Enq:
			if !sawEnq(s.Q, s.Val) {
				return 0, 0, false
			}
		case *ir.EnqCtrl:
			if outQ == -1 {
				outQ = s.Q
			}
			if s.Q != outQ {
				return 0, 0, false
			}
		case *ir.If:
			// Only skeleton Ifs: bodies of gotos/forwards.
			if !glueIfBody(s.Then, &outQ) || len(s.Else) != 0 {
				return 0, 0, false
			}
		case *ir.Halt:
		default:
			return 0, 0, false
		}
	}
	return inQ, outQ, ok2(inQ, outQ, len(deqVars) == 0 || enqIdx == len(deqVars))
}

func ok2(inQ, outQ int, balanced bool) bool {
	return inQ >= 0 && outQ >= 0 && inQ != outQ && balanced
}

// glueIfBody accepts dispatch-case bodies: optional marker forward + goto.
func glueIfBody(body []ir.Stmt, outQ *int) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.EnqCtrl:
			if *outQ == -1 {
				*outQ = s.Q
			}
			if s.Q != *outQ {
				return false
			}
		case *ir.Goto:
		default:
			return false
		}
	}
	return true
}

// substQueue rewrites queue references from old to new in a statement tree.
func substQueue(body []ir.Stmt, old, new int) {
	walkQueueRefs(body, func(q *int) {
		if *q == old {
			*q = new
		}
	})
}

// walkQueueRefs visits every queue-id reference in a statement tree.
func walkQueueRefs(body []ir.Stmt, fix func(q *int)) {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.Assign:
			if d, ok := s.Src.(*ir.RvalDeq); ok {
				fix(&d.Q)
			}
		case *ir.Enq:
			fix(&s.Q)
		case *ir.EnqCtrl:
			fix(&s.Q)
		case *ir.SetHandler:
			fix(&s.Q)
		case *ir.If:
			walkQueueRefs(s.Then, fix)
			walkQueueRefs(s.Else, fix)
		case *ir.Loop:
			walkQueueRefs(s.Pre, fix)
			walkQueueRefs(s.Body, fix)
		}
	}
}

// compactQueues drops queue declarations that nothing references and
// renumbers the survivors densely, rewriting stage bodies and RA endpoints.
// Glue-stage elision substitutes consumers onto upstream queues, which can
// orphan the elided stage's old input queue; a dead declaration wastes one
// of the machine's 16 architectural queues and reads as a phantom endpoint
// in reports.
func compactQueues(pipe *pipeline.Pipeline) {
	used := make([]bool, len(pipe.Queues))
	mark := func(q *int) {
		if *q >= 0 && *q < len(used) {
			used[*q] = true
		}
	}
	for _, st := range pipe.Stages {
		walkQueueRefs(st.Body, mark)
	}
	for i := range pipe.RAs {
		mark(&pipe.RAs[i].InQ)
		mark(&pipe.RAs[i].OutQ)
	}

	remap := make([]int, len(pipe.Queues))
	kept := pipe.Queues[:0]
	for q, u := range used {
		if u {
			remap[q] = len(kept)
			kept = append(kept, pipe.Queues[q])
		} else {
			remap[q] = -1
		}
	}
	if len(kept) == len(remap) {
		return // nothing dead
	}
	pipe.Queues = kept
	renumber := func(q *int) { *q = remap[*q] }
	for _, st := range pipe.Stages {
		walkQueueRefs(st.Body, renumber)
	}
	for i := range pipe.RAs {
		renumber(&pipe.RAs[i].InQ)
		renumber(&pipe.RAs[i].OutQ)
	}
}
