package passes_test

import (
	"math/rand"
	"strings"
	"testing"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// scatterKernel updates a read-write array through an indirection: the x
// accesses are pinned to the consuming stage by the race rule, but the
// producer that sends idx can still prefetch x[idx] (Sec. IV-A / Fig. 4).
const scatterKernel = `
#pragma phloem
void scatter(int* restrict a, int* restrict trace, int* restrict x, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    trace[i] = idx;
    int old = x[idx];
    x[idx] = old + 1;
  }
}
`

func TestRaceRulePinnedLoadGetsPrefetch(t *testing.T) {
	serialProg, err := workloads.CompileSerial(scatterKernel)
	if err != nil {
		t.Fatal(err)
	}
	// Force the prefetch-only boundary at the x load (the autotuner would
	// find it; the static flow skips race-pinned points).
	an := analysis.New(serialProg)
	cands := an.Candidates(analysis.ProgramPhases(serialProg.Body)[0])
	var pts []*analysis.Candidate
	for _, c := range cands {
		name := serialProg.Slots[c.Load.Slot].Name
		if name == "a" || (name == "x" && c.PrefetchOnly) {
			pts = append(pts, c)
		}
	}
	if len(pts) != 2 {
		t.Fatalf("expected the a load and the prefetch-only x load as candidates, got %d", len(pts))
	}
	pipe, err := passes.Build(serialProg, [][]*analysis.Candidate{analysis.OrderPoints(pts)},
		passes.Default(), passes.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Pipeline: pipe, Prog: serialProg}
	dump := res.Pipeline.DumpStages()
	if !strings.Contains(dump, "prefetch x[") {
		t.Errorf("expected a producer-side prefetch of x:\n%s", dump)
	}
	// x loads and stores must have stayed in one stage.
	stages := strings.Split(dump, "--- stage")
	xOwners := 0
	for _, st := range stages {
		if strings.Contains(st, "load x[") || strings.Contains(st, "= x[") || strings.Contains(st, "store#1 x[") {
			xOwners++
			if !strings.Contains(st, " x[idx") {
				t.Errorf("x load and store split across stages:\n%s", st)
			}
		}
	}
	if xOwners != 1 {
		t.Errorf("x accessed in %d stages, want 1", xOwners)
	}

	// Functional correctness and a performance sanity check on a large,
	// cache-hostile indirection.
	const n = 60000
	rng := rand.New(rand.NewSource(3))
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(n))
	}
	bind := func() pipeline.Bindings {
		return pipeline.Bindings{
			Ints: map[string][]int64{
				"a":     append([]int64(nil), a...),
				"trace": make([]int64, n),
				"x":     make([]int64, n),
			},
			Scalars: map[string]int64{"n": n},
		}
	}
	run := func(pl *pipeline.Pipeline) (uint64, []int64) {
		inst, err := pipeline.Instantiate(pl, arch.DefaultConfig(1), bind())
		if err != nil {
			t.Fatal(err)
		}
		st, err := inst.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, inst.Arrays["x"].Ints()
	}
	sc, want := run(pipeline.NewSerial(serialProg))
	pc, got := run(res.Pipeline)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	t.Logf("scatter: serial=%d pipeline=%d (%.2fx)", sc, pc, float64(sc)/float64(pc))
}
