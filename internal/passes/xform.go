package passes

import (
	"fmt"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/ir"
)

// Control code scheme shared by all boundaries so that control values pass
// through RA chains and relay stages unchanged:
//
//	codeEnd          — the phase's stream is over.
//	codeLoopEnd(d)   — the loop instance at depth d (>= 2) finished.
//	codeFrameStart(d)— a new iteration (frame) of the depth-d loop began;
//	                   side-bundle values for that level follow on the side
//	                   queue.
func codeEnd() int64             { return arch.CtrlEnd }
func codeLoopEnd(d int) int64    { return arch.CtrlNext + int64(d-2) }
func codeFrameStart(d int) int64 { return arch.CtrlUser + int64(d) }

// recipe describes how a consumer rebuilds a value locally (pass 2).
type recipe struct {
	kind    recipeKind
	base    ir.Var // affine: v = base + off
	off     int64
	imm     int64      // constant: v = imm
	depth   int        // frame level the rebuild is tied to
	init    ir.Operand // induction: counter start
	isFloat bool
}

type recipeKind int

const (
	recAffine recipeKind = iota
	recConst
	recInduction
)

// raSend is one producer-side enqueue into an RA input per item crossing.
type raSend struct {
	raIdx int
	val   ir.Var
	off   int64
}

// scanFeed describes feeding one SCAN RA with a (start, end) pair per frame
// of the enclosing level.
type scanFeed struct {
	raIdx       int
	init, bound ir.Operand
}

type prefetchOp struct {
	slot int
	val  ir.Var
}

type raPlan struct {
	name     string
	mode     arch.RAMode
	slot     int
	inQ      int // assigned at wiring
	outQ     int
	emitNext bool
	nextCode int64
	primary  bool
}

// boundary holds the communication plan between stage k-1 and stage k.
type boundary struct {
	k     int
	chain []*ir.Loop
	m     int

	once []ir.Var
	side [][]ir.Var // index by level 1..m-1

	itemVars []ir.Var // in-band item bundle (probe first)
	// prefetch lists (slot, item var) pairs the producer prefetches for
	// the consumer: loads the race rule pins to the consuming stage
	// (Sec. IV-A: "update data must read and update the distances itself",
	// but earlier stages may still warm the cache).
	prefetch []prefetchOp

	ras       []*raPlan
	raSends   []raSend
	scanLoops map[*ir.Loop][]scanFeed
	loadRepl  map[*ir.Assign]int // consumer load stmt -> raIdx delivering it
	probeStmt *ir.Assign         // offloaded point load acting as the probe

	frameQ int // plain in-band queue (-1 when an RA chain carries frames)
	sideQ  int
	ctrlQ  int // where the producer injects control markers and items
	probeQ int // where the consumer probes items + markers

	recomputed map[ir.Var]*recipe

	endNeeded   map[int]bool // by loop depth (2..m)
	startNeeded map[int]bool // by level (1..m-1)
}

func (b *boundary) primaryRA() *raPlan {
	for _, ra := range b.ras {
		if ra.primary {
			return ra
		}
	}
	return nil
}

// buildBoundaries converts raw liveness bundles into boundary plans.
func (pl *plan) buildBoundaries() []*boundary {
	bs := make([]*boundary, pl.n)
	for k := 1; k < pl.n; k++ {
		b := &boundary{
			k:           k,
			chain:       pl.pointChain[k],
			m:           len(pl.pointChain[k]),
			once:        pl.onceVals[k],
			recomputed:  map[ir.Var]*recipe{},
			loadRepl:    map[*ir.Assign]int{},
			scanLoops:   map[*ir.Loop][]scanFeed{},
			endNeeded:   map[int]bool{},
			startNeeded: map[int]bool{},
			frameQ:      -1, sideQ: -1, ctrlQ: -1, probeQ: -1,
		}
		b.side = make([][]ir.Var, b.m)
		for lvl := 1; lvl < b.m; lvl++ {
			b.side[lvl] = pl.bundles[k][lvl]
		}
		if b.m >= 1 {
			b.itemVars = append([]ir.Var(nil), pl.bundles[k][b.m]...)
		}
		bs[k] = b
	}
	return bs
}

// planRAs (pass 3) offloads loads to reference accelerators and plans
// producer-side prefetches for the loads the race rule pins in place.
func (pl *plan) planRAs(bs []*boundary, raBudget *int) {
	if !pl.opt.RAs || !pl.opt.CtrlValues {
		return
	}
	pl.collectSlotAccess()
	for k := 1; k < pl.n; k++ {
		pl.planScan(bs[k], raBudget)
		pl.planIndirect(bs[k], raBudget)
		pl.planPrefetch(bs[k])
	}
}

// planPrefetch marks item values whose consumer loads a read-write array at
// that index: the producer issues a prefetch so the pinned load hits.
func (pl *plan) planPrefetch(b *boundary) {
	if b.m == 0 {
		return
	}
	for _, v := range b.itemVars {
		for _, s := range b.chain[b.m-1].Body {
			a, ok := s.(*ir.Assign)
			if !ok || pl.stageOfStmt(s) < b.k {
				continue
			}
			ld, ok := a.Src.(*ir.RvalLoad)
			if !ok || ld.Idx.IsConst || ld.Idx.Var != v {
				continue
			}
			if pl.loadPinned(ld.Slot) {
				b.prefetch = append(b.prefetch, prefetchOp{slot: ld.Slot, val: v})
			}
		}
	}
}

// planScan (P2): a producer-owned counted innermost spanning loop whose body
// belongs entirely to the consumer and starts with loads at the induction
// index becomes one SCAN RA per loaded array; the first (the decoupling
// point's array) is primary and carries the frame stream.
func (pl *plan) planScan(b *boundary, raBudget *int) {
	if b.m == 0 {
		return
	}
	lp := b.chain[b.m-1]
	if lp.Counted == nil || pl.loopOwner[lp] >= b.k {
		return
	}
	_ = lp
	inc := findIncrement(lp)
	if inc == nil {
		return
	}
	var loads []*ir.Assign
	for _, s := range lp.Body {
		if s == inc {
			continue
		}
		if pl.stageOfStmt(s) < b.k {
			return // producer still owns work inside: cannot dissolve the loop
		}
		// Only the boundary's own consumer stage can receive RA streams;
		// loads belonging to later stages keep the induction variable live
		// downstream (indUsedBeyondLoads rejects the scan below).
		if a, ok := s.(*ir.Assign); ok && pl.stageOfStmt(s) == b.k {
			if ld, ok2 := a.Src.(*ir.RvalLoad); ok2 &&
				!ld.Idx.IsConst && ld.Idx.Var == lp.Counted.Ind {
				loads = append(loads, a)
			}
		}
	}
	if len(loads) == 0 || loads[0] != pl.points[b.k-1].Stmt {
		return
	}
	for _, ld := range loads {
		if !pl.raSafeSlot(ld.Src.(*ir.RvalLoad).Slot) {
			return
		}
	}
	if pl.indUsedBeyondLoads(lp.Counted.Ind, loads, lp, inc) {
		return
	}
	if *raBudget < len(loads) {
		return
	}
	*raBudget -= len(loads)
	var feeds []scanFeed
	for i, ld := range loads {
		rv := ld.Src.(*ir.RvalLoad)
		ra := &raPlan{
			name:    fmt.Sprintf("b%d.scan.%s", b.k, pl.p.Slots[rv.Slot].Name),
			mode:    arch.RAScan,
			slot:    rv.Slot,
			primary: i == 0,
		}
		if i == 0 {
			// The scanned loop sits at depth m+1 relative to the chain? No:
			// the scanned loop IS chain[m-1] at depth m; its instance end
			// marker is codeLoopEnd(m+1)? The items are its iterations; the
			// "group end" the RA emits is the end of one scanned range,
			// which is the end of one instance of this loop - but one
			// instance corresponds to one frame of level m-1... The RA
			// emits the marker that ends the item stream of one enclosing
			// frame: the depth of lp.
			ra.emitNext = true
			ra.nextCode = codeLoopEnd(pl.loopDepth[lp])
		}
		b.ras = append(b.ras, ra)
		b.loadRepl[ld] = len(b.ras) - 1
		feeds = append(feeds, scanFeed{raIdx: len(b.ras) - 1, init: lp.Counted.Init, bound: lp.Counted.Bound})
	}
	b.probeStmt = loads[0]
	b.scanLoops[lp] = feeds
	b.itemVars = removeVar(b.itemVars, lp.Counted.Ind)
}

// planIndirect (P1): an item value used only as load indices (possibly with
// small constant offsets) moves into an INDIRECT RA; the producer feeds the
// index stream.
func (pl *plan) planIndirect(b *boundary, raBudget *int) {
	if b.m == 0 {
		return
	}
	var kept []ir.Var
	for _, v := range b.itemVars {
		loads, ok := pl.indirectLoadsOf(v, b)
		if !ok || len(loads) == 0 || *raBudget < 1 {
			kept = append(kept, v)
			continue
		}
		slot := loads[0].load.Slot
		same := pl.raSafeSlot(slot)
		for _, l := range loads {
			if l.load.Slot != slot {
				same = false
			}
		}
		if !same {
			kept = append(kept, v)
			continue
		}
		*raBudget--
		ra := &raPlan{
			name: fmt.Sprintf("b%d.ind.%s", b.k, pl.p.Slots[slot].Name),
			mode: arch.RAIndirect,
			slot: slot,
		}
		b.ras = append(b.ras, ra)
		raIdx := len(b.ras) - 1
		for _, l := range loads {
			b.loadRepl[l.stmt] = raIdx
			b.raSends = append(b.raSends, raSend{raIdx: raIdx, val: v, off: l.off})
		}
		// If nothing else remains in-band, this RA carries the frames and
		// the point load becomes the probe.
		if b.probeStmt == nil && len(kept) == 0 && loads[0].stmt == pl.points[b.k-1].Stmt {
			b.probeStmt = loads[0].stmt
			ra.primary = true
		}
	}
	b.itemVars = kept
	// If a probe-carrying RA was chosen but other values remained in-band
	// afterwards, demote it: the plain frame queue must carry the probe.
	if len(b.itemVars) > 0 {
		if ra := b.primaryRA(); ra != nil && ra.mode == arch.RAIndirect {
			ra.primary = false
			b.probeStmt = nil
		}
	}
}

type indLoad struct {
	stmt *ir.Assign
	load *ir.RvalLoad
	off  int64
}

// indirectLoadsOf returns the consumer loads indexed by v (+const offsets
// through single-use temps), provided these are v's only consumer-side uses
// and the loads are unconditional top-level statements of the item region.
func (pl *plan) indirectLoadsOf(v ir.Var, b *boundary) ([]indLoad, bool) {
	body := b.chain[b.m-1].Body
	var loads []indLoad
	absorbed := map[ir.Var]int64{}
	absorbedStmts := map[ir.Stmt]bool{}
	loadStmts := map[ir.Stmt]bool{}
	for _, s := range body {
		a, ok := s.(*ir.Assign)
		if !ok || pl.stageOfStmt(s) != b.k {
			continue
		}
		if ld, ok2 := a.Src.(*ir.RvalLoad); ok2 && !ld.Idx.IsConst {
			if ld.Idx.Var == v {
				loads = append(loads, indLoad{stmt: a, load: ld, off: 0})
				loadStmts[s] = true
				continue
			}
			if off, abs := absorbed[ld.Idx.Var]; abs {
				loads = append(loads, indLoad{stmt: a, load: ld, off: off})
				loadStmts[s] = true
				delete(absorbed, ld.Idx.Var)
				continue
			}
		}
		if bin, ok2 := a.Src.(*ir.RvalBin); ok2 && bin.Op == ir.OpAdd && !bin.Float &&
			!bin.A.IsConst && bin.A.Var == v && bin.B.IsConst {
			absorbed[a.Dst] = bin.B.Imm
			absorbedStmts[s] = true
		}
	}
	if len(loads) == 0 {
		return nil, false
	}
	if len(absorbed) > 0 {
		return nil, false // leftover temp: v has non-load uses
	}
	// Count every consumer-side use of v and of the absorbed temps; they
	// must all be accounted for by the loads and temp definitions.
	extra := pl.countConsumerUsesExcept(v, b.k, loadStmts, absorbedStmts)
	if extra > 0 {
		return nil, false
	}
	for t := range absorbedTempSet(absorbedStmts) {
		if pl.countConsumerUsesExcept(t, b.k, loadStmts, nil) > 0 {
			return nil, false
		}
	}
	return loads, true
}

func absorbedTempSet(stmts map[ir.Stmt]bool) map[ir.Var]bool {
	out := map[ir.Var]bool{}
	for s := range stmts {
		if a, ok := s.(*ir.Assign); ok {
			out[a.Dst] = true
		}
	}
	return out
}

// countConsumerUsesExcept counts reads of v in stages >= k outside the given
// statement sets.
func (pl *plan) countConsumerUsesExcept(v ir.Var, k int, skip1, skip2 map[ir.Stmt]bool) int {
	n := 0
	countOp := func(o ir.Operand, s ir.Stmt) {
		if o.IsConst || o.Var != v {
			return
		}
		if skip1 != nil && skip1[s] {
			return
		}
		if skip2 != nil && skip2[s] {
			return
		}
		n++
	}
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			st := pl.stageOfStmt(s)
			switch s := s.(type) {
			case *ir.Assign:
				if st < k {
					continue
				}
				switch r := s.Src.(type) {
				case *ir.RvalBin:
					countOp(r.A, s)
					countOp(r.B, s)
				case *ir.RvalUn:
					countOp(r.A, s)
				case *ir.RvalLoad:
					countOp(r.Idx, s)
				}
			case *ir.Store:
				if st < k {
					continue
				}
				countOp(s.Idx, s)
				countOp(s.Val, s)
			case *ir.If:
				if st >= k {
					countOp(s.Cond, s)
				}
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				if pl.loopOwner[s] >= k {
					for _, ps := range s.Pre {
						if a, ok := ps.(*ir.Assign); ok {
							switch r := a.Src.(type) {
							case *ir.RvalBin:
								countOp(r.A, ps)
								countOp(r.B, ps)
							case *ir.RvalUn:
								countOp(r.A, ps)
							}
						}
					}
					countOp(s.Cond, s)
				}
				walk(s.Body)
			}
		}
	}
	walk([]ir.Stmt{pl.nest})
	return n
}

// indUsedBeyondLoads reports whether the induction variable is read outside
// the given loads, its increment, and the loop's condition block.
func (pl *plan) indUsedBeyondLoads(ind ir.Var, loads []*ir.Assign, lp *ir.Loop, inc ir.Stmt) bool {
	skip := map[ir.Stmt]bool{inc: true}
	for _, ld := range loads {
		skip[ld] = true
	}
	for _, ps := range lp.Pre {
		skip[ps] = true
	}
	return pl.countConsumerUsesExcept(ind, 0, skip, nil) > 0
}

// planRecompute (pass 2) drops bundle values consumers can rebuild.
func (pl *plan) planRecompute(bs []*boundary) {
	if !pl.opt.Recompute {
		return
	}
	constDefs := pl.constDefs()
	for k := 1; k < pl.n; k++ {
		b := bs[k]
		avail := map[ir.Var]bool{}
		for _, v := range pl.p.ScalarParams {
			avail[v] = true
		}
		for v := range pl.preambleVars {
			avail[v] = true
		}
		for _, v := range b.once {
			avail[v] = true
		}
		for lvl := 1; lvl < b.m; lvl++ {
			for _, v := range b.side[lvl] {
				avail[v] = true
			}
		}
		for _, v := range b.itemVars {
			avail[v] = true
		}
		for changed := true; changed; {
			changed = false
			drop := func(list []ir.Var, isItem bool) []ir.Var {
				keep := list[:0]
				for i, v := range list {
					r := pl.recipeFor(v, b, avail, constDefs)
					if r != nil && isItem && b.probeStmt == nil {
						// Keep at least one in-band token for the probe.
						rem := len(list) - i - 1 + len(keep)
						if rem == 0 {
							r = nil
						}
					}
					if r == nil {
						keep = append(keep, v)
						continue
					}
					r.isFloat = pl.p.VarKind(v) == ir.KFloat
					b.recomputed[v] = r
					changed = true
				}
				return keep
			}
			for lvl := 1; lvl < b.m; lvl++ {
				b.side[lvl] = drop(b.side[lvl], false)
			}
			b.itemVars = drop(b.itemVars, true)
		}
	}
}

// recipeFor decides how (if at all) the consumer can rebuild v.
func (pl *plan) recipeFor(v ir.Var, b *boundary, avail map[ir.Var]bool, consts map[ir.Var]int64) *recipe {
	if r, done := b.recomputed[v]; done {
		return r
	}
	if imm, ok := consts[v]; ok {
		return &recipe{kind: recConst, imm: imm, depth: pl.levelOf(v, b)}
	}
	if d, ok := pl.affine[v]; ok {
		base, off, res := analysis.Resolve(d.Base, pl.affine)
		off += d.Offset
		if res && base != v && off != 0 && (avail[base] || pl.isParamOrPre(ir.V(base))) {
			return &recipe{kind: recAffine, base: base, off: off, depth: pl.levelOf(v, b)}
		}
	}
	for d, lp := range b.chain {
		depth := d + 1
		if lp.Counted != nil && lp.Counted.Ind == v {
			init := lp.Counted.Init
			if init.IsConst || pl.isParamOrPre(init) {
				return &recipe{kind: recInduction, depth: depth, init: init}
			}
		}
	}
	return nil
}

func (pl *plan) isParamOrPre(o ir.Operand) bool {
	if o.IsConst {
		return true
	}
	info := pl.p.Vars[o.Var]
	return info.Param || pl.preambleVars[o.Var]
}

// levelOf returns the bundle level v crosses at for boundary b.
func (pl *plan) levelOf(v ir.Var, b *boundary) int {
	lvl := pl.defDepth[v]
	if lvl > b.m {
		lvl = b.m
	}
	if lvl < 1 {
		lvl = 1
	}
	return lvl
}

// constDefs finds variables whose single definition is a constant move.
func (pl *plan) constDefs() map[ir.Var]int64 {
	counts := map[ir.Var]int{}
	vals := map[ir.Var]int64{}
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Assign:
				counts[s.Dst]++
				if un, ok := s.Src.(*ir.RvalUn); ok && un.Op == ir.OpMov && un.A.IsConst {
					vals[s.Dst] = un.A.Imm
				}
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				walk(s.Pre)
				walk(s.Body)
			}
		}
	}
	walk([]ir.Stmt{pl.nest})
	out := map[ir.Var]int64{}
	for v, n := range counts {
		if n == 1 {
			if imm, ok := vals[v]; ok {
				out[v] = imm
			}
		}
	}
	return out
}

func removeVar(list []ir.Var, v ir.Var) []ir.Var {
	out := list[:0]
	for _, x := range list {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// planMarkers computes the control markers each boundary carries. With
// pass 6 (inter-stage DCE) disabled, every loop-end marker in the chain is
// kept; with it enabled, only markers some stage acts on (directly or by
// forwarding) survive.
func (pl *plan) planMarkers(bs []*boundary, stageActs func(s, depth int) bool) {
	for k := pl.n - 1; k >= 1; k-- {
		b := bs[k]
		for lvl := 1; lvl < b.m; lvl++ {
			if len(b.side[lvl]) > 0 {
				b.startNeeded[lvl] = true
			}
		}
		for _, r := range b.recomputed {
			switch r.kind {
			case recConst, recAffine:
				if r.depth >= 1 && r.depth < b.m {
					b.startNeeded[r.depth] = true
				}
			case recInduction:
				if r.depth-1 >= 1 && r.depth-1 < b.m {
					b.startNeeded[r.depth-1] = true
				}
			}
		}
		for d := 2; d <= b.m; d++ {
			need := !pl.opt.InterstageDCE
			if stageActs(b.k, d-1) {
				need = true
			}
			for _, r := range b.recomputed {
				if r.kind == recInduction && r.depth == d && r.depth <= b.m {
					// counter for loop at depth d increments per frame; at
					// the item level the increment is inline, otherwise it
					// runs at the depth-(d+1) loop's end marker... handled
					// below via startNeeded; keep d's end for safety when
					// the counter is not at the innermost level.
					if d < b.m {
						need = true
					}
				}
			}
			if k+1 < pl.n && bs[k+1] != nil && d <= bs[k+1].m && bs[k+1].endNeeded[d] {
				need = true
			}
			if need {
				b.endNeeded[d] = true
			}
		}
		if k+1 < pl.n && bs[k+1] != nil {
			for lvl, n := range bs[k+1].startNeeded {
				if n && lvl < b.m {
					b.startNeeded[lvl] = true
				}
			}
		}
	}
}

// hoistAffineTemps pins consumer-side affine index temporaries (t = v + c
// where v comes from an earlier stage) to the producing stage, modeling the
// naive "send every needed value" pipeline of pass 1. Returns whether any
// statement moved (requiring liveness recomputation).
func (pl *plan) hoistAffineTemps() bool {
	pl.hoisted = map[ir.Var]*ir.Assign{}
	moved := false
	depth := 0
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Assign:
				bin, ok := s.Src.(*ir.RvalBin)
				if !ok || bin.Op != ir.OpAdd || bin.Float || bin.A.IsConst || !bin.B.IsConst {
					continue
				}
				st := pl.stageOfStmt(s)
				base := bin.A.Var
				defSt, ok2 := pl.defStage[base]
				if !ok2 || defSt >= st {
					continue
				}
				// Only hoist item-rate temporaries: the defining statement
				// must sit at the consumer boundary's item depth.
				if st < 1 || st >= pl.n || depth != len(pl.pointChain[st]) {
					continue
				}
				pl.pinnedStmts[s] = defSt
				pl.hoisted[s.Dst] = s
				moved = true
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				depth++
				walk(s.Body)
				depth--
			}
		}
	}
	walk([]ir.Stmt{pl.nest})
	return moved
}

// collectSlotAccess records which slots the nest stores to and which
// participate in swaps (epoch-synchronized double buffers).
func (pl *plan) collectSlotAccess() {
	pl.storedSlots = map[int]bool{}
	pl.swappedSlots = map[int]bool{}
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Store:
				pl.storedSlots[s.Slot] = true
			case *ir.Swap:
				pl.swappedSlots[s.A] = true
				pl.swappedSlots[s.B] = true
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				walk(s.Pre)
				walk(s.Body)
			}
		}
	}
	walk([]ir.Stmt{pl.nest})
}

// loadPinned applies the Fig. 4 race rule over proven memory effects: a
// load of slot must stay in the storing stage when the nest stores the slot
// itself (and no swap epoch-synchronizes it), or stores a distinct slot the
// frontend's effects analysis could not prove disjoint from it (Prog.Alias).
// Restrict-qualified kernels have disjoint cross-slot verdicts throughout,
// so this is then exactly the historical identity rule.
func (pl *plan) loadPinned(slot int) bool {
	if pl.storedSlots[slot] && !pl.swappedSlots[slot] {
		return true
	}
	if pl.p.Alias == nil {
		return false
	}
	for s := range pl.storedSlots {
		if s == slot || (pl.swappedSlots[s] && pl.swappedSlots[slot]) {
			continue
		}
		if pl.p.Alias.Conflicts(pl.p.Slots[s].Name, pl.p.Slots[slot].Name) {
			return true
		}
	}
	return false
}

// raSafeSlot applies the race rule of Fig. 4 to accelerator offloads: an RA
// may run ahead of the pipeline, so it must not read arrays the nest stores
// to (or may-aliased ones), unless the accesses are epoch-synchronized by a
// swap.
func (pl *plan) raSafeSlot(slot int) bool {
	return !pl.loadPinned(slot)
}
