package passes

import (
	"fmt"
	"sort"

	"phloem/internal/analysis"
	"phloem/internal/ir"
)

// defInfo records one definition site of a variable.
type defInfo struct {
	stage int
	depth int
	loop  *ir.Loop // enclosing loop (nil at depth 0)
	order int      // traversal order
}

// computeLiveness fills defStage/defDepth/useStage, bundles, feedback, and
// once-values.
func (pl *plan) computeLiveness(preDefs map[ir.Var]bool) error {
	pl.feedback = nil // recomputed from scratch (liveness may run twice)
	defs := map[ir.Var][]defInfo{}
	pl.useStage = map[ir.Var]map[int]bool{}
	useDepthMin := map[ir.Var]int{}
	useOrder := map[ir.Var]int{}

	order := 0
	var chain []*ir.Loop

	use := func(o ir.Operand, stage int) {
		if o.IsConst {
			return
		}
		if pl.useStage[o.Var] == nil {
			pl.useStage[o.Var] = map[int]bool{}
		}
		pl.useStage[o.Var][stage] = true
		if d, ok := useDepthMin[o.Var]; !ok || len(chain) < d {
			useDepthMin[o.Var] = len(chain)
		}
		if _, ok := useOrder[o.Var]; !ok {
			useOrder[o.Var] = order
		}
	}
	def := func(v ir.Var, stage int) {
		var lp *ir.Loop
		if len(chain) > 0 {
			lp = chain[len(chain)-1]
		}
		defs[v] = append(defs[v], defInfo{stage: stage, depth: len(chain), loop: lp, order: order})
	}
	useRval := func(r ir.Rval, stage int) {
		switch r := r.(type) {
		case *ir.RvalBin:
			use(r.A, stage)
			use(r.B, stage)
		case *ir.RvalUn:
			use(r.A, stage)
		case *ir.RvalLoad:
			use(r.Idx, stage)
		}
	}

	var walk func(list []ir.Stmt) error
	walk = func(list []ir.Stmt) error {
		for _, s := range list {
			order++
			st := pl.stageOfStmt(s)
			switch s := s.(type) {
			case *ir.Assign:
				useRval(s.Src, st)
				def(s.Dst, st)
			case *ir.Store:
				use(s.Idx, st)
				use(s.Val, st)
			case *ir.If:
				use(s.Cond, st)
				if err := walk(s.Then); err != nil {
					return err
				}
				if err := walk(s.Else); err != nil {
					return err
				}
			case *ir.Loop:
				owner := pl.loopOwner[s]
				var preWalk func(list []ir.Stmt) error
				preWalk = func(list []ir.Stmt) error {
					for _, ps := range list {
						order++
						switch ps := ps.(type) {
						case *ir.Assign:
							useRval(ps.Src, owner)
							def(ps.Dst, owner)
						case *ir.If:
							use(ps.Cond, owner)
							if err := preWalk(ps.Then); err != nil {
								return err
							}
							if err := preWalk(ps.Else); err != nil {
								return err
							}
						default:
							return fmt.Errorf("passes: unsupported statement in loop condition block")
						}
					}
					return nil
				}
				// Condition blocks evaluate once per iteration: account their
				// variables at body depth.
				chain = append(chain, s)
				if err := preWalk(s.Pre); err != nil {
					return err
				}
				use(s.Cond, owner)
				if err := walk(s.Body); err != nil {
					return err
				}
				chain = chain[:len(chain)-1]
			case *ir.Swap, *ir.Barrier, *ir.DecoupleMark:
				// no vars
			case *ir.Enq:
				use(s.Val, st)
			default:
				return fmt.Errorf("passes: unexpected statement %T before decoupling", s)
			}
		}
		return nil
	}
	if err := walk([]ir.Stmt{pl.nest}); err != nil {
		return err
	}

	pl.defStage = map[ir.Var]int{}
	pl.defDepth = map[ir.Var]int{}
	pl.bundles = make([][][]ir.Var, pl.n)
	pl.onceVals = make([][]ir.Var, pl.n)
	for k := 1; k < pl.n; k++ {
		pl.bundles[k] = make([][]ir.Var, len(pl.pointChain[k])+1)
	}

	// Classify each variable.
	vars := make([]ir.Var, 0, len(pl.useStage))
	for v := range pl.useStage {
		vars = append(vars, v)
	}
	for v := range defs {
		if pl.useStage[v] == nil {
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	for _, v := range vars {
		ds := defs[v]
		if len(ds) == 0 {
			// Defined only in the preamble or a parameter: preamble-pure
			// vars and params are available everywhere; stage-0 preamble
			// vars become once-values.
			if preDefs[v] {
				for k := 1; k < pl.n; k++ {
					if usedAtOrAfter(pl.useStage[v], k) {
						pl.onceVals[k] = append(pl.onceVals[k], v)
					}
				}
			}
			continue
		}
		minDefStage, maxDefStage := pl.n, -1
		for _, d := range ds {
			if d.stage < minDefStage {
				minDefStage = d.stage
			}
			if d.stage > maxDefStage {
				maxDefStage = d.stage
			}
		}
		pl.defStage[v] = maxDefStage
		pl.defDepth[v] = ds[len(ds)-1].depth

		// Feedback: used in an earlier stage than some def.
		minUse := pl.n
		for s := range pl.useStage[v] {
			if s < minUse {
				minUse = s
			}
		}
		if len(pl.useStage[v]) > 0 && minUse < maxDefStage {
			// Find the deepest def (by stage) and carry at its loop.
			last := ds[len(ds)-1]
			for _, d := range ds {
				if d.stage == maxDefStage {
					last = d
				}
			}
			if last.loop == nil {
				return fmt.Errorf("passes: feedback variable %s defined outside any loop", pl.p.Vars[v].Name)
			}
			// The carrying rate is the consumer's: the source sends the
			// final value once per frame of the shallowest use depth (e.g.,
			// once per sweep for CC's changed counter, even though the
			// counter increments per vertex).
			depth := useDepthMin[v]
			if depth < 1 {
				depth = 1
			}
			if depth > last.depth {
				depth = last.depth
			}
			for s := range pl.useStage[v] {
				if s < maxDefStage {
					pl.feedback = append(pl.feedback, feedbackVal{
						v: v, from: maxDefStage, to: s,
						depth: depth, loop: last.loop,
					})
				}
			}
			// A feedback value may also cross forward when an earlier
			// stage re-initializes it each frame (e.g., CC's per-sweep
			// `changed = 0` reset feeding the accumulating stage); the
			// forward path below handles that with the defs that precede
			// the consuming stage.
		}

		// Forward crossing: for each boundary k with a def below k and a
		// use at or after k.
		for k := 1; k < pl.n; k++ {
			var lastBelow *defInfo
			for i := range ds {
				if ds[i].stage < k {
					lastBelow = &ds[i]
				}
			}
			if lastBelow == nil {
				continue
			}
			if !usedAtOrAfter(pl.useStage[v], k) {
				continue
			}
			// Exclude pure consumer-local rebinds: if the first action at
			// stage >= k is a def that fully precedes the uses we would be
			// feeding, the value still crosses conservatively; recompute
			// and DCE trim the waste.
			m := len(pl.pointChain[k])
			lvl := lastBelow.depth
			if lvl > m {
				// The producing definition sits deeper than the boundary's
				// spanning chain: its value would have to cross mid-frame,
				// which the protocol cannot express.
				return fmt.Errorf("passes: value %q is defined at depth %d but crosses boundary %d spanning %d loops (unsupported shape)",
					pl.p.Vars[v].Name, lastBelow.depth, k, m)
			}
			if lvl < 1 {
				lvl = 1 // nest-level defs cross with the outermost frames
			}
			pl.bundles[k][lvl] = append(pl.bundles[k][lvl], v)
		}
	}
	sort.Slice(pl.feedback, func(i, j int) bool {
		if pl.feedback[i].v != pl.feedback[j].v {
			return pl.feedback[i].v < pl.feedback[j].v
		}
		return pl.feedback[i].to < pl.feedback[j].to
	})
	pl.affine = analysis.FindAffineDefs([]ir.Stmt{pl.nest})
	return nil
}

func usedAtOrAfter(uses map[int]bool, k int) bool {
	for s := range uses {
		if s >= k {
			return true
		}
	}
	return false
}
