package passes_test

import (
	"testing"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/graph"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// buildBFS compiles the BFS source and builds an N-stage pipeline with the
// top-ranked decoupling points.
func buildBFS(t *testing.T, stages int, opt passes.Options) *pipeline.Pipeline {
	t.Helper()
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	an := analysis.New(p)
	phases := analysis.SplitPhases(p.Body)
	if len(phases) != 1 {
		t.Fatalf("BFS should be one phase, got %d", len(phases))
	}
	cands := an.Candidates(phases[0])
	if len(cands) < stages-1 {
		t.Fatalf("not enough candidates: %d", len(cands))
	}
	for _, c := range cands {
		t.Logf("candidate: %s", c)
	}
	pts := analysis.OrderPoints(cands[:stages-1])
	pipe, err := passes.Build(p, [][]*analysis.Candidate{pts}, opt, passes.DefaultBuildConfig())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	t.Logf("%s", pipe.Describe())
	return pipe
}

func runBFS(t *testing.T, pipe *pipeline.Pipeline, g *graph.CSR) uint64 {
	t.Helper()
	inst, err := pipeline.Instantiate(pipe, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
	if err != nil {
		t.Fatalf("instantiate: %v\n%s", err, pipe.DumpStages())
	}
	st, err := inst.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, pipe.DumpStages())
	}
	if err := workloads.BFSVerify(inst, g, 0); err != nil {
		t.Fatalf("verify: %v\n%s", err, pipe.DumpStages())
	}
	return st.Cycles
}

func TestBFSPipelineFlagMode(t *testing.T) {
	pipe := buildBFS(t, 4, passes.Options{})
	g := graph.Grid("grid", 16, 16, 1)
	cycles := runBFS(t, pipe, g)
	t.Logf("flag-mode 4-stage BFS: %d cycles", cycles)
}

func TestBFSPipelineRecompute(t *testing.T) {
	pipe := buildBFS(t, 4, passes.Options{Recompute: true})
	g := graph.Grid("grid", 16, 16, 1)
	runBFS(t, pipe, g)
}

func TestBFSPipelineCtrlValues(t *testing.T) {
	pipe := buildBFS(t, 4, passes.Options{Recompute: true, CtrlValues: true})
	g := graph.Grid("grid", 16, 16, 1)
	runBFS(t, pipe, g)
}

func TestBFSPipelineCtrlDCEHandlers(t *testing.T) {
	pipe := buildBFS(t, 4, passes.Options{Recompute: true, CtrlValues: true,
		Handlers: true, InterstageDCE: true})
	g := graph.Grid("grid", 16, 16, 1)
	runBFS(t, pipe, g)
}

func TestBFSPipelineFull(t *testing.T) {
	pipe := buildBFS(t, 4, passes.Default())
	if len(pipe.RAs) == 0 {
		t.Errorf("expected reference accelerators in the full BFS pipeline\n%s", pipe.Describe())
	}
	g := graph.Grid("grid", 16, 16, 1)
	runBFS(t, pipe, g)
}

func TestBFSPipelineSpeedupLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level ladder in -short mode")
	}
	g := graph.Grid("grid", 120, 120, 7)
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	serial := pipeline.NewSerial(p)
	inst, err := pipeline.Instantiate(serial, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := st.Cycles

	configs := []struct {
		name string
		opt  passes.Options
	}{
		{"Q", passes.Options{}},
		{"R,Q", passes.Options{Recompute: true}},
		{"CV,R,Q", passes.Options{Recompute: true, CtrlValues: true}},
		{"CH,CV,DCE,R,Q", passes.Options{Recompute: true, CtrlValues: true, Handlers: true, InterstageDCE: true}},
		{"RA,full", passes.Default()},
	}
	for _, cfg := range configs {
		pipe := buildBFS(t, 4, cfg.opt)
		cycles := runBFS(t, pipe, g)
		t.Logf("%-16s %8d cycles  speedup %.2fx", cfg.name, cycles, float64(base)/float64(cycles))
	}
	t.Logf("%-16s %8d cycles  (serial baseline)", "serial", base)
}
