package costmodel_test

// FuzzCost feeds arbitrary byte strings through the full compile flow and,
// whenever a pipeline builds, through the cost model. The invariants under
// fuzzing: Analyze never panics, and any report it returns is well-formed —
// finite positive prediction, a named bottleneck, utilizations in [0, 1],
// queue recommendations at least 1, and a byte-deterministic rendering.
// Seeds are the benchmark kernels (the same corpus FuzzParse uses) plus
// small shapes that exercise multi-phase and branchy pipelines.
//
// Runs as a plain unit test over the seed corpus in `go test`; explore with
//
//	go test ./internal/costmodel -fuzz FuzzCost -fuzztime 30s

import (
	"math"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/costmodel"
)

func FuzzCost(f *testing.F) {
	seeds := []string{
		"",
		"void k() {}",
		"void k(int* restrict a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = i; } }",
		`#pragma phloem
void k(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = a[i];
    if (j > 0) { b[j] = b[j] + 1; }
  }
}`,
		`#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}`,
		`#pragma phloem
void phases(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) { a[i] = a[i] + 1; }
  for (int i = 0; i < n; i = i + 1) { b[a[i]] = i; }
}`,
		"void k(int n) { while (1) { } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cfg := arch.DefaultConfig(1)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := core.CompileSource(src, core.Options{Mode: core.Static})
		if err != nil {
			// Rejections are the frontend's concern (FuzzParse); the cost
			// model only sees pipelines that compiled.
			return
		}
		rep, err := costmodel.Analyze(res.Pipeline, cfg)
		if err != nil {
			return
		}
		if rep.PredictedF <= 0 || math.IsNaN(rep.PredictedF) || math.IsInf(rep.PredictedF, 0) {
			t.Fatalf("degenerate prediction %v for compiled pipeline\nsource:\n%s", rep.PredictedF, src)
		}
		if rep.Bottleneck == "" {
			t.Fatalf("report has no bottleneck\nsource:\n%s", src)
		}
		for _, e := range rep.Entities {
			if e.Util < 0 || e.Util > 1 || math.IsNaN(e.Util) {
				t.Fatalf("entity %s utilization %v outside [0, 1]\nsource:\n%s", e.Name, e.Util, src)
			}
		}
		for _, q := range rep.Queues {
			if q.Recommended < 1 {
				t.Fatalf("queue %s recommended capacity %d < 1\nsource:\n%s", q.Name, q.Recommended, src)
			}
		}
		first := rep.String()
		again, err := costmodel.Analyze(res.Pipeline, cfg)
		if err != nil {
			t.Fatalf("second analysis of the same pipeline failed: %v\nsource:\n%s", err, src)
		}
		if got := again.String(); got != first {
			t.Fatalf("report not deterministic:\n--- first ---\n%s--- second ---\n%s", first, got)
		}
	})
}
