package costmodel_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/costmodel"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// staticReport compiles src with the static flow and renders its cost report.
func staticReport(t *testing.T, src string) string {
	t.Helper()
	res, err := core.CompileSource(src, core.Options{Mode: core.Static})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := costmodel.Analyze(res.Pipeline, arch.DefaultConfig(1))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep.String()
}

// goldenSources returns the kernels covered by golden reports: the five
// benchmark families plus one Taco-emitted kernel.
func goldenSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, wl := range workloads.Benchmarks(workloads.ScaleTest) {
		out[strings.ToLower(wl.Name)] = wl.SerialSource
	}
	src, err := taco.Emit(taco.SpMV)
	if err != nil {
		t.Fatalf("taco emit: %v", err)
	}
	out["taco_spmv"] = src
	return out
}

func TestGoldenReports(t *testing.T) {
	for name, src := range goldenSources(t) {
		t.Run(name, func(t *testing.T) {
			got := staticReport(t, src)
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestReportDeterminism re-analyzes the same pipelines repeatedly and demands
// byte-identical reports.
func TestReportDeterminism(t *testing.T) {
	for name, src := range goldenSources(t) {
		first := staticReport(t, src)
		for i := 0; i < 3; i++ {
			if got := staticReport(t, src); got != first {
				t.Fatalf("%s: report changed between runs:\n%s\nvs\n%s", name, first, got)
			}
		}
	}
}
