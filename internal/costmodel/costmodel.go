// Package costmodel statically predicts the steady-state throughput of a
// compiled pipeline (Sec. V / Fig. 13 of the paper). It walks each stage's
// post-pass IR together with its flattened ISA program, estimates how many
// times every region executes per "kernel unit" (a fixed-point computation
// over queue token rates), prices each statement from the architectural
// latencies in arch.Config, and reports:
//
//   - a predicted cycle count (abstract units — comparable across candidate
//     pipelines of the same kernel, not calibrated to simulator cycles),
//   - the bottleneck entity under steady-state backpressure (the stage or RA
//     whose per-unit cost is largest; every other entity stalls against it),
//   - per-entity utilization relative to the bottleneck, and
//   - a recommended capacity for every queue (burst depth stretched by the
//     producer/consumer service-rate mismatch, PPN-style).
//
// The model is deliberately coarse: unknown trip counts default to
// DefaultTrip (the same per-level frequency estimate internal/analysis uses
// to rank candidate points), branches are weighted 50/50, and cache behavior
// is summarized by the three classes the candidate analysis distinguishes
// (sequential / nearby / indirect). Its job is ranking candidates so that
// autotune only simulates the top K, not replacing the simulator.
package costmodel

import (
	"fmt"
	"math"
	"strings"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/isa"
	"phloem/internal/pipeline"
)

// Params collects the tunable constants of the model. The zero value is not
// useful; start from DefaultParams.
type Params struct {
	// DefaultTrip is the per-level iteration estimate for loops whose trip
	// count is not a compile-time constant (matches internal/analysis).
	DefaultTrip float64
	// MaxConstTrip caps compile-time-constant trip counts so degenerate
	// kernels cannot overflow the estimate.
	MaxConstTrip int64
	// LoadSeq / LoadNearby / LoadIndirect price one executed load by access
	// class. The classes mirror the candidate-ranking constants in
	// internal/analysis, but the weights are calibrated against the timing
	// simulator rather than copied: an OOO window over a warm cache
	// hierarchy hides most of an indirect load's miss latency (the timing
	// runs show near-zero backend stalls), leaving a dependency-chain
	// bubble, so LoadIndirect sits well below a raw miss cost.
	LoadSeq, LoadNearby, LoadIndirect float64
	// PrefetchedFactor scales an indirect load whose slot is prefetched by
	// an earlier stage (the line is warm by the time the consumer issues).
	PrefetchedFactor float64
	// QueueOp prices one enqueue or dequeue beyond its issue slot: a
	// logical token expands into several marshalling micro-ops plus
	// occupancy on the shared issue ports, which the timing runs show
	// dominating heavily queued configurations.
	QueueOp float64
	// DivExtra prices an integer/float divide beyond its issue slot.
	DivExtra float64
	// FloatExtra prices a dependent float ALU op beyond its issue slot.
	FloatExtra float64
	// ScanPerToken prices one SCAN-streamed element (line-amortized).
	ScanPerToken float64
	// FillPerStage is the pipeline fill/drain overhead per entity.
	FillPerStage float64
	// BurstCap bounds a single producer region's estimated burst.
	BurstCap float64
	// MinQueueRec is the floor for recommended queue capacities.
	MinQueueRec int
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		DefaultTrip:      8,
		MaxConstTrip:     4096,
		LoadSeq:          2,
		LoadNearby:       1,
		LoadIndirect:     8,
		PrefetchedFactor: 0.4,
		QueueOp:          6,
		DivExtra:         19,
		FloatExtra:       2,
		ScanPerToken:     1.5,
		FillPerStage:     32,
		BurstCap:         64,
		MinQueueRec:      2,
	}
}

// EntityCost is the modeled steady-state cost of one stage or RA.
type EntityCost struct {
	Name string
	IsRA bool
	Core int
	// Cycles is the per-unit service demand in abstract cycles.
	Cycles float64
	// Instrs is the estimated dynamic instruction count (stages only).
	Instrs float64
	// Util is Cycles relative to the bottleneck entity (0..1).
	Util float64
}

// QueuePlan is the modeled traffic and recommended capacity of one queue.
type QueuePlan struct {
	ID   int
	Name string
	// Data and Ctrl are steady-state token counts per kernel unit.
	Data, Ctrl float64
	// Burst is the largest token group a producer emits before its consumer
	// is guaranteed a chance to drain.
	Burst float64
	// Depth is the configured capacity (0 = machine default).
	Depth int
	// Recommended is the capacity the model suggests, clamped to the
	// architectural QueueDepth.
	Recommended int
}

// CoreLoad is the aggregate issue-bandwidth demand on one core.
type CoreLoad struct {
	Core   int
	Cycles float64 // dynamic instructions / IssueWidth
}

// Report is the result of analyzing one pipeline.
type Report struct {
	Pipeline    string
	Description string
	// Predicted is the model's cycle estimate (abstract units).
	Predicted uint64
	// PredictedF is the unrounded estimate.
	PredictedF float64
	// Bottleneck names the limiting entity ("core N issue" when the shared
	// issue bandwidth of a core binds before any single entity).
	Bottleneck string
	Entities   []EntityCost
	Cores      []CoreLoad
	Queues     []QueuePlan
}

// Analyze flattens every stage and models the pipeline under cfg.
func Analyze(pl *pipeline.Pipeline, cfg arch.Config) (*Report, error) {
	progs := make([]*isa.Program, len(pl.Stages))
	for i, st := range pl.Stages {
		prog, err := pipeline.FlattenStage(pl, st)
		if err != nil {
			return nil, fmt.Errorf("costmodel: flatten %s: %w", st.Name, err)
		}
		progs[i] = prog
	}
	return AnalyzeFlat(pl, cfg, progs), nil
}

// AnalyzeFlat models the pipeline using pre-flattened stage programs (index
// aligned with pl.Stages; nil entries fall back to an IR statement count).
// The verifier uses this entry point to reuse the programs it has already
// flattened for its other rule families.
func AnalyzeFlat(pl *pipeline.Pipeline, cfg arch.Config, progs []*isa.Program) *Report {
	m := newModel(pl, cfg, DefaultParams(), progs)
	return m.run()
}

// AnalyzeWith models the pipeline with explicit parameters (calibration and
// tests).
func AnalyzeWith(pl *pipeline.Pipeline, cfg arch.Config, p Params) (*Report, error) {
	progs := make([]*isa.Program, len(pl.Stages))
	for i, st := range pl.Stages {
		prog, err := pipeline.FlattenStage(pl, st)
		if err != nil {
			return nil, fmt.Errorf("costmodel: flatten %s: %w", st.Name, err)
		}
		progs[i] = prog
	}
	m := newModel(pl, cfg, p, progs)
	return m.run(), nil
}

// model carries the per-pipeline analysis state.
type model struct {
	pl    *pipeline.Pipeline
	cfg   arch.Config
	par   Params
	progs []*isa.Program

	// data/ctrl hold the current fixed-point token counts per queue.
	data, ctrl []float64
	// expansion is instructions-per-IR-statement for each stage.
	expansion []float64
	// prefetched marks array slots warmed by a Prefetch in any stage.
	prefetched map[int]bool
	// stageInfo caches per-stage structure.
	stages []*stageInfo
}

// stageInfo is the per-stage structural decomposition: the top-level body
// split into regions at labels, plus the handler registry and affine defs.
type stageInfo struct {
	st       *pipeline.Stage
	regions  []region
	handlerQ map[string]int // label -> queue with SetHandler on it
	probeQ   int            // queue dequeued by the stage's probe loop (-1 none)
	affine   map[ir.Var]analysis.AffineDef
	counted  map[ir.Var]bool // induction vars of counted loops in this stage
}

// region is a run of top-level statements headed by an optional label.
type region struct {
	label string // "" for the entry region
	body  []ir.Stmt
	// kind classifies how often the region executes.
	kind regionKind
	// q is the queue whose token count drives the region's rate.
	q int
}

type regionKind int

const (
	regionEntry    regionKind = iota // executes once
	regionProbe                      // executes per data token of q
	regionDispatch                   // executes per ctrl token of q
	regionDone                       // executes once
)

func newModel(pl *pipeline.Pipeline, cfg arch.Config, par Params, progs []*isa.Program) *model {
	m := &model{
		pl:         pl,
		cfg:        cfg,
		par:        par,
		progs:      progs,
		data:       make([]float64, len(pl.Queues)),
		ctrl:       make([]float64, len(pl.Queues)),
		expansion:  make([]float64, len(pl.Stages)),
		prefetched: map[int]bool{},
	}
	for i, st := range pl.Stages {
		si := m.buildStageInfo(st)
		m.stages = append(m.stages, si)
		stmts := countStmts(st.Body)
		if stmts == 0 {
			stmts = 1
		}
		m.expansion[i] = 1
		if i < len(progs) && progs[i] != nil {
			m.expansion[i] = float64(len(progs[i].Instrs)) / float64(stmts)
		}
		markPrefetched(st.Body, m.prefetched)
	}
	return m
}

// buildStageInfo splits the stage body into regions and classifies each.
func (m *model) buildStageInfo(st *pipeline.Stage) *stageInfo {
	si := &stageInfo{
		st:       st,
		handlerQ: map[string]int{},
		probeQ:   -1,
		affine:   analysis.FindAffineDefs(st.Body),
		counted:  map[ir.Var]bool{},
	}
	collectCounted(st.Body, si.counted)
	collectHandlers(st.Body, si.handlerQ)
	si.regions = m.splitRegions(si, st.Body)
	return si
}

// splitRegions cuts a statement list at its top-level labels and classifies
// each region. Single-phase consumers carry the probe/dispatch machinery at
// the top of the stage body; multi-phase kernels nest it inside the mirrored
// outer-iteration loop, so the walker calls this again on loop bodies.
func (m *model) splitRegions(si *stageInfo, body []ir.Stmt) []region {
	var regions []region
	cur := region{}
	flush := func() {
		if cur.label != "" || len(cur.body) > 0 {
			regions = append(regions, cur)
		}
	}
	for _, s := range body {
		if l, ok := s.(*ir.Label); ok {
			flush()
			cur = region{label: l.Name}
			continue
		}
		cur.body = append(cur.body, s)
	}
	flush()

	for i := range regions {
		r := &regions[i]
		r.q = -1
		switch {
		case r.label == "":
			r.kind = regionEntry
		case isDispatch(r.body):
			r.kind = regionDispatch
		case hasGotoTo(r.body, r.label):
			r.kind = regionProbe
			r.q = firstDeq(r.body)
			if si.probeQ < 0 {
				si.probeQ = r.q
			}
		default:
			r.kind = regionDone
		}
	}
	// Dispatch regions run once per control token of the queue they serve:
	// the handler registration if present, otherwise the stage's probe queue.
	for i := range regions {
		r := &regions[i]
		if r.kind != regionDispatch {
			continue
		}
		if q, ok := si.handlerQ[r.label]; ok {
			r.q = q
		} else {
			r.q = si.probeQ
		}
	}
	return regions
}

// run iterates token propagation to a fixed point, then prices every entity
// against the final token counts.
func (m *model) run() *Report {
	rounds := len(m.pl.Stages) + len(m.pl.RAs) + 4
	if rounds > 24 {
		rounds = 24
	}
	for it := 0; it < rounds; it++ {
		nd := make([]float64, len(m.data))
		nc := make([]float64, len(m.ctrl))
		for _, si := range m.stages {
			m.walkStage(si, nd, nc, nil, nil)
		}
		// RA chains: a pass per RA propagates through any chain depth.
		for range m.pl.RAs {
			for _, ra := range m.pl.RAs {
				m.propagateRA(ra, nd, nc)
			}
		}
		if equalF(nd, m.data) && equalF(nc, m.ctrl) {
			break
		}
		m.data, m.ctrl = nd, nc
	}

	rep := &Report{
		Pipeline:    m.pl.Prog.Name,
		Description: m.pl.Description,
	}
	coreCost := map[int]float64{}
	for _, si := range m.stages {
		cost := &entityWalk{}
		m.walkStage(si, nil, nil, cost, nil)
		cost.cycles += cost.instrs * m.issueCPI()
		rep.Entities = append(rep.Entities, EntityCost{
			Name:   "stage " + si.st.Name,
			Core:   si.st.Thread.Core,
			Cycles: cost.cycles,
			Instrs: cost.instrs,
		})
		coreCost[si.st.Thread.Core] += cost.instrs
	}
	for _, ra := range m.pl.RAs {
		rep.Entities = append(rep.Entities, EntityCost{
			Name:   "RA " + ra.Name,
			IsRA:   true,
			Core:   ra.Core,
			Cycles: m.raCost(ra),
		})
	}

	// Per-core issue bound: total dynamic instructions over issue width.
	maxCore := -1
	for _, si := range m.stages {
		if si.st.Thread.Core > maxCore {
			maxCore = si.st.Thread.Core
		}
	}
	for c := 0; c <= maxCore; c++ {
		rep.Cores = append(rep.Cores, CoreLoad{
			Core:   c,
			Cycles: coreCost[c] / float64(m.cfg.IssueWidth),
		})
	}

	// Bottleneck and utilization. A do-nothing kernel leaves every entity
	// at zero demand; the first stage is still the (idle) bottleneck so a
	// report always names one.
	best := 0.0
	if len(rep.Entities) > 0 {
		rep.Bottleneck = rep.Entities[0].Name
	}
	for _, e := range rep.Entities {
		if e.Cycles > best {
			best = e.Cycles
			rep.Bottleneck = e.Name
		}
	}
	for _, c := range rep.Cores {
		if c.Cycles > best {
			best = c.Cycles
			rep.Bottleneck = fmt.Sprintf("core %d issue", c.Core)
		}
	}
	for i := range rep.Entities {
		if best > 0 {
			rep.Entities[i].Util = rep.Entities[i].Cycles / best
		}
	}
	rep.PredictedF = best + m.par.FillPerStage*float64(m.pl.TotalStages())
	rep.Predicted = uint64(math.Round(rep.PredictedF))

	// Queue traffic and capacity plan.
	burst := make([]float64, len(m.pl.Queues))
	for _, si := range m.stages {
		m.walkStage(si, nil, nil, nil, burst)
	}
	for _, ra := range m.pl.RAs {
		if ra.OutQ >= 0 && ra.OutQ < len(burst) {
			b := m.par.DefaultTrip
			if ra.Mode == arch.RAIndirect {
				b = float64(m.cfg.RAOutstanding)
			}
			if b > burst[ra.OutQ] {
				burst[ra.OutQ] = b
			}
		}
	}
	for q := range m.pl.Queues {
		rep.Queues = append(rep.Queues, QueuePlan{
			ID:          q,
			Name:        m.pl.Queues[q].Name,
			Data:        m.data[q],
			Ctrl:        m.ctrl[q],
			Burst:       burst[q],
			Depth:       m.pl.Queues[q].Depth,
			Recommended: m.recommend(burst[q]),
		})
	}
	return rep
}

// issueCPI is the average cycles one instruction occupies a thread when all
// SMT threads of a core compete for the issue width.
func (m *model) issueCPI() float64 {
	return float64(m.cfg.ThreadsPerCore) / float64(m.cfg.IssueWidth)
}

// recommend turns a burst estimate into a queue capacity: the next power of
// two above the burst (plus one slot of slack), floored at MinQueueRec and
// clamped to the architectural QueueDepth.
func (m *model) recommend(burst float64) int {
	want := int(math.Ceil(burst)) + 1
	if want < m.par.MinQueueRec {
		want = m.par.MinQueueRec
	}
	rec := 1
	for rec < want {
		rec <<= 1
	}
	if rec > m.cfg.QueueDepth {
		rec = m.cfg.QueueDepth
	}
	return rec
}

// raCost prices one RA's steady-state service demand.
func (m *model) raCost(ra arch.RASpec) float64 {
	if ra.InQ < 0 || ra.InQ >= len(m.data) {
		return 0
	}
	miss := float64(m.cfg.Mem.MemMinLatency) / float64(m.cfg.RAOutstanding)
	if miss < 1 {
		miss = 1
	}
	in := m.data[ra.InQ]
	if ra.Mode == arch.RAScan {
		groups := in / 2
		return groups*miss + groups*m.par.DefaultTrip*m.par.ScanPerToken
	}
	return in * miss
}

// propagateRA adds an RA's output tokens given its current input tokens.
func (m *model) propagateRA(ra arch.RASpec, data, ctrl []float64) {
	if ra.InQ < 0 || ra.InQ >= len(data) || ra.OutQ < 0 || ra.OutQ >= len(data) {
		return
	}
	in, inCtrl := data[ra.InQ], ctrl[ra.InQ]
	var out, outCtrl float64
	if ra.Mode == arch.RAScan {
		groups := in / 2
		out = groups * m.par.DefaultTrip
		outCtrl = inCtrl
		if ra.EmitNext {
			outCtrl += groups
		}
	} else {
		out = in
		outCtrl = inCtrl
	}
	data[ra.OutQ] = out
	ctrl[ra.OutQ] = outCtrl
}

// entityWalk accumulates one stage's cost during a pricing walk.
type entityWalk struct {
	cycles float64 // memory/queue/latency cost beyond issue slots
	instrs float64 // dynamic instruction estimate
}

// walkStage traverses one stage once. Exactly one of the three sinks is
// active: (data, ctrl) accumulate enqueue token rates for the fixed point,
// cost prices statements, and burst records per-region enqueue group sizes.
func (m *model) walkStage(si *stageInfo, data, ctrl []float64, cost *entityWalk, burst []float64) {
	idx := indexOfStage(m.pl, si.st)
	exp := 1.0
	if idx >= 0 {
		exp = m.expansion[idx]
	}
	for _, r := range si.regions {
		rate := m.regionRate(r, 1)
		if rate <= 0 {
			continue
		}
		w := &walker{m: m, si: si, data: data, ctrl: ctrl, cost: cost, burst: burst, exp: exp}
		w.stmts(r.body, rate, nil)
	}
}

// regionRate returns how many times a region executes per kernel unit under
// the current token counts. base is the execution rate of the surrounding
// code (1 at stage top level, the loop rate for machinery nested inside a
// mirrored outer loop): entry and done regions flow with it, while probe and
// dispatch regions execute once per token of their queue regardless of
// nesting depth.
func (m *model) regionRate(r region, base float64) float64 {
	switch r.kind {
	case regionProbe:
		if r.q >= 0 && r.q < len(m.data) {
			return m.data[r.q]
		}
		return m.par.DefaultTrip
	case regionDispatch:
		if r.q >= 0 && r.q < len(m.ctrl) {
			return m.ctrl[r.q]
		}
		return base
	default:
		return base
	}
}

// walker prices / measures a statement list at a given execution rate.
type walker struct {
	m     *model
	si    *stageInfo
	data  []float64
	ctrl  []float64
	cost  *entityWalk
	burst []float64
	exp   float64
	// depth counts enclosing loops (counted or not) within the region;
	// enqueues inside a loop burst a full trip's worth of tokens.
	depth int
}

// walkList walks a nested statement list. When the list carries labels it is
// consumer machinery nested inside a mirrored outer loop (multi-phase
// kernels): it is re-split into regions so that probe and dispatch sections
// are priced per token of their queue — per-kernel totals — rather than per
// iteration of the enclosing loop, keeping work estimates conserved between
// a configuration that prices a loop inline in its producer and one that
// prices the same loop mirrored inside a consumer.
func (w *walker) walkList(body []ir.Stmt, rate float64, loops []ir.Var) {
	if !hasLabel(body) {
		w.stmts(body, rate, loops)
		return
	}
	for _, r := range w.m.splitRegions(w.si, body) {
		rr := w.m.regionRate(r, rate)
		if rr <= 0 {
			continue
		}
		w.stmts(r.body, rr, loops)
	}
}

// stmts walks a body executing rate times. loops is the stack of enclosing
// counted-loop induction variables inside the current region.
func (w *walker) stmts(body []ir.Stmt, rate float64, loops []ir.Var) {
	m := w.m
	for _, s := range body {
		if w.cost != nil {
			w.cost.instrs += rate * w.exp
		}
		switch s := s.(type) {
		case *ir.Assign:
			switch src := s.Src.(type) {
			case *ir.RvalLoad:
				if w.cost != nil {
					w.cost.cycles += rate * w.loadCost(src, loops)
				}
			case *ir.RvalDeq:
				if w.cost != nil {
					w.cost.cycles += rate * m.par.QueueOp
				}
			case *ir.RvalBin:
				if w.cost != nil {
					switch {
					case src.Op == ir.OpDiv || src.Op == ir.OpRem:
						w.cost.cycles += rate * m.par.DivExtra
					case src.Float:
						w.cost.cycles += rate * m.par.FloatExtra
					}
				}
			}
		case *ir.Store:
			// Stores retire asynchronously; only the issue slot is priced.
		case *ir.Prefetch:
			if w.cost != nil {
				w.cost.cycles += rate * m.par.LoadSeq
			}
		case *ir.Enq:
			if w.data != nil && s.Q >= 0 && s.Q < len(w.data) {
				w.data[s.Q] += rate
			}
			if w.cost != nil {
				w.cost.cycles += rate * m.par.QueueOp
			}
			if w.burst != nil {
				w.noteBurst(s.Q)
			}
		case *ir.EnqCtrl:
			if w.ctrl != nil && s.Q >= 0 && s.Q < len(w.ctrl) {
				w.ctrl[s.Q] += rate
			}
			if w.cost != nil {
				w.cost.cycles += rate * m.par.QueueOp
			}
			if w.burst != nil {
				w.noteBurst(s.Q)
			}
		case *ir.If:
			// A branch with an empty or bare-jump arm is dispatch shape,
			// not a 50/50 data split: the consumer codegen injects one
			// such If (is_ctrl test -> Goto dispatch) per decoupled
			// stage, so halving here would discount all work downstream
			// of every extra stage by 2x and make deeper pipelines look
			// systematically cheaper than the same work priced in a
			// producer. Pricing both arms at the parent rate keeps
			// enqueue rates conserved across decoupling cuts; genuine
			// two-armed data branches still split the rate evenly.
			br := rate / 2
			if bareArm(s.Then) || bareArm(s.Else) {
				br = rate
			}
			w.stmts(s.Then, br, loops)
			w.stmts(s.Else, br, loops)
		case *ir.Loop:
			trip := w.tripOf(s, rate)
			inner := loops
			if s.Counted != nil {
				inner = append(append([]ir.Var(nil), loops...), s.Counted.Ind)
			}
			w.depth++
			w.walkList(s.Pre, rate*trip, loops)
			w.walkList(s.Body, rate*trip, inner)
			w.depth--
		case *ir.Barrier:
			if w.cost != nil {
				w.cost.cycles += rate * m.par.FillPerStage
			}
		}
	}
}

// tripOf estimates a loop's iteration count per execution of its parent.
func (w *walker) tripOf(l *ir.Loop, rate float64) float64 {
	m := w.m
	if l.Counted != nil && l.Counted.Init.IsConst && l.Counted.Bound.IsConst {
		n := l.Counted.Bound.Imm - l.Counted.Init.Imm
		if n < 0 {
			n = 0
		}
		if n > m.par.MaxConstTrip {
			n = m.par.MaxConstTrip
		}
		return float64(n)
	}
	// Frame-mirror loops dequeue their continue flag in Pre: the loop runs
	// once per token of that queue, total, regardless of the parent rate.
	if q := firstDeq(l.Pre); q >= 0 && q < len(m.data) && rate > 0 {
		t := m.data[q] / rate
		if t > 0 {
			return t
		}
	}
	return m.par.DefaultTrip
}

// loadCost classifies a load the way the candidate analysis does and prices
// it. Loads whose index follows an enclosing counted induction variable
// stream sequentially; indexes derived from dequeued values are the
// decoupled-pointer case and pay (discounted, when prefetched) miss latency.
func (w *walker) loadCost(l *ir.RvalLoad, loops []ir.Var) float64 {
	m := w.m
	if l.Idx.IsConst {
		return m.par.LoadNearby
	}
	base, _, ok := analysis.Resolve(l.Idx.Var, w.si.affine)
	if !ok {
		base = l.Idx.Var
	}
	for _, ind := range loops {
		if base == ind {
			return m.par.LoadSeq
		}
	}
	if w.si.counted[base] {
		return m.par.LoadSeq
	}
	c := m.par.LoadIndirect
	if m.prefetched[l.Slot] {
		c *= m.par.PrefetchedFactor
	}
	return c
}

// noteBurst records the largest enqueue group for a queue: an enqueue
// inside a loop can emit a trip's worth of tokens before the consumer is
// guaranteed to drain any, capped at BurstCap.
func (w *walker) noteBurst(q int) {
	b := 1.0
	if w.depth > 0 {
		b = w.m.par.DefaultTrip
	}
	if b > w.m.par.BurstCap {
		b = w.m.par.BurstCap
	}
	if q >= 0 && q < len(w.burst) && b > w.burst[q] {
		w.burst[q] = b
	}
}

// --- structural helpers ------------------------------------------------------

func indexOfStage(pl *pipeline.Pipeline, st *pipeline.Stage) int {
	for i, s := range pl.Stages {
		if s == st {
			return i
		}
	}
	return -1
}

func countStmts(body []ir.Stmt) int {
	n := 0
	for _, s := range body {
		n++
		switch s := s.(type) {
		case *ir.If:
			n += countStmts(s.Then) + countStmts(s.Else)
		case *ir.Loop:
			n += countStmts(s.Pre) + countStmts(s.Body)
		}
	}
	return n
}

func collectCounted(body []ir.Stmt, counted map[ir.Var]bool) {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.If:
			collectCounted(s.Then, counted)
			collectCounted(s.Else, counted)
		case *ir.Loop:
			if s.Counted != nil {
				counted[s.Counted.Ind] = true
			}
			collectCounted(s.Pre, counted)
			collectCounted(s.Body, counted)
		}
	}
}

func collectHandlers(body []ir.Stmt, out map[string]int) {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.SetHandler:
			out[s.Label] = s.Q
		case *ir.If:
			collectHandlers(s.Then, out)
			collectHandlers(s.Else, out)
		case *ir.Loop:
			collectHandlers(s.Pre, out)
			collectHandlers(s.Body, out)
		}
	}
}

func markPrefetched(body []ir.Stmt, out map[int]bool) {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.Prefetch:
			out[s.Slot] = true
		case *ir.If:
			markPrefetched(s.Then, out)
			markPrefetched(s.Else, out)
		case *ir.Loop:
			markPrefetched(s.Pre, out)
			markPrefetched(s.Body, out)
		}
	}
}

// isDispatch reports whether a region decodes control values (it reads a
// handler value or extracts a control code near its head).
func isDispatch(body []ir.Stmt) bool {
	for _, s := range body {
		a, ok := s.(*ir.Assign)
		if !ok {
			continue
		}
		switch src := a.Src.(type) {
		case *ir.RvalHandlerVal:
			return true
		case *ir.RvalUn:
			if src.Op == ir.OpCtrlCode {
				return true
			}
		}
	}
	return false
}

// hasLabel reports whether a statement list carries a top-level label.
func hasLabel(body []ir.Stmt) bool {
	for _, s := range body {
		if _, ok := s.(*ir.Label); ok {
			return true
		}
	}
	return false
}

// bareArm reports whether an If arm is empty or a lone control transfer —
// the shape of a protocol dispatch test rather than a data-dependent split.
func bareArm(body []ir.Stmt) bool {
	if len(body) == 0 {
		return true
	}
	if len(body) == 1 {
		switch body[0].(type) {
		case *ir.Goto, *ir.Halt:
			return true
		}
	}
	return false
}

// hasGotoTo reports whether body (recursively) jumps back to the label.
func hasGotoTo(body []ir.Stmt, label string) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.Goto:
			if s.Name == label {
				return true
			}
		case *ir.If:
			if hasGotoTo(s.Then, label) || hasGotoTo(s.Else, label) {
				return true
			}
		case *ir.Loop:
			if hasGotoTo(s.Pre, label) || hasGotoTo(s.Body, label) {
				return true
			}
		}
	}
	return false
}

// firstDeq returns the queue of the first dequeue in the body (-1 if none).
func firstDeq(body []ir.Stmt) int {
	for _, s := range body {
		switch s := s.(type) {
		case *ir.Assign:
			if d, ok := s.Src.(*ir.RvalDeq); ok {
				return d.Q
			}
		case *ir.If:
			if q := firstDeq(s.Then); q >= 0 {
				return q
			}
			if q := firstDeq(s.Else); q >= 0 {
				return q
			}
		case *ir.Loop:
			if q := firstDeq(s.Pre); q >= 0 {
				return q
			}
			if q := firstDeq(s.Body); q >= 0 {
				return q
			}
		}
	}
	return -1
}

func equalF(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- rendering ---------------------------------------------------------------

// String renders the report deterministically (golden-test friendly).
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cost %s: %s\n", r.Pipeline, r.Description)
	fmt.Fprintf(&sb, "predicted %d cycles, bottleneck %s\n", r.Predicted, r.Bottleneck)
	for _, e := range r.Entities {
		fmt.Fprintf(&sb, "  %-28s core %d  cost %10.1f  util %3.0f%%\n",
			e.Name, e.Core, e.Cycles, e.Util*100)
	}
	for _, c := range r.Cores {
		fmt.Fprintf(&sb, "  %-28s         load %10.1f\n",
			fmt.Sprintf("core %d issue", c.Core), c.Cycles)
	}
	for _, q := range r.Queues {
		depth := "default"
		if q.Depth > 0 {
			depth = fmt.Sprintf("%d", q.Depth)
		}
		fmt.Fprintf(&sb, "  q%-2d %-24s data %8.1f  ctrl %6.1f  burst %4.0f  depth %-7s rec %d\n",
			q.ID, q.Name, q.Data, q.Ctrl, q.Burst, depth, q.Recommended)
	}
	return sb.String()
}

// SpearmanRank computes the Spearman rank-correlation coefficient between
// two paired samples (ties receive average ranks). Returns 0 when fewer
// than two pairs or when either side is constant.
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort keeps this dependency-free and deterministic.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && v[idx[j]] < v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
