#pragma phloem
void smoke(int* restrict a, int* restrict b, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
    int v = b[idx];
    acc = acc + v;
  }
  out[0] = acc;
}
