// Package analysis implements the static analyses behind Phloem's automatic
// decoupling (Sec. V): loop-nest (spine) discovery, memory-access
// classification (sequential vs indirect, nearby-access affinity), the cost
// model that ranks candidate decoupling points, and the race rule of Fig. 4
// that keeps reads and writes of the same data structure in one stage.
package analysis

import (
	"fmt"
	"sort"

	"phloem/internal/ir"
)

// Phase is one top-level decoupling unit: an optional preamble, one loop
// nest, and the statements trailing it. Programs with several phases get
// barrier synchronization between them (Sec. IV-A, "Program phases").
type Phase struct {
	// Pre holds top-level statements before the nest's loop.
	Pre []ir.Stmt
	// Nest is the phase's loop (nil for a straight-line phase).
	Nest *ir.Loop
	// Index is the phase's position.
	Index int
}

// SplitPhases partitions a statement list into phases at top-level loops.
// Trailing statements after the last loop are attached to the last phase's
// Pre of a final nest-less phase.
func SplitPhases(body []ir.Stmt) []*Phase {
	var phases []*Phase
	var pre []ir.Stmt
	for _, s := range body {
		if lp, ok := s.(*ir.Loop); ok {
			phases = append(phases, &Phase{Pre: pre, Nest: lp, Index: len(phases)})
			pre = nil
			continue
		}
		pre = append(pre, s)
	}
	if len(pre) > 0 {
		phases = append(phases, &Phase{Pre: pre, Index: len(phases)})
	}
	return phases
}

// Candidate is one possible decoupling point: a load statement on the spine
// of a loop nest.
type Candidate struct {
	// Stmt is the load assignment (identity matters: passes locate the
	// point by pointer).
	Stmt *ir.Assign
	// Load is Stmt's right-hand side.
	Load *ir.RvalLoad
	// Depth is the loop depth (1 = outermost loop body).
	Depth int
	// Chain is the enclosing loop chain, outermost first.
	Chain []*ir.Loop
	// Cost is the predicted per-access cost.
	Cost float64
	// Rank is Cost weighted by estimated frequency.
	Rank float64
	// Grouped marks loads absorbed into a nearby access (e.g., nodes[v+1]
	// right after nodes[v]); they are predicted cache hits and are not
	// proposed as separate points (Sec. V's cost model).
	Grouped bool
	// PrefetchOnly marks loads of read-write arrays: the race rule (Fig. 4)
	// pins them to the stage that stores, so a boundary here leaves the
	// load in place and the producer merely prefetches. The static flow
	// skips these; the autotuner explores them.
	PrefetchOnly bool
	// Order is the traversal position (for restoring program order).
	Order int
}

func (c *Candidate) String() string {
	return fmt.Sprintf("load#%d slot=%d depth=%d cost=%.1f rank=%.1f grouped=%v",
		c.Load.LoadID, c.Load.Slot, c.Depth, c.Cost, c.Rank, c.Grouped)
}

// Cost model constants (Sec. V: "the cost of the memory access depends on
// whether it is indirect or sequential and the presence of nearby accesses";
// frequency weighting prefers inner loops).
const (
	costIndirect   = 30.0
	costScan       = 15.0 // streaming within a data-dependent range
	costSequential = 2.0
	costNearby     = 1.0
	freqPerLevel   = 8.0
)

// Analyzer holds per-program analysis state.
type Analyzer struct {
	P *ir.Prog
	// storedSlots[slot] is true when the phase stores to the slot.
	storedSlots map[int]bool
	// swapClass maps each slot to a canonical representative of its
	// swap-equivalence class (slots exchanged by ir.Swap).
	swapClass map[int]int
}

// New builds an analyzer for the program.
func New(p *ir.Prog) *Analyzer {
	a := &Analyzer{P: p, swapClass: map[int]int{}}
	for i := range p.Slots {
		a.swapClass[i] = i
	}
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Swap:
				ra, rb := a.rep(s.A), a.rep(s.B)
				if ra != rb {
					a.swapClass[ra] = rb
				}
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				walk(s.Pre)
				walk(s.Body)
			}
		}
	}
	walk(p.Body)
	return a
}

func (a *Analyzer) rep(slot int) int {
	for a.swapClass[slot] != slot {
		slot = a.swapClass[slot]
	}
	return slot
}

// SameClass reports whether two slots can alias through swaps.
func (a *Analyzer) SameClass(s1, s2 int) bool { return a.rep(s1) == a.rep(s2) }

// Swapped reports whether the slot participates in any swap.
func (a *Analyzer) Swapped(slot int) bool {
	for other := range a.P.Slots {
		if other != slot && a.SameClass(other, slot) {
			return true
		}
	}
	return false
}

// Candidates finds and ranks decoupling-point candidates in a phase's nest.
// Results are ordered by decreasing rank. Loads excluded by the race rule
// (their slot is also stored in the phase and is not epoch-synchronized by a
// swap) and grouped nearby accesses are marked, not returned.
func (a *Analyzer) Candidates(ph *Phase) []*Candidate {
	if ph.Nest == nil {
		return nil
	}
	a.storedSlots = map[int]bool{}
	a.collectStores(ph.Nest.Body)
	a.collectStores(ph.Nest.Pre)
	affine := FindAffineDefs(append(append([]ir.Stmt{}, ph.Nest.Pre...), ph.Nest.Body...))

	var out []*Candidate
	var chain []*ir.Loop
	var walkSpine func(lp *ir.Loop)
	order := 0

	scanBody := func(body []ir.Stmt, recurse func(lp *ir.Loop)) {
		var prevLoads []*Candidate
		for _, s := range body {
			order++
			switch s := s.(type) {
			case *ir.Assign:
				if ld, ok := s.Src.(*ir.RvalLoad); ok {
					c := &Candidate{
						Stmt:  s,
						Load:  ld,
						Depth: len(chain),
						Chain: append([]*ir.Loop(nil), chain...),
						Order: order,
					}
					a.classify(c, prevLoads, chain[len(chain)-1], affine)
					c.PrefetchOnly = !a.allowedByRaceRule(ld.Slot)
					prevLoads = append(prevLoads, c)
					if !c.Grouped {
						out = append(out, c)
					}
				}
			case *ir.Loop:
				recurse(s)
			}
		}
	}
	walkSpine = func(lp *ir.Loop) {
		chain = append(chain, lp)
		scanBody(lp.Body, walkSpine)
		chain = chain[:len(chain)-1]
	}
	walkSpine(ph.Nest)

	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
	return out
}

func (a *Analyzer) collectStores(list []ir.Stmt) {
	for _, s := range list {
		switch s := s.(type) {
		case *ir.Store:
			a.storedSlots[s.Slot] = true
		case *ir.If:
			a.collectStores(s.Then)
			a.collectStores(s.Else)
		case *ir.Loop:
			a.collectStores(s.Pre)
			a.collectStores(s.Body)
		}
	}
}

// allowedByRaceRule applies Fig. 4's rule over proven memory effects rather
// than slot identity alone: a load cannot move to another stage when the
// phase stores any slot whose write set may reach the loaded slot — itself,
// or a distinct slot the frontend's effects analysis could not prove
// disjoint (Prog.Alias). Swap classes are exempt either way: the
// double-buffer flip epoch-synchronizes their accesses. For fully
// restrict-qualified kernels every cross-slot verdict is disjoint, so this
// reduces to the original identity rule bit-for-bit.
func (a *Analyzer) allowedByRaceRule(slot int) bool {
	if a.storedSlots[slot] && !a.Swapped(slot) {
		return false
	}
	for s := range a.storedSlots {
		if s == slot || a.SameClass(s, slot) {
			continue
		}
		if a.P.Alias.Conflicts(a.P.Slots[s].Name, a.P.Slots[slot].Name) {
			return false
		}
	}
	return true
}

// classify fills in Cost and Rank. A load is sequential when its index is
// the enclosing counted loop's induction variable (possibly offset by a
// constant); it is grouped when a previous load in the same body reads the
// same slot at a nearby index.
func (a *Analyzer) classify(c *Candidate, prev []*Candidate, encl *ir.Loop, affine map[ir.Var]AffineDef) {
	for _, p := range prev {
		if p.Load.Slot == c.Load.Slot && nearby(p.Load.Idx, c.Load.Idx, affine) {
			c.Grouped = true
			c.Cost = costNearby
			c.Rank = 0
			return
		}
		// Parallel streams (CSR's cols[p]/vals[p]): a load at exactly the
		// same index as an earlier one travels with it; splitting them into
		// separate stages only adds relay traffic.
		if p.Load.Slot != c.Load.Slot {
			if d, ok := indexDelta(p.Load.Idx, c.Load.Idx, affine); ok && d == 0 {
				c.Grouped = true
				c.Cost = costNearby
				c.Rank = 0
				return
			}
		}
	}
	cost := costIndirect
	if encl.Counted != nil && indexIsInduction(c.Load.Idx, encl.Counted.Ind, affine) {
		// Streaming access. Truly sequential only when the range base is
		// statically known (e.g., 0..n); a data-dependent base (an edge
		// list slice) still misses at every range start.
		if encl.Counted.Init.IsConst {
			cost = costSequential
		} else {
			cost = costScan
		}
	}
	c.Cost = cost
	c.Rank = cost
	for i := 0; i < c.Depth; i++ {
		c.Rank *= freqPerLevel
	}
}

// indexIsInduction reports whether idx resolves to the induction variable
// (possibly via a small constant offset through affine temporaries).
func indexIsInduction(idx ir.Operand, ind ir.Var, affine map[ir.Var]AffineDef) bool {
	if idx.IsConst {
		return false
	}
	base, _, ok := Resolve(idx.Var, affine)
	return ok && base == ind
}

// Resolve follows affine single-def chains: returns the root variable and
// accumulated constant offset of v.
func Resolve(v ir.Var, affine map[ir.Var]AffineDef) (ir.Var, int64, bool) {
	var off int64
	for depth := 0; depth < 16; depth++ {
		d, ok := affine[v]
		if !ok {
			return v, off, true
		}
		off += d.Offset
		v = d.Base
	}
	return v, off, false // cycle guard
}

// indexDelta resolves two index operands through affine temporaries and
// returns their constant difference (ok=false when incomparable).
func indexDelta(i1, i2 ir.Operand, affine map[ir.Var]AffineDef) (int64, bool) {
	if i1.IsConst && i2.IsConst {
		return i1.Imm - i2.Imm, true
	}
	if i1.IsConst || i2.IsConst {
		return 0, false
	}
	b1, o1, ok1 := Resolve(i1.Var, affine)
	b2, o2, ok2 := Resolve(i2.Var, affine)
	if !ok1 || !ok2 || b1 != b2 {
		return 0, false
	}
	return o1 - o2, true
}

// nearby reports whether two index operands are provably within one element
// of each other: identical variables/constants, or one computed as the
// other +/- 1 through affine temporaries (the nodes[v] / nodes[v+1]
// pattern after lowering).
func nearby(i1, i2 ir.Operand, affine map[ir.Var]AffineDef) bool {
	d, ok := indexDelta(i1, i2, affine)
	return ok && d >= -1 && d <= 1
}

// AffineDef describes v = base + offset when a variable has a single
// reaching definition of that shape within a body.
type AffineDef struct {
	Base   ir.Var
	Offset int64
}

// FindAffineDefs scans a statement list (non-recursively through loops) and
// returns, for each variable assigned exactly once with the shape
// v = base + const, its affine description. Used by the recompute pass and
// the nearby-access grouping.
func FindAffineDefs(list []ir.Stmt) map[ir.Var]AffineDef {
	counts := map[ir.Var]int{}
	defs := map[ir.Var]AffineDef{}
	var walk func(body []ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, s := range body {
			switch s := s.(type) {
			case *ir.Assign:
				counts[s.Dst]++
				if bin, ok := s.Src.(*ir.RvalBin); ok && bin.Op == ir.OpAdd && !bin.Float {
					if !bin.A.IsConst && bin.B.IsConst && bin.A.Var != s.Dst {
						defs[s.Dst] = AffineDef{Base: bin.A.Var, Offset: bin.B.Imm}
					}
				}
				if un, ok := s.Src.(*ir.RvalUn); ok && un.Op == ir.OpMov && !un.Float &&
					!un.A.IsConst && un.A.Var != s.Dst {
					defs[s.Dst] = AffineDef{Base: un.A.Var}
				}
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				walk(s.Pre)
				walk(s.Body)
			}
		}
	}
	walk(list)
	for v, n := range counts {
		if n != 1 {
			delete(defs, v)
		}
	}
	return defs
}

// OrderPoints returns a copy of the candidates sorted back into program
// traversal order, as required by the pipeline builder.
func OrderPoints(cands []*Candidate) []*Candidate {
	out := append([]*Candidate(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// ReplicableOuter detects the program shape of PageRank-Delta and similar
// phased kernels: [pure scalar preamble..., counted Loop] whose body holds
// two or more top-level loop nests. Such an outer loop is replicated into
// every stage (its control is cheap and parameter-driven), with the inner
// nests decoupled as separate phases (Sec. IV-A, "Program phases").
func ReplicableOuter(body []ir.Stmt) (*ir.Loop, []ir.Stmt, bool) {
	var pre []ir.Stmt
	var lp *ir.Loop
	for _, s := range body {
		switch s := s.(type) {
		case *ir.Assign:
			if lp != nil {
				return nil, nil, false
			}
			switch s.Src.(type) {
			case *ir.RvalBin, *ir.RvalUn:
				pre = append(pre, s)
			default:
				return nil, nil, false
			}
		case *ir.Loop:
			if lp != nil {
				return nil, nil, false
			}
			lp = s
		default:
			return nil, nil, false
		}
	}
	if lp == nil || lp.Counted == nil {
		return nil, nil, false
	}
	nests := 0
	for _, s := range lp.Body {
		if _, ok := s.(*ir.Loop); ok {
			nests++
		}
	}
	if nests < 2 {
		return nil, nil, false
	}
	return lp, pre, true
}

// ProgramPhases splits a program into its decoupling phases, looking through
// a replicable outer loop when present.
func ProgramPhases(body []ir.Stmt) []*Phase {
	if lp, _, ok := ReplicableOuter(body); ok {
		return SplitPhases(lp.Body)
	}
	return SplitPhases(body)
}

// ForcedPoints returns the candidates selected by `#pragma decouple` marks:
// each mark forces a boundary at the next load statement on the spine
// (Table II: "separate the following instructions into a new stage").
// Returns nil when the phase has no marks.
func (a *Analyzer) ForcedPoints(ph *Phase) []*Candidate {
	cands := a.Candidates(ph)
	byStmt := map[ir.Stmt]*Candidate{}
	for _, c := range cands {
		byStmt[c.Stmt] = c
	}
	if ph.Nest == nil {
		return nil
	}
	var out []*Candidate
	pending := false
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.DecoupleMark:
				pending = true
			case *ir.Assign:
				if pending {
					if c, ok := byStmt[s]; ok {
						out = append(out, c)
						pending = false
					}
				}
			case *ir.Loop:
				walk(s.Body)
			}
		}
	}
	walk(ph.Nest.Body)
	return OrderPoints(out)
}
