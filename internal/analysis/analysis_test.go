package analysis_test

import (
	"testing"

	"phloem/internal/analysis"
	"phloem/internal/workloads"
)

func TestBFSCandidates(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	phases := analysis.ProgramPhases(p.Body)
	if len(phases) != 1 {
		t.Fatalf("BFS phases: %d", len(phases))
	}
	cands := an.Candidates(phases[0])
	if len(cands) != 4 {
		t.Fatalf("BFS should have 4 candidates (edges, nodes, cur_fringe, distances), got %d", len(cands))
	}
	// nodes[v+1] must have been grouped with nodes[v]; the distances load
	// must be marked prefetch-only by the race rule (it is loaded and
	// stored); the top freely movable candidate is the edges access.
	for _, c := range cands {
		name := p.Slots[c.Load.Slot].Name
		if name == "distances" && !c.PrefetchOnly {
			t.Error("distances load must be prefetch-only under the race rule")
		}
		if name != "distances" && c.PrefetchOnly {
			t.Errorf("%s wrongly marked prefetch-only", name)
		}
	}
	var movable []*analysis.Candidate
	for _, c := range cands {
		if !c.PrefetchOnly {
			movable = append(movable, c)
		}
	}
	if top := p.Slots[movable[0].Load.Slot].Name; top != "edges" {
		t.Errorf("top movable candidate is %s, want edges", top)
	}
	// Ranks are sorted descending.
	for i := 1; i < len(cands); i++ {
		if cands[i].Rank > cands[i-1].Rank {
			t.Error("candidates not sorted by rank")
		}
	}
}

func TestSwapClassExemption(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cf := p.SlotIndex("cur_fringe")
	nf := p.SlotIndex("next_fringe")
	if !an.SameClass(cf, nf) {
		t.Error("swapped fringes must share an alias class")
	}
	if !an.Swapped(cf) {
		t.Error("cur_fringe participates in a swap")
	}
	if an.SameClass(cf, p.SlotIndex("nodes")) {
		t.Error("nodes must not alias the fringes")
	}
}

func TestRadiiCandidatesIncludeVisited(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.RadiiSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cands := an.Candidates(analysis.ProgramPhases(p.Body)[0])
	found := false
	for _, c := range cands {
		if p.Slots[c.Load.Slot].Name == "visited" && c.Depth == 3 {
			found = true
		}
	}
	if !found {
		t.Error("visited[ngh] is epoch-synchronized by swap and must be a candidate")
	}
}

func TestProgramPhasesPRD(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.PRDSource)
	if err != nil {
		t.Fatal(err)
	}
	phases := analysis.ProgramPhases(p.Body)
	// Two loop nests plus the trailing induction update.
	if len(phases) != 3 {
		t.Fatalf("PRD should split into 3 phases inside the outer loop, got %d", len(phases))
	}
	if phases[0].Nest == nil || phases[1].Nest == nil || phases[2].Nest != nil {
		t.Error("phase structure: nest, nest, trailing")
	}
	if _, _, ok := analysis.ReplicableOuter(p.Body); !ok {
		t.Error("PRD's outer iteration loop should be replicable")
	}
}

func TestOrderPointsRestoresTraversalOrder(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	an := analysis.New(p)
	cands := an.Candidates(analysis.ProgramPhases(p.Body)[0])
	ordered := analysis.OrderPoints(cands)
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Order < ordered[i-1].Order {
			t.Fatal("OrderPoints did not sort by traversal order")
		}
	}
}
