package source

import "fmt"

// Type is the minimal type system: int (64-bit), float (64-bit), and
// pointers to them. "long"/"double" are accepted as aliases in source.
type Type int

const (
	TypeVoid Type = iota
	TypeInt
	TypeFloat
	TypeIntPtr
	TypeFloatPtr
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeIntPtr:
		return "int*"
	case TypeFloatPtr:
		return "float*"
	}
	return "?"
}

// IsPtr reports whether the type is a pointer (array) type.
func (t Type) IsPtr() bool { return t == TypeIntPtr || t == TypeFloatPtr }

// Elem returns the element type of a pointer type.
func (t Type) Elem() Type {
	switch t {
	case TypeIntPtr:
		return TypeInt
	case TypeFloatPtr:
		return TypeFloat
	}
	return TypeVoid
}

// Param is one function parameter.
type Param struct {
	Name     string
	Type     Type
	Restrict bool
	Line     int
}

// Pragmas collects the Table II annotations attached to a function.
type Pragmas struct {
	// Phloem marks the function for automatic pipeline parallelization.
	Phloem bool
	// Replicate is the requested replica count (0: none).
	Replicate int
	// Distribute enables data-centric work distribution between replicas.
	Distribute bool
}

// Function is a parsed kernel.
type Function struct {
	Name    string
	Params  []Param
	Body    *Block
	Pragmas Pragmas
	Line    int
}

// Node positions are line numbers (enough for error reporting).

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares a local variable with an initializer.
type DeclStmt struct {
	Name string
	Type Type
	Init Expr
	Line int
}

// AssignStmt assigns to a variable or array element. Op is "=", "+=", "-=",
// "*=", or "/=".
type AssignStmt struct {
	Target Expr // *Ident or *Index
	Op     string
	Value  Expr
	Line   int
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Line int
	// Decouple is set when a `#pragma decouple` precedes the loop.
	Decouple bool
}

// ForStmt is a for loop: for (init; cond; post) body. Init may be a
// declaration or an assignment; Post is an assignment.
type ForStmt struct {
	Init Stmt // *DeclStmt or *AssignStmt, may be nil
	Cond Expr
	Post *AssignStmt // may be nil
	Body *Block
	Line int
	// Decouple is set when a `#pragma decouple` precedes the loop.
	Decouple bool
}

// SwapStmt is the swap(a, b) builtin exchanging two array pointers.
type SwapStmt struct {
	A, B string
	Line int
}

// DecoupleStmt marks a manual `#pragma decouple` at a statement boundary.
type DecoupleStmt struct {
	Line int
}

// BarrierStmt is the barrier() builtin synchronizing all threads (used by
// hand-written data-parallel kernels).
type BarrierStmt struct {
	Line int
}

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*SwapStmt) stmtNode()     {}
func (*DecoupleStmt) stmtNode() {}
func (*BarrierStmt) stmtNode()  {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// Type is filled in by the checker.
	ExprType() Type
}

type exprBase struct{ T Type }

func (e *exprBase) ExprType() Type { return e.T }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val  int64
	Line int
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val  float64
	Line int
}

// Ident references a variable or parameter.
type Ident struct {
	exprBase
	Name string
	Line int
}

// Index is an array element access a[i].
type Index struct {
	exprBase
	Array string // always a direct parameter/pointer-variable name
	Idx   Expr
	Line  int
}

// Binary is a binary operation. Op is one of:
// + - * / % & | ^ << >> < <= > >= == != && ||
type Binary struct {
	exprBase
	Op   string
	L, R Expr
	Line int
}

// Unary is -x, !x, or ~x.
type Unary struct {
	exprBase
	Op   string
	X    Expr
	Line int
}

// Cast is (int)x or (float)x.
type Cast struct {
	exprBase
	To   Type
	X    Expr
	Line int
}

// Call supports the tiny builtin set: abs(int), fabs(float), min/max(int,int).
type Call struct {
	exprBase
	Name string
	Args []Expr
	Line int
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Index) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Cast) exprNode()     {}
func (*Call) exprNode()     {}

// Error is a positioned frontend error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
