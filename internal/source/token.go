// Package source implements the frontend for Phloem's C-subset input
// language: lexer, parser, abstract syntax tree, and type checker.
//
// The language is the subset of C that the paper's benchmarks use: a single
// kernel function over restrict-qualified int/float arrays, with loops,
// conditionals, integer and floating-point arithmetic, and the Phloem pragma
// annotations of Table II (#pragma phloem / decouple / replicate /
// distribute). A swap(a, b) builtin exchanges two array pointers (the
// idiomatic double-buffer flip in BFS-style code).
package source

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
	TokPragma  // a whole #pragma line (text in Lit)
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Lit  string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokPragma:
		return fmt.Sprintf("#pragma %s", t.Lit)
	default:
		return fmt.Sprintf("%q", t.Lit)
	}
}

var keywords = map[string]bool{
	"void": true, "int": true, "float": true, "long": true, "double": true,
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"restrict": true, "const": true, "swap": true, "barrier": true, "break": true,
	"continue": true,
}

// Lexer turns source text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) adv() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdent0(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentC(c byte) bool { return isIdent0(c) || isDigit(c) }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for {
		// skip whitespace
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				l.adv()
				continue
			}
			break
		}
		if l.pos >= len(l.src) {
			return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
		}
		// comments
		if l.peekByte() == '/' && l.peekByte2() == '/' {
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.adv()
			}
			continue
		}
		if l.peekByte() == '/' && l.peekByte2() == '*' {
			l.adv()
			l.adv()
			for l.pos < len(l.src) && !(l.peekByte() == '*' && l.peekByte2() == '/') {
				l.adv()
			}
			if l.pos >= len(l.src) {
				return Token{}, errf(l.line, "unterminated block comment")
			}
			l.adv()
			l.adv()
			continue
		}
		break
	}

	line, col := l.line, l.col
	c := l.peekByte()

	// #pragma line
	if c == '#' {
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '\n' {
			l.adv()
		}
		text := l.src[start:l.pos]
		const prefix = "#pragma"
		if len(text) < len(prefix) || text[:len(prefix)] != prefix {
			return Token{}, errf(line, "unsupported preprocessor directive %q", text)
		}
		body := text[len(prefix):]
		for len(body) > 0 && (body[0] == ' ' || body[0] == '\t') {
			body = body[1:]
		}
		return Token{Kind: TokPragma, Lit: body, Line: line, Col: col}, nil
	}

	if isIdent0(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdentC(l.peekByte()) {
			l.adv()
		}
		word := l.src[start:l.pos]
		k := TokIdent
		if keywords[word] {
			k = TokKeyword
		}
		return Token{Kind: k, Lit: word, Line: line, Col: col}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(l.peekByte2())) {
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			if isDigit(c) {
				l.adv()
			} else if c == '.' && !isFloat {
				isFloat = true
				l.adv()
			} else if (c == 'e' || c == 'E') && l.pos > start {
				isFloat = true
				l.adv()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.adv()
				}
			} else {
				break
			}
		}
		lit := l.src[start:l.pos]
		k := TokIntLit
		if isFloat {
			k = TokFloatLit
		}
		return Token{Kind: k, Lit: lit, Line: line, Col: col}, nil
	}

	// multi-char operators, longest first
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=":
		l.adv()
		l.adv()
		return Token{Kind: TokPunct, Lit: two, Line: line, Col: col}, nil
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
		'(', ')', '{', '}', '[', ']', ';', ',':
		l.adv()
		return Token{Kind: TokPunct, Lit: string(c), Line: line, Col: col}, nil
	}
	return Token{}, errf(line, "column %d: unexpected character %q", col, string(c))
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
