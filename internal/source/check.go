package source

// Check type-checks the function in place: it resolves identifiers, fills in
// expression types, and enforces the language rules Phloem depends on (no
// pointer arithmetic, scalar locals). Array parameters of a `#pragma phloem`
// function historically had to be restrict-qualified here; that hard error
// is demoted — the memory-effects analysis (internal/effects, run by the
// compiler driver after Check) now proves or refutes aliasing per parameter
// pair, rejecting only real may-alias conflicts with a positioned E0 error.
func Check(fn *Function) error {
	c := &checker{
		fn:     fn,
		scopes: []map[string]Type{{}},
	}
	for _, p := range fn.Params {
		if _, dup := c.scopes[0][p.Name]; dup {
			return errf(p.Line, "duplicate parameter %q", p.Name)
		}
		c.scopes[0][p.Name] = p.Type
	}
	return c.block(fn.Body)
}

type checker struct {
	fn     *Function
	scopes []map[string]Type
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return TypeVoid, false
}

func (c *checker) declare(name string, t Type, line int) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(line, "redeclaration of %q in the same scope", name)
	}
	top[name] = t
	return nil
}

func (c *checker) block(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return c.block(s)
	case *DeclStmt:
		if err := c.expr(s.Init); err != nil {
			return err
		}
		if err := c.assignable(s.Type, s.Init, s.Line); err != nil {
			return err
		}
		return c.declare(s.Name, s.Type, s.Line)
	case *AssignStmt:
		if err := c.expr(s.Target); err != nil {
			return err
		}
		if err := c.expr(s.Value); err != nil {
			return err
		}
		tt := s.Target.ExprType()
		if tt.IsPtr() {
			return errf(s.Line, "cannot assign to a pointer; use swap()")
		}
		if s.Op != "=" {
			// compound: target must support arithmetic
			if tt != TypeInt && tt != TypeFloat {
				return errf(s.Line, "compound assignment needs numeric target")
			}
		}
		return c.assignable(tt, s.Value, s.Line)
	case *IfStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		if s.Cond.ExprType() != TypeInt {
			return errf(s.Line, "if condition must be an integer expression")
		}
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.block(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		if s.Cond.ExprType() != TypeInt {
			return errf(s.Line, "while condition must be an integer expression")
		}
		return c.block(s.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if err := c.expr(s.Cond); err != nil {
			return err
		}
		if s.Cond.ExprType() != TypeInt {
			return errf(s.Line, "for condition must be an integer expression")
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		return c.block(s.Body)
	case *SwapStmt:
		ta, ok := c.lookup(s.A)
		if !ok {
			return errf(s.Line, "undefined array %q", s.A)
		}
		tb, ok := c.lookup(s.B)
		if !ok {
			return errf(s.Line, "undefined array %q", s.B)
		}
		if !ta.IsPtr() || ta != tb {
			return errf(s.Line, "swap() requires two arrays of the same element type")
		}
		return nil
	case *DecoupleStmt:
		return nil
	case *BarrierStmt:
		return nil
	}
	return errf(0, "unknown statement type %T", s)
}

// assignable checks value compatibility with target type t (int<->float
// require explicit casts, like gcc -Werror=conversion would).
func (c *checker) assignable(t Type, v Expr, line int) error {
	vt := v.ExprType()
	if t == vt {
		return nil
	}
	return errf(line, "cannot assign %s to %s without an explicit cast", vt, t)
}

func (c *checker) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		e.T = TypeInt
	case *FloatLit:
		e.T = TypeFloat
	case *Ident:
		t, ok := c.lookup(e.Name)
		if !ok {
			return errf(e.Line, "undefined identifier %q", e.Name)
		}
		e.T = t
	case *Index:
		t, ok := c.lookup(e.Array)
		if !ok {
			return errf(e.Line, "undefined array %q", e.Array)
		}
		if !t.IsPtr() {
			return errf(e.Line, "%q is not an array", e.Array)
		}
		if err := c.expr(e.Idx); err != nil {
			return err
		}
		if e.Idx.ExprType() != TypeInt {
			return errf(e.Line, "array index must be an integer")
		}
		e.T = t.Elem()
	case *Binary:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		lt, rt := e.L.ExprType(), e.R.ExprType()
		if lt.IsPtr() || rt.IsPtr() {
			return errf(e.Line, "pointer arithmetic is not supported")
		}
		switch e.Op {
		case "&&", "||", "&", "|", "^", "<<", ">>", "%":
			if lt != TypeInt || rt != TypeInt {
				return errf(e.Line, "operator %q requires integer operands", e.Op)
			}
			e.T = TypeInt
		case "<", "<=", ">", ">=", "==", "!=":
			if lt != rt {
				return errf(e.Line, "comparison of %s with %s requires a cast", lt, rt)
			}
			e.T = TypeInt
		case "+", "-", "*", "/":
			if lt != rt {
				return errf(e.Line, "mixed %s/%s arithmetic requires a cast", lt, rt)
			}
			e.T = lt
		default:
			return errf(e.Line, "unknown operator %q", e.Op)
		}
	case *Unary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		xt := e.X.ExprType()
		switch e.Op {
		case "-":
			if xt != TypeInt && xt != TypeFloat {
				return errf(e.Line, "unary - requires a numeric operand")
			}
			e.T = xt
		case "!", "~":
			if xt != TypeInt {
				return errf(e.Line, "unary %s requires an integer operand", e.Op)
			}
			e.T = TypeInt
		}
	case *Cast:
		if err := c.expr(e.X); err != nil {
			return err
		}
		xt := e.X.ExprType()
		if xt != TypeInt && xt != TypeFloat {
			return errf(e.Line, "can only cast numeric values")
		}
		e.T = e.To
	case *Call:
		for _, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		switch e.Name {
		case "abs":
			if len(e.Args) != 1 || e.Args[0].ExprType() != TypeInt {
				return errf(e.Line, "abs takes one int argument")
			}
			e.T = TypeInt
		case "fabs":
			if len(e.Args) != 1 || e.Args[0].ExprType() != TypeFloat {
				return errf(e.Line, "fabs takes one float argument")
			}
			e.T = TypeFloat
		case "min", "max":
			if len(e.Args) != 2 || e.Args[0].ExprType() != TypeInt || e.Args[1].ExprType() != TypeInt {
				return errf(e.Line, "%s takes two int arguments", e.Name)
			}
			e.T = TypeInt
		default:
			return errf(e.Line, "unknown function %q (Phloem compiles single procedures; inline helpers first)", e.Name)
		}
	default:
		return errf(0, "unknown expression type %T", e)
	}
	return nil
}
