package source

// FuzzParse feeds arbitrary byte strings through Parse and Check. The
// invariants under fuzzing: no panics anywhere in the frontend, and every
// rejection is a *source.Error with a positive line number — the compiler
// driver, the verifier, and the effects analysis all render these positions
// to users. Seeds are the benchmark kernels plus small pathological inputs.
//
// Runs as a plain unit test over the seed corpus in `go test`; explore with
//
//	go test ./internal/source -fuzz FuzzParse -fuzztime 30s

import (
	"errors"
	"testing"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"void",
		"#pragma phloem",
		"void k() {}",
		"void k(int n) { int x = n; }",
		"void k(int* restrict a, int n) { a[0] = n; }",
		"void k(int* a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = i; } }",
		`#pragma phloem
void k(int* restrict a, float* restrict f, int n, float s) {
  for (int i = 0; i < n; i = i + 1) {
    f[i] = f[i] * s;
    a[i] = a[i] + 1;
  }
}`,
		`#pragma phloem
void bfs(int* restrict nodes, int* restrict edges, int* restrict distances,
         int* restrict cur_fringe, int* restrict next_fringe,
         int root, int n) {
  int cur_size = 1;
  int next_size = 0;
  int cur_dist = 1;
  while (cur_size > 0) {
    for (int i = 0; i < cur_size; i = i + 1) {
      int v = cur_fringe[i];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int old_dist = distances[ngh];
        if (cur_dist < old_dist) {
          distances[ngh] = cur_dist;
          next_fringe[next_size] = ngh;
          next_size = next_size + 1;
        }
      }
    }
    swap(cur_fringe, next_fringe);
    cur_size = next_size;
    next_size = 0;
    cur_dist = cur_dist + 1;
  }
}`,
		`#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}`,
		"void k(int n) { while (1) { } }",
		"void k(int* restrict a) { swap(a, a); }",
		"void k(int n) { if (n) { } else { } }",
		"void k(float f) { float g = -f; }",
		"/* comment */ void k(int n) {}",
		"void k(int n) { int x = (n << 2) % 3; }",
		"\x00\x01\x02",
		"void k(int n) { int x = ((((((((n))))))))); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			requirePositioned(t, err)
			return
		}
		if err := Check(fn); err != nil {
			requirePositioned(t, err)
		}
	})
}

func requirePositioned(t *testing.T, err error) {
	t.Helper()
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("frontend rejection is not a *source.Error: %T: %v", err, err)
	}
	if se.Line <= 0 {
		t.Fatalf("rejection has no source position (line %d): %v", se.Line, err)
	}
}
