package source

import "testing"

// Additional language-semantics coverage: scoping, casts, operators,
// pragmas in odd positions, and the builtins.

func TestScopingShadowing(t *testing.T) {
	fn, err := Parse(`
void k(int n) {
  int x = 1;
  if (n > 0) {
    int x = 2;
    int y = x;
  }
  int z = x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(fn); err != nil {
		t.Fatal(err)
	}
}

func TestScopeDoesNotLeak(t *testing.T) {
	fn, err := Parse(`
void k(int n) {
  if (n > 0) {
    int inner = 1;
  }
  int y = inner;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(fn); err == nil {
		t.Error("inner-scope variable must not leak")
	}
}

func TestForLoopScopesInductionVar(t *testing.T) {
	fn, err := Parse(`
void k(int n) {
  for (int i = 0; i < n; i = i + 1) {
    int x = i;
  }
  int y = i;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(fn); err == nil {
		t.Error("for-loop induction variable must not leak")
	}
}

func TestCastRules(t *testing.T) {
	good := `
void k(int n, float f) {
  float a = (float)n;
  int b = (int)f;
  float c = a * (float)b;
}
`
	fn, err := Parse(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(fn); err != nil {
		t.Fatal(err)
	}
}

func TestCompoundAssignOps(t *testing.T) {
	fn, err := Parse(`
void k(int* restrict a, int n, float f) {
  int x = 0;
  x += n;
  x -= 2;
  x *= 3;
  x /= 2;
  a[0] += x;
  float g = 1.0;
  g *= f;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(fn); err != nil {
		t.Fatal(err)
	}
}

func TestLongDoubleAliases(t *testing.T) {
	fn, err := Parse(`
void k(long* restrict a, double* restrict d, long n, double s) {
  a[0] = n;
  d[0] = s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Params[0].Type != TypeIntPtr || fn.Params[1].Type != TypeFloatPtr {
		t.Errorf("aliases: %v %v", fn.Params[0].Type, fn.Params[1].Type)
	}
	if err := Check(fn); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryPrecedence(t *testing.T) {
	fn, err := Parse("void k(int a, int b) { int x = -a * b; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := fn.Body.Stmts[0].(*DeclStmt)
	mul, ok := decl.Init.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("top of -a * b should be *, got %T", decl.Init)
	}
	if _, ok := mul.L.(*Unary); !ok {
		t.Error("left of * should be the unary negation")
	}
}

func TestCommentsEverywhere(t *testing.T) {
	fn, err := Parse(`
// leading
#pragma phloem
/* block before */ void /* mid */ k(int n) {
  int x = n; // trailing
  /* multi
     line */
  int y = x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(fn); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TypeVoid: "void", TypeInt: "int", TypeFloat: "float",
		TypeIntPtr: "int*", TypeFloatPtr: "float*",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%v.String() = %q", int(ty), ty.String())
		}
	}
	if TypeIntPtr.Elem() != TypeInt || TypeFloatPtr.Elem() != TypeFloat {
		t.Error("Elem()")
	}
}
