package source

// Negative-path coverage for Check with exact error positions: the verifier
// and the compiler driver both surface these messages to users, so the line
// numbers must point at the offending declaration or use, not at the
// function header or end of file.

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckErrorPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		wantMsg  string
	}{
		{
			// Aliasing between non-restrict parameters is no longer a Check
			// error (internal/effects proves or refutes it); pointer
			// rebinding outside swap() still is.
			name: "pointer assignment instead of swap",
			src: `#pragma phloem
void k(int* restrict a,
       int* restrict b,
       int n) {
  a = b;
}`,
			wantLine: 5,
			wantMsg:  "cannot assign to a pointer; use swap()",
		},
		{
			name: "redeclaration in same scope",
			src: `void k(int n) {
  int x = 1;
  int y = 2;
  int x = 3;
}`,
			wantLine: 4,
			wantMsg:  `redeclaration of "x" in the same scope`,
		},
		{
			name: "undeclared identifier",
			src: `void k(int n) {
  int x = 1;
  x = x + missing;
}`,
			wantLine: 3,
			wantMsg:  `undefined identifier "missing"`,
		},
		{
			name: "kind-mismatched declaration",
			src: `void k(int n, float f) {
  int a = n;
  int x = f;
}`,
			wantLine: 3,
			wantMsg:  "cannot assign float to int without an explicit cast",
		},
		{
			name: "kind-mismatched assignment",
			src: `void k(int n, float f) {
  float acc = 0.0;
  acc = n;
}`,
			wantLine: 3,
			wantMsg:  "cannot assign int to float without an explicit cast",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fn, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse should succeed (Check owns this rejection): %v", err)
			}
			err = Check(fn)
			if err == nil {
				t.Fatal("Check accepted an invalid kernel")
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Check should return a *source.Error, got %T: %v", err, err)
			}
			if se.Line != c.wantLine {
				t.Errorf("error on line %d, want line %d (%v)", se.Line, c.wantLine, err)
			}
			if !strings.Contains(se.Msg, c.wantMsg) {
				t.Errorf("error %q should contain %q", se.Msg, c.wantMsg)
			}
		})
	}
}
