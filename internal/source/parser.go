package source

import (
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the C subset.
type Parser struct {
	toks []Token
	pos  int
	// pendingDecouple is set when a `#pragma decouple` was just seen.
	pendingDecouple bool
}

// Parse parses a translation unit containing exactly one function.
func Parse(src string) (*Function, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	fn, err := p.parseFunction()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, errf(t.Line, "unexpected %s after function body (one function per unit)", t)
	}
	return fn, nil
}

func (p *Parser) peek() Token  { return p.toks[p.pos] }
func (p *Parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *Parser) expectPunct(s string) (Token, error) {
	t := p.next()
	if t.Kind != TokPunct || t.Lit != s {
		return t, errf(t.Line, "expected %q, found %s", s, t)
	}
	return t, nil
}

func (p *Parser) expectKeyword(s string) (Token, error) {
	t := p.next()
	if t.Kind != TokKeyword || t.Lit != s {
		return t, errf(t.Line, "expected %q, found %s", s, t)
	}
	return t, nil
}

func (p *Parser) isPunct(s string) bool {
	t := p.peek()
	return t.Kind == TokPunct && t.Lit == s
}

func (p *Parser) isKeyword(s string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Lit == s
}

// parseType parses a base type with optional * and restrict/const qualifiers.
func (p *Parser) parseType() (Type, bool, error) {
	restrict := false
	for p.isKeyword("const") {
		p.next()
	}
	t := p.next()
	if t.Kind != TokKeyword {
		return TypeVoid, false, errf(t.Line, "expected type, found %s", t)
	}
	var base Type
	switch t.Lit {
	case "void":
		base = TypeVoid
	case "int", "long":
		base = TypeInt
	case "float", "double":
		base = TypeFloat
	default:
		return TypeVoid, false, errf(t.Line, "expected type, found %q", t.Lit)
	}
	for {
		switch {
		case p.isPunct("*"):
			p.next()
			switch base {
			case TypeInt:
				base = TypeIntPtr
			case TypeFloat:
				base = TypeFloatPtr
			default:
				return TypeVoid, false, errf(t.Line, "cannot form pointer to %s", base)
			}
		case p.isKeyword("restrict"):
			p.next()
			restrict = true
		case p.isKeyword("const"):
			p.next()
		default:
			return base, restrict, nil
		}
	}
}

func (p *Parser) parsePragmas(fn *Function) error {
	for p.peek().Kind == TokPragma {
		t := p.next()
		fields := strings.Fields(t.Lit)
		if len(fields) == 0 {
			return errf(t.Line, "empty #pragma")
		}
		word := fields[0]
		// allow replicate(4) style
		if i := strings.IndexByte(word, '('); i >= 0 {
			rest := word[i:]
			word = word[:i]
			fields = append([]string{word, rest}, fields[1:]...)
		}
		switch word {
		case "phloem":
			fn.Pragmas.Phloem = true
		case "replicate":
			n := 0
			arg := strings.Join(fields[1:], "")
			arg = strings.Trim(arg, "()")
			if arg != "" {
				v, err := strconv.Atoi(arg)
				if err != nil {
					return errf(t.Line, "bad replicate count %q", arg)
				}
				n = v
			}
			if n <= 0 {
				return errf(t.Line, "#pragma replicate requires a positive count")
			}
			fn.Pragmas.Replicate = n
		case "distribute":
			fn.Pragmas.Distribute = true
		case "decouple":
			return errf(t.Line, "#pragma decouple must appear inside the function body")
		default:
			return errf(t.Line, "unknown #pragma %q", word)
		}
	}
	return nil
}

func (p *Parser) parseFunction() (*Function, error) {
	fn := &Function{}
	if err := p.parsePragmas(fn); err != nil {
		return nil, err
	}
	retType, _, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if retType != TypeVoid {
		return nil, errf(p.peek().Line, "kernel functions must return void")
	}
	name := p.next()
	if name.Kind != TokIdent {
		return nil, errf(name.Line, "expected function name, found %s", name)
	}
	fn.Name = name.Lit
	fn.Line = name.Line
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		pt, restrict, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn := p.next()
		if pn.Kind != TokIdent {
			return nil, errf(pn.Line, "expected parameter name, found %s", pn)
		}
		fn.Params = append(fn.Params, Param{Name: pn.Lit, Type: pt, Restrict: restrict, Line: pn.Line})
		if p.isPunct(",") {
			p.next()
		} else {
			break
		}
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.isPunct("}") {
		if p.peek().Kind == TokEOF {
			return nil, errf(p.peek().Line, "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.next() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == TokPragma:
		p.next()
		word := strings.Fields(t.Lit)
		if len(word) == 1 && word[0] == "decouple" {
			return &DecoupleStmt{Line: t.Line}, nil
		}
		return nil, errf(t.Line, "unexpected #pragma %q inside function body", t.Lit)
	case t.Kind == TokPunct && t.Lit == "{":
		return p.parseBlock()
	case t.Kind == TokPunct && t.Lit == ";":
		p.next()
		return nil, nil
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		return p.parseWhile()
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("swap"):
		return p.parseSwap()
	case p.isKeyword("barrier"):
		t := p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &BarrierStmt{Line: t.Line}, nil
	case p.isKeyword("return"):
		p.next()
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return nil, errf(t.Line, "early return is not supported in kernels")
	case p.isKeyword("int") || p.isKeyword("float") || p.isKeyword("long") ||
		p.isKeyword("double") || p.isKeyword("const"):
		return p.parseDecl()
	case p.isKeyword("break") || p.isKeyword("continue"):
		return nil, errf(t.Line, "%s is not supported; restructure the loop condition", t.Lit)
	default:
		return p.parseAssign()
	}
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	thn, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	var els *Block
	if p.isKeyword("else") {
		p.next()
		els, err = p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: thn, Else: els, Line: t.Line}, nil
}

// parseStmtAsBlock parses either a block or a single statement as a block.
func (p *Parser) parseStmtAsBlock() (*Block, error) {
	if p.isPunct("{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	b := &Block{}
	if s != nil {
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var init Stmt
	var err error
	if !p.isPunct(";") {
		if p.isKeyword("int") || p.isKeyword("float") || p.isKeyword("long") || p.isKeyword("double") {
			init, err = p.parseDeclNoSemi()
		} else {
			init, err = p.parseAssignNoSemi()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var cond Expr
	if !p.isPunct(";") {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var post *AssignStmt
	if !p.isPunct(")") {
		s, err := p.parseAssignNoSemi()
		if err != nil {
			return nil, err
		}
		post = s.(*AssignStmt)
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	if cond == nil {
		return nil, errf(t.Line, "for loops must have a condition")
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Line: t.Line}, nil
}

func (p *Parser) parseSwap() (Stmt, error) {
	t := p.next() // swap
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	a := p.next()
	if a.Kind != TokIdent {
		return nil, errf(a.Line, "swap expects an array name, found %s", a)
	}
	if _, err := p.expectPunct(","); err != nil {
		return nil, err
	}
	b := p.next()
	if b.Kind != TokIdent {
		return nil, errf(b.Line, "swap expects an array name, found %s", b)
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &SwapStmt{A: a.Lit, B: b.Lit, Line: t.Line}, nil
}

func (p *Parser) parseDecl() (Stmt, error) {
	s, err := p.parseDeclNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseDeclNoSemi() (Stmt, error) {
	ty, _, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name := p.next()
	if name.Kind != TokIdent {
		return nil, errf(name.Line, "expected variable name, found %s", name)
	}
	if ty.IsPtr() {
		return nil, errf(name.Line, "local pointer variables are not supported; use swap() for double buffering")
	}
	if _, err := p.expectPunct("="); err != nil {
		return nil, errf(name.Line, "declarations must have an initializer")
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Name: name.Lit, Type: ty, Init: init, Line: name.Line}, nil
}

func (p *Parser) parseAssign() (Stmt, error) {
	s, err := p.parseAssignNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseAssignNoSemi() (Stmt, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.next()
	if t.Kind != TokPunct {
		return nil, errf(t.Line, "expected assignment operator, found %s", t)
	}
	switch t.Lit {
	case "=", "+=", "-=", "*=", "/=":
	default:
		return nil, errf(t.Line, "expected assignment operator, found %q", t.Lit)
	}
	switch lhs.(type) {
	case *Ident, *Index:
	default:
		return nil, errf(t.Line, "assignment target must be a variable or array element")
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Target: lhs, Op: t.Lit, Value: rhs, Line: t.Line}, nil
}

// Expression parsing: precedence climbing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *Parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Lit]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Lit, L: lhs, R: rhs, Line: t.Line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokPunct {
		switch t.Lit {
		case "-", "!", "~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Lit, X: x, Line: t.Line}, nil
		case "(":
			// cast or parenthesized expression
			if p.peek2().Kind == TokKeyword {
				switch p.peek2().Lit {
				case "int", "long", "float", "double":
					p.next() // (
					ty, _, err := p.parseType()
					if err != nil {
						return nil, err
					}
					if ty.IsPtr() {
						return nil, errf(t.Line, "pointer casts are not supported")
					}
					if _, err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &Cast{To: ty, X: x, Line: t.Line}, nil
				}
			}
			p.next() // (
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokIntLit:
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, errf(t.Line, "bad integer literal %q", t.Lit)
		}
		return &IntLit{Val: v, Line: t.Line}, nil
	case TokFloatLit:
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, errf(t.Line, "bad float literal %q", t.Lit)
		}
		return &FloatLit{Val: v, Line: t.Line}, nil
	case TokIdent:
		// call?
		if p.isPunct("(") {
			p.next()
			var args []Expr
			for !p.isPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					p.next()
				} else {
					break
				}
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &Call{Name: t.Lit, Args: args, Line: t.Line}, nil
		}
		// index?
		if p.isPunct("[") {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if p.isPunct("[") {
				return nil, errf(t.Line, "multi-dimensional indexing is not supported; linearize the index")
			}
			return &Index{Array: t.Lit, Idx: idx, Line: t.Line}, nil
		}
		return &Ident{Name: t.Lit, Line: t.Line}, nil
	}
	return nil, errf(t.Line, "expected expression, found %s", t)
}
