package source

import (
	"strings"
	"testing"
)

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll(`int x = 42; // comment
/* block */ float y = 1.5e3; a <= b && c`)
	if err != nil {
		t.Fatal(err)
	}
	var lits []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			lits = append(lits, tk.Lit)
		}
	}
	want := []string{"int", "x", "=", "42", ";", "float", "y", "=", "1.5e3", ";",
		"a", "<=", "b", "&&", "c"}
	if strings.Join(lits, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", lits)
	}
}

func TestLexerPragma(t *testing.T) {
	toks, err := LexAll("#pragma phloem\nint x = 0;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPragma || toks[0].Lit != "phloem" {
		t.Errorf("pragma token: %+v", toks[0])
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := LexAll("int x = $;"); err == nil {
		t.Error("expected error for $")
	}
	if _, err := LexAll("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
	if _, err := LexAll("#define FOO 1"); err == nil {
		t.Error("expected error for unsupported directive")
	}
}

const goodKernel = `
#pragma phloem
void k(int* restrict a, float* restrict f, int n, float s) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int v = a[i];
    if (v > 0 && v < 100) {
      acc = acc + v;
    } else {
      acc = acc - 1;
    }
    f[i] = s * (float)v;
  }
  while (acc > 10) {
    acc = acc / 2;
  }
  a[0] = acc;
}
`

func TestParseAndCheckGoodKernel(t *testing.T) {
	fn, err := Parse(goodKernel)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Name != "k" || len(fn.Params) != 4 {
		t.Errorf("signature: %s %d params", fn.Name, len(fn.Params))
	}
	if !fn.Pragmas.Phloem {
		t.Error("missing phloem pragma")
	}
	if err := Check(fn); err != nil {
		t.Fatal(err)
	}
}

func TestParsePragmas(t *testing.T) {
	fn, err := Parse(`
#pragma phloem
#pragma replicate(4)
#pragma distribute
void k(int n) { int x = n; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if fn.Pragmas.Replicate != 4 || !fn.Pragmas.Distribute {
		t.Errorf("pragmas: %+v", fn.Pragmas)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"pointer rebinding", "void k(int* restrict a, int* restrict b) { a = b; }"},
		{"undefined var", "void k(int n) { int x = y; }"},
		{"type mix", "void k(int n, float f) { int x = n + f; }"},
		{"assign float to int", "void k(float f) { int x = f; }"},
		{"pointer arith", "void k(int* restrict a, int n) { int x = a + n; }"},
		{"redeclaration", "void k(int n) { int x = 1; int x = 2; }"},
		{"float condition", "void k(float f) { if (f) { int x = 0; } }"},
		{"unknown call", "void k(int n) { int x = foo(n); }"},
		{"break", "void k(int n) { while (n > 0) { break; } }"},
		{"swap type mismatch", "void k(int* restrict a, float* restrict f) { swap(a, f); }"},
	}
	for _, c := range cases {
		fn, err := Parse(c.src)
		if err == nil {
			err = Check(fn)
		}
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void k(int n) { for (;;) {} }",
		"void k(int n) { int x; }",                 // missing initializer
		"int k(int n) { }",                         // non-void return
		"void k(int n) { } void j(int n) { }",      // two functions
		"void k(int* restrict a) { a[0][1] = 1; }", // multi-dim
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestPrecedence(t *testing.T) {
	fn, err := Parse("void k(int a, int b, int c) { int x = a + b * c; }")
	if err != nil {
		t.Fatal(err)
	}
	decl := fn.Body.Stmts[0].(*DeclStmt)
	add := decl.Init.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top op %q", add.Op)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Error("* should bind tighter than +")
	}
}
