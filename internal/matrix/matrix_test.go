package matrix

import (
	"testing"
	"testing/quick"
)

func wellFormed(m *CSR) bool {
	if m.Rows[0] != 0 || m.Rows[m.N] != int64(len(m.Cols)) || len(m.Cols) != len(m.Vals) {
		return false
	}
	for i := 0; i < m.N; i++ {
		if m.Rows[i] > m.Rows[i+1] {
			return false
		}
		prev := int64(-1)
		for k := m.Rows[i]; k < m.Rows[i+1]; k++ {
			c := m.Cols[k]
			if c < 0 || c >= int64(m.N) || c <= prev {
				return false
			}
			prev = c
		}
	}
	return true
}

func TestGeneratorsWellFormed(t *testing.T) {
	ms := []*CSR{
		Banded("b", 100, 8, 10, 1),
		Scattered("s", 120, 4, 2),
		PowerLawRows("p", 150, 3, 3),
	}
	for _, m := range ms {
		if !wellFormed(m) {
			t.Errorf("%s malformed", m.Name)
		}
		if m.NNZ() == 0 {
			t.Errorf("%s empty", m.Name)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint8) bool {
		m := Scattered("m", 40, 3, int64(seed))
		tt := m.Transpose("t").Transpose("tt")
		if m.NNZ() != tt.NNZ() {
			return false
		}
		for i := range m.Cols {
			if m.Cols[i] != tt.Cols[i] || m.Vals[i] != tt.Vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTransposeEntryMapping(t *testing.T) {
	m := Banded("b", 30, 4, 5, 9)
	tr := m.Transpose("t")
	if !wellFormed(tr) {
		t.Fatal("transpose malformed")
	}
	// Every (i, j, v) in m must appear as (j, i, v) in tr.
	lookup := func(mm *CSR, i, j int64) (float64, bool) {
		for k := mm.Rows[i]; k < mm.Rows[i+1]; k++ {
			if mm.Cols[k] == j {
				return mm.Vals[k], true
			}
		}
		return 0, false
	}
	for i := 0; i < m.N; i++ {
		for k := m.Rows[i]; k < m.Rows[i+1]; k++ {
			v, ok := lookup(tr, m.Cols[k], int64(i))
			if !ok || v != m.Vals[k] {
				t.Fatalf("entry (%d,%d) missing or wrong in transpose", i, m.Cols[k])
			}
		}
	}
}

func TestInputSuites(t *testing.T) {
	suite := append(SpMMTrainingInputs(), SpMMTestInputs()...)
	suite = append(suite, TacoTestInputs()...)
	for _, in := range suite {
		if !wellFormed(in.M) {
			t.Errorf("%s malformed", in.M.Name)
		}
	}
}
