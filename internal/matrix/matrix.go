// Package matrix provides CSR sparse matrices and deterministic synthetic
// generators standing in for the paper's SuiteSparse inputs (Table V). The
// generators target the statistic that drives the evaluation: average
// non-zeros per row, with banded (FEM-like) and scattered structures.
package matrix

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
type CSR struct {
	Name string
	N    int     // rows == cols (all Table V matrices are square)
	Rows []int64 // length N+1
	Cols []int64
	Vals []float64
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Cols) }

// AvgNNZPerRow returns the average non-zeros per row.
func (m *CSR) AvgNNZPerRow() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.N)
}

func (m *CSR) String() string {
	return fmt.Sprintf("%s: %dx%d, %d nnz, %.1f nnz/row", m.Name, m.N, m.N, m.NNZ(), m.AvgNNZPerRow())
}

// rowBuilder accumulates (col, val) pairs per row.
type rowBuilder struct {
	cols map[int64]float64
}

// Build assembles a CSR from per-row maps.
func build(name string, n int, rows []rowBuilder) *CSR {
	m := &CSR{Name: name, N: n, Rows: make([]int64, n+1)}
	for i := 0; i < n; i++ {
		keys := make([]int64, 0, len(rows[i].cols))
		for c := range rows[i].cols {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, c := range keys {
			m.Cols = append(m.Cols, c)
			m.Vals = append(m.Vals, rows[i].cols[c])
		}
		m.Rows[i+1] = int64(len(m.Cols))
	}
	return m
}

func newRows(n int) []rowBuilder {
	rows := make([]rowBuilder, n)
	for i := range rows {
		rows[i] = rowBuilder{cols: map[int64]float64{}}
	}
	return rows
}

// Banded generates an FEM-like banded matrix: each row has ~nnzPerRow
// entries clustered within a band around the diagonal (pwtk/cant-like
// structure: high nnz/row, strong locality).
func Banded(name string, n, nnzPerRow, bandwidth int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	rows := newRows(n)
	for i := 0; i < n; i++ {
		rows[i].cols[int64(i)] = rng.NormFloat64() + 4
		for k := 1; k < nnzPerRow; k++ {
			off := rng.Intn(2*bandwidth+1) - bandwidth
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			rows[i].cols[int64(j)] = rng.NormFloat64()
		}
	}
	return build(name, n, rows)
}

// Scattered generates a graph-like matrix with uniformly scattered entries
// (p2p/amazon-like structure: low nnz/row, poor locality).
func Scattered(name string, n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	rows := newRows(n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(2*nnzPerRow)
		for j := 0; j < k; j++ {
			rows[i].cols[int64(rng.Intn(n))] = rng.NormFloat64()
		}
	}
	return build(name, n, rows)
}

// PowerLawRows generates a matrix whose row lengths follow a heavy tail
// (wiki/enron-like structure).
func PowerLawRows(name string, n, avgNNZ int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	rows := newRows(n)
	for i := 0; i < n; i++ {
		// Pareto-ish: most rows short, few very long.
		k := 1
		for rng.Float64() < 0.65 && k < 40*avgNNZ {
			k += avgNNZ
		}
		for j := 0; j < k; j++ {
			rows[i].cols[int64(rng.Intn(n))] = rng.NormFloat64()
		}
	}
	return build(name, n, rows)
}

// Transpose returns the transpose as a new CSR (used to build CSC views for
// the SpMM inner-product dataflow).
func (m *CSR) Transpose(name string) *CSR {
	rows := newRows(m.N)
	for i := 0; i < m.N; i++ {
		for k := m.Rows[i]; k < m.Rows[i+1]; k++ {
			rows[m.Cols[k]].cols[int64(i)] = m.Vals[k]
		}
	}
	return build(name, m.N, rows)
}

// Input describes one named benchmark input (Table V rows).
type Input struct {
	Domain string
	M      *CSR
}

// SpMMTrainingInputs mirrors the SpMM training rows of Table V.
func SpMMTrainingInputs() []Input {
	return []Input{
		{Domain: "Training graph as matrix 1", M: PowerLawRows("enron", 900, 3, 31)},
		{Domain: "Training graph as matrix 2", M: PowerLawRows("wiki-vote", 700, 4, 32)},
	}
}

// SpMMTestInputs mirrors the SpMM test rows of Table V (sorted by nnz/row).
func SpMMTestInputs() []Input {
	return []Input{
		{Domain: "File sharing", M: Scattered("p2p-gnutella", 2200, 1, 41)},
		{Domain: "Graph as matrix", M: Scattered("amazon", 2000, 4, 42)},
		{Domain: "Gel electrophoresis", M: Banded("cage", 1600, 8, 40, 43)},
		{Domain: "Electromagnetics", M: Banded("2cubes", 1500, 8, 400, 44)},
		{Domain: "Fluid dynamics", M: Banded("rma10", 900, 25, 60, 45)},
	}
}

// TacoTestInputs mirrors the Taco benchmark rows of Table V.
func TacoTestInputs() []Input {
	return []Input{
		{Domain: "Circuit simulation", M: Scattered("scircuit", 4000, 3, 51)},
		{Domain: "Economics", M: Scattered("mac-econ", 3600, 3, 52)},
		{Domain: "Particle physics", M: Banded("cop20k", 2400, 11, 500, 53)},
		{Domain: "Structural", M: Banded("pwtk", 2000, 26, 100, 54)},
		{Domain: "Cantilever", M: Banded("cant", 1200, 32, 80, 55)},
	}
}
