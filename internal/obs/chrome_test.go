package obs_test

// Chrome search-trace export tests, mirroring the sim-level trace checks in
// internal/telemetry/telemetry_test.go: the JSON must be loadable, every
// span must live on a named worker track, candidate spans must contain their
// phase sub-spans, and — the acceptance criterion — per-phase span totals in
// the trace must reconcile exactly with the Metrics per-phase aggregates.

import (
	"bytes"
	"encoding/json"
	"testing"

	"phloem/internal/core"
	"phloem/internal/obs"
	"phloem/internal/workloads"
)

type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   int64          `json:"ts"`
		Dur  *int64         `json:"dur"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]any `json:"otherData"`
}

func collectAutotune(t *testing.T, par int) *obs.Collector {
	t.Helper()
	col := obs.NewCollector()
	opt := autotuneOpts(par)
	opt.Observer = col
	if _, err := core.CompileSource(workloads.BFSSource, opt); err != nil {
		t.Fatal(err)
	}
	return col
}

func decodeTrace(t *testing.T, col *obs.Collector) *traceFile {
	t.Helper()
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return &tf
}

func TestChromeSearchTraceWellFormed(t *testing.T) {
	col := collectAutotune(t, 4)
	tf := decodeTrace(t, col)
	if len(tf.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	if tf.OtherData["mode"] != "autotune" {
		t.Errorf("otherData.mode = %v, want autotune", tf.OtherData["mode"])
	}

	named := map[int]bool{} // tids with thread_name metadata
	type span struct{ ts, end int64 }
	cands := map[[2]any]span{} // (tid, seq) -> candidate enclosing span
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[e.Tid] = true
			}
			continue
		case "X":
			if e.Dur == nil {
				t.Fatalf("X event %q has no dur", e.Name)
			}
			if *e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("X event %q: negative ts/dur (%d, %d)", e.Name, e.Ts, *e.Dur)
			}
		case "i":
		default:
			t.Fatalf("unexpected phase %q on %q", e.Ph, e.Name)
		}
		if e.Pid != 1 {
			t.Errorf("event %q on pid %d, want 1", e.Name, e.Pid)
		}
		if !named[e.Tid] {
			t.Errorf("event %q on unnamed track tid %d", e.Name, e.Tid)
		}
		if e.Cat == "candidate" {
			if e.Args["fp"] == "" || e.Args["fp"] == nil {
				t.Errorf("candidate span %q missing fp arg", e.Name)
			}
			cands[[2]any{e.Tid, e.Args["seq"]}] = span{e.Ts, e.Ts + *e.Dur}
		}
	}

	// Every candidate-attributed phase sub-span is contained in its
	// candidate's enclosing span on the same track.
	subs := 0
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" || e.Cat != "phase" || e.Args["seq"] == nil {
			continue
		}
		subs++
		c, ok := cands[[2]any{e.Tid, e.Args["seq"]}]
		if !ok {
			t.Errorf("phase span %q (seq %v, tid %d) has no enclosing candidate span", e.Name, e.Args["seq"], e.Tid)
			continue
		}
		if e.Ts < c.ts || e.Ts+*e.Dur > c.end {
			t.Errorf("phase span %q [%d,%d] escapes candidate span [%d,%d]",
				e.Name, e.Ts, e.Ts+*e.Dur, c.ts, c.end)
		}
	}
	if len(cands) == 0 || subs == 0 {
		t.Fatalf("trace has %d candidate spans and %d phase sub-spans; want both > 0", len(cands), subs)
	}
}

// TestTraceMetricsReconcile is the acceptance criterion: summing the trace's
// per-phase span durations reproduces the Metrics per-phase micros exactly.
func TestTraceMetricsReconcile(t *testing.T) {
	col := collectAutotune(t, 4)
	tf := decodeTrace(t, col)
	m := col.Metrics()

	traced := map[string]struct {
		count int
		total int64
	}{}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" || e.Cat != "phase" {
			continue
		}
		agg := traced[e.Name]
		agg.count++
		agg.total += *e.Dur
		traced[e.Name] = agg
	}
	if len(m.Phases) == 0 {
		t.Fatal("no phase aggregates")
	}
	for _, p := range m.Phases {
		got := traced[p.Name]
		if got.count != p.Count {
			t.Errorf("phase %s: %d trace spans, metrics count %d", p.Name, got.count, p.Count)
		}
		if got.total != p.TotalMicros {
			t.Errorf("phase %s: trace dur total %d micros, metrics total %d", p.Name, got.total, p.TotalMicros)
		}
		delete(traced, p.Name)
	}
	for name := range traced {
		t.Errorf("trace has phase spans %q with no metrics aggregate", name)
	}
}
