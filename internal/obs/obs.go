// Package obs is the standard observer toolkit over core.Options.Observer:
// a Collector recording the full search-lifecycle event stream for metrics
// aggregation and Chrome trace export, a Progress writer rendering live
// search status to a terminal, and a Tee multiplexing several observers.
//
// Everything here is strictly additive: observers receive copies of search
// state through core.SearchEvent and can never change the search's winner,
// counters, skips, SearchPoints, or journal bytes. With no observer
// installed, core takes no timestamps at all (the nil-probe contract of
// sim.Probe, pinned by TestObserverNilBitIdentity).
package obs

import (
	"sync"

	"phloem/internal/core"
)

// Collector records every search-lifecycle event it observes. It is safe for
// concurrent use (worker spans arrive from pool goroutines when
// core.Options.Parallelism > 1) and never blocks beyond a short mutex hold.
//
// A Collector observes exactly one Compile/Search call; aggregate with
// Metrics, export with WriteChromeTrace, or inspect the raw stream with
// Events.
type Collector struct {
	mu     sync.Mutex
	events []core.SearchEvent
}

// NewCollector returns an empty Collector ready to install on
// core.Options.Observer.
func NewCollector() *Collector {
	return &Collector{}
}

// Observe implements core.Observer.
func (c *Collector) Observe(e core.SearchEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded stream in arrival order. At
// Parallelism 1 the order is canonical (one emitting goroutine); above that,
// worker spans interleave nondeterministically but merger verdicts are still
// in enumeration order relative to each other.
func (c *Collector) Events() []core.SearchEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]core.SearchEvent(nil), c.events...)
}

// Len reports the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Metrics aggregates the recorded stream (see Aggregate).
func (c *Collector) Metrics() *Metrics {
	return Aggregate(c.Events())
}

// Tee multiplexes one event stream to several observers, in order. A nil
// entry is skipped.
type Tee []core.Observer

// Observe implements core.Observer.
func (t Tee) Observe(e core.SearchEvent) {
	for _, o := range t {
		if o != nil {
			o.Observe(e)
		}
	}
}
