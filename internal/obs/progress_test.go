package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"phloem/internal/core"
	"phloem/internal/obs"
	"phloem/internal/workloads"
)

// TestProgressFixture drives Progress with the synthetic stream and checks
// the rendered lines: baseline, counters, final summary. Event offsets drive
// the clock, so the output is deterministic.
func TestProgressFixture(t *testing.T) {
	var buf bytes.Buffer
	p := obs.NewProgress(&buf)
	for _, e := range fixtureEvents() {
		p.Observe(e)
	}
	out := buf.String()
	for _, want := range []string{
		"autotune: serial baseline 120000 cycles",
		"2/2 measured", // accept + budget skip; dedup and prune excluded
		"1 deduped",
		"1 pruned",
		"best 95000 cycles",
		"done —",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "checkpoint journal") {
		t.Errorf("no replays in fixture, but output mentions the journal:\n%s", out)
	}
}

// TestProgressReplaySummary: a replayed serial baseline and a non-zero
// journal count on search-end surface the checkpoint summary lines.
func TestProgressReplaySummary(t *testing.T) {
	var buf bytes.Buffer
	p := obs.NewProgress(&buf)
	events := []core.SearchEvent{
		{Kind: core.EvSearchStart, Seq: -1, Phase: -1, Mode: "autotune"},
		{Kind: core.EvSerial, Seq: -1, Phase: -1, Cycles: 1000, Replayed: true},
		{Kind: core.EvEnumerated, Seq: 0, Phase: -1, FP: "|1,"},
		{Kind: core.EvReplay, Seq: 0, Phase: -1, FP: "|1,", Cycles: 900, Replayed: true},
		{Kind: core.EvAccept, Seq: 0, Phase: -1, FP: "|1,", Cycles: 900, Replayed: true,
			Start: 5 * time.Millisecond, End: 5 * time.Millisecond},
		{Kind: core.EvSearchEnd, Seq: -1, Phase: -1, Mode: "autotune", Cycles: 900, N: 2,
			Start: 6 * time.Millisecond, End: 6 * time.Millisecond},
	}
	for _, e := range events {
		p.Observe(e)
	}
	out := buf.String()
	for _, want := range []string{
		"replayed from checkpoint",
		"replayed 2 measurement(s) from the checkpoint journal",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

// TestProgressLiveAutotune smoke-tests Progress against a real search teed
// with a Collector, asserting the final line agrees with the aggregate.
func TestProgressLiveAutotune(t *testing.T) {
	var buf bytes.Buffer
	col := obs.NewCollector()
	opt := autotuneOpts(1)
	opt.Observer = obs.Tee{obs.NewProgress(&buf), col}
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := col.Metrics()
	if !strings.Contains(buf.String(), "done —") {
		t.Errorf("no final summary in progress output:\n%s", buf.String())
	}
	if m.BestCycles != res.TrainCycles {
		t.Errorf("aggregate best %d, result %d", m.BestCycles, res.TrainCycles)
	}
	if m.Enumerated != res.Enumerated || m.Deduped != res.Deduped || m.Pruned != res.Pruned {
		t.Errorf("aggregate counters (%d,%d,%d) disagree with Result (%d,%d,%d)",
			m.Enumerated, m.Deduped, m.Pruned, res.Enumerated, res.Deduped, res.Pruned)
	}
}
