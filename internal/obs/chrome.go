package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"phloem/internal/core"
)

// chromeEvent is one entry of the Chrome trace_event format (same "JSON
// array format" internal/telemetry writes for sim-level traces). Ts/Dur are
// wall-clock microseconds from the search's EvSearchStart anchor. Dur is
// deliberately not omitempty: sub-microsecond spans keep an explicit dur of
// 0 so per-phase dur sums reconcile exactly with Metrics.Phases.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// searchPid is the single process every search track lives under.
const searchPid = 1

// WriteChromeTrace writes the recorded search as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto: one thread track per search
// worker (worker 0 is the merger/serial goroutine), one enclosing span per
// candidate visit nested with its phase sub-spans (build/commopt/verify/
// train), the serial-baseline and rank-phase spans, and the merger's verdict
// instants in enumeration order. Every candidate event carries its
// fingerprint in args.fp — the same key `phloemsim -chrome-trace` stamps
// into a candidate's sim-level trace via telemetry.Collector.SetMeta, so the
// two traces can be joined per candidate.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	events := c.Events()
	m := Aggregate(events)
	tr := chromeTrace{OtherData: map[string]any{
		"mode":       m.Mode,
		"enumerated": m.Enumerated,
		"unique":     m.Unique,
		"bestCycles": m.BestCycles,
		"replayed":   m.ReplayedTotal,
	}}
	ev := func(e chromeEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }

	ev(chromeEvent{Name: "process_name", Ph: "M", Pid: searchPid,
		Args: map[string]any{"name": fmt.Sprintf("search (%s)", m.Mode)}})
	for wkr := 0; wkr < m.Workers; wkr++ {
		name := fmt.Sprintf("worker %d", wkr)
		if wkr == 0 {
			name = "worker 0 (merger)"
		}
		ev(chromeEvent{Name: "thread_name", Ph: "M", Pid: searchPid, Tid: wkr + 1,
			Args: map[string]any{"name": name}})
	}

	// Enclosing candidate spans: one per (candidate, worker) visit, covering
	// that visit's phase sub-spans (rank-phase builds land on worker 0, the
	// measurement on whichever worker drew the task).
	type visitKey struct{ seq, worker int }
	type visit struct {
		first, last int // indices into events bounding the visit's spans
		start, end  int64
	}
	visits := map[visitKey]*visit{}
	var visitOrder []visitKey
	for i := range events {
		e := &events[i]
		if e.Seq < 0 || !phaseSpan(e) {
			continue
		}
		k := visitKey{e.Seq, e.Worker}
		v := visits[k]
		if v == nil {
			v = &visit{first: i, start: e.Start.Microseconds()}
			visits[k] = v
			visitOrder = append(visitOrder, k)
		}
		if s := e.Start.Microseconds(); s < v.start {
			v.start = s
		}
		if end := e.End.Microseconds(); end > v.end {
			v.end = end
		}
		v.last = i
	}
	sort.Slice(visitOrder, func(i, j int) bool {
		a, b := visits[visitOrder[i]], visits[visitOrder[j]]
		if a.start != b.start {
			return a.start < b.start
		}
		return visitOrder[i].seq < visitOrder[j].seq
	})
	for _, k := range visitOrder {
		v := visits[k]
		e := &events[v.first]
		dur := v.end - v.start
		ev(chromeEvent{Name: candName(e), Ph: "X", Cat: "candidate",
			Pid: searchPid, Tid: k.worker + 1, Ts: v.start, Dur: &dur,
			Args: candArgs(e)})
	}

	// Phase sub-spans and search-level spans.
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case core.EvSerial, core.EvRank, core.EvBuild, core.EvCommOpt,
			core.EvVerify, core.EvTrain:
			if !phaseSpan(e) {
				// A journal-replayed serial baseline is an instant, not a span.
				ev(chromeEvent{Name: "serial (replayed)", Ph: "i", S: "t",
					Cat: "search", Pid: searchPid, Tid: e.Worker + 1,
					Ts:   e.Start.Microseconds(),
					Args: map[string]any{"cycles": e.Cycles}})
				continue
			}
			dur := spanMicros(e)
			ce := chromeEvent{Name: e.Kind.String(), Ph: "X", Cat: "phase",
				Pid: searchPid, Tid: e.Worker + 1, Ts: e.Start.Microseconds(), Dur: &dur}
			if e.Seq >= 0 {
				ce.Args = candArgs(e)
			}
			if e.Kind == core.EvTrain {
				if ce.Args == nil {
					ce.Args = map[string]any{}
				}
				ce.Args["cycles"] = e.Cycles
			}
			ev(ce)
		case core.EvSearchStart, core.EvSearchEnd, core.EvReplay,
			core.EvDeduped, core.EvPruned, core.EvAccept, core.EvSkip, core.EvCancel:
			ce := chromeEvent{Name: e.Kind.String(), Ph: "i", S: "t", Cat: "verdict",
				Pid: searchPid, Tid: e.Worker + 1, Ts: e.Start.Microseconds()}
			switch e.Kind {
			case core.EvSearchStart, core.EvSearchEnd:
				ce.Cat = "search"
			default:
				ce.Args = candArgs(e)
				if e.Kind == core.EvAccept || e.Kind == core.EvReplay {
					ce.Args["cycles"] = e.Cycles
				}
				if e.Skip != nil {
					ce.Args["reason"] = e.Skip.Reason.String()
				}
			}
			ev(ce)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// candName labels a candidate's enclosing span.
func candName(e *core.SearchEvent) string {
	if e.Phase < 0 {
		return fmt.Sprintf("cand %d static", e.Seq)
	}
	return fmt.Sprintf("cand %d %v", e.Seq, e.Subset)
}

// candArgs is the candidate identity attached to its trace events; fp links
// to the candidate's sim-level telemetry trace.
func candArgs(e *core.SearchEvent) map[string]any {
	return map[string]any{
		"seq":   e.Seq,
		"phase": e.Phase,
		"fp":    e.FP,
	}
}
