package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"phloem/internal/core"
)

// Progress renders live search status to a terminal writer (one
// carriage-return-rewritten line, finalized with a summary on EvSearchEnd).
// The denominator is the number of candidates the search will actually
// measure — unique configurations minus the cost model's TopK prunes — so
// the ETA is honest about work the rank phase already discarded. Elapsed
// time and the ETA derive from event offsets (the search's own monotonic
// clock); Progress itself never reads a clock.
//
// Safe for concurrent use; install directly or Tee it with a Collector.
type Progress struct {
	mu   sync.Mutex
	w    io.Writer
	mode string

	enumerated, unique int
	deduped, pruned    int
	measured, denom    int
	replays            int
	best               uint64
	serial             uint64

	ranked   bool // rank phase done: denom is final
	lastLine time.Duration
	width    int // widest line written, for clean rewrites
	done     bool
}

// NewProgress returns a Progress writing to w (typically os.Stderr).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

// minRedraw throttles line rewrites to one per 50ms of search time.
const minRedraw = 50 * time.Millisecond

// Observe implements core.Observer.
func (p *Progress) Observe(e core.SearchEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case core.EvSearchStart:
		p.mode = e.Mode
	case core.EvSerial:
		p.serial = e.Cycles
		if e.Replayed {
			fmt.Fprintf(p.w, "%s: serial baseline %d cycles (replayed from checkpoint)\n",
				p.mode, e.Cycles)
		} else {
			fmt.Fprintf(p.w, "%s: serial baseline %d cycles\n", p.mode, e.Cycles)
		}
	case core.EvEnumerated:
		p.enumerated++
		if !e.Dup {
			p.unique++
		}
		p.denom = p.unique
	case core.EvRank:
		p.ranked = true
		p.denom = p.unique - e.N
	case core.EvReplay:
		p.replays++
	case core.EvDeduped:
		p.deduped++
	case core.EvPruned:
		p.pruned++
		if !p.ranked {
			p.denom--
		}
	case core.EvAccept:
		p.measured++
		if p.best == 0 || e.Cycles < p.best {
			p.best = e.Cycles
		}
		p.redraw(e.End, false)
	case core.EvSkip, core.EvCancel:
		p.measured++
		p.redraw(e.End, false)
	case core.EvSearchEnd:
		p.finish(e)
	}
}

// redraw rewrites the status line in place (throttled unless forced).
func (p *Progress) redraw(at time.Duration, force bool) {
	if p.done || (!force && at-p.lastLine < minRedraw && p.measured < p.denom) {
		return
	}
	p.lastLine = at
	line := fmt.Sprintf("%s: %d/%d measured", p.mode, p.measured, p.denom)
	if p.deduped > 0 {
		line += fmt.Sprintf(", %d deduped", p.deduped)
	}
	if p.pruned > 0 {
		line += fmt.Sprintf(", %d pruned", p.pruned)
	}
	if p.replays > 0 {
		line += fmt.Sprintf(", %d replayed", p.replays)
	}
	if p.best > 0 {
		line += fmt.Sprintf(", best %d cycles", p.best)
	}
	if eta := p.eta(at); eta >= 0 {
		line += fmt.Sprintf(", ETA %s", eta.Round(100*time.Millisecond))
	}
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%*s", line, pad, "")
}

// eta extrapolates remaining wall time from measured candidates so far
// (-1: not enough signal yet).
func (p *Progress) eta(at time.Duration) time.Duration {
	if p.measured == 0 || p.measured >= p.denom || at <= 0 {
		return -1
	}
	per := at / time.Duration(p.measured)
	return per * time.Duration(p.denom-p.measured)
}

// finish completes the status line with the search's outcome.
func (p *Progress) finish(e core.SearchEvent) {
	if p.done {
		return
	}
	p.done = true
	p.redrawFinal(e)
}

func (p *Progress) redrawFinal(e core.SearchEvent) {
	line := fmt.Sprintf("%s: done — %d/%d measured, %d deduped, %d pruned, best %d cycles in %s",
		p.mode, p.measured, p.denom, p.deduped, p.pruned, e.Cycles,
		e.End.Round(time.Millisecond))
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(p.w, "\r%s%*s\n", line, pad, "")
	if e.N > 0 {
		fmt.Fprintf(p.w, "%s: replayed %d measurement(s) from the checkpoint journal\n",
			p.mode, e.N)
	}
}
