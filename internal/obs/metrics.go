package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"phloem/internal/core"
)

// histBuckets is the per-phase wall-millis histogram width: bucket 0 counts
// spans under 1ms, bucket i spans in [2^(i-1), 2^i) ms, and the last bucket
// is the >= 2^(histBuckets-2) ms overflow.
const histBuckets = 12

// PhaseMetrics aggregates every span of one event kind. Durations are kept
// in integer microseconds — the same unit (and the same per-span rounding)
// the Chrome trace export writes — so trace span totals reconcile exactly
// with these aggregates (pinned by TestTraceMetricsReconcile).
type PhaseMetrics struct {
	Name        string `json:"name"`
	Count       int    `json:"count"`
	TotalMicros int64  `json:"total_micros"`
	MinMicros   int64  `json:"min_micros"`
	MaxMicros   int64  `json:"max_micros"`
	// Hist is the log2-millis histogram of span durations (see histBuckets).
	Hist [histBuckets]int `json:"hist_log2ms"`
}

func (p *PhaseMetrics) add(micros int64) {
	if p.Count == 0 || micros < p.MinMicros {
		p.MinMicros = micros
	}
	if micros > p.MaxMicros {
		p.MaxMicros = micros
	}
	p.Count++
	p.TotalMicros += micros
	b := 0
	for ms := micros / 1000; ms > 0 && b < histBuckets-1; ms >>= 1 {
		b++
	}
	p.Hist[b]++
}

// histLabel names one histogram bucket.
func histLabel(i int) string {
	switch {
	case i == 0:
		return "<1ms"
	case i == histBuckets-1:
		return fmt.Sprintf(">=%dms", 1<<(histBuckets-2))
	default:
		return fmt.Sprintf("%d-%dms", 1<<(i-1), 1<<i)
	}
}

// Metrics is the aggregate view of one search's event stream: lifecycle
// counters, dedup/prune rates, per-phase wall-time aggregates, and simulator
// throughput. Wall-time fields vary run to run; everything else is
// deterministic for a fixed search.
type Metrics struct {
	// Mode is "autotune", "search", or "static" (from EvSearchStart).
	Mode string `json:"mode"`
	// Lifecycle counters (verdict events are counted once per candidate).
	Enumerated int `json:"enumerated"`
	Unique     int `json:"unique"`
	Deduped    int `json:"deduped"`
	Pruned     int `json:"pruned"`
	Accepted   int `json:"accepted"`
	Skipped    int `json:"skipped"`
	Cancelled  int `json:"cancelled"`
	// Trained counts training measurements actually simulated (EvTrain
	// spans, including bound-exact re-measurements); Replays counts verdicts
	// restored from the checkpoint journal instead (EvReplay), and
	// ReplayedTotal the journal's own count from EvSearchEnd (serial
	// baseline included).
	Trained       int `json:"trained"`
	Replays       int `json:"replays"`
	ReplayedTotal int `json:"replayed_total"`
	// DedupRate is Deduped/Enumerated; PruneRate is Pruned/Unique.
	DedupRate float64 `json:"dedup_rate"`
	PruneRate float64 `json:"prune_rate"`
	// SerialCycles and BestCycles are the baseline and winning training
	// totals (BestCycles 0 when nothing was measured).
	SerialCycles uint64 `json:"serial_cycles"`
	BestCycles   uint64 `json:"best_cycles"`
	// Workers is the highest worker ID seen plus one (1 = fully serial).
	Workers int `json:"workers"`
	// TotalMicros spans EvSearchStart to the last event's End offset.
	TotalMicros int64 `json:"total_micros"`
	// TrainCycles sums every EvTrain span's simulated cycles (partial counts
	// from aborted measurements included); CyclesPerMs is that total divided
	// by the train phase's wall-millis — the simulator throughput the search
	// sustained.
	TrainCycles uint64  `json:"train_cycles"`
	CyclesPerMs float64 `json:"cycles_per_ms"`
	// Phases aggregates span events in a fixed order: serial, rank, build,
	// commopt, verify, train (kinds with no spans are omitted).
	Phases []PhaseMetrics `json:"phases"`
}

// phaseOrder fixes the Phases rendering order.
var phaseOrder = []core.EventKind{
	core.EvSerial, core.EvRank, core.EvBuild, core.EvCommOpt, core.EvVerify, core.EvTrain,
}

// Aggregate folds an event stream into Metrics. The stream may come from a
// live Collector or a synthetic fixture; order only matters for Mode and
// TotalMicros (first EvSearchStart / maximum End win).
func Aggregate(events []core.SearchEvent) *Metrics {
	m := &Metrics{}
	phases := map[core.EventKind]*PhaseMetrics{}
	for i := range events {
		e := &events[i]
		if phaseSpan(e) {
			p := phases[e.Kind]
			if p == nil {
				p = &PhaseMetrics{Name: e.Kind.String()}
				phases[e.Kind] = p
			}
			p.add(spanMicros(e))
		}
		if micros := e.End.Microseconds(); micros > m.TotalMicros {
			m.TotalMicros = micros
		}
		if e.Worker+1 > m.Workers {
			m.Workers = e.Worker + 1
		}
		switch e.Kind {
		case core.EvSearchStart:
			if m.Mode == "" {
				m.Mode = e.Mode
			}
		case core.EvSearchEnd:
			m.BestCycles = e.Cycles
			m.ReplayedTotal = e.N
		case core.EvSerial:
			m.SerialCycles = e.Cycles
		case core.EvEnumerated:
			m.Enumerated++
			if !e.Dup {
				m.Unique++
			}
		case core.EvDeduped:
			m.Deduped++
		case core.EvPruned:
			m.Pruned++
		case core.EvAccept:
			m.Accepted++
		case core.EvSkip:
			m.Skipped++
		case core.EvCancel:
			m.Cancelled++
		case core.EvTrain:
			m.Trained++
			m.TrainCycles += e.Cycles
		case core.EvReplay:
			m.Replays++
		}
	}
	if m.Enumerated > 0 {
		m.DedupRate = float64(m.Deduped) / float64(m.Enumerated)
	}
	if m.Unique > 0 {
		m.PruneRate = float64(m.Pruned) / float64(m.Unique)
	}
	for _, k := range phaseOrder {
		if p := phases[k]; p != nil {
			m.Phases = append(m.Phases, *p)
		}
	}
	if p := phases[core.EvTrain]; p != nil && p.TotalMicros > 0 {
		m.CyclesPerMs = float64(m.TrainCycles) / (float64(p.TotalMicros) / 1000)
	}
	return m
}

// spanMicros is the canonical span-duration rounding shared by Metrics and
// the Chrome trace export: integer microseconds, truncated.
func spanMicros(e *core.SearchEvent) int64 {
	return (e.End - e.Start).Microseconds()
}

// phaseSpan reports whether e folds into the per-phase wall-time aggregates.
// The predicate is shared with the Chrome trace export so trace span totals
// reconcile exactly with Metrics.Phases: every phase-span kind counts — even
// a sub-microsecond one — except a journal-replayed serial baseline, which
// is an instant, not a measurement.
func phaseSpan(e *core.SearchEvent) bool {
	switch e.Kind {
	case core.EvSerial, core.EvRank, core.EvBuild, core.EvCommOpt,
		core.EvVerify, core.EvTrain:
		return !(e.Kind == core.EvSerial && e.Replayed)
	}
	return false
}

// String renders the metrics as a deterministic text table (deterministic
// given the stream: wall-time columns vary run to run, counters never do).
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "search metrics (%s)\n", m.Mode)
	fmt.Fprintf(&b, "  candidates: %d enumerated, %d unique, %d deduped (%.1f%%), %d pruned (%.1f%%)\n",
		m.Enumerated, m.Unique, m.Deduped, 100*m.DedupRate, m.Pruned, 100*m.PruneRate)
	fmt.Fprintf(&b, "  verdicts:   %d accepted, %d skipped, %d cancelled; %d trained, %d replayed (journal total %d)\n",
		m.Accepted, m.Skipped, m.Cancelled, m.Trained, m.Replays, m.ReplayedTotal)
	fmt.Fprintf(&b, "  cycles:     serial %d, best %d", m.SerialCycles, m.BestCycles)
	if m.CyclesPerMs > 0 {
		fmt.Fprintf(&b, "; sim throughput %.0f cycles/ms", m.CyclesPerMs)
	}
	fmt.Fprintf(&b, "\n  wall:       %.1fms total, %d worker(s)\n",
		float64(m.TotalMicros)/1000, m.Workers)
	if len(m.Phases) > 0 {
		fmt.Fprintf(&b, "  %-8s %7s %10s %9s %9s  %s\n",
			"phase", "count", "total-ms", "min-ms", "max-ms", "hist")
		for i := range m.Phases {
			p := &m.Phases[i]
			fmt.Fprintf(&b, "  %-8s %7d %10.1f %9.1f %9.1f  %s\n",
				p.Name, p.Count, float64(p.TotalMicros)/1000,
				float64(p.MinMicros)/1000, float64(p.MaxMicros)/1000, histString(p))
		}
	}
	return b.String()
}

// histString renders a histogram's non-empty buckets ("<1ms:40 2-4ms:1").
func histString(p *PhaseMetrics) string {
	var parts []string
	for i, n := range p.Hist {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", histLabel(i), n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// WriteJSON writes the metrics as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
