package obs_test

// The observability contract: with no Observer the search takes no
// timestamps and produces byte-identical output (winner, counters, skips,
// SearchPoints, journal bytes) at every Parallelism; with one installed the
// event stream is purely additive, canonical at Parallelism 1, and its
// merger verdicts are in enumeration order at every Parallelism.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/obs"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

func bfsTrainer(g *graph.CSR) core.TrainFunc {
	return func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
		if err != nil {
			return 0, err
		}
		b.Apply(inst.Machine)
		st, err := inst.Run()
		if err != nil {
			return 0, err
		}
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}
}

func autotuneOpts(par int) core.Options {
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = []core.TrainFunc{bfsTrainer(graph.Grid("t", 14, 14, 5))}
	opt.Parallelism = par
	return opt
}

// renderResult flattens everything observable about an autotune Result.
func renderResult(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "best=%q stages=%d cycles=%d searched=%d deduped=%d enum=%d pruned=%d\n",
		res.Pipeline.Description, res.Pipeline.NumStages(), res.TrainCycles,
		res.Searched, res.Deduped, res.Enumerated, res.Pruned)
	for _, s := range res.Skips {
		fmt.Fprintf(&b, "skip phase=%d subset=%v reason=%s err=%v\n", s.Phase, s.Subset, s.Reason, s.Err)
	}
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "point stages=%d cycles=%d subset=%v pred=%d rank=%d skip=%v\n",
			pt.TotalStages, pt.Cycles, pt.Subset, pt.PredictedCycles, pt.PredictedRank, pt.Skip != nil)
	}
	return b.String()
}

// TestObserverNilBitIdentity pins the zero-overhead contract: at every
// Parallelism, an autotune with a Collector installed returns exactly the
// result — and writes exactly the journal bytes — of one with Observer nil.
func TestObserverNilBitIdentity(t *testing.T) {
	run := func(par int, observe bool) (string, []byte) {
		opt := autotuneOpts(par)
		opt.Checkpoint = filepath.Join(t.TempDir(), "journal.jsonl")
		var col *obs.Collector
		if observe {
			col = obs.NewCollector()
			opt.Observer = col
		}
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatalf("par %d observe %v: %v", par, observe, err)
		}
		if observe && col.Len() == 0 {
			t.Fatalf("par %d: installed Collector saw no events", par)
		}
		jb, err := os.ReadFile(opt.Checkpoint)
		if err != nil {
			t.Fatalf("read journal: %v", err)
		}
		return renderResult(res), jb
	}
	wantRes, wantJournal := run(1, false)
	for _, par := range []int{1, 4, 0} {
		for _, observe := range []bool{false, true} {
			gotRes, gotJournal := run(par, observe)
			if gotRes != wantRes {
				t.Errorf("par %d observe %v: result differs\n--- want\n%s--- got\n%s",
					par, observe, wantRes, gotRes)
			}
			if string(gotJournal) != string(wantJournal) {
				t.Errorf("par %d observe %v: journal bytes differ", par, observe)
			}
		}
	}
}

// renderEvent flattens one event, masking wall-time offsets (which vary run
// to run) but keeping everything else, including span-vs-instant shape.
func renderEvent(e core.SearchEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seq=%d phase=%d subset=%v fp=%q worker=%d", e.Kind, e.Seq, e.Phase, e.Subset, e.FP, e.Worker)
	if e.End > e.Start {
		b.WriteString(" span")
	}
	if e.Cycles != 0 {
		fmt.Fprintf(&b, " cycles=%d", e.Cycles)
	}
	if e.Dup {
		b.WriteString(" dup")
	}
	if e.Replayed {
		b.WriteString(" replayed")
	}
	if e.Pred != 0 {
		fmt.Fprintf(&b, " pred=%d rank=%d", e.Pred, e.PredRank)
	}
	if e.Skip != nil {
		fmt.Fprintf(&b, " skip=%s", e.Skip.Reason)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " err=%v", e.Err)
	}
	if e.Mode != "" {
		fmt.Fprintf(&b, " mode=%s", e.Mode)
	}
	if e.N != 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	return b.String()
}

func renderEvents(events []core.SearchEvent) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(renderEvent(e))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestEventStreamDeterministicSerial pins the canonical stream: at
// Parallelism 1 two identical searches emit identical event sequences
// (timestamps masked), and the stream is well-formed (search-start first,
// search-end last, spans non-negative).
func TestEventStreamDeterministicSerial(t *testing.T) {
	run := func() []core.SearchEvent {
		col := obs.NewCollector()
		opt := autotuneOpts(1)
		opt.Observer = col
		if _, err := core.CompileSource(workloads.BFSSource, opt); err != nil {
			t.Fatal(err)
		}
		return col.Events()
	}
	a, b := run(), run()
	ra, rb := renderEvents(a), renderEvents(b)
	if ra != rb {
		t.Errorf("serial event streams differ across runs:\n--- first\n%s--- second\n%s", ra, rb)
	}
	if len(a) == 0 {
		t.Fatal("no events")
	}
	if a[0].Kind != core.EvSearchStart {
		t.Errorf("first event %s, want search-start", a[0].Kind)
	}
	if last := a[len(a)-1]; last.Kind != core.EvSearchEnd {
		t.Errorf("last event %s, want search-end", last.Kind)
	}
	for i, e := range a {
		if e.End < e.Start {
			t.Errorf("event %d (%s): End %v < Start %v", i, e.Kind, e.End, e.Start)
		}
		if e.Worker != 0 {
			t.Errorf("event %d (%s): worker %d in a serial run", i, e.Kind, e.Worker)
		}
	}
}

// verdictKinds are the merger-emitted per-candidate outcomes.
func isVerdict(k core.EventKind) bool {
	switch k {
	case core.EvDeduped, core.EvPruned, core.EvAccept, core.EvSkip, core.EvCancel:
		return true
	}
	return false
}

// TestVerdictsEnumerationOrdered pins the merger contract at Parallelism 4:
// whatever the worker interleaving, verdict events arrive strictly in
// enumeration order and cover every enumerated candidate exactly once.
func TestVerdictsEnumerationOrdered(t *testing.T) {
	col := obs.NewCollector()
	opt := autotuneOpts(4)
	opt.Observer = col
	if _, err := core.CompileSource(workloads.BFSSource, opt); err != nil {
		t.Fatal(err)
	}
	enumerated, verdicts := 0, 0
	lastSeq := -1
	for _, e := range col.Events() {
		if e.Kind == core.EvEnumerated {
			enumerated++
		}
		if isVerdict(e.Kind) {
			if e.Seq != lastSeq+1 {
				t.Errorf("verdict %s seq=%d after seq=%d: not enumeration order", e.Kind, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			verdicts++
			if e.Worker != 0 {
				t.Errorf("verdict %s seq=%d attributed to worker %d, want merger (0)", e.Kind, e.Seq, e.Worker)
			}
		}
	}
	if verdicts == 0 || verdicts != enumerated {
		t.Errorf("%d verdicts for %d enumerated candidates", verdicts, enumerated)
	}
}

// TestSearchEventsAndPoints smoke-tests the Search flow: an installed
// Collector sees a "search"-mode stream whose verdict count matches the
// returned points, and the points themselves are unchanged by observation.
func TestSearchEventsAndPoints(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	opt := autotuneOpts(1)
	base, err := core.Search(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	opt.Observer = col
	got, err := core.Search(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(base) {
		t.Fatalf("observed Search returned %d points, unobserved %d", len(got), len(base))
	}
	verdicts := 0
	mode := ""
	for _, e := range col.Events() {
		if e.Kind == core.EvSearchStart {
			mode = e.Mode
		}
		if isVerdict(e.Kind) {
			verdicts++
		}
	}
	if mode != "search" {
		t.Errorf("mode %q, want search", mode)
	}
	if verdicts != len(base) {
		t.Errorf("%d verdicts, want %d (one per point)", verdicts, len(base))
	}
}

// TestStaticCompileEvents: the static flow emits the minimal stream —
// search-start, a build span, commopt/verify spans, search-end.
func TestStaticCompileEvents(t *testing.T) {
	col := obs.NewCollector()
	opt := core.DefaultOptions()
	opt.Observer = col
	if _, err := core.CompileSource(workloads.BFSSource, opt); err != nil {
		t.Fatal(err)
	}
	kinds := map[core.EventKind]int{}
	for _, e := range col.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []core.EventKind{core.EvSearchStart, core.EvBuild, core.EvVerify, core.EvSearchEnd} {
		if kinds[want] == 0 {
			t.Errorf("static compile emitted no %s event", want)
		}
	}
	m := obs.Aggregate(col.Events())
	if m.Mode != "static" {
		t.Errorf("mode %q, want static", m.Mode)
	}
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s mismatch (re-run with -update if intended):\n--- want\n%s--- got\n%s",
			name, want, got)
	}
}
