package obs_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"phloem/internal/core"
	"phloem/internal/obs"
)

// fixtureEvents is a synthetic autotune stream with fixed wall-time offsets,
// so the rendered metrics are fully deterministic and golden-testable:
// four candidates — one accepted, one deduped, one pruned, one budget-skip —
// over a 400ms search on two workers.
func fixtureEvents() []core.SearchEvent {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	span := func(e core.SearchEvent, from, to int) core.SearchEvent {
		e.Start, e.End = ms(from), ms(to)
		return e
	}
	at := func(e core.SearchEvent, t int) core.SearchEvent { return span(e, t, t) }
	return []core.SearchEvent{
		at(core.SearchEvent{Kind: core.EvSearchStart, Seq: -1, Phase: -1, Mode: "autotune"}, 0),
		span(core.SearchEvent{Kind: core.EvSerial, Seq: -1, Phase: -1, Cycles: 120000}, 0, 40),
		at(core.SearchEvent{Kind: core.EvEnumerated, Seq: 0, Phase: -1, FP: "|3,7,"}, 41),
		at(core.SearchEvent{Kind: core.EvEnumerated, Seq: 1, Phase: 0, Subset: []int{0}, FP: "|3,"}, 41),
		at(core.SearchEvent{Kind: core.EvEnumerated, Seq: 2, Phase: 0, Subset: []int{0, 1}, FP: "|3,7,", Dup: true}, 41),
		at(core.SearchEvent{Kind: core.EvEnumerated, Seq: 3, Phase: 0, Subset: []int{1}, FP: "|7,"}, 41),
		span(core.SearchEvent{Kind: core.EvBuild, Seq: 0, Phase: -1, FP: "|3,7,"}, 42, 45),
		span(core.SearchEvent{Kind: core.EvBuild, Seq: 1, Phase: 0, Subset: []int{0}, FP: "|3,"}, 45, 47),
		span(core.SearchEvent{Kind: core.EvBuild, Seq: 3, Phase: 0, Subset: []int{1}, FP: "|7,"}, 47, 52),
		span(core.SearchEvent{Kind: core.EvRank, Seq: -1, Phase: -1, N: 1}, 42, 54),
		span(core.SearchEvent{Kind: core.EvVerify, Seq: 0, Phase: -1, FP: "|3,7,"}, 55, 56),
		span(core.SearchEvent{Kind: core.EvTrain, Seq: 0, Phase: -1, FP: "|3,7,", Cycles: 95000}, 56, 200),
		at(core.SearchEvent{Kind: core.EvAccept, Seq: 0, Phase: -1, FP: "|3,7,", Cycles: 95000, Pred: 900, PredRank: 1}, 201),
		span(core.SearchEvent{Kind: core.EvVerify, Seq: 1, Phase: 0, Subset: []int{0}, FP: "|3,", Worker: 1}, 202, 203),
		span(core.SearchEvent{Kind: core.EvTrain, Seq: 1, Phase: 0, Subset: []int{0}, FP: "|3,", Worker: 1,
			Cycles: 60000, Err: errors.New("cycle budget exhausted")}, 203, 390),
		at(core.SearchEvent{Kind: core.EvSkip, Seq: 1, Phase: 0, Subset: []int{0}, FP: "|3,", Pred: 1100, PredRank: 2,
			Skip: &core.CandidateSkip{Phase: 0, Subset: []int{0}, Reason: core.SkipBudget}}, 391),
		at(core.SearchEvent{Kind: core.EvDeduped, Seq: 2, Phase: 0, Subset: []int{0, 1}, FP: "|3,7,", Cycles: 95000}, 392),
		at(core.SearchEvent{Kind: core.EvPruned, Seq: 3, Phase: 0, Subset: []int{1}, FP: "|7,", Pred: 4000, PredRank: 3}, 393),
		at(core.SearchEvent{Kind: core.EvSearchEnd, Seq: -1, Phase: -1, Mode: "autotune", Cycles: 95000}, 400),
	}
}

func TestAggregateFixture(t *testing.T) {
	m := obs.Aggregate(fixtureEvents())
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"mode", m.Mode, "autotune"},
		{"enumerated", m.Enumerated, 4},
		{"unique", m.Unique, 3},
		{"deduped", m.Deduped, 1},
		{"pruned", m.Pruned, 1},
		{"accepted", m.Accepted, 1},
		{"skipped", m.Skipped, 1},
		{"trained", m.Trained, 2},
		{"serial cycles", m.SerialCycles, uint64(120000)},
		{"best cycles", m.BestCycles, uint64(95000)},
		{"workers", m.Workers, 2},
		{"total micros", m.TotalMicros, int64(400000)},
		{"train cycles", m.TrainCycles, uint64(155000)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	// Train phase: 144ms + 187ms = 331ms; throughput 155000/331 cycles/ms.
	var train *obs.PhaseMetrics
	for i := range m.Phases {
		if m.Phases[i].Name == "train" {
			train = &m.Phases[i]
		}
	}
	if train == nil {
		t.Fatal("no train phase aggregate")
	}
	if train.TotalMicros != 331000 {
		t.Errorf("train total %d micros, want 331000", train.TotalMicros)
	}
	if want := float64(155000) / 331; m.CyclesPerMs != want {
		t.Errorf("cycles/ms = %v, want %v", m.CyclesPerMs, want)
	}
}

func TestMetricsGolden(t *testing.T) {
	m := obs.Aggregate(fixtureEvents())
	golden(t, "metrics.txt", []byte(m.String()))
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "metrics.json", buf.Bytes())
}

func TestTeeFansOut(t *testing.T) {
	a, b := obs.NewCollector(), obs.NewCollector()
	tee := obs.Tee{a, nil, b}
	for _, e := range fixtureEvents() {
		tee.Observe(e)
	}
	if a.Len() != b.Len() || a.Len() != len(fixtureEvents()) {
		t.Errorf("tee delivered %d/%d events, want %d both", a.Len(), b.Len(), len(fixtureEvents()))
	}
}
