package sim

import "fmt"

// Energy is the modeled energy consumption in picojoules, broken down the way
// Fig. 11 of the paper reports it. The absolute constants below are rough
// 22 nm-class figures (the paper uses McPAT at 22 nm and Micron DDR3L
// datasheets); what the evaluation depends on is the *relative* composition:
// static energy scales with time x active cores, core dynamic energy with
// issued micro-ops, and memory energy with cache/DRAM access counts.
type Energy struct {
	CoreDynamic float64 // pJ, micro-op execution
	CacheAccess float64 // pJ, L1/L2/L3 accesses
	DRAM        float64 // pJ, main memory accesses
	QueueRA     float64 // pJ, Pipette queues and reference accelerators
	Static      float64 // pJ, leakage + clock over active core-cycles
}

// Total returns total energy in pJ.
func (e Energy) Total() float64 {
	return e.CoreDynamic + e.CacheAccess + e.DRAM + e.QueueRA + e.Static
}

func (e Energy) String() string {
	t := e.Total()
	if t == 0 {
		return "0"
	}
	return fmt.Sprintf("core=%.0f%% cache=%.0f%% dram=%.0f%% queue/ra=%.0f%% static=%.0f%%",
		100*e.CoreDynamic/t, 100*e.CacheAccess/t, 100*e.DRAM/t,
		100*e.QueueRA/t, 100*e.Static/t)
}

// Energy model constants (pJ per event; pJ per core-cycle for static).
const (
	eUop        = 25.0   // average per issued micro-op (OOO core, 22 nm)
	eL1         = 15.0   // per L1 access
	eL2         = 40.0   // per L2 access
	eL3         = 120.0  // per L3 access
	eDRAM       = 2600.0 // per DRAM line access (activate+rd/wr+io)
	eQueueOp    = 4.0    // per queue enq/deq (register-file backed)
	eRAAccess   = 10.0   // per RA FSM step beyond the memory access itself
	eStaticCore = 60.0   // per active core-cycle (leakage + clock tree)
)

// computeEnergy fills in the energy model from event counts.
func computeEnergy(s *Stats, queueOps, raEvents uint64, activeCores int) {
	c := s.Cache
	s.Energy = Energy{
		CoreDynamic: float64(s.Issued) * eUop,
		CacheAccess: float64(c.L1Hits+c.L1Misses)*eL1 +
			float64(c.L2Hits+c.L2Misses)*eL2 +
			float64(c.L3Hits+c.L3Misses)*eL3,
		DRAM:    float64(c.MemAccesses) * eDRAM,
		QueueRA: float64(queueOps)*eQueueOp + float64(raEvents)*eRAAccess,
		Static:  float64(s.Cycles) * eStaticCore * float64(activeCores),
	}
}
