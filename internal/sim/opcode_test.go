package sim

import (
	"math"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// evalBin runs a single two-operand instruction and returns the result.
func evalBin(t *testing.T, op isa.Op, a, b Value) Value {
	t.Helper()
	m := NewMachine(arch.DefaultConfig(1))
	out := m.Space.Alloc("out", mem.I64, 1)
	so := m.AddSlot("out", out)
	bl := isa.NewBuilder("t")
	ra := bl.Const(a.Bits)
	rb := bl.Const(b.Bits)
	zero := bl.Const(0)
	d := bl.Op2(op, ra, rb)
	bl.Store(so, zero, d)
	bl.Halt()
	m.AddStage(&Stage{Prog: bl.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	if _, err := m.RunFunctional(); err != nil {
		t.Fatalf("%v: %v", op, err)
	}
	return IntVal(out.Ints()[0])
}

func TestIntegerOpcodeSemantics(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpIAdd, 7, -3, 4},
		{isa.OpISub, 7, -3, 10},
		{isa.OpIMul, -4, 6, -24},
		{isa.OpIDiv, -17, 5, -3},
		{isa.OpIRem, -17, 5, -2},
		{isa.OpIAnd, 0b1100, 0b1010, 0b1000},
		{isa.OpIOr, 0b1100, 0b1010, 0b1110},
		{isa.OpIXor, 0b1100, 0b1010, 0b0110},
		{isa.OpIShl, 3, 4, 48},
		{isa.OpIShr, -16, 2, -4}, // arithmetic shift
		{isa.OpICmpEQ, 5, 5, 1},
		{isa.OpICmpEQ, 5, 6, 0},
		{isa.OpICmpNE, 5, 6, 1},
		{isa.OpICmpLT, -1, 0, 1},
		{isa.OpICmpLT, 0, -1, 0},
		{isa.OpICmpLE, 3, 3, 1},
		{isa.OpICmpGT, 4, 3, 1},
		{isa.OpICmpGE, 3, 4, 0},
	}
	for _, c := range cases {
		got := evalBin(t, c.op, IntVal(c.a), IntVal(c.b))
		if got.Bits != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, got.Bits, c.want)
		}
	}
}

func TestFloatOpcodeSemantics(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b float64
		want float64
	}{
		{isa.OpFAdd, 1.5, 2.25, 3.75},
		{isa.OpFSub, 1.5, 2.25, -0.75},
		{isa.OpFMul, -2, 3.5, -7},
		{isa.OpFDiv, 7, -2, -3.5},
	}
	for _, c := range cases {
		got := evalBin(t, c.op, FloatVal(c.a), FloatVal(c.b))
		if math.Float64frombits(uint64(got.Bits)) != c.want {
			t.Errorf("%v(%v, %v) = %v, want %v", c.op, c.a, c.b,
				math.Float64frombits(uint64(got.Bits)), c.want)
		}
	}
	cmp := []struct {
		op   isa.Op
		a, b float64
		want int64
	}{
		{isa.OpFCmpLT, 1, 2, 1},
		{isa.OpFCmpLT, 2, 1, 0},
		{isa.OpFCmpGE, 2, 2, 1},
		{isa.OpFCmpEQ, 2, 2, 1},
		{isa.OpFCmpNE, 2, 2, 0},
		{isa.OpFCmpLE, 1.5, 1.5, 1},
		{isa.OpFCmpGT, 3, 2.5, 1},
	}
	for _, c := range cmp {
		got := evalBin(t, c.op, FloatVal(c.a), FloatVal(c.b))
		if got.Bits != c.want {
			t.Errorf("%v(%v, %v) = %d, want %d", c.op, c.a, c.b, got.Bits, c.want)
		}
	}
}

func TestImmediateAndUnaryOpcodes(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	out := m.Space.Alloc("out", mem.I64, 8)
	so := m.AddSlot("out", out)
	b := isa.NewBuilder("t")
	x := b.Const(-6)
	f := b.Const(FloatVal(-2.5).Bits)
	idx := func(i int64) isa.Reg { return b.Const(i) }
	b.Store(so, idx(0), b.OpImm(isa.OpIAddImm, x, 10))
	b.Store(so, idx(1), b.OpImm(isa.OpIMulImm, x, -2))
	b.Store(so, idx(2), b.OpImm(isa.OpIAndImm, x, 0xF))
	b.Store(so, idx(3), b.OpImm(isa.OpIShrImm, x, 1))
	b.Store(so, idx(4), b.Op1(isa.OpFNeg, f))
	b.Store(so, idx(5), b.Op1(isa.OpFAbs, f))
	b.Store(so, idx(6), b.Op1(isa.OpF2I, f))
	b.Store(so, idx(7), b.Op1(isa.OpI2F, x))
	b.Halt()
	m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	if _, err := m.RunFunctional(); err != nil {
		t.Fatal(err)
	}
	got := out.Ints()
	if got[0] != 4 || got[1] != 12 || got[2] != (-6)&0xF || got[3] != -3 {
		t.Errorf("imm ops: %v", got[:4])
	}
	if math.Float64frombits(uint64(got[4])) != 2.5 {
		t.Errorf("fneg: %v", math.Float64frombits(uint64(got[4])))
	}
	if math.Float64frombits(uint64(got[5])) != 2.5 {
		t.Errorf("fabs: %v", math.Float64frombits(uint64(got[5])))
	}
	if got[6] != -2 {
		t.Errorf("f2i: %d", got[6])
	}
	if math.Float64frombits(uint64(got[7])) != -6.0 {
		t.Errorf("i2f: %v", math.Float64frombits(uint64(got[7])))
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	for _, op := range []isa.Op{isa.OpIDiv, isa.OpIRem} {
		m := NewMachine(arch.DefaultConfig(1))
		b := isa.NewBuilder("t")
		x := b.Const(5)
		z := b.Const(0)
		b.Op2(op, x, z)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
		if _, err := m.RunFunctional(); err == nil {
			t.Errorf("%v by zero should trap", op)
		}
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	mk := func(store bool, idx int64) error {
		m := NewMachine(arch.DefaultConfig(1))
		arr := m.Space.Alloc("a", mem.I64, 2)
		sa := m.AddSlot("a", arr)
		b := isa.NewBuilder("t")
		i := b.Const(idx)
		if store {
			b.Store(sa, i, i)
		} else {
			b.Load(sa, i)
		}
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
		_, err := m.RunFunctional()
		return err
	}
	if err := mk(false, 2); err == nil {
		t.Error("load out of bounds should trap")
	}
	if err := mk(true, -1); err == nil {
		t.Error("store out of bounds should trap")
	}
	if err := mk(false, 1); err != nil {
		t.Errorf("in-bounds load trapped: %v", err)
	}
}

func TestPrefetchSemantics(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	arr := m.Space.AllocInts("a", []int64{1, 2})
	sa := m.AddSlot("a", arr)
	b := isa.NewBuilder("t")
	in := b.Const(1)
	oob := b.Const(99)
	b.Emit(isa.Instr{Op: isa.OpPrefetch, Slot: sa, A: in})
	// Out-of-bounds prefetches are dropped, not trapped.
	b.Emit(isa.Instr{Op: isa.OpPrefetch, Slot: sa, A: oob})
	b.Halt()
	m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.L1Misses == 0 {
		t.Error("the in-bounds prefetch should have touched the cache")
	}
}

func TestALUClearsControlTag(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	out := m.Space.Alloc("out", mem.I64, 2)
	so := m.AddSlot("out", out)
	q := m.AddQueue("q")
	{
		b := isa.NewBuilder("p")
		b.EnqCtrl(q, 5)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("c")
		zero := b.Const(0)
		one := b.Const(1)
		v := b.Deq(q)
		tag := b.IsCtrl(v)
		b.Store(so, zero, tag)
		// An ALU op on the value clears the tag.
		w := b.OpImm(isa.OpIAddImm, v, 0)
		tag2 := b.IsCtrl(w)
		b.Store(so, one, tag2)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Ints()[0] != 1 || out.Ints()[1] != 0 {
		t.Errorf("tag semantics: %v", out.Ints())
	}
}
