package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"phloem/internal/arch"
	"phloem/internal/mem"
)

// introMachine builds the intro serial kernel over n elements.
func introMachine(t *testing.T, n int) (*Machine, *mem.Array) {
	t.Helper()
	a, bv := introData(t, n)
	m := NewMachine(arch.DefaultConfig(1))
	arrA := m.Space.AllocInts("A", a)
	arrB := m.Space.AllocInts("B", bv)
	arrOut := m.Space.Alloc("out", mem.I64, 1)
	sa := m.AddSlot("A", arrA)
	sb := m.AddSlot("B", arrB)
	so := m.AddSlot("out", arrOut)
	m.AddStage(&Stage{
		Prog:   buildIntroSerial(int64(len(a)), sa, sb, so),
		Thread: arch.ThreadID{Core: 0, Thread: 0},
	})
	return m, arrOut
}

// TestBackgroundCtxBitIdenticalStats pins the tentpole's no-op guarantee: a
// background (never-cancelled) context and a far-future wall deadline must
// leave both results and Stats bit-identical to a run with neither set.
func TestBackgroundCtxBitIdenticalStats(t *testing.T) {
	m1, out1 := introMachine(t, 1500)
	base, err := m1.Run()
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	m2, out2 := introMachine(t, 1500)
	m2.Ctx = context.Background()
	m2.WallDeadline = time.Now().Add(time.Hour)
	got, err := m2.Run()
	if err != nil {
		t.Fatalf("ctx run: %v", err)
	}
	if out1.Ints()[0] != out2.Ints()[0] {
		t.Errorf("results differ: %d vs %d", out1.Ints()[0], out2.Ints()[0])
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("Stats differ with background ctx:\nbase: %+v\nctx:  %+v", base, got)
	}
	if base.String() != got.String() {
		t.Errorf("rendered Stats differ:\n%s\nvs\n%s", base, got)
	}
}

func TestCancelledFunctionalPhase(t *testing.T) {
	m, _ := introMachine(t, 1500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.Ctx = ctx
	_, err := m.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got: %v", err)
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not *CancelledError: %T", err)
	}
	if ce.Phase != "functional" {
		t.Errorf("phase = %q, want functional", ce.Phase)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not surfaced via Unwrap: %v", err)
	}
}

func TestCancelledTimingPhasePartialStats(t *testing.T) {
	m, _ := introMachine(t, 1500)
	ts, err := m.RunFunctional()
	if err != nil {
		t.Fatalf("functional: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.Ctx = ctx
	_, err = m.RunTiming(ts)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("expected ErrCancelled, got: %v", err)
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not *CancelledError: %T", err)
	}
	if ce.Phase != "timing" {
		t.Errorf("phase = %q, want timing", ce.Phase)
	}
	if ce.Stats == nil {
		t.Error("no partial stats attached to timing-phase cancellation")
	}
}

func TestWallBudgetExpired(t *testing.T) {
	m, _ := introMachine(t, 1500)
	m.WallDeadline = time.Now().Add(-time.Second)
	_, err := m.Run()
	if !errors.Is(err, ErrWallBudget) {
		t.Fatalf("expected ErrWallBudget, got: %v", err)
	}
	var we *WallBudgetError
	if !errors.As(err, &we) {
		t.Fatalf("error is not *WallBudgetError: %T", err)
	}
	if we.Phase != "functional" {
		t.Errorf("phase = %q, want functional (deadline already past at entry)", we.Phase)
	}
	// An explicit cancel must win over a coincident wall overrun.
	m2, _ := introMachine(t, 1500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m2.Ctx = ctx
	m2.WallDeadline = time.Now().Add(-time.Second)
	_, err = m2.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("ctx cancel should take precedence over wall deadline, got: %v", err)
	}
}
