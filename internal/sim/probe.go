package sim

// StallClass classifies one observed core cycle for telemetry attribution.
// The classes mirror the Breakdown fields, with the same priority order the
// timing engine uses (Queue > Backend > Other for stalled cycles).
type StallClass uint8

const (
	ClassIssue StallClass = iota
	ClassBackend
	ClassQueue
	ClassOther
)

func (c StallClass) String() string {
	switch c {
	case ClassIssue:
		return "issue"
	case ClassBackend:
		return "backend"
	case ClassQueue:
		return "queue"
	}
	return "other"
}

// Probe observes timing-engine events for telemetry. Install one via
// Machine.Probe before RunTiming; every hook site is guarded by a single
// nil test, so a machine without a probe pays no observation cost and its
// Stats are bit-identical to an uninstrumented run. Probes are observers
// only: they must not mutate the machine, and the engine never consults
// them for timing decisions.
//
// Thread and RA identities are indices into Machine.Stages and Machine.RAs
// respectively; BeginTiming hands the probe the machine so it can resolve
// names, cores, and stage programs up front.
type Probe interface {
	// BeginTiming announces the machine being replayed, before cycle 0.
	BeginTiming(m *Machine)
	// Sample delivers a cumulative Stats snapshot when the simulated clock
	// first reaches a Config.TelemetryInterval boundary. Idle fast-forward
	// can skip several boundaries at once; then a single sample is emitted
	// at the post-skip cycle.
	Sample(now uint64, snap *Stats)
	// QueueLen reports queue q's occupancy right after a push or pop.
	QueueLen(q, ln int, now uint64)
	// ThreadState reports the thread's activity class for cycle now: ClassIssue
	// when it issued at least one micro-op this cycle, otherwise its stall
	// class. Cycles skipped by idle fast-forward emit no calls; the last
	// reported state spans them.
	ThreadState(thread int, state StallClass, now uint64)
	// ThreadDone marks the thread's stage program as finished.
	ThreadDone(thread int, now uint64)
	// Issued reports one issued micro-op and the stage-program PC it came from.
	Issued(thread, pc int, now uint64)
	// CoreCycles attributes weight observed core-cycles of the given class to
	// a representative stage-program site. For issue cycles the site is the
	// first micro-op issued that cycle; for stall cycles it is the oldest
	// blocked entry of the matching class. thread/pc are -1 when no site is
	// identifiable (the cycles still count, as unattributed).
	CoreCycles(core int, class StallClass, thread, pc int, weight uint64)
	// HandlerFire reports a control-value handler activation observed at
	// fetch on the given thread, with the PC of the firing dequeue.
	HandlerFire(thread, pc int, now uint64)
	// RAInflight reports accelerator ra's in-flight window occupancy (loads
	// of which are pending memory loads) after it changed.
	RAInflight(ra, inflight, loads int, now uint64)
	// EndTiming delivers the final Stats before RunTiming returns (also on
	// cycle-budget aborts, with the partial stats).
	EndTiming(stats *Stats)
}
