package sim

import (
	"fmt"
	"math"
)

// Value is one 64-bit machine word plus Pipette's in-band control tag.
// ALU operations clear the tag; queue operations preserve it.
type Value struct {
	Bits int64
	Ctrl bool
}

// IntVal makes a data value from an integer.
func IntVal(v int64) Value { return Value{Bits: v} }

// FloatVal makes a data value from a float64 (stored as its bit pattern).
func FloatVal(v float64) Value {
	return Value{Bits: int64(math.Float64bits(v))}
}

// CtrlVal makes a control value with the given code.
func CtrlVal(code int64) Value { return Value{Bits: code, Ctrl: true} }

// Float interprets the value's bits as a float64.
func (v Value) Float() float64 { return math.Float64frombits(uint64(v.Bits)) }

func (v Value) String() string {
	if v.Ctrl {
		return fmt.Sprintf("ctrl(%d)", v.Bits)
	}
	return fmt.Sprintf("%d", v.Bits)
}
