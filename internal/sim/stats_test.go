package sim

import (
	"strings"
	"testing"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{Issue: 10, Backend: 5, Queue: 3, Other: 2})
	b.Add(Breakdown{Issue: 1})
	if b.Total() != 21 || b.Issue != 11 {
		t.Errorf("breakdown: %+v total %d", b, b.Total())
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{
		Cycles: 100, Issued: 250, Mispredicts: 3, HandlerFires: 1,
		PerCore: []Breakdown{{Issue: 60, Backend: 30, Queue: 5, Other: 5}},
	}
	out := s.String()
	for _, want := range []string{"cycles=100", "ipc=2.50", "issue=60%", "backend=30%"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q:\n%s", want, out)
		}
	}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	var empty Stats
	if empty.IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestEnergyComposition(t *testing.T) {
	s := &Stats{Cycles: 1000, Issued: 500,
		PerCore: []Breakdown{{Issue: 1000}}}
	s.Cache.L1Hits = 100
	s.Cache.MemAccesses = 10
	computeEnergy(s, 50, 20, 1)
	e := s.Energy
	if e.Total() <= 0 {
		t.Fatal("zero energy")
	}
	if e.Static != 1000*eStaticCore {
		t.Errorf("static energy: %v", e.Static)
	}
	if e.DRAM != 10*eDRAM {
		t.Errorf("dram energy: %v", e.DRAM)
	}
	if !strings.Contains(e.String(), "static=") {
		t.Errorf("energy string: %q", e.String())
	}
	if (Energy{}).String() != "0" {
		t.Error("zero energy string")
	}
}

// TestCycleBreakdownSumsToCycles: every simulated core-cycle must be
// classified into exactly one bucket.
func TestCycleBreakdownSumsToCycles(t *testing.T) {
	// Reuse the intro-example machinery for a real multi-stage run.
	a, bv := introData(t, 3000)
	st := runIntroPipeline(t, a, bv)
	total := st.TotalBreakdown().Total()
	// One active core: classified cycles == end-to-end cycles (modulo the
	// final cycle that ends the run).
	if total < st.Cycles-2 || total > st.Cycles+2 {
		t.Errorf("classified %d cycles of %d", total, st.Cycles)
	}
}
