package sim

import (
	"strings"
	"testing"
)

func TestBreakdownAccounting(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{Issue: 10, Backend: 5, Queue: 3, Other: 2})
	b.Add(Breakdown{Issue: 1})
	if b.Total() != 21 || b.Issue != 11 {
		t.Errorf("breakdown: %+v total %d", b, b.Total())
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{
		Cycles: 100, Issued: 250, Mispredicts: 3, HandlerFires: 1,
		PerCore: []Breakdown{{Issue: 60, Backend: 30, Queue: 5, Other: 5}},
	}
	out := s.String()
	for _, want := range []string{"cycles=100", "ipc=2.50", "issue=60%", "backend=30%"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q:\n%s", want, out)
		}
	}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	var empty Stats
	if empty.IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

// TestStatsStringQueueStalls pins the queue-stall/RA-load line and the
// divide-by-zero guards: an all-zero snapshot must render without NaNs and
// without a bogus breakdown line.
func TestStatsStringQueueStalls(t *testing.T) {
	s := &Stats{Cycles: 10, QueueEmptyStalls: 4, QueueFullStalls: 2, RALoads: 7}
	if out, want := s.String(), "queue stalls: empty=4 full=2  ra loads: 7"; !strings.Contains(out, want) {
		t.Errorf("stats string missing %q:\n%s", want, out)
	}
	var empty Stats
	out := empty.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("zero-value stats string has NaN:\n%s", out)
	}
	if strings.Contains(out, "cycle breakdown") {
		t.Errorf("zero-value stats string has a breakdown line:\n%s", out)
	}
	if !strings.Contains(out, "queue stalls: empty=0 full=0  ra loads: 0") {
		t.Errorf("zero-value stats string missing queue-stall line:\n%s", out)
	}
}

func TestStatsDelta(t *testing.T) {
	prev := Stats{
		Cycles: 100, Instructions: 60, Issued: 50, Mispredicts: 3,
		HandlerFires: 1, QueueEmptyStalls: 10, QueueFullStalls: 2, RALoads: 5,
		PerCore: []Breakdown{{Issue: 60, Backend: 20, Queue: 15, Other: 5}},
	}
	prev.Cache.L1Hits, prev.Cache.L1Misses, prev.Cache.MemAccesses = 40, 8, 4
	cur := Stats{
		Cycles: 250, Instructions: 160, Issued: 140, Mispredicts: 7,
		HandlerFires: 4, QueueEmptyStalls: 25, QueueFullStalls: 6, RALoads: 11,
		// A second core became active after prev was snapshotted.
		PerCore: []Breakdown{{Issue: 120, Backend: 70, Queue: 40, Other: 20}, {Issue: 9}},
		Threads: []ThreadStats{{Name: "s0", Instructions: 160}},
	}
	cur.Cache.L1Hits, cur.Cache.L1Misses, cur.Cache.MemAccesses = 90, 20, 9
	cur.Energy.Static = 42

	d := cur.Delta(prev)
	if d.Cycles != 150 || d.Instructions != 100 || d.Issued != 90 || d.Mispredicts != 4 {
		t.Errorf("delta core counters: %+v", d)
	}
	if d.HandlerFires != 3 || d.QueueEmptyStalls != 15 || d.QueueFullStalls != 4 || d.RALoads != 6 {
		t.Errorf("delta event counters: %+v", d)
	}
	if d.Cache.L1Hits != 50 || d.Cache.L1Misses != 12 || d.Cache.MemAccesses != 5 {
		t.Errorf("delta cache counters: %+v", d.Cache)
	}
	if want := (Breakdown{Issue: 60, Backend: 50, Queue: 25, Other: 15}); d.PerCore[0] != want {
		t.Errorf("delta PerCore[0] = %+v, want %+v", d.PerCore[0], want)
	}
	// The core absent from prev passes through unchanged.
	if want := (Breakdown{Issue: 9}); d.PerCore[1] != want {
		t.Errorf("delta PerCore[1] = %+v, want %+v", d.PerCore[1], want)
	}
	// Per-run fields come from the newer snapshot unchanged.
	if d.Energy != cur.Energy || len(d.Threads) != 1 {
		t.Errorf("delta per-run fields: energy=%+v threads=%v", d.Energy, d.Threads)
	}
	// Delta must not alias the receiver's breakdown slice.
	d.PerCore[0].Issue = 999
	if cur.PerCore[0].Issue != 120 {
		t.Error("Delta aliased the receiver's PerCore slice")
	}
	// Self-delta is all-zero on the cumulative counters.
	z := cur.Delta(cur)
	if z.Cycles != 0 || z.Issued != 0 || z.TotalBreakdown().Total() != 0 {
		t.Errorf("self-delta nonzero: %+v", z)
	}
}

func TestEnergyComposition(t *testing.T) {
	s := &Stats{Cycles: 1000, Issued: 500,
		PerCore: []Breakdown{{Issue: 1000}}}
	s.Cache.L1Hits = 100
	s.Cache.MemAccesses = 10
	computeEnergy(s, 50, 20, 1)
	e := s.Energy
	if e.Total() <= 0 {
		t.Fatal("zero energy")
	}
	if e.Static != 1000*eStaticCore {
		t.Errorf("static energy: %v", e.Static)
	}
	if e.DRAM != 10*eDRAM {
		t.Errorf("dram energy: %v", e.DRAM)
	}
	if !strings.Contains(e.String(), "static=") {
		t.Errorf("energy string: %q", e.String())
	}
	if (Energy{}).String() != "0" {
		t.Error("zero energy string")
	}
}

// TestCycleBreakdownSumsToCycles: every simulated core-cycle must be
// classified into exactly one bucket.
func TestCycleBreakdownSumsToCycles(t *testing.T) {
	// Reuse the intro-example machinery for a real multi-stage run.
	a, bv := introData(t, 3000)
	st := runIntroPipeline(t, a, bv)
	total := st.TotalBreakdown().Total()
	// One active core: classified cycles == end-to-end cycles (modulo the
	// final cycle that ends the run).
	if total < st.Cycles-2 || total > st.Cycles+2 {
		t.Errorf("classified %d cycles of %d", total, st.Cycles)
	}
}
