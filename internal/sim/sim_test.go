package sim

import (
	"math/rand"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// buildIntroSerial builds the paper's introductory snippet:
//
//	for (i = 0; i < N; i++)
//	    if (A[i] > 0) work(B[A[i]]);
//
// where work() accumulates into out[0] through a short dependency chain.
func buildIntroSerial(n int64, slotA, slotB, slotOut int) *isa.Program {
	b := isa.NewBuilder("intro-serial")
	i := b.Const(0)
	nReg := b.Const(n)
	acc := b.Const(0)
	zero := b.Const(0)
	b.Label("loop")
	cond := b.Op2(isa.OpICmpLT, i, nReg)
	b.BrZ(cond, "done")
	ai := b.Load(slotA, i)
	pos := b.Op2(isa.OpICmpGT, ai, zero)
	b.BrZ(pos, "next")
	bv := b.Load(slotB, ai)
	// work(): ~6 dependent ALU ops
	w := b.OpImm(isa.OpIAddImm, bv, 3)
	w = b.OpImm(isa.OpIMulImm, w, 5)
	w = b.OpImm(isa.OpIAddImm, w, 1)
	w = b.OpImm(isa.OpIAndImm, w, 0xffff)
	b.Op2To(acc, isa.OpIAdd, acc, w)
	b.Label("next")
	b.OpImmTo(i, isa.OpIAddImm, i, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Store(slotOut, zero, acc)
	b.Halt()
	return b.MustBuild()
}

func introReference(a, bv []int64) int64 {
	var acc int64
	for _, x := range a {
		if x > 0 {
			w := bv[x]
			w = (((w+3)*5 + 1) & 0xffff)
			acc += w
		}
	}
	return acc
}

func introData(t *testing.T, n int) ([]int64, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	a := make([]int64, n)
	bb := make([]int64, n)
	for i := range a {
		// ~half negative for unpredictable branches; positives index B.
		if rng.Intn(2) == 0 {
			a[i] = -1
		} else {
			a[i] = int64(rng.Intn(n))
		}
	}
	for i := range bb {
		bb[i] = int64(rng.Intn(1 << 20))
	}
	return a, bb
}

func runIntroSerial(t *testing.T, a, bv []int64) *Stats {
	t.Helper()
	m := NewMachine(arch.DefaultConfig(1))
	arrA := m.Space.AllocInts("A", a)
	arrB := m.Space.AllocInts("B", bv)
	arrOut := m.Space.Alloc("out", mem.I64, 1)
	sa := m.AddSlot("A", arrA)
	sb := m.AddSlot("B", arrB)
	so := m.AddSlot("out", arrOut)
	m.AddStage(&Stage{
		Prog:   buildIntroSerial(int64(len(a)), sa, sb, so),
		Thread: arch.ThreadID{Core: 0, Thread: 0},
	})
	st, err := m.Run()
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if got, want := arrOut.Ints()[0], introReference(a, bv); got != want {
		t.Fatalf("serial result = %d, want %d", got, want)
	}
	return st
}

// runIntroPipeline builds the pipeline-parallel version from Sec. I:
// Fetch A[i] (SCAN RA) -> Filter A[i]>0 -> Fetch B[A[i]] (INDIRECT RA) -> work().
func runIntroPipeline(t *testing.T, a, bv []int64) *Stats {
	t.Helper()
	m := NewMachine(arch.DefaultConfig(1))
	arrA := m.Space.AllocInts("A", a)
	arrB := m.Space.AllocInts("B", bv)
	arrOut := m.Space.Alloc("out", mem.I64, 1)
	sa := m.AddSlot("A", arrA)
	sb := m.AddSlot("B", arrB)
	so := m.AddSlot("out", arrOut)

	qScanIn := m.AddQueue("scanA.in")
	qAVals := m.AddQueue("a.vals")
	qFiltered := m.AddQueue("filtered")
	qBVals := m.AddQueue("b.vals")

	m.AddRA(arch.RASpec{Name: "scanA", Mode: arch.RAScan, Slot: sa, InQ: qScanIn, OutQ: qAVals})
	m.AddRA(arch.RASpec{Name: "fetchB", Mode: arch.RAIndirect, Slot: sb, InQ: qFiltered, OutQ: qBVals})

	// Stage 1: feed the scan RA with the whole range, then signal the end.
	{
		b := isa.NewBuilder("feed")
		zero := b.Const(0)
		n := b.Const(int64(len(a)))
		b.Enq(qScanIn, zero)
		b.Enq(qScanIn, n)
		b.EnqCtrl(qScanIn, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	// Stage 2: filter A[i] > 0, forward the value to the indirect RA.
	{
		b := isa.NewBuilder("filter")
		zero := b.Const(0)
		b.Label("loop")
		v := b.Deq(qAVals)
		isc := b.IsCtrl(v)
		b.Br(isc, "end")
		pos := b.Op2(isa.OpICmpGT, v, zero)
		b.BrZ(pos, "loop")
		b.Enq(qFiltered, v)
		b.Jmp("loop")
		b.Label("end")
		b.EnqCtrl(qFiltered, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	// Stage 3: work() on each fetched B value.
	{
		b := isa.NewBuilder("work")
		acc := b.Const(0)
		zero := b.Const(0)
		b.Label("loop")
		v := b.Deq(qBVals)
		isc := b.IsCtrl(v)
		b.Br(isc, "end")
		w := b.OpImm(isa.OpIAddImm, v, 3)
		w = b.OpImm(isa.OpIMulImm, w, 5)
		w = b.OpImm(isa.OpIAddImm, w, 1)
		w = b.OpImm(isa.OpIAndImm, w, 0xffff)
		b.Op2To(acc, isa.OpIAdd, acc, w)
		b.Jmp("loop")
		b.Label("end")
		b.Store(so, zero, acc)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 2}})
	}

	st, err := m.Run()
	if err != nil {
		t.Fatalf("pipeline run: %v", err)
	}
	if got, want := arrOut.Ints()[0], introReference(a, bv); got != want {
		t.Fatalf("pipeline result = %d, want %d", got, want)
	}
	return st
}

func TestIntroExampleCorrectness(t *testing.T) {
	a, bv := introData(t, 2000)
	runIntroSerial(t, a, bv)
	runIntroPipeline(t, a, bv)
}

func TestIntroExamplePipelineSpeedup(t *testing.T) {
	a, bv := introData(t, 20000)
	serial := runIntroSerial(t, a, bv)
	pipe := runIntroPipeline(t, a, bv)
	t.Logf("serial:   %s", serial)
	t.Logf("pipeline: %s", pipe)
	if pipe.Cycles >= serial.Cycles {
		t.Fatalf("expected pipeline speedup; serial=%d pipeline=%d cycles",
			serial.Cycles, pipe.Cycles)
	}
	speedup := float64(serial.Cycles) / float64(pipe.Cycles)
	if speedup < 1.3 {
		t.Errorf("pipeline speedup %.2fx is implausibly low for the intro example", speedup)
	}
}

func TestValueTagging(t *testing.T) {
	v := IntVal(7)
	if v.Ctrl {
		t.Error("data value should not be control-tagged")
	}
	c := CtrlVal(arch.CtrlNext)
	if !c.Ctrl || c.Bits != arch.CtrlNext {
		t.Errorf("CtrlVal broken: %+v", c)
	}
	f := FloatVal(3.5)
	if f.Float() != 3.5 {
		t.Errorf("float roundtrip: got %v", f.Float())
	}
}

func TestMachineValidateRejectsTwoConsumers(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	q := m.AddQueue("q")
	mk := func(name string, th int) *Stage {
		b := isa.NewBuilder(name)
		b.Deq(q)
		b.Halt()
		return &Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: th}}
	}
	m.AddStage(mk("c1", 0))
	m.AddStage(mk("c2", 1))
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for two consumers on one queue")
	}
}

func TestFunctionalDeadlockDetected(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	q := m.AddQueue("q")
	b := isa.NewBuilder("stuck")
	b.Deq(q)
	b.Halt()
	m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	if _, err := m.RunFunctional(); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestBarrierSynchronizesThreads(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	arr := m.Space.Alloc("buf", mem.I64, 2)
	s := m.AddSlot("buf", arr)
	// Thread 0 writes buf[0]=11 before the barrier; thread 1 reads it after.
	{
		b := isa.NewBuilder("writer")
		zero := b.Const(0)
		v := b.Const(11)
		b.Store(s, zero, v)
		b.Barrier()
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("reader")
		b.Barrier()
		zero := b.Const(0)
		one := b.Const(1)
		v := b.Load(s, zero)
		b.Store(s, one, v)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := arr.Ints()[1]; got != 11 {
		t.Fatalf("barrier ordering broken: buf[1]=%d, want 11", got)
	}
}

func TestSwapSlots(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	a := m.Space.AllocInts("a", []int64{1})
	c := m.Space.AllocInts("c", []int64{2})
	sa := m.AddSlot("a", a)
	sc := m.AddSlot("c", c)
	b := isa.NewBuilder("swapper")
	zero := b.Const(0)
	b.SwapSlots(sa, sc)
	v := b.Load(sa, zero) // now reads array c
	b.Store(sc, zero, v)  // now writes array a
	b.Halt()
	m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := a.Ints()[0]; got != 2 {
		t.Fatalf("swap broken: a[0]=%d, want 2", got)
	}
}
