package sim

import (
	"fmt"
	"math"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// Functional engine: co-executes all stage programs with a deterministic
// round-robin quantum scheduler, unbounded queues, and eager RA propagation.
// It computes all values (the simulation's functional result lives in the
// Machine's memory space afterwards) and records the traces that the timing
// phase replays.

const funcQuantum = 512 // instructions per thread per scheduling turn

type threadState int

const (
	tsRunning threadState = iota
	tsDeqBlocked
	tsBarrier
	tsHalted
)

type fThread struct {
	stage   *Stage
	pc      int
	regs    []Value
	state   threadState
	blockQ  int // queue blocked on (when tsDeqBlocked)
	handler map[int]int
	// handlerVal is the code of the control value that fired the handler.
	handlerVal int64
	barriers   int // barriers passed
	trace      []TEntry
}

type fQueue struct {
	buf  []Value
	head int
}

func (q *fQueue) len() int { return len(q.buf) - q.head }

func (q *fQueue) push(v Value) {
	if len(q.buf) == cap(q.buf) {
		q.buf = growDouble(q.buf)
	}
	q.buf = append(q.buf, v)
}

func (q *fQueue) pop() Value {
	v := q.buf[q.head]
	q.head++
	if q.head > 4096 && q.head*2 > len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return v
}

func (q *fQueue) peek() Value { return q.buf[q.head] }

type fRA struct {
	spec      int // index into Machine.RAs
	pendStart Value
	hasStart  bool
	trace     []RAEvent
}

// growDouble reallocates s with double its capacity (512 elements minimum).
// Traces and queue buffers reach millions of entries, and append's ~1.25x
// growth policy for large slices reallocates-and-copies several times more
// bytes over a run than doubling does; that regrowth was the autotuner's
// dominant allocation site.
func growDouble[E any](s []E) []E {
	next := make([]E, len(s), max(512, 2*cap(s)))
	copy(next, s)
	return next
}

func (t *fThread) addTrace(entry TEntry) {
	if len(t.trace) == cap(t.trace) {
		t.trace = growDouble(t.trace)
	}
	t.trace = append(t.trace, entry)
}

func (ra *fRA) addTrace(ev RAEvent) {
	if len(ra.trace) == cap(ra.trace) {
		ra.trace = growDouble(ra.trace)
	}
	ra.trace = append(ra.trace, ev)
}

type funcEngine struct {
	m       *Machine
	threads []*fThread
	queues  []*fQueue
	ras     []*fRA
	// fan maps a queue id to the fan-out destinations every data enqueue
	// into it is duplicated to (nil for ordinary queues).
	fan   [][]int
	total uint64
	cap   uint64
}

// RunFunctional executes the machine's programs to completion and returns the
// traces. Memory side effects remain in m.Space; slot bindings may have been
// swapped by the program. Errors are structured: *DeadlockError (with a
// wait-for snapshot), *TraceLimitError (livelock guard), and *TrapError
// (out-of-bounds accesses, division by zero, protocol violations) — classify
// with errors.Is against ErrDeadlock/ErrTraceLimit/ErrTrap.
func (m *Machine) RunFunctional() (ts *TraceSet, err error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Typed memory-system panics (kind mismatches, bad allocations) become
	// structured traps instead of crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			me, ok := r.(*mem.Error)
			if !ok {
				panic(r)
			}
			ts, err = nil, &TrapError{PC: -1, Msg: me.Error()}
		}
	}()
	e := &funcEngine{m: m, cap: uint64(m.MaxTraceEntries)}
	if e.cap == 0 {
		e.cap = 64 << 20
	}
	for _, st := range m.Stages {
		t := &fThread{
			stage:   st,
			regs:    make([]Value, st.Prog.NumRegs),
			handler: map[int]int{},
		}
		for _, ri := range st.Init {
			t.regs[ri.Reg] = ri.Val
		}
		e.threads = append(e.threads, t)
	}
	for range m.Queues {
		e.queues = append(e.queues, &fQueue{})
	}
	for i := range m.RAs {
		e.ras = append(e.ras, &fRA{spec: i})
	}
	if len(m.FanOuts) > 0 {
		e.fan = make([][]int, len(m.Queues))
		for _, f := range m.FanOuts {
			e.fan[f.Src] = f.Dst
		}
	}

	interruptible := m.interruptible()
	for {
		if interruptible {
			if err := m.checkInterrupt("functional", 0); err != nil {
				return nil, err
			}
		}
		progress := false
		allHalted := true
		for _, t := range e.threads {
			if t.state == tsHalted {
				continue
			}
			allHalted = false
			n, err := e.runThread(t, funcQuantum)
			if err != nil {
				return nil, err
			}
			if n > 0 {
				progress = true
			}
			if moved, err := e.propagateRAs(); err != nil {
				return nil, err
			} else if moved {
				progress = true
			}
		}
		if e.releaseBarriers() {
			progress = true
		}
		if allHalted {
			break
		}
		if !progress {
			return nil, &DeadlockError{Snapshot: e.snapshot()}
		}
		if e.total > e.cap {
			return nil, &TraceLimitError{Entries: e.total, Limit: e.cap}
		}
	}

	ts = &TraceSet{Instructions: e.total}
	for _, q := range e.queues {
		ts.Leftover = append(ts.Leftover, q.len())
	}
	for _, t := range e.threads {
		ts.Threads = append(ts.Threads, t.trace)
	}
	for _, ra := range e.ras {
		ts.RA = append(ts.RA, ra.trace)
	}
	return ts, nil
}

// releaseBarriers releases all waiting threads when every live thread is
// waiting at a barrier. Returns true if anything was released.
func (e *funcEngine) releaseBarriers() bool {
	waiting := 0
	live := 0
	for _, t := range e.threads {
		switch t.state {
		case tsHalted:
		case tsBarrier:
			waiting++
			live++
		default:
			live++
		}
	}
	if live == 0 || waiting != live {
		return false
	}
	for _, t := range e.threads {
		if t.state == tsBarrier {
			t.state = tsRunning
			t.barriers++
			t.pc++ // step past the barrier
		}
	}
	return true
}

// snapshot captures the functional engine's wait-for state. Functional
// queues are unbounded, so the only blocking states are deq-empty and
// barrier; queue occupancies still identify where tokens piled up.
func (e *funcEngine) snapshot() *WaitForSnapshot {
	s := &WaitForSnapshot{Phase: "functional"}
	for _, t := range e.threads {
		if t.state == tsHalted {
			continue
		}
		w := StageWait{
			Stage:   t.stage.Prog.Name,
			Thread:  t.stage.Thread,
			PC:      int32(t.pc),
			Fetched: t.pc,
			Total:   len(t.stage.Prog.Instrs),
		}
		switch t.state {
		case tsDeqBlocked:
			w.State = "deq-empty"
			q := t.blockQ
			w.Queue = &QueueWait{Q: q, Name: e.m.Queues[q].Name, Len: e.queues[q].len()}
		case tsBarrier:
			w.State = "barrier"
		default:
			w.State = "other"
		}
		s.Stages = append(s.Stages, w)
	}
	for q := range e.queues {
		s.Queues = append(s.Queues, QueueWait{Q: q, Name: e.m.Queues[q].Name, Len: e.queues[q].len()})
	}
	return s
}

// runThread executes up to max instructions of t, returning how many ran.
func (e *funcEngine) runThread(t *fThread, max int) (int, error) {
	if t.state == tsDeqBlocked {
		if e.queues[t.blockQ].len() == 0 {
			return 0, nil
		}
		t.state = tsRunning
	}
	if t.state != tsRunning {
		return 0, nil
	}
	prog := t.stage.Prog
	ran := 0
	for ran < max {
		if t.pc < 0 || t.pc >= len(prog.Instrs) {
			return ran, &TrapError{Stage: prog.Name, PC: t.pc, Msg: "pc out of range"}
		}
		in := &prog.Instrs[t.pc]
		entry := TEntry{PC: int32(t.pc)}
		nextPC := t.pc + 1
		switch in.Op {
		case isa.OpNop:
		case isa.OpConst:
			t.regs[in.Dst] = IntVal(in.Imm)
		case isa.OpMov:
			v := t.regs[in.A]
			v.Ctrl = false
			t.regs[in.Dst] = v
		case isa.OpIAdd:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits + t.regs[in.B].Bits)
		case isa.OpIAddImm:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits + in.Imm)
		case isa.OpISub:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits - t.regs[in.B].Bits)
		case isa.OpIMul:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits * t.regs[in.B].Bits)
		case isa.OpIMulImm:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits * in.Imm)
		case isa.OpIDiv:
			d := t.regs[in.B].Bits
			if d == 0 {
				return ran, &TrapError{Stage: prog.Name, PC: t.pc, Msg: "integer division by zero"}
			}
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits / d)
		case isa.OpIRem:
			d := t.regs[in.B].Bits
			if d == 0 {
				return ran, &TrapError{Stage: prog.Name, PC: t.pc, Msg: "integer remainder by zero"}
			}
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits % d)
		case isa.OpIAnd:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits & t.regs[in.B].Bits)
		case isa.OpIAndImm:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits & in.Imm)
		case isa.OpIOr:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits | t.regs[in.B].Bits)
		case isa.OpIXor:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits ^ t.regs[in.B].Bits)
		case isa.OpIShl:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits << uint(t.regs[in.B].Bits&63))
		case isa.OpIShr:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits >> uint(t.regs[in.B].Bits&63))
		case isa.OpIShrImm:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits >> uint(in.Imm&63))
		case isa.OpICmpEQ:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Bits == t.regs[in.B].Bits)
		case isa.OpICmpNE:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Bits != t.regs[in.B].Bits)
		case isa.OpICmpLT:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Bits < t.regs[in.B].Bits)
		case isa.OpICmpLE:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Bits <= t.regs[in.B].Bits)
		case isa.OpICmpGT:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Bits > t.regs[in.B].Bits)
		case isa.OpICmpGE:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Bits >= t.regs[in.B].Bits)
		case isa.OpFAdd:
			t.regs[in.Dst] = FloatVal(t.regs[in.A].Float() + t.regs[in.B].Float())
		case isa.OpFSub:
			t.regs[in.Dst] = FloatVal(t.regs[in.A].Float() - t.regs[in.B].Float())
		case isa.OpFMul:
			t.regs[in.Dst] = FloatVal(t.regs[in.A].Float() * t.regs[in.B].Float())
		case isa.OpFDiv:
			t.regs[in.Dst] = FloatVal(t.regs[in.A].Float() / t.regs[in.B].Float())
		case isa.OpFNeg:
			t.regs[in.Dst] = FloatVal(-t.regs[in.A].Float())
		case isa.OpFAbs:
			t.regs[in.Dst] = FloatVal(math.Abs(t.regs[in.A].Float()))
		case isa.OpFCmpEQ:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Float() == t.regs[in.B].Float())
		case isa.OpFCmpNE:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Float() != t.regs[in.B].Float())
		case isa.OpFCmpLT:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Float() < t.regs[in.B].Float())
		case isa.OpFCmpLE:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Float() <= t.regs[in.B].Float())
		case isa.OpFCmpGT:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Float() > t.regs[in.B].Float())
		case isa.OpFCmpGE:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Float() >= t.regs[in.B].Float())
		case isa.OpI2F:
			t.regs[in.Dst] = FloatVal(float64(t.regs[in.A].Bits))
		case isa.OpF2I:
			t.regs[in.Dst] = IntVal(int64(t.regs[in.A].Float()))

		case isa.OpLoad:
			a := e.m.Slots[in.Slot]
			idx := t.regs[in.A].Bits
			if !a.InBounds(idx) {
				return ran, &TrapError{Stage: prog.Name, PC: t.pc,
					Msg: fmt.Sprintf("load %s[%d] out of bounds (len %d)", a.Name, idx, a.Len())}
			}
			entry.Addr = a.Addr(idx)
			t.regs[in.Dst] = loadValue(a, idx)
		case isa.OpPrefetch:
			a := e.m.Slots[in.Slot]
			idx := t.regs[in.A].Bits
			if a.InBounds(idx) {
				entry.Addr = a.Addr(idx)
			}
			// Out-of-bounds prefetches are dropped, as hardware would.
		case isa.OpStore:
			a := e.m.Slots[in.Slot]
			idx := t.regs[in.A].Bits
			if !a.InBounds(idx) {
				return ran, &TrapError{Stage: prog.Name, PC: t.pc,
					Msg: fmt.Sprintf("store %s[%d] out of bounds (len %d)", a.Name, idx, a.Len())}
			}
			entry.Addr = a.Addr(idx)
			storeValue(a, idx, t.regs[in.B])

		case isa.OpEnq:
			e.queues[in.Q].push(t.regs[in.A])
			if e.fan != nil {
				for _, d := range e.fan[in.Q] {
					e.queues[d].push(t.regs[in.A])
				}
			}
		case isa.OpEnqCtrl:
			e.queues[in.Q].push(CtrlVal(in.Imm))
			entry.Flags |= FlagCtrlDeq
		case isa.OpEnqCtrlV:
			e.queues[in.Q].push(CtrlVal(t.regs[in.A].Bits))
			entry.Flags |= FlagCtrlDeq
		case isa.OpDeq:
			q := e.queues[in.Q]
			if q.len() == 0 {
				t.state = tsDeqBlocked
				t.blockQ = in.Q
				return ran, nil
			}
			if h, ok := t.handler[in.Q]; ok && q.peek().Ctrl {
				v := q.pop()
				t.handlerVal = v.Bits
				entry.Flags |= FlagCtrlDeq | FlagHandlerFire
				nextPC = h
			} else {
				v := q.pop()
				if v.Ctrl {
					entry.Flags |= FlagCtrlDeq
				}
				t.regs[in.Dst] = v
			}
		case isa.OpPeek:
			q := e.queues[in.Q]
			if q.len() == 0 {
				t.state = tsDeqBlocked
				t.blockQ = in.Q
				return ran, nil
			}
			v := q.peek()
			if v.Ctrl {
				entry.Flags |= FlagCtrlDeq
			}
			t.regs[in.Dst] = v
		case isa.OpIsCtrl:
			t.regs[in.Dst] = boolVal(t.regs[in.A].Ctrl)
		case isa.OpCtrlCode:
			t.regs[in.Dst] = IntVal(t.regs[in.A].Bits)
		case isa.OpSetHandler:
			t.handler[in.Q] = in.Target
		case isa.OpHandlerVal:
			t.regs[in.Dst] = IntVal(t.handlerVal)

		case isa.OpBr:
			if t.regs[in.A].Bits != 0 {
				nextPC = in.Target
				entry.Flags |= FlagTaken
			}
		case isa.OpBrZ:
			if t.regs[in.A].Bits == 0 {
				nextPC = in.Target
				entry.Flags |= FlagTaken
			}
		case isa.OpJmp:
			nextPC = in.Target
			entry.Flags |= FlagTaken
		case isa.OpHalt:
			t.state = tsHalted
			t.addTrace(entry)
			e.total++
			return ran + 1, nil
		case isa.OpBarrier:
			t.state = tsBarrier
			t.addTrace(entry)
			e.total++
			// pc advances when the barrier is released.
			return ran + 1, nil
		case isa.OpSwapSlots:
			// Drain RAs first so in-flight accelerator work observes the
			// pre-swap bindings (hardware would quiesce the RA).
			if _, err := e.propagateRAs(); err != nil {
				return ran, err
			}
			e.m.Slots[in.Slot], e.m.Slots[in.Slot2] = e.m.Slots[in.Slot2], e.m.Slots[in.Slot]
		default:
			return ran, &TrapError{Stage: prog.Name, PC: t.pc,
				Msg: fmt.Sprintf("unimplemented op %v", in.Op)}
		}
		t.addTrace(entry)
		e.total++
		t.pc = nextPC
		ran++
	}
	return ran, nil
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func loadValue(a *mem.Array, idx int64) Value {
	if a.Kind == mem.F64 {
		return FloatVal(a.LoadFloat(idx))
	}
	return IntVal(a.LoadInt(idx))
}

func storeValue(a *mem.Array, idx int64, v Value) {
	if a.Kind == mem.F64 {
		a.StoreFloat(idx, v.Float())
		return
	}
	a.StoreInt(idx, v.Bits)
}

// propagateRAs drains every RA input queue to completion, recording the RA
// micro-event trace. Returns whether any token moved.
func (e *funcEngine) propagateRAs() (bool, error) {
	moved := false
	for {
		anyRound := false
		for _, ra := range e.ras {
			spec := &e.m.RAs[ra.spec]
			inq := e.queues[spec.InQ]
			outq := e.queues[spec.OutQ]
			arr := e.m.Slots[spec.Slot]
			for inq.len() > 0 {
				v := inq.pop()
				ra.addTrace(RAEvent{Kind: RAConsume})
				anyRound = true
				if v.Ctrl {
					if ra.hasStart {
						return moved, &TrapError{Stage: "ra:" + spec.Name, PC: -1,
							Msg: "control value between SCAN start/end pair"}
					}
					outq.push(v)
					ra.addTrace(RAEvent{Kind: RAPass})
					continue
				}
				switch spec.Mode {
				case arch.RAIndirect:
					idx := v.Bits
					if !arr.InBounds(idx) {
						return moved, &TrapError{Stage: "ra:" + spec.Name, PC: -1,
							Msg: fmt.Sprintf("index %d out of bounds for %s (len %d)", idx, arr.Name, arr.Len())}
					}
					outq.push(loadValue(arr, idx))
					ra.addTrace(RAEvent{Kind: RALoad, Addr: arr.Addr(idx)})
				default: // arch.RAScan
					if !ra.hasStart {
						ra.pendStart = v
						ra.hasStart = true
						continue
					}
					start, end := ra.pendStart.Bits, v.Bits
					ra.hasStart = false
					if start < 0 || end < start || (end > start && !arr.InBounds(end-1)) {
						return moved, &TrapError{Stage: "ra:" + spec.Name, PC: -1,
							Msg: fmt.Sprintf("scan range [%d,%d) out of bounds for %s (len %d)", start, end, arr.Name, arr.Len())}
					}
					for i := start; i < end; i++ {
						outq.push(loadValue(arr, i))
						ra.addTrace(RAEvent{Kind: RALoad, Addr: arr.Addr(i)})
					}
					if spec.EmitNext {
						outq.push(CtrlVal(spec.NextCode))
						ra.addTrace(RAEvent{Kind: RACtrlOut})
					}
				}
			}
		}
		if !anyRound {
			break
		}
		moved = true
	}
	return moved, nil
}
