package sim

import (
	"fmt"
	"strings"

	"phloem/internal/cache"
)

// Breakdown classifies core cycles the way Fig. 10 of the paper does.
type Breakdown struct {
	// Issue counts cycles in which the core issued at least one micro-op.
	Issue uint64
	// Backend counts stall cycles waiting on the memory system or long
	// functional-unit latencies.
	Backend uint64
	// Queue counts stall cycles blocked on full or empty queues.
	Queue uint64
	// Other counts remaining stall cycles (frontend, sync, empty window).
	Other uint64
}

// Total returns the summed classified cycles.
func (b Breakdown) Total() uint64 { return b.Issue + b.Backend + b.Queue + b.Other }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Issue += o.Issue
	b.Backend += o.Backend
	b.Queue += o.Queue
	b.Other += o.Other
}

// ThreadStats reports per-thread dynamic counts.
type ThreadStats struct {
	Name         string
	Instructions uint64
}

// Stats is the complete result of a timing simulation.
type Stats struct {
	// Cycles is the end-to-end execution time in cycles.
	Cycles uint64
	// Instructions is the total dynamic micro-op count.
	Instructions uint64
	// Issued is the total micro-ops issued (equals Instructions on success).
	Issued uint64
	// PerCore is the cycle classification per core (only cores with work).
	PerCore []Breakdown
	// Mispredicts counts branch mispredictions.
	Mispredicts uint64
	// HandlerFires counts control-value handler activations.
	HandlerFires uint64
	// QueueEmptyStalls and QueueFullStalls count cycle-granularity stall
	// observations on queue operations: cycles a core issued nothing while
	// blocked on an empty queue (consumer starved) or, respectively, only on
	// full queues (producer backpressured). Empty wins when both occur.
	QueueEmptyStalls uint64
	QueueFullStalls  uint64
	// RALoads counts memory accesses issued by reference accelerators.
	RALoads uint64
	// Cache reports hierarchy hit/miss counts.
	Cache cache.Stats
	// Energy reports the modeled energy (see energy.go).
	Energy Energy
	// Threads reports per-thread instruction counts.
	Threads []ThreadStats
}

// TotalBreakdown sums the per-core breakdowns.
func (s *Stats) TotalBreakdown() Breakdown {
	var b Breakdown
	for _, c := range s.PerCore {
		b.Add(c)
	}
	return b
}

// IPC returns micro-ops issued per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// Delta returns the counters accumulated since prev: s - prev field by
// field. Both snapshots must come from the same run (prev earlier), as
// interval sampling produces them; cumulative counters only grow, so the
// subtraction never wraps. Derived and per-run fields (Energy, Threads) are
// taken from s unchanged.
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Cycles -= prev.Cycles
	d.Instructions -= prev.Instructions
	d.Issued -= prev.Issued
	d.Mispredicts -= prev.Mispredicts
	d.HandlerFires -= prev.HandlerFires
	d.QueueEmptyStalls -= prev.QueueEmptyStalls
	d.QueueFullStalls -= prev.QueueFullStalls
	d.RALoads -= prev.RALoads
	d.Cache.L1Hits -= prev.Cache.L1Hits
	d.Cache.L1Misses -= prev.Cache.L1Misses
	d.Cache.L2Hits -= prev.Cache.L2Hits
	d.Cache.L2Misses -= prev.Cache.L2Misses
	d.Cache.L3Hits -= prev.Cache.L3Hits
	d.Cache.L3Misses -= prev.Cache.L3Misses
	d.Cache.MemAccesses -= prev.Cache.MemAccesses
	d.PerCore = make([]Breakdown, len(s.PerCore))
	for i, b := range s.PerCore {
		if i < len(prev.PerCore) {
			p := prev.PerCore[i]
			b.Issue -= p.Issue
			b.Backend -= p.Backend
			b.Queue -= p.Queue
			b.Other -= p.Other
		}
		d.PerCore[i] = b
	}
	return d
}

// String renders a human-readable summary. Every ratio is guarded so partial
// snapshots (zero cycles, no classified breakdown) render without dividing
// by zero.
func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles=%d uops=%d ipc=%.2f mispred=%d handlers=%d\n",
		s.Cycles, s.Issued, s.IPC(), s.Mispredicts, s.HandlerFires)
	tb := s.TotalBreakdown()
	if tot := float64(tb.Total()); tot > 0 {
		fmt.Fprintf(&sb, "cycle breakdown: issue=%.0f%% backend=%.0f%% queue=%.0f%% other=%.0f%%\n",
			100*float64(tb.Issue)/tot, 100*float64(tb.Backend)/tot,
			100*float64(tb.Queue)/tot, 100*float64(tb.Other)/tot)
	}
	fmt.Fprintf(&sb, "queue stalls: empty=%d full=%d  ra loads: %d\n",
		s.QueueEmptyStalls, s.QueueFullStalls, s.RALoads)
	fmt.Fprintf(&sb, "cache: L1 %d/%d L2 %d/%d L3 %d/%d mem=%d\n",
		s.Cache.L1Hits, s.Cache.L1Misses, s.Cache.L2Hits, s.Cache.L2Misses,
		s.Cache.L3Hits, s.Cache.L3Misses, s.Cache.MemAccesses)
	fmt.Fprintf(&sb, "energy: %.2f uJ (%s)\n", s.Energy.Total()/1e6, s.Energy.String())
	return sb.String()
}
