package sim

import (
	"errors"
	"fmt"
	"strings"

	"phloem/internal/arch"
)

// Structured simulation errors. Every way a simulation can fail maps to one
// of four sentinel classes so callers (the autotuner, the CLI tools, chaos
// tests) can classify failures with errors.Is without string matching:
//
//	ErrDeadlock    — no thread or RA can make progress (carries a wait-for
//	                 snapshot naming who blocks on what)
//	ErrCycleBudget — the timing phase exceeded Machine.Cfg.CycleBudget
//	                 (carries the partial stats accumulated so far)
//	ErrTraceLimit  — the functional phase exceeded its trace cap (the
//	                 livelock guard: the program makes progress but never
//	                 terminates within budget)
//	ErrTrap        — a functional trap: out-of-bounds access, division by
//	                 zero, or a queue-protocol violation
//	ErrCancelled   — the run was cancelled cooperatively through
//	                 Machine.Ctx (carries the context's cause)
//	ErrWallBudget  — the run exceeded the wall-clock deadline set via
//	                 Machine.WallDeadline
var (
	ErrDeadlock    = errors.New("sim: deadlock")
	ErrCycleBudget = errors.New("sim: cycle budget exceeded")
	ErrTraceLimit  = errors.New("sim: trace limit exceeded")
	ErrTrap        = errors.New("sim: functional trap")
	ErrCancelled   = errors.New("sim: cancelled")
	ErrWallBudget  = errors.New("sim: wall-clock budget exceeded")
)

// QueueWait is one queue's occupancy in a wait-for snapshot.
type QueueWait struct {
	Q    int
	Name string
	Len  int
	Cap  int // 0 in functional snapshots (queues are unbounded there)
}

func (q QueueWait) String() string {
	if q.Cap > 0 {
		return fmt.Sprintf("q%d(%s) %d/%d", q.Q, q.Name, q.Len, q.Cap)
	}
	return fmt.Sprintf("q%d(%s) len=%d", q.Q, q.Name, q.Len)
}

// StageWait is one unfinished stage in a wait-for snapshot.
type StageWait struct {
	Stage  string
	Thread arch.ThreadID
	// State classifies the block: "deq-empty", "enq-full", "barrier",
	// "mem", "window-empty", "in-flight", or "other".
	State string
	// Queue is the queue the stage blocks on (nil unless State is a queue
	// state).
	Queue *QueueWait
	// PC is the blocked instruction's program counter (-1 if unknown).
	PC int32
	// Fetched/Total report trace progress (timing) or instruction progress
	// (functional: Fetched is the pc, Total the program length).
	Fetched int
	Total   int
	// Retired is the per-thread retire watermark: how many trace entries
	// this thread has retired (timing phase only).
	Retired uint64
}

func (w StageWait) String() string {
	s := fmt.Sprintf("%s on %s: %s", w.Stage, w.Thread, w.State)
	if w.Queue != nil {
		s += " at " + w.Queue.String()
	}
	if w.PC >= 0 {
		s += fmt.Sprintf(" pc=%d", w.PC)
	}
	s += fmt.Sprintf(" progress=%d/%d retired=%d", w.Fetched, w.Total, w.Retired)
	return s
}

// RAWait is one reference accelerator's occupancy in a wait-for snapshot.
type RAWait struct {
	Name string
	// Inflight/Window report outstanding-request window occupancy.
	Inflight int
	Window   int
	// Next describes the next pending micro-event ("consume", "load",
	// "pass", or "done" when the event trace is exhausted).
	Next string
	In   QueueWait
	Out  QueueWait
}

func (w RAWait) String() string {
	return fmt.Sprintf("ra:%s window=%d/%d next=%s in=%s out=%s",
		w.Name, w.Inflight, w.Window, w.Next, w.In.String(), w.Out.String())
}

// WaitForSnapshot captures, at the moment a deadlock is declared, which
// stage is blocked on which queue (full or empty), every RA's window
// occupancy, and per-thread retire watermarks.
type WaitForSnapshot struct {
	// Phase is "functional" or "timing".
	Phase string
	// Cycle is the simulated cycle of the snapshot (timing phase only).
	Cycle  uint64
	Stages []StageWait
	RAs    []RAWait
	// Queues dumps every queue's occupancy.
	Queues []QueueWait
}

func (s *WaitForSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s wait-for snapshot", s.Phase)
	if s.Phase == "timing" {
		fmt.Fprintf(&sb, " at cycle %d", s.Cycle)
	}
	for _, w := range s.Stages {
		sb.WriteString("\n  ")
		sb.WriteString(w.String())
	}
	for _, w := range s.RAs {
		sb.WriteString("\n  ")
		sb.WriteString(w.String())
	}
	if len(s.Queues) > 0 {
		sb.WriteString("\n  queues:")
		for _, q := range s.Queues {
			sb.WriteString(" " + q.String())
		}
	}
	return sb.String()
}

// DeadlockError reports that the simulation can make no further progress.
type DeadlockError struct {
	Snapshot *WaitForSnapshot
	// IdleCycles is how many cycles the timing engine idled before
	// declaring the deadlock (0 for functional deadlocks, which are
	// detected immediately).
	IdleCycles uint64
}

func (e *DeadlockError) Error() string {
	msg := "sim: " + e.Snapshot.Phase + " deadlock"
	if e.IdleCycles > 0 {
		msg += fmt.Sprintf(" (no progress for %d cycles)", e.IdleCycles)
	}
	return msg + ": " + e.Snapshot.String()
}

func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// CycleBudgetError reports that the timing phase ran past the configured
// hard cycle budget. Stats holds the partial statistics accumulated up to
// the abort point (cycles, stall breakdowns, cache counters), so callers
// can still inspect how the aborted run spent its time.
type CycleBudgetError struct {
	Budget uint64
	Cycles uint64
	Stats  *Stats
}

func (e *CycleBudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget exceeded: %d cycles > budget %d", e.Cycles, e.Budget)
}

func (e *CycleBudgetError) Is(target error) bool { return target == ErrCycleBudget }

// TraceLimitError reports that the functional phase generated more trace
// entries than allowed — the livelock guard for programs that keep making
// progress without terminating.
type TraceLimitError struct {
	Entries uint64
	Limit   uint64
}

func (e *TraceLimitError) Error() string {
	return fmt.Sprintf("sim: trace limit exceeded (%d entries > limit %d); livelocked program or input too large",
		e.Entries, e.Limit)
}

func (e *TraceLimitError) Is(target error) bool { return target == ErrTraceLimit }

// CancelledError reports that the run was aborted because Machine.Ctx was
// cancelled. The context poll is amortized (see interruptCheckPeriod), so
// Cycles records where the abort was observed, not where cancellation was
// requested. Stats holds the partial timing statistics accumulated up to
// the abort point (nil for functional-phase aborts).
type CancelledError struct {
	// Phase is "functional" or "timing".
	Phase string
	// Cycles is the simulated cycle at the abort (0 for functional aborts).
	Cycles uint64
	// Cause is the context's Err(): context.Canceled or
	// context.DeadlineExceeded.
	Cause error
	Stats *Stats
}

func (e *CancelledError) Error() string {
	if e.Phase == "timing" {
		return fmt.Sprintf("sim: cancelled during timing phase at cycle %d: %v", e.Cycles, e.Cause)
	}
	return fmt.Sprintf("sim: cancelled during %s phase: %v", e.Phase, e.Cause)
}

func (e *CancelledError) Is(target error) bool { return target == ErrCancelled }

func (e *CancelledError) Unwrap() error { return e.Cause }

// WallBudgetError reports that the run exceeded Machine.WallDeadline — the
// wall-clock analogue of CycleBudgetError. Stats holds the partial timing
// statistics accumulated up to the abort (nil for functional-phase aborts).
type WallBudgetError struct {
	// Phase is "functional" or "timing".
	Phase string
	// Cycles is the simulated cycle at the abort (0 for functional aborts).
	Cycles uint64
	Stats  *Stats
}

func (e *WallBudgetError) Error() string {
	if e.Phase == "timing" {
		return fmt.Sprintf("sim: wall-clock budget exceeded during timing phase at cycle %d", e.Cycles)
	}
	return fmt.Sprintf("sim: wall-clock budget exceeded during %s phase", e.Phase)
}

func (e *WallBudgetError) Is(target error) bool { return target == ErrWallBudget }

// TrapError reports a functional trap with the faulting stage and pc.
type TrapError struct {
	Stage string
	PC    int
	Msg   string
}

func (e *TrapError) Error() string {
	switch {
	case e.Stage == "":
		return "sim: " + e.Msg
	case e.PC < 0:
		return fmt.Sprintf("sim: %s: %s", e.Stage, e.Msg)
	default:
		return fmt.Sprintf("sim: %s@%d: %s", e.Stage, e.PC, e.Msg)
	}
}

func (e *TrapError) Is(target error) bool { return target == ErrTrap }
