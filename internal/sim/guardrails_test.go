package sim

import (
	"errors"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// countedLoop emits a loop running body() n times.
func countedLoop(b *isa.Builder, n int64, body func()) {
	i := b.Const(0)
	lim := b.Const(n)
	b.Label("loop")
	c := b.Op2(isa.OpICmpLT, i, lim)
	b.BrZ(c, "done")
	body()
	b.OpImmTo(i, isa.OpIAddImm, i, 1)
	b.Jmp("loop")
	b.Label("done")
}

// timingDeadlockMachine builds a pipeline that completes functionally
// (queues are unbounded there) but deadlocks in the timing phase: the
// producer enqueues n tokens to q1 before signalling q2, while the consumer
// waits on q2 before draining q1. With n above the queue capacity, the
// producer blocks on q1-full and the consumer on q2-empty — a cyclic wait
// only bounded queues can create.
func timingDeadlockMachine(n int64) *Machine {
	m := NewMachine(arch.DefaultConfig(1))
	q1 := m.AddQueue("data")
	q2 := m.AddQueue("go")

	p := isa.NewBuilder("producer")
	one := p.Const(1)
	countedLoop(p, n, func() { p.Enq(q1, one) })
	p.Enq(q2, one)
	p.Halt()

	c := isa.NewBuilder("consumer")
	c.Deq(q2)
	countedLoop(c, n, func() { c.Deq(q1) })
	c.Halt()

	m.AddStage(&Stage{Prog: p.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	m.AddStage(&Stage{Prog: c.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	return m
}

func TestTimingDeadlockSnapshot(t *testing.T) {
	m := timingDeadlockMachine(100) // QueueDepth is 24 < 100
	m.Cfg.IdleLimit = 5000          // fail fast (satellite: lowered idle limit in tests)
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected timing deadlock")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("error not classified as deadlock: %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is not *DeadlockError: %T", err)
	}
	if de.Snapshot.Phase != "timing" {
		t.Errorf("snapshot phase = %q, want timing", de.Snapshot.Phase)
	}
	if de.IdleCycles == 0 {
		t.Error("IdleCycles not recorded")
	}
	states := map[string]string{}
	for _, w := range de.Snapshot.Stages {
		states[w.Stage] = w.State
		if w.Queue == nil && (w.State == "enq-full" || w.State == "deq-empty") {
			t.Errorf("stage %s: queue state %q without queue info", w.Stage, w.State)
		}
	}
	if states["producer"] != "enq-full" {
		t.Errorf("producer state = %q, want enq-full\n%s", states["producer"], de.Snapshot)
	}
	if states["consumer"] != "deq-empty" {
		t.Errorf("consumer state = %q, want deq-empty\n%s", states["consumer"], de.Snapshot)
	}
	if len(de.Snapshot.Queues) != 2 {
		t.Errorf("snapshot lists %d queues, want 2", len(de.Snapshot.Queues))
	}
	// The full queue must show its occupancy at capacity.
	for _, q := range de.Snapshot.Queues {
		if q.Name == "data" && q.Len != q.Cap {
			t.Errorf("blocked queue %s at %d/%d, want full", q.Name, q.Len, q.Cap)
		}
	}
	if !strings.Contains(err.Error(), "enq-full") {
		t.Errorf("error text lacks wait-for detail: %v", err)
	}
}

func TestFunctionalDeadlockSnapshot(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	q := m.AddQueue("never")
	b := isa.NewBuilder("waiter")
	b.Deq(q)
	b.Halt()
	m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	_, err := m.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected functional deadlock, got: %v", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is not *DeadlockError: %T", err)
	}
	if de.Snapshot.Phase != "functional" {
		t.Errorf("phase = %q, want functional", de.Snapshot.Phase)
	}
	if len(de.Snapshot.Stages) != 1 || de.Snapshot.Stages[0].State != "deq-empty" {
		t.Errorf("snapshot: %s", de.Snapshot)
	}
}

func TestCycleBudgetPartialStats(t *testing.T) {
	a, bv := introData(t, 2000)
	m := NewMachine(arch.DefaultConfig(1))
	arrA := m.Space.AllocInts("A", a)
	arrB := m.Space.AllocInts("B", bv)
	arrOut := m.Space.Alloc("out", mem.I64, 1)
	sa := m.AddSlot("A", arrA)
	sb := m.AddSlot("B", arrB)
	so := m.AddSlot("out", arrOut)
	m.AddStage(&Stage{
		Prog:   buildIntroSerial(int64(len(a)), sa, sb, so),
		Thread: arch.ThreadID{Core: 0, Thread: 0},
	})
	m.Cfg.CycleBudget = 500
	_, err := m.Run()
	if err == nil {
		t.Fatal("expected budget abort (2000-element run in 500 cycles)")
	}
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("error not classified as budget: %v", err)
	}
	var be *CycleBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error is not *CycleBudgetError: %T", err)
	}
	if be.Budget != 500 || be.Cycles < 500 {
		t.Errorf("budget=%d cycles=%d", be.Budget, be.Cycles)
	}
	if be.Stats == nil {
		t.Fatal("no partial stats attached")
	}
	if be.Stats.Cycles < 500 || be.Stats.Issued == 0 {
		t.Errorf("partial stats incomplete: cycles=%d issued=%d", be.Stats.Cycles, be.Stats.Issued)
	}
}

func TestTraceLimitStructured(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	b := isa.NewBuilder("spinner")
	out := m.AddSlot("out", m.Space.Alloc("out", mem.I64, 1))
	zero := b.Const(0)
	countedLoop(b, 1<<40, func() { b.Store(out, zero, zero) })
	b.Halt()
	m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	m.MaxTraceEntries = 10000
	_, err := m.Run()
	if !errors.Is(err, ErrTraceLimit) {
		t.Fatalf("expected trace-limit error, got: %v", err)
	}
	var te *TraceLimitError
	if !errors.As(err, &te) || te.Limit != 10000 || te.Entries <= te.Limit {
		t.Fatalf("bad trace-limit error: %v", err)
	}
}

func TestTrapStructured(t *testing.T) {
	t.Run("div-zero", func(t *testing.T) {
		m := NewMachine(arch.DefaultConfig(1))
		b := isa.NewBuilder("div")
		x := b.Const(5)
		z := b.Const(0)
		b.Op2(isa.OpIDiv, x, z)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
		_, err := m.Run()
		if !errors.Is(err, ErrTrap) {
			t.Fatalf("expected trap, got: %v", err)
		}
		var tr *TrapError
		if !errors.As(err, &tr) || tr.Stage != "div" || tr.PC != 2 {
			t.Fatalf("bad trap: %+v", err)
		}
	})
	t.Run("oob-load", func(t *testing.T) {
		m := NewMachine(arch.DefaultConfig(1))
		slot := m.AddSlot("a", m.Space.Alloc("a", mem.I64, 4))
		b := isa.NewBuilder("oob")
		idx := b.Const(99)
		b.Load(slot, idx)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
		_, err := m.Run()
		if !errors.Is(err, ErrTrap) {
			t.Fatalf("expected trap, got: %v", err)
		}
	})
}

// TestMemPanicRecovered checks that a typed memory-system panic surfacing
// mid-simulation becomes a structured trap instead of crashing.
func TestMemPanicRecovered(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	// A float array used via LoadInt-style access paths is fine (loadValue
	// dispatches on kind), so force the panic directly through a defer in
	// the machine's functional run by storing into a float array with a
	// mismatched accessor. Simplest trigger: call through mem directly.
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected typed panic from mem")
		} else if _, ok := r.(*mem.Error); !ok {
			t.Fatalf("panic value is %T, want *mem.Error", r)
		}
	}()
	a := m.Space.Alloc("f", mem.F64, 1)
	a.LoadInt(0)
}

// TestFaultHooksChangeTimingOnly drives the fault hooks directly: injected
// latencies and stalls must change cycle counts but never results.
func TestFaultHooksChangeTimingOnly(t *testing.T) {
	a, bv := introData(t, 1500)
	run := func(f *TimingFaults) (int64, uint64) {
		m := NewMachine(arch.DefaultConfig(1))
		arrA := m.Space.AllocInts("A", a)
		arrB := m.Space.AllocInts("B", bv)
		arrOut := m.Space.Alloc("out", mem.I64, 1)
		sa := m.AddSlot("A", arrA)
		sb := m.AddSlot("B", arrB)
		so := m.AddSlot("out", arrOut)
		m.AddStage(&Stage{
			Prog:   buildIntroSerial(int64(len(a)), sa, sb, so),
			Thread: arch.ThreadID{Core: 0, Thread: 0},
		})
		m.Faults = f
		st, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return arrOut.Ints()[0], st.Cycles
	}
	baseVal, baseCycles := run(nil)
	slowVal, slowCycles := run(&TimingFaults{
		MemLatency:  func(n uint64) uint64 { return 50 },
		ThreadStall: func(core, slot int, now uint64) bool { return now%8 < 3 },
	})
	if slowVal != baseVal {
		t.Errorf("faults changed functional result: %d vs %d", slowVal, baseVal)
	}
	if slowCycles <= baseCycles {
		t.Errorf("faults did not slow the run: %d vs %d cycles", slowCycles, baseCycles)
	}
}

func TestFaultCapClamping(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	m.AddQueue("q")
	m.Faults = &TimingFaults{
		QueueDepth:    func(q, d int) int { return 0 },    // clamped up to 1
		RAOutstanding: func(ra, n int) int { return 100 }, // may not grow
	}
	if got := m.queueCap(0); got != 1 {
		t.Errorf("queueCap = %d, want clamp to 1", got)
	}
	if got := m.raWindow(0); got != m.Cfg.RAOutstanding {
		t.Errorf("raWindow = %d, want unchanged %d", got, m.Cfg.RAOutstanding)
	}
}
