package sim

import (
	"math"

	"phloem/internal/arch"
	"phloem/internal/cache"
	"phloem/internal/isa"
)

// Timing engine: replays the functional traces on the Pipette machine model.
// Each SMT thread fetches its trace in order into a reorder window; the core
// issues up to IssueWidth ready micro-ops per cycle across its threads
// (oldest-first within each thread, register renaming via producer tracking).
// Queue operations issue in program order per thread and block on full/empty
// architectural queues; reference accelerators replay their micro-event
// traces with a bounded outstanding-miss window and in-order delivery.

const (
	issueScanCap     = 48 // unissued entries examined per thread per cycle
	predBits         = 12
	defaultIdleLimit = 1 << 20 // cycles without progress before declaring deadlock
	farFuture        = math.MaxUint64 / 4
)

type winEntry struct {
	seq      int // trace index
	instr    *isa.Instr
	doneAt   uint64
	issued   bool
	srcASeq  int // producer seq for source A (-1: value already available)
	srcBSeq  int
	depSeq   int  // for loads: newest older store to same slot (-1: none)
	redirect bool // fetch stopped behind this entry (mispredict/handler)
	released bool // for barriers: all threads arrived, entry may issue
}

type tThread struct {
	idx   int // index into Machine.Stages (probe identity)
	core  int
	slot  int // SMT thread index on the core
	prog  *isa.Program
	trace []TEntry
	name  string

	fetchIdx int
	win      []winEntry
	winMask  int
	head     int // ring index of oldest entry
	count    int
	baseSeq  int // seq of oldest entry in window
	scanFrom int // offset of the oldest unissued entry (lazy)

	regWriter []int // last fetched writer seq per register (-1: none live)
	// lastStoreAt maps byte addresses to the newest fetched store (exact
	// memory disambiguation, as an OOO core's store queue provides).
	lastStoreAt map[uint64]int
	lastQOp     int    // last fetched queue-op seq (-1: none)
	redirectAt  uint64 // fetch blocked until this cycle (redirect penalty)
	redirectSeq int    // entry that must issue before fetch resumes (-1: none)

	// gshare predictor
	predTable []uint8
	history   uint32

	finished bool
	issuedN  uint64

	// Scan-skip state: the thread is rescanned when dirty or once wakeAt is
	// reached; lastQE/lastQF/lastMB cache the stall classification (blocked
	// on empty queue, full queue, memory) meanwhile.
	dirty  bool
	wakeAt uint64
	lastQE bool
	lastQF bool
	lastMB bool
}

type tQueue struct {
	ready []uint64 // readyAt per token, FIFO
	head  int
	cap   int
}

func (q *tQueue) len() int { return len(q.ready) - q.head }
func (q *tQueue) push(at uint64) {
	q.ready = append(q.ready, at)
}
func (q *tQueue) pop() {
	q.head++
	// Occupancy is bounded by cap, so compacting once the dead prefix
	// exceeds it keeps the buffer at a few times the queue capacity
	// (amortized O(1) per token) instead of growing toward 8K entries.
	if q.head > q.cap && q.head*2 > len(q.ready) {
		q.ready = append(q.ready[:0], q.ready[q.head:]...)
		q.head = 0
	}
}
func (q *tQueue) headReady() uint64 { return q.ready[q.head] }

type tRA struct {
	id          int // index into Machine.RAs (probe identity)
	core        int
	events      []RAEvent
	idx         int
	inQ, outQ   int
	outstanding int
	// inflight delivery FIFO: completion times, delivered in order.
	inflight []uint64
	ifHead   int
	loads    int // loads among inflight
}

type timingEngine struct {
	m         *Machine
	hier      *cache.Hierarchy
	threads   []*tThread
	byCore    [][]*tThread
	queues    []*tQueue
	ras       []*tRA
	rasByCore [][]*tRA
	now       uint64

	// qConsumer[q] is the thread consuming queue q (nil if an RA consumes
	// it); qProducers[q] lists producing threads (for full-queue wakeups).
	qConsumer  []*tThread
	qProducers [][]*tThread

	// fan[q] lists the fan-out destinations a data enqueue into q is
	// duplicated to (nil for ordinary queues, nil slice when no fanouts).
	fan [][]int

	// mshrs[core] holds the completion times of outstanding L1 misses.
	mshrs [][]uint64

	stats    Stats
	queueOps uint64
	raEvents uint64
	// memN numbers memory accesses for the MemLatency fault hook; ctrlN
	// numbers control-value enqueues per queue for CtrlDelay.
	memN  uint64
	ctrlN []uint64

	// probe observation state. probe is nil when no telemetry is installed;
	// every hook site tests it once. sampleEvery/sampleAt drive interval
	// samples; curThread/curPC remember the first micro-op issued in the
	// current issueCore call for issue-cycle attribution.
	probe       Probe
	sampleEvery uint64
	sampleAt    uint64
	curThread   int
	curPC       int
}

// extraMemLatency consults the MemLatency fault hook for the next access.
func (e *timingEngine) extraMemLatency() uint64 {
	f := e.m.Faults
	if f == nil || f.MemLatency == nil {
		return 0
	}
	d := f.MemLatency(e.memN)
	e.memN++
	return d
}

// ctrlDelay consults the CtrlDelay fault hook for a control enqueue on q.
func (e *timingEngine) ctrlDelay(q int) uint64 {
	f := e.m.Faults
	if f == nil || f.CtrlDelay == nil {
		return 0
	}
	d := f.CtrlDelay(q, e.ctrlN[q])
	e.ctrlN[q]++
	return d
}

// stalled consults the ThreadStall fault hook for thread t at e.now.
func (e *timingEngine) stalled(t *tThread) bool {
	f := e.m.Faults
	return f != nil && f.ThreadStall != nil && f.ThreadStall(t.core, t.slot, e.now)
}

// RunTiming replays traces and returns timing statistics. The Machine must be
// the same instance (programs, queues, RAs) that produced the traces.
func (m *Machine) RunTiming(ts *TraceSet) (*Stats, error) {
	e := &timingEngine{m: m, hier: cache.NewHierarchy(m.Cfg.Mem)}
	e.byCore = make([][]*tThread, m.Cfg.Cores)
	e.rasByCore = make([][]*tRA, m.Cfg.Cores)
	for i, st := range m.Stages {
		winSize := 1
		for winSize < m.Cfg.WindowSize {
			winSize <<= 1
		}
		t := &tThread{
			idx:         i,
			core:        st.Thread.Core,
			slot:        st.Thread.Thread,
			prog:        st.Prog,
			trace:       ts.Threads[i],
			name:        st.Prog.Name,
			win:         make([]winEntry, winSize),
			regWriter:   make([]int, st.Prog.NumRegs),
			lastStoreAt: map[uint64]int{},
			lastQOp:     -1,
			redirectSeq: -1,
			predTable:   make([]uint8, 1<<predBits),
		}
		t.winMask = len(t.win) - 1
		for j := range t.regWriter {
			t.regWriter[j] = -1
		}
		if len(t.trace) == 0 {
			t.finished = true
		}
		e.threads = append(e.threads, t)
		e.byCore[t.core] = append(e.byCore[t.core], t)
	}
	for q := range m.Queues {
		e.queues = append(e.queues, &tQueue{cap: m.queueCap(q)})
	}
	if len(m.FanOuts) > 0 {
		e.fan = make([][]int, len(m.Queues))
		for _, f := range m.FanOuts {
			e.fan[f.Src] = f.Dst
		}
	}
	e.ctrlN = make([]uint64, len(m.Queues))
	for i, spec := range m.RAs {
		ra := &tRA{
			id:   i,
			core: spec.Core, events: ts.RA[i], inQ: spec.InQ, outQ: spec.OutQ,
			outstanding: m.raWindow(i),
		}
		e.ras = append(e.ras, ra)
		e.rasByCore[spec.Core] = append(e.rasByCore[spec.Core], ra)
	}
	e.qConsumer = make([]*tThread, len(m.Queues))
	e.qProducers = make([][]*tThread, len(m.Queues))
	for i, st := range m.Stages {
		t := e.threads[i]
		t.dirty = true
		for _, in := range st.Prog.Instrs {
			switch in.Op {
			case isa.OpDeq, isa.OpPeek:
				e.qConsumer[in.Q] = t
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				dup := false
				for _, p := range e.qProducers[in.Q] {
					if p == t {
						dup = true
					}
				}
				if !dup {
					e.qProducers[in.Q] = append(e.qProducers[in.Q], t)
				}
			}
		}
	}
	// A fanned enqueue blocks on its destinations too, so draining a dst
	// must wake the src's producers.
	for _, f := range m.FanOuts {
		for _, d := range f.Dst {
			for _, p := range e.qProducers[f.Src] {
				dup := false
				for _, q := range e.qProducers[d] {
					if q == p {
						dup = true
					}
				}
				if !dup {
					e.qProducers[d] = append(e.qProducers[d], p)
				}
			}
		}
	}
	e.mshrs = make([][]uint64, m.Cfg.Cores)
	e.stats.PerCore = make([]Breakdown, m.Cfg.Cores)
	e.stats.Instructions = ts.Instructions

	e.probe = m.Probe
	if e.probe != nil {
		e.sampleEvery = m.Cfg.TelemetryInterval
		e.sampleAt = e.sampleEvery
		e.probe.BeginTiming(m)
	}

	if err := e.run(); err != nil {
		// On a budget, cancellation, or wall-deadline abort, attach the
		// partial stats accumulated so far so the caller can still see how
		// the aborted run spent its cycles.
		var partial **Stats
		switch te := err.(type) {
		case *CycleBudgetError:
			partial = &te.Stats
		case *CancelledError:
			partial = &te.Stats
		case *WallBudgetError:
			partial = &te.Stats
		}
		if partial != nil {
			e.finishStats()
			*partial = &e.stats
			if e.probe != nil {
				e.probe.EndTiming(&e.stats)
			}
		}
		return nil, err
	}
	e.finishStats()
	if e.probe != nil {
		e.probe.EndTiming(&e.stats)
	}
	return &e.stats, nil
}

// finishStats fills in the derived statistics (cycles, cache, energy,
// per-thread counts) from the engine's current state.
func (e *timingEngine) finishStats() {
	e.stats.Cycles = e.now
	e.stats.Cache = e.hier.Stats()
	active := 0
	for c := range e.byCore {
		if len(e.byCore[c]) > 0 || len(e.rasByCore[c]) > 0 {
			active++
		}
	}
	computeEnergy(&e.stats, e.queueOps, e.raEvents, active)
	for _, t := range e.threads {
		e.stats.Threads = append(e.stats.Threads, ThreadStats{Name: t.name, Instructions: uint64(len(t.trace))})
	}
}

func (e *timingEngine) run() error {
	idle := uint64(0)
	idleLimit := e.m.Cfg.IdleLimit
	if idleLimit == 0 {
		idleLimit = defaultIdleLimit
	}
	budget := e.m.Cfg.CycleBudget
	interruptible := e.m.interruptible()
	nextInterruptCheck := uint64(0)
	for {
		if budget != 0 && e.now >= budget {
			return &CycleBudgetError{Budget: budget, Cycles: e.now}
		}
		if interruptible && e.now >= nextInterruptCheck {
			if err := e.m.checkInterrupt("timing", e.now); err != nil {
				return err
			}
			nextInterruptCheck = e.now + interruptCheckPeriod
		}
		if e.probe != nil && e.sampleEvery != 0 && e.now >= e.sampleAt {
			e.emitSample()
			e.sampleAt = (e.now/e.sampleEvery + 1) * e.sampleEvery
		}
		done := true
		for _, t := range e.threads {
			if !t.finished {
				done = false
				break
			}
		}
		if done {
			for _, ra := range e.ras {
				if ra.idx < len(ra.events) || ra.ifHead < len(ra.inflight) {
					done = false
					break
				}
			}
		}
		if done {
			return nil
		}

		progress := false

		// 1. Retire completed entries in order.
		for _, t := range e.threads {
			for t.count > 0 {
				h := &t.win[t.head]
				if !h.issued || h.doneAt > e.now {
					break
				}
				e.retireHead(t)
				progress = true
			}
		}

		// 2. Barrier resolution: a thread "arrives" when its window head is
		// an unissued Barrier entry. When all live threads have arrived (or
		// finished), the pending barriers are released; the release latches
		// per entry so cross-core barriers may issue on different cycles.
		if e.barriersReady() {
			for _, t := range e.threads {
				if !t.finished && t.count > 0 {
					t.win[t.head].released = true
					t.dirty = true
				}
			}
			progress = true
		}

		// 3. Fetch.
		for _, t := range e.threads {
			if e.fetch(t) {
				progress = true
			}
		}

		// 4. RA tick.
		for _, ra := range e.ras {
			if e.tickRA(ra) {
				progress = true
			}
		}

		// 5. Issue per core.
		for c := range e.byCore {
			issued, blockEmpty, blockFull, blockMem := e.issueCore(c)
			if issued > 0 {
				progress = true
				e.stats.PerCore[c].Issue++
				if e.probe != nil {
					e.probe.CoreCycles(c, ClassIssue, e.curThread, e.curPC, 1)
				}
			} else if e.coreLive(c) {
				switch {
				case blockEmpty || blockFull:
					e.stats.PerCore[c].Queue++
					// Empty wins when both block (the consumer side is what
					// keeps the pipeline from draining).
					if blockEmpty {
						e.stats.QueueEmptyStalls++
					} else {
						e.stats.QueueFullStalls++
					}
					e.attributeStall(c, ClassQueue, 1)
				case blockMem:
					e.stats.PerCore[c].Backend++
					e.attributeStall(c, ClassBackend, 1)
				default:
					e.stats.PerCore[c].Other++
					e.attributeStall(c, ClassOther, 1)
				}
			}
		}

		if progress {
			idle = 0
			e.now++
			continue
		}

		// 6. Idle: fast-forward to the next known event.
		next := e.nextEvent()
		if next > e.now && next < farFuture {
			delta := next - e.now
			// Attribute skipped cycles per core using the same stall class.
			for c := range e.byCore {
				if !e.coreLive(c) {
					continue
				}
				_, blockQ, blockMem := e.classifyCore(c)
				switch {
				case blockQ:
					e.stats.PerCore[c].Queue += delta - 1
					e.attributeStall(c, ClassQueue, delta-1)
				case blockMem:
					e.stats.PerCore[c].Backend += delta - 1
					e.attributeStall(c, ClassBackend, delta-1)
				default:
					e.stats.PerCore[c].Other += delta - 1
					e.attributeStall(c, ClassOther, delta-1)
				}
			}
			e.now = next
			idle = 0
			continue
		}
		idle++
		e.now++
		if idle > idleLimit {
			return &DeadlockError{Snapshot: e.snapshot(), IdleCycles: idle}
		}
	}
}

// emitSample delivers a cumulative Stats snapshot to the probe. Only the
// counters that accumulate during the run are meaningful mid-flight; Energy
// and Threads are derived at the end and stay zero in samples.
func (e *timingEngine) emitSample() {
	snap := e.stats
	snap.Cycles = e.now
	snap.Cache = e.hier.Stats()
	snap.PerCore = append([]Breakdown(nil), e.stats.PerCore...)
	e.probe.Sample(e.now, &snap)
}

// attributeStall reports weight stall cycles of the given class on core c to
// the probe, attributed to the oldest blocked entry of that class (or -1/-1
// when no site is identifiable). It matches exactly the cycles the engine
// adds to the core's Breakdown, so probe-side totals reconcile with Stats.
func (e *timingEngine) attributeStall(c int, class StallClass, weight uint64) {
	if e.probe == nil || weight == 0 {
		return
	}
	th, pc := e.stallSite(c, class)
	e.probe.CoreCycles(c, class, th, pc, weight)
}

// stallSite finds a representative (thread, PC) for a stall of the given
// class on core c: the oldest unissued window entry whose blocking reason
// matches. checkIssue is side-effect-free apart from MSHR-list compaction,
// which is behavior-preserving, so probing here cannot change timing.
func (e *timingEngine) stallSite(c int, class StallClass) (thread, pc int) {
	for _, t := range e.byCore[c] {
		if t.finished {
			continue
		}
		for off := t.scanFrom; off < t.count && off-t.scanFrom < issueScanCap; off++ {
			en := &t.win[(t.head+off)&t.winMask]
			if en.issued {
				continue
			}
			ready, qb, mb := e.checkIssue(t, en)
			match := false
			switch class {
			case ClassQueue:
				match = qb
			case ClassBackend:
				match = mb
			default:
				match = !ready && !qb && !mb
			}
			if match {
				return t.idx, int(t.trace[en.seq].PC)
			}
		}
	}
	return -1, -1
}

// snapshot captures the timing engine's wait-for state: which stage blocks
// on which queue (full/empty), RA window occupancy, and per-thread retire
// watermarks.
func (e *timingEngine) snapshot() *WaitForSnapshot {
	s := &WaitForSnapshot{Phase: "timing", Cycle: e.now}
	for _, t := range e.threads {
		if t.finished {
			continue
		}
		w := StageWait{
			Stage:   t.name,
			Thread:  arch.ThreadID{Core: t.core, Thread: t.slot},
			PC:      -1,
			Fetched: t.fetchIdx,
			Total:   len(t.trace),
			Retired: uint64(t.baseSeq),
		}
		if t.count == 0 {
			w.State = "window-empty"
		} else {
			h := &t.win[t.head]
			w.PC = t.trace[h.seq].PC
			in := h.instr
			switch {
			case h.issued:
				w.State = "in-flight"
			case in.Op == isa.OpDeq || in.Op == isa.OpPeek:
				w.State = "deq-empty"
				w.Queue = e.queueWait(in.Q)
			case in.Op == isa.OpEnq || in.Op == isa.OpEnqCtrl || in.Op == isa.OpEnqCtrlV:
				w.State = "enq-full"
				w.Queue = e.queueWait(in.Q)
			case in.Op == isa.OpBarrier && !h.released:
				w.State = "barrier"
			case in.Op == isa.OpLoad:
				w.State = "mem"
			default:
				w.State = "other"
			}
		}
		s.Stages = append(s.Stages, w)
	}
	for i, ra := range e.ras {
		if ra.idx >= len(ra.events) && ra.ifHead >= len(ra.inflight) {
			continue
		}
		next := "done"
		if ra.idx < len(ra.events) {
			switch ra.events[ra.idx].Kind {
			case RAConsume:
				next = "consume"
			case RALoad:
				next = "load"
			default:
				next = "pass"
			}
		}
		s.RAs = append(s.RAs, RAWait{
			Name:     e.m.RAs[i].Name,
			Inflight: len(ra.inflight) - ra.ifHead,
			Window:   ra.outstanding,
			Next:     next,
			In:       *e.queueWait(ra.inQ),
			Out:      *e.queueWait(ra.outQ),
		})
	}
	for q := range e.queues {
		s.Queues = append(s.Queues, *e.queueWait(q))
	}
	return s
}

func (e *timingEngine) queueWait(q int) *QueueWait {
	return &QueueWait{Q: q, Name: e.m.Queues[q].Name, Len: e.queues[q].len(), Cap: e.queues[q].cap}
}

// mshrAvailable reports whether the core can start another L1 miss at e.now,
// compacting completed entries.
func (e *timingEngine) mshrAvailable(core int) bool {
	lim := e.m.Cfg.MSHRs
	if lim <= 0 {
		return true
	}
	live := e.mshrs[core][:0]
	for _, t := range e.mshrs[core] {
		if t > e.now {
			live = append(live, t)
		}
	}
	e.mshrs[core] = live
	return len(live) < lim
}

func (e *timingEngine) wakeConsumer(q int) {
	if t := e.qConsumer[q]; t != nil {
		t.dirty = true
	}
}

func (e *timingEngine) wakeProducers(q int) {
	for _, t := range e.qProducers[q] {
		t.dirty = true
	}
}

func (e *timingEngine) coreLive(c int) bool {
	for _, t := range e.byCore[c] {
		if !t.finished {
			return true
		}
	}
	return false
}

// retireHead removes the completed head entry, releasing rename state.
func (e *timingEngine) retireHead(t *tThread) {
	t.head = (t.head + 1) & t.winMask
	t.count--
	t.baseSeq++
	if t.scanFrom > 0 {
		t.scanFrom--
	}
}

func (t *tThread) at(seq int) *winEntry {
	return &t.win[(t.head+(seq-t.baseSeq))&t.winMask]
}

// producerReady reports whether the producing entry for seq has completed by
// cycle 'now'; retired producers are always ready.
func (t *tThread) producerReady(seq int, now uint64) bool {
	if seq < 0 || seq < t.baseSeq {
		return true
	}
	en := t.at(seq)
	return en.issued && en.doneAt <= now
}

// producerDone returns the completion time of the producer, or farFuture if
// not yet issued.
func (t *tThread) producerDone(seq int) uint64 {
	if seq < 0 || seq < t.baseSeq {
		return 0
	}
	en := t.at(seq)
	if !en.issued {
		return farFuture
	}
	return en.doneAt
}

// fetch brings up to FetchWidth trace entries into the window.
func (e *timingEngine) fetch(t *tThread) bool {
	if t.finished {
		return false
	}
	fetched := 0
	for fetched < e.m.Cfg.FetchWidth {
		if t.count >= len(t.win) || t.fetchIdx >= len(t.trace) {
			break
		}
		if t.redirectSeq >= 0 {
			// Fetch is blocked behind an unresolved redirect.
			if t.redirectSeq >= t.baseSeq {
				en := t.at(t.redirectSeq)
				if !en.issued {
					break
				}
			}
			if e.now < t.redirectAt {
				break
			}
			t.redirectSeq = -1
		}
		seq := t.fetchIdx
		te := &t.trace[seq]
		in := &t.prog.Instrs[te.PC]
		en := winEntry{seq: seq, instr: in, srcASeq: -1, srcBSeq: -1, depSeq: -1}

		a, b := in.Reads()
		if a != isa.NoReg {
			en.srcASeq = t.regWriter[a]
		}
		if b != isa.NoReg {
			en.srcBSeq = t.regWriter[b]
		}
		switch in.Op {
		case isa.OpLoad:
			if dep, ok := t.lastStoreAt[te.Addr]; ok {
				en.depSeq = dep
			}
		case isa.OpStore:
			t.lastStoreAt[te.Addr] = seq
		case isa.OpBr, isa.OpBrZ:
			taken := te.Flags&FlagTaken != 0
			idx := (uint32(te.PC) ^ t.history) & (1<<predBits - 1)
			ctr := t.predTable[idx]
			pred := ctr >= 2
			if pred != taken {
				en.redirect = true
				e.stats.Mispredicts++
			}
			if taken && ctr < 3 {
				t.predTable[idx] = ctr + 1
			} else if !taken && ctr > 0 {
				t.predTable[idx] = ctr - 1
			}
			t.history = t.history<<1 | b2u(taken)
		case isa.OpDeq:
			if te.Flags&FlagHandlerFire != 0 {
				// A firing handler redirects the front end, like the
				// hardware jump Pipette performs when a control value is
				// about to be dequeued.
				en.redirect = true
				e.stats.HandlerFires++
				if e.probe != nil {
					e.probe.HandlerFire(t.idx, int(te.PC), e.now)
				}
			}
		}
		if in.IsQueueOp() {
			// remember in-order chain for queue ops
			en.depSeq = t.lastQOp // reuse depSeq for queue ordering (loads never queue ops)
			t.lastQOp = seq
		}
		if w := in.Writes(); w != isa.NoReg {
			t.regWriter[w] = seq
		}

		pos := (t.head + t.count) & t.winMask
		t.win[pos] = en
		t.count++
		t.dirty = true
		t.fetchIdx++
		fetched++
		if en.redirect {
			t.redirectSeq = seq
			t.redirectAt = farFuture
			break
		}
	}
	return fetched > 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// barriersReady reports whether all live threads are parked at a barrier.
func (e *timingEngine) barriersReady() bool {
	any := false
	for _, t := range e.threads {
		if t.finished {
			continue
		}
		if t.count == 0 {
			return false
		}
		h := t.win[t.head]
		// A barrier that was already released but has not issued yet has
		// not been crossed: counting it as a fresh arrival would pair it
		// with other threads' *next* barriers and skew the rendezvous.
		if h.issued || h.released {
			return false
		}
		if t.prog.Instrs[t.trace[h.seq].PC].Op != isa.OpBarrier {
			return false
		}
		any = true
	}
	return any
}

// issueCore issues up to IssueWidth ready micro-ops on core c. It returns the
// number issued and whether any thread was blocked on an empty queue, a full
// queue, or memory. Threads are visited in rotating order for SMT fairness.
func (e *timingEngine) issueCore(c int) (issued int, blockEmpty, blockFull, blockMem bool) {
	budget := e.m.Cfg.IssueWidth
	ths := e.byCore[c]
	n := len(ths)
	if n == 0 {
		return 0, false, false, false
	}
	e.curThread, e.curPC = -1, -1
	start := int(e.now) % n
	for k := 0; k < n; k++ {
		t := ths[(start+k)%n]
		if t.finished || budget == 0 {
			continue
		}
		if e.stalled(t) {
			// Barred from issuing this cycle; stay dirty so the thread
			// rescans as soon as the stall window ends.
			t.dirty = true
			if e.probe != nil {
				e.probe.ThreadState(t.idx, ClassOther, e.now)
			}
			continue
		}
		if !t.dirty && e.now < t.wakeAt {
			blockEmpty = blockEmpty || t.lastQE
			blockFull = blockFull || t.lastQF
			blockMem = blockMem || t.lastMB
			if e.probe != nil {
				e.probe.ThreadState(t.idx, stallClassOf(t.lastQE || t.lastQF, t.lastMB), e.now)
			}
			continue
		}
		t.dirty = false
		scanned := 0
		anyIssued := false
		firstUnissued := -1
		wake := uint64(farFuture)
		tQE, tQF, tMB := false, false, false
		for off := t.scanFrom; off < t.count && off < t.scanFrom+2*issueScanCap && scanned < issueScanCap && budget > 0; off++ {
			en := &t.win[(t.head+off)&t.winMask]
			if en.issued {
				continue
			}
			scanned++
			ok, qb, mb := e.tryIssue(t, en)
			if ok {
				issued++
				budget--
				t.issuedN++
				e.stats.Issued++
				anyIssued = true
			} else {
				if firstUnissued < 0 {
					firstUnissued = off
				}
				if w := e.entryWake(t, en); w < wake {
					wake = w
				}
				if qb {
					// A blocking queue op is an enqueue (full queue) or a
					// dequeue/peek (empty queue); the op kind tells which.
					switch en.instr.Op {
					case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
						tQF = true
					default:
						tQE = true
					}
				}
				tMB = tMB || mb
			}
		}
		blockEmpty = blockEmpty || tQE
		blockFull = blockFull || tQF
		blockMem = blockMem || tMB
		if e.probe != nil {
			if anyIssued {
				e.probe.ThreadState(t.idx, ClassIssue, e.now)
			} else {
				e.probe.ThreadState(t.idx, stallClassOf(tQE || tQF, tMB), e.now)
			}
		}
		if firstUnissued >= 0 {
			t.scanFrom = firstUnissued
		} else if scanned > 0 || t.scanFrom >= t.count {
			t.scanFrom = 0
		}
		if anyIssued || budget == 0 || scanned >= issueScanCap || wake >= farFuture {
			// More may become ready next cycle (new issues unlock
			// dependents, the scan was truncated, or the wake time is
			// unknown). Only sleep on a known finite wake.
			t.dirty = true
		} else {
			t.wakeAt = wake
			t.lastQE, t.lastQF, t.lastMB = tQE, tQF, tMB
		}
	}
	return issued, blockEmpty, blockFull, blockMem
}

// stallClassOf maps per-thread block bits to the stall class with the same
// priority order the per-core classification uses.
func stallClassOf(qb, mb bool) StallClass {
	switch {
	case qb:
		return ClassQueue
	case mb:
		return ClassBackend
	}
	return ClassOther
}

// entryWake estimates when a not-ready entry could become issuable from
// information known now: producer completion times and available queue
// tokens. Unissued producers and queue-state changes wake the thread via
// dirty marking instead.
func (e *timingEngine) entryWake(t *tThread, en *winEntry) uint64 {
	w := uint64(farFuture)
	if d := t.producerDone(en.srcASeq); d > e.now && d < w {
		w = d
	}
	if d := t.producerDone(en.srcBSeq); d > e.now && d < w {
		w = d
	}
	in := en.instr
	if in.IsQueueOp() {
		q := e.queues[in.Q]
		if (in.Op == isa.OpDeq || in.Op == isa.OpPeek) && q.len() > 0 {
			if r := q.headReady(); r > e.now && r < w {
				w = r
			}
		}
	}
	if in.Op == isa.OpLoad && len(e.mshrs[t.core]) >= e.m.Cfg.MSHRs && e.m.Cfg.MSHRs > 0 {
		for _, c := range e.mshrs[t.core] {
			if c > e.now && c < w {
				w = c
			}
		}
	}
	return w
}

// classifyCore recomputes the stall classification without issuing (used when
// fast-forwarding idle periods).
func (e *timingEngine) classifyCore(c int) (canIssue, blockQ, blockMem bool) {
	for _, t := range e.byCore[c] {
		if t.finished {
			continue
		}
		for off := t.scanFrom; off < t.count && off-t.scanFrom < issueScanCap; off++ {
			en := &t.win[(t.head+off)&t.winMask]
			if en.issued {
				continue
			}
			_, qb, mb := e.checkIssue(t, en)
			blockQ = blockQ || qb
			blockMem = blockMem || mb
		}
	}
	return false, blockQ, blockMem
}

// checkIssue evaluates readiness without side effects.
func (e *timingEngine) checkIssue(t *tThread, en *winEntry) (ready, blockQ, blockMem bool) {
	in := en.instr
	if !t.producerReady(en.srcASeq, e.now) || !t.producerReady(en.srcBSeq, e.now) {
		// Waiting on an operand: attribute to memory if the producer is a
		// load or the wait is long (FU latency counts as backend too).
		return false, false, true
	}
	switch in.Op {
	case isa.OpLoad:
		if en.depSeq >= t.baseSeq && en.depSeq >= 0 {
			dep := t.at(en.depSeq)
			if !dep.issued {
				return false, false, true
			}
		}
		if !e.mshrAvailable(t.core) {
			return false, false, true
		}
		return true, false, false
	case isa.OpBarrier:
		return en.released, false, false
	case isa.OpHalt:
		// Halt serializes: it may only issue once every older instruction
		// has retired, otherwise the thread would be marked finished with
		// work still in flight.
		return t.count > 0 && t.win[t.head].seq == en.seq, false, false
	}
	if in.IsQueueOp() {
		// In-order among queue ops.
		if en.depSeq >= t.baseSeq && en.depSeq >= 0 {
			dep := t.at(en.depSeq)
			if !dep.issued {
				return false, false, false
			}
		}
		q := e.queues[in.Q]
		switch in.Op {
		case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
			if q.len() >= q.cap {
				return false, true, false
			}
			// A fanned data enqueue writes every destination in the same
			// cycle, so it needs space in all of them (all-or-nothing).
			if in.Op == isa.OpEnq && e.fan != nil {
				for _, d := range e.fan[in.Q] {
					if dq := e.queues[d]; dq.len() >= dq.cap {
						return false, true, false
					}
				}
			}
		case isa.OpDeq, isa.OpPeek:
			if q.len() == 0 || q.headReady() > e.now {
				return false, true, false
			}
		}
		return true, false, false
	}
	return true, false, false
}

// tryIssue attempts to issue the entry, applying side effects on success.
func (e *timingEngine) tryIssue(t *tThread, en *winEntry) (ok, blockQ, blockMem bool) {
	ready, qb, mb := e.checkIssue(t, en)
	if !ready {
		return false, qb, mb
	}
	te := &t.trace[en.seq]
	in := en.instr
	var done uint64
	switch in.Op {
	case isa.OpLoad:
		lat, missed := e.hier.Access(t.core, te.Addr, e.now)
		lat += e.extraMemLatency()
		done = e.now + lat
		if missed {
			e.mshrs[t.core] = append(e.mshrs[t.core], done)
		}
	case isa.OpStore:
		// Stores complete immediately from the pipeline's view (write
		// buffer); the cache access is charged for stats/energy.
		e.hier.Access(t.core, te.Addr, e.now)
		done = e.now + 1
	case isa.OpPrefetch:
		// Fire-and-forget: warms the cache without blocking the pipeline.
		if te.Addr != 0 {
			e.hier.Access(t.core, te.Addr, e.now)
		}
		done = e.now + 1
	case isa.OpEnq:
		e.queues[in.Q].push(e.now + 1)
		e.wakeConsumer(in.Q)
		e.queueOps++
		done = e.now + 1
		if e.probe != nil {
			e.probe.QueueLen(in.Q, e.queues[in.Q].len(), e.now)
		}
		if e.fan != nil {
			// Duplicate the value into each fan-out destination: one issue
			// slot, but one physical queue write (and one energy event) per
			// destination.
			for _, d := range e.fan[in.Q] {
				e.queues[d].push(e.now + 1)
				e.wakeConsumer(d)
				e.queueOps++
				if e.probe != nil {
					e.probe.QueueLen(d, e.queues[d].len(), e.now)
				}
			}
		}
	case isa.OpEnqCtrl, isa.OpEnqCtrlV:
		// Control values may be delivered late under fault injection; the
		// token sits in the queue but is not visible to the consumer until
		// its readyAt cycle, which delays everything FIFO-behind it too.
		e.queues[in.Q].push(e.now + 1 + e.ctrlDelay(in.Q))
		e.wakeConsumer(in.Q)
		e.queueOps++
		done = e.now + 1
		if e.probe != nil {
			e.probe.QueueLen(in.Q, e.queues[in.Q].len(), e.now)
		}
	case isa.OpDeq:
		e.queues[in.Q].pop()
		e.wakeProducers(in.Q)
		e.queueOps++
		done = e.now + 1
		if e.probe != nil {
			e.probe.QueueLen(in.Q, e.queues[in.Q].len(), e.now)
		}
	case isa.OpPeek:
		e.queueOps++
		done = e.now + 1
	case isa.OpHalt:
		t.finished = true
		done = e.now + 1
		if e.probe != nil {
			e.probe.ThreadDone(t.idx, e.now)
		}
	default:
		done = e.now + in.Class().Latency()
	}
	en.issued = true
	en.doneAt = done
	if e.probe != nil {
		e.probe.Issued(t.idx, int(te.PC), e.now)
		if e.curPC < 0 {
			e.curThread, e.curPC = t.idx, int(te.PC)
		}
	}
	if en.redirect {
		pen := e.m.Cfg.MispredictPenalty
		if te.Flags&FlagHandlerFire != 0 {
			pen = e.m.Cfg.HandlerRedirectPenalty
		}
		t.redirectAt = done + pen
	}
	return true, false, false
}

// tickRA advances one reference accelerator by one cycle, reporting window
// occupancy changes to the probe.
func (e *timingEngine) tickRA(ra *tRA) bool {
	if e.probe == nil {
		return e.tickRASteps(ra)
	}
	before := len(ra.inflight) - ra.ifHead
	beforeLoads := ra.loads
	moved := e.tickRASteps(ra)
	if after := len(ra.inflight) - ra.ifHead; after != before || ra.loads != beforeLoads {
		e.probe.RAInflight(ra.id, after, ra.loads, e.now)
	}
	return moved
}

func (e *timingEngine) tickRASteps(ra *tRA) bool {
	moved := false
	// Deliver completed tokens in order.
	outq := e.queues[ra.outQ]
	for ra.ifHead < len(ra.inflight) && ra.inflight[ra.ifHead] <= e.now && outq.len() < outq.cap {
		outq.push(e.now + 1)
		e.wakeConsumer(ra.outQ)
		if e.probe != nil {
			e.probe.QueueLen(ra.outQ, outq.len(), e.now)
		}
		ra.ifHead++
		if ra.loads > 0 {
			ra.loads--
		}
		moved = true
		// Occupancy is bounded by the outstanding window; compact like
		// tQueue.pop so the buffer stays near the window size.
		if ra.ifHead > ra.outstanding && ra.ifHead*2 > len(ra.inflight) {
			ra.inflight = append(ra.inflight[:0], ra.inflight[ra.ifHead:]...)
			ra.ifHead = 0
		}
	}
	// Intake: bounded FSM steps per cycle, at most one load start.
	steps, loadsStarted := 0, 0
	inq := e.queues[ra.inQ]
	for ra.idx < len(ra.events) && steps < 4 {
		ev := ra.events[ra.idx]
		switch ev.Kind {
		case RAConsume:
			if inq.len() == 0 || inq.headReady() > e.now {
				return moved
			}
			inq.pop()
			e.wakeProducers(ra.inQ)
			if e.probe != nil {
				e.probe.QueueLen(ra.inQ, inq.len(), e.now)
			}
		case RALoad:
			if loadsStarted >= 1 || len(ra.inflight)-ra.ifHead >= ra.outstanding {
				return moved
			}
			lat, _ := e.hier.Access(ra.core, ev.Addr, e.now)
			lat += e.extraMemLatency()
			ra.inflight = append(ra.inflight, e.now+lat)
			ra.loads++
			loadsStarted++
			e.stats.RALoads++
			e.raEvents++
		case RAPass, RACtrlOut:
			if len(ra.inflight)-ra.ifHead >= ra.outstanding {
				return moved
			}
			ra.inflight = append(ra.inflight, e.now+1)
			e.raEvents++
		}
		ra.idx++
		steps++
		moved = true
	}
	return moved
}

// nextEvent returns the earliest future cycle at which something can happen.
func (e *timingEngine) nextEvent() uint64 {
	next := uint64(farFuture)
	min := func(v uint64) {
		if v > e.now && v < next {
			next = v
		}
	}
	for _, t := range e.threads {
		if t.finished {
			continue
		}
		if t.redirectSeq >= 0 && t.redirectAt < farFuture {
			min(t.redirectAt)
		}
		for off := 0; off < t.count && off < issueScanCap+t.scanFrom; off++ {
			en := &t.win[(t.head+off)&t.winMask]
			if en.issued {
				min(en.doneAt)
				continue
			}
			min(t.producerDone(en.srcASeq))
			min(t.producerDone(en.srcBSeq))
			in := en.instr
			if in.IsQueueOp() {
				q := e.queues[in.Q]
				if (in.Op == isa.OpDeq || in.Op == isa.OpPeek) && q.len() > 0 {
					min(q.headReady())
				}
			}
		}
	}
	for _, ra := range e.ras {
		if ra.ifHead < len(ra.inflight) {
			min(ra.inflight[ra.ifHead])
		}
		if ra.idx < len(ra.events) {
			q := e.queues[ra.inQ]
			if ra.events[ra.idx].Kind == RAConsume && q.len() > 0 {
				min(q.headReady())
			}
		}
	}
	return next
}

// Run executes the machine end to end: functional phase then timing phase.
func (m *Machine) Run() (*Stats, error) {
	ts, err := m.RunFunctional()
	if err != nil {
		return nil, err
	}
	return m.RunTiming(ts)
}
