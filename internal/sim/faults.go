package sim

// TimingFaults injects timing-only perturbations into a run. Every hook is
// consulted exclusively by the timing engine — never by the functional
// phase, which computes all values first — so by construction any fault
// plan leaves functional results bit-identical to an unfaulted run. What a
// plan can change is *when* things happen: queue capacities, RA
// outstanding-request windows, memory latencies, control-value delivery,
// and SMT thread scheduling. Chaos tests use this to validate that the
// queue and control-value protocols tolerate adversarial timing.
//
// Hooks must be deterministic functions of their arguments (the engine is
// single-threaded and replay-stable); nil hooks are skipped.
type TimingFaults struct {
	// QueueDepth overrides queue q's capacity; d is the configured depth.
	// Returns are clamped to >= 1.
	QueueDepth func(q, d int) int
	// RAOutstanding overrides RA i's outstanding-request window; n is the
	// configured window. Returns are clamped to >= 1.
	RAOutstanding func(ra, n int) int
	// MemLatency returns extra cycles added to the n-th memory access of
	// the run (core loads and RA loads share the counter).
	MemLatency func(n uint64) uint64
	// CtrlDelay returns extra cycles before the n-th control value
	// enqueued to queue q becomes visible to the consumer.
	CtrlDelay func(q int, n uint64) uint64
	// ThreadStall reports whether SMT thread `slot` of `core` is barred
	// from issuing at cycle now (models scheduling interference).
	ThreadStall func(core, slot int, now uint64) bool
}

// queueCap resolves queue q's effective timing capacity under faults.
func (m *Machine) queueCap(q int) int {
	d := m.queueDepth(q)
	if m.Faults != nil && m.Faults.QueueDepth != nil {
		if v := m.Faults.QueueDepth(q, d); v < d {
			d = v
		}
	}
	if d < 1 {
		d = 1
	}
	return d
}

// raWindow resolves RA i's effective outstanding window under faults.
func (m *Machine) raWindow(i int) int {
	n := m.Cfg.RAOutstanding
	if m.Faults != nil && m.Faults.RAOutstanding != nil {
		if v := m.Faults.RAOutstanding(i, n); v < n {
			n = v
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}
