package sim

import (
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/isa"
)

// overSendMachine builds a two-stage pipeline whose producer enqueues three
// tokens while the consumer dequeues only one, leaving two in the queue.
func overSendMachine(t *testing.T) *Machine {
	t.Helper()
	m := NewMachine(arch.DefaultConfig(1))
	q := m.AddQueue("overfed")
	{
		b := isa.NewBuilder("prod")
		v := b.Const(7)
		b.Enq(q, v)
		b.Enq(q, v)
		b.Enq(q, v)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("cons")
		b.Deq(q)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	return m
}

func TestLeftoverSurfacesOverSend(t *testing.T) {
	m := overSendMachine(t)
	ts, err := m.RunFunctional()
	if err != nil {
		t.Fatalf("functional run: %v", err)
	}
	if len(ts.Leftover) != 1 || ts.Leftover[0] != 2 {
		t.Fatalf("Leftover = %v, want [2]", ts.Leftover)
	}
	err = ts.CheckDrained(m)
	if err == nil {
		t.Fatal("CheckDrained = nil for an over-sent pipeline")
	}
	for _, want := range []string{"queue 0", "overfed", "2 leftover"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("CheckDrained error missing %q: %v", want, err)
		}
	}
}

func TestCheckDrainedCleanPipeline(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	q := m.AddQueue("balanced")
	{
		b := isa.NewBuilder("prod")
		v := b.Const(7)
		b.Enq(q, v)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("cons")
		b.Deq(q)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	ts, err := m.RunFunctional()
	if err != nil {
		t.Fatalf("functional run: %v", err)
	}
	if err := ts.CheckDrained(m); err != nil {
		t.Errorf("CheckDrained on a drained pipeline: %v", err)
	}
}
