package sim

import "time"

// interruptCheckPeriod amortizes the cooperative cancellation poll in the
// timing engine's cycle loop: Machine.Ctx and Machine.WallDeadline are
// checked at most once every this many simulated cycles (the functional
// phase checks once per scheduler round instead, which bounds the poll to
// one per len(threads)*funcQuantum instructions). The period trades abort
// latency against poll overhead; at 4096 cycles both are negligible.
const interruptCheckPeriod = 4096

// interruptible reports whether the machine has any cooperative abort
// source configured. Loops guard their amortized polls on this so a plain
// run (nil Ctx, zero WallDeadline) pays one boolean test per check site
// and stays bit-identical.
func (m *Machine) interruptible() bool {
	return m.Ctx != nil || !m.WallDeadline.IsZero()
}

// checkInterrupt polls the cooperative abort sources: the context first
// (so an explicit cancel wins over a coincident wall overrun), then the
// wall-clock deadline. phase and cycles annotate the returned error.
func (m *Machine) checkInterrupt(phase string, cycles uint64) error {
	if m.Ctx != nil {
		if err := m.Ctx.Err(); err != nil {
			return &CancelledError{Phase: phase, Cycles: cycles, Cause: err}
		}
	}
	if !m.WallDeadline.IsZero() && time.Now().After(m.WallDeadline) {
		return &WallBudgetError{Phase: phase, Cycles: cycles}
	}
	return nil
}
