package sim

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// TestPeekDoesNotConsume: peek observes the head without popping; a
// following deq gets the same value.
func TestPeekDoesNotConsume(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	out := m.Space.Alloc("out", mem.I64, 3)
	so := m.AddSlot("out", out)
	q := m.AddQueue("q")
	{
		b := isa.NewBuilder("p")
		r := b.Const(42)
		b.Enq(q, r)
		r2 := b.Const(43)
		b.Enq(q, r2)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("c")
		i0 := b.Const(0)
		i1 := b.Const(1)
		i2 := b.Const(2)
		pk := b.Peek(q)
		b.Store(so, i0, pk)
		d1 := b.Deq(q)
		b.Store(so, i1, d1)
		d2 := b.Deq(q)
		b.Store(so, i2, d2)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got := out.Ints()
	if got[0] != 42 || got[1] != 42 || got[2] != 43 {
		t.Errorf("peek/deq sequence: %v", got)
	}
}

// TestMultiCoreQueues: queues span cores (Pipette's inter-core
// communication); stages on different cores still pipeline.
func TestMultiCoreQueues(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(2))
	out := m.Space.Alloc("out", mem.I64, 1)
	so := m.AddSlot("out", out)
	q := m.AddQueue("x")
	const n = 200
	{
		b := isa.NewBuilder("p")
		i := b.Const(0)
		nn := b.Const(n)
		b.Label("l")
		b.Enq(q, i)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		c := b.Op2(isa.OpICmpLT, i, nn)
		b.Br(c, "l")
		b.EnqCtrl(q, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("c")
		acc := b.Const(0)
		zero := b.Const(0)
		b.Label("l")
		v := b.Deq(q)
		t1 := b.IsCtrl(v)
		b.Br(t1, "e")
		b.Op2To(acc, isa.OpIAdd, acc, v)
		b.Jmp("l")
		b.Label("e")
		b.Store(so, zero, acc)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 1, Thread: 0}})
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Ints()[0], int64(n*(n-1)/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if len(st.PerCore) != 2 {
		t.Errorf("expected 2 per-core breakdowns")
	}
}

// TestSMTSharesIssueWidth: four independent threads on one core cannot
// exceed the core's issue width in aggregate.
func TestSMTSharesIssueWidth(t *testing.T) {
	cfg := arch.DefaultConfig(1)
	m := NewMachine(cfg)
	out := m.Space.Alloc("out", mem.I64, 4)
	so := m.AddSlot("out", out)
	const iters = 2000
	for th := 0; th < 4; th++ {
		b := isa.NewBuilder("w")
		i := b.Const(0)
		nn := b.Const(iters)
		acc := b.Const(0)
		slot := b.Const(int64(th))
		b.Label("l")
		// 4 dependent ALU ops per iteration
		acc2 := b.OpImm(isa.OpIAddImm, acc, 1)
		acc3 := b.OpImm(isa.OpIMulImm, acc2, 1)
		b.MovTo(acc, acc3)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		c := b.Op2(isa.OpICmpLT, i, nn)
		b.Br(c, "l")
		b.Store(so, slot, acc)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: th}})
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for th := 0; th < 4; th++ {
		if out.Ints()[th] != iters {
			t.Errorf("thread %d acc = %d", th, out.Ints()[th])
		}
	}
	if st.IPC() > float64(cfg.IssueWidth) {
		t.Errorf("aggregate IPC %.2f exceeds issue width %d", st.IPC(), cfg.IssueWidth)
	}
	// Four threads must outperform one thread running 4x the work serially
	// (the SMT latency-hiding the paper's baseline architecture relies on).
	if st.IPC() < 1.5 {
		t.Errorf("SMT should overlap independent threads: IPC %.2f", st.IPC())
	}
}
