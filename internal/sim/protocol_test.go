package sim

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// TestControlValuesPassThroughRAChain checks the property the compiler's
// global control-code scheme depends on: control values entering a chained
// RA pipeline come out the far end, in order, between data groups.
func TestControlValuesPassThroughRAChain(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	idx := m.Space.AllocInts("idx", []int64{2, 0, 1})
	tbl := m.Space.AllocInts("tbl", []int64{100, 200, 300})
	sIdx := m.AddSlot("idx", idx)
	sTbl := m.AddSlot("tbl", tbl)
	q0 := m.AddQueue("in")
	q1 := m.AddQueue("mid")
	q2 := m.AddQueue("out")
	// Chain: INDIRECT over idx, then INDIRECT over tbl.
	m.AddRA(arch.RASpec{Name: "a", Mode: arch.RAIndirect, Slot: sIdx, InQ: q0, OutQ: q1})
	m.AddRA(arch.RASpec{Name: "b", Mode: arch.RAIndirect, Slot: sTbl, InQ: q1, OutQ: q2})
	{
		b := isa.NewBuilder("prod")
		r0 := b.Const(0)
		r1 := b.Const(1)
		b.Enq(q0, r0)
		b.EnqCtrl(q0, 7)
		b.Enq(q0, r1)
		b.EnqCtrl(q0, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	out := m.Space.Alloc("res", mem.I64, 4)
	sOut := m.AddSlot("res", out)
	{
		b := isa.NewBuilder("cons")
		i := b.Const(0)
		b.Label("loop")
		v := b.Deq(q2)
		c := b.IsCtrl(v)
		b.Br(c, "ctrl")
		b.Store(sOut, i, v)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		b.Jmp("loop")
		b.Label("ctrl")
		code := b.CtrlCode(v)
		b.Store(sOut, i, code)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		four := b.Const(4)
		d := b.Op2(isa.OpICmpLT, i, four)
		b.Br(d, "loop")
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got := out.Ints()
	// idx[0]=2 -> tbl[2]=300; ctrl 7; idx[1]=0 -> tbl[0]=100; ctrl END.
	want := []int64{300, 7, 100, arch.CtrlEnd}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain output %v, want %v", got, want)
		}
	}
}

// TestScanRAEmitNext checks range scans and the end-of-range marker.
func TestScanRAEmitNext(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	data := m.Space.AllocInts("data", []int64{5, 6, 7, 8})
	sData := m.AddSlot("data", data)
	out := m.Space.Alloc("res", mem.I64, 8)
	sOut := m.AddSlot("res", out)
	qIn := m.AddQueue("in")
	qOut := m.AddQueue("out")
	m.AddRA(arch.RASpec{Name: "scan", Mode: arch.RAScan, Slot: sData,
		InQ: qIn, OutQ: qOut, EmitNext: true, NextCode: 42})
	{
		b := isa.NewBuilder("prod")
		r0 := b.Const(1)
		r1 := b.Const(3)
		b.Enq(qIn, r0) // scan [1, 3)
		b.Enq(qIn, r1)
		r2 := b.Const(3)
		r3 := b.Const(3)
		b.Enq(qIn, r2) // empty scan [3, 3): just the marker
		b.Enq(qIn, r3)
		b.EnqCtrl(qIn, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("cons")
		i := b.Const(0)
		n := b.Const(5)
		b.Label("loop")
		v := b.Deq(qOut)
		c := b.IsCtrl(v)
		code := b.CtrlCode(v)
		_ = code
		b.BrZ(c, "data")
		cc := b.CtrlCode(v)
		b.Store(sOut, i, cc)
		b.Jmp("next")
		b.Label("data")
		b.Store(sOut, i, v)
		b.Label("next")
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		d := b.Op2(isa.OpICmpLT, i, n)
		b.Br(d, "loop")
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got := out.Ints()[:5]
	want := []int64{6, 7, 42, 42, arch.CtrlEnd}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan output %v, want %v", got, want)
		}
	}
}

// TestHandlerRedirect checks control-value handler semantics: the handler
// receives the code, the consuming dequeue is squashed, and data flow
// resumes at the handler's target.
func TestHandlerRedirect(t *testing.T) {
	m := NewMachine(arch.DefaultConfig(1))
	out := m.Space.Alloc("res", mem.I64, 4)
	sOut := m.AddSlot("res", out)
	q := m.AddQueue("q")
	{
		b := isa.NewBuilder("prod")
		r := b.Const(11)
		b.Enq(q, r)
		b.EnqCtrl(q, 9)
		r2 := b.Const(22)
		b.Enq(q, r2)
		b.EnqCtrl(q, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("cons")
		i := b.Const(0)
		b.SetHandler(q, "handler")
		b.Label("loop")
		v := b.Deq(q)
		b.Store(sOut, i, v)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		b.Jmp("loop")
		b.Label("handler")
		code := b.HandlerVal()
		b.Store(sOut, i, code)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		end := b.Const(arch.CtrlEnd)
		d := b.Op2(isa.OpICmpEQ, code, end)
		b.BrZ(d, "loop")
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := out.Ints()
	want := []int64{11, 9, 22, arch.CtrlEnd}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handler output %v, want %v", got, want)
		}
	}
	if st.HandlerFires != 2 {
		t.Errorf("handler fires: %d, want 2", st.HandlerFires)
	}
}

// TestQueueBackpressure checks that bounded timing queues throttle a fast
// producer without deadlock and without functional effect.
func TestQueueBackpressure(t *testing.T) {
	cfg := arch.DefaultConfig(1)
	cfg.QueueDepth = 2
	m := NewMachine(cfg)
	out := m.Space.Alloc("res", mem.I64, 1)
	sOut := m.AddSlot("res", out)
	q := m.AddQueue("q")
	const n = 500
	{
		b := isa.NewBuilder("prod")
		i := b.Const(0)
		nn := b.Const(n)
		b.Label("loop")
		b.Enq(q, i)
		b.OpImmTo(i, isa.OpIAddImm, i, 1)
		c := b.Op2(isa.OpICmpLT, i, nn)
		b.Br(c, "loop")
		b.EnqCtrl(q, arch.CtrlEnd)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 0}})
	}
	{
		b := isa.NewBuilder("cons")
		acc := b.Const(0)
		zero := b.Const(0)
		b.Label("loop")
		v := b.Deq(q)
		c := b.IsCtrl(v)
		b.Br(c, "end")
		b.Op2To(acc, isa.OpIAdd, acc, v)
		b.Jmp("loop")
		b.Label("end")
		b.Store(sOut, zero, acc)
		b.Halt()
		m.AddStage(&Stage{Prog: b.MustBuild(), Thread: arch.ThreadID{Core: 0, Thread: 1}})
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Ints()[0], int64(n*(n-1)/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if st.TotalBreakdown().Queue == 0 {
		t.Error("a depth-2 queue must cause queue stalls")
	}
}
