// Package sim implements the cycle-level Pipette machine simulator used to
// evaluate Phloem. Simulation is two-phase:
//
//  1. A functional phase (func.go) co-executes all stage programs with a
//     deterministic scheduler, computing every value, memory address, branch
//     outcome, and queue token. It verifies program correctness and emits
//     per-thread and per-RA traces.
//  2. A timing phase (timing.go) replays the traces on a model of SMT
//     out-of-order cores with architectural queues, reference accelerators,
//     control-value handlers, a branch predictor, and the cache hierarchy,
//     producing cycle counts, stall breakdowns (Fig. 10), and energy (Fig. 11).
//
// The two-phase structure keeps values independent of timing. That is sound
// because pipelines are validated to give each queue a single consumer, making
// per-queue token order deterministic; cross-replica merge queues (Sec. IV-C)
// use the deterministic functional schedule and are replayed approximately.
package sim

import (
	"context"
	"fmt"
	"time"

	"phloem/internal/arch"
	"phloem/internal/isa"
	"phloem/internal/mem"
)

// RegInit sets an initial register value for a stage (scalar parameters).
type RegInit struct {
	Reg isa.Reg
	Val Value
}

// Stage is one pipeline stage bound to a hardware thread.
type Stage struct {
	Prog   *isa.Program
	Thread arch.ThreadID
	Init   []RegInit
}

// Machine is a complete simulation instance: configuration, memory image,
// array slots, queues, reference accelerators, and stage programs.
type Machine struct {
	Cfg   arch.Config
	Space *mem.Space

	// SlotNames and Slots define the array-slot table shared by all stages.
	// OpSwapSlots exchanges two bindings machine-wide.
	SlotNames []string
	Slots     []*mem.Array

	Queues []arch.QueueSpec
	RAs    []arch.RASpec
	Stages []*Stage

	// FanOuts lists hardware multicast specs: every data value (OpEnq)
	// pushed to Src is also delivered to each Dst queue in the same order.
	// Control-tagged entries (OpEnqCtrl/OpEnqCtrlV) are not duplicated.
	// In the timing phase a fanned enqueue needs space in Src and all Dsts
	// before it issues, and counts one physical queue write per queue.
	FanOuts []arch.FanOut

	// MaxTraceEntries caps functional-trace growth (guards against runaway
	// or livelocked programs). Zero means the default of 64M entries;
	// exceeding the cap fails the run with *TraceLimitError.
	MaxTraceEntries int

	// Faults, when non-nil, injects deterministic timing-only perturbations
	// into the timing phase (see TimingFaults). Functional results are
	// unaffected by construction.
	Faults *TimingFaults

	// Probe, when non-nil, observes timing-phase events (see Probe). A nil
	// probe costs one pointer test per instrumentation point and leaves
	// Stats bit-identical; probes never influence timing decisions.
	Probe Probe

	// Ctx, when non-nil, is polled cooperatively at amortized intervals
	// during both simulation phases; once cancelled, Run aborts with a
	// *CancelledError. A nil (or never-cancelled) context leaves behavior
	// and Stats bit-identical: the poll reads wall state only and never
	// influences simulation decisions.
	Ctx context.Context

	// WallDeadline, when nonzero, aborts the run with a *WallBudgetError
	// once wall-clock time passes it — the wall analogue of
	// Cfg.CycleBudget. Polled on the same amortized schedule as Ctx.
	WallDeadline time.Time
}

// NewMachine creates a machine with the given configuration and an empty
// address space.
func NewMachine(cfg arch.Config) *Machine {
	return &Machine{Cfg: cfg, Space: mem.NewSpace()}
}

// AddSlot registers an array slot and returns its index.
func (m *Machine) AddSlot(name string, a *mem.Array) int {
	m.SlotNames = append(m.SlotNames, name)
	m.Slots = append(m.Slots, a)
	return len(m.Slots) - 1
}

// BindSlot rebinds an existing slot (e.g., between Run calls).
func (m *Machine) BindSlot(slot int, a *mem.Array) {
	m.Slots[slot] = a
}

// SlotIndex returns the slot with the given name, or -1.
func (m *Machine) SlotIndex(name string) int {
	for i, n := range m.SlotNames {
		if n == name {
			return i
		}
	}
	return -1
}

// AddQueue registers a queue and returns its id.
func (m *Machine) AddQueue(name string) int {
	m.Queues = append(m.Queues, arch.QueueSpec{Name: name})
	return len(m.Queues) - 1
}

// AddRA registers a reference accelerator.
func (m *Machine) AddRA(spec arch.RASpec) {
	m.RAs = append(m.RAs, spec)
}

// AddStage registers a stage program on a hardware thread.
func (m *Machine) AddStage(s *Stage) {
	m.Stages = append(m.Stages, s)
}

// Validate checks the machine for structural problems: programs well-formed,
// thread assignments unique and in range, every queue with exactly one
// consumer, RA endpoints sane, and Pipette resource limits respected.
func (m *Machine) Validate() error {
	if err := m.Cfg.Validate(); err != nil {
		return err
	}
	if len(m.Queues) > m.Cfg.MaxQueues*m.Cfg.Cores {
		return fmt.Errorf("sim: %d queues exceed limit of %d per core x %d cores",
			len(m.Queues), m.Cfg.MaxQueues, m.Cfg.Cores)
	}
	if len(m.RAs) > m.Cfg.MaxRAs*m.Cfg.Cores {
		return fmt.Errorf("sim: %d RAs exceed limit of %d per core x %d cores",
			len(m.RAs), m.Cfg.MaxRAs, m.Cfg.Cores)
	}
	seen := map[arch.ThreadID]bool{}
	consumers := make(map[int][]string) // queue -> consumer names
	producers := make(map[int][]string)
	for _, st := range m.Stages {
		if st.Prog == nil {
			return fmt.Errorf("sim: stage without program")
		}
		if err := st.Prog.Validate(len(m.Queues), len(m.Slots)); err != nil {
			return err
		}
		t := st.Thread
		if t.Core < 0 || t.Core >= m.Cfg.Cores || t.Thread < 0 || t.Thread >= m.Cfg.ThreadsPerCore {
			return fmt.Errorf("sim: stage %q on invalid thread %v", st.Prog.Name, t)
		}
		if seen[t] {
			return fmt.Errorf("sim: thread %v assigned twice", t)
		}
		seen[t] = true
		for _, in := range st.Prog.Instrs {
			switch in.Op {
			case isa.OpDeq, isa.OpPeek:
				addOnce(consumers, in.Q, st.Prog.Name)
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				addOnce(producers, in.Q, st.Prog.Name)
			}
		}
	}
	for _, ra := range m.RAs {
		if ra.InQ < 0 || ra.InQ >= len(m.Queues) || ra.OutQ < 0 || ra.OutQ >= len(m.Queues) {
			return fmt.Errorf("sim: RA %q has invalid queue endpoints", ra.Name)
		}
		if ra.Slot < 0 || ra.Slot >= len(m.Slots) {
			return fmt.Errorf("sim: RA %q has invalid slot %d", ra.Name, ra.Slot)
		}
		addOnce(consumers, ra.InQ, "ra:"+ra.Name)
		addOnce(producers, ra.OutQ, "ra:"+ra.Name)
	}
	for q := range m.Queues {
		if n := len(consumers[q]); n > 1 {
			return fmt.Errorf("sim: queue %d (%s) has %d consumers (%v); exactly one is required",
				q, m.Queues[q].Name, n, consumers[q])
		}
	}
	_ = producers // multiple producers are allowed (replica distribution)

	// Fan-out specs: endpoints in range, no duplicate roles, no chains, and
	// no RA output queues (RA deliveries bypass the enqueue path that fans).
	raOut := map[int]string{}
	for _, ra := range m.RAs {
		raOut[ra.OutQ] = ra.Name
	}
	srcSeen := map[int]bool{}
	dstSeen := map[int]bool{}
	for _, f := range m.FanOuts {
		if f.Src < 0 || f.Src >= len(m.Queues) {
			return fmt.Errorf("sim: fanout src q%d out of range", f.Src)
		}
		if len(f.Dst) == 0 {
			return fmt.Errorf("sim: fanout from q%d has no destinations", f.Src)
		}
		if srcSeen[f.Src] {
			return fmt.Errorf("sim: queue %d is the source of two fanouts", f.Src)
		}
		srcSeen[f.Src] = true
		if name, ok := raOut[f.Src]; ok {
			return fmt.Errorf("sim: fanout src q%d is the output of RA %q", f.Src, name)
		}
		for _, d := range f.Dst {
			if d < 0 || d >= len(m.Queues) {
				return fmt.Errorf("sim: fanout dst q%d out of range", d)
			}
			if d == f.Src {
				return fmt.Errorf("sim: fanout from q%d to itself", d)
			}
			if dstSeen[d] {
				return fmt.Errorf("sim: queue %d is the destination of two fanouts", d)
			}
			dstSeen[d] = true
			if name, ok := raOut[d]; ok {
				return fmt.Errorf("sim: fanout dst q%d is the output of RA %q", d, name)
			}
		}
	}
	for _, f := range m.FanOuts {
		if dstSeen[f.Src] {
			return fmt.Errorf("sim: queue %d is both a fanout source and destination (chains are not allowed)", f.Src)
		}
		for _, d := range f.Dst {
			if srcSeen[d] {
				return fmt.Errorf("sim: queue %d is both a fanout destination and source (chains are not allowed)", d)
			}
		}
	}
	return nil
}

func addOnce(m map[int][]string, q int, name string) {
	for _, n := range m[q] {
		if n == name {
			return
		}
	}
	m[q] = append(m[q], name)
}

// queueDepth resolves a queue's capacity.
func (m *Machine) queueDepth(q int) int {
	return m.Queues[q].Capacity(m.Cfg.QueueDepth)
}
