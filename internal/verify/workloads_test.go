package verify_test

// Every pipeline the project can build — serial, every pass-ablation level,
// autotuned defaults, hand-pipelined, data-parallel, replicated, and all
// Taco-emitted kernels — must verify without errors. Warnings are also
// rejected here: the generated pipelines are expected to be pristine, and a
// new warning on them means either a pass regressed or a rule needs a
// documented exemption.

import (
	"testing"

	"phloem/internal/core"
	"phloem/internal/lower"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/source"
	"phloem/internal/taco"
	"phloem/internal/verify"
	"phloem/internal/workloads"
)

func mustVerifyClean(t *testing.T, what string, pl *pipeline.Pipeline) {
	t.Helper()
	if rep := verify.Check(pl); len(rep.Diags) != 0 {
		t.Errorf("%s: verifier not clean:\n%s", what, rep.String())
	}
}

func compileVariant(t *testing.T, src string, po passes.Options, ablate bool) *pipeline.Pipeline {
	t.Helper()
	res, err := core.CompileSource(src, core.Options{Passes: po, EnableAblation: ablate})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Pipeline
}

var passConfigs = []struct {
	name   string
	po     passes.Options
	ablate bool
}{
	{"none", passes.Options{}, true},
	{"recompute", passes.Options{Recompute: true}, true},
	{"ctrl", passes.Options{Recompute: true, CtrlValues: true}, true},
	{"dce", passes.Options{Recompute: true, CtrlValues: true, InterstageDCE: true, Handlers: true}, true},
	{"default", passes.Default(), false},
}

func TestAllWorkloadVariantsVerifyClean(t *testing.T) {
	for _, bm := range workloads.Benchmarks(workloads.ScaleTest) {
		for _, pc := range passConfigs {
			pl := compileVariant(t, bm.SerialSource, pc.po, pc.ablate)
			mustVerifyClean(t, bm.Name+"/"+pc.name, pl)
		}
		fn, err := source.Parse(bm.SerialSource)
		if err != nil {
			t.Fatal(err)
		}
		if err := source.Check(fn); err != nil {
			t.Fatal(err)
		}
		p, err := lower.FromAST(fn)
		if err != nil {
			t.Fatal(err)
		}
		mustVerifyClean(t, bm.Name+"/serial", pipeline.NewSerial(p))
		if bm.Manual != nil {
			pl, err := bm.Manual()
			if err != nil {
				t.Fatalf("manual %s: %v", bm.Name, err)
			}
			mustVerifyClean(t, bm.Name+"/manual", pl)
		}
		if bm.DPSource != "" {
			dp, err := workloads.BuildDataParallel(bm.DPSource, 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			mustVerifyClean(t, bm.Name+"/dp", dp)
		}
	}
}

func TestReplicatedPipelineVerifiesClean(t *testing.T) {
	bfs, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileSource(bfs.SerialSource, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	repl, err := pipeline.Replicate(res.Pipeline, 3, []string{"nodes", "edges"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustVerifyClean(t, "bfs/replicated", repl)
}

func TestTacoKernelsVerifyClean(t *testing.T) {
	for _, k := range taco.Kernels() {
		src, err := taco.Emit(k)
		if err != nil {
			t.Fatal(err)
		}
		mustVerifyClean(t, "taco/"+string(k), compileVariant(t, src, passes.Default(), false))
		dpSrc, err := taco.EmitDP(k)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := workloads.BuildDataParallel(dpSrc, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		mustVerifyClean(t, "taco-dp/"+string(k), dp)
	}
}
