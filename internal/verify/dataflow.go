package verify

import (
	"fmt"

	"phloem/internal/ir"
	"phloem/internal/isa"
)

// checkDataflow implements the D rules per stage over the flat ISA:
//
//	D0 (error):   the stage fails to lower or is structurally invalid
//	              (emitted while building the model).
//	D1 (error):   a reachable instruction reads a register that no
//	              instruction in the stage ever writes and that is not a
//	              scalar parameter — it can only ever hold zero.
//	D2 (error):   int/float kind confusion: a float ALU op reading an int
//	              variable (or vice versa), a non-integer array index, or a
//	              load/store whose value register disagrees with the array
//	              slot's kind. Only declared variables are checked; compiler
//	              temporaries and hoisted constants are exempt (bit-pattern
//	              tricks like integer 0 for float 0.0 are legitimate).
//	D4 (warning): unreachable instructions (dead code a pass left behind).
//	D5 (error):   no halt is reachable — the stage can never finish, so the
//	              whole-machine run never terminates.
//	D6 (warning): a queue is peeked but never dequeued in the stage; peek
//	              does not pop, so the stage is likely spinning.
func (m *model) checkDataflow() {
	for i, st := range m.pl.Stages {
		if m.progs[i] == nil {
			continue
		}
		m.checkStageDataflow(st.Name, m.progs[i])
	}
}

func (m *model) checkStageDataflow(name string, prog *isa.Program) {
	vars := m.pl.Prog.Vars
	reach := prog.Reachable()
	defs := make([]int, prog.NumRegs)
	for _, in := range prog.Instrs {
		if d := in.Writes(); d != isa.NoReg {
			defs[d]++
		}
	}

	regName := func(r isa.Reg) string {
		if int(r) < len(vars) {
			return fmt.Sprintf("r%d (var %q)", r, vars[r].Name)
		}
		return fmt.Sprintf("r%d", r)
	}
	// kindOf resolves the declared kind of a variable register; compiler
	// temporaries (registers beyond the variable table) are unconstrained.
	kindOf := func(r isa.Reg) (ir.Kind, bool) {
		if r != isa.NoReg && int(r) < len(vars) {
			return vars[r].Kind, true
		}
		return 0, false
	}
	var curPC int
	expect := func(r isa.Reg, want ir.Kind, role string) {
		if k, ok := kindOf(r); ok && k != want {
			m.diag("D2", SevError, name, -1, curPC, "%s: %s %s has kind %s, want %s",
				prog.Instrs[curPC].Op, role, regName(r), k, want)
		}
	}

	reportedD1 := map[isa.Reg]bool{}
	haltReachable := false
	for pc, in := range prog.Instrs {
		if !reach[pc] {
			continue
		}
		curPC = pc
		if in.Op == isa.OpHalt {
			haltReachable = true
		}

		a, b := in.Reads()
		for _, r := range [2]isa.Reg{a, b} {
			if r == isa.NoReg || defs[r] > 0 || reportedD1[r] {
				continue
			}
			if int(r) < len(vars) && vars[r].Param {
				continue // initialized externally from scalar bindings
			}
			reportedD1[r] = true
			m.diag("D1", SevError, name, -1, pc,
				"register %s is read but never written in this stage", regName(r))
		}

		switch in.Op {
		case isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIDiv, isa.OpIRem,
			isa.OpIAnd, isa.OpIOr, isa.OpIXor, isa.OpIShl, isa.OpIShr,
			isa.OpICmpEQ, isa.OpICmpNE, isa.OpICmpLT, isa.OpICmpLE,
			isa.OpICmpGT, isa.OpICmpGE:
			expect(in.A, ir.KInt, "left operand")
			expect(in.B, ir.KInt, "right operand")
			expect(in.Dst, ir.KInt, "destination")
		case isa.OpIAddImm, isa.OpIMulImm, isa.OpIAndImm, isa.OpIShrImm:
			expect(in.A, ir.KInt, "operand")
			expect(in.Dst, ir.KInt, "destination")
		case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
			expect(in.A, ir.KFloat, "left operand")
			expect(in.B, ir.KFloat, "right operand")
			expect(in.Dst, ir.KFloat, "destination")
		case isa.OpFCmpEQ, isa.OpFCmpNE, isa.OpFCmpLT, isa.OpFCmpLE,
			isa.OpFCmpGT, isa.OpFCmpGE:
			expect(in.A, ir.KFloat, "left operand")
			expect(in.B, ir.KFloat, "right operand")
			expect(in.Dst, ir.KInt, "destination")
		case isa.OpFNeg, isa.OpFAbs:
			expect(in.A, ir.KFloat, "operand")
			expect(in.Dst, ir.KFloat, "destination")
		case isa.OpI2F:
			expect(in.A, ir.KInt, "operand")
			expect(in.Dst, ir.KFloat, "destination")
		case isa.OpF2I:
			expect(in.A, ir.KFloat, "operand")
			expect(in.Dst, ir.KInt, "destination")
		case isa.OpLoad:
			expect(in.A, ir.KInt, "index")
			expect(in.Dst, m.pl.Prog.Slots[in.Slot].Kind, "destination")
		case isa.OpStore:
			expect(in.A, ir.KInt, "index")
			expect(in.B, m.pl.Prog.Slots[in.Slot].Kind, "stored value")
		case isa.OpPrefetch:
			expect(in.A, ir.KInt, "index")
		case isa.OpBr, isa.OpBrZ:
			expect(in.A, ir.KInt, "condition")
		}
	}

	if !haltReachable {
		m.diag("D5", SevError, name, -1, -1, "no halt is reachable; the stage can never finish")
	}

	// D4: report unreachable code as contiguous runs to keep noise down.
	for pc := 0; pc < len(prog.Instrs); {
		if reach[pc] {
			pc++
			continue
		}
		end := pc
		for end+1 < len(prog.Instrs) && !reach[end+1] {
			end++
		}
		if pc == end {
			m.diag("D4", SevWarning, name, -1, pc, "instruction is unreachable")
		} else {
			m.diag("D4", SevWarning, name, -1, pc, "instructions %d-%d are unreachable", pc, end)
		}
		pc = end + 1
	}

	qo := collectQueueOps(prog)
	peeked := map[int]bool{}
	for q := range qo.peek {
		peeked[q] = true
	}
	for _, q := range sortedKeys(peeked) {
		if len(qo.deq[q]) == 0 {
			m.diag("D6", SevWarning, name, q, qo.peek[q][0],
				"queue is peeked but never dequeued in this stage")
		}
	}
}
