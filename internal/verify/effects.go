package verify

// Memory-effects cross-check (E* rules): per-entity MOD/REF summaries over
// each stage's flattened ISA program, compared across stages and RAs. The
// compiler's race rule (Fig. 4) guarantees a compiled pipeline never splits
// conflicting accesses across entities; these rules re-derive that property
// from the final ISA so hand-built or mutated pipelines are caught too.
//
//   - E1 two entities write the same slot in the same barrier epoch
//   - E2 one stage writes a slot another stage reads in the same epoch
//   - E3 a stage writes a slot an RA stream-reads in the same epoch (the RA
//     may run arbitrarily far ahead of the writing stage)
//   - E4 writes to distinct slots the frontend could not prove disjoint
//     (Prog.Alias) land in different entities in the same epoch
//
// Epochs are attributed textually: an access's epoch is the number of
// OpBarrier instructions before its pc. The pass pipeline inserts barriers
// uniformly across stages, so textual epochs align; accesses in different
// epochs are barrier-synchronized and exempt. Three more exemptions keep
// every correctly compiled pipeline silent:
//
//   - slots connected by OpSwapSlots form a swap class; double-buffered
//     accesses are epoch-synchronized by the swap (same-slot rules skip any
//     swapped slot, E4 skips pairs inside one class)
//   - stages with scalar Overrides are data-parallel workers whose arrays
//     are partitioned by those scalars, beyond this slot-level model
//   - OpPrefetch warms a line without an architectural read: not MOD/REF
//
// A nil Prog.Alias means identity aliasing (distinct slots disjoint), which
// is exactly the historical restrict guarantee for hand-built pipelines.

import (
	"phloem/internal/isa"
)

// effAccess records where one entity touches one array slot.
type effAccess struct {
	pc     int          // first pc in the flattened program (-1 for RAs)
	epochs map[int]bool // textual barrier epochs the access can run in
}

func (a *effAccess) add(pc, epoch int) *effAccess {
	if a == nil {
		a = &effAccess{pc: pc, epochs: map[int]bool{}}
	}
	a.epochs[epoch] = true
	return a
}

func sharesEpoch(a, b *effAccess) bool {
	for e := range a.epochs {
		if b.epochs[e] {
			return true
		}
	}
	return false
}

// effEntity is the MOD/REF summary for one stage or RA.
type effEntity struct {
	mods map[int]*effAccess   // slot -> writes
	refs map[int]*effAccess   // slot -> reads
	enqs map[int]map[int]bool // queue -> epochs of enqueues (for RA chaining)
}

func newEffEntity() *effEntity {
	return &effEntity{
		mods: map[int]*effAccess{},
		refs: map[int]*effAccess{},
		enqs: map[int]map[int]bool{},
	}
}

// slotUF is a union-find over slot ids for ISA-level swap classes.
type slotUF struct{ rep []int }

func newSlotUF(n int) *slotUF {
	u := &slotUF{rep: make([]int, n)}
	for i := range u.rep {
		u.rep[i] = i
	}
	return u
}

func (u *slotUF) find(i int) int {
	if u.rep[i] != i {
		u.rep[i] = u.find(u.rep[i])
	}
	return u.rep[i]
}

func (u *slotUF) union(a, b int) { u.rep[u.find(a)] = u.find(b) }

func (u *slotUF) same(a, b int) bool { return u.find(a) == u.find(b) }

func (m *model) checkEffects() {
	ns := m.numStages()
	nSlots := len(m.pl.Prog.Slots)
	ents := make([]*effEntity, ns+len(m.pl.RAs))
	swap := newSlotUF(nSlots)
	swapped := make([]bool, nSlots)

	for i := range m.pl.Stages {
		e := newEffEntity()
		ents[i] = e
		prog := m.progs[i]
		if prog == nil {
			continue // D0 already explains the gap
		}
		epoch := 0
		for pc, in := range prog.Instrs {
			switch in.Op {
			case isa.OpBarrier:
				epoch++
			case isa.OpLoad:
				e.refs[in.Slot] = e.refs[in.Slot].add(pc, epoch)
			case isa.OpStore:
				e.mods[in.Slot] = e.mods[in.Slot].add(pc, epoch)
			case isa.OpSwapSlots:
				swap.union(in.Slot, in.Slot2)
				swapped[in.Slot], swapped[in.Slot2] = true, true
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				eq := e.enqs[in.Q]
				if eq == nil {
					eq = map[int]bool{}
					e.enqs[in.Q] = eq
				}
				eq[epoch] = true
			}
		}
	}

	// An RA reads its slot whenever work arrives on its input queue: its
	// read epochs are the epochs of enqueues into InQ, chained through
	// upstream RAs to a fixpoint.
	raEpochs := make([]map[int]bool, len(m.pl.RAs))
	for r := range raEpochs {
		raEpochs[r] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for r, ra := range m.pl.RAs {
			if ra.InQ < 0 || ra.InQ >= len(m.producers) {
				continue
			}
			for _, p := range m.producers[ra.InQ] {
				var src map[int]bool
				if p < ns {
					src = ents[p].enqs[ra.InQ]
				} else {
					src = raEpochs[p-ns]
				}
				for ep := range src {
					if !raEpochs[r][ep] {
						raEpochs[r][ep] = true
						changed = true
					}
				}
			}
		}
	}
	for r, ra := range m.pl.RAs {
		e := newEffEntity()
		ents[ns+r] = e
		if ra.Slot >= 0 && ra.Slot < nSlots && len(raEpochs[r]) > 0 {
			e.refs[ra.Slot] = &effAccess{pc: -1, epochs: raEpochs[r]}
		}
	}

	entName := func(ent int) string {
		if ent < ns {
			return m.pl.Stages[ent].Name
		}
		return "RA " + m.pl.RAs[ent-ns].Name
	}
	exempt := func(ent int) bool {
		// Data-parallel workers partition their arrays through scalar
		// overrides (thread id, partition base) — beyond this slot model.
		return ent < ns && len(m.pl.Stages[ent].Overrides) > 0
	}

	slotName := func(s int) string { return m.pl.Prog.Slots[s].Name }
	for s := 0; s < nSlots; s++ {
		for x := range ents {
			wa := ents[x].mods[s]
			if wa == nil || exempt(x) {
				continue
			}
			if swapped[s] {
				continue // double-buffered: the swap epoch-synchronizes it
			}
			for y := range ents {
				if y == x || exempt(y) {
					continue
				}
				if wb := ents[y].mods[s]; wb != nil && x < y && sharesEpoch(wa, wb) {
					m.diag("E1", SevError, entName(x), -1, wa.pc,
						"array %q is also written by %s in the same barrier epoch (unsynchronized write/write)",
						slotName(s), entName(y))
				}
				rb := ents[y].refs[s]
				if rb == nil || !sharesEpoch(wa, rb) {
					continue
				}
				if y < ns {
					m.diag("E2", SevError, entName(x), -1, wa.pc,
						"array %q is written here and read by %s in the same barrier epoch without a swap in between (Fig. 4)",
						slotName(s), entName(y))
				} else {
					m.diag("E3", SevError, entName(x), -1, wa.pc,
						"array %q is written here while %s stream-reads it in the same barrier epoch (the accelerator may run ahead)",
						slotName(s), entName(y))
				}
			}
		}
	}

	ai := m.pl.Prog.Alias
	if ai == nil {
		return
	}
	seen := map[[4]int]bool{} // {writer, partner, write slot, partner slot}
	for s := 0; s < nSlots; s++ {
		for t := 0; t < nSlots; t++ {
			if t == s || swap.same(s, t) || !ai.Conflicts(slotName(s), slotName(t)) {
				continue
			}
			for x := range ents {
				wa := ents[x].mods[s]
				if wa == nil || exempt(x) {
					continue
				}
				for y := range ents {
					if y == x || exempt(y) {
						continue
					}
					hit := func(b *effAccess, what string) {
						if b == nil || !sharesEpoch(wa, b) {
							return
						}
						// A write/write pair surfaces from both slot orders;
						// report it once, from the lower-numbered writer.
						if what == "write" && seen[[4]int{y, x, t, s}] {
							return
						}
						key := [4]int{x, y, s, t}
						if seen[key] {
							return
						}
						seen[key] = true
						m.diag("E4", SevError, entName(x), -1, wa.pc,
							"write to %q may alias %s's %s of %q (frontend verdict: %s) in the same barrier epoch",
							slotName(s), entName(y), what, slotName(t), ai.Verdict(slotName(s), slotName(t)))
					}
					hit(ents[y].mods[t], "write")
					hit(ents[y].refs[t], "read")
				}
			}
		}
	}
}
