package verify_test

// Golden-file test of the rendered diagnostic output: one deliberately
// broken pipeline per rule, with the exact "sev [RULE] location: message"
// lines pinned in testdata/diags.golden. Regenerate with
//
//	go test ./internal/verify -run TestGoldenDiagnostics -update
//
// after an intentional message change, and review the diff.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/verify"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenFixtures() []*fx {
	var out []*fx

	q1 := cleanPipe()
	q1.p.Name = "q1"
	q1.stage("q1.consume2", q1.drainLoop(0, q1.slot("out2", ir.KInt))...)
	out = append(out, q1)

	q2 := newFx("q2")
	q2base := q2.slot("base", ir.KInt)
	q2q := q2.pipe.AddQueue("loopback")
	q2.pipe.RAs = append(q2.pipe.RAs, arch.RASpec{
		Name: "ind.self", Mode: arch.RAIndirect, Slot: q2base, InQ: q2q, OutQ: q2q,
	})
	x := q2.v("x", ir.KInt)
	q2.stage("q2.buffer", &ir.Enq{Q: q2q, Val: ir.C(1)}, deq(x, q2q))
	out = append(out, q2)

	q3 := newFx("q3")
	q3out := q3.slot("out", ir.KInt)
	qa := q3.pipe.AddQueue("a2b")
	qb := q3.pipe.AddQueue("b2a")
	a := q3.v("a", ir.KInt)
	at := q3.v("at", ir.KInt)
	q3.stage("q3.a",
		&ir.Label{Name: "probe"},
		deq(a, qb),
		isctrl(at, ir.V(a)),
		&ir.If{Cond: ir.V(at), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Enq{Q: qa, Val: ir.V(a)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	)
	bv := q3.v("b", ir.KInt)
	bt := q3.v("bt", ir.KInt)
	q3.stage("q3.b",
		&ir.Label{Name: "probe"},
		deq(bv, qa),
		isctrl(bt, ir.V(bv)),
		&ir.If{Cond: ir.V(bt), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Store{Slot: q3out, Idx: ir.V(bv), Val: ir.V(bv)},
		&ir.Enq{Q: qb, Val: ir.V(bv)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	)
	out = append(out, q3)

	c1 := newFx("c1")
	c1out := c1.slot("out", ir.KInt)
	c1q := c1.pipe.AddQueue("data")
	c1.stage("c1.produce", c1.countedEnqs(c1q)...)
	c1x := c1.v("x", ir.KInt)
	c1i := c1.v("i", ir.KInt)
	c1c := c1.v("cond", ir.KInt)
	c1.stage("c1.consume",
		mov(c1i, ir.C(0)),
		&ir.Loop{ID: 91,
			Pre:  []ir.Stmt{bin(c1c, ir.OpLT, ir.V(c1i), ir.C(5))},
			Cond: ir.V(c1c),
			Body: []ir.Stmt{
				deq(c1x, c1q),
				&ir.Store{Slot: c1out, Idx: ir.V(c1x), Val: ir.V(c1x)},
				bin(c1i, ir.OpAdd, ir.V(c1i), ir.C(1)),
			},
		},
	)
	out = append(out, c1)

	c2 := newFx("c2")
	c2out := c2.slot("out", ir.KInt)
	c2q := c2.pipe.AddQueue("data")
	c2body := append([]ir.Stmt{&ir.EnqCtrl{Q: c2q, Code: fixtureCode}}, c2.countedEnqs(c2q)...)
	c2.stage("c2.produce", c2body...)
	c2.stage("c2.consume", c2.dispatchConsumer(c2q, c2out, fixtureCode+1)...)
	out = append(out, c2)

	d0 := newFx("d0")
	d0.stage("d0.broken", &ir.Goto{Name: "nowhere"})
	out = append(out, d0)

	d1 := newFx("d1")
	d1out := d1.slot("out", ir.KInt)
	u := d1.v("u", ir.KInt)
	y := d1.v("y", ir.KInt)
	d1.stage("d1.undef",
		bin(y, ir.OpAdd, ir.V(u), ir.C(1)),
		&ir.Store{Slot: d1out, Idx: ir.C(0), Val: ir.V(y)},
	)
	out = append(out, d1)

	d2 := newFx("d2")
	d2out := d2.slot("out", ir.KFloat)
	fv := d2.v("fv", ir.KFloat)
	d2y := d2.v("y", ir.KInt)
	d2.stage("d2.kinds",
		mov(fv, ir.C(0)),
		bin(d2y, ir.OpAdd, ir.V(fv), ir.C(1)),
		&ir.Store{Slot: d2out, Idx: ir.V(d2y), Val: ir.V(fv)},
	)
	out = append(out, d2)

	d4 := newFx("d4")
	d4out := d4.slot("out", ir.KInt)
	d4.stage("d4.dead",
		&ir.Goto{Name: "end"},
		&ir.Store{Slot: d4out, Idx: ir.C(0), Val: ir.C(1)},
		&ir.Label{Name: "end"},
	)
	out = append(out, d4)

	d5 := newFx("d5")
	d5.stage("d5.spin", &ir.Label{Name: "top"}, &ir.Goto{Name: "top"})
	out = append(out, d5)

	l1 := cleanPipe()
	l1.p.Name = "l1"
	l1.pipe.AddQueue("orphan")
	out = append(out, l1)

	l2 := newFx("l2")
	l2q := l2.pipe.AddQueue("data")
	l2.stage("l2.produce", l2.countedEnqs(l2q)...)
	out = append(out, l2)

	l3 := newFx("l3")
	l3out := l3.slot("out", ir.KInt)
	l3q := l3.pipe.AddQueue("data")
	l3.stage("l3.consume", l3.drainLoop(l3q, l3out)...)
	out = append(out, l3)

	l4 := newFx("l4")
	l4out := l4.slot("out", ir.KInt)
	l4q := l4.pipe.AddQueue("data")
	l4f := l4.v("fv", ir.KFloat)
	l4.stage("l4.produce",
		&ir.Assign{Dst: l4f, Src: &ir.RvalUn{Op: ir.OpMov, Float: true, A: ir.C(0)}},
		&ir.Enq{Q: l4q, Val: ir.V(l4f)},
		&ir.EnqCtrl{Q: l4q, Code: arch.CtrlEnd},
	)
	l4.stage("l4.consume", l4.drainLoop(l4q, l4out)...)
	out = append(out, l4)

	e1 := newFx("e1")
	e1out := e1.slot("out", ir.KInt)
	e1.stage("e1.w1", store(e1out, 0, 1))
	e1.stage("e1.w2", store(e1out, 1, 2))
	out = append(out, e1)

	e2 := newFx("e2")
	e2out := e2.slot("out", ir.KInt)
	e2sink := e2.slot("sink", ir.KInt)
	e2x := e2.v("x", ir.KInt)
	e2.stage("e2.writer", store(e2out, 0, 1))
	e2.stage("e2.reader", load(e2x, e2out, 0),
		&ir.Store{Slot: e2sink, Idx: ir.C(0), Val: ir.V(e2x)})
	out = append(out, e2)

	e3 := newFx("e3")
	e3base := e3.slot("base", ir.KInt)
	e3out := e3.slot("out2", ir.KInt)
	e3qin := e3.pipe.AddQueue("idx")
	e3qout := e3.pipe.AddQueue("vals")
	e3.pipe.RAs = append(e3.pipe.RAs, arch.RASpec{
		Name: "ind.base", Mode: arch.RAIndirect, Slot: e3base, InQ: e3qin, OutQ: e3qout,
	})
	e3.stage("e3.feed",
		store(e3base, 0, 7),
		&ir.Enq{Q: e3qin, Val: ir.C(0)},
		&ir.EnqCtrl{Q: e3qin, Code: arch.CtrlEnd},
	)
	e3.stage("e3.drain", e3.drainLoop(e3qout, e3out)...)
	out = append(out, e3)

	e4 := newFx("e4")
	e4a := e4.slot("a", ir.KInt)
	e4b := e4.slot("b", ir.KInt)
	e4.p.Alias = &ir.AliasInfo{Pairs: map[[2]string]ir.AliasVerdict{
		ir.PairKey("a", "b"): ir.AliasMayConflict,
	}}
	e4.stage("e4.w1", store(e4a, 0, 1))
	e4.stage("e4.w2", store(e4b, 0, 2))
	out = append(out, e4)

	return out
}

func TestGoldenDiagnostics(t *testing.T) {
	var sb strings.Builder
	for _, f := range goldenFixtures() {
		rep := verify.Check(f.pipe)
		fmt.Fprintf(&sb, "== %s\n%s", f.p.Name, rep.String())
	}
	got := sb.String()

	path := filepath.Join("testdata", "diags.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s (run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
