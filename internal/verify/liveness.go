package verify

import (
	"strings"

	"phloem/internal/ir"
	"phloem/internal/isa"
)

// checkLiveness implements the L rules across the stage/queue graph:
//
//	L1 (warning): a queue is declared but no stage or RA ever touches it —
//	              typically debris from a pass that rewired endpoints (e.g.
//	              glue-stage elision) without dropping the declaration.
//	L2 (error):   values are enqueued but nothing ever dequeues them; the
//	              producer blocks as soon as the bounded queue fills.
//	L3 (error):   a stage or RA dequeues a queue nothing produces into; it
//	              blocks forever on the first consume.
//	L4 (warning): the two ends of a queue disagree about the value kind —
//	              the producer enqueues float variables while the consumer
//	              dequeues into int variables (or vice versa), or an RA that
//	              interprets inputs as array indices is fed floats.
func (m *model) checkLiveness() {
	for q := range m.pl.Queues {
		prods, cons := m.producers[q], m.consumers[q]
		switch {
		case len(prods) == 0 && len(cons) == 0:
			m.diag("L1", SevWarning, "", q, -1, "queue is declared but never used by any stage or RA")
		case len(cons) == 0:
			m.diag("L2", SevError, "", q, -1,
				"values enqueued by %s are never dequeued; the producer blocks once the queue fills", m.entityNames(prods))
		case len(prods) == 0:
			m.diag("L3", SevError, "", q, -1,
				"%s dequeues this queue but nothing ever produces into it", m.entityNames(cons))
		}
	}
	m.checkQueueKinds()
}

func (m *model) entityNames(ents []int) string {
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = m.entityName(e)
	}
	return strings.Join(names, ", ")
}

// kindObs accumulates the variable kinds observed at one end of a queue.
// Only declared variables contribute; constants and temporaries leave the
// end indeterminate rather than guessing.
type kindObs struct {
	seen [2]bool // indexed by ir.Kind
}

func (k *kindObs) note(kind ir.Kind) { k.seen[kind] = true }

// single returns the kind if exactly one was observed.
func (k *kindObs) single() (ir.Kind, bool) {
	if k.seen[ir.KInt] != k.seen[ir.KFloat] {
		if k.seen[ir.KFloat] {
			return ir.KFloat, true
		}
		return ir.KInt, true
	}
	return 0, false
}

func (m *model) checkQueueKinds() {
	vars := m.pl.Prog.Vars
	prodKinds := make([]kindObs, len(m.pl.Queues))
	consKinds := make([]kindObs, len(m.pl.Queues))
	for i := range m.pl.Stages {
		prog := m.progs[i]
		if prog == nil {
			continue
		}
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnq:
				if int(in.A) < len(vars) {
					prodKinds[in.Q].note(vars[in.A].Kind)
				}
			case isa.OpDeq, isa.OpPeek:
				if int(in.Dst) < len(vars) {
					consKinds[in.Q].note(vars[in.Dst].Kind)
				}
			}
		}
	}
	// A fan-out destination carries duplicates of the source's data stream,
	// so it inherits the source's producer-side kinds.
	for _, f := range m.pl.FanOuts {
		if f.Src < 0 || f.Src >= len(prodKinds) {
			continue
		}
		for _, d := range f.Dst {
			if d < 0 || d >= len(prodKinds) {
				continue
			}
			for k, s := range prodKinds[f.Src].seen {
				if s {
					prodKinds[d].seen[k] = true
				}
			}
		}
	}
	for _, ra := range m.pl.RAs {
		// An RA streams elements of its base array into OutQ, and interprets
		// InQ values as indices (INDIRECT) or [start,end) bounds (SCAN) —
		// integers either way.
		if ra.OutQ >= 0 && ra.OutQ < len(prodKinds) && ra.Slot >= 0 && ra.Slot < len(m.pl.Prog.Slots) {
			prodKinds[ra.OutQ].note(m.pl.Prog.Slots[ra.Slot].Kind)
		}
		if ra.InQ >= 0 && ra.InQ < len(consKinds) {
			if pk, ok := prodKinds[ra.InQ].single(); ok && pk == ir.KFloat {
				m.diag("L4", SevWarning, ra.Name, ra.InQ, -1,
					"RA interprets queue values as array indices but the producer enqueues floats")
			}
		}
	}
	for q := range m.pl.Queues {
		pk, pok := prodKinds[q].single()
		ck, cok := consKinds[q].single()
		if pok && cok && pk != ck {
			m.diag("L4", SevWarning, "", q, -1,
				"producer enqueues %s values but the consumer dequeues them as %s", pk, ck)
		}
	}
}
