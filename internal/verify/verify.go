// Package verify statically checks a compiled pipeline before it reaches the
// simulator. The passes that build a pipeline (decouple, queue insertion,
// recompute, accelerate, control values, handlers, inter-stage DCE) must
// preserve a web of structural invariants; end-to-end bit comparison against
// the reference tells you *that* a pipeline is wrong, these rules tell you
// *where* and *why*.
//
// Five analyses run over the stage/queue/RA graph and each stage's flattened
// ISA program:
//
//   - Q* queue topology / startup deadlock (one consumer per queue, no RA
//     self-loops, no cycle of stages that all must block on each other's
//     output before producing anything)
//   - C* control-value protocol (ctrl-carrying queues are consumed with an
//     is_ctrl test or a registered handler; codes sent by producers are
//     dispatched by consumers, and vice versa, tracked through RA chains)
//   - D* per-stage dataflow (structural validity, use of never-written
//     registers, int/float kind confusion, unreachable code, missing halt,
//     peek without deq)
//   - L* cross-stage liveness (queues declared but unused, enqueued but
//     never dequeued and vice versa, int/float disagreement across a queue)
//   - E* memory effects (per-entity MOD/REF summaries: cross-stage
//     write/write and write/read of a slot in the same barrier epoch,
//     stage writes racing an RA's stream reads, and writes to distinct
//     slots the frontend's alias analysis could not prove disjoint)
//   - W* capacity (queues whose explicit depth override sits below the
//     static cost model's recommended capacity and will serialize their
//     producer against their consumer on every burst)
//
// Diagnostics are structured (rule id, severity, stage/queue/pc location) so
// callers can render, filter, or assert on them.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"phloem/internal/isa"
	"phloem/internal/pipeline"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// SevWarning marks suspicious but executable constructs.
	SevWarning Severity = iota
	// SevError marks pipelines that will hang, crash, or compute garbage.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diag is one structured diagnostic.
type Diag struct {
	Rule      string   // rule id, e.g. "Q3"
	Sev       Severity // error or warning
	Stage     string   // stage or RA name ("" when pipeline-level)
	Queue     int      // queue id (-1 when not queue-related)
	QueueName string
	PC        int // instruction index within the stage (-1 when not instruction-level)
	Msg       string
}

// String renders "sev [RULE] location: message".
func (d Diag) String() string {
	var loc strings.Builder
	if d.Stage != "" {
		loc.WriteString(d.Stage)
		if d.PC >= 0 {
			fmt.Fprintf(&loc, "@%d", d.PC)
		}
	}
	if d.Queue >= 0 {
		if loc.Len() > 0 {
			loc.WriteByte(' ')
		}
		fmt.Fprintf(&loc, "q%d", d.Queue)
		if d.QueueName != "" {
			fmt.Fprintf(&loc, "(%s)", d.QueueName)
		}
	}
	if loc.Len() == 0 {
		loc.WriteString("pipeline")
	}
	return fmt.Sprintf("%s [%s] %s: %s", d.Sev, d.Rule, loc.String(), d.Msg)
}

// Report collects the diagnostics for one pipeline.
type Report struct {
	Pipeline string
	Diags    []Diag
}

// HasErrors reports whether any diagnostic is an error.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func (r *Report) Errors() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// String renders one diagnostic per line (empty string for a clean report).
func (r *Report) String() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Check runs all analyses over the pipeline and returns the report.
// Diagnostics are sorted canonically by (stage, pc, queue, rule, message) —
// ties keep analysis order (topology, protocol, dataflow, liveness,
// effects, capacity) — so two runs over the same pipeline render
// byte-identical output.
func Check(pl *pipeline.Pipeline) *Report {
	m := buildModel(pl)
	m.checkTopology()
	m.checkProtocol()
	m.checkDataflow()
	m.checkLiveness()
	m.checkEffects()
	m.checkCapacity()
	sort.SliceStable(m.rep.Diags, func(i, j int) bool {
		a, b := m.rep.Diags[i], m.rep.Diags[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Queue != b.Queue {
			return a.Queue < b.Queue
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return m.rep
}

// model indexes the pipeline for the rule checkers. Entities number the
// software stages first, then the RAs.
type model struct {
	pl  *pipeline.Pipeline
	rep *Report
	// progs holds each stage's flattened program; nil when flattening or
	// structural validation failed (the stage is then skipped by the other
	// analyses, which already have a D0 error to explain why).
	progs []*isa.Program

	producers [][]int // queue id -> entity ids that enqueue into it
	consumers [][]int // queue id -> entity ids that dequeue/peek/handle it
}

func (m *model) numStages() int { return len(m.pl.Stages) }

func (m *model) entityName(ent int) string {
	if ent < m.numStages() {
		return "stage " + m.pl.Stages[ent].Name
	}
	return "RA " + m.pl.RAs[ent-m.numStages()].Name
}

// diag appends a diagnostic; pass q = -1 and/or pc = -1 when not applicable.
func (m *model) diag(rule string, sev Severity, stage string, q, pc int, format string, args ...any) {
	d := Diag{Rule: rule, Sev: sev, Stage: stage, Queue: q, PC: pc, Msg: fmt.Sprintf(format, args...)}
	if q >= 0 && q < len(m.pl.Queues) {
		d.QueueName = m.pl.Queues[q].Name
	}
	m.rep.Diags = append(m.rep.Diags, d)
}

func buildModel(pl *pipeline.Pipeline) *model {
	m := &model{
		pl:        pl,
		rep:       &Report{Pipeline: pl.Prog.Name},
		progs:     make([]*isa.Program, len(pl.Stages)),
		producers: make([][]int, len(pl.Queues)),
		consumers: make([][]int, len(pl.Queues)),
	}
	for i, st := range pl.Stages {
		prog, err := pipeline.FlattenStage(pl, st)
		if err != nil {
			m.diag("D0", SevError, st.Name, -1, -1, "stage does not lower: %v", err)
			continue
		}
		if err := prog.Validate(len(pl.Queues), len(pl.Prog.Slots)); err != nil {
			m.diag("D0", SevError, st.Name, -1, -1, "structurally invalid program: %v", err)
			continue
		}
		m.progs[i] = prog
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				m.producers[in.Q] = addEntity(m.producers[in.Q], i)
			case isa.OpDeq, isa.OpPeek, isa.OpSetHandler:
				m.consumers[in.Q] = addEntity(m.consumers[in.Q], i)
			}
		}
	}
	for r, ra := range pl.RAs {
		ent := len(pl.Stages) + r
		if ra.InQ >= 0 && ra.InQ < len(pl.Queues) {
			m.consumers[ra.InQ] = addEntity(m.consumers[ra.InQ], ent)
		}
		if ra.OutQ >= 0 && ra.OutQ < len(pl.Queues) {
			m.producers[ra.OutQ] = addEntity(m.producers[ra.OutQ], ent)
		}
	}
	// Fan-out destinations are produced into by whoever enqueues the source:
	// the hardware duplicates every data value. Without these edges L3 would
	// flag rewritten destinations as never-produced and Q3 would miss
	// must-block dependencies through them.
	for _, f := range pl.FanOuts {
		if f.Src < 0 || f.Src >= len(pl.Queues) {
			continue
		}
		for _, d := range f.Dst {
			if d < 0 || d >= len(pl.Queues) {
				continue
			}
			for _, p := range m.producers[f.Src] {
				m.producers[d] = addEntity(m.producers[d], p)
			}
		}
	}
	return m
}

func addEntity(list []int, ent int) []int {
	for _, e := range list {
		if e == ent {
			return list
		}
	}
	return append(list, ent)
}

// queueOps collects, for one stage program, the pcs of queue operations per
// queue id, split by role.
type queueOps struct {
	enq     map[int][]int // Enq/EnqCtrl/EnqCtrlV
	deq     map[int][]int // Deq
	peek    map[int][]int // Peek
	handler map[int][]int // SetHandler
}

func collectQueueOps(prog *isa.Program) queueOps {
	qo := queueOps{
		enq: map[int][]int{}, deq: map[int][]int{},
		peek: map[int][]int{}, handler: map[int][]int{},
	}
	for pc, in := range prog.Instrs {
		switch in.Op {
		case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
			qo.enq[in.Q] = append(qo.enq[in.Q], pc)
		case isa.OpDeq:
			qo.deq[in.Q] = append(qo.deq[in.Q], pc)
		case isa.OpPeek:
			qo.peek[in.Q] = append(qo.peek[in.Q], pc)
		case isa.OpSetHandler:
			qo.handler[in.Q] = append(qo.handler[in.Q], pc)
		}
	}
	return qo
}
