package verify_test

// Unit tests for the E* memory-effects cross-check: each rule gets a
// deliberately racy pipeline caught with the correct rule id, and each
// exemption (barrier epochs, swap classes, scalar overrides, alias verdicts)
// gets a pipeline that must stay clean.

import (
	"reflect"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/verify"
)

// store builds "slot[idx] = val" with constant operands.
func store(slot int, idx, val int64) ir.Stmt {
	return &ir.Store{Slot: slot, Idx: ir.C(idx), Val: ir.C(val)}
}

// load builds "dst = slot[idx]".
func load(dst ir.Var, slot int, idx int64) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalLoad{Slot: slot, Idx: ir.C(idx)}}
}

func TestEffectsWriteWrite(t *testing.T) {
	f := newFx("e1")
	out := f.slot("out", ir.KInt)
	f.stage("e1.w1", store(out, 0, 1))
	f.stage("e1.w2", store(out, 1, 2))
	d := requireRule(t, verify.Check(f.pipe), "E1", verify.SevError)
	if d.Stage != "e1.w1" {
		t.Errorf("E1 reported on %q, want the first writer", d.Stage)
	}
}

func TestEffectsWriteRead(t *testing.T) {
	f := newFx("e2")
	out := f.slot("out", ir.KInt)
	sink := f.slot("sink", ir.KInt)
	x := f.v("x", ir.KInt)
	f.stage("e2.writer", store(out, 0, 1))
	f.stage("e2.reader", load(x, out, 0), &ir.Store{Slot: sink, Idx: ir.C(0), Val: ir.V(x)})
	requireRule(t, verify.Check(f.pipe), "E2", verify.SevError)
}

func TestEffectsBarrierEpochsExempt(t *testing.T) {
	f := newFx("e2-barrier")
	out := f.slot("out", ir.KInt)
	sink := f.slot("sink", ir.KInt)
	x := f.v("x", ir.KInt)
	f.stage("w", store(out, 0, 1), &ir.Barrier{})
	f.stage("r", &ir.Barrier{}, load(x, out, 0), &ir.Store{Slot: sink, Idx: ir.C(0), Val: ir.V(x)})
	requireNoRule(t, verify.Check(f.pipe), "E2")
}

func TestEffectsSwapClassExempt(t *testing.T) {
	f := newFx("e2-swap")
	curr := f.slot("curr", ir.KInt)
	next := f.slot("next", ir.KInt)
	sink := f.slot("sink", ir.KInt)
	x := f.v("x", ir.KInt)
	f.stage("w", store(next, 0, 1), &ir.Swap{A: curr, B: next})
	f.stage("r", load(x, curr, 0), &ir.Store{Slot: sink, Idx: ir.C(0), Val: ir.V(x)})
	rep := verify.Check(f.pipe)
	requireNoRule(t, rep, "E1")
	requireNoRule(t, rep, "E2")
}

func TestEffectsOverridesExempt(t *testing.T) {
	f := newFx("e1-workers")
	out := f.slot("out", ir.KInt)
	f.stage("worker0", store(out, 0, 1))
	f.stage("worker1", store(out, 1, 2))
	f.pipe.Stages[0].Overrides = map[string]int64{"tid": 0}
	requireNoRule(t, verify.Check(f.pipe), "E1")
}

func TestEffectsRAStreamRead(t *testing.T) {
	f := newFx("e3")
	base := f.slot("base", ir.KInt)
	out2 := f.slot("out2", ir.KInt)
	qin := f.pipe.AddQueue("idx")
	qout := f.pipe.AddQueue("vals")
	f.pipe.RAs = append(f.pipe.RAs, arch.RASpec{
		Name: "ind.base", Mode: arch.RAIndirect, Slot: base, InQ: qin, OutQ: qout,
	})
	f.stage("e3.feed",
		store(base, 0, 7),
		&ir.Enq{Q: qin, Val: ir.C(0)},
		&ir.EnqCtrl{Q: qin, Code: arch.CtrlEnd},
	)
	f.stage("e3.drain", f.drainLoop(qout, out2)...)
	requireRule(t, verify.Check(f.pipe), "E3", verify.SevError)
}

func TestEffectsAliasedSlots(t *testing.T) {
	f := newFx("e4")
	a := f.slot("a", ir.KInt)
	b := f.slot("b", ir.KInt)
	f.p.Alias = &ir.AliasInfo{Pairs: map[[2]string]ir.AliasVerdict{
		ir.PairKey("a", "b"): ir.AliasMayConflict,
	}}
	f.stage("e4.w1", store(a, 0, 1))
	f.stage("e4.w2", store(b, 0, 2))
	rep := verify.Check(f.pipe)
	requireRule(t, rep, "E4", verify.SevError)
	requireNoRule(t, rep, "E1") // distinct slots: identity rules stay quiet
}

func TestEffectsDisjointAliasClean(t *testing.T) {
	f := newFx("e4-clean")
	a := f.slot("a", ir.KInt)
	b := f.slot("b", ir.KInt)
	f.p.Alias = &ir.AliasInfo{Pairs: map[[2]string]ir.AliasVerdict{
		ir.PairKey("a", "b"): ir.AliasDisjoint,
	}}
	f.stage("w1", store(a, 0, 1))
	f.stage("w2", store(b, 0, 2))
	requireNoRule(t, verify.Check(f.pipe), "E4")
}

// TestCheckDeterministic runs Check twice over a pipeline that trips several
// rule families and requires identical reports — the contract behind
// byte-identical `phloemc -lint` output.
func TestCheckDeterministic(t *testing.T) {
	mk := func() *fx {
		f := newFx("det")
		out := f.slot("out", ir.KInt)
		f.p.Alias = &ir.AliasInfo{Pairs: map[[2]string]ir.AliasVerdict{
			ir.PairKey("out", "sink"): ir.AliasMayConflict,
		}}
		sink := f.slot("sink", ir.KInt)
		x := f.v("x", ir.KInt)
		f.pipe.AddQueue("orphan")
		f.stage("det.w1", store(out, 0, 1), store(sink, 0, 1))
		f.stage("det.w2", store(out, 1, 2), load(x, out, 0))
		return f
	}
	r1 := verify.Check(mk().pipe)
	r2 := verify.Check(mk().pipe)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports differ between runs:\n--- first ---\n%s--- second ---\n%s", r1, r2)
	}
	if r1.String() != r2.String() {
		t.Fatalf("rendered output differs between runs")
	}
}
