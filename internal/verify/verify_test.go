package verify_test

// Per-rule unit tests: each rule family gets at least one pipeline that
// passes clean and one deliberately broken pipeline caught with the correct
// rule id. Fixtures are built directly in IR, the same way the manual
// workload pipelines are.

import (
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/verify"
)

type fx struct {
	p    *ir.Prog
	pipe *pipeline.Pipeline
}

func newFx(name string) *fx {
	p := &ir.Prog{Name: name}
	return &fx{p: p, pipe: &pipeline.Pipeline{Prog: p, Description: "test fixture"}}
}

func (f *fx) v(name string, k ir.Kind) ir.Var { return f.p.NewVar(name, k) }

func (f *fx) slot(name string, k ir.Kind) int {
	f.p.Slots = append(f.p.Slots, ir.SlotInfo{Name: name, Kind: k})
	return len(f.p.Slots) - 1
}

func (f *fx) stage(name string, body ...ir.Stmt) {
	f.pipe.Stages = append(f.pipe.Stages, &pipeline.Stage{
		Name: name, Body: body,
		Thread: arch.ThreadID{Core: 0, Thread: len(f.pipe.Stages)},
	})
}

func assign(dst ir.Var, r ir.Rval) ir.Stmt { return &ir.Assign{Dst: dst, Src: r} }
func mov(dst ir.Var, o ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalUn{Op: ir.OpMov, A: o}}
}
func bin(dst ir.Var, op ir.BinOp, a, b ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalBin{Op: op, A: a, B: b}}
}
func deq(dst ir.Var, q int) ir.Stmt { return &ir.Assign{Dst: dst, Src: &ir.RvalDeq{Q: q}} }
func isctrl(dst ir.Var, o ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalUn{Op: ir.OpIsCtrl, A: o}}
}
func ctrlcode(dst ir.Var, o ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalUn{Op: ir.OpCtrlCode, A: o}}
}

// countedEnqs builds "for i in [0,4): enq(q, i)".
func (f *fx) countedEnqs(q int) []ir.Stmt {
	i := f.v("i", ir.KInt)
	cond := f.v("cond", ir.KInt)
	return []ir.Stmt{
		mov(i, ir.C(0)),
		&ir.Loop{ID: 90,
			Pre:  []ir.Stmt{bin(cond, ir.OpLT, ir.V(i), ir.C(4))},
			Cond: ir.V(cond),
			Body: []ir.Stmt{
				&ir.Enq{Q: q, Val: ir.V(i)},
				bin(i, ir.OpAdd, ir.V(i), ir.C(1)),
			},
		},
		&ir.EnqCtrl{Q: q, Code: arch.CtrlEnd},
	}
}

// drainLoop builds "probe: x = deq(q); if is_ctrl(x) goto done; store
// out[x] = x; goto probe; done:" — the minimal protocol-correct consumer.
func (f *fx) drainLoop(q, out int) []ir.Stmt {
	x := f.v("x", ir.KInt)
	t := f.v("t", ir.KInt)
	return []ir.Stmt{
		&ir.Label{Name: "probe"},
		deq(x, q),
		isctrl(t, ir.V(x)),
		&ir.If{Cond: ir.V(t), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Store{Slot: out, Idx: ir.V(x), Val: ir.V(x)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	}
}

func rules(rep *verify.Report) []string {
	var out []string
	for _, d := range rep.Diags {
		out = append(out, d.Rule)
	}
	return out
}

func requireRule(t *testing.T, rep *verify.Report, rule string, sev verify.Severity) verify.Diag {
	t.Helper()
	for _, d := range rep.Diags {
		if d.Rule == rule && d.Sev == sev {
			return d
		}
	}
	t.Fatalf("expected %s %s diagnostic, got %v:\n%s", sev, rule, rules(rep), rep.String())
	return verify.Diag{}
}

func requireNoRule(t *testing.T, rep *verify.Report, rule string) {
	t.Helper()
	for _, d := range rep.Diags {
		if d.Rule == rule {
			t.Fatalf("unexpected %s diagnostic:\n%s", rule, rep.String())
		}
	}
}

func requireClean(t *testing.T, rep *verify.Report) {
	t.Helper()
	if len(rep.Diags) != 0 {
		t.Fatalf("expected a clean report, got:\n%s", rep.String())
	}
}

// cleanPipe is the shared passing fixture: counted producer, protocol-correct
// consumer, one output array.
func cleanPipe() *fx {
	f := newFx("clean")
	out := f.slot("out", ir.KInt)
	q := f.pipe.AddQueue("data")
	f.stage("clean.produce", f.countedEnqs(q)...)
	f.stage("clean.consume", f.drainLoop(q, out)...)
	return f
}

func TestCleanPipelinePasses(t *testing.T) {
	requireClean(t, verify.Check(cleanPipe().pipe))
}

func TestQ1MultipleConsumers(t *testing.T) {
	f := cleanPipe()
	out2 := f.slot("out2", ir.KInt)
	q := 0
	f.stage("clean.consume2", f.drainLoop(q, out2)...)
	d := requireRule(t, verify.Check(f.pipe), "Q1", verify.SevError)
	if d.Queue != q {
		t.Fatalf("Q1 on queue %d, want %d", d.Queue, q)
	}
}

func TestQ2RASelfLoop(t *testing.T) {
	f := cleanPipe()
	base := f.slot("base", ir.KInt)
	q := f.pipe.AddQueue("loopback")
	f.pipe.RAs = append(f.pipe.RAs, arch.RASpec{
		Name: "ind.self", Mode: arch.RAIndirect, Slot: base, InQ: q, OutQ: q,
	})
	requireRule(t, verify.Check(f.pipe), "Q2", verify.SevError)
}

func TestQ2StageSelfLoop(t *testing.T) {
	f := newFx("selfloop")
	q := f.pipe.AddQueue("buffer")
	x := f.v("x", ir.KInt)
	f.stage("selfloop.s0",
		&ir.Enq{Q: q, Val: ir.C(1)},
		deq(x, q),
	)
	requireRule(t, verify.Check(f.pipe), "Q2", verify.SevWarning)
}

func TestQ3StartupDeadlock(t *testing.T) {
	f := newFx("deadlock")
	out := f.slot("out", ir.KInt)
	q0 := f.pipe.AddQueue("a2b")
	q1 := f.pipe.AddQueue("b2a")
	// Stage A: x = deq(b2a) ... enq(a2b, x): must block on b2a first.
	a := f.v("a", ir.KInt)
	at := f.v("at", ir.KInt)
	f.stage("deadlock.a",
		&ir.Label{Name: "probe"},
		deq(a, q1),
		isctrl(at, ir.V(a)),
		&ir.If{Cond: ir.V(at), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Enq{Q: q0, Val: ir.V(a)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	)
	// Stage B mirrors it: both sides wait for the other's first value.
	b := f.v("b", ir.KInt)
	bt := f.v("bt", ir.KInt)
	f.stage("deadlock.b",
		&ir.Label{Name: "probe"},
		deq(b, q0),
		isctrl(bt, ir.V(b)),
		&ir.If{Cond: ir.V(bt), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Store{Slot: out, Idx: ir.V(b), Val: ir.V(b)},
		&ir.Enq{Q: q1, Val: ir.V(b)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	)
	d := requireRule(t, verify.Check(f.pipe), "Q3", verify.SevError)
	if !strings.Contains(d.Msg, "waits on") {
		t.Fatalf("Q3 message should describe the cycle, got %q", d.Msg)
	}
}

func TestQ3FeedbackLoopIsLegal(t *testing.T) {
	// BFS-shaped feedback: A seeds a2b before ever consuming b2a, so the
	// cycle in the queue graph is not a startup deadlock.
	f := newFx("feedback")
	out := f.slot("out", ir.KInt)
	q0 := f.pipe.AddQueue("a2b")
	q1 := f.pipe.AddQueue("b2a")
	a := f.v("a", ir.KInt)
	at := f.v("at", ir.KInt)
	f.stage("feedback.a",
		&ir.Enq{Q: q0, Val: ir.C(0)}, // seed value
		&ir.Label{Name: "probe"},
		deq(a, q1),
		isctrl(at, ir.V(a)),
		&ir.If{Cond: ir.V(at), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Enq{Q: q0, Val: ir.V(a)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	)
	b := f.v("b", ir.KInt)
	bt := f.v("bt", ir.KInt)
	blt := f.v("blt", ir.KInt)
	f.stage("feedback.b",
		&ir.Label{Name: "probe"},
		deq(b, q0),
		isctrl(bt, ir.V(b)),
		&ir.If{Cond: ir.V(bt), Then: []ir.Stmt{&ir.Goto{Name: "done"}}},
		&ir.Store{Slot: out, Idx: ir.V(b), Val: ir.V(b)},
		bin(blt, ir.OpLT, ir.V(b), ir.C(8)),
		&ir.If{Cond: ir.V(blt), Then: []ir.Stmt{
			bin(b, ir.OpAdd, ir.V(b), ir.C(1)),
			&ir.Enq{Q: q1, Val: ir.V(b)},
		}, Else: []ir.Stmt{
			&ir.EnqCtrl{Q: q1, Code: arch.CtrlEnd},
		}},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	)
	rep := verify.Check(f.pipe)
	requireNoRule(t, rep, "Q3")
	if rep.HasErrors() {
		t.Fatalf("feedback pipeline should verify without errors:\n%s", rep.String())
	}
}

func TestC1ConsumerIgnoresControl(t *testing.T) {
	f := newFx("noctrl")
	out := f.slot("out", ir.KInt)
	q := f.pipe.AddQueue("data")
	f.stage("noctrl.produce", f.countedEnqs(q)...)
	// Consumer dequeues a bounded count with no is_ctrl test and no handler:
	// the CtrlEnd marker would be consumed as data.
	x := f.v("x", ir.KInt)
	i := f.v("i", ir.KInt)
	cond := f.v("cond", ir.KInt)
	f.stage("noctrl.consume",
		mov(i, ir.C(0)),
		&ir.Loop{ID: 91,
			Pre:  []ir.Stmt{bin(cond, ir.OpLT, ir.V(i), ir.C(5))},
			Cond: ir.V(cond),
			Body: []ir.Stmt{
				deq(x, q),
				&ir.Store{Slot: out, Idx: ir.V(x), Val: ir.V(x)},
				bin(i, ir.OpAdd, ir.V(i), ir.C(1)),
			},
		},
	)
	d := requireRule(t, verify.Check(f.pipe), "C1", verify.SevError)
	if d.Stage != "noctrl.consume" {
		t.Fatalf("C1 attributed to %q, want the consumer stage", d.Stage)
	}
}

const fixtureCode int64 = arch.CtrlUser + 5

// dispatchConsumer consumes q, dispatching control codes: `code` continues
// the loop, anything else (CtrlEnd) exits.
func (f *fx) dispatchConsumer(q, out int, code int64) []ir.Stmt {
	x := f.v("x", ir.KInt)
	t := f.v("t", ir.KInt)
	c := f.v("c", ir.KInt)
	e := f.v("e", ir.KInt)
	return []ir.Stmt{
		&ir.Label{Name: "probe"},
		deq(x, q),
		isctrl(t, ir.V(x)),
		&ir.If{Cond: ir.V(t), Then: []ir.Stmt{
			ctrlcode(c, ir.V(x)),
			bin(e, ir.OpEQ, ir.V(c), ir.C(code)),
			&ir.If{Cond: ir.V(e), Then: []ir.Stmt{&ir.Goto{Name: "probe"}}},
			&ir.Goto{Name: "done"},
		}},
		&ir.Store{Slot: out, Idx: ir.V(x), Val: ir.V(x)},
		&ir.Goto{Name: "probe"},
		&ir.Label{Name: "done"},
	}
}

func TestC2C3DispatchMatchesProtocol(t *testing.T) {
	// Passing case: producer sends fixtureCode and CtrlEnd; consumer
	// dispatches fixtureCode and lets CtrlEnd fall through to done.
	f := newFx("dispatch")
	out := f.slot("out", ir.KInt)
	q := f.pipe.AddQueue("data")
	body := f.countedEnqs(q)
	body = append([]ir.Stmt{&ir.EnqCtrl{Q: q, Code: fixtureCode}}, body...)
	f.stage("dispatch.produce", body...)
	f.stage("dispatch.consume", f.dispatchConsumer(q, out, fixtureCode)...)
	requireClean(t, verify.Check(f.pipe))
}

func TestC2UndispatchedCodeAndC3DeadArm(t *testing.T) {
	// Broken case: producer sends fixtureCode but the consumer dispatches a
	// different code — the sent code silently truncates the stream (C2) and
	// the dispatch arm is dead (C3).
	f := newFx("mismatch")
	out := f.slot("out", ir.KInt)
	q := f.pipe.AddQueue("data")
	body := f.countedEnqs(q)
	body = append([]ir.Stmt{&ir.EnqCtrl{Q: q, Code: fixtureCode}}, body...)
	f.stage("mismatch.produce", body...)
	f.stage("mismatch.consume", f.dispatchConsumer(q, out, fixtureCode+1)...)
	rep := verify.Check(f.pipe)
	requireRule(t, rep, "C2", verify.SevError)
	requireRule(t, rep, "C3", verify.SevWarning)
}

func TestD1ReadNeverWritten(t *testing.T) {
	f := newFx("undef")
	out := f.slot("out", ir.KInt)
	u := f.v("u", ir.KInt)
	y := f.v("y", ir.KInt)
	f.stage("undef.s0",
		bin(y, ir.OpAdd, ir.V(u), ir.C(1)),
		&ir.Store{Slot: out, Idx: ir.C(0), Val: ir.V(y)},
	)
	d := requireRule(t, verify.Check(f.pipe), "D1", verify.SevError)
	if !strings.Contains(d.Msg, `"u"`) {
		t.Fatalf("D1 should name the variable, got %q", d.Msg)
	}
}

func TestD1ScalarParamIsDefined(t *testing.T) {
	f := newFx("param")
	out := f.slot("out", ir.KInt)
	n := f.v("n", ir.KInt)
	f.p.Vars[n].Param = true
	f.p.ScalarParams = []ir.Var{n}
	f.stage("param.s0", &ir.Store{Slot: out, Idx: ir.C(0), Val: ir.V(n)})
	requireClean(t, verify.Check(f.pipe))
}

func TestD2KindMismatch(t *testing.T) {
	f := newFx("kinds")
	out := f.slot("out", ir.KFloat)
	fv := f.v("fv", ir.KFloat)
	y := f.v("y", ir.KInt)
	f.stage("kinds.s0",
		mov(fv, ir.C(0)), // int 0 bits are float 0.0: legal
		// Integer add on a float variable: the bit patterns are garbage.
		bin(y, ir.OpAdd, ir.V(fv), ir.C(1)),
		&ir.Store{Slot: out, Idx: ir.V(y), Val: ir.V(fv)},
	)
	requireRule(t, verify.Check(f.pipe), "D2", verify.SevError)
}

func TestD4UnreachableCode(t *testing.T) {
	f := newFx("dead")
	out := f.slot("out", ir.KInt)
	f.stage("dead.s0",
		&ir.Goto{Name: "end"},
		&ir.Store{Slot: out, Idx: ir.C(0), Val: ir.C(1)},
		&ir.Label{Name: "end"},
	)
	requireRule(t, verify.Check(f.pipe), "D4", verify.SevWarning)
}

func TestD5NoReachableHalt(t *testing.T) {
	f := newFx("spin")
	f.stage("spin.s0",
		&ir.Label{Name: "top"},
		&ir.Goto{Name: "top"},
	)
	requireRule(t, verify.Check(f.pipe), "D5", verify.SevError)
}

func TestL1DeclaredNeverUsed(t *testing.T) {
	f := cleanPipe()
	f.pipe.AddQueue("orphan")
	d := requireRule(t, verify.Check(f.pipe), "L1", verify.SevWarning)
	if d.QueueName != "orphan" {
		t.Fatalf("L1 on queue %q, want orphan", d.QueueName)
	}
}

func TestL2EnqueuedNeverDequeued(t *testing.T) {
	f := newFx("noconsumer")
	q := f.pipe.AddQueue("data")
	f.stage("noconsumer.produce", f.countedEnqs(q)...)
	requireRule(t, verify.Check(f.pipe), "L2", verify.SevError)
}

func TestL3DequeuedNeverProduced(t *testing.T) {
	f := newFx("noproducer")
	out := f.slot("out", ir.KInt)
	q := f.pipe.AddQueue("data")
	f.stage("noproducer.consume", f.drainLoop(q, out)...)
	requireRule(t, verify.Check(f.pipe), "L3", verify.SevError)
}

func TestL4KindDisagreement(t *testing.T) {
	f := newFx("qkinds")
	out := f.slot("out", ir.KInt)
	q := f.pipe.AddQueue("data")
	fv := f.v("fv", ir.KFloat)
	f.stage("qkinds.produce",
		&ir.Assign{Dst: fv, Src: &ir.RvalUn{Op: ir.OpMov, Float: true, A: ir.C(0)}},
		&ir.Enq{Q: q, Val: ir.V(fv)},
		&ir.EnqCtrl{Q: q, Code: arch.CtrlEnd},
	)
	f.stage("qkinds.consume", f.drainLoop(q, out)...)
	requireRule(t, verify.Check(f.pipe), "L4", verify.SevWarning)
}

func TestD0StageFailsToLower(t *testing.T) {
	f := newFx("broken")
	f.stage("broken.s0", &ir.Goto{Name: "nowhere"})
	requireRule(t, verify.Check(f.pipe), "D0", verify.SevError)
}
