package verify

import (
	"fmt"
	"strings"

	"phloem/internal/isa"
)

// checkTopology implements the Q rules:
//
//	Q1 (error):   a queue has more than one consumer entity. The machine
//	              model serializes on a single consumer per queue; two
//	              dequeuers race nondeterministically.
//	Q2:           an entity consumes its own output. For an RA (InQ == OutQ)
//	              this is always broken (error); a software stage using a
//	              queue as a private buffer merely risks deadlock (warning),
//	              which Q3 analyzes precisely.
//	Q3 (error):   startup deadlock. An entity "must block" on queue q when
//	              every path from its entry reaches a deq/peek of q before
//	              any enqueue or halt; a cycle of such must-block edges
//	              through queue producers means every party waits forever
//	              before the first value moves. Feedback queues (BFS-style
//	              frontier recycling) are legal exactly because their
//	              consumer can produce before first dequeuing them.
func (m *model) checkTopology() {
	for q := range m.pl.Queues {
		if len(m.consumers[q]) > 1 {
			names := make([]string, len(m.consumers[q]))
			for i, e := range m.consumers[q] {
				names[i] = m.entityName(e)
			}
			m.diag("Q1", SevError, "", q, -1, "queue has %d consumers (%s); exactly one entity may dequeue a queue",
				len(names), strings.Join(names, ", "))
		}
	}
	for _, ra := range m.pl.RAs {
		if ra.InQ == ra.OutQ {
			m.diag("Q2", SevError, ra.Name, ra.InQ, -1, "RA consumes its own output queue")
		}
	}
	for i, st := range m.pl.Stages {
		if m.progs[i] == nil {
			continue
		}
		qo := collectQueueOps(m.progs[i])
		for q := range m.pl.Queues {
			if len(qo.enq[q]) > 0 && (len(qo.deq[q]) > 0 || len(qo.peek[q]) > 0) {
				m.diag("Q2", SevWarning, st.Name, q, qo.enq[q][0],
					"stage both enqueues and dequeues this queue (self-loop)")
			}
		}
	}
	m.checkStartupDeadlock()
}

// qedge is one must-block dependency: the owning entity cannot produce until
// entity `to` produces into queue `q`.
type qedge struct{ to, q int }

func (m *model) checkStartupDeadlock() {
	numEnts := m.numStages() + len(m.pl.RAs)
	edges := make([][]qedge, numEnts)
	for i := range m.pl.Stages {
		prog := m.progs[i]
		if prog == nil {
			continue
		}
		qo := collectQueueOps(prog)
		for q := range m.pl.Queues {
			if len(qo.deq[q]) == 0 && len(qo.peek[q]) == 0 {
				continue
			}
			if stageMustBlockOn(prog, q) {
				for _, p := range m.producers[q] {
					edges[i] = append(edges[i], qedge{to: p, q: q})
				}
			}
		}
	}
	for r, ra := range m.pl.RAs {
		// An RA produces nothing until its input queue delivers.
		ent := m.numStages() + r
		if ra.InQ >= 0 && ra.InQ < len(m.pl.Queues) {
			for _, p := range m.producers[ra.InQ] {
				edges[ent] = append(edges[ent], qedge{to: p, q: ra.InQ})
			}
		}
	}

	const (
		white = iota
		gray
		black
	)
	color := make([]int, numEnts)
	var stack []qedge // stack[i].to is the i-th entity entered from the root
	var root int
	var dfs func(ent int) bool
	dfs = func(ent int) bool {
		color[ent] = gray
		for _, e := range edges[ent] {
			if color[e.to] == gray {
				m.diag("Q3", SevError, "", e.q, -1, "startup deadlock: %s",
					m.cycleMessage(root, stack, e))
				return true
			}
			if color[e.to] == white {
				stack = append(stack, e)
				found := dfs(e.to)
				stack = stack[:len(stack)-1]
				if found {
					return true
				}
			}
		}
		color[ent] = black
		return false
	}
	for ent := 0; ent < numEnts; ent++ {
		if color[ent] == white {
			stack = stack[:0]
			root = ent
			dfs(ent)
		}
	}
}

// cycleMessage renders the must-block cycle closed by `closing`, e.g.
// "stage A waits on q1(x) from RA B, RA B waits on q0(y) from stage A".
func (m *model) cycleMessage(root int, stack []qedge, closing qedge) string {
	// The DFS path is root, stack[0].to, stack[1].to, ...; the cycle runs
	// from the entity closing.to back around to the path's tail.
	ents := []int{root}
	qs := []int{} // qs[i] labels the edge ents[i] -> ents[i+1]
	for _, e := range stack {
		ents = append(ents, e.to)
		qs = append(qs, e.q)
	}
	start := 0
	for i, e := range ents {
		if e == closing.to {
			start = i
		}
	}
	var parts []string
	for i := start; i < len(ents); i++ {
		viaQ, next := closing.q, closing.to
		if i < len(ents)-1 {
			viaQ, next = qs[i], ents[i+1]
		}
		parts = append(parts, fmt.Sprintf("%s waits on q%d(%s) from %s",
			m.entityName(ents[i]), viaQ, m.pl.Queues[viaQ].Name, m.entityName(next)))
	}
	return strings.Join(parts, ", ")
}

// stageMustBlockOn reports whether every execution path from the stage entry
// reaches a deq/peek of q before any enqueue (to any queue) or halt. When
// true, the stage cannot contribute a single value to the pipeline until q's
// producer runs.
func stageMustBlockOn(prog *isa.Program, q int) bool {
	if len(prog.Instrs) == 0 {
		return false
	}
	succs := prog.CFG()
	seen := make([]bool, len(prog.Instrs))
	work := []int{0}
	seen[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := &prog.Instrs[pc]
		switch in.Op {
		case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV, isa.OpHalt:
			// Reached a producing action (or a clean exit) without passing a
			// blocking consume of q.
			return false
		case isa.OpDeq, isa.OpPeek:
			if in.Q == q {
				// Blocks here with q empty; do not traverse past.
				continue
			}
		}
		for _, n := range succs[pc] {
			if !seen[n] {
				seen[n] = true
				work = append(work, n)
			}
		}
	}
	return true
}
