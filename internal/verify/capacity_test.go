package verify_test

import (
	"testing"

	"phloem/internal/verify"
)

// TestW1UndersizedQueueWarns: an explicit depth override below the cost
// model's recommendation is flagged (as a warning — the pipeline still
// runs, it just serializes on every burst).
func TestW1UndersizedQueueWarns(t *testing.T) {
	f := cleanPipe()
	f.pipe.Queues[0].Depth = 1
	rep := verify.Check(f.pipe)
	d := requireRule(t, rep, "W1", verify.SevWarning)
	if d.Queue != 0 {
		t.Fatalf("W1 on queue %d, want 0", d.Queue)
	}
	if rep.HasErrors() {
		t.Fatalf("W1 must not be an error:\n%s", rep.String())
	}
}

// TestW1AdequateDepthClean: a generous explicit override passes, as does
// the machine default (Depth 0) — the recommendation is clamped to the
// architectural QueueDepth, so defaults always satisfy it.
func TestW1AdequateDepthClean(t *testing.T) {
	f := cleanPipe()
	f.pipe.Queues[0].Depth = 24
	requireNoRule(t, verify.Check(f.pipe), "W1")
	f.pipe.Queues[0].Depth = 0
	requireNoRule(t, verify.Check(f.pipe), "W1")
}
