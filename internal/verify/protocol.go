package verify

import (
	"fmt"
	"sort"
	"strings"

	"phloem/internal/arch"
	"phloem/internal/isa"
)

// checkProtocol implements the C rules over the control-value protocol:
//
//	C1 (error):   a queue that can carry control values is dequeued by a
//	              stage that neither tests is_ctrl on the dequeued value nor
//	              registers a control handler for the queue — a control
//	              value would be consumed as ordinary data.
//	C2 (error):   a producer can send a control code that the consumer's
//	              dispatch never matches. Generated consumers treat unknown
//	              codes as stream end, so an undispatched code silently
//	              truncates the stream. CtrlEnd is exempt: falling through
//	              the dispatch to the stage epilogue is its correct handling.
//	C3 (warning): the consumer dispatches on a code no producer can send —
//	              dead protocol arms usually mean the two sides were edited
//	              out of sync.
//
// Codes are tracked through RA chains: RAs forward control values from InQ
// to OutQ untouched, and a SCAN RA with EmitNext injects its NextCode after
// every scanned range.
func (m *model) checkProtocol() {
	sent := m.sentCodes()
	for i, st := range m.pl.Stages {
		prog := m.progs[i]
		if prog == nil {
			continue
		}
		qo := collectQueueOps(prog)
		fromQ := regQueueSources(prog)
		consts := constRegs(prog)

		consumed := map[int]bool{}
		for q := range qo.deq {
			consumed[q] = true
		}
		for q := range qo.peek {
			consumed[q] = true
		}
		handledCount := len(qo.handler)

		for _, q := range sortedKeys(consumed) {
			s := sent[q]
			if !s.unknown && len(s.codes) == 0 {
				continue // pure data queue: no protocol to check
			}
			handled := len(qo.handler[q]) > 0
			checked := false
			for _, in := range prog.Instrs {
				if in.Op == isa.OpIsCtrl && hasQueue(fromQ[in.A], q) {
					checked = true
					break
				}
			}
			if !handled && !checked {
				pc := -1
				if pcs := qo.deq[q]; len(pcs) > 0 {
					pc = pcs[0]
				} else if pcs := qo.peek[q]; len(pcs) > 0 {
					pc = pcs[0]
				}
				m.diag("C1", SevError, st.Name, q, pc,
					"queue can carry control codes %s but the consumer neither tests is_ctrl nor registers a handler; a control value would be consumed as data",
					s.describe())
				continue
			}

			// Collect the registers that hold this queue's control codes.
			codeRegs := map[isa.Reg]bool{}
			for _, in := range prog.Instrs {
				switch in.Op {
				case isa.OpCtrlCode:
					if hasQueue(fromQ[in.A], q) {
						codeRegs[in.Dst] = true
					}
				case isa.OpHandlerVal:
					if handled {
						codeRegs[in.Dst] = true
					}
				}
			}
			// Propagate through register copies.
			for changed := true; changed; {
				changed = false
				for _, in := range prog.Instrs {
					if in.Op == isa.OpMov && codeRegs[in.A] && !codeRegs[in.Dst] {
						codeRegs[in.Dst] = true
						changed = true
					}
				}
			}
			if len(codeRegs) == 0 {
				// The consumer reacts to *any* control value without reading
				// its code (e.g. treating every marker as a range boundary);
				// there is no dispatch to cross-check.
				continue
			}

			// The dispatch set is complete only if every use of a code
			// register is an equality test against a known constant.
			complete := true
			dispatch := map[int64]bool{}
			for _, in := range prog.Instrs {
				a, b := in.Reads()
				aCode, bCode := a != isa.NoReg && codeRegs[a], b != isa.NoReg && codeRegs[b]
				if !aCode && !bCode {
					continue
				}
				if in.Op == isa.OpMov {
					continue // copies already propagated
				}
				if in.Op != isa.OpICmpEQ || (aCode && bCode) {
					complete = false
					continue
				}
				other := b
				if bCode {
					other = a
				}
				if v, ok := consts[other]; ok {
					dispatch[v] = true
				} else {
					complete = false
				}
			}
			if !complete || s.unknown {
				continue
			}
			for _, c := range sortedCodes(s.codes) {
				if !dispatch[c] && c != arch.CtrlEnd {
					m.diag("C2", SevError, st.Name, q, -1,
						"producer can send control code %d but the consumer never dispatches it (unmatched codes are treated as stream end)", c)
				}
			}
			// With handlers on several queues the handler-val registers are
			// shared across protocols, so per-queue dead-arm attribution
			// would be guesswork; skip C3 there.
			if handledCount <= 1 {
				for _, c := range sortedDispatch(dispatch) {
					if _, ok := s.codes[c]; !ok {
						m.diag("C3", SevWarning, st.Name, q, -1,
							"consumer dispatches on control code %d that no producer sends", c)
					}
				}
			}
		}
	}
}

// codeSet is the set of control codes that can appear on a queue. unknown
// means a code was forwarded from a register the analysis cannot resolve.
type codeSet struct {
	unknown bool
	codes   map[int64]struct{}
}

func (s *codeSet) add(c int64) bool {
	if _, ok := s.codes[c]; ok {
		return false
	}
	s.codes[c] = struct{}{}
	return true
}

func (s *codeSet) describe() string {
	if s.unknown && len(s.codes) == 0 {
		return "(unknown)"
	}
	parts := make([]string, 0, len(s.codes)+1)
	for _, c := range sortedCodes(s.codes) {
		parts = append(parts, fmt.Sprintf("%d", c))
	}
	if s.unknown {
		parts = append(parts, "…")
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// sentCodes computes, per queue, the control codes that can appear at its
// consumer end, propagated to fixpoint through RA chains.
func (m *model) sentCodes() []codeSet {
	cs := make([]codeSet, len(m.pl.Queues))
	for i := range cs {
		cs[i].codes = map[int64]struct{}{}
	}
	for i := range m.pl.Stages {
		prog := m.progs[i]
		if prog == nil {
			continue
		}
		consts := constRegs(prog)
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnqCtrl:
				cs[in.Q].add(in.Imm)
			case isa.OpEnqCtrlV:
				if v, ok := consts[in.A]; ok {
					cs[in.Q].add(v)
				} else {
					cs[in.Q].unknown = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ra := range m.pl.RAs {
			if ra.InQ < 0 || ra.InQ >= len(cs) || ra.OutQ < 0 || ra.OutQ >= len(cs) {
				continue
			}
			in, out := &cs[ra.InQ], &cs[ra.OutQ]
			if in.unknown && !out.unknown {
				out.unknown = true
				changed = true
			}
			for c := range in.codes {
				if out.add(c) {
					changed = true
				}
			}
			if ra.EmitNext && out.add(ra.NextCode) {
				changed = true
			}
		}
	}
	return cs
}

// regQueueSources maps each register to the queues whose deq/peek results it
// can hold (flow-insensitive over the whole stage program).
func regQueueSources(prog *isa.Program) map[isa.Reg][]int {
	src := map[isa.Reg][]int{}
	for _, in := range prog.Instrs {
		switch in.Op {
		case isa.OpDeq, isa.OpPeek:
			src[in.Dst] = addEntity(src[in.Dst], in.Q)
		}
	}
	// Propagate through copies.
	for changed := true; changed; {
		changed = false
		for _, in := range prog.Instrs {
			if in.Op != isa.OpMov {
				continue
			}
			for _, q := range src[in.A] {
				before := len(src[in.Dst])
				src[in.Dst] = addEntity(src[in.Dst], q)
				if len(src[in.Dst]) != before {
					changed = true
				}
			}
		}
	}
	return src
}

// constRegs maps registers with exactly one definition, an OpConst, to their
// value.
func constRegs(prog *isa.Program) map[isa.Reg]int64 {
	defs := map[isa.Reg]int{}
	vals := map[isa.Reg]int64{}
	for _, in := range prog.Instrs {
		d := in.Writes()
		if d == isa.NoReg {
			continue
		}
		defs[d]++
		if in.Op == isa.OpConst {
			vals[d] = in.Imm
		} else {
			delete(vals, d)
		}
	}
	for r := range vals {
		if defs[r] != 1 {
			delete(vals, r)
		}
	}
	return vals
}

func hasQueue(list []int, q int) bool {
	for _, v := range list {
		if v == q {
			return true
		}
	}
	return false
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedCodes(set map[int64]struct{}) []int64 {
	out := make([]int64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedDispatch(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
