package verify

// W* — statically undersized queues. The cost model in internal/costmodel
// estimates, for every queue, the largest token burst a producer emits
// before its consumer is guaranteed a chance to drain, and recommends a
// capacity (clamped to the architectural QueueDepth). A queue whose
// explicit Depth override sits below that recommendation serializes its
// producer against its consumer on every burst — legal, but it forfeits the
// latency hiding the queue exists to provide, so it is reported as a
// warning rather than an error. Queues at the machine default (Depth 0) are
// never flagged: the default capacity is the clamp, so it always satisfies
// the recommendation.

import (
	"phloem/internal/arch"
	"phloem/internal/costmodel"
)

// checkCapacity runs the static throughput model over the pipeline (reusing
// the stage programs flattened by buildModel) and flags explicitly
// undersized queues.
//
//	W1: a queue's Depth override is below the recommended capacity.
func (m *model) checkCapacity() {
	rep := costmodel.AnalyzeFlat(m.pl, arch.DefaultConfig(1), m.progs)
	for _, q := range rep.Queues {
		if q.Depth > 0 && q.Depth < q.Recommended {
			m.diag("W1", SevWarning, "", q.ID, -1,
				"queue capacity %d below statically recommended %d (burst %.0f tokens, %.1f data tokens/unit)",
				q.Depth, q.Recommended, q.Burst, q.Data)
		}
	}
}
