package verify

// W*/Q4 — queue capacity rules. The cost model in internal/costmodel
// estimates, for every queue, the largest token burst a producer emits
// before its consumer is guaranteed a chance to drain, and recommends a
// capacity (clamped to the architectural QueueDepth). A queue whose Depth
// override sits below that recommendation serializes its producer against
// its consumer on every burst — legal, but it forfeits the latency hiding
// the queue exists to provide, so it is reported as a warning. The rule id
// distinguishes who is responsible: W1 blames the pipeline author (explicit
// Depth), W2 blames a compiler pass (Queue.DepthByPass). Queues at the
// machine default (Depth 0) are never flagged: the default capacity is the
// clamp, so it always satisfies the recommendation.
//
// Q4 (error) checks the premises of the commopt capacity-assignment
// deadlock argument (DESIGN.md section 14) on every pass-assigned queue,
// with an implementation independent of the pass's own Plan.Check:
//
//   - the queue must not be backward (a feedback queue whose producer sits
//     later in the forward chain than a consumer) — feedback queues close
//     the pipeline's waits-for cycles and must keep the machine default;
//   - the assigned depth must not exceed the architectural QueueDepth;
//   - the assigned depth must cover the producer's commitment floors: the
//     longest back-to-back enqueue run into the queue, and the largest
//     static number of enqueue sites in any single producing stage (the
//     stage's whole per-token commitment).
//
// A violation means an assignment could wedge the pipeline where the
// default configuration would not — exactly the regression the pass's
// proof rules out, hence an error rather than a warning.

import (
	"phloem/internal/arch"
	"phloem/internal/costmodel"
	"phloem/internal/isa"
)

// checkCapacity runs the static throughput model over the pipeline (reusing
// the stage programs flattened by buildModel) and flags undersized queues
// and unsound pass assignments.
//
//	W1: an author's Depth override is below the recommended capacity.
//	W2: a pass-assigned Depth is below the recommended capacity.
//	Q4: a pass-assigned Depth violates the deadlock-safety premises.
func (m *model) checkCapacity() {
	cfg := arch.DefaultConfig(1)
	rep := costmodel.AnalyzeFlat(m.pl, cfg, m.progs)
	for _, q := range rep.Queues {
		if q.Depth > 0 && q.Depth < q.Recommended {
			if m.pl.Queues[q.ID].DepthByPass {
				m.diag("W2", SevWarning, "", q.ID, -1,
					"pass-assigned capacity %d below statically recommended %d (burst %.0f tokens, %.1f data tokens/unit)",
					q.Depth, q.Recommended, q.Burst, q.Data)
			} else {
				m.diag("W1", SevWarning, "", q.ID, -1,
					"queue capacity %d below statically recommended %d (burst %.0f tokens, %.1f data tokens/unit)",
					q.Depth, q.Recommended, q.Burst, q.Data)
			}
		}
	}
	m.checkAssignedCapacities(cfg)
}

func (m *model) checkAssignedCapacities(cfg arch.Config) {
	var assigned []int
	for q := range m.pl.Queues {
		if m.pl.Queues[q].DepthByPass && m.pl.Queues[q].Depth > 0 {
			assigned = append(assigned, q)
		}
	}
	if len(assigned) == 0 {
		return
	}
	pos := m.chainPositions()
	gFloor, sFloor := m.commitmentFloors()
	for _, q := range assigned {
		d := m.pl.Queues[q].Depth
		if d > cfg.QueueDepth {
			m.diag("Q4", SevError, "", q, -1,
				"pass-assigned capacity %d exceeds the architectural queue depth %d", d, cfg.QueueDepth)
		}
		back := false
		for _, p := range m.producers[q] {
			for _, c := range m.consumers[q] {
				if pos[p] > pos[c] {
					back = true
				}
			}
		}
		if back {
			m.diag("Q4", SevError, "", q, -1,
				"pass assigned a backward (feedback) queue; feedback queues must keep the machine default capacity")
			continue
		}
		if d < gFloor[q] {
			m.diag("Q4", SevError, "", q, -1,
				"pass-assigned capacity %d below the longest back-to-back enqueue run (%d tokens); the producer could wedge mid-burst",
				d, gFloor[q])
		}
		if d < sFloor[q] {
			m.diag("Q4", SevError, "", q, -1,
				"pass-assigned capacity %d below the producer's per-token commitment (%d enqueue sites); a full queue could block a partially emitted token",
				d, sFloor[q])
		}
	}
}

// chainPositions ranks entities along the forward pipeline chain: stage i
// at position i, an RA half a step after the latest stage feeding its input
// queue (relay chains resolve by relaxation).
func (m *model) chainPositions() []float64 {
	n := m.numStages() + len(m.pl.RAs)
	pos := make([]float64, n)
	for i := 0; i < m.numStages(); i++ {
		pos[i] = float64(i)
	}
	for r := range m.pl.RAs {
		pos[m.numStages()+r] = -1
	}
	for round := 0; round <= len(m.pl.RAs); round++ {
		for r, ra := range m.pl.RAs {
			ent := m.numStages() + r
			if ra.InQ < 0 || ra.InQ >= len(m.pl.Queues) {
				pos[ent] = 0
				continue
			}
			best := -1.0
			for _, p := range m.producers[ra.InQ] {
				if p != ent && pos[p] > best {
					best = pos[p]
				}
			}
			if best >= 0 {
				pos[ent] = best + 0.5
			}
		}
	}
	for r := range m.pl.RAs {
		if pos[m.numStages()+r] < 0 {
			pos[m.numStages()+r] = 0
		}
	}
	return pos
}

// commitmentFloors computes, per queue, the longest back-to-back enqueue
// run (broken by any dequeue/peek or a switch to another queue) and the
// largest static number of enqueue sites in any single producing stage.
func (m *model) commitmentFloors() (group, site []int) {
	group = make([]int, len(m.pl.Queues))
	site = make([]int, len(m.pl.Queues))
	for i := range group {
		group[i], site[i] = 1, 1
	}
	for _, prog := range m.progs {
		if prog == nil {
			continue
		}
		curQ, curLen := -1, 0
		sites := map[int]int{}
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				sites[in.Q]++
				if in.Q == curQ {
					curLen++
				} else {
					curQ, curLen = in.Q, 1
				}
				if curLen > group[curQ] {
					group[curQ] = curLen
				}
			case isa.OpDeq, isa.OpPeek:
				curQ, curLen = -1, 0
			}
		}
		for q, nsites := range sites {
			if nsites > site[q] {
				site[q] = nsites
			}
		}
	}
	return group, site
}
