package verify

// White-box coverage for rules only reachable from hand-written ISA (the IR
// lowering never emits peek, so D6 cannot fire through Check's flatten path).

import (
	"testing"

	"phloem/internal/ir"
	"phloem/internal/isa"
	"phloem/internal/pipeline"
)

func modelFor(prog *isa.Program, numQueues int) *model {
	pl := &pipeline.Pipeline{Prog: &ir.Prog{Name: "white"}}
	for i := 0; i < numQueues; i++ {
		pl.AddQueue("q")
	}
	pl.Stages = []*pipeline.Stage{{Name: prog.Name}}
	return &model{pl: pl, rep: &Report{Pipeline: "white"}, progs: []*isa.Program{prog}}
}

func TestD6PeekWithoutDeq(t *testing.T) {
	b := isa.NewBuilder("peeker")
	r := b.Peek(0)
	b.Br(r, "spin")
	b.Label("spin")
	b.Halt()
	m := modelFor(b.MustBuild(), 1)
	m.checkDataflow()
	want := "warning [D6] peeker@0 q0(q): queue is peeked but never dequeued in this stage"
	for _, d := range m.rep.Diags {
		if d.Rule == "D6" {
			if got := d.String(); got != want {
				t.Fatalf("D6 renders as %q, want %q", got, want)
			}
			return
		}
	}
	t.Fatalf("expected D6 warning, got:\n%s", m.rep.String())
}

func TestD6PeekWithDeqIsClean(t *testing.T) {
	b := isa.NewBuilder("peeker")
	r := b.Peek(0)
	b.Br(r, "take")
	b.Label("take")
	b.Deq(0)
	b.Halt()
	m := modelFor(b.MustBuild(), 1)
	m.checkDataflow()
	for _, d := range m.rep.Diags {
		if d.Rule == "D6" {
			t.Fatalf("unexpected D6:\n%s", m.rep.String())
		}
	}
}
