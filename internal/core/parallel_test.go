package core_test

// The concurrent search engine must be invisible: for any
// Options.Parallelism the autotuner and Search return byte-identical
// results, the fingerprint dedup reuses coinciding candidates instead of
// re-measuring them, and branch-and-bound aborts provably-losing candidates
// with SkipBudget (unless Options.Exhaustive asks for the full landscape).

import (
	"fmt"
	"strings"
	"testing"

	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// renderResult flattens everything observable about an autotune Result into
// one comparable string.
func renderResult(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "best=%q stages=%d ras=%d queues=%d cycles=%d searched=%d deduped=%d enum=%d replicate=%d\n",
		res.Pipeline.Description, res.Pipeline.NumStages(), len(res.Pipeline.RAs),
		len(res.Pipeline.Queues), res.TrainCycles, res.Searched, res.Deduped,
		res.Enumerated, res.ReplicateRequested)
	for _, s := range res.Skips {
		fmt.Fprintf(&b, "skip phase=%d subset=%v reason=%s err=%v\n", s.Phase, s.Subset, s.Reason, s.Err)
	}
	return b.String()
}

// renderPoints flattens Search output the same way.
func renderPoints(points []core.SearchPoint) string {
	var b strings.Builder
	for _, pt := range points {
		fmt.Fprintf(&b, "stages=%d cycles=%d subset=%v", pt.TotalStages, pt.Cycles, pt.Subset)
		if pt.Skip != nil {
			fmt.Fprintf(&b, " skip phase=%d reason=%s err=%v", pt.Skip.Phase, pt.Skip.Reason, pt.Skip.Err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestAutotuneParallelismDeterministic(t *testing.T) {
	train := graph.Grid("t", 24, 24, 9)
	run := func(parallelism int) (string, string) {
		var trace strings.Builder
		opt := core.DefaultOptions()
		opt.Mode = core.Autotune
		opt.Training = []core.TrainFunc{bfsTrainer(train)}
		opt.Parallelism = parallelism
		opt.Trace = func(format string, args ...any) {
			fmt.Fprintf(&trace, format+"\n", args...)
		}
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return renderResult(res), trace.String()
	}
	wantRes, wantTrace := run(1)
	for _, par := range []int{2, 3, 4, 8, 0} {
		gotRes, gotTrace := run(par)
		if gotRes != wantRes {
			t.Errorf("parallelism %d result differs from serial:\n--- serial\n%s--- parallel\n%s",
				par, wantRes, gotRes)
		}
		if gotTrace != wantTrace {
			t.Errorf("parallelism %d trace differs from serial:\n--- serial\n%s--- parallel\n%s",
				par, wantTrace, gotTrace)
		}
	}
}

func TestSearchParallelismDeterministic(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid("s", 16, 16, 4)
	run := func(parallelism int) string {
		opt := core.DefaultOptions()
		opt.Training = []core.TrainFunc{bfsTrainer(g)}
		opt.Parallelism = parallelism
		points, err := core.Search(p, opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return renderPoints(points)
	}
	want := run(1)
	for _, par := range []int{2, 4, 8, 0} {
		if got := run(par); got != want {
			t.Errorf("parallelism %d search points differ from serial:\n--- serial\n%s--- parallel\n%s",
				par, want, got)
		}
	}
}

// TestAutotuneDedupSkipsCoincidingCandidates pins the fixed redundancy: the
// static pipeline's configuration reappears in the per-phase enumeration
// (the static cut is itself a subset of the top-ranked points), and before
// fingerprint dedup it was built and measured twice.
func TestAutotuneDedupSkipsCoincidingCandidates(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	trainCalls := 0
	counting := func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
		trainCalls++
		return bfsTrainer(train)(p, b)
	}
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = []core.TrainFunc{counting}
	opt.Parallelism = 1 // serial so trainCalls needs no synchronization
	opt.Exhaustive = true
	opt.BudgetFactor = -1 // unbudgeted: every built candidate measures fully
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped < 1 {
		t.Fatalf("expected the static configuration to be deduplicated against the enumeration, Deduped=%d", res.Deduped)
	}
	// Every measured pipeline ran the single training input exactly once:
	// deduplicated candidates reused the memoized measurement.
	if trainCalls != res.Searched {
		t.Errorf("%d training runs for %d searched pipelines: dedup should measure each configuration once",
			trainCalls, res.Searched)
	}
	t.Logf("searched=%d deduped=%d skips=%d trainCalls=%d", res.Searched, res.Deduped, len(res.Skips), trainCalls)
}

// injectSlowdown makes every two-stage candidate finish, but only after a
// long, pointless spin: it re-stores an element it just loaded `iters`
// times, so the pipeline's result stays correct while its cycle count
// inflates by a few times the serial baseline. Under branch-and-bound the
// tightened bound (the best total so far) aborts these candidates with
// SkipBudget; under Options.Exhaustive they run to completion inside the
// full BudgetFactor budget.
func injectSlowdown(iters int64) func(*pipeline.Pipeline) {
	return func(pl *pipeline.Pipeline) {
		if pl.NumStages() != 2 {
			return
		}
		// The hook runs on a per-candidate program clone, so appending a
		// counter variable is safe even with concurrent workers.
		v := pl.Prog.NewVar("slowspin", ir.KInt)
		tmp := pl.Prog.NewVar("slowtmp", ir.KInt)
		// Loop.Pre runs every iteration (the back-edge re-enters before it),
		// so the countdown init must precede the loop statement itself.
		init := &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpMov, A: ir.C(iters)}}
		spin := &ir.Loop{
			ID:   9902,
			Cond: ir.V(v),
			Body: []ir.Stmt{
				&ir.Assign{Dst: tmp, Src: &ir.RvalLoad{LoadID: 9902, Slot: 0, Idx: ir.C(0)}},
				&ir.Store{StoreID: 9902, Slot: 0, Idx: ir.C(0), Val: ir.V(tmp)},
				&ir.Assign{Dst: v, Src: &ir.RvalBin{Op: ir.OpSub, A: ir.V(v), B: ir.C(1)}},
			},
		}
		st := pl.Stages[0]
		st.Body = append([]ir.Stmt{init, spin}, st.Body...)
	}
}

func TestBranchAndBoundAbortsSlowCandidates(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	serialCycles, err := bfsTrainer(train)(pipeline.NewSerial(p), core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	base := func() core.Options {
		opt := core.DefaultOptions()
		opt.Mode = core.Autotune
		opt.Training = []core.TrainFunc{bfsTrainer(train)}
		// Each spin iteration costs several cycles (and several trace
		// entries), so serial/8 iterations put the slowed candidates a
		// little past the serial baseline — over the tightened bound (the
		// best so far is never worse than serial), comfortably inside the
		// DefaultBudgetFactor cycle budget and the functional trace cap.
		opt.PostBuild = injectSlowdown(int64(serialCycles) / 8)
		opt.SkipVerify = true // the injected spin is not verifier-clean
		return opt
	}

	res, err := core.Compile(p, base())
	if err != nil {
		t.Fatal(err)
	}
	budgetSkips := 0
	for _, s := range res.Skips {
		if s.Reason == core.SkipBudget {
			budgetSkips++
		}
	}
	if budgetSkips == 0 {
		t.Fatalf("branch-and-bound did not abort any slowed candidate; skips: %v", res.Skips)
	}
	if res.Pipeline.NumStages() == 2 {
		t.Error("autotune picked a deliberately slowed pipeline")
	}

	// The same candidates complete when tightening is off: the aborts above
	// came from the best-so-far bound, not from the base budget.
	exOpt := base()
	exOpt.Exhaustive = true
	exRes, err := core.Compile(p, exOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range exRes.Skips {
		if s.Reason == core.SkipBudget {
			t.Errorf("exhaustive search still budget-aborted %v: %v", s.Subset, s.Err)
		}
	}
	if exRes.Searched <= res.Searched-budgetSkips {
		t.Errorf("exhaustive search should measure at least the aborted candidates: %d vs %d (with %d aborts)",
			exRes.Searched, res.Searched, budgetSkips)
	}
	t.Logf("default: searched=%d budgetSkips=%d; exhaustive: searched=%d",
		res.Searched, budgetSkips, exRes.Searched)
}
