package core_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

// TestPipelineStructureGoldens pins the static flow's output shape for every
// benchmark: stage counts, RA counts, and RA modes. These are regression
// anchors for the cost model and the passes (a structural change here should
// be a conscious decision).
func TestPipelineStructureGoldens(t *testing.T) {
	cases := []struct {
		name    string
		source  string
		stages  int
		ras     int
		raModes []arch.RAMode
	}{
		{
			// Driver, vertex doubler, update + fringe scan -> nodes
			// indirect -> edges scan (the paper's BFS pipeline).
			name: "BFS", source: workloads.BFSSource,
			stages: 3, ras: 3,
			raModes: []arch.RAMode{arch.RAScan, arch.RAIndirect, arch.RAScan},
		},
		{
			// Driver, nodes stage, label accumulator + edges scan.
			name: "CC", source: workloads.CCSource,
			stages: 3, ras: 1,
			raModes: []arch.RAMode{arch.RAScan},
		},
		{
			// Phased: push phase decouples at delta/nodes/edges; apply
			// phase stays serial (all its arrays are read-write).
			name: "PRD", source: workloads.PRDSource,
			stages: 3, ras: 1,
			raModes: []arch.RAMode{arch.RAScan},
		},
		{
			// Driver, nodes stage, mask accumulator; edges scan chained
			// into the visited indirect RA (the relay stage dissolves).
			name: "Radii", source: workloads.RadiiSource,
			stages: 3, ras: 2,
			raModes: []arch.RAMode{arch.RAScan, arch.RAIndirect},
		},
		{
			// The merge loop cannot be decoupled across (data-dependent
			// bounds force item-level feedback); coordinate points only.
			name: "SpMM", source: workloads.SpMMSource,
			stages: 3, ras: 0,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := core.CompileSource(c.source, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			pl := res.Pipeline
			if pl.NumStages() != c.stages || len(pl.RAs) != c.ras {
				t.Errorf("%s: %d stages + %d RAs, want %d + %d\n%s",
					c.name, pl.NumStages(), len(pl.RAs), c.stages, c.ras, pl.Describe())
			}
			for i, mode := range c.raModes {
				if i < len(pl.RAs) && pl.RAs[i].Mode != mode {
					t.Errorf("%s RA %d mode %v, want %v", c.name, i, pl.RAs[i].Mode, mode)
				}
			}
		})
	}
}

// TestTacoPipelineGoldens pins the Taco kernels' static shapes.
func TestTacoPipelineGoldens(t *testing.T) {
	cases := []struct {
		k      taco.Kernel
		stages int
		ras    int
	}{
		{taco.SpMV, 3, 3},     // cols scan + vals scan + x indirect
		{taco.Residual, 3, 3}, // like SpMV with the extra b[i] in the tail
		// phase 2 decouples with paired cols/vals scans (y is read-write,
		// so no x-style indirect RA applies); phase 1 is regular
		{taco.MTMul, 3, 2},
	}
	for _, c := range cases {
		src, err := taco.Emit(c.k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.CompileSource(src, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.k, err)
		}
		if res.Pipeline.NumStages() != c.stages || len(res.Pipeline.RAs) != c.ras {
			t.Errorf("%s: %d stages + %d RAs, want %d + %d\n%s", c.k,
				res.Pipeline.NumStages(), len(res.Pipeline.RAs),
				c.stages, c.ras, res.Pipeline.Describe())
		}
	}
}
