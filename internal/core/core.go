// Package core is the Phloem compiler driver: it takes serial C-subset
// source, finds decoupling points with the static cost model (Sec. V), runs
// the pipelining passes (Sec. IV-B), and — in profile-guided mode —
// enumerates candidate pipelines, measures them on training inputs, and
// selects the best (Fig. 8).
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"phloem/internal/analysis"
	"phloem/internal/arch"
	"phloem/internal/commopt"
	"phloem/internal/effects"
	"phloem/internal/ir"
	"phloem/internal/lower"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/source"
	"phloem/internal/verify"
)

// Mode selects the compilation flow of Fig. 8.
type Mode int

const (
	// Static uses the cost model's top-ranked points directly.
	Static Mode = iota
	// Autotune profiles candidate pipelines on training inputs.
	Autotune
)

// Options configures a compilation.
type Options struct {
	// Mode selects static or profile-guided point selection.
	Mode Mode
	// MaxThreads bounds the stage count (SMT width, default 4).
	MaxThreads int
	// Passes selects the pipelining passes (Fig. 6 ablations). Defaults to
	// all passes when zero-valued and EnableAblation is false.
	Passes passes.Options
	// EnableAblation uses Passes exactly as given (otherwise all passes run).
	EnableAblation bool
	// Machine is the build-target configuration.
	Machine arch.Config
	// Training supplies inputs for Autotune mode: each function receives a
	// candidate pipeline and a measurement budget and returns its cycle
	// count (or an error to skip).
	Training []TrainFunc
	// BudgetFactor scales the per-candidate budget relative to the serial
	// baseline: a candidate is aborted once it runs past factor x the serial
	// cycle count (0 = DefaultBudgetFactor; negative disables budgeting).
	BudgetFactor int
	// MaxCandidates bounds the candidate points considered per phase during
	// the search (default 5).
	MaxCandidates int
	// Parallelism bounds the candidate-search worker pool: up to this many
	// candidates build, verify, and measure concurrently, each on private
	// machines (0 = runtime.GOMAXPROCS(0), 1 = fully serial). Results merge
	// in enumeration order, so Result and Search output are identical for
	// every value.
	Parallelism int
	// Exhaustive disables branch-and-bound budget tightening: every
	// candidate is measured under the full BudgetFactor budget even after a
	// faster best is known. Landscape experiments (Fig. 13) set this to see
	// true cycle counts for slow candidates; the default search aborts them
	// with SkipBudget instead.
	Exhaustive bool
	// TopK, when > 0, statically ranks every unique candidate with the
	// internal/costmodel throughput predictor before any simulation and
	// measures only the TopK best-predicted configurations; the rest are
	// recorded as SkipPruned with their predicted rank and cycles. The
	// static pipeline is always retained as a fallback. 0 measures every
	// candidate; Exhaustive overrides TopK (the escape hatch really does
	// measure everything).
	TopK int
	// Trace receives search progress lines (optional).
	Trace func(format string, args ...any)
	// CommOpt enables the static queue-communication optimization pass
	// (internal/commopt) on every built pipeline, including each autotune
	// candidate: inferred per-queue capacities are applied (never touching
	// explicit author depths, never exceeding Machine.QueueDepth) and
	// duplicate multicast sends are rewritten into hardware fan-out specs.
	// Off by default; compiled output is bit-identical when off.
	CommOpt bool
	// SkipVerify disables the static pipeline verifier that otherwise
	// rejects structurally broken pipelines before they reach a simulator
	// (use it to inspect or lint a deliberately broken build).
	SkipVerify bool
	// PostBuild, when set, is applied to every built pipeline before it is
	// verified or measured. It exists for fault injection in tests and for
	// `phloemc -lint` demonstrations; production callers leave it nil. With
	// Parallelism > 1 it is called from concurrent search workers (each on
	// its own candidate pipeline), so implementations must not touch shared
	// mutable state.
	PostBuild func(*pipeline.Pipeline)
	// Observer, when set, receives typed search-lifecycle events — one per
	// candidate state transition (enumerated, deduped, pruned, build,
	// commopt, verify, train, replay, accept, skip, cancel) plus the
	// search-level spans — with monotonic wall-time offsets and per-worker
	// attribution (see observer.go). Mirrors the sim.Probe contract: with a
	// nil Observer no timestamps are taken and every search output (winner,
	// counters, skips, SearchPoints, journal bytes) is bit-identical; with
	// one installed the stream is purely additive. Implementations must be
	// safe for concurrent use when Parallelism > 1 and must not block.
	// internal/obs provides the standard collector/progress observers.
	Observer Observer
	// CandidateProbe, when set, supplies a telemetry probe (typically a
	// fresh telemetry.Collector) for each unique autotune/Search candidate,
	// identified by phase index and point subset (the static pipeline is
	// phase -1 with a nil subset). The factory is called once per unique
	// candidate at enumeration time, on one goroutine, in enumeration order
	// — deduplicated candidates, bound-exact re-measurements, and
	// journal-replayed candidates are not probed. The probe samples every
	// Machine.TelemetryInterval cycles and observes every training input of
	// that candidate; it never changes measured cycles, but the probe
	// itself must tolerate being driven from a worker goroutine when
	// Parallelism > 1.
	CandidateProbe func(phase int, subset []int) sim.Probe
	// Ctx, when non-nil, cancels compilation and the autotune search
	// cooperatively: the simulator polls it at amortized intervals, and in
	// Autotune mode a cancelled search returns a structured partial Result
	// — best-so-far incumbent, full counters, and every unmeasured
	// candidate tagged SkipCancelled — with a nil error. A nil or
	// background context leaves results and Stats bit-identical.
	Ctx context.Context
	// Deadline bounds the whole compilation in wall-clock time
	// (0 = unbounded). It is implemented as a context timeout layered over
	// Ctx, so expiry behaves exactly like cancellation.
	Deadline time.Duration
	// Checkpoint, when non-empty, is the path of an append-only JSONL
	// journal recording each measured candidate's training outcome, keyed
	// by candidate fingerprint under a program/arch/options hash. An
	// interrupted search leaves its completed measurements behind; see
	// Resume.
	Checkpoint string
	// Resume replays measurements recorded in the Checkpoint journal
	// instead of re-simulating them, so an interrupted-then-resumed search
	// reproduces the uninterrupted winner, counters, skips, and
	// SearchPoint order byte-identically. A journal whose key does not
	// match the current program/arch/options — or whose tail is corrupt —
	// degrades gracefully to re-measurement; without Resume an existing
	// journal is truncated and rewritten.
	Resume bool
	// Backend selects the execution engine Execute uses when a caller
	// runs the compiled pipeline through core: the cycle-accurate
	// simulator (default) or the native Go-concurrency backend (wall
	// time and functional results only; see internal/native). Compile
	// itself never consults it — autotune measurement always needs the
	// timing model — so compiled output is identical for every value.
	Backend Backend

	// obsw is the resolved Observer emission state (nil = disabled),
	// threaded on the Options copy so build/verify sites deep in the flow
	// can emit spans; obsC is the candidate identity those sites attribute
	// their spans to. Both are set internally by Compile/Search/the search
	// engine, never by callers.
	obsw *obsWriter
	obsC obsCand
}

// obsCand is the candidate identity (plus worker attribution) carried on an
// Options copy into buildCandidate/finishPipeline span emission.
type obsCand struct {
	seq    int
	phase  int
	subset []int
	fp     string
	worker int
}

// obsEvent seeds an event with the carried candidate identity.
func (o *Options) obsEvent(kind EventKind) SearchEvent {
	return SearchEvent{Kind: kind, Seq: o.obsC.seq, Phase: o.obsC.phase,
		Subset: o.obsC.subset, FP: o.obsC.fp, Worker: o.obsC.worker}
}

// searchContext resolves Ctx and Deadline into the effective context for
// one compilation. It returns nil (plus a no-op cancel) when neither is
// set, so the default path skips context plumbing entirely.
func (o *Options) searchContext() (context.Context, context.CancelFunc) {
	if o.Ctx == nil && o.Deadline <= 0 {
		return nil, func() {}
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline > 0 {
		return context.WithTimeout(ctx, o.Deadline)
	}
	return ctx, func() {}
}

// probed attaches the per-candidate telemetry probe (if configured) to a
// copy of the measurement budget.
func (o *Options) probed(b Budget, phase int, subset []int) Budget {
	if o.CandidateProbe != nil {
		b.Probe = o.CandidateProbe(phase, subset)
		b.TelemetryInterval = o.Machine.TelemetryInterval
	}
	return b
}

// DefaultOptions returns an all-passes static compilation for the Table III
// machine.
func DefaultOptions() Options {
	return Options{
		MaxThreads: 4,
		Machine:    arch.DefaultConfig(1),
	}
}

// Result is a compiled pipeline plus how it was chosen.
type Result struct {
	Pipeline *pipeline.Pipeline
	Prog     *ir.Prog
	// Searched reports how many distinct pipelines the autotuner measured:
	// the serial baseline plus every unique candidate that built cleanly and
	// entered training (including ones the budget aborted mid-measurement).
	// Deduplicated candidates are never re-measured and do not count.
	Searched int
	// Deduped counts enumerated candidates whose configuration coincided
	// with an earlier candidate's (canonical fingerprint match) and reused
	// its memoized result instead of being rebuilt and re-measured.
	Deduped int
	// Enumerated is the total number of candidate configurations the search
	// walked (the static pipeline plus every per-phase subset, duplicates
	// included; the serial baseline is not a candidate).
	Enumerated int
	// Pruned counts unique candidates the Options.TopK rank phase excluded
	// from simulation (autotune mode only).
	Pruned int
	// RankMillis is the wall-clock time the TopK rank phase spent building
	// and statically pricing candidates, in milliseconds. Timing, not a
	// search result: it varies run to run and is excluded from determinism
	// comparisons.
	RankMillis int64
	// TrainCycles is the selected pipeline's summed training cycle count
	// (autotune mode only).
	TrainCycles uint64
	// ReplicateRequested carries the `#pragma replicate(N)` count; apply it
	// with pipeline.Replicate, supplying the shared arrays and per-replica
	// scalars (the replicate_arguments() analogue of Sec. IV-C).
	ReplicateRequested int
	// Skips records every candidate the autotuner dropped and why
	// (autotune mode only).
	Skips []CandidateSkip
	// Points records every unique candidate's outcome in enumeration order
	// (autotune mode only): measured training cycles or the skip, next to
	// the static cost model's prediction — so prediction error is auditable
	// from any autotune run without a separate Search pass. Deduplicated
	// occurrences are not repeated.
	Points []SearchPoint
	// Cancelled reports that the autotune search stopped early because
	// Options.Ctx was cancelled or Options.Deadline expired. The Result is
	// still structurally complete: Pipeline is the best candidate measured
	// before the cut (at worst the serial fallback), counters cover every
	// enumerated candidate, and each unmeasured candidate is recorded in
	// Skips and Points with SkipCancelled.
	Cancelled bool
	// CancelCause is the context error behind a cancellation
	// (context.Canceled or context.DeadlineExceeded; nil otherwise).
	CancelCause error
	// Replayed counts measurements restored from the Options.Checkpoint
	// journal instead of simulated (the serial baseline counts too). Like
	// RankMillis this is execution metadata, not a search result, and is
	// excluded from determinism comparisons.
	Replayed int
	// AliasStats counts the effects analysis's parameter-pair verdicts
	// (CompileSource only; zero for hand-built programs).
	AliasStats effects.Stats
	// SourceWarnings carries non-fatal frontend diagnostics, e.g. array
	// parameters compiled without restrict because the effects analysis
	// proved them safe.
	SourceWarnings []effects.Warning
}

// CompileSource parses, checks, and lowers source, then builds a pipeline.
// Between Check and lowering it runs the memory-effects analysis: kernels
// whose array parameters may alias with an unprovable dependence are
// rejected here with a positioned E0 error; unannotated-but-proven-safe
// parameters compile with a warning on Result.SourceWarnings.
func CompileSource(src string, opt Options) (*Result, error) {
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: compile cancelled: %w", err)
		}
	}
	fn, err := source.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: parse: %w", err)
	}
	if err := source.Check(fn); err != nil {
		return nil, fmt.Errorf("core: check: %w", err)
	}
	eff := effects.Analyze(fn)
	if err := eff.Err(); err != nil {
		return nil, fmt.Errorf("core: effects: %w", err)
	}
	p, err := lower.FromAST(fn)
	if err != nil {
		return nil, fmt.Errorf("core: lower: %w", err)
	}
	res, err := Compile(p, opt)
	if err != nil {
		return nil, err
	}
	res.AliasStats = eff.Stats
	res.SourceWarnings = eff.Warnings()
	return res, nil
}

// Compile builds a pipeline from an already-lowered program. No panic from
// the pass pipeline, verifier, or training runs escapes: anything recovered
// becomes an error.
func Compile(p *ir.Prog, opt Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: compile panicked: %v", r)
		}
	}()
	if opt.MaxThreads <= 0 {
		opt.MaxThreads = 4
	}
	if opt.Machine.Cores == 0 {
		opt.Machine = arch.DefaultConfig(1)
	}
	if !opt.EnableAblation {
		opt.Passes = passes.Default()
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 5
	}
	// Resolve Ctx/Deadline once; everything below sees the effective
	// context on opt.Ctx (nil when neither is configured).
	ctx, cancel := opt.searchContext()
	defer cancel()
	if ctx != nil {
		opt.Ctx, opt.Deadline = ctx, 0
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: compile cancelled: %w", err)
		}
	}
	// Resolve the Observer once; the obsWriter rides every Options copy so
	// build/verify/measure sites emit against one shared clock anchor.
	opt.obsw = newObsWriter(opt.Observer)
	opt.obsC = obsCand{seq: -1, phase: -1}

	an := analysis.New(p)
	phases := analysis.ProgramPhases(p.Body)
	cands := make([][]*analysis.Candidate, len(phases))
	for i, ph := range phases {
		cands[i] = an.Candidates(ph)
	}

	if opt.Mode == Autotune && len(opt.Training) > 0 {
		return autotune(p, phases, cands, opt)
	}
	return buildStatic(p, cands, opt)
}

func buildCfg(opt Options) passes.BuildConfig {
	return passes.BuildConfig{
		MaxRAs:         opt.Machine.MaxRAs,
		ThreadsPerCore: opt.Machine.ThreadsPerCore,
	}
}

// staticCut selects the (N-1) highest-ranked points, dropping points whose
// predicted profit is negligible next to the top one (decoupling a nearly
// free access only adds queue traffic).
func staticCut(cs []*analysis.Candidate, maxThreads int) []*analysis.Candidate {
	// The static flow only decouples at freely movable loads; prefetch-only
	// boundaries (race-pinned loads) are left to the autotuner.
	var movable []*analysis.Candidate
	for _, c := range cs {
		if !c.PrefetchOnly {
			movable = append(movable, c)
		}
	}
	k := maxThreads - 1
	if k > len(movable) {
		k = len(movable)
	}
	cut := movable[:k]
	if len(cut) > 0 {
		thresh := cut[0].Rank / 100
		for len(cut) > 1 && cut[len(cut)-1].Rank < thresh {
			cut = cut[:len(cut)-1]
		}
	}
	return analysis.OrderPoints(cut)
}

// buildStatic picks the (N-1) highest-ranked points per phase; phases with
// `#pragma decouple` marks use the programmer's points instead (Table II).
func buildStatic(p *ir.Prog, cands [][]*analysis.Candidate, opt Options) (*Result, error) {
	opt.obsw.instant(SearchEvent{Kind: EvSearchStart, Seq: -1, Phase: -1, Mode: "static"})
	an := analysis.New(p)
	phases := analysis.ProgramPhases(p.Body)
	points := make([][]*analysis.Candidate, len(cands))
	for i, cs := range cands {
		if forced := an.ForcedPoints(phases[i]); len(forced) > 0 {
			points[i] = forced
			continue
		}
		points[i] = staticCut(cs, opt.MaxThreads)
	}
	t0 := opt.obsw.now()
	pipe, err := passes.Build(p, points, opt.Passes, buildCfg(opt))
	if err != nil {
		return nil, err
	}
	opt.obsw.span(opt.obsEvent(EvBuild), t0)
	if err := finishPipeline(pipe, opt); err != nil {
		return nil, err
	}
	opt.obsw.instant(SearchEvent{Kind: EvSearchEnd, Seq: -1, Phase: -1, Mode: "static"})
	return &Result{Pipeline: pipe, Prog: p, ReplicateRequested: p.Replicate}, nil
}

// finishPipeline runs the communication optimization pass (when enabled),
// applies the PostBuild hook, and, unless SkipVerify is set, rejects
// pipelines the static verifier finds broken.
func finishPipeline(pipe *pipeline.Pipeline, opt Options) error {
	if opt.CommOpt {
		t0 := opt.obsw.now()
		if _, err := commopt.Apply(pipe, opt.Machine, commopt.Options{Capacities: true, Multicast: true}); err != nil {
			return fmt.Errorf("core: commopt %q: %w", pipe.Prog.Name, err)
		}
		opt.obsw.span(opt.obsEvent(EvCommOpt), t0)
	}
	if opt.PostBuild != nil {
		opt.PostBuild(pipe)
	}
	if opt.SkipVerify {
		return nil
	}
	t0 := opt.obsw.now()
	rep := verify.Check(pipe)
	opt.obsw.span(opt.obsEvent(EvVerify), t0)
	if rep.HasErrors() {
		msg := ""
		for _, d := range rep.Errors() {
			msg += "\n  " + d.String()
		}
		return fmt.Errorf("core: pipeline %q %w:%s", pipe.Prog.Name, ErrVerify, msg)
	}
	return nil
}

// autotune enumerates candidate point subsets per phase (from the
// MaxCandidates highest-ranked), builds each pipeline, runs it on the
// training inputs, and returns the fastest (Sec. V, "Autotuning decoupling
// points"). Phases are tuned jointly when there is one phase (the common
// case); multi-phase programs tune each phase greedily against the others'
// static choices to keep the search tractable.
//
// The enumeration is handed to the search engine in search.go, which
// deduplicates coinciding configurations (the static pipeline is candidate
// zero, so an enumerated subset equal to the static cut is never re-measured),
// measures candidates on Options.Parallelism workers, and tightens the cycle
// budget to the best total seen so far — slower candidates abort with
// SkipBudget since they cannot win (disable with Options.Exhaustive).
//
// The search is crash-proof: the serial pipeline (measured first, and the
// source of the per-candidate budget) is a guaranteed-valid fallback best,
// every candidate build+measure runs under panic recovery, and each dropped
// candidate is recorded on Result.Skips with a structured reason.
func autotune(p *ir.Prog, phases []*analysis.Phase, cands [][]*analysis.Candidate, opt Options) (*Result, error) {
	trace := opt.Trace
	if trace == nil {
		trace = func(string, ...any) {}
	}
	opt.obsw.instant(SearchEvent{Kind: EvSearchStart, Seq: -1, Phase: -1, Mode: "autotune"})
	jr, err := openJournal(p, opt, "autotune", trace)
	if err != nil {
		return nil, err
	}
	defer jr.close()
	serial := pipeline.NewSerial(p)
	serialCycles, replayedSerial := jr.serialCycles()
	if !replayedSerial {
		t0 := opt.obsw.now()
		serialCycles, err = measure(serial, opt, Budget{Ctx: opt.Ctx})
		if err != nil {
			// The serial program itself fails (or the search was cancelled
			// before the baseline finished): nothing to tune against.
			return nil, fmt.Errorf("core: serial baseline failed training: %w", err)
		}
		jr.recordSerial(serialCycles)
		opt.obsw.span(SearchEvent{Kind: EvSerial, Seq: -1, Phase: -1, Cycles: serialCycles}, t0)
	} else {
		opt.obsw.instant(SearchEvent{Kind: EvSerial, Seq: -1, Phase: -1,
			Cycles: serialCycles, Replayed: true})
	}
	budget := candidateBudget(serialCycles, opt.BudgetFactor)
	// The trace deliberately omits the parallelism level: search traces are
	// byte-identical for every Options.Parallelism value.
	trace("autotune: serial baseline %d train cycles (candidate budget %d cycles)",
		serialCycles, budget.Cycles)

	tasks := newTaskList(opt, budget)
	tasks.add(-1, nil, staticFullPoints(p, phases, cands, opt.MaxThreads))
	tasks.enumerate(phases, cands, staticEnumPoints(cands, opt.MaxThreads),
		opt.MaxCandidates, opt.MaxThreads)
	emitEnumerated(opt, tasks.tasks)
	pruned, rankMS := rankAndPrune(p, opt, tasks.tasks)
	if pruned > 0 {
		trace("autotune: rank phase pruned %d of %d unique candidates (top-%d survive)",
			pruned, len(tasks.seen), opt.TopK)
	}

	res := &Result{Pipeline: serial, Prog: p, Searched: 1, TrainCycles: serialCycles,
		ReplicateRequested: p.Replicate, Enumerated: len(tasks.tasks),
		Pruned: pruned, RankMillis: rankMS}
	s := newSearcher(p, opt, budget, serialCycles)
	s.ctx, s.journal = opt.Ctx, jr
	s.run(tasks.tasks, func(t *candTask, f *candFinal) {
		if !f.dup {
			pt := SearchPoint{TotalStages: f.stages, Cycles: f.cycles,
				Subset: t.subset, Skip: f.skip, PredictedRank: t.predRank}
			if t.predOK {
				pt.PredictedCycles = t.predCycles
			}
			res.Points = append(res.Points, pt)
		}
		switch {
		case f.dup:
			res.Deduped++
			if f.skip != nil {
				res.Skips = append(res.Skips, *f.skip)
			}
			trace("autotune: pipeline %s deduplicated (same configuration as an earlier candidate)",
				subsetDesc(t))
		case f.skip != nil:
			if f.pipe != nil && f.skip.Reason != SkipPruned {
				// Built cleanly and entered measurement before failing.
				// (Pruned candidates were built by the rank phase but
				// never measured.)
				res.Searched++
			}
			res.Skips = append(res.Skips, *f.skip)
			trace("autotune: pipeline %s skipped (%s): %v", subsetDesc(t), f.skip.Reason, f.skip.Err)
		default:
			res.Searched++
			trace("autotune: pipeline %s: %d stages (+%d RAs) -> %d cycles",
				subsetDesc(t), f.pipe.NumStages(), len(f.pipe.RAs), f.cycles)
			if f.cycles < res.TrainCycles {
				res.TrainCycles, res.Pipeline = f.cycles, f.pipe
			}
		}
	})
	res.Replayed = jr.replayCount()
	if opt.Ctx != nil {
		if cerr := opt.Ctx.Err(); cerr != nil {
			res.Cancelled, res.CancelCause = true, cerr
			trace("autotune: search cancelled (%v); returning best-so-far pipeline", cerr)
		}
	}
	opt.obsw.instant(SearchEvent{Kind: EvSearchEnd, Seq: -1, Phase: -1, Mode: "autotune",
		Cycles: res.TrainCycles, N: res.Replayed})
	return res, nil
}

// emitEnumerated reports every walked candidate configuration to the
// Observer, in enumeration order, before any ranking or measurement.
func emitEnumerated(opt Options, tasks []*candTask) {
	if opt.obsw == nil {
		return
	}
	for _, t := range tasks {
		opt.obsw.instant(SearchEvent{Kind: EvEnumerated, Seq: t.seq, Phase: t.phase,
			Subset: t.subset, FP: t.fp, Dup: t.dupOf >= 0})
	}
}

// buildCandidate builds and verifies one candidate pipeline under panic
// recovery, returning a structured skip on any failure.
func buildCandidate(p *ir.Prog, phase int, subset []int, points [][]*analysis.Candidate,
	opt Options) (pipe *pipeline.Pipeline, skip *CandidateSkip) {
	defer func() {
		if r := recover(); r != nil {
			pipe = nil
			skip = &CandidateSkip{Phase: phase, Subset: subset, Reason: SkipPanic, Err: &panicError{val: r}}
		}
	}()
	pipe, err := passes.Build(p, points, opt.Passes, buildCfg(opt))
	if err != nil {
		return nil, &CandidateSkip{Phase: phase, Subset: subset, Reason: SkipBuild, Err: err}
	}
	if err := finishPipeline(pipe, opt); err != nil {
		return nil, &CandidateSkip{Phase: phase, Subset: subset, Reason: SkipVerifier, Err: err}
	}
	return pipe, nil
}

// SearchPoint is one measured (or skipped) candidate pipeline — the raw
// data behind Fig. 13.
type SearchPoint struct {
	TotalStages int
	Cycles      uint64
	Subset      []int
	// Skip is non-nil when the candidate was dropped instead of measured
	// (Cycles is then meaningless). Plot consumers filter on Skip == nil.
	Skip *CandidateSkip
	// PredictedCycles is the static cost model's estimate for this
	// configuration (abstract units, not simulator cycles; 0 when the
	// candidate failed to build). Recorded next to the measured cycles so
	// prediction error is auditable.
	PredictedCycles uint64
	// PredictedRank is this configuration's 1-based position when unique
	// configurations are ordered by PredictedCycles (duplicates share the
	// original's rank; 0 when the candidate failed to build).
	PredictedRank int
}

// Search enumerates and measures all candidate pipelines of a single-phase
// program, returning every point (used by the Fig. 13 experiment). Skipped
// candidates are returned too, with SearchPoint.Skip recording the reason.
// Like Compile, Search never lets a candidate panic escape.
func Search(p *ir.Prog, opt Options) (out []SearchPoint, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("core: search panicked: %v", r)
		}
	}()
	if !opt.EnableAblation {
		opt.Passes = passes.Default()
	}
	if opt.MaxThreads <= 0 {
		opt.MaxThreads = 4
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 5
	}
	if opt.Machine.Cores == 0 {
		opt.Machine = arch.DefaultConfig(1)
	}
	ctx, cancel := opt.searchContext()
	defer cancel()
	if ctx != nil {
		opt.Ctx, opt.Deadline = ctx, 0
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: search cancelled: %w", cerr)
		}
	}
	trace := opt.Trace
	if trace == nil {
		trace = func(string, ...any) {}
	}
	opt.obsw = newObsWriter(opt.Observer)
	opt.obsC = obsCand{seq: -1, phase: -1}
	opt.obsw.instant(SearchEvent{Kind: EvSearchStart, Seq: -1, Phase: -1, Mode: "search"})
	an := analysis.New(p)
	phases := analysis.ProgramPhases(p.Body)
	cands := make([][]*analysis.Candidate, len(phases))
	for i, ph := range phases {
		cands[i] = an.Candidates(ph)
	}
	// Search's bound sequence starts without an incumbent, so its journal
	// entries are keyed under a distinct mode and never mix with autotune's.
	jr, err := openJournal(p, opt, "search", trace)
	if err != nil {
		return nil, err
	}
	defer jr.close()
	serialCycles, replayedSerial := jr.serialCycles()
	if !replayedSerial {
		t0 := opt.obsw.now()
		serialCycles, err = measure(pipeline.NewSerial(p), opt, Budget{Ctx: opt.Ctx})
		if err != nil {
			return nil, fmt.Errorf("core: serial baseline failed training: %w", err)
		}
		jr.recordSerial(serialCycles)
		opt.obsw.span(SearchEvent{Kind: EvSerial, Seq: -1, Phase: -1, Cycles: serialCycles}, t0)
	} else {
		opt.obsw.instant(SearchEvent{Kind: EvSerial, Seq: -1, Phase: -1,
			Cycles: serialCycles, Replayed: true})
	}
	budget := candidateBudget(serialCycles, opt.BudgetFactor)

	tasks := newTaskList(opt, budget)
	tasks.enumerate(phases, cands, staticEnumPoints(cands, opt.MaxThreads),
		opt.MaxCandidates, opt.MaxThreads)
	emitEnumerated(opt, tasks.tasks)
	rankAndPrune(p, opt, tasks.tasks)

	// The serial pipeline is not a search point, so branch-and-bound starts
	// with no incumbent: the first measured candidate sets the bound.
	// Duplicated configurations still yield one point each (the landscape
	// has one dot per subset), resolved from the memoized original.
	s := newSearcher(p, opt, budget, noBest)
	s.ctx, s.journal = opt.Ctx, jr
	s.run(tasks.tasks, func(t *candTask, f *candFinal) {
		pt := SearchPoint{TotalStages: f.stages, Subset: t.subset}
		if f.skip != nil {
			pt.Skip = f.skip
		} else {
			pt.Cycles = f.cycles
		}
		out = append(out, pt)
	})

	// Stamp static predictions: without TopK the workers priced each unique
	// candidate as they built it, so ranks are assigned here; duplicates
	// inherit their original's prediction. Emission order matches task
	// order, so out[i] corresponds to tasks.tasks[i].
	var unique []*candTask
	for _, t := range tasks.tasks {
		if t.dupOf < 0 {
			unique = append(unique, t)
		}
	}
	assignRanks(unique)
	for i, t := range tasks.tasks {
		root := t
		if t.dupOf >= 0 {
			root = tasks.tasks[t.dupOf]
		}
		if root.predOK {
			out[i].PredictedCycles = root.predCycles
			out[i].PredictedRank = root.predRank
		}
	}

	if opt.obsw != nil {
		best := uint64(0)
		if s.best != noBest {
			best = s.best
		}
		opt.obsw.instant(SearchEvent{Kind: EvSearchEnd, Seq: -1, Phase: -1, Mode: "search",
			Cycles: best, N: jr.replayCount()})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalStages < out[j].TotalStages })
	return out, nil
}

func measure(pipe *pipeline.Pipeline, opt Options, b Budget) (uint64, error) {
	var total uint64
	for _, train := range opt.Training {
		c, err := train(pipe, b)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// subsets enumerates all non-empty subsets of {0..n-1} with size <= maxSize,
// in deterministic order. The exact subset count and total element count are
// binomial sums, so both the outer slice and a shared element arena are
// sized up front: the whole enumeration is three allocations.
func subsets(n, maxSize int) [][]int {
	if maxSize > n {
		maxSize = n
	}
	count, elems := 0, 0
	for k, c := 1, 1; k <= maxSize; k++ {
		c = c * (n - k + 1) / k // C(n, k)
		count += c
		elems += c * k
	}
	out := make([][]int, 0, count)
	arena := make([]int, 0, elems)
	cur := make([]int, 0, maxSize)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			at := len(arena)
			arena = append(arena, cur...)
			out = append(out, arena[at:len(arena):len(arena)])
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
