package core_test

// Checkpoint/resume and cancellation: an interrupted autotune leaves its
// completed measurements in the Options.Checkpoint journal, and the resumed
// search replays them to reproduce the uninterrupted winner, counters,
// skips, and SearchPoint order byte-identically — at every Parallelism
// level, across journal corruption, and across key mismatches (which
// degrade to a fresh search, never a wrong answer).

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// cancelAfter wraps a trainer so the context is cancelled once n training
// measurements have completed — a deterministic interruption point at
// Parallelism 1, and a valid (if racy) one at any level.
func cancelAfter(train core.TrainFunc, n int32, cancel context.CancelFunc) core.TrainFunc {
	var done int32
	return func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
		c, err := train(p, b)
		if atomic.AddInt32(&done, 1) == n {
			cancel()
		}
		return c, err
	}
}

func render(res *core.Result) string {
	return renderResult(res) + renderPoints(res.Points)
}

func autotuneBFSOptions(train *graph.CSR) core.Options {
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = []core.TrainFunc{bfsTrainer(train)}
	return opt
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)

	// Uninterrupted reference, no checkpoint involved.
	refOpt := autotuneBFSOptions(train)
	refOpt.Parallelism = 1
	ref, err := core.CompileSource(workloads.BFSSource, refOpt)
	if err != nil {
		t.Fatal(err)
	}
	want := render(ref)

	for _, par := range []int{1, 4, 0} {
		journal := filepath.Join(t.TempDir(), "ckpt.jsonl")

		// Interrupt: cancel after three completed measurements (the serial
		// baseline plus two candidates), leaving a partial journal behind.
		ctx, cancel := context.WithCancel(context.Background())
		opt := autotuneBFSOptions(train)
		opt.Parallelism = par
		opt.Training = []core.TrainFunc{cancelAfter(bfsTrainer(train), 3, cancel)}
		opt.Ctx = ctx
		opt.Checkpoint = journal
		partial, err := core.CompileSource(workloads.BFSSource, opt)
		cancel()
		if err != nil {
			t.Fatalf("par %d interrupted run: %v", par, err)
		}
		if !partial.Cancelled {
			t.Fatalf("par %d: interruption did not mark the result cancelled", par)
		}
		if partial.Pipeline == nil {
			t.Fatalf("par %d: cancelled result has no best-so-far pipeline", par)
		}

		// Resume: same search, no cancellation, replaying the journal.
		opt = autotuneBFSOptions(train)
		opt.Parallelism = par
		opt.Checkpoint = journal
		opt.Resume = true
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatalf("par %d resumed run: %v", par, err)
		}
		if res.Cancelled {
			t.Errorf("par %d: resumed run still cancelled", par)
		}
		if res.Replayed == 0 {
			t.Errorf("par %d: resumed run replayed nothing from the journal", par)
		}
		if got := render(res); got != want {
			t.Errorf("par %d: resumed result differs from uninterrupted:\n--- uninterrupted\n%s--- resumed\n%s",
				par, want, got)
		}
	}
}

func TestCheckpointResumeSearchPoints(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid("s", 16, 16, 4)

	refOpt := core.DefaultOptions()
	refOpt.Training = []core.TrainFunc{bfsTrainer(g)}
	refOpt.Parallelism = 1
	refPoints, err := core.Search(p, refOpt)
	if err != nil {
		t.Fatal(err)
	}
	want := renderPoints(refPoints)

	journal := filepath.Join(t.TempDir(), "search.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	opt := core.DefaultOptions()
	opt.Training = []core.TrainFunc{cancelAfter(bfsTrainer(g), 3, cancel)}
	opt.Parallelism = 1
	opt.Ctx = ctx
	opt.Checkpoint = journal
	if _, err := core.Search(p, opt); err != nil {
		t.Fatalf("interrupted search: %v", err)
	}
	cancel()

	opt = core.DefaultOptions()
	opt.Training = []core.TrainFunc{bfsTrainer(g)}
	opt.Parallelism = 1
	opt.Checkpoint = journal
	opt.Resume = true
	points, err := core.Search(p, opt)
	if err != nil {
		t.Fatalf("resumed search: %v", err)
	}
	if got := renderPoints(points); got != want {
		t.Errorf("resumed search points differ:\n--- uninterrupted\n%s--- resumed\n%s", want, got)
	}
}

func TestCheckpointCorruptionDegradesToReMeasurement(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	journal := filepath.Join(t.TempDir(), "ckpt.jsonl")

	run := func(resume bool) *core.Result {
		opt := autotuneBFSOptions(train)
		opt.Parallelism = 1
		opt.Checkpoint = journal
		opt.Resume = resume
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := render(run(false)) // full run, journal now complete

	corrupt := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-7] }},
		{"bit-flip-mid-entry", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x20
			return c
		}},
		{"garbage-line", func(b []byte) []byte {
			lines := strings.SplitAfter(string(b), "\n")
			lines[1] = "{not json\n"
			return []byte(strings.Join(lines, ""))
		}},
		{"empty-file", func(b []byte) []byte { return nil }},
	}
	pristine, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range corrupt {
		t.Run(c.name, func(t *testing.T) {
			if err := os.WriteFile(journal, c.mut(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			res := run(true)
			if got := render(res); got != want {
				t.Errorf("result after corruption differs:\n--- pristine\n%s--- corrupted\n%s", want, got)
			}
		})
	}
	// A corrupt journal must also be healed: after the runs above the file
	// is a fully valid journal again, replaying everything.
	res := run(true)
	if res.Replayed != res.Searched {
		t.Errorf("healed journal replayed %d of %d measurements", res.Replayed, res.Searched)
	}
}

func TestCheckpointKeyMismatchStartsFresh(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	journal := filepath.Join(t.TempDir(), "ckpt.jsonl")

	opt := autotuneBFSOptions(train)
	opt.Parallelism = 1
	opt.Checkpoint = journal
	if _, err := core.CompileSource(workloads.BFSSource, opt); err != nil {
		t.Fatal(err)
	}

	// Same journal, different search shape: nothing may replay.
	opt = autotuneBFSOptions(train)
	opt.Parallelism = 1
	opt.Checkpoint = journal
	opt.Resume = true
	opt.MaxCandidates = 3
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed != 0 {
		t.Errorf("key-mismatched journal replayed %d measurements", res.Replayed)
	}
	if res.Pipeline == nil || res.Searched == 0 {
		t.Errorf("fresh search after key mismatch produced no result: %+v", res)
	}
}

func TestCancelledAutotuneDeterministicPartialResult(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	run := func() *core.Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opt := autotuneBFSOptions(train)
		opt.Parallelism = 1 // deterministic interruption point
		opt.Training = []core.TrainFunc{cancelAfter(bfsTrainer(train), 2, cancel)}
		opt.Ctx = ctx
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if !res.Cancelled {
		t.Fatal("result not marked cancelled")
	}
	if !errors.Is(res.CancelCause, context.Canceled) {
		t.Errorf("CancelCause = %v, want context.Canceled", res.CancelCause)
	}
	if res.Pipeline == nil {
		t.Fatal("cancelled result lost the best-so-far pipeline")
	}
	cancelled := 0
	for _, s := range res.Skips {
		if s.Reason == core.SkipCancelled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Errorf("no candidate recorded as SkipCancelled; skips: %v", res.Skips)
	}
	// Every enumerated candidate is accounted for: measured, deduplicated,
	// or skipped (the serial baseline is Searched's extra 1).
	if got := res.Searched - 1 + res.Deduped + len(res.Skips); got < res.Enumerated {
		t.Errorf("cancelled result accounts for %d of %d enumerated candidates", got, res.Enumerated)
	}
	if a, b := render(res), render(run()); a != b {
		t.Errorf("cancelled partial result not deterministic:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestPreCancelledContextFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	train := graph.Grid("t", 8, 8, 3)
	opt := autotuneBFSOptions(train)
	opt.Ctx = ctx
	if _, err := core.CompileSource(workloads.BFSSource, opt); !errors.Is(err, context.Canceled) {
		t.Errorf("CompileSource on a cancelled context: %v, want context.Canceled", err)
	}
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	sopt := core.DefaultOptions()
	sopt.Training = []core.TrainFunc{bfsTrainer(train)}
	sopt.Ctx = ctx
	if _, err := core.Search(p, sopt); !errors.Is(err, context.Canceled) {
		t.Errorf("Search on a cancelled context: %v, want context.Canceled", err)
	}
}

func TestDeadlineGenerousMatchesUnbounded(t *testing.T) {
	train := graph.Grid("t", 16, 16, 5)
	opt := autotuneBFSOptions(train)
	opt.Parallelism = 1
	ref, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt = autotuneBFSOptions(train)
	opt.Parallelism = 1
	opt.Deadline = 3600e9 // an hour: never expires, must change nothing
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled {
		t.Error("generous deadline marked the result cancelled")
	}
	if a, b := render(ref), render(res); a != b {
		t.Errorf("deadline-bounded run differs from unbounded:\n--- unbounded\n%s--- bounded\n%s", a, b)
	}
}
