package core

import (
	"fmt"
	"time"

	"phloem/internal/native"
	"phloem/internal/pipeline"
)

// Backend selects the engine an instantiated pipeline executes on when a
// caller (phloemsim, the bench harness) runs it through core.
type Backend int

const (
	// BackendSim is the cycle-accurate simulator: functional phase for
	// semantics, timing phase for the performance model. The default.
	BackendSim Backend = iota
	// BackendNative lowers the same stage programs onto real Go
	// concurrency — one goroutine per stage and RA, one bounded channel
	// per queue. No cycle model: it reports wall time and instruction
	// counts, and exists for functional results at scales the timing
	// simulator cannot reach in budget (see internal/native).
	BackendNative
)

func (b Backend) String() string {
	switch b {
	case BackendSim:
		return "sim"
	case BackendNative:
		return "native"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps the -backend flag spelling onto a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim":
		return BackendSim, nil
	case "native":
		return BackendNative, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (sim|native)", s)
	}
}

// ExecStats normalizes the two backends' run results. Cycles is zero under
// BackendNative (there is no cycle model to consult); Instructions is the
// dynamic micro-op count on both, and the two backends must agree on it
// for the same machine — that equality is part of the differential
// contract internal/native's tests enforce.
type ExecStats struct {
	Backend      Backend
	Cycles       uint64
	Instructions uint64
	Wall         time.Duration
	// Report is the backend's human-readable run summary.
	Report string
}

// Execute runs an instantiated pipeline on the selected backend. Both
// paths honor Machine.Ctx, Machine.WallDeadline, and MaxTraceEntries, and
// fail with the same sentinel error classes (sim.ErrDeadlock, ErrTrap,
// ErrCancelled, ...), so exit-code mapping and retry logic are
// backend-agnostic.
func Execute(inst *pipeline.Instance, b Backend) (*ExecStats, error) {
	start := time.Now()
	switch b {
	case BackendSim:
		st, err := inst.Run()
		if err != nil {
			return nil, err
		}
		return &ExecStats{
			Backend:      b,
			Cycles:       st.Cycles,
			Instructions: st.Instructions,
			Wall:         time.Since(start),
			Report:       st.String(),
		}, nil
	case BackendNative:
		st, err := native.Run(inst.Machine, native.Options{})
		if err != nil {
			return nil, err
		}
		return &ExecStats{
			Backend:      b,
			Instructions: st.Instructions,
			Wall:         st.Wall,
			Report:       st.String(),
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown backend %v", b)
	}
}
