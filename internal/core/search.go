package core

// The candidate-search engine behind autotune and Search (Sec. V, Fig. 8).
//
// Candidates are enumerated up front in a deterministic order, deduplicated
// by a canonical fingerprint, and measured by a pool of Options.Parallelism
// workers, each building and simulating its candidate on a private machine.
// Results are merged strictly in enumeration order, so best-pipeline
// selection, Result.Searched, Result.Skips, and Search's output are
// byte-identical to a serial run no matter how worker completions interleave.
//
// Three mechanisms cooperate:
//
//   - Dedup: a candidate's fingerprint is the canonical (phase,
//     ordered-points) key of its whole pipeline configuration. Coinciding
//     candidates (the static cut re-appearing in the enumeration, identical
//     subsets across phases) are built and measured once; later occurrences
//     resolve from the memo without touching a simulator.
//
//   - Branch-and-bound: each candidate's cycle budget starts at
//     serial x BudgetFactor but shrinks to the best total seen so far (a
//     candidate slower than the current best cannot win), so losing
//     candidates abort early with SkipBudget. Workers re-read the
//     best-so-far bound from an atomic before every training input; the
//     merger re-checks every result against the bound a strictly serial
//     search would have used at that candidate's enumeration index. Budget
//     verdicts are monotone in the bound and recorded canonically (see
//     errBudget), so completions and budget aborts finalize without
//     re-simulation; only a stale-bound deadlock/panic re-measures under
//     the exact bound. That keeps tightening deterministic.
//
//   - Isolation: pipeline construction appends fresh variables to the
//     program, so each worker builds against a shallow clone of the Prog
//     with its own Vars table. Clones share the (read-only) statement tree;
//     generated variable numbering is per-clone and therefore identical to a
//     serial run's for every candidate.
//
// Options.Trace lines and SearchPoint/skip records are emitted by the merger
// in enumeration order; Options.CandidateProbe is invoked once per unique
// candidate at enumeration time (single-threaded, deterministic order).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"phloem/internal/analysis"
	"phloem/internal/costmodel"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
)

// parallelism resolves Options.Parallelism: 0 defaults to GOMAXPROCS, 1 is
// the serial path.
func (o *Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// noBest marks "no finalized candidate yet" in the branch-and-bound state.
const noBest = ^uint64(0)

// candTask is one enumerated candidate pipeline configuration.
type candTask struct {
	seq    int   // enumeration index: the deterministic merge and tie-break key
	phase  int   // tuned phase (-1: the static pipeline)
	subset []int // indices into the phase's top candidates (nil for static)
	// points holds the full per-phase point configuration the build uses.
	points [][]*analysis.Candidate
	fp     string
	budget Budget // base measurement budget, with any CandidateProbe attached
	dupOf  int    // seq of the first task with the same fingerprint (-1: unique)

	// Static-prediction state (filled by rankAndPrune for Options.TopK, or
	// lazily by runTask so SearchPoint predictions are always auditable).
	pipe       *pipeline.Pipeline // prebuilt by the rank phase (reused by runTask)
	buildSkip  *CandidateSkip     // rank-phase build/verify failure
	predCycles uint64             // costmodel estimate (meaningless when !predOK)
	predOK     bool
	predRank   int  // 1-based rank among unique tasks by prediction (0: unranked)
	pruned     bool // excluded from simulation by the TopK rank phase
}

// candOutcome is a worker's raw result for one unique task.
type candOutcome struct {
	seq  int
	pipe *pipeline.Pipeline
	skip *CandidateSkip // build/verify failure (pipe may be nil)
	// cycles is the summed training cycle count; on error it holds the
	// cycles accumulated before the failing input.
	cycles uint64
	merr   error  // measurement error (nil: measured to completion)
	bound  uint64 // budget bound the measurement ran under (0: unlimited)
	// replay is the checkpoint-journal entry this outcome was restored
	// from (nil: the candidate was actually simulated). A replayed entry
	// already holds a previous run's finalized verdict, so finalize takes
	// it verbatim.
	replay *journalEntry
}

// candFinal is a merged, deterministic per-candidate result.
type candFinal struct {
	pipe     *pipeline.Pipeline
	stages   int // pipe.TotalStages() when the build succeeded
	cycles   uint64
	skip     *CandidateSkip // non-nil: the candidate was dropped (cycles meaningless)
	dup      bool           // resolved from an earlier candidate's memoized result
	replayed bool           // verdict restored from the checkpoint journal
}

// fingerprint canonically identifies a pipeline configuration: for every
// phase, the ordered decoupling points by their stable load identity.
// Candidates enumerated from different directions (static cut, forced
// points, subset enumeration) that select the same loads get the same key.
func fingerprint(points [][]*analysis.Candidate) string {
	buf := make([]byte, 0, 16*len(points))
	for _, pts := range points {
		buf = append(buf, '|')
		for _, c := range pts {
			buf = strconv.AppendInt(buf, int64(c.Load.LoadID), 10)
			buf = append(buf, ',')
		}
	}
	return string(buf)
}

// cloneProg shallow-copies the program with a private Vars table. Pipeline
// construction appends temporaries via Prog.NewVar; giving every candidate
// its own copy (1) keeps concurrent builds race-free and (2) makes generated
// variable numbering independent of build order, so candidate pipelines are
// identical to a serial run's.
func cloneProg(p *ir.Prog) *ir.Prog {
	q := *p
	q.Vars = make([]ir.VarInfo, len(p.Vars))
	copy(q.Vars, p.Vars)
	return &q
}

// searcher runs candidate tasks and merges their results deterministically.
type searcher struct {
	p       *ir.Prog
	opt     Options
	base    Budget // per-candidate budget derived from the serial baseline
	tighten bool   // branch-and-bound: shrink the bound to the best so far
	// best is the best finalized training cycle count (merger-owned).
	best uint64
	// bound is min(base.Cycles, best), republished after every finalize for
	// in-flight workers; it only ever decreases, and because the merger
	// finalizes in enumeration order, any value a worker reads is >= the
	// bound a strictly serial search would use for that candidate.
	bound atomic.Uint64
	// ctx, when non-nil, cancels the search: remaining candidates skip
	// with SkipCancelled instead of being measured (set by autotune/Search
	// from Options.Ctx/Deadline).
	ctx context.Context
	// journal, when non-nil, replays previously recorded measurements and
	// records new ones (Options.Checkpoint/Resume).
	journal *journal
}

func newSearcher(p *ir.Prog, opt Options, base Budget, initialBest uint64) *searcher {
	s := &searcher{
		p:       p,
		opt:     opt,
		base:    base,
		tighten: opt.BudgetFactor >= 0 && !opt.Exhaustive,
		best:    initialBest,
	}
	s.bound.Store(s.exactBound())
	return s
}

// exactBound is the budget a strictly serial search would apply to the next
// candidate: the factor-derived base, tightened to the best finalized total.
func (s *searcher) exactBound() uint64 {
	b := s.base.Cycles
	if s.tighten && s.best != noBest && (b == 0 || s.best < b) {
		b = s.best
	}
	return b
}

// runTask builds, verifies, and measures one unique candidate on a private
// program clone. Safe to call from multiple goroutines concurrently. The
// bound is re-read from the atomic before every training input, so long
// measurements pick up tightening published mid-flight; o.bound records the
// first read — the loosest value any part of the measurement ran under.
func (s *searcher) runTask(t *candTask, worker int) *candOutcome {
	o := &candOutcome{seq: t.seq}
	opt := s.opt
	opt.obsC = obsCand{seq: t.seq, phase: t.phase, subset: t.subset, fp: t.fp, worker: worker}
	if s.ctx != nil && s.ctx.Err() != nil {
		// Cancelled before this candidate was touched: skip without
		// building (pipe stays nil, so it never counts as searched).
		o.skip = &CandidateSkip{Phase: t.phase, Subset: t.subset,
			Reason: SkipCancelled, Err: errCancelled}
		return o
	}
	pipe, skip := t.pipe, t.buildSkip
	if pipe == nil && skip == nil {
		t0 := opt.obsw.now()
		pipe, skip = buildCandidate(cloneProg(s.p), t.phase, t.subset, t.points, opt)
		e := opt.obsEvent(EvBuild)
		if skip != nil {
			e.Err = skip.Err
		}
		opt.obsw.span(e, t0)
	}
	if skip != nil {
		o.skip = skip
		return o
	}
	o.pipe = pipe
	if !t.predOK {
		// No rank phase ran for this task: price it here so prediction
		// error stays auditable next to the measured cycles. Writing the
		// task is race-free — exactly one worker owns an unranked task, and
		// the channel send below orders the write before the merger reads.
		if rep, err := costmodel.Analyze(pipe, opt.Machine); err == nil {
			t.predCycles, t.predOK = rep.Predicted, true
		}
	}
	if e, ok := s.journal.lookup(t.fp); ok {
		// A previous run already finalized this candidate's measurement;
		// replay the verdict instead of simulating.
		o.replay = e
		re := opt.obsEvent(EvReplay)
		re.Cycles, re.Replayed = e.Cycles, true
		if e.Reason != "" {
			re.Err = replaySkip(t, e).Err
		}
		opt.obsw.instant(re)
		return o
	}
	b := t.budget
	b.Ctx = s.ctx
	o.bound = s.bound.Load()
	first := true
	t0 := opt.obsw.now()
	o.cycles, o.merr = tryMeasure(pipe, opt, b, func() uint64 {
		if first {
			first = false
			return o.bound
		}
		return s.bound.Load()
	})
	te := opt.obsEvent(EvTrain)
	te.Cycles, te.Err = o.cycles, o.merr
	opt.obsw.span(te, t0)
	return o
}

// skipFor builds a candidate's skip record, canonicalizing cycle-budget
// failures to errBudget (see its doc for why budget records carry no cycle
// counts).
func skipFor(t *candTask, err error) *CandidateSkip {
	r := classify(err)
	if r == SkipBudget && errors.Is(err, sim.ErrCycleBudget) {
		err = errBudget
	}
	if r == SkipCancelled {
		// Cancellation records are canonical too: where exactly a worker
		// observed the cancel is scheduling noise, not a search result.
		err = errCancelled
	}
	return &CandidateSkip{Phase: t.phase, Subset: t.subset, Reason: r, Err: err}
}

// finalize converts a raw outcome into the deterministic result for its
// enumeration slot. The worker may have measured under a looser bound than a
// serial search would have used (the bound tightens while candidates are in
// flight, and the merger's publishes always trail its finalize order), never
// a tighter one. Almost every outcome is decidable from that invariant
// without touching a simulator:
//
//   - A completion strictly under the exact bound is verbatim (a tighter
//     budget only aborts runs, and at cycles == bound the machine's
//     `now >= budget` check fires before the done check).
//   - A completion at or above the exact bound means the serial order would
//     have aborted it: record the canonical budget skip.
//   - A cycle-budget abort under any bound >= the exact one implies an abort
//     under the exact bound (monotone), and the record is canonical.
//   - Non-budget failures are verbatim when the bound was exact, or when the
//     failure is budget-independent (functional trap / trace limit) and
//     every earlier input fit under the exact bound.
//
// Only the remaining sliver — a timing-phase deadlock, panic, or verify
// mismatch observed under a stale bound — re-measures under the exact bound
// (unprobed; any CandidateProbe already observed the first run). That case
// never arises at Parallelism 1, where the observed bound is always exact.
func (s *searcher) finalize(t *candTask, o *candOutcome) *candFinal {
	if o.skip != nil {
		return &candFinal{skip: o.skip}
	}
	f := &candFinal{pipe: o.pipe, stages: o.pipe.TotalStages()}
	if o.replay != nil {
		// A journal entry is a previous run's *finalized* verdict for this
		// candidate, recorded under an identical key — same enumeration
		// order, same bound sequence — so it is taken verbatim.
		f.replayed = true
		if o.replay.Reason == "" {
			f.cycles = o.replay.Cycles
		} else {
			f.skip = replaySkip(t, o.replay)
		}
		return f
	}
	bound := s.exactBound()
	switch {
	case o.merr == nil && (bound == 0 || o.cycles < bound):
		f.cycles = o.cycles
	case o.merr == nil || errors.Is(o.merr, sim.ErrCycleBudget):
		f.skip = skipFor(t, errBudget)
	case o.bound == bound,
		errors.Is(o.merr, sim.ErrCancelled),
		timingIndependent(o.merr) && o.cycles < bound:
		f.skip = skipFor(t, o.merr)
	case bound > 0 && o.cycles >= bound:
		// The failing input is one a bound-exact run never reaches: the
		// inputs before it already exhaust the exact budget.
		f.skip = skipFor(t, errBudget)
	default:
		b := s.base
		b.Probe, b.TelemetryInterval = nil, 0
		b.Ctx = s.ctx
		t0 := s.opt.obsw.now()
		cycles, err := tryMeasure(o.pipe, s.opt, b, func() uint64 { return bound })
		s.opt.obsw.span(SearchEvent{Kind: EvTrain, Seq: t.seq, Phase: t.phase,
			Subset: t.subset, FP: t.fp, Cycles: cycles, Err: err}, t0)
		if err != nil {
			f.skip = skipFor(t, err)
		} else {
			f.cycles = cycles
		}
	}
	return f
}

// merge updates the branch-and-bound state with a finalized result,
// memoizes it for duplicates, and journals its measurement verdict.
func (s *searcher) merge(memo map[int]*candFinal, t *candTask, f *candFinal) {
	memo[t.seq] = f
	if f.skip == nil && f.cycles < s.best {
		s.best = f.cycles
		s.bound.Store(s.exactBound())
	}
	s.journal.record(t.fp, f)
}

// dupFinal resolves a duplicate task from the original's memoized result:
// same measurement (or failure), flagged as deduplicated.
func dupFinal(t *candTask, orig *candFinal) *candFinal {
	f := *orig
	f.dup = true
	if orig.skip != nil {
		sk := *orig.skip
		sk.Phase, sk.Subset = t.phase, t.subset
		f.skip = &sk
	}
	return &f
}

// prunedFinal records a candidate the rank phase excluded from simulation:
// the prebuilt pipeline and static prediction survive for auditing, but no
// simulator ever ran.
func (s *searcher) prunedFinal(t *candTask) *candFinal {
	return &candFinal{
		pipe:   t.pipe,
		stages: t.pipe.TotalStages(),
		skip: &CandidateSkip{Phase: t.phase, Subset: t.subset, Reason: SkipPruned,
			Err: fmt.Errorf("statically pruned: predicted rank %d (%d predicted cycles) outside top-%d",
				t.predRank, t.predCycles, s.opt.TopK)},
	}
}

// run measures every task and calls emit exactly once per task, strictly in
// enumeration order. With parallelism 1 (or a single runnable task)
// everything happens inline on the calling goroutine — the serial path.
// Duplicates and statically pruned candidates resolve without a worker.
func (s *searcher) run(tasks []*candTask, emit func(*candTask, *candFinal)) {
	runnable := 0
	for _, t := range tasks {
		if t.dupOf < 0 && !t.pruned {
			runnable++
		}
	}
	nw := s.opt.parallelism()
	if nw > runnable {
		nw = runnable
	}
	memo := make(map[int]*candFinal, len(tasks))

	// local resolves tasks that never reach a worker; nil means the task
	// must build and measure.
	local := func(t *candTask) *candFinal {
		if t.dupOf >= 0 {
			// The original has a lower seq and was finalized earlier.
			return dupFinal(t, memo[t.dupOf])
		}
		if t.pruned {
			return s.prunedFinal(t)
		}
		return nil
	}

	if nw <= 1 {
		for _, t := range tasks {
			f := local(t)
			if f == nil {
				f = s.finalize(t, s.runTask(t, 0))
			}
			if !f.dup {
				s.merge(memo, t, f)
			}
			s.opt.obsw.instant(finalEvent(t, f))
			emit(t, f)
		}
		return
	}

	// Head start: measure the first runnable task inline before the pool
	// spins up. The merger finalizes it first anyway, so this changes
	// nothing observable — but its finalized cycles tighten the shared
	// bound (in autotune it is the static pipeline, usually close to the
	// eventual best) before any worker reads it, so the pool never burns
	// the loose initial budget on candidates the serial order prunes
	// cheaply.
	i := 0
	for ; i < len(tasks); i++ {
		t := tasks[i]
		f := local(t)
		if f == nil {
			f = s.finalize(t, s.runTask(t, 0))
			s.merge(memo, t, f)
			s.opt.obsw.instant(finalEvent(t, f))
			emit(t, f)
			i++
			break
		}
		if !f.dup {
			s.merge(memo, t, f)
		}
		s.opt.obsw.instant(finalEvent(t, f))
		emit(t, f)
	}
	rest := tasks[i:]
	if nw > runnable-1 {
		nw = runnable - 1
	}

	work := make(chan *candTask, len(rest))
	outs := make(chan *candOutcome, len(rest))
	for w := 0; w < nw; w++ {
		go func(id int) {
			for t := range work {
				outs <- s.runTask(t, id)
			}
		}(w + 1)
	}
	for _, t := range rest {
		if t.dupOf < 0 && !t.pruned {
			work <- t
		}
	}
	close(work)

	pending := make(map[int]*candOutcome)
	for _, t := range rest {
		if f := local(t); f != nil {
			if !f.dup {
				s.merge(memo, t, f)
			}
			s.opt.obsw.instant(finalEvent(t, f))
			emit(t, f)
			continue
		}
		o := pending[t.seq]
		for o == nil {
			got := <-outs
			if got.seq == t.seq {
				o = got
			} else {
				pending[got.seq] = got
			}
		}
		delete(pending, t.seq)
		f := s.finalize(t, o)
		s.merge(memo, t, f)
		s.opt.obsw.instant(finalEvent(t, f))
		emit(t, f)
	}
}

// assignRanks orders the unique tasks by static prediction (buildable
// before unbuildable, then predicted cycles, then enumeration order) and
// stamps each with its 1-based predicted rank. Returns the ordering.
func assignRanks(unique []*candTask) []*candTask {
	order := append([]*candTask(nil), unique...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.predOK != b.predOK {
			return a.predOK
		}
		if a.predCycles != b.predCycles {
			return a.predCycles < b.predCycles
		}
		return a.seq < b.seq
	})
	for i, t := range order {
		t.predRank = i + 1
	}
	return order
}

// rankAndPrune statically builds and prices every unique candidate with the
// cost model and, when Options.TopK is in effect, marks all but the TopK
// best-predicted as pruned. The first task (autotune's static pipeline, the
// search engine's head start) is always retained, displacing the worst
// retained candidate if necessary. Build/verify failures rank after every
// buildable candidate and are never marked pruned: their structured skip is
// more informative than a prune record, and they cost no simulation.
//
// Runs on one goroutine before the worker pool, so prune decisions — and
// therefore search results — are identical for every Options.Parallelism.
// The prebuilt pipelines are kept on the tasks and reused by runTask.
func rankAndPrune(p *ir.Prog, opt Options, tasks []*candTask) (pruned int, millis int64) {
	if opt.TopK <= 0 || opt.Exhaustive || len(tasks) == 0 {
		return 0, 0
	}
	start := time.Now()
	rank0 := opt.obsw.now()
	defer func() {
		e := SearchEvent{Kind: EvRank, Seq: -1, Phase: -1, N: pruned}
		opt.obsw.span(e, rank0)
	}()
	var unique []*candTask
	for _, t := range tasks {
		if t.dupOf < 0 {
			unique = append(unique, t)
		}
	}
	for _, t := range unique {
		opt.obsC = obsCand{seq: t.seq, phase: t.phase, subset: t.subset, fp: t.fp}
		t0 := opt.obsw.now()
		t.pipe, t.buildSkip = buildCandidate(cloneProg(p), t.phase, t.subset, t.points, opt)
		e := opt.obsEvent(EvBuild)
		if t.buildSkip != nil {
			e.Err = t.buildSkip.Err
		}
		opt.obsw.span(e, t0)
		if t.buildSkip != nil {
			continue
		}
		if rep, err := costmodel.Analyze(t.pipe, opt.Machine); err == nil {
			t.predCycles, t.predOK = rep.Predicted, true
		}
	}
	order := assignRanks(unique)
	if opt.TopK >= len(unique) {
		return 0, time.Since(start).Milliseconds()
	}
	for _, t := range order[opt.TopK:] {
		if t.buildSkip == nil {
			t.pruned = true
			pruned++
		}
	}
	if head := tasks[0]; head.pruned {
		head.pruned = false
		pruned--
		for i := opt.TopK - 1; i >= 0; i-- {
			if t := order[i]; t.buildSkip == nil {
				t.pruned = true
				pruned++
				break
			}
		}
	}
	return pruned, time.Since(start).Milliseconds()
}

// taskList accumulates candidate tasks, assigning sequence numbers,
// fingerprint-deduplicating, and attaching per-candidate probes (in
// enumeration order, on one goroutine — CandidateProbe and the budget
// factory are never called concurrently).
type taskList struct {
	opt   Options
	base  Budget
	seen  map[string]int
	tasks []*candTask
}

func newTaskList(opt Options, base Budget) *taskList {
	return &taskList{opt: opt, base: base, seen: map[string]int{}}
}

func (l *taskList) add(phase int, subset []int, points [][]*analysis.Candidate) {
	t := &candTask{seq: len(l.tasks), phase: phase, subset: subset, points: points,
		fp: fingerprint(points), dupOf: -1}
	if orig, ok := l.seen[t.fp]; ok {
		t.dupOf = orig
	} else {
		l.seen[t.fp] = t.seq
		t.budget = l.opt.probed(l.base, phase, subset)
	}
	l.tasks = append(l.tasks, t)
}

// enumerate appends the per-phase candidate subsets (the MaxCandidates
// highest-ranked points choose up to MaxThreads-1) with all other phases
// pinned to their static cut — the same walk autotune and Search share.
func (l *taskList) enumerate(phases []*analysis.Phase, cands, staticEnum [][]*analysis.Candidate, maxCandidates, maxThreads int) {
	for pi := range phases {
		top := cands[pi]
		if len(top) > maxCandidates {
			top = top[:maxCandidates]
		}
		pts := make([]*analysis.Candidate, 0, maxThreads-1)
		for _, subset := range subsets(len(top), maxThreads-1) {
			pts = pts[:0]
			for _, idx := range subset {
				pts = append(pts, top[idx])
			}
			points := make([][]*analysis.Candidate, len(cands))
			copy(points, staticEnum)
			points[pi] = analysis.OrderPoints(pts)
			l.add(pi, subset, points)
		}
	}
}

// staticEnumPoints is the per-phase static cut every enumerated candidate
// pins its non-tuned phases to, computed once per search.
func staticEnumPoints(cands [][]*analysis.Candidate, maxThreads int) [][]*analysis.Candidate {
	out := make([][]*analysis.Candidate, len(cands))
	for i, cs := range cands {
		out[i] = staticCut(cs, maxThreads)
	}
	return out
}

// staticFullPoints is the static pipeline's configuration: forced
// (#pragma decouple) points where present, the static cut elsewhere —
// exactly what buildStatic selects.
func staticFullPoints(p *ir.Prog, phases []*analysis.Phase, cands [][]*analysis.Candidate, maxThreads int) [][]*analysis.Candidate {
	an := analysis.New(p)
	out := make([][]*analysis.Candidate, len(cands))
	for i, cs := range cands {
		if forced := an.ForcedPoints(phases[i]); len(forced) > 0 {
			out[i] = forced
			continue
		}
		out[i] = staticCut(cs, maxThreads)
	}
	return out
}

// subsetDesc renders a candidate identity for trace lines: the static
// pipeline has no subset.
func subsetDesc(t *candTask) string {
	if t.phase < 0 {
		return "static"
	}
	return fmt.Sprintf("%v", t.subset)
}
