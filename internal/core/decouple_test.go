package core_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
)

// The decouple pragma forces a 2-stage split at the marked load even though
// the cost model would pick a different shape.
const markedKernel = `
#pragma phloem
void gather(int* restrict a, int* restrict b, int* restrict out, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    int idx = a[i];
#pragma decouple
    int v = b[idx];
    acc = acc + v;
  }
  out[0] = acc;
}
`

func TestPragmaDecoupleForcesBoundary(t *testing.T) {
	res, err := core.CompileSource(markedKernel, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.NumStages() != 2 {
		t.Errorf("forced decoupling should make exactly 2 stages, got %d\n%s",
			res.Pipeline.NumStages(), res.Pipeline.Describe())
	}
	b := pipeline.Bindings{
		Ints: map[string][]int64{
			"a":   {2, 0, 1, 2},
			"b":   {10, 20, 30},
			"out": make([]int64, 1),
		},
		Scalars: map[string]int64{"n": 4},
	}
	inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	if got := inst.Arrays["out"].Ints()[0]; got != 30+10+20+30 {
		t.Errorf("out = %d, want 90", got)
	}
}
