package core_test

// Compile must reject pipelines the static verifier finds broken, and
// Options.SkipVerify must be an effective escape hatch. Violations are
// injected with Options.PostBuild, the same hook `phloemc -lint` uses for
// its demonstration mode.

import (
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// injectRogueCode inserts an enq_ctrl with an application code no consumer
// dispatches, next to the first control enqueue it finds: the consumer's
// dispatch treats unknown codes as stream end, so the code would silently
// truncate the stream mid-flight (rule C2).
func injectRogueCode(pl *pipeline.Pipeline) {
	for _, st := range pl.Stages {
		for i, s := range st.Body {
			if ec, ok := s.(*ir.EnqCtrl); ok {
				rogue := &ir.EnqCtrl{Q: ec.Q, Code: arch.CtrlUser + 7}
				st.Body = append(st.Body[:i:i], append([]ir.Stmt{rogue}, st.Body[i:]...)...)
				return
			}
		}
	}
}

func TestCompileRejectsInjectedProtocolViolation(t *testing.T) {
	opt := core.DefaultOptions()
	opt.PostBuild = injectRogueCode
	_, err := core.CompileSource(workloads.BFSSource, opt)
	if err == nil {
		t.Fatal("Compile accepted a pipeline with stripped control markers")
	}
	if !strings.Contains(err.Error(), "static verification") {
		t.Fatalf("error should come from the verifier, got: %v", err)
	}
}

func TestSkipVerifyEscapeHatch(t *testing.T) {
	opt := core.DefaultOptions()
	opt.PostBuild = injectRogueCode
	opt.SkipVerify = true
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatalf("SkipVerify should let the broken pipeline through: %v", err)
	}
	if res.Pipeline == nil {
		t.Fatal("no pipeline returned")
	}
}

func TestCompileCleanStillPasses(t *testing.T) {
	if _, err := core.CompileSource(workloads.BFSSource, core.DefaultOptions()); err != nil {
		t.Fatalf("clean compile rejected: %v", err)
	}
}
