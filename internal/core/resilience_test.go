package core_test

// The autotune search must survive pathological candidates: a livelocked
// pipeline is aborted by the measurement budget, a verifier-rejected one is
// dropped with a recorded reason, and a panicking hook becomes an error —
// in every case the search still returns a valid best pipeline and no panic
// escapes core.Compile.

import (
	"testing"

	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// injectLivelock poisons every two-stage candidate with an infinite loop
// (the Store keeps it impure so optimization cannot delete it). The
// functional phase spins until the trace-limit guardrail trips.
func injectLivelock(pl *pipeline.Pipeline) {
	if pl.NumStages() != 2 {
		return
	}
	st := pl.Stages[0]
	spin := &ir.Loop{ID: 9901, Cond: ir.C(1), Body: []ir.Stmt{
		&ir.Store{StoreID: 9901, Slot: 0, Idx: ir.C(0), Val: ir.C(0)},
	}}
	st.Body = append([]ir.Stmt{spin}, st.Body...)
}

func autotuneOpts(train *graph.CSR) core.Options {
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = []core.TrainFunc{bfsTrainer(train)}
	return opt
}

func TestAutotuneSurvivesLivelockedCandidate(t *testing.T) {
	train := graph.Grid("t", 24, 24, 9)
	opt := autotuneOpts(train)
	opt.PostBuild = injectLivelock
	opt.SkipVerify = true // let the livelock reach simulation: the budget must catch it
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatalf("search did not survive livelocked candidates: %v", err)
	}
	if res.Pipeline == nil || res.Pipeline.NumStages() == 2 {
		t.Fatalf("search picked a poisoned pipeline: %v", res.Pipeline)
	}
	budgetSkips := 0
	for _, s := range res.Skips {
		if s.Reason == core.SkipBudget {
			budgetSkips++
			if s.Err == nil {
				t.Error("budget skip without underlying error")
			}
		}
	}
	if budgetSkips == 0 {
		t.Fatalf("no candidate was skipped for budget; skips: %v", res.Skips)
	}
	// The winner must still work: run it clean on a fresh input.
	if _, err := bfsTrainer(graph.Grid("v", 16, 16, 3))(res.Pipeline, core.Budget{}); err != nil {
		t.Errorf("best pipeline is broken: %v", err)
	}
	t.Logf("searched %d, skipped %d (%d for budget), best %d train cycles",
		res.Searched, len(res.Skips), budgetSkips, res.TrainCycles)
}

func TestAutotuneFallsBackToSerialOnVerifierRejects(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	opt := autotuneOpts(train)
	opt.PostBuild = injectRogueCode // poisons every built candidate incl. static
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatalf("search should fall back to serial, got: %v", err)
	}
	if res.Pipeline.NumStages() != 1 {
		t.Errorf("best should be the serial fallback, got %d stages", res.Pipeline.NumStages())
	}
	if len(res.Skips) == 0 {
		t.Fatal("no skips recorded")
	}
	for _, s := range res.Skips {
		if s.Reason != core.SkipVerifier {
			t.Errorf("skip %v: reason %v, want verifier", s.Subset, s.Reason)
		}
	}
}

func TestCompileRecoversPanics(t *testing.T) {
	t.Run("static", func(t *testing.T) {
		opt := core.DefaultOptions()
		opt.PostBuild = func(*pipeline.Pipeline) { panic("injected hook crash") }
		_, err := core.CompileSource(workloads.BFSSource, opt)
		if err == nil {
			t.Fatal("expected an error from the panicking hook")
		}
	})
	t.Run("autotune", func(t *testing.T) {
		opt := autotuneOpts(graph.Grid("t", 16, 16, 5))
		opt.PostBuild = func(pl *pipeline.Pipeline) {
			if pl.NumStages() == 2 {
				panic("injected hook crash")
			}
		}
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatalf("panicking candidates must be skipped, got: %v", err)
		}
		panicSkips := 0
		for _, s := range res.Skips {
			if s.Reason == core.SkipPanic {
				panicSkips++
			}
		}
		if panicSkips == 0 {
			t.Errorf("no panic skips recorded; skips: %v", res.Skips)
		}
	})
}

func TestSearchReportsSkippedCandidates(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	opt := autotuneOpts(graph.Grid("s", 16, 16, 4))
	opt.PostBuild = injectLivelock
	opt.SkipVerify = true
	points, err := core.Search(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	measured, skipped := 0, 0
	for _, pt := range points {
		if pt.Skip != nil {
			skipped++
			if pt.Skip.Reason != core.SkipBudget {
				t.Errorf("subset %v: reason %v, want budget", pt.Subset, pt.Skip.Reason)
			}
		} else {
			measured++
		}
	}
	if measured == 0 || skipped == 0 {
		t.Errorf("want both measured and skipped points, got %d/%d", measured, skipped)
	}
}
