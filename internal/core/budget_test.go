package core

// White-box tests for the measurement-budget layer: candidateBudget
// overflow saturation, measureAll's cumulative bound-tightening edge
// cases, and SkipReason/CandidateSkip rendering round-trips.

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"phloem/internal/pipeline"
)

func TestCandidateBudgetOverflowSaturates(t *testing.T) {
	// A huge serial baseline must saturate, never wrap to a tiny budget.
	b := candidateBudget(math.MaxUint64/4, 8)
	if b.Cycles != math.MaxUint64 {
		t.Errorf("serial*factor wrapped: Cycles = %d, want MaxUint64", b.Cycles)
	}
	if b.Trace != math.MaxInt32 {
		t.Errorf("Trace = %d, want MaxInt32", b.Trace)
	}
	// The cycle product fits but the 8x trace product would wrap.
	b = candidateBudget(math.MaxUint64/8+10, 1)
	if b.Cycles != math.MaxUint64/8+10 {
		t.Errorf("Cycles = %d, want exact product %d", b.Cycles, uint64(math.MaxUint64/8+10))
	}
	if b.Trace != math.MaxInt32 {
		t.Errorf("Trace = %d, want MaxInt32 after trace saturation", b.Trace)
	}
	// Ordinary values stay exact.
	b = candidateBudget(1000, 0)
	if b.Cycles != 1000*DefaultBudgetFactor || b.Trace != 1000*DefaultBudgetFactor*8 {
		t.Errorf("small budget distorted: %+v", b)
	}
	// Zero baseline: nothing to saturate, budget is zero (unlimited).
	b = candidateBudget(0, 8)
	if b.Cycles != 0 || b.Trace != 0 {
		t.Errorf("zero baseline budget: %+v", b)
	}
	// Negative factor disables budgeting entirely.
	if b = candidateBudget(math.MaxUint64, -1); b.Cycles != 0 || b.Trace != 0 {
		t.Errorf("negative factor: %+v", b)
	}
}

// fakeTrainer returns a TrainFunc yielding the given cycle counts in order,
// recording the budget each call ran under.
func fakeTrainer(t *testing.T, cycles []uint64, calls *int, budgets *[]uint64) TrainFunc {
	return func(_ *pipeline.Pipeline, b Budget) (uint64, error) {
		t.Helper()
		if *calls >= len(cycles) {
			t.Fatalf("trainer called %d times, only %d inputs provisioned", *calls+1, len(cycles))
		}
		c := cycles[*calls]
		*calls++
		*budgets = append(*budgets, b.Cycles)
		return c, nil
	}
}

func TestMeasureAllBoundEdgeCases(t *testing.T) {
	// measureAll charges every input against one cumulative bound; one
	// TrainFunc per input, all sharing the recording state.
	setup := func(perInput []uint64) (Options, *int, *[]uint64) {
		calls, budgets := 0, []uint64{}
		opt := Options{}
		for range perInput {
			opt.Training = append(opt.Training, fakeTrainer(t, perInput, &calls, &budgets))
		}
		return opt, &calls, &budgets
	}

	t.Run("zero-bound-unlimited", func(t *testing.T) {
		opt, calls, budgets := setup([]uint64{100, 200, 300})
		total, err := measureAll(nil, opt, Budget{}, func() uint64 { return 0 })
		if err != nil || total != 600 {
			t.Fatalf("total=%d err=%v, want 600 nil", total, err)
		}
		if *calls != 3 {
			t.Errorf("ran %d inputs, want all 3", *calls)
		}
		for i, b := range *budgets {
			if b != 0 {
				t.Errorf("input %d ran under budget %d, want 0 (unlimited)", i, b)
			}
		}
	})

	t.Run("bound-hit-exactly-at-input-boundary", func(t *testing.T) {
		// The first input consumes exactly the whole bound: the second must
		// not be simulated at all, and the verdict is the canonical budget
		// error with the pre-boundary total.
		opt, calls, _ := setup([]uint64{100, 100})
		total, err := measureAll(nil, opt, Budget{}, func() uint64 { return 100 })
		if !errors.Is(err, errBudget) {
			t.Fatalf("err = %v, want errBudget", err)
		}
		if total != 100 {
			t.Errorf("total = %d, want the 100 cycles accumulated before the cut", total)
		}
		if *calls != 1 {
			t.Errorf("second input was simulated (%d calls) despite an exhausted bound", *calls)
		}
	})

	t.Run("bound-tightens-between-inputs", func(t *testing.T) {
		// The bound shrinks from 1000 to 150 while input 0 runs (an incumbent
		// finished elsewhere): input 1 must run under only the remainder.
		opt, _, budgets := setup([]uint64{100, 40})
		bounds := []uint64{1000, 150}
		i := 0
		total, err := measureAll(nil, opt, Budget{}, func() uint64 {
			b := bounds[i]
			if i < len(bounds)-1 {
				i++
			}
			return b
		})
		if err != nil || total != 140 {
			t.Fatalf("total=%d err=%v, want 140 nil", total, err)
		}
		want := []uint64{1000, 50} // input 1: 150 bound - 100 spent
		for i := range want {
			if (*budgets)[i] != want[i] {
				t.Errorf("input %d budget = %d, want %d", i, (*budgets)[i], want[i])
			}
		}
	})

	t.Run("tightened-below-total", func(t *testing.T) {
		// The bound tightens below what input 0 already spent: input 1 is
		// cut without simulating.
		opt, calls, _ := setup([]uint64{100, 100})
		bounds := []uint64{1000, 80}
		i := 0
		total, err := measureAll(nil, opt, Budget{}, func() uint64 {
			b := bounds[i]
			if i < len(bounds)-1 {
				i++
			}
			return b
		})
		if !errors.Is(err, errBudget) || total != 100 || *calls != 1 {
			t.Fatalf("total=%d calls=%d err=%v, want 100/1/errBudget", total, *calls, err)
		}
	})

	t.Run("cancelled-between-inputs", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		opt := Options{Training: []TrainFunc{
			func(*pipeline.Pipeline, Budget) (uint64, error) {
				calls++
				cancel() // cancel lands while input 0 runs
				return 100, nil
			},
			func(*pipeline.Pipeline, Budget) (uint64, error) {
				calls++
				return 100, nil
			},
		}}
		total, err := measureAll(nil, opt, Budget{Ctx: ctx}, func() uint64 { return 0 })
		if !errors.Is(err, errCancelled) {
			t.Fatalf("err = %v, want errCancelled", err)
		}
		if total != 100 || calls != 1 {
			t.Errorf("total=%d calls=%d, want 100/1 (input 1 skipped)", total, calls)
		}
	})
}

func TestSkipReasonStringRoundTrip(t *testing.T) {
	for r := SkipBuild; r <= SkipCancelled; r++ {
		s := r.String()
		back, ok := ParseSkipReason(s)
		if !ok || back != r {
			t.Errorf("round-trip %d -> %q -> (%d, %v)", r, s, back, ok)
		}
	}
	if s := SkipCancelled.String(); s != "cancelled" {
		t.Errorf("SkipCancelled = %q", s)
	}
	if _, ok := ParseSkipReason("no-such-reason"); ok {
		t.Error("unknown string parsed as a reason")
	}
	// Out-of-range reasons render as "error" and parse back to SkipError.
	if back, ok := ParseSkipReason(SkipReason(99).String()); !ok || back != SkipError {
		t.Errorf("unknown reason round-trip: (%d, %v)", back, ok)
	}
}

func TestCandidateSkipString(t *testing.T) {
	s := CandidateSkip{Phase: 0, Subset: []int{1, 2}, Reason: SkipCancelled, Err: errCancelled}
	got := s.String()
	for _, want := range []string{"phase 0", "[1 2]", "cancelled", "search cancelled"} {
		if !strings.Contains(got, want) {
			t.Errorf("skip string %q lacks %q", got, want)
		}
	}
}
