package core

// The checkpoint journal behind Options.Checkpoint/Resume: an append-only
// JSONL log of per-candidate training outcomes, keyed by the search
// engine's canonical candidate fingerprints under a program/arch/options
// hash. The merger records each unique candidate's measurement verdict as
// it finalizes (strictly in enumeration order), so an interrupted search
// leaves every completed measurement behind; a resumed search replays them
// instead of re-simulating, reproducing the uninterrupted winner, counters,
// skips, and SearchPoint order byte-identically.
//
// What is journaled: the serial baseline and, per unique candidate that
// entered measurement, either its completed training cycle count or its
// canonical measurement skip (deadlock, budget, trap, panic, error).
// Build and verify failures are NOT journaled — they are deterministic and
// cheap to recompute, and a resumed search must rebuild every pipeline
// anyway (the winner's stages, SearchPoint stage counts, and the Searched
// counter all need the built pipeline). Pruned and cancelled candidates
// are never journaled: pruning is recomputed, and a cancelled candidate
// has no verdict.
//
// Why replay is sound: the journal key hashes the program (ir.Prog.Print),
// the arch config, and every option that shapes enumeration or budget
// evolution (MaxThreads, MaxCandidates, BudgetFactor, TopK, Exhaustive,
// passes, training-input count, search mode). Under an identical key the
// enumeration order and branch-and-bound bound sequence are identical, so
// a verdict recorded at a candidate's enumeration slot — including a
// budget abort, whose validity depends on the bound in force at that slot
// — is exactly the verdict an uninterrupted run reaches. Parallelism is
// deliberately excluded: results are bit-identical across Parallelism
// levels, so a journal written at -j 1 resumes correctly at -j 8.
//
// Corruption model: a crash can truncate the final line. Loading stops at
// the first unparsable or checksum-failing line, the file is truncated
// back to the last valid entry, and the lost measurements degrade to
// re-measurement — never a failure. A header whose key does not match the
// current search discards the journal entirely and starts fresh.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"sync"

	"phloem/internal/ir"
)

// journalVersion guards the entry schema; bump on incompatible changes.
const journalVersion = 1

// serialFP is the reserved fingerprint for the serial baseline (real
// candidate fingerprints always start with '|').
const serialFP = "serial"

// journalEntry is one JSONL line. The header line carries Key and Version;
// measurement lines carry FP plus either Cycles (completed) or
// Reason/Err (a measurement-phase skip).
type journalEntry struct {
	Kind    string `json:"kind"` // "header", "serial", or "cand"
	Version int    `json:"version,omitempty"`
	Key     string `json:"key,omitempty"`
	FP      string `json:"fp,omitempty"`
	Cycles  uint64 `json:"cycles,omitempty"`
	Reason  string `json:"reason,omitempty"` // "" = completed measurement
	Err     string `json:"err,omitempty"`
	Sum     uint32 `json:"sum"` // crc32 over the other fields
}

// checksum covers every field except Sum itself, so a partially written or
// bit-flipped line is detected and treated as corruption.
func (e *journalEntry) checksum() uint32 {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%s\x00%d\x00%s\x00%s\x00%d\x00%s\x00%s",
		e.Kind, e.Version, e.Key, e.FP, e.Cycles, e.Reason, e.Err)
	return h.Sum32()
}

// replayedError carries a journaled error message so replayed skips render
// byte-identically to the original failure.
type replayedError struct{ msg string }

func (e *replayedError) Error() string { return e.msg }

// journal is the open checkpoint file plus its loaded entries. All methods
// are safe on a nil receiver (no checkpoint configured) and safe for
// concurrent use: workers look up entries while the merger records new
// ones.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	key      string
	entries  map[string]*journalEntry // candidate fingerprint -> entry
	serial   *journalEntry
	replayed int
	trace    func(format string, args ...any)
}

// journalKey hashes everything that shapes the search: the program text,
// the target machine, and every option influencing enumeration or budget
// evolution. mode distinguishes autotune (serial incumbent) from Search
// (no incumbent) — their bound sequences differ, so their budget-abort
// verdicts are not interchangeable.
func journalKey(p *ir.Prog, opt Options, mode string) string {
	h := fnv.New64a()
	io.WriteString(h, mode)
	io.WriteString(h, "\x00")
	io.WriteString(h, p.Print())
	fmt.Fprintf(h, "\x00arch=%+v", opt.Machine)
	fmt.Fprintf(h, "\x00passes=%+v", opt.Passes)
	fmt.Fprintf(h, "\x00opt=%d,%d,%d,%d,%v,%v,%v,%v,%d",
		opt.MaxThreads, opt.MaxCandidates, opt.BudgetFactor, opt.TopK,
		opt.Exhaustive, opt.EnableAblation, opt.SkipVerify, opt.CommOpt, len(opt.Training))
	return fmt.Sprintf("%016x", h.Sum64())
}

// openJournal opens (or creates) the checkpoint journal for this search.
// With Resume set it loads every valid entry recorded under a matching
// key; otherwise — or on a key mismatch — the file restarts empty. A nil
// journal (no error) is returned when no checkpoint is configured.
func openJournal(p *ir.Prog, opt Options, mode string, trace func(string, ...any)) (*journal, error) {
	if opt.Checkpoint == "" {
		return nil, nil
	}
	f, err := os.OpenFile(opt.Checkpoint, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint journal: %w", err)
	}
	j := &journal{
		f:       f,
		key:     journalKey(p, opt, mode),
		entries: map[string]*journalEntry{},
		trace:   trace,
	}
	keep := int64(0)
	if opt.Resume {
		keep = j.load()
	}
	// Drop everything past the valid prefix (corrupt tail, key-mismatched
	// or non-resumed content) and position appends after it.
	if err := f.Truncate(keep); err != nil {
		j.disable("truncate: %v", err)
		return j, nil
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		j.disable("seek: %v", err)
		return j, nil
	}
	if keep == 0 {
		j.append(&journalEntry{Kind: "header", Version: journalVersion, Key: j.key})
	}
	return j, nil
}

// load scans the journal and returns the byte length of its valid prefix:
// 0 unless the first line is an intact header for this exact search key,
// otherwise the end of the last intact entry line. Entries beyond the
// returned offset are lost to corruption and will be re-measured.
func (j *journal) load() int64 {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0
	}
	sc := bufio.NewScanner(j.f)
	// Journaled deadlock snapshots can run long; allow large lines.
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	valid := int64(0)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Sum != e.checksum() {
			j.trace("autotune: checkpoint journal corrupt after %d bytes; later entries will be re-measured", valid)
			return valid
		}
		if first {
			first = false
			if e.Kind != "header" || e.Version != journalVersion || e.Key != j.key {
				j.trace("autotune: checkpoint journal key mismatch (different program, machine, or options); starting fresh")
				return 0
			}
			valid += int64(len(line)) + 1
			continue
		}
		switch e.Kind {
		case "serial":
			ec := e
			j.serial = &ec
		case "cand":
			if e.FP != "" {
				ec := e
				j.entries[e.FP] = &ec
			}
		}
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		j.trace("autotune: checkpoint journal read stopped: %v; later entries will be re-measured", err)
	}
	if n := len(j.entries); n > 0 || j.serial != nil {
		j.trace("autotune: resuming from checkpoint journal: %d completed measurements available", n+btoi(j.serial != nil))
	}
	return valid
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// disable turns the journal off after an I/O failure: the search must
// never crash or stall on checkpoint trouble, it just stops checkpointing.
func (j *journal) disable(format string, args ...any) {
	j.trace("autotune: checkpoint journal disabled: "+format, args...)
	j.f.Close()
	j.f = nil
}

// append writes one entry line. Caller holds mu (or is still
// single-threaded during open).
func (j *journal) append(e *journalEntry) {
	if j.f == nil {
		return
	}
	e.Sum = e.checksum()
	b, err := json.Marshal(e)
	if err != nil {
		j.disable("encode: %v", err)
		return
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		j.disable("write: %v", err)
	}
}

// close releases the file; the journal is append-only so there is nothing
// to flush beyond the OS buffer.
func (j *journal) close() {
	if j == nil || j.f == nil {
		return
	}
	j.f.Close()
	j.f = nil
}

// serialCycles returns the journaled serial-baseline measurement, if any.
func (j *journal) serialCycles() (uint64, bool) {
	if j == nil || j.serial == nil {
		return 0, false
	}
	j.mu.Lock()
	j.replayed++
	j.mu.Unlock()
	return j.serial.Cycles, true
}

// recordSerial journals the serial-baseline measurement.
func (j *journal) recordSerial(cycles uint64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.serial != nil {
		return
	}
	e := &journalEntry{Kind: "serial", FP: serialFP, Cycles: cycles}
	j.serial = e
	j.append(e)
}

// lookup returns the journaled outcome for a candidate fingerprint. Safe
// from worker goroutines.
func (j *journal) lookup(fp string) (*journalEntry, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[fp]
	if ok {
		j.replayed++
	}
	return e, ok
}

// replayCount returns how many journal entries this search replayed.
func (j *journal) replayCount() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// record journals a finalized unique candidate's measurement verdict.
// Only measurement outcomes are recorded: the candidate must have built
// (f.pipe != nil), and pruned/cancelled verdicts are skipped (see the
// package comment). Called by the merger, in enumeration order.
func (j *journal) record(fp string, f *candFinal) {
	if j == nil || f.pipe == nil {
		return
	}
	e := &journalEntry{Kind: "cand", FP: fp}
	if f.skip != nil {
		switch f.skip.Reason {
		case SkipPruned, SkipCancelled, SkipBuild, SkipVerifier:
			return
		}
		e.Reason = f.skip.Reason.String()
		if f.skip.Err != nil {
			e.Err = f.skip.Err.Error()
		}
	} else {
		e.Cycles = f.cycles
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[fp]; ok {
		return // already journaled (a replayed entry)
	}
	j.entries[fp] = e
	j.append(e)
}

// replaySkip reconstructs a journaled measurement skip for a candidate.
// Budget skips rebuild the canonical errBudget (their recorded text);
// every other reason carries its original error text verbatim, so the
// resumed run's skip list renders byte-identically to the uninterrupted
// run's.
func replaySkip(t *candTask, e *journalEntry) *CandidateSkip {
	reason, ok := ParseSkipReason(e.Reason)
	if !ok {
		reason = SkipError
	}
	var err error
	if reason == SkipBudget && e.Err == errBudget.Error() {
		err = errBudget
	} else {
		err = &replayedError{msg: e.Err}
	}
	return &CandidateSkip{Phase: t.phase, Subset: t.subset, Reason: reason, Err: err}
}
