package core

import (
	"reflect"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/workloads"
)

// runFamily compiles one benchmark with the given options and simulates it
// on the family's largest test input, returning the pipeline and its stats.
func runFamily(t *testing.T, b *workloads.Benchmark, opt Options) (*pipeline.Pipeline, *sim.Stats) {
	t.Helper()
	prog, err := workloads.CompileSerial(b.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog, opt)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	in := b.Test[len(b.Test)-1]
	inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
	if err != nil {
		t.Fatal(err)
	}
	st, err := inst.Run()
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	if err := in.Verify(inst); err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return res.Pipeline, st
}

// TestCommOptOffBitIdentical pins the opt-in contract: with Options.CommOpt
// off (the default), compilation leaves no trace of the pass — no
// pass-assigned capacities, no fan-out edges — and repeated compiles
// simulate to bit-identical Stats.
func TestCommOptOffBitIdentical(t *testing.T) {
	for _, b := range workloads.Benchmarks(workloads.ScaleTest) {
		pl, st1 := runFamily(t, b, DefaultOptions())
		for q, spec := range pl.Queues {
			if spec.DepthByPass {
				t.Errorf("%s: q%d marked DepthByPass with CommOpt off", b.Name, q)
			}
		}
		if len(pl.FanOuts) != 0 {
			t.Errorf("%s: %d fan-outs with CommOpt off", b.Name, len(pl.FanOuts))
		}
		_, st2 := runFamily(t, b, DefaultOptions())
		if !reflect.DeepEqual(st1, st2) {
			t.Errorf("%s: stats differ between identical CommOpt-off compiles:\n%s\nvs\n%s",
				b.Name, st1.String(), st2.String())
		}
	}
}

// TestCommOptCompiles exercises the in-compile path: Options.CommOpt runs
// the pass inside finishPipeline, before verification, so a successful
// Compile proves the assigned capacities clear the verifier's Q4
// deadlock-safety rule. The optimized pipelines must still produce correct
// results, and at least one family must actually receive assignments.
func TestCommOptCompiles(t *testing.T) {
	opt := DefaultOptions()
	opt.CommOpt = true
	assigned := 0
	for _, b := range workloads.Benchmarks(workloads.ScaleTest) {
		pl, _ := runFamily(t, b, opt)
		for _, spec := range pl.Queues {
			if spec.DepthByPass {
				assigned++
			}
		}
	}
	if assigned == 0 {
		t.Error("CommOpt assigned no capacities across the whole suite")
	}
}
