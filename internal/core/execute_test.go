package core_test

import (
	"errors"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/workloads"
)

// TestExecuteBackends runs the same compiled pipeline through Execute on
// both backends: instruction counts must agree, the native path must not
// invent cycles, and both must satisfy the workload's verifier.
func TestExecuteBackends(t *testing.T) {
	b, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workloads.CompileSerial(b.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(prog, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := b.Test[0]

	run := func(be core.Backend) *core.ExecStats {
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.Execute(inst, be)
		if err != nil {
			t.Fatalf("%v: %v", be, err)
		}
		if err := in.Verify(inst); err != nil {
			t.Fatalf("%v: %v", be, err)
		}
		return st
	}
	ss, ns := run(core.BackendSim), run(core.BackendNative)
	if ss.Instructions != ns.Instructions {
		t.Errorf("instruction counts diverge: sim %d, native %d", ss.Instructions, ns.Instructions)
	}
	if ss.Cycles == 0 {
		t.Error("sim backend reported zero cycles")
	}
	if ns.Cycles != 0 {
		t.Errorf("native backend invented %d cycles", ns.Cycles)
	}
	if ss.Report == "" || ns.Report == "" {
		t.Error("empty backend report")
	}
}

// TestExecuteSentinels: guardrail errors surface with the same sentinel
// classes through Execute regardless of backend.
func TestExecuteSentinels(t *testing.T) {
	b, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workloads.CompileSerial(b.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(prog, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []core.Backend{core.BackendSim, core.BackendNative} {
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), b.Test[0].Bind())
		if err != nil {
			t.Fatal(err)
		}
		inst.Machine.MaxTraceEntries = 100
		if _, err := core.Execute(inst, be); !errors.Is(err, sim.ErrTraceLimit) {
			t.Errorf("%v: got %v, want ErrTraceLimit", be, err)
		}
	}
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]core.Backend{"sim": core.BackendSim, "native": core.BackendNative} {
		got, err := core.ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := core.ParseBackend("gpu"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
}
