package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"phloem/internal/pipeline"
	"phloem/internal/sim"
)

// TrainFunc measures a candidate pipeline on one training input under a
// budget, returning the cycle count (or an error to skip the candidate).
// Implementations apply the budget to the instantiated machine with
// Budget.Apply before running.
type TrainFunc func(*pipeline.Pipeline, Budget) (uint64, error)

// DefaultBudgetFactor is the per-candidate budget multiplier over the
// serial baseline: a candidate that has not finished after this many times
// the serial cycle count cannot be the best pipeline and is aborted.
const DefaultBudgetFactor = 8

// Budget bounds one candidate measurement so pathological candidates
// (timing deadlocks, livelocks, exponential blowups) abort quickly with a
// structured error instead of hanging the search.
type Budget struct {
	// Cycles aborts the timing phase past this count (0 = unlimited).
	Cycles uint64
	// Trace caps functional-trace entries — the livelock guard, since the
	// functional phase runs before any cycle is simulated (0 = simulator
	// default).
	Trace int
	// Probe, when non-nil, is installed on the candidate's machine so the
	// measurement is observed (e.g. by a telemetry.Collector). Probes never
	// change timing results.
	Probe sim.Probe
	// TelemetryInterval sets the probe's sampling period in cycles
	// (0 = end-of-run sample only).
	TelemetryInterval uint64
	// Ctx, when non-nil, cancels the measurement cooperatively: the
	// simulator polls it at amortized intervals and aborts with
	// sim.ErrCancelled. A background context changes nothing.
	Ctx context.Context
	// Wall bounds the measurement in wall-clock time (0 = unlimited) — the
	// wall complement of Cycles. Each Apply re-anchors the deadline at
	// time.Now()+Wall, so the allowance is per applied machine (one
	// training input in the autotune loop), aborting with
	// sim.ErrWallBudget.
	Wall time.Duration
}

// Apply configures a machine with the budget.
func (b Budget) Apply(m *sim.Machine) {
	if b.Cycles > 0 {
		m.Cfg.CycleBudget = b.Cycles
	}
	if b.Trace > 0 {
		m.MaxTraceEntries = b.Trace
	}
	if b.Probe != nil {
		m.Probe = b.Probe
		m.Cfg.TelemetryInterval = b.TelemetryInterval
	}
	if b.Ctx != nil {
		m.Ctx = b.Ctx
	}
	if b.Wall > 0 {
		m.WallDeadline = time.Now().Add(b.Wall)
	}
}

// candidateBudget derives the per-candidate budget from the serial
// baseline. The trace cap is proportionally larger than the cycle budget
// because trace entries track instructions, which outnumber cycles on a
// wide core. A negative factor disables budgeting; zero selects the
// default.
func candidateBudget(serialCycles uint64, factor int) Budget {
	if factor < 0 {
		return Budget{}
	}
	if factor == 0 {
		factor = DefaultBudgetFactor
	}
	// Both multiplications saturate: a huge serial baseline must yield an
	// effectively unlimited budget, never a silently wrapped tiny one.
	f := uint64(factor)
	cycles := serialCycles * f
	if serialCycles != 0 && cycles/f != serialCycles {
		cycles = math.MaxUint64
	}
	tr := cycles * 8
	if cycles > math.MaxUint64/8 {
		tr = math.MaxUint64
	}
	if tr > math.MaxInt32 {
		tr = math.MaxInt32
	}
	return Budget{Cycles: cycles, Trace: int(tr)}
}

// SkipReason classifies why the autotuner dropped a candidate.
type SkipReason int

const (
	// SkipBuild: the pipelining passes rejected the point subset.
	SkipBuild SkipReason = iota
	// SkipVerifier: the static pipeline verifier found the build broken.
	SkipVerifier
	// SkipDeadlock: the candidate deadlocked in simulation.
	SkipDeadlock
	// SkipBudget: the candidate exceeded its cycle budget or trace limit.
	SkipBudget
	// SkipTrap: the candidate hit a functional trap (out-of-bounds access,
	// division by zero, protocol violation).
	SkipTrap
	// SkipPanic: building or measuring the candidate panicked.
	SkipPanic
	// SkipError: any other measurement failure (e.g. a verify mismatch).
	SkipError
	// SkipPruned: the Options.TopK rank phase statically predicted the
	// candidate cannot win and excluded it from simulation.
	SkipPruned
	// SkipCancelled: the search was cancelled (Options.Ctx or Deadline)
	// before this candidate could be measured.
	SkipCancelled
)

func (r SkipReason) String() string {
	switch r {
	case SkipBuild:
		return "build"
	case SkipVerifier:
		return "verifier"
	case SkipDeadlock:
		return "deadlock"
	case SkipBudget:
		return "budget"
	case SkipTrap:
		return "trap"
	case SkipPanic:
		return "panic"
	case SkipPruned:
		return "pruned"
	case SkipCancelled:
		return "cancelled"
	default:
		return "error"
	}
}

// ParseSkipReason maps a SkipReason.String() rendering back to the reason —
// the inverse used when replaying checkpoint-journal entries. The second
// result is false for unknown strings.
func ParseSkipReason(s string) (SkipReason, bool) {
	switch s {
	case "build":
		return SkipBuild, true
	case "verifier":
		return SkipVerifier, true
	case "deadlock":
		return SkipDeadlock, true
	case "budget":
		return SkipBudget, true
	case "trap":
		return SkipTrap, true
	case "panic":
		return SkipPanic, true
	case "pruned":
		return SkipPruned, true
	case "cancelled":
		return SkipCancelled, true
	case "error":
		return SkipError, true
	}
	return SkipError, false
}

// CandidateSkip records one candidate the search dropped, with the phase
// and point subset that identify it and the structured cause.
type CandidateSkip struct {
	Phase  int
	Subset []int
	Reason SkipReason
	Err    error
}

func (s CandidateSkip) String() string {
	return fmt.Sprintf("phase %d subset %v: %s: %v", s.Phase, s.Subset, s.Reason, s.Err)
}

// panicError wraps a recovered panic value from candidate build/measure.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// ErrVerify tags static-verifier rejections (see finishPipeline) so they
// classify as SkipVerifier wherever they surface.
var ErrVerify = errors.New("fails static verification")

// classify maps a candidate failure to a skip reason using the simulator's
// sentinel error classes.
func classify(err error) SkipReason {
	var pe *panicError
	switch {
	case errors.As(err, &pe):
		return SkipPanic
	case errors.Is(err, ErrVerify):
		return SkipVerifier
	case errors.Is(err, sim.ErrDeadlock):
		return SkipDeadlock
	case errors.Is(err, sim.ErrCycleBudget), errors.Is(err, sim.ErrTraceLimit),
		errors.Is(err, sim.ErrWallBudget):
		// A wall overrun is a per-candidate budget verdict, not a search
		// abort: the candidate is dropped but the search goes on.
		return SkipBudget
	case errors.Is(err, sim.ErrTrap):
		return SkipTrap
	case errors.Is(err, sim.ErrCancelled):
		return SkipCancelled
	}
	return SkipError
}

// timingIndependent reports whether a measurement failure cannot depend on
// the cycle budget: traps and functional-trace limits fire during functional
// simulation, before a single cycle is timed, so the same failure occurs
// under any Budget.Cycles value. Deadlocks and cycle-budget aborts are
// timing-phase outcomes and are NOT timing-independent.
func timingIndependent(err error) bool {
	return errors.Is(err, sim.ErrTraceLimit) || errors.Is(err, sim.ErrTrap)
}

// errBudget is the canonical cycle-budget skip error. Budget skips are
// recorded without cycle counts: the exact abort cycle depends on the
// branch-and-bound bound in force when the candidate ran, which a parallel
// worker may observe at a stale (looser) value than the serial order
// prescribes. The abort *verdict* is monotone in the bound — aborting under
// a looser bound implies aborting under the exact one — but the counts are
// not, so a canonical record is what lets the merger keep budget aborts
// verbatim instead of re-measuring every one under the exact bound.
var errBudget = fmt.Errorf("core: training cycle budget exhausted: %w", sim.ErrCycleBudget)

// errCancelled is the canonical cancellation skip error. Like budget skips,
// cancellation skips are recorded without cycle or phase detail: a parallel
// worker may observe the cancel at any point in its measurement, so only a
// canonical record keeps skip lists identical across Parallelism levels once
// the set of cancelled candidates is fixed.
var errCancelled = fmt.Errorf("core: search cancelled before candidate finished training: %w", sim.ErrCancelled)

// measureAll runs every training input, charging all of them against one
// cumulative cycle bound (0 = unlimited): input i runs with the cycles the
// earlier inputs left over, and once the total reaches the bound the
// remaining inputs are not simulated at all. The bound is what
// branch-and-bound tightens — a candidate whose running total passes the
// best-known total cannot win, so it aborts with a budget error. bound is
// re-evaluated before each input so long measurements pick up tightening
// published while they run; it must be non-increasing across calls.
//
// base supplies the per-input trace cap and any probe; base.Cycles is
// superseded by bound. On error the returned cycle count is the total
// accumulated before the failing (or skipped) input.
func measureAll(pipe *pipeline.Pipeline, opt Options, base Budget, bound func() uint64) (uint64, error) {
	var total uint64
	for _, train := range opt.Training {
		if base.Ctx != nil && base.Ctx.Err() != nil {
			return total, errCancelled
		}
		bn := bound()
		if bn > 0 && total >= bn {
			return total, errBudget
		}
		b := base
		if bn > 0 {
			b.Cycles = bn - total
		}
		c, err := train(pipe, b)
		if err != nil {
			return total, err
		}
		total += c
	}
	return total, nil
}

// tryMeasure is measureAll under panic recovery, so a crashing candidate
// cannot take down the whole search.
func tryMeasure(pipe *pipeline.Pipeline, opt Options, base Budget, bound func() uint64) (cycles uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			cycles, err = 0, &panicError{val: r}
		}
	}()
	return measureAll(pipe, opt, base, bound)
}
