package core_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func bfsTrainer(g *graph.CSR) core.TrainFunc {
	return func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
		if err != nil {
			return 0, err
		}
		b.Apply(inst.Machine)
		st, err := inst.Run()
		if err != nil {
			return 0, err
		}
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}
}

func TestStaticFlowBFS(t *testing.T) {
	res, err := core.CompileSource(workloads.BFSSource, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The static flow must reproduce the paper's BFS pipeline: three thread
	// stages (driver, vertex doubler, update) plus three chained RAs
	// (fringe scan -> nodes indirect -> edges scan).
	if res.Pipeline.NumStages() != 3 {
		t.Errorf("BFS static: %d thread stages, want 3\n%s",
			res.Pipeline.NumStages(), res.Pipeline.Describe())
	}
	if len(res.Pipeline.RAs) != 3 {
		t.Errorf("BFS static: %d RAs, want 3", len(res.Pipeline.RAs))
	}
	// The nodes RA output must feed the edges scan directly (chaining).
	var nodesOut, edgesIn = -1, -2
	for _, ra := range res.Pipeline.RAs {
		if ra.Mode == arch.RAIndirect {
			nodesOut = ra.OutQ
		}
		if ra.Mode == arch.RAScan && res.Pipeline.Prog.Slots[ra.Slot].Name == "edges" {
			edgesIn = ra.InQ
		}
	}
	if nodesOut != edgesIn {
		t.Errorf("nodes RA (out q%d) should chain into the edges scan (in q%d)", nodesOut, edgesIn)
	}
}

func TestAblationConfigsAllCorrect(t *testing.T) {
	g := graph.Grid("g", 14, 14, 5)
	configs := []passes.Options{
		{},
		{Recompute: true},
		{CtrlValues: true},
		{Recompute: true, CtrlValues: true, InterstageDCE: true},
		{Recompute: true, CtrlValues: true, Handlers: true},
		passes.Default(),
	}
	for i, pc := range configs {
		opt := core.DefaultOptions()
		opt.EnableAblation = true
		opt.Passes = pc
		res, err := core.CompileSource(workloads.BFSSource, opt)
		if err != nil {
			t.Fatalf("config %d [%s]: %v", i, pc, err)
		}
		if _, err := bfsTrainer(g)(res.Pipeline, core.Budget{}); err != nil {
			t.Errorf("config %d [%s]: %v", i, pc, err)
		}
	}
}

func TestAutotunePicksNoWorseThanStatic(t *testing.T) {
	train := graph.Grid("t", 24, 24, 9)
	static, err := core.CompileSource(workloads.BFSSource, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	staticCycles, err := bfsTrainer(train)(static.Pipeline, core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = []core.TrainFunc{bfsTrainer(train)}
	tuned, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.TrainCycles > staticCycles {
		t.Errorf("autotune picked %d train cycles, static achieves %d",
			tuned.TrainCycles, staticCycles)
	}
	if tuned.Searched < 5 {
		t.Errorf("searched only %d pipelines", tuned.Searched)
	}
}

func TestSearchReportsMultipleStageCounts(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid("s", 16, 16, 4)
	opt := core.DefaultOptions()
	opt.Training = []core.TrainFunc{bfsTrainer(g)}
	points, err := core.Search(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]bool{}
	for _, pt := range points {
		counts[pt.TotalStages] = true
	}
	if len(counts) < 2 {
		t.Errorf("search should cover multiple stage counts, got %d points across %d sizes",
			len(points), len(counts))
	}
}
