package core

// The search-observability hook behind Options.Observer: typed per-candidate
// lifecycle events with monotonic wall-time spans and per-worker attribution,
// mirroring the nil-probe-is-bit-identical design of sim.Probe. With no
// observer installed the search pays one nil test per emission site, takes no
// timestamps, and produces byte-identical results; with one installed the
// event stream is purely additive — observers receive copies of search state
// and can never change the winner, counters, skips, SearchPoints, or journal
// bytes (pinned by tests in internal/obs).
//
// Event taxonomy (one candidate's lifecycle, in causal order):
//
//	EvEnumerated -> [EvDeduped | EvPruned]                (never measured)
//	             -> EvBuild -> EvCommOpt? -> EvVerify     (worker spans)
//	             -> [EvReplay | EvTrain]                  (measure or journal)
//	             -> [EvAccept | EvSkip | EvCancel]        (merger verdict)
//
// plus the search-level events EvSearchStart, EvSerial, EvRank, and
// EvSearchEnd. Span events (EvSerial, EvRank, EvBuild, EvCommOpt, EvVerify,
// EvTrain) carry Start < End monotonic offsets from EvSearchStart; verdict
// events are instants (Start == End == emission time).
//
// Ordering contract: verdict events (EvDeduped, EvPruned, EvAccept, EvSkip,
// EvCancel) are emitted by the merger strictly in enumeration order at every
// Options.Parallelism. Worker spans are emitted as they complete, so their
// interleaving is scheduling-dependent when Parallelism > 1 — but at
// Parallelism 1 the whole stream is emitted from one goroutine in one
// canonical order, byte-identical across runs once timestamps are masked.
// Observers must be safe for concurrent use when Parallelism > 1.

import (
	"time"
)

// EventKind classifies one SearchEvent.
type EventKind int

const (
	// EvSearchStart opens a compile/search: Mode is "autotune", "search",
	// or "static". Always the first event.
	EvSearchStart EventKind = iota
	// EvSerial spans the serial-baseline measurement (Cycles; Replayed when
	// restored from a checkpoint journal instead of simulated).
	EvSerial
	// EvEnumerated records one walked candidate configuration (Seq, Phase,
	// Subset, FP; Dup when its fingerprint coincides with an earlier task).
	EvEnumerated
	// EvRank spans the Options.TopK static rank phase; N is the number of
	// candidates pruned.
	EvRank
	// EvBuild spans one candidate's pass-pipeline build (Worker attributes
	// it; rank-phase builds run on worker 0).
	EvBuild
	// EvCommOpt spans the candidate's queue-communication optimization pass
	// (only when Options.CommOpt is enabled).
	EvCommOpt
	// EvVerify spans the candidate's static verification.
	EvVerify
	// EvTrain spans one candidate measurement over every training input
	// (Cycles holds the accumulated count; Err the measurement failure, if
	// any — the merger's canonical verdict may still differ).
	EvTrain
	// EvReplay records a candidate verdict restored from the checkpoint
	// journal instead of simulated (Cycles, or Err for a journaled skip).
	EvReplay
	// EvDeduped is the merger's verdict for a fingerprint-duplicate
	// candidate: resolved from the original's memoized result.
	EvDeduped
	// EvPruned is the merger's verdict for a candidate the TopK rank phase
	// excluded from simulation (PredRank/Pred carry the static prediction).
	EvPruned
	// EvAccept is the merger's verdict for a measured candidate: Cycles is
	// the finalized training total (Replayed when it came from the journal).
	EvAccept
	// EvSkip is the merger's verdict for a dropped candidate (Skip holds the
	// structured reason; cancellations use EvCancel instead).
	EvSkip
	// EvCancel is the merger's verdict for a candidate the cancelled search
	// never finished (Options.Ctx / Deadline).
	EvCancel
	// EvSearchEnd closes the stream: Cycles is the winner's training total
	// (0 in static mode), N the number of journal-replayed measurements.
	EvSearchEnd
)

// String names the kind for rendering and aggregation keys.
func (k EventKind) String() string {
	switch k {
	case EvSearchStart:
		return "search-start"
	case EvSerial:
		return "serial"
	case EvEnumerated:
		return "enumerated"
	case EvRank:
		return "rank"
	case EvBuild:
		return "build"
	case EvCommOpt:
		return "commopt"
	case EvVerify:
		return "verify"
	case EvTrain:
		return "train"
	case EvReplay:
		return "replay"
	case EvDeduped:
		return "deduped"
	case EvPruned:
		return "pruned"
	case EvAccept:
		return "accept"
	case EvSkip:
		return "skip"
	case EvCancel:
		return "cancel"
	case EvSearchEnd:
		return "search-end"
	}
	return "unknown"
}

// SearchEvent is one observed search-lifecycle event. Field relevance
// depends on Kind (see the EventKind docs); Subset is shared with the search
// engine and must not be mutated.
type SearchEvent struct {
	Kind EventKind
	// Seq is the candidate's enumeration index (-1 for search-level events
	// and the static-compile flow).
	Seq int
	// Phase is the tuned phase (-1 for the static pipeline and search-level
	// events).
	Phase int
	// Subset indexes the phase's top-ranked points (nil for the static
	// pipeline).
	Subset []int
	// FP is the candidate's canonical configuration fingerprint — the same
	// key the dedup table and checkpoint journal use, and the link to a
	// per-candidate sim-level telemetry trace (telemetry.Collector.SetMeta).
	FP string
	// Worker attributes the event to a search worker: 0 is the merger /
	// serial goroutine, 1..Parallelism are pool workers.
	Worker int
	// Start and End are monotonic offsets from EvSearchStart. Span events
	// have Start < End; instants have Start == End.
	Start, End time.Duration
	// Cycles is the measured (or replayed) training cycle count where the
	// Kind defines one.
	Cycles uint64
	// Skip is the structured verdict behind EvSkip/EvCancel.
	Skip *CandidateSkip
	// Dup marks an EvEnumerated configuration whose fingerprint coincides
	// with an earlier candidate's.
	Dup bool
	// Replayed marks verdicts restored from the checkpoint journal.
	Replayed bool
	// Pred and PredRank carry the static cost-model prediction where known.
	Pred     uint64
	PredRank int
	// N is a kind-specific count (EvRank: pruned candidates; EvSearchEnd:
	// journal-replayed measurements).
	N int
	// Mode is the flow on EvSearchStart/EvSearchEnd: "autotune", "search",
	// or "static".
	Mode string
	// Err is the raw failure behind EvTrain/EvReplay (the merger's
	// canonical verdict arrives separately on EvSkip).
	Err error
}

// Observer receives search-lifecycle events. Implementations must be safe
// for concurrent use when Options.Parallelism > 1 (worker spans are emitted
// from pool goroutines) and must not block: emission is synchronous on the
// search's critical path. internal/obs provides the standard implementations
// (Collector, Progress, Tee).
type Observer interface {
	Observe(SearchEvent)
}

// obsWriter is the resolved emission state: the installed observer plus the
// monotonic anchor every span offset is measured from. A nil *obsWriter is
// the disabled path — every method is safe and free on nil, so emission
// sites cost one pointer test when no observer is installed.
type obsWriter struct {
	obs    Observer
	anchor time.Time
}

// newObsWriter anchors the stream's clock; returns nil when obs is nil.
func newObsWriter(obs Observer) *obsWriter {
	if obs == nil {
		return nil
	}
	return &obsWriter{obs: obs, anchor: time.Now()}
}

// now is the current monotonic offset (0 when disabled — never call time.Now
// on the nil path).
func (o *obsWriter) now() time.Duration {
	if o == nil {
		return 0
	}
	return time.Since(o.anchor)
}

// emit delivers one event (no-op when disabled).
func (o *obsWriter) emit(e SearchEvent) {
	if o == nil {
		return
	}
	o.obs.Observe(e)
}

// instant emits a zero-width event stamped at the current offset.
func (o *obsWriter) instant(e SearchEvent) {
	if o == nil {
		return
	}
	t := o.now()
	e.Start, e.End = t, t
	o.obs.Observe(e)
}

// span emits a completed span from start to now.
func (o *obsWriter) span(e SearchEvent, start time.Duration) {
	if o == nil {
		return
	}
	e.Start, e.End = start, o.now()
	o.obs.Observe(e)
}

// finalEvent classifies a merged candidate verdict into its event kind.
func finalEvent(t *candTask, f *candFinal) SearchEvent {
	e := SearchEvent{Seq: t.seq, Phase: t.phase, Subset: t.subset, FP: t.fp,
		Pred: t.predCycles, PredRank: t.predRank}
	if !t.predOK {
		e.Pred = 0
	}
	switch {
	case f.dup:
		e.Kind = EvDeduped
	case f.skip != nil && f.skip.Reason == SkipPruned:
		e.Kind = EvPruned
	case f.skip != nil && f.skip.Reason == SkipCancelled:
		e.Kind = EvCancel
		e.Skip = f.skip
	case f.skip != nil:
		e.Kind = EvSkip
		e.Skip = f.skip
	default:
		e.Kind = EvAccept
		e.Cycles = f.cycles
	}
	e.Replayed = f.replayed
	return e
}
