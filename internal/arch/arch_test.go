package arch

import "testing"

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	c := DefaultConfig(4)
	if c.Cores != 4 || c.ThreadsPerCore != 4 || c.IssueWidth != 6 {
		t.Errorf("core shape: %+v", c)
	}
	if c.MaxQueues != 16 || c.QueueDepth != 24 || c.MaxRAs != 4 {
		t.Errorf("Pipette parameters: %+v", c)
	}
	if c.Mem.L1.SizeBytes != 32<<10 || c.Mem.L2.SizeBytes != 256<<10 ||
		c.Mem.L3.SizeBytes != 2<<20 || c.Mem.MemMinLatency != 120 ||
		c.Mem.MemControllers != 2 {
		t.Errorf("memory system: %+v", c.Mem)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Cores: 0, ThreadsPerCore: 4, IssueWidth: 6, FetchWidth: 6, WindowSize: 128, QueueDepth: 24},
		{Cores: 1, ThreadsPerCore: 0, IssueWidth: 6, FetchWidth: 6, WindowSize: 128, QueueDepth: 24},
		{Cores: 1, ThreadsPerCore: 4, IssueWidth: 0, FetchWidth: 6, WindowSize: 128, QueueDepth: 24},
		{Cores: 1, ThreadsPerCore: 4, IssueWidth: 6, FetchWidth: 6, WindowSize: 0, QueueDepth: 24},
		{Cores: 1, ThreadsPerCore: 4, IssueWidth: 6, FetchWidth: 6, WindowSize: 128, QueueDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestControlCodesDisjoint(t *testing.T) {
	if CtrlEnd <= CtrlNext || CtrlUser <= CtrlEnd {
		t.Error("control code ranges must be ordered: Next < End < User")
	}
}

func TestRASpecString(t *testing.T) {
	s := RASpec{Name: "x", Mode: RAScan, Slot: 1, InQ: 2, OutQ: 3, EmitNext: true}
	if got := s.String(); got == "" || s.Mode.String() != "SCAN" {
		t.Errorf("spec string: %q", got)
	}
	if RAIndirect.String() != "INDIRECT" {
		t.Error("indirect mode name")
	}
}

func TestThreadIDString(t *testing.T) {
	if (ThreadID{Core: 2, Thread: 1}).String() != "c2.t1" {
		t.Error("thread id format")
	}
}
