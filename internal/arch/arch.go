// Package arch describes the Pipette-style machine that Phloem targets: SMT
// out-of-order cores extended with architecturally visible queues, reference
// accelerators (RAs), and control values with hardware handlers (Sec. III of
// the paper). The package holds configuration and the structural description
// of a machine instance; the cycle-level behaviour lives in internal/sim.
package arch

import (
	"fmt"

	"phloem/internal/cache"
)

// Config holds the machine parameters. Defaults follow Table III.
type Config struct {
	// Cores is the number of OOO cores (1 or 4 in the paper).
	Cores int
	// ThreadsPerCore is the SMT width (4 in the paper).
	ThreadsPerCore int
	// IssueWidth is micro-ops issued per cycle per core (6-wide, Skylake-like).
	IssueWidth int
	// FetchWidth is instructions fetched into the window per cycle per thread.
	FetchWidth int
	// WindowSize is the per-thread reorder window (instructions in flight).
	WindowSize int
	// MaxQueues is the number of architecturally visible queues (16).
	MaxQueues int
	// QueueDepth is the capacity of each queue in elements (up to 24).
	QueueDepth int
	// MaxRAs is the number of reference accelerators per core (4).
	MaxRAs int
	// RAOutstanding is the number of in-flight memory requests per RA.
	RAOutstanding int
	// MSHRs bounds a core's outstanding L1 misses (fill buffers); the SMT
	// threads share them, while reference accelerators have their own
	// request slots — a key reason RA offloading wins.
	MSHRs int
	// MispredictPenalty is the fetch-redirect cost of a branch mispredict.
	MispredictPenalty uint64
	// HandlerRedirectPenalty is the fetch-redirect cost when a control-value
	// handler fires (cheap: the core jumps without any squash of good work).
	HandlerRedirectPenalty uint64
	// CycleBudget aborts the timing phase once the simulated clock passes
	// this many cycles (0 = unlimited). The run fails with a structured
	// error carrying partial statistics, so searches can bound pathological
	// candidates instead of hanging on them.
	CycleBudget uint64
	// IdleLimit is how many cycles the timing engine tolerates without any
	// progress before declaring a deadlock (0 = the default of ~1M).
	// Deadlock tests lower it to fail fast.
	IdleLimit uint64
	// TelemetryInterval is the sampling period, in cycles, for interval
	// time-series when a telemetry probe is installed (0 = no periodic
	// samples). It has no effect on timing results, only on observation.
	TelemetryInterval uint64
	// Mem is the memory hierarchy configuration.
	Mem cache.HierarchyConfig
}

// DefaultConfig returns the Table III configuration for the given core count.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:                  cores,
		ThreadsPerCore:         4,
		IssueWidth:             6,
		FetchWidth:             6,
		WindowSize:             128,
		MaxQueues:              16,
		QueueDepth:             24,
		MaxRAs:                 4,
		RAOutstanding:          16,
		MSHRs:                  10,
		MispredictPenalty:      14,
		HandlerRedirectPenalty: 2,
		Mem:                    cache.DefaultConfig(cores),
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("arch: cores must be >= 1, got %d", c.Cores)
	case c.ThreadsPerCore < 1:
		return fmt.Errorf("arch: threads/core must be >= 1, got %d", c.ThreadsPerCore)
	case c.IssueWidth < 1 || c.FetchWidth < 1:
		return fmt.Errorf("arch: issue/fetch width must be >= 1")
	case c.WindowSize < 1:
		return fmt.Errorf("arch: window size must be >= 1")
	case c.QueueDepth < 1:
		return fmt.Errorf("arch: queue depth must be >= 1")
	}
	return nil
}

// Control-value codes used by generated and hand-written pipelines. Codes are
// in-band 64-bit payloads of control-tagged queue entries; these well-known
// values cover the protocols the compiler emits. Codes at or above CtrlUser
// are available to hand-written pipelines.
const (
	// CtrlNext ends one group of values (e.g., one vertex's edge list, one
	// inner-loop instance). CtrlNext+k ends the group at nesting depth k
	// (CtrlNext itself is the innermost spanning level).
	CtrlNext int64 = 0
	// CtrlNextOuter ends a group one level further out.
	CtrlNextOuter int64 = 1
	// CtrlEnd terminates the whole stream: the consumer stage should finish.
	CtrlEnd int64 = 16
	// CtrlPhase separates program phases flowing through a queue.
	CtrlPhase int64 = 17
	// CtrlUser is the first code free for application-specific protocols.
	CtrlUser int64 = 32
)

// RAMode selects how a reference accelerator interprets its input queue
// (Table I: setup_reference_accelerator).
type RAMode int

const (
	// RAIndirect treats each input value as an index into the base array.
	RAIndirect RAMode = iota
	// RAScan treats pairs of input values as [start, end) index ranges and
	// streams the elements of the base array in that range.
	RAScan
)

func (m RAMode) String() string {
	if m == RAIndirect {
		return "INDIRECT"
	}
	return "SCAN"
}

// RASpec configures one reference accelerator. RAs interpose on the queue
// interface: they consume from InQ and produce to OutQ. Chaining RAs is
// expressed by making one RA's OutQ another RA's InQ.
type RASpec struct {
	// Name is a human-readable identifier.
	Name string
	// Mode is INDIRECT or SCAN.
	Mode RAMode
	// Slot is the array slot of the base array.
	Slot int
	// InQ and OutQ are the input and output queue ids.
	InQ, OutQ int
	// EmitNext, for SCAN mode, appends a control value with code NextCode
	// after each scanned range. Inter-stage DCE (pass 6) turns this off
	// when no downstream consumer needs group boundaries.
	EmitNext bool
	// NextCode is the control code emitted when EmitNext is set.
	NextCode int64
	// Core is the core whose cache port the RA uses.
	Core int
}

func (r RASpec) String() string {
	s := fmt.Sprintf("RA %s: %s slot=%d q%d->q%d", r.Name, r.Mode, r.Slot, r.InQ, r.OutQ)
	if r.EmitNext {
		s += " +next"
	}
	return s
}

// QueueSpec describes one architectural queue and its endpoints, used for
// pipeline validation (each queue must have exactly one consumer; producers
// may be several threads or an RA).
type QueueSpec struct {
	Name  string
	Depth int // 0 means the machine default
	// DepthByPass marks Depth as assigned by a compiler pass rather than a
	// user override. The verifier reports pass-assigned undersizing under a
	// different rule (W2) than user-set depths (W1).
	DepthByPass bool
}

// Capacity resolves the queue's bounded capacity for an executor: the
// author- or pass-assigned Depth when positive, otherwise the machine
// default. Both the timing simulator and the native backend size their
// buffers through this, so a commopt-assigned DepthByPass capacity is
// honored identically by every backend.
func (q QueueSpec) Capacity(defaultDepth int) int {
	if q.Depth > 0 {
		return q.Depth
	}
	return defaultDepth
}

// FanOut declares a hardware multicast: every data value enqueued to Src is
// also delivered to each queue in Dst, in the same order. Control-tagged
// entries are not duplicated — Dst queues carry a pure data stream. The
// commopt pass emits these to replace duplicate producer-side sends of the
// same value stream with a single send.
type FanOut struct {
	Src int
	Dst []int
}

func (f FanOut) String() string {
	s := fmt.Sprintf("fanout q%d ->", f.Src)
	for _, d := range f.Dst {
		s += fmt.Sprintf(" q%d", d)
	}
	return s
}

// ThreadID identifies one hardware thread.
type ThreadID struct {
	Core   int
	Thread int
}

func (t ThreadID) String() string { return fmt.Sprintf("c%d.t%d", t.Core, t.Thread) }
