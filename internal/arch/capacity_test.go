package arch

import "testing"

func TestQueueSpecCapacity(t *testing.T) {
	cases := []struct {
		spec QueueSpec
		def  int
		want int
	}{
		{QueueSpec{Name: "default"}, 24, 24},
		{QueueSpec{Name: "author", Depth: 8}, 24, 8},
		{QueueSpec{Name: "pass", Depth: 3, DepthByPass: true}, 24, 3},
	}
	for _, c := range cases {
		if got := c.spec.Capacity(c.def); got != c.want {
			t.Errorf("%s: Capacity(%d) = %d, want %d", c.spec.Name, c.def, got, c.want)
		}
	}
}
