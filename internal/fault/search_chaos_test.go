package fault_test

// Search-layer chaos: under seeded worker panics, verifier-rejected
// sabotage, and mid-flight cancellation, the autotune search must always
// terminate with a usable pipeline, classify every lost candidate on
// Result.Skips with a structured reason, and stay byte-identical across
// Options.Parallelism for plans without a cancellation component.

import (
	"fmt"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/fault"
	"phloem/internal/graph"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func bfsTrain(g *graph.CSR) core.TrainFunc {
	return func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
		inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
		if err != nil {
			return 0, err
		}
		b.Apply(inst.Machine)
		st, err := inst.Run()
		if err != nil {
			return 0, err
		}
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}
}

// renderSearch flattens everything deterministic about a Result (Replayed
// and RankMillis are execution metadata and excluded by contract).
func renderSearch(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "best=%q stages=%d cycles=%d searched=%d deduped=%d enum=%d cancelled=%v\n",
		res.Pipeline.Description, res.Pipeline.NumStages(), res.TrainCycles,
		res.Searched, res.Deduped, res.Enumerated, res.Cancelled)
	for _, s := range res.Skips {
		fmt.Fprintf(&b, "skip %s\n", s)
	}
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "point stages=%d cycles=%d subset=%v skip=%v\n",
			pt.TotalStages, pt.Cycles, pt.Subset, pt.Skip)
	}
	return b.String()
}

func searchChaosRun(t *testing.T, plan fault.SearchPlan, parallelism int, train *graph.CSR) *core.Result {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = []core.TrainFunc{bfsTrain(train)}
	opt.Parallelism = parallelism
	cancel := plan.Arm(&opt)
	defer cancel()
	res, err := core.CompileSource(workloads.BFSSource, opt)
	if err != nil {
		t.Fatalf("%s: search did not survive: %v", plan, err)
	}
	return res
}

func TestSearchChaosTerminatesAndClassifies(t *testing.T) {
	train := graph.Grid("t", 20, 20, 7)
	plans := append(fault.NamedSearch(), fault.NewSearch(1), fault.NewSearch(2))
	for _, plan := range plans {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			t.Parallel()
			res := searchChaosRun(t, plan, 4, train)
			if res.Pipeline == nil {
				t.Fatal("no pipeline returned")
			}
			// The winner must actually work: the (unwrapped) trainer verifies
			// results against the Go reference.
			if _, err := bfsTrain(train)(res.Pipeline, core.Budget{}); err != nil {
				t.Errorf("winning pipeline fails verification: %v", err)
			}
			// Every loss is classified with a structured reason and cause.
			panics, rejects := 0, 0
			for _, s := range res.Skips {
				if s.Err == nil {
					t.Errorf("skip %v has no cause", s)
				}
				switch s.Reason {
				case core.SkipPanic:
					panics++
				case core.SkipVerifier:
					rejects++
				case core.SkipBuild, core.SkipDeadlock, core.SkipBudget, core.SkipTrap,
					core.SkipError, core.SkipPruned, core.SkipCancelled:
				default:
					t.Errorf("unclassified skip reason %d: %v", s.Reason, s)
				}
			}
			// Accounting: every enumerated candidate is measured, deduplicated,
			// or recorded as a skip (measured-then-failed candidates appear in
			// both Searched and Skips, hence >=).
			if got := res.Searched - 1 + res.Deduped + len(res.Skips); got < res.Enumerated {
				t.Errorf("only %d of %d enumerated candidates accounted for", got, res.Enumerated)
			}
			if plan.PanicOneIn > 0 && panics == 0 {
				t.Errorf("panic plan injected no SkipPanic; skips: %v", res.Skips)
			}
			if plan.SabotageOneIn > 0 && rejects == 0 {
				t.Errorf("sabotage plan injected no SkipVerifier; skips: %v", res.Skips)
			}
			if plan.Name == "search-cancel" && !res.Cancelled {
				t.Error("cancel plan did not mark the result cancelled")
			}
		})
	}
}

func TestSearchChaosDeterministicAcrossParallelism(t *testing.T) {
	// Plans without a cancellation component must be byte-identical at every
	// Parallelism (cancellation points under parallel workers are genuinely
	// scheduling-dependent, so cancel plans are exempt — they are covered by
	// the termination/classification sweep above).
	train := graph.Grid("t", 20, 20, 7)
	for _, plan := range fault.NamedSearch() {
		if plan.CancelAfter > 0 {
			continue
		}
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			t.Parallel()
			want := renderSearch(searchChaosRun(t, plan, 1, train))
			if again := renderSearch(searchChaosRun(t, plan, 1, train)); again != want {
				t.Fatalf("serial run not reproducible:\n--- first\n%s--- second\n%s", want, again)
			}
			for _, par := range []int{4, 0} {
				if got := renderSearch(searchChaosRun(t, plan, par, train)); got != want {
					t.Errorf("parallelism %d differs from serial:\n--- serial\n%s--- parallel\n%s",
						par, want, got)
				}
			}
		})
	}
}

func TestSearchPlanDeterminism(t *testing.T) {
	if fault.NewSearch(42) != fault.NewSearch(42) {
		t.Error("NewSearch(42) not deterministic")
	}
	if fault.NewSearch(1) == fault.NewSearch(2) {
		t.Error("different seeds produced identical search plans")
	}
	for _, p := range fault.NamedSearch() {
		if p.Desc == "" {
			t.Errorf("plan %s has no description", p.Name)
		}
		got, err := fault.SearchByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("SearchByName(%q) = %v, %v", p.Name, got, err)
		}
	}
	if p, err := fault.SearchByName("search-seed-7"); err != nil || p != fault.NewSearch(7) {
		t.Errorf("SearchByName(search-seed-7) = %v, %v", p, err)
	}
	if _, err := fault.SearchByName("nope"); err == nil {
		t.Error("SearchByName(nope) should fail")
	}
	for _, p := range fault.Named() {
		if p.Desc == "" {
			t.Errorf("timing plan %s has no description", p.Name)
		}
	}
}
