package fault

// Search-layer fault plans: where Plan perturbs the *simulated machine's*
// timing, SearchPlan attacks the autotune *search itself* — seeded panics
// inside candidate builds, verifier-rejected pipeline sabotage, and
// mid-flight cancellation — to test that the candidate search always
// terminates, classifies every lost candidate on Result.Skips, and stays
// deterministic under any Options.Parallelism.
//
// Injection sites are keyed by a hash of the candidate pipeline's structural
// description, not by call order: with Parallelism > 1 the PostBuild hook
// runs concurrently on workers in nondeterministic order, so an order-based
// counter would inject into different candidates run to run. Hashing the
// candidate identity makes the afflicted set a pure function of (plan,
// candidate), independent of scheduling.

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sync/atomic"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
)

// SearchPlan describes one deterministic search-layer fault scenario.
// Zero-valued fields are inactive; the zero SearchPlan injects nothing.
type SearchPlan struct {
	// Name identifies the plan in test output and CLI flags.
	Name string
	// Desc is a one-line human description for plan listings.
	Desc string
	// Seed keys the candidate hash selecting which pipelines are hit.
	Seed uint64

	// PanicOneIn panics inside the PostBuild hook for roughly 1-in-N
	// candidates (0: never). The search must absorb the panic as a
	// SkipPanic record.
	PanicOneIn int
	// SabotageOneIn corrupts roughly 1-in-N candidate pipelines with a
	// protocol violation the static verifier rejects (0: never), producing
	// SkipVerifier records.
	SabotageOneIn int
	// CancelAfter cancels the search context once this many training
	// measurements have completed (0: never) — a mid-flight interruption.
	CancelAfter int32
}

func (p SearchPlan) String() string {
	s := p.Name
	if s == "" {
		s = "search-plan"
	}
	if p.PanicOneIn > 0 {
		s += fmt.Sprintf(" panic=1/%d", p.PanicOneIn)
	}
	if p.SabotageOneIn > 0 {
		s += fmt.Sprintf(" sabotage=1/%d", p.SabotageOneIn)
	}
	if p.CancelAfter > 0 {
		s += fmt.Sprintf(" cancel@%d", p.CancelAfter)
	}
	return s
}

// candHash deterministically maps a candidate pipeline's structural identity
// to a pseudo-random value under the plan seed.
func candHash(key string, seed uint64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	s := h.Sum64() ^ seed
	return splitmix64(&s)
}

// sabotage inserts an enq_ctrl with an application code no consumer
// dispatches next to the first control enqueue — the same rule-C2 violation
// the verifier tests use. Single-stage pipelines with no control traffic
// are left intact (nothing to sabotage).
func sabotage(pl *pipeline.Pipeline) {
	for _, st := range pl.Stages {
		for i, s := range st.Body {
			if ec, ok := s.(*ir.EnqCtrl); ok {
				rogue := &ir.EnqCtrl{Q: ec.Q, Code: arch.CtrlUser + 7}
				st.Body = append(st.Body[:i:i], append([]ir.Stmt{rogue}, st.Body[i:]...)...)
				return
			}
		}
	}
}

// Arm installs the plan on a compilation: PanicOneIn/SabotageOneIn wrap
// Options.PostBuild (preserving any existing hook, which runs first), and
// CancelAfter wraps every Options.Training func and layers a cancellable
// context over Options.Ctx. The returned cancel func releases the context
// and must be called when the compilation finishes; it is a no-op for plans
// without CancelAfter.
func (p SearchPlan) Arm(opt *core.Options) context.CancelFunc {
	if p.PanicOneIn > 0 || p.SabotageOneIn > 0 {
		prev := opt.PostBuild
		plan := p
		opt.PostBuild = func(pl *pipeline.Pipeline) {
			if prev != nil {
				prev(pl)
			}
			key := pl.Describe()
			if plan.PanicOneIn > 0 && candHash(key, plan.Seed)%uint64(plan.PanicOneIn) == 0 {
				panic(fmt.Sprintf("fault: injected build panic (plan %s)", plan.Name))
			}
			if plan.SabotageOneIn > 0 && candHash(key, plan.Seed^0x5eedbeef)%uint64(plan.SabotageOneIn) == 0 {
				sabotage(pl)
			}
		}
	}
	cancel := context.CancelFunc(func() {})
	if p.CancelAfter > 0 {
		base := opt.Ctx
		if base == nil {
			base = context.Background()
		}
		ctx, c := context.WithCancel(base)
		opt.Ctx, cancel = ctx, c
		var done int32
		n := p.CancelAfter
		for i, train := range opt.Training {
			train := train
			opt.Training[i] = func(pl *pipeline.Pipeline, b core.Budget) (uint64, error) {
				cycles, err := train(pl, b)
				if atomic.AddInt32(&done, 1) == n {
					c()
				}
				return cycles, err
			}
		}
	}
	return cancel
}

// NamedSearch returns the hand-written search-layer plans, each stressing
// one failure class plus a combined storm.
func NamedSearch() []SearchPlan {
	return []SearchPlan{
		{Name: "search-panic", Desc: "panic inside roughly every 3rd candidate build",
			Seed: 11, PanicOneIn: 3},
		{Name: "search-sabotage", Desc: "corrupt roughly every 3rd candidate so the verifier rejects it",
			Seed: 12, SabotageOneIn: 3},
		{Name: "search-cancel", Desc: "cancel the search after 3 completed measurements",
			CancelAfter: 3},
		{Name: "search-storm", Desc: "panics, sabotage, and a mid-flight cancel together",
			Seed: 13, PanicOneIn: 4, SabotageOneIn: 4, CancelAfter: 6},
	}
}

// NewSearch derives a pseudo-random search plan from a seed, reproducible
// from the seed alone.
func NewSearch(seed uint64) SearchPlan {
	s := seed
	next := func() uint64 { return splitmix64(&s) }
	return SearchPlan{
		Name:          fmt.Sprintf("search-seed-%d", seed),
		Desc:          fmt.Sprintf("pseudo-random search-fault mix expanded from seed %d", seed),
		Seed:          next(),
		PanicOneIn:    2 + int(next()%4),
		SabotageOneIn: 2 + int(next()%4),
		CancelAfter:   3 + int32(next()%8),
	}
}

// SearchByName resolves a named search plan, or a "search-seed-N" plan for
// any N.
func SearchByName(name string) (SearchPlan, error) {
	for _, p := range NamedSearch() {
		if p.Name == name {
			return p, nil
		}
	}
	var seed uint64
	if _, err := fmt.Sscanf(name, "search-seed-%d", &seed); err == nil {
		return NewSearch(seed), nil
	}
	var names []string
	for _, p := range NamedSearch() {
		names = append(names, p.Name)
	}
	return SearchPlan{}, fmt.Errorf("fault: unknown search plan %q (named plans: %v, or search-seed-N)", name, names)
}
