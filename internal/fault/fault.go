// Package fault provides seeded, deterministic timing-fault plans for chaos
// testing Phloem pipelines. A plan perturbs only timing-visible parameters —
// queue capacities, RA outstanding-request windows, memory latencies,
// control-value delivery, SMT thread scheduling — through the simulator's
// TimingFaults hooks, which the functional phase never consults. The
// invariant under test: any fault plan leaves functional results
// bit-identical to the Go reference, because the queue and control-value
// protocols must tolerate adversarial timing.
package fault

import (
	"fmt"

	"phloem/internal/sim"
)

// Plan describes one deterministic fault scenario. Zero-valued fields are
// inactive; the zero Plan injects nothing.
type Plan struct {
	// Name identifies the plan in test output and CLI flags.
	Name string
	// Desc is a one-line human description for plan listings
	// (`phloemsim -faults list`); it does not affect injection.
	Desc string

	// QueueDepthCap caps every architectural queue's capacity (it can only
	// shrink the configured depth, never grow it).
	QueueDepthCap int
	// RAWindowCap caps every RA's outstanding-request window.
	RAWindowCap int

	// MemSpikePeriod/MemSpikeLatency add MemSpikeLatency extra cycles to
	// every MemSpikePeriod-th memory access (core and RA loads share the
	// access counter).
	MemSpikePeriod  uint64
	MemSpikeLatency uint64

	// CtrlDelayPeriod/CtrlDelayCycles delay every CtrlDelayPeriod-th
	// control value enqueued to each queue by CtrlDelayCycles before it
	// becomes visible to the consumer.
	CtrlDelayPeriod uint64
	CtrlDelayCycles uint64

	// StallPeriod/StallCycles bar each SMT thread from issuing for
	// StallCycles out of every StallPeriod cycles, phase-shifted per
	// (core, slot) so stalls hit threads at different times.
	StallPeriod uint64
	StallCycles uint64
}

// active reports whether the plan perturbs anything.
func (p Plan) active() bool {
	return p.QueueDepthCap > 0 || p.RAWindowCap > 0 || p.MemSpikePeriod > 0 ||
		p.CtrlDelayPeriod > 0 || p.StallPeriod > 0
}

func (p Plan) String() string {
	s := p.Name
	if s == "" {
		s = "plan"
	}
	if p.QueueDepthCap > 0 {
		s += fmt.Sprintf(" qcap=%d", p.QueueDepthCap)
	}
	if p.RAWindowCap > 0 {
		s += fmt.Sprintf(" rawin=%d", p.RAWindowCap)
	}
	if p.MemSpikePeriod > 0 {
		s += fmt.Sprintf(" mem=+%d/%d", p.MemSpikeLatency, p.MemSpikePeriod)
	}
	if p.CtrlDelayPeriod > 0 {
		s += fmt.Sprintf(" ctrl=+%d/%d", p.CtrlDelayCycles, p.CtrlDelayPeriod)
	}
	if p.StallPeriod > 0 {
		s += fmt.Sprintf(" stall=%d/%d", p.StallCycles, p.StallPeriod)
	}
	return s
}

// Faults builds the simulator hook set for the plan (nil for an inactive
// plan). Every hook is a pure function of its arguments, so replays are
// deterministic.
func (p Plan) Faults() *sim.TimingFaults {
	if !p.active() {
		return nil
	}
	f := &sim.TimingFaults{}
	if c := p.QueueDepthCap; c > 0 {
		f.QueueDepth = func(q, d int) int { return c }
	}
	if c := p.RAWindowCap; c > 0 {
		f.RAOutstanding = func(ra, n int) int { return c }
	}
	if per, lat := p.MemSpikePeriod, p.MemSpikeLatency; per > 0 {
		f.MemLatency = func(n uint64) uint64 {
			if n%per == 0 {
				return lat
			}
			return 0
		}
	}
	if per, d := p.CtrlDelayPeriod, p.CtrlDelayCycles; per > 0 {
		f.CtrlDelay = func(q int, n uint64) uint64 {
			// Offset by the queue id so queues are not delayed in lockstep.
			if (n+uint64(q))%per == 0 {
				return d
			}
			return 0
		}
	}
	if per, dur := p.StallPeriod, p.StallCycles; per > 0 {
		f.ThreadStall = func(core, slot int, now uint64) bool {
			phase := (now + uint64(core)*13 + uint64(slot)*41) % per
			return phase < dur
		}
	}
	return f
}

// Apply installs the plan's hooks on a machine (clearing them for an
// inactive plan).
func (p Plan) Apply(m *sim.Machine) {
	m.Faults = p.Faults()
}

// Named returns the hand-written plans, each stressing one perturbation
// class hard, plus a kitchen-sink plan combining moderate doses of all.
func Named() []Plan {
	return []Plan{
		{Name: "min-queues", Desc: "cap every architectural queue at depth 1",
			QueueDepthCap: 1},
		{Name: "narrow-ra", Desc: "cap every RA outstanding-request window at 1",
			RAWindowCap: 1},
		{Name: "mem-spikes", Desc: "add 150 latency cycles to every 7th memory access",
			MemSpikePeriod: 7, MemSpikeLatency: 150},
		{Name: "ctrl-delay", Desc: "delay every 2nd control value by 24 cycles",
			CtrlDelayPeriod: 2, CtrlDelayCycles: 24},
		{Name: "smt-stall", Desc: "stall each SMT thread 11 of every 37 cycles, phase-shifted",
			StallPeriod: 37, StallCycles: 11},
		{Name: "kitchen-sink", Desc: "moderate doses of all five perturbation classes at once",
			QueueDepthCap: 2, RAWindowCap: 2,
			MemSpikePeriod: 5, MemSpikeLatency: 90,
			CtrlDelayPeriod: 3, CtrlDelayCycles: 9,
			StallPeriod: 29, StallCycles: 7},
	}
}

// New derives a pseudo-random plan from a seed. The same seed always yields
// the same plan (splitmix64 expansion — no global RNG state), so failures
// reproduce from the seed alone.
func New(seed uint64) Plan {
	s := seed
	next := func() uint64 { return splitmix64(&s) }
	return Plan{
		Name:            fmt.Sprintf("seed-%d", seed),
		Desc:            fmt.Sprintf("pseudo-random perturbation mix expanded from seed %d", seed),
		QueueDepthCap:   1 + int(next()%6),
		RAWindowCap:     1 + int(next()%4),
		MemSpikePeriod:  3 + next()%13,
		MemSpikeLatency: 20 + next()%200,
		CtrlDelayPeriod: 1 + next()%7,
		CtrlDelayCycles: 1 + next()%40,
		StallPeriod:     16 + next()%64,
		StallCycles:     1 + next()%15,
	}
}

// Suite returns the named plans followed by n seeded plans (seeds 1..n).
func Suite(n int) []Plan {
	out := Named()
	for i := 1; i <= n; i++ {
		out = append(out, New(uint64(i)))
	}
	return out
}

// ByName resolves a named plan, or a "seed-N" plan for any N.
func ByName(name string) (Plan, error) {
	for _, p := range Named() {
		if p.Name == name {
			return p, nil
		}
	}
	var seed uint64
	if _, err := fmt.Sscanf(name, "seed-%d", &seed); err == nil {
		return New(seed), nil
	}
	return Plan{}, fmt.Errorf("fault: unknown plan %q (named plans: %v, or seed-N)", name, planNames())
}

func planNames() []string {
	var out []string
	for _, p := range Named() {
		out = append(out, p.Name)
	}
	return out
}

// splitmix64 is the standard SplitMix64 PRNG step.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
