package fault_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/fault"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

// chaosPlans is the sweep: every named plan plus seeded ones. Under -short
// only a representative subset runs.
func chaosPlans(t *testing.T) []fault.Plan {
	if testing.Short() {
		return append(fault.Named()[:2], fault.New(1))
	}
	return fault.Suite(4)
}

// TestChaosBenchmarks runs every benchmark's compiled pipeline under every
// fault plan on its smallest training input, asserting the invariant that
// timing faults never change functional results (each run must still match
// the Go reference bit-for-bit) and never hang (the simulator's guardrails
// turn hangs into errors, which fail the test).
func TestChaosBenchmarks(t *testing.T) {
	plans := chaosPlans(t)
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := workloads.CompileSerial(bench.SerialSource)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Compile(serial, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			in := bench.Train[0]

			run := func(plan fault.Plan) uint64 {
				inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
				if err != nil {
					t.Fatalf("%s: instantiate: %v", plan, err)
				}
				plan.Apply(inst.Machine)
				st, err := inst.Run()
				if err != nil {
					t.Fatalf("%s: run: %v", plan, err)
				}
				if err := in.Verify(inst); err != nil {
					t.Errorf("%s: results diverge from Go reference: %v", plan, err)
				}
				return st.Cycles
			}

			base := run(fault.Plan{})
			changed := 0
			for _, plan := range plans {
				if c := run(plan); c != base {
					changed++
				}
			}
			if changed == 0 {
				t.Errorf("no fault plan perturbed timing (baseline %d cycles); hooks are dead", base)
			}
		})
	}
}

// TestChaosTaco runs the chaos sweep over a Taco-compiled sparse kernel.
func TestChaosTaco(t *testing.T) {
	k := taco.Kernels()[0] // SpMV
	src, err := taco.Emit(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileSource(src, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.PowerLawRows("chaos", 300, 6, 11)
	const seed = 5
	for _, plan := range chaosPlans(t) {
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), taco.Bindings(k, m, seed))
		if err != nil {
			t.Fatalf("%s: instantiate: %v", plan, err)
		}
		plan.Apply(inst.Machine)
		if _, err := inst.Run(); err != nil {
			t.Fatalf("%s: run: %v", plan, err)
		}
		if err := taco.Verify(k, m, seed, inst); err != nil {
			t.Errorf("%s: results diverge from Go reference: %v", plan, err)
		}
	}
}

// TestPlanDeterminism checks that seeded plans are reproducible and that
// ByName resolves both named and seeded plans.
func TestPlanDeterminism(t *testing.T) {
	if fault.New(42) != fault.New(42) {
		t.Error("New(42) not deterministic")
	}
	if fault.New(1) == fault.New(2) {
		t.Error("different seeds produced identical plans")
	}
	for _, p := range fault.Named() {
		got, err := fault.ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ByName(%q) = %v, %v", p.Name, got, err)
		}
	}
	if p, err := fault.ByName("seed-7"); err != nil || p != fault.New(7) {
		t.Errorf("ByName(seed-7) = %v, %v", p, err)
	}
	if _, err := fault.ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	if fault.New(3).Faults() == nil {
		t.Error("seeded plan has no hooks")
	}
	if (fault.Plan{}).Faults() != nil {
		t.Error("zero plan should have nil hooks")
	}
}
