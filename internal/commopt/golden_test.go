package commopt_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/commopt"
	"phloem/internal/core"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// planReport compiles src with the default flow and renders the commopt
// plan (analysis only; the compiled pipeline is not mutated).
func planReport(t *testing.T, src string) string {
	t.Helper()
	prog, err := workloads.CompileSerial(src)
	if err != nil {
		t.Fatalf("compile serial: %v", err)
	}
	res, err := core.Compile(prog, core.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	plan, err := commopt.Analyze(res.Pipeline, arch.DefaultConfig(1))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return plan.String()
}

// goldenSources returns the kernels covered by golden capacity plans: the
// five benchmark families plus one Taco-emitted kernel — the same corpus
// the cost model's golden reports pin.
func goldenSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, wl := range workloads.Benchmarks(workloads.ScaleTest) {
		out[strings.ToLower(wl.Name)] = wl.SerialSource
	}
	src, err := taco.Emit(taco.SpMV)
	if err != nil {
		t.Fatalf("taco emit: %v", err)
	}
	out["taco_spmv"] = src
	return out
}

func TestGoldenPlans(t *testing.T) {
	for name, src := range goldenSources(t) {
		t.Run(name, func(t *testing.T) {
			got := planReport(t, src)
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestPlanDeterminism re-analyzes the same pipelines repeatedly and demands
// byte-identical plans.
func TestPlanDeterminism(t *testing.T) {
	for name, src := range goldenSources(t) {
		first := planReport(t, src)
		for i := 0; i < 3; i++ {
			if got := planReport(t, src); got != first {
				t.Fatalf("%s: plan changed between runs:\n%s\nvs\n%s", name, first, got)
			}
		}
	}
}

// TestAnalyzeDoesNotMutate pins Analyze's contract: the pipeline handed in
// is left untouched (capacities unassigned, no fan-outs), even though the
// returned plan reflects the full optimization.
func TestAnalyzeDoesNotMutate(t *testing.T) {
	for _, wl := range workloads.Benchmarks(workloads.ScaleTest) {
		prog, err := workloads.CompileSerial(wl.SerialSource)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compile(prog, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		before := res.Pipeline.Describe()
		if _, err := commopt.Analyze(res.Pipeline, arch.DefaultConfig(1)); err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if after := res.Pipeline.Describe(); after != before {
			t.Errorf("%s: Analyze mutated the pipeline:\n--- before ---\n%s--- after ---\n%s",
				wl.Name, before, after)
		}
		for q, spec := range res.Pipeline.Queues {
			if spec.DepthByPass {
				t.Errorf("%s: Analyze marked q%d DepthByPass", wl.Name, q)
			}
		}
		if len(res.Pipeline.FanOuts) != 0 {
			t.Errorf("%s: Analyze appended %d fan-outs", wl.Name, len(res.Pipeline.FanOuts))
		}
	}
}
