package commopt_test

// FuzzCommOpt feeds arbitrary byte strings through the full compile flow
// and, whenever a pipeline builds, through the queue-communication
// optimization pass. The invariants under fuzzing: Apply never panics; every
// capacity it leaves behind is in [1, QueueDepth]; the plan passes its own
// deadlock-safety check (Plan.Check — the same premises verify's Q4 rule
// enforces); a user-set depth is never overridden; and the rendered plan is
// byte-deterministic. Seeds are small kernels that exercise single-queue,
// gather, multi-phase, and multicast-shaped pipelines.
//
// Runs as a plain unit test over the seed corpus in `go test`; explore with
//
//	go test ./internal/commopt -fuzz FuzzCommOpt -fuzztime 30s

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/commopt"
	"phloem/internal/core"
)

func FuzzCommOpt(f *testing.F) {
	seeds := []string{
		"",
		"void k() {}",
		"void k(int* restrict a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = i; } }",
		`#pragma phloem
void k(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = a[i];
    if (j > 0) { b[j] = b[j] + 1; }
  }
}`,
		`#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}`,
		`#pragma phloem
void fan(int* restrict a, int* restrict b, int* restrict c, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int v = a[i];
    b[i] = v * 2;
    c[i] = v * 2;
  }
}`,
		`#pragma phloem
void phases(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) { a[i] = a[i] + 1; }
  for (int i = 0; i < n; i = i + 1) { b[a[i]] = i; }
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cfg := arch.DefaultConfig(1)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := core.CompileSource(src, core.Options{Mode: core.Static})
		if err != nil {
			// Rejections are the frontend's concern (FuzzParse); the pass
			// only sees pipelines that compiled.
			return
		}
		pl := res.Pipeline
		userDepths := make([]int, len(pl.Queues))
		for q, spec := range pl.Queues {
			userDepths[q] = spec.Depth
		}
		plan, err := commopt.Apply(pl, cfg,
			commopt.Options{Capacities: true, Multicast: true})
		if err != nil {
			t.Fatalf("apply failed on compiled pipeline: %v\nsource:\n%s", err, src)
		}
		if err := plan.Check(cfg); err != nil {
			t.Fatalf("plan fails its own safety check: %v\nsource:\n%s", err, src)
		}
		for q, spec := range pl.Queues {
			d := spec.Depth
			if d == 0 {
				d = cfg.QueueDepth
			}
			if d < 1 || d > cfg.QueueDepth {
				t.Fatalf("q%d capacity %d outside [1, %d]\nsource:\n%s", q, spec.Depth, cfg.QueueDepth, src)
			}
			if userDepths[q] > 0 && spec.Depth != userDepths[q] {
				t.Fatalf("q%d user-set depth %d overridden to %d\nsource:\n%s",
					q, userDepths[q], spec.Depth, src)
			}
			if spec.DepthByPass && userDepths[q] > 0 {
				t.Fatalf("q%d user-set depth relabeled as pass-assigned\nsource:\n%s", q, src)
			}
		}
		first := plan.String()
		res2, err := core.CompileSource(src, core.Options{Mode: core.Static})
		if err != nil {
			t.Fatalf("source compiled once but not twice: %v", err)
		}
		plan2, err := commopt.Apply(res2.Pipeline, cfg,
			commopt.Options{Capacities: true, Multicast: true})
		if err != nil {
			t.Fatalf("apply succeeded once but not twice: %v", err)
		}
		if plan2.String() != first {
			t.Fatalf("plan nondeterministic across identical compiles\n--- first ---\n%s--- second ---\n%s",
				first, plan2.String())
		}
	})
}
