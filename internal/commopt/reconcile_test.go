package commopt_test

// Reconciliation of the static occupancy prediction against the simulator:
// for every benchmark family plus a Taco kernel, the pipeline is optimized
// (capacities + multicast), simulated with the telemetry probe attached,
// and the plan's per-queue predicted maximum occupancy is checked against
// what the machine actually observed. Predicted is an upper bound, so
//
//	observed max <= MaxOcc   and   observed time-weighted mean <= MaxOcc
//
// for every queue, on every family. Functional verification runs on each
// leg, so this also proves the applied rewrites preserve results.

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/commopt"
	"phloem/internal/core"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/taco"
	"phloem/internal/telemetry"
	"phloem/internal/workloads"
)

// reconcile applies commopt to a freshly compiled pipeline, runs it with
// telemetry, verifies the result, and checks every queue's observed
// occupancy against the plan's prediction.
func reconcile(t *testing.T, name string, src string, bind pipeline.Bindings,
	verify func(*pipeline.Instance) error) *commopt.Plan {
	t.Helper()
	prog, err := workloads.CompileSerial(src)
	if err != nil {
		t.Fatalf("%s: compile serial: %v", name, err)
	}
	res, err := core.Compile(prog, core.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	plan, err := commopt.Apply(res.Pipeline, arch.DefaultConfig(1),
		commopt.Options{Capacities: true, Multicast: true})
	if err != nil {
		t.Fatalf("%s: apply: %v", name, err)
	}
	inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), bind)
	if err != nil {
		t.Fatalf("%s: instantiate: %v", name, err)
	}
	col := telemetry.NewCollector()
	inst.Machine.Probe = col
	if _, err := inst.Run(); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	if err := verify(inst); err != nil {
		t.Fatalf("%s: functional verification with commopt applied: %v", name, err)
	}
	series := col.Series()
	obsMax := make([]int, len(plan.Queues))
	obsAvg := make([]float64, len(plan.Queues))
	for _, row := range series.Rows {
		for q, qs := range row.Queues {
			if q >= len(obsMax) {
				continue
			}
			if qs.Max > obsMax[q] {
				obsMax[q] = qs.Max
			}
			if qs.Avg > obsAvg[q] {
				obsAvg[q] = qs.Avg
			}
		}
	}
	for _, q := range plan.Queues {
		if obsMax[q.ID] > q.MaxOcc {
			t.Errorf("%s q%d (%s): observed max occupancy %d exceeds predicted max %d",
				name, q.ID, q.Name, obsMax[q.ID], q.MaxOcc)
		}
		if obsAvg[q.ID] > float64(q.MaxOcc) {
			t.Errorf("%s q%d (%s): observed time-weighted occupancy %.2f exceeds predicted max %d",
				name, q.ID, q.Name, obsAvg[q.ID], q.MaxOcc)
		}
	}
	return plan
}

func TestOccupancyReconciliation(t *testing.T) {
	for _, wl := range workloads.Benchmarks(workloads.ScaleTest) {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			in := wl.Test[len(wl.Test)-1]
			reconcile(t, wl.Name, wl.SerialSource, in.Bind(), in.Verify)
		})
	}
	t.Run("taco_spmv", func(t *testing.T) {
		m := matrix.Scattered("scircuit", 400, 3, 51)
		src, err := taco.Emit(taco.SpMV)
		if err != nil {
			t.Fatal(err)
		}
		reconcile(t, "taco_spmv", src, taco.Bindings(taco.SpMV, m, 7),
			func(inst *pipeline.Instance) error { return taco.Verify(taco.SpMV, m, 7, inst) })
	})
}

// TestMulticastRewrite pins the one multicast site in the suite: SpMM's
// stage2 enqueues the same value to both ka feedback queues back to back,
// and the rewrite must collapse it to a single send behind a fan-out edge
// while preserving functional results (checked by reconcile above; here the
// rewrite's shape is asserted).
func TestMulticastRewrite(t *testing.T) {
	wl, err := workloads.ByName(workloads.ScaleTest, "SpMM")
	if err != nil {
		t.Fatal(err)
	}
	in := wl.Test[len(wl.Test)-1]
	plan := reconcile(t, "SpMM", wl.SerialSource, in.Bind(), in.Verify)
	if len(plan.FanOuts) != 1 {
		t.Fatalf("expected 1 fan-out edge on SpMM, got %d", len(plan.FanOuts))
	}
	f := plan.FanOuts[0]
	if f.Src == f.Dst {
		t.Errorf("fan-out is a self-loop: q%d -> q%d", f.Src, f.Dst)
	}
	if f.Saved <= 0 || f.Tokens <= 0 {
		t.Errorf("fan-out pricing degenerate: %.1f tokens, %.1f saved", f.Tokens, f.Saved)
	}
}
