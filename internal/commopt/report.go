package commopt

import (
	"fmt"
	"strings"
)

// String renders the plan as the before/after capacity and occupancy table
// phloemc/phloemsim print. Output is deterministic: queues in id order,
// fan-outs in apply order.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "commopt plan for %s (default depth %d)\n", p.Pipeline, p.Default)
	fmt.Fprintf(&sb, "  %-3s %-14s %-8s %7s %6s %6s %6s %7s %7s  %s\n",
		"q", "name", "class", "burst", "floor", "before", "after", "maxocc", "estocc", "note")
	for _, q := range p.Queues {
		note := "kept"
		switch {
		case q.UserSet:
			note = "user-set"
		case q.Assigned:
			note = "assigned"
		}
		floor := q.GroupFloor
		if q.SiteFloor > floor {
			floor = q.SiteFloor
		}
		fmt.Fprintf(&sb, "  q%-2d %-14s %-8s %7.1f %6d %6d %6d %7d %7.1f  %s\n",
			q.ID, q.Name, q.Class, q.Burst, floor, q.Before, q.After, q.MaxOcc, q.EstOcc, note)
	}
	for _, f := range p.FanOuts {
		fmt.Fprintf(&sb, "  fanout q%d(%s) -> q%d(%s) in %s: %d sites, %.1f tokens/unit, %.1f cyc/unit saved\n",
			f.Src, f.SrcName, f.Dst, f.DstName, f.Stage, f.Sites, f.Tokens, f.Saved)
	}
	return sb.String()
}

// Summary is a one-line digest for logs: how many queues were assigned and
// how many sends were fanned out.
func (p *Plan) Summary() string {
	assigned := 0
	for _, q := range p.Queues {
		if q.Assigned {
			assigned++
		}
	}
	return fmt.Sprintf("commopt: %d/%d queue capacities assigned, %d fan-out edges", assigned, len(p.Queues), len(p.FanOuts))
}
