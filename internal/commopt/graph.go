package commopt

import (
	"phloem/internal/arch"
	"phloem/internal/costmodel"
	"phloem/internal/ir"
	"phloem/internal/isa"
	"phloem/internal/pipeline"
)

// graph is the entity graph the capacity-cycle check runs over. Entities
// number the software stages first, then the RAs (the same scheme as
// internal/verify). Every queue q contributes forward edges prod(q)->cons(q)
// (tokens flow downstream) and a backpressure edge cons(q)->prod(q) (a full
// queue blocks its producers). Fan-out destinations inherit the source's
// producers: the hardware writes them from the same enqueue.
type graph struct {
	numEnts   int
	producers [][]int // queue -> producing entities
	consumers [][]int // queue -> consuming entities
	// edges[e] lists (to, q, back) triples: the edge exists because of
	// queue q; back marks backpressure edges.
	edges [][]gedge
}

type gedge struct {
	to   int
	q    int
	back bool
}

func buildGraph(pl *pipeline.Pipeline, progs []*isa.Program) *graph {
	g := &graph{
		numEnts:   len(pl.Stages) + len(pl.RAs),
		producers: make([][]int, len(pl.Queues)),
		consumers: make([][]int, len(pl.Queues)),
	}
	for i, prog := range progs {
		if prog == nil {
			continue
		}
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				g.producers[in.Q] = addOnce(g.producers[in.Q], i)
			case isa.OpDeq, isa.OpPeek, isa.OpSetHandler:
				g.consumers[in.Q] = addOnce(g.consumers[in.Q], i)
			}
		}
	}
	for r, ra := range pl.RAs {
		ent := len(pl.Stages) + r
		if ra.InQ >= 0 && ra.InQ < len(pl.Queues) {
			g.consumers[ra.InQ] = addOnce(g.consumers[ra.InQ], ent)
		}
		if ra.OutQ >= 0 && ra.OutQ < len(pl.Queues) {
			g.producers[ra.OutQ] = addOnce(g.producers[ra.OutQ], ent)
		}
	}
	for _, f := range pl.FanOuts {
		if f.Src < 0 || f.Src >= len(pl.Queues) {
			continue
		}
		for _, d := range f.Dst {
			if d < 0 || d >= len(pl.Queues) {
				continue
			}
			for _, p := range g.producers[f.Src] {
				g.producers[d] = addOnce(g.producers[d], p)
			}
		}
	}
	g.edges = make([][]gedge, g.numEnts)
	for q := range pl.Queues {
		for _, p := range g.producers[q] {
			for _, c := range g.consumers[q] {
				g.edges[p] = append(g.edges[p], gedge{to: c, q: q})
				g.edges[c] = append(g.edges[c], gedge{to: p, q: q, back: true})
			}
		}
	}
	return g
}

func addOnce(list []int, e int) []int {
	for _, x := range list {
		if x == e {
			return list
		}
	}
	return append(list, e)
}

// onCycle reports whether queue q's backpressure edge closes a non-trivial
// cycle: some consumer of q reaches some producer of q without using q's own
// backpressure edge. Every queue trivially closes the 2-cycle
// prod -> cons -> prod through its own forward+backpressure pair; that cycle
// cannot deadlock on capacity alone (the consumer's only obligation is to
// drain, which a full queue never prevents), so it is excluded.
func (g *graph) onCycle(q int) bool {
	if len(g.consumers[q]) == 0 || len(g.producers[q]) == 0 {
		return false
	}
	isProd := map[int]bool{}
	for _, p := range g.producers[q] {
		isProd[p] = true
	}
	seen := make([]bool, g.numEnts)
	var work []int
	for _, c := range g.consumers[q] {
		if !seen[c] {
			seen[c] = true
			work = append(work, c)
		}
	}
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ed := range g.edges[e] {
			if ed.back && ed.q == q {
				continue // q's own backpressure edge: the trivial closure
			}
			if isProd[ed.to] {
				return true
			}
			if !seen[ed.to] {
				seen[ed.to] = true
				work = append(work, ed.to)
			}
		}
	}
	return false
}

// rates returns the per-unit service demand of queue q's producer and
// consumer entities (the fastest producer when several feed it, since the
// fastest is what fills the queue). Zero means the endpoint is unknown.
func (g *graph) rates(q int, pl *pipeline.Pipeline, ents map[string]costmodel.EntityCost) (prod, cons float64) {
	name := func(e int) string {
		if e < len(pl.Stages) {
			return "stage " + pl.Stages[e].Name
		}
		return "RA " + pl.RAs[e-len(pl.Stages)].Name
	}
	for _, p := range g.producers[q] {
		if ec, ok := ents[name(p)]; ok && (prod == 0 || ec.Cycles < prod) {
			prod = ec.Cycles
		}
	}
	for _, c := range g.consumers[q] {
		if ec, ok := ents[name(c)]; ok && (cons == 0 || ec.Cycles > cons) {
			cons = ec.Cycles
		}
	}
	return prod, cons
}

// positions assigns each entity its rank along the forward pipeline chain:
// stage i sits at position i; an RA sits half a step after the latest stage
// feeding its input queue (RA relay chains resolve by relaxation). The ranks
// order the chain so backward() can tell feedback queues from forward ones.
func (g *graph) positions(pl *pipeline.Pipeline) []float64 {
	pos := make([]float64, g.numEnts)
	for i := range pl.Stages {
		pos[i] = float64(i)
	}
	for r := range pl.RAs {
		pos[len(pl.Stages)+r] = -1
	}
	for round := 0; round <= len(pl.RAs); round++ {
		for r, ra := range pl.RAs {
			ent := len(pl.Stages) + r
			if ra.InQ < 0 || ra.InQ >= len(pl.Queues) {
				pos[ent] = 0
				continue
			}
			best := -1.0
			for _, p := range g.producers[ra.InQ] {
				if p != ent && pos[p] > best {
					best = pos[p]
				}
			}
			if best >= 0 {
				pos[ent] = best + 0.5
			}
		}
	}
	for r := range pl.RAs {
		if pos[len(pl.Stages)+r] < 0 {
			pos[len(pl.Stages)+r] = 0
		}
	}
	return pos
}

// backward reports whether q is a feedback queue: some producer sits later
// in the forward chain than some consumer. Feedback queues close the
// pipeline's waits-for cycles; the pass never assigns them.
func (g *graph) backward(q int, pos []float64) bool {
	for _, p := range g.producers[q] {
		for _, c := range g.consumers[q] {
			if pos[p] > pos[c] {
				return true
			}
		}
	}
	return false
}

// classify names the policy class of queue q. Precedence: backward first
// (feedback dominates everything), then RA endpoints, then plain
// stage-to-stage forward queues.
func (g *graph) classify(pl *pipeline.Pipeline, q int, backward bool) string {
	if backward {
		return "backward"
	}
	if g.raProduces(pl, q) {
		return "ra-out"
	}
	if g.raConsumes(pl, q) != nil {
		return "ra-in"
	}
	return "forward"
}

func (g *graph) raProduces(pl *pipeline.Pipeline, q int) bool {
	for _, p := range g.producers[q] {
		if p >= len(pl.Stages) {
			return true
		}
	}
	return false
}

func (g *graph) raConsumes(pl *pipeline.Pipeline, q int) *arch.RASpec {
	for _, c := range g.consumers[q] {
		if c >= len(pl.Stages) {
			return &pl.RAs[c-len(pl.Stages)]
		}
	}
	return nil
}

// shrinkable is the calibrated assignment policy, tuned with a per-queue
// shrink sweep over the five benchmark families (EXPERIMENTS.md records the
// sweep; the Q4 floors make every allowed shrink deadlock-safe, this policy
// decides which safe shrinks are *profitable*):
//
//   - backward: never (Q4 premise).
//   - ra-out: throttling an accelerator's output queue bounds how far its
//     memory stream runs ahead of the consuming stage, which keeps its
//     loads resident in the shared cache until they are used (BFS -0.06%,
//     Radii -0.40% cycles and -3% queue-full stalls). Skipped when the
//     consuming stage is rate-coupled to another low-burst stage-to-stage
//     queue: the throttle then serializes that neighbor stream through the
//     consumer's token loop (CC's scan output feeds such a stage; shrinking
//     it cost +0.4%).
//   - ra-in: only for INDIRECT accelerators, whose 1:1 relay makes the
//     in-queue working set the site floor (BFS -0.10%). SCAN in-queues
//     carry [start,end) ranges whose amplification is data-dependent;
//     shrinking them serialized the producer against scan latency
//     (CC +1.1%).
//   - forward: only large-burst streams (burst >= 4), where the burst-based
//     recommendation still leaves 2x slack. Low-burst side channels are the
//     pipelines' rate-matching buffers; sizing them to their tiny bursts
//     serialized whole stage pairs (CC +7.7%, Radii +34% queue-full
//     stalls).
func (g *graph) shrinkable(pl *pipeline.Pipeline, q int, class string, burst []float64, pos []float64) bool {
	switch class {
	case "ra-out":
		for _, c := range g.consumers[q] {
			if c >= len(pl.Stages) {
				continue // RA-to-RA relay: no token loop to serialize
			}
			for q2, cons := range g.consumers {
				if q2 == q || g.raProduces(pl, q2) || g.backward(q2, pos) || burst[q2] >= 2 {
					continue
				}
				for _, c2 := range cons {
					if c2 == c {
						return false
					}
				}
			}
		}
		return true
	case "ra-in":
		ra := g.raConsumes(pl, q)
		return ra != nil && ra.Mode == arch.RAIndirect
	case "forward":
		return burst[q] >= 4
	}
	return false
}

// siteFloors counts, per queue, the largest number of static enqueue sites
// in any single producing stage program — the stage's whole per-token
// commitment to that queue. Clamped nowhere: inferDepth clamps to the
// architectural depth, and a floor above it simply means "not assignable".
func siteFloors(pl *pipeline.Pipeline, progs []*isa.Program) []int {
	floors := make([]int, len(pl.Queues))
	for i := range floors {
		floors[i] = 1
	}
	for _, prog := range progs {
		if prog == nil {
			continue
		}
		sites := map[int]int{}
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				sites[in.Q]++
			}
		}
		for q, n := range sites {
			if n > floors[q] {
				floors[q] = n
			}
		}
	}
	return floors
}

// groupFloors finds, per queue, the longest static run of back-to-back
// enqueues with no other queue operation between them (a SCAN range send is
// a run of two). The producer commits to the whole run before it reaches an
// instruction that could let anyone else progress, so assigned capacities
// never go below it.
func groupFloors(pl *pipeline.Pipeline, progs []*isa.Program) []int {
	floors := make([]int, len(pl.Queues))
	for i := range floors {
		floors[i] = 1
	}
	for _, prog := range progs {
		if prog == nil {
			continue
		}
		curQ, curLen := -1, 0
		for _, in := range prog.Instrs {
			switch in.Op {
			case isa.OpEnq, isa.OpEnqCtrl, isa.OpEnqCtrlV:
				if in.Q == curQ {
					curLen++
				} else {
					curQ, curLen = in.Q, 1
				}
				if curLen > floors[curQ] {
					floors[curQ] = curLen
				}
			case isa.OpDeq, isa.OpPeek:
				curQ, curLen = -1, 0
			}
		}
	}
	return floors
}

// cloneStmts deep-copies the block structure of a statement list (If/Loop
// nodes and their child lists); leaf statements are shared, which is safe
// because the multicast rewrite only deletes list elements, never mutates
// statements in place.
func cloneStmts(body []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(body))
	for _, s := range body {
		switch s := s.(type) {
		case *ir.If:
			c := *s
			c.Then = cloneStmts(s.Then)
			c.Else = cloneStmts(s.Else)
			out = append(out, &c)
		case *ir.Loop:
			c := *s
			c.Pre = cloneStmts(s.Pre)
			c.Body = cloneStmts(s.Body)
			out = append(out, &c)
		default:
			out = append(out, s)
		}
	}
	return out
}
