// Package commopt is the static queue-communication optimization pass. It
// runs after the pipelining passes, over the same post-pass stage programs
// the simulator executes, and does three things:
//
//  1. Token-flow/occupancy analysis: it extends the cost model's per-queue
//     traffic plan (tokens/unit, burst) with producer/consumer rate matching,
//     a waits-for cycle classification over the queue topology, and per-queue
//     commitment floors. The result is, per queue, a *proven* occupancy bound
//     (a bounded queue can never hold more than its effective capacity) plus
//     a steady-state estimate, a forward/backward (feedback) classification,
//     and the two floors the deadlock argument needs: the longest
//     back-to-back enqueue run (GroupFloor) and the producer's largest static
//     per-token commitment (SiteFloor).
//  2. Capacity application: inferred capacities are written into
//     pipeline.Queue.Depth (marked DepthByPass). An explicit user depth is
//     never overridden, the architectural QueueDepth is never exceeded, and
//     the deadlock proof (DESIGN.md section 14; verified as rule Q4) rests on
//     two restrictions: backward (feedback) queues are never assigned, and
//     every assigned capacity covers the producing stage's whole per-token
//     commitment (every enqueue site its handler-loop body can reach). Under
//     the pipeline grammar this compiler emits — per-token handler loops
//     connected by FIFOs, with loop-carried values on feedback queues — a
//     producer blocked on a full assigned queue therefore has a completed
//     token's worth of data sitting in that queue, which (by induction along
//     the forward chain) its consumer can always eventually drain, so the
//     assignment cannot introduce a capacity-induced deadlock relative to
//     the default configuration.
//  3. Multicast/fan-out rewrite: producer stages that enqueue the same value
//     to several consumer queues back-to-back (SpMM's feedback broadcast,
//     frame+RA item sends) are rewritten to a single send plus an
//     arch.FanOut spec; the hardware duplicates the data stream. The
//     recompute-vs-send decision folds into cost-model pricing: the fan-out
//     writes the same number of physical queue entries (energy is
//     unchanged), but each eliminated software send saves its issue slot, so
//     the priced saving is QueueOp cycles per duplicated token and the
//     rewrite is applied whenever duplicate sites exist.
//
// The pass is wired behind core.Options.CommOpt (default off; compiled
// output is bit-identical when off) and verified by rules Q4 (capacity-cycle
// safety) and W2 (pass-assigned undersizing) in internal/verify.
package commopt

import (
	"fmt"
	"math"

	"phloem/internal/arch"
	"phloem/internal/costmodel"
	"phloem/internal/isa"
	"phloem/internal/pipeline"
)

// Options selects which optimizations Apply performs. Analysis always runs
// in full; the flags gate only the mutations.
type Options struct {
	// Capacities writes inferred per-queue depths into the pipeline.
	Capacities bool
	// Multicast rewrites duplicate sends into fan-out queue specs.
	Multicast bool
}

// QueuePlan is the analysis result and decision for one queue.
type QueuePlan struct {
	ID   int
	Name string
	// Data, Ctrl, Burst come from the cost model's traffic plan (tokens per
	// kernel unit; Burst is the largest group sent before a guaranteed
	// drain opportunity).
	Data, Ctrl, Burst float64
	// GroupFloor is the longest run of back-to-back enqueues into this
	// queue with no other queue operation between them — the producer
	// commits to this many tokens before reaching an instruction that can
	// unblock anyone else, so assigned capacities never go below it.
	GroupFloor int
	// SiteFloor is the largest number of static enqueue sites into this
	// queue in any single producing stage — the stage's whole per-token
	// commitment. Assigned capacities never go below it either; that is
	// what lets the Q4 induction treat a full-queue block as "a completed
	// token's worth of data is available downstream".
	SiteFloor int
	// ProdCycles/ConsCycles are the per-unit service demands of the
	// producer and consumer entities (rate matching: the queue tends to run
	// full when ProdCycles < ConsCycles).
	ProdCycles, ConsCycles float64
	// OnCycle marks queues whose backpressure edge lies on a non-trivial
	// cycle of the entity graph; with feedback every forward queue is, so
	// this is reported but gating uses Backward and the floors instead.
	OnCycle bool
	// Backward marks feedback queues (a producer positioned later in the
	// forward chain than a consumer). The pass never assigns these: they
	// close the pipeline's waits-for cycles, and keeping them at the
	// machine default is one premise of the Q4 deadlock argument.
	Backward bool
	// Class records the policy class the assignment decision used:
	// "backward", "ra-out", "ra-in", or "forward".
	Class string
	// UserSet marks an explicit author depth; the pass never touches it.
	UserSet bool
	// Before and After are the effective capacities before and after the
	// pass (the machine default when no override applies).
	Before, After int
	// Assigned marks queues whose Depth the pass wrote.
	Assigned bool
	// MaxOcc is the proven occupancy bound: the effective capacity after
	// the pass. Telemetry-observed time-weighted max occupancy can never
	// exceed it.
	MaxOcc int
	// EstOcc is the steady-state occupancy estimate from burst and rate
	// matching (capacity-clamped; the queue runs ~full when the producer
	// outpaces the consumer).
	EstOcc float64
}

// FanOutPlan records one applied (or planned) multicast rewrite.
type FanOutPlan struct {
	Src, Dst int
	SrcName  string
	DstName  string
	Stage    string
	// Sites is the number of duplicate send statements the rewrite removes.
	Sites int
	// Tokens is the duplicated data traffic (tokens per kernel unit).
	Tokens float64
	// Saved is the cost-model priced saving: QueueOp issue cycles per unit
	// no longer spent on the eliminated sends.
	Saved float64
}

// Plan is the full analysis/optimization result for one pipeline.
type Plan struct {
	Pipeline string
	// Default is the machine default queue capacity the plan is relative to.
	Default int
	Queues  []QueuePlan
	FanOuts []FanOutPlan
}

// Analyze computes the plan without mutating the pipeline: the returned
// depths and fan-outs are what Apply with both options would do.
func Analyze(pl *pipeline.Pipeline, cfg arch.Config) (*Plan, error) {
	return run(clonePipeline(pl), cfg, Options{Capacities: true, Multicast: true})
}

// Apply analyzes the pipeline and applies the selected optimizations in
// place: the multicast rewrite first (it changes the traffic plan), then
// capacity inference over the rewritten pipeline.
func Apply(pl *pipeline.Pipeline, cfg arch.Config, opt Options) (*Plan, error) {
	return run(pl, cfg, opt)
}

func run(pl *pipeline.Pipeline, cfg arch.Config, opt Options) (*Plan, error) {
	plan := &Plan{Pipeline: pl.Prog.Name, Default: cfg.QueueDepth}
	if opt.Multicast {
		if err := rewriteMulticast(pl, cfg, plan); err != nil {
			return nil, err
		}
	}

	// Flatten once; the cost model, the rate/floor analysis, and the cycle
	// check all look at the same programs the simulator would run.
	progs := make([]*isa.Program, len(pl.Stages))
	for i, st := range pl.Stages {
		prog, err := pipeline.FlattenStage(pl, st)
		if err != nil {
			return nil, fmt.Errorf("commopt: flatten %s: %w", st.Name, err)
		}
		progs[i] = prog
	}
	rep := costmodel.AnalyzeFlat(pl, cfg, progs)
	g := buildGraph(pl, progs)
	gFloors := groupFloors(pl, progs)
	sFloors := siteFloors(pl, progs)
	pos := g.positions(pl)

	ents := map[string]costmodel.EntityCost{}
	for _, e := range rep.Entities {
		ents[e.Name] = e
	}
	burst := make([]float64, len(pl.Queues))
	for _, qp := range rep.Queues {
		burst[qp.ID] = qp.Burst
	}

	for _, qp := range rep.Queues {
		p := QueuePlan{
			ID: qp.ID, Name: qp.Name,
			Data: qp.Data, Ctrl: qp.Ctrl, Burst: qp.Burst,
			GroupFloor: gFloors[qp.ID],
			SiteFloor:  sFloors[qp.ID],
			OnCycle:    g.onCycle(qp.ID),
			Backward:   g.backward(qp.ID, pos),
			UserSet:    qp.Depth > 0 && !pl.Queues[qp.ID].DepthByPass,
			Before:     effDepth(qp.Depth, cfg),
		}
		p.ProdCycles, p.ConsCycles = g.rates(qp.ID, pl, ents)
		p.Class = g.classify(pl, qp.ID, p.Backward)
		p.After = p.Before
		if !p.UserSet && g.shrinkable(pl, qp.ID, p.Class, burst, pos) {
			d := inferDepth(&p, qp.Recommended, cfg)
			if d < p.Before {
				p.After = d
				p.Assigned = true
				if opt.Capacities {
					pl.Queues[qp.ID].Depth = d
					pl.Queues[qp.ID].DepthByPass = true
				}
			}
		}
		p.MaxOcc = p.After
		p.EstOcc = estOccupancy(&p)
		plan.Queues = append(plan.Queues, p)
	}
	if err := plan.Check(cfg); err != nil {
		return nil, fmt.Errorf("commopt: plan fails its own safety check: %w", err)
	}
	return plan, nil
}

// inferDepth picks the capacity for a shrinkable queue: the cost model's
// recommendation (next power of two above burst+1, floored at MinQueueRec),
// raised to the commitment floors the Q4 argument requires, clamped to the
// architectural QueueDepth.
func inferDepth(p *QueuePlan, recommended int, cfg arch.Config) int {
	d := recommended
	if d < p.GroupFloor {
		d = p.GroupFloor
	}
	if d < p.SiteFloor {
		d = p.SiteFloor
	}
	if d < 1 {
		d = 1
	}
	if d > cfg.QueueDepth {
		d = cfg.QueueDepth
	}
	return d
}

// estOccupancy is the steady-state occupancy estimate: a queue whose
// producer outpaces its consumer runs at capacity; otherwise tokens drain as
// they arrive and the standing population is the burst (plus the in-flight
// slot), capacity-clamped.
func estOccupancy(p *QueuePlan) float64 {
	if p.ProdCycles > 0 && p.ConsCycles > 0 && p.ProdCycles < p.ConsCycles {
		return float64(p.After)
	}
	return math.Min(float64(p.After), p.Burst+1)
}

func effDepth(depth int, cfg arch.Config) int {
	if depth > 0 {
		return depth
	}
	return cfg.QueueDepth
}

// Check is the plan's self-verification (rule Q4's obligations, also the
// fuzz target's invariants): every capacity in [1, QueueDepth], assigned
// capacities at or above both commitment floors, backward (feedback) and
// user-set queues untouched, and fan-out specs chain-free.
func (p *Plan) Check(cfg arch.Config) error {
	for _, q := range p.Queues {
		if q.After < 1 || q.After > cfg.QueueDepth {
			return fmt.Errorf("q%d(%s): capacity %d outside [1, %d]", q.ID, q.Name, q.After, cfg.QueueDepth)
		}
		if q.Assigned && q.After < q.GroupFloor {
			return fmt.Errorf("q%d(%s): assigned capacity %d below group floor %d", q.ID, q.Name, q.After, q.GroupFloor)
		}
		if q.Assigned && q.After < q.SiteFloor {
			return fmt.Errorf("q%d(%s): assigned capacity %d below site floor %d", q.ID, q.Name, q.After, q.SiteFloor)
		}
		if q.Assigned && q.Backward {
			return fmt.Errorf("q%d(%s): pass assigned a backward (feedback) queue", q.ID, q.Name)
		}
		if q.Assigned && q.UserSet {
			return fmt.Errorf("q%d(%s): pass overrode a user-set depth", q.ID, q.Name)
		}
	}
	src := map[int]bool{}
	dst := map[int]bool{}
	for _, f := range p.FanOuts {
		if f.Src == f.Dst {
			return fmt.Errorf("fanout q%d -> q%d: self-loop", f.Src, f.Dst)
		}
		if dst[f.Dst] {
			return fmt.Errorf("fanout q%d -> q%d: destination fanned twice", f.Src, f.Dst)
		}
		src[f.Src], dst[f.Dst] = true, true
	}
	for q := range src {
		if dst[q] {
			return fmt.Errorf("fanout chain through q%d", q)
		}
	}
	return nil
}

// clonePipeline deep-copies the parts of a pipeline the pass mutates, so
// Analyze can plan without touching the caller's pipeline.
func clonePipeline(pl *pipeline.Pipeline) *pipeline.Pipeline {
	cp := *pl
	cp.Stages = make([]*pipeline.Stage, len(pl.Stages))
	for i, st := range pl.Stages {
		c := *st
		c.Body = cloneStmts(st.Body)
		cp.Stages[i] = &c
	}
	cp.Queues = append([]pipeline.Queue(nil), pl.Queues...)
	cp.FanOuts = make([]arch.FanOut, 0, len(pl.FanOuts))
	for _, f := range pl.FanOuts {
		cp.FanOuts = append(cp.FanOuts, arch.FanOut{Src: f.Src, Dst: append([]int(nil), f.Dst...)})
	}
	return &cp
}
