package commopt

import (
	"fmt"
	"sort"
	"strings"

	"phloem/internal/arch"
	"phloem/internal/costmodel"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
)

// The multicast rewrite finds producer code that enqueues the same value to
// several queues back-to-back — a broadcast written as N sends — and replaces
// it with one send plus an arch.FanOut spec the hardware expands. Detection is
// purely syntactic over the stage IR: a *run* is a maximal sequence of
// consecutive *ir.Enq statements in one statement list that all enqueue the
// same operand; the run's *group* is its set of target queues.
//
// A group S (|S| >= 2) is rewritable only when it is unambiguous and legal:
//
//   - exclusivity: every queue in S appears only in runs whose group is
//     exactly S. A queue that also receives a lone send (singleton run) or
//     participates in a different broadcast shape cannot be a fan-out
//     endpoint, because deleting its sends would drop that other traffic.
//   - one stage: all of S's runs sit in a single stage, so the fan-out has a
//     single producer to price and verify.
//   - no RA ports: no queue in S is an RA output (the RA owns that stream),
//     and none already participates in a fan-out.
//
// The smallest queue id in S becomes the fan-out source (a deterministic
// choice; the duplicated values are identical, so any member works); the
// remaining members become destinations whose Enq statements are deleted.
// Control tokens (EnqCtrl) are not duplicated and keep their explicit sends.
//
// Pricing: the hardware still writes one physical entry per destination, so
// data movement is unchanged; what each destination saves is the producer's
// issue slot for the deleted send — QueueOp cycles per duplicated token, with
// the token rate taken from the cost model's pre-rewrite traffic plan.
func rewriteMulticast(pl *pipeline.Pipeline, cfg arch.Config, plan *Plan) error {
	type runInfo struct {
		stage int
		key   string
		qs    []int
	}
	var runs []runInfo
	// keys[q] is the set of group keys queue q's enqueues appear under; a
	// queue is rewritable only if it has exactly one key.
	keys := make([]map[string]bool, len(pl.Queues))
	poison := make([]bool, len(pl.Queues))
	note := func(q int, key string) {
		if keys[q] == nil {
			keys[q] = map[string]bool{}
		}
		keys[q][key] = true
	}

	var scan func(stage int, body []ir.Stmt)
	scan = func(stage int, body []ir.Stmt) {
		i := 0
		for i < len(body) {
			if e, ok := body[i].(*ir.Enq); ok {
				j := i
				var qs []int
				dup := false
				for j < len(body) {
					n, ok := body[j].(*ir.Enq)
					if !ok || n.Val != e.Val {
						break
					}
					for _, q := range qs {
						if q == n.Q {
							dup = true
						}
					}
					qs = append(qs, n.Q)
					j++
				}
				sorted := append([]int(nil), qs...)
				sort.Ints(sorted)
				key := groupKey(sorted)
				for _, q := range qs {
					note(q, key)
					if dup {
						// The same queue twice in one run: deleting a send
						// would change its token count. Never rewrite it.
						poison[q] = true
					}
				}
				if len(sorted) >= 2 {
					runs = append(runs, runInfo{stage: stage, key: key, qs: sorted})
				}
				i = j
				continue
			}
			switch s := body[i].(type) {
			case *ir.If:
				scan(stage, s.Then)
				scan(stage, s.Else)
			case *ir.Loop:
				scan(stage, s.Pre)
				scan(stage, s.Body)
			}
			i++
		}
	}
	for si, st := range pl.Stages {
		scan(si, st.Body)
	}
	if len(runs) == 0 {
		return nil
	}

	raOut := make([]bool, len(pl.Queues))
	for _, ra := range pl.RAs {
		if ra.OutQ >= 0 && ra.OutQ < len(pl.Queues) {
			raOut[ra.OutQ] = true
		}
	}
	inFan := make([]bool, len(pl.Queues))
	for _, f := range pl.FanOuts {
		if f.Src >= 0 && f.Src < len(pl.Queues) {
			inFan[f.Src] = true
		}
		for _, d := range f.Dst {
			if d >= 0 && d < len(pl.Queues) {
				inFan[d] = true
			}
		}
	}

	// Decide which groups are rewritable and count their sites.
	type groupInfo struct {
		stage int
		qs    []int
		runs  int
	}
	groups := map[string]*groupInfo{}
	var order []string
	for _, r := range runs {
		gi := groups[r.key]
		if gi == nil {
			gi = &groupInfo{stage: r.stage, qs: r.qs}
			groups[r.key] = gi
			order = append(order, r.key)
		}
		gi.runs++
		if r.stage != gi.stage {
			gi.stage = -1 // spans stages: not rewritable
		}
	}
	valid := map[string]bool{}
	for _, key := range order {
		gi := groups[key]
		ok := gi.stage >= 0
		for _, q := range gi.qs {
			if poison[q] || raOut[q] || inFan[q] || len(keys[q]) != 1 {
				ok = false
			}
		}
		if ok {
			valid[key] = true
		}
	}
	if len(valid) == 0 {
		return nil
	}

	// Price against the pre-rewrite traffic plan (the deleted sends' rates).
	pre, err := costmodel.Analyze(pl, cfg)
	if err != nil {
		return fmt.Errorf("commopt: pricing multicast: %w", err)
	}
	qdata := make([]float64, len(pl.Queues))
	for _, qp := range pre.Queues {
		qdata[qp.ID] = qp.Data
	}
	queueOp := costmodel.DefaultParams().QueueOp

	// Rewrite: re-walk each statement list; inside a run of a valid group,
	// keep only the source's Enq.
	var rewrite func(body []ir.Stmt) []ir.Stmt
	rewrite = func(body []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, 0, len(body))
		i := 0
		for i < len(body) {
			if e, ok := body[i].(*ir.Enq); ok {
				j := i
				var members []*ir.Enq
				var qs []int
				for j < len(body) {
					n, ok := body[j].(*ir.Enq)
					if !ok || n.Val != e.Val {
						break
					}
					members = append(members, n)
					qs = append(qs, n.Q)
					j++
				}
				sort.Ints(qs)
				if valid[groupKey(qs)] {
					src := qs[0]
					for _, m := range members {
						if m.Q == src {
							out = append(out, m)
						}
					}
				} else {
					for _, m := range members {
						out = append(out, m)
					}
				}
				i = j
				continue
			}
			switch s := body[i].(type) {
			case *ir.If:
				s.Then = rewrite(s.Then)
				s.Else = rewrite(s.Else)
			case *ir.Loop:
				s.Pre = rewrite(s.Pre)
				s.Body = rewrite(s.Body)
			}
			out = append(out, body[i])
			i++
		}
		return out
	}
	for _, st := range pl.Stages {
		st.Body = rewrite(st.Body)
	}

	for _, key := range order {
		if !valid[key] {
			continue
		}
		gi := groups[key]
		src := gi.qs[0]
		fo := arch.FanOut{Src: src}
		for _, d := range gi.qs[1:] {
			fo.Dst = append(fo.Dst, d)
			plan.FanOuts = append(plan.FanOuts, FanOutPlan{
				Src:     src,
				Dst:     d,
				SrcName: pl.Queues[src].Name,
				DstName: pl.Queues[d].Name,
				Stage:   pl.Stages[gi.stage].Name,
				Sites:   gi.runs,
				Tokens:  qdata[d],
				Saved:   qdata[d] * queueOp,
			})
		}
		pl.FanOuts = append(pl.FanOuts, fo)
	}
	return nil
}

func groupKey(sorted []int) string {
	var sb strings.Builder
	for i, q := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", q)
	}
	return sb.String()
}
