package pipeline_test

import (
	"fmt"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func TestInstantiateRejectsMissingBindings(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	pl := pipeline.NewSerial(p)
	_, err = pipeline.Instantiate(pl, arch.DefaultConfig(1), pipeline.Bindings{})
	if err == nil {
		t.Fatal("expected an error for missing array bindings")
	}
}

func TestReplicateStructure(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(p, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := res.Pipeline
	repl, err := pipeline.Replicate(base, 3, []string{"nodes", "edges"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(repl.Stages) != 3*len(base.Stages) {
		t.Errorf("stages: %d, want %d", len(repl.Stages), 3*len(base.Stages))
	}
	if len(repl.RAs) != 3*len(base.RAs) {
		t.Errorf("RAs: %d, want %d", len(repl.RAs), 3*len(base.RAs))
	}
	if len(repl.Queues) != 3*len(base.Queues) {
		t.Errorf("queues: %d, want %d", len(repl.Queues), 3*len(base.Queues))
	}
	// Shared slots appear once; private ones per replica.
	wantSlots := 2 + 3*(len(base.Prog.Slots)-2)
	if len(repl.Prog.Slots) != wantSlots {
		t.Errorf("slots: %d, want %d", len(repl.Prog.Slots), wantSlots)
	}
	// Replica r's stages sit on core r.
	for i, st := range repl.Stages {
		if st.Thread.Core != i/len(base.Stages) {
			t.Errorf("stage %d on core %d", i, st.Thread.Core)
		}
	}
}

func TestReplicatedBFSCorrectEachReplica(t *testing.T) {
	g := graph.Grid("g", 16, 16, 3)
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(p, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const R = 2
	repl, err := pipeline.Replicate(res.Pipeline, R, []string{"nodes", "edges"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := workloads.BFSBindings(g, 0)
	b := pipeline.Bindings{
		Ints:    map[string][]int64{"nodes": g.Nodes, "edges": g.Edges},
		Scalars: base.Scalars,
	}
	for r := 0; r < R; r++ {
		for _, name := range []string{"distances", "cur_fringe", "next_fringe"} {
			b.Ints[fmt.Sprintf("r%d.%s", r, name)] = append([]int64(nil), base.Ints[name]...)
		}
	}
	inst, err := pipeline.Instantiate(repl, arch.DefaultConfig(R), b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	want := workloads.BFSRef(g, 0)
	for r := 0; r < R; r++ {
		got := inst.Arrays[fmt.Sprintf("r%d.distances", r)].Ints()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %d distances[%d] = %d, want %d", r, i, got[i], want[i])
			}
		}
	}
}

func TestReplicatePerReplicaOverrides(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.BFSSource)
	if err != nil {
		t.Fatal(err)
	}
	pl := pipeline.NewSerial(p)
	repl, err := pipeline.Replicate(pl, 2, nil, map[string][]int64{"root": {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if repl.Stages[0].Overrides["root"] != 0 || repl.Stages[1].Overrides["root"] != 5 {
		t.Error("per-replica overrides not applied")
	}
	if _, err := pipeline.Replicate(pl, 2, nil, map[string][]int64{"root": {1}}); err == nil {
		t.Error("wrong-length overrides must error")
	}
}
