package pipeline_test

import (
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func TestDescribeAndDump(t *testing.T) {
	res, err := core.CompileSource(workloads.BFSSource, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Pipeline.Describe()
	for _, want := range []string{"pipeline bfs", "stage", "RA", "SCAN", "INDIRECT"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	dump := res.Pipeline.DumpStages()
	for _, want := range []string{"deq", "enq", "load", "store"} {
		if !strings.Contains(dump, want) {
			t.Errorf("DumpStages missing %q", want)
		}
	}
	if res.Pipeline.TotalStages() != res.Pipeline.NumStages()+len(res.Pipeline.RAs) {
		t.Error("TotalStages must count software stages plus RAs")
	}
}

func TestQueueLimitEnforced(t *testing.T) {
	res, err := core.CompileSource(workloads.BFSSource, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.DefaultConfig(1)
	cfg.MaxQueues = 2 // far fewer than the pipeline needs
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	_, err = pipeline.Instantiate(res.Pipeline, cfg, bench.Train[0].Bind())
	if err == nil {
		t.Fatal("expected the 16-queue-per-core limit to be enforced")
	}
}

func TestScalarBindingErrors(t *testing.T) {
	res, err := core.CompileSource(workloads.BFSSource, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	b := bench.Train[0].Bind()
	delete(b.Scalars, "root")
	if _, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), b); err == nil {
		t.Fatal("missing scalar binding must error")
	}
}

func TestSerialWrapper(t *testing.T) {
	p, err := workloads.CompileSerial(workloads.CCSource)
	if err != nil {
		t.Fatal(err)
	}
	pl := pipeline.NewSerial(p)
	if pl.NumStages() != 1 || len(pl.RAs) != 0 || len(pl.Queues) != 0 {
		t.Errorf("serial wrapper: %s", pl.Describe())
	}
}
