// Package pipeline defines the compiler's output representation: a set of
// pipeline stages (IR statement lists) connected by queues and reference
// accelerators, plus the machinery to instantiate a pipeline on a simulated
// Pipette machine with concrete data bindings.
package pipeline

import (
	"fmt"
	"strings"

	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/isa"
	"phloem/internal/lower"
	"phloem/internal/mem"
	"phloem/internal/sim"
)

// Stage is one pipeline stage.
type Stage struct {
	Name   string
	Body   []ir.Stmt
	Thread arch.ThreadID
	// Overrides replaces scalar parameter values for this stage (e.g., a
	// data-parallel worker's thread id, a replica's partition base).
	Overrides map[string]int64
}

// Queue declares one architectural queue used by the pipeline.
type Queue struct {
	Name string
	// Depth overrides the machine default when > 0.
	Depth int
	// DepthByPass marks Depth as assigned by a compiler pass (commopt)
	// rather than set explicitly by the pipeline author. Passes must never
	// override a user-set depth, and the verifier distinguishes the two
	// when reporting undersized queues (W1 user-set vs W2 pass-assigned).
	DepthByPass bool
}

// Pipeline is a compiled kernel: stages, queues, and reference accelerators
// over the variable/slot tables of the underlying IR program.
type Pipeline struct {
	Prog   *ir.Prog
	Stages []*Stage
	Queues []Queue
	RAs    []arch.RASpec
	// FanOuts lists hardware multicast specs: data values enqueued to Src
	// are also delivered to every Dst queue. Emitted by the commopt
	// multicast rewrite; empty for all other pipelines.
	FanOuts []arch.FanOut
	// Description summarizes how the pipeline was derived (for reports).
	Description string
}

// NewSerial wraps an IR program as a single-stage "pipeline" (the serial
// baseline configuration).
func NewSerial(p *ir.Prog) *Pipeline {
	return &Pipeline{
		Prog: p,
		Stages: []*Stage{{
			Name:   p.Name + ".serial",
			Body:   p.Body,
			Thread: arch.ThreadID{Core: 0, Thread: 0},
		}},
		Description: "serial (1 stage)",
	}
}

// AddQueue appends a queue and returns its id.
func (pl *Pipeline) AddQueue(name string) int {
	pl.Queues = append(pl.Queues, Queue{Name: name})
	return len(pl.Queues) - 1
}

// NumStages returns the number of software stages (threads), excluding RAs.
func (pl *Pipeline) NumStages() int { return len(pl.Stages) }

// TotalStages counts stages the way Fig. 13 does: software stages plus
// reference accelerators.
func (pl *Pipeline) TotalStages() int { return len(pl.Stages) + len(pl.RAs) }

// Describe renders a human-readable structural summary.
func (pl *Pipeline) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline %s: %d stages + %d RAs, %d queues (%s)\n",
		pl.Prog.Name, len(pl.Stages), len(pl.RAs), len(pl.Queues), pl.Description)
	for _, st := range pl.Stages {
		fmt.Fprintf(&sb, "  stage %-24s on %s\n", st.Name, st.Thread)
	}
	for _, ra := range pl.RAs {
		fmt.Fprintf(&sb, "  %s\n", ra.String())
	}
	for _, f := range pl.FanOuts {
		fmt.Fprintf(&sb, "  %s\n", f.String())
	}
	return sb.String()
}

// DumpStages renders every stage's IR (debugging aid).
func (pl *Pipeline) DumpStages() string {
	var sb strings.Builder
	for _, st := range pl.Stages {
		fmt.Fprintf(&sb, "--- stage %s (%s)\n", st.Name, st.Thread)
		sb.WriteString(pl.Prog.PrintStmts(st.Body))
	}
	return sb.String()
}

// FlattenStage lowers one stage to its flat ISA program exactly the way
// Instantiate does (optimize then flatten). The static verifier uses this so
// that it analyzes the same programs the simulator would run.
func FlattenStage(pl *Pipeline, st *Stage) (*isa.Program, error) {
	return lower.Flatten(pl.Prog, st.Name, ir.Optimize(pl.Prog, st.Body))
}

// Bindings supplies concrete data for a pipeline run. Array contents are
// copied into the simulated address space at Instantiate time; results are
// read back from the Instance.
type Bindings struct {
	// Ints maps int-array slot names to initial contents.
	Ints map[string][]int64
	// Floats maps float-array slot names to initial contents.
	Floats map[string][]float64
	// Scalars maps scalar parameter names to values.
	Scalars map[string]int64
	// FloatScalars maps float scalar parameters to values.
	FloatScalars map[string]float64
}

// Instance is an instantiated pipeline ready to Run.
type Instance struct {
	Machine *sim.Machine
	Arrays  map[string]*mem.Array
}

// Instantiate builds a simulated machine for the pipeline with the given
// configuration and data bindings.
func Instantiate(pl *Pipeline, cfg arch.Config, b Bindings) (*Instance, error) {
	m := sim.NewMachine(cfg)
	inst := &Instance{Machine: m, Arrays: map[string]*mem.Array{}}

	for _, slot := range pl.Prog.Slots {
		var a *mem.Array
		switch slot.Kind {
		case ir.KFloat:
			data, ok := b.Floats[slot.Name]
			if !ok {
				return nil, fmt.Errorf("pipeline: no binding for float array %q", slot.Name)
			}
			a = m.Space.AllocFloats(slot.Name, data)
		default:
			data, ok := b.Ints[slot.Name]
			if !ok {
				return nil, fmt.Errorf("pipeline: no binding for int array %q", slot.Name)
			}
			a = m.Space.AllocInts(slot.Name, data)
		}
		m.AddSlot(slot.Name, a)
		inst.Arrays[slot.Name] = a
	}
	for _, q := range pl.Queues {
		m.Queues = append(m.Queues, arch.QueueSpec{Name: q.Name, Depth: q.Depth, DepthByPass: q.DepthByPass})
	}
	for _, f := range pl.FanOuts {
		m.FanOuts = append(m.FanOuts, arch.FanOut{Src: f.Src, Dst: append([]int(nil), f.Dst...)})
	}
	for _, ra := range pl.RAs {
		m.AddRA(ra)
	}

	// Scalar parameter initial values, broadcast to every stage.
	var inits []sim.RegInit
	for _, v := range pl.Prog.ScalarParams {
		info := pl.Prog.Vars[v]
		var val sim.Value
		if info.Kind == ir.KFloat {
			fv, ok := b.FloatScalars[info.Name]
			if !ok {
				return nil, fmt.Errorf("pipeline: no binding for float scalar %q", info.Name)
			}
			val = sim.FloatVal(fv)
		} else {
			iv, ok := b.Scalars[info.Name]
			if !ok {
				return nil, fmt.Errorf("pipeline: no binding for scalar %q", info.Name)
			}
			val = sim.IntVal(iv)
		}
		inits = append(inits, sim.RegInit{Reg: isa.Reg(v), Val: val})
	}

	for _, st := range pl.Stages {
		prog, err := FlattenStage(pl, st)
		if err != nil {
			return nil, fmt.Errorf("pipeline: flatten %s: %w", st.Name, err)
		}
		stInits := inits
		if len(st.Overrides) > 0 {
			stInits = append([]sim.RegInit(nil), inits...)
			for _, v := range pl.Prog.ScalarParams {
				if ov, ok := st.Overrides[pl.Prog.Vars[v].Name]; ok {
					stInits = append(stInits, sim.RegInit{Reg: isa.Reg(v), Val: sim.IntVal(ov)})
				}
			}
		}
		m.AddStage(&sim.Stage{Prog: prog, Thread: st.Thread, Init: stInits})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Run instantiates and executes the pipeline, returning timing statistics.
// Functional results are available through inst.Arrays.
func (inst *Instance) Run() (*sim.Stats, error) {
	return inst.Machine.Run()
}
