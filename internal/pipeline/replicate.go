package pipeline

import (
	"fmt"

	"phloem/internal/arch"
	"phloem/internal/ir"
)

// Replicate builds an R-replica pipeline from a single-core pipeline
// (Sec. IV-C): replica r's stages run on core r, with private copies of the
// queues and reference accelerators. Slots named in shared stay bound to one
// array (e.g., the input graph); all other slots are privatized per replica
// (slot "cur_fringe" becomes "r0.cur_fringe", ...). Scalar parameters listed
// in perReplica get per-replica override values (e.g., a replica id).
//
// This realizes the paper's `#pragma replicate`: the caller (or the
// replicate_arguments() analogue in the bench harness) decides which data
// structures are shared and how work partitions across replicas.
func Replicate(pl *Pipeline, replicas int, shared []string,
	perReplica map[string][]int64) (*Pipeline, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("pipeline: replicas must be >= 1")
	}
	sharedSet := map[string]bool{}
	for _, s := range shared {
		sharedSet[s] = true
	}
	for name, vals := range perReplica {
		if len(vals) != replicas {
			return nil, fmt.Errorf("pipeline: perReplica[%q] has %d values for %d replicas", name, len(vals), replicas)
		}
	}

	src := pl.Prog
	out := &Pipeline{
		Prog: &ir.Prog{
			Name:         src.Name + "-x" + fmt.Sprint(replicas),
			Vars:         src.Vars,
			ScalarParams: src.ScalarParams,
		},
		Description: fmt.Sprintf("%s, replicated x%d", pl.Description, replicas),
	}

	// Slot table: shared slots once, private slots per replica.
	slotMap := make([][]int, replicas) // replica -> old slot -> new slot
	sharedIdx := map[string]int{}
	for r := 0; r < replicas; r++ {
		slotMap[r] = make([]int, len(src.Slots))
		for i, s := range src.Slots {
			if sharedSet[s.Name] {
				idx, ok := sharedIdx[s.Name]
				if !ok {
					idx = len(out.Prog.Slots)
					out.Prog.Slots = append(out.Prog.Slots, s)
					sharedIdx[s.Name] = idx
				}
				slotMap[r][i] = idx
				continue
			}
			idx := len(out.Prog.Slots)
			out.Prog.Slots = append(out.Prog.Slots,
				ir.SlotInfo{Name: fmt.Sprintf("r%d.%s", r, s.Name), Kind: s.Kind})
			slotMap[r][i] = idx
		}
	}

	for r := 0; r < replicas; r++ {
		qBase := len(out.Queues)
		for _, q := range pl.Queues {
			out.Queues = append(out.Queues, Queue{Name: fmt.Sprintf("r%d.%s", r, q.Name), Depth: q.Depth, DepthByPass: q.DepthByPass})
		}
		for _, f := range pl.FanOuts {
			c := arch.FanOut{Src: f.Src + qBase}
			for _, d := range f.Dst {
				c.Dst = append(c.Dst, d+qBase)
			}
			out.FanOuts = append(out.FanOuts, c)
		}
		for _, ra := range pl.RAs {
			c := ra
			c.Name = fmt.Sprintf("r%d.%s", r, ra.Name)
			c.InQ += qBase
			c.OutQ += qBase
			c.Slot = slotMap[r][ra.Slot]
			c.Core = r
			out.RAs = append(out.RAs, c)
		}
		for _, st := range pl.Stages {
			ov := map[string]int64{}
			for k, v := range st.Overrides {
				ov[k] = v
			}
			for name, vals := range perReplica {
				ov[name] = vals[r]
			}
			out.Stages = append(out.Stages, &Stage{
				Name:      fmt.Sprintf("r%d.%s", r, st.Name),
				Body:      rewriteStage(st.Body, qBase, slotMap[r]),
				Thread:    arch.ThreadID{Core: r, Thread: st.Thread.Thread},
				Overrides: ov,
			})
		}
	}
	return out, nil
}

// rewriteStage deep-copies a stage body with queue and slot renumbering.
func rewriteStage(body []ir.Stmt, qBase int, slotMap []int) []ir.Stmt {
	fixRval := func(r ir.Rval) ir.Rval {
		switch r := r.(type) {
		case *ir.RvalLoad:
			c := *r
			c.Slot = slotMap[r.Slot]
			return &c
		case *ir.RvalDeq:
			c := *r
			c.Q += qBase
			return &c
		}
		return r
	}
	var walk func(list []ir.Stmt) []ir.Stmt
	walk = func(list []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, 0, len(list))
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Assign:
				c := *s
				c.Src = fixRval(s.Src)
				out = append(out, &c)
			case *ir.Store:
				c := *s
				c.Slot = slotMap[s.Slot]
				out = append(out, &c)
			case *ir.If:
				c := *s
				c.Then = walk(s.Then)
				c.Else = walk(s.Else)
				out = append(out, &c)
			case *ir.Loop:
				c := *s
				c.Pre = walk(s.Pre)
				c.Body = walk(s.Body)
				out = append(out, &c)
			case *ir.Enq:
				c := *s
				c.Q += qBase
				out = append(out, &c)
			case *ir.EnqCtrl:
				c := *s
				c.Q += qBase
				out = append(out, &c)
			case *ir.SetHandler:
				c := *s
				c.Q += qBase
				out = append(out, &c)
			case *ir.Swap:
				c := *s
				c.A = slotMap[s.A]
				c.B = slotMap[s.B]
				out = append(out, &c)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return walk(body)
}
