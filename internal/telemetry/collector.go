// Package telemetry turns timing-simulator events into three artifacts the
// paper's evaluation is built on: interval time-series (queue occupancy,
// cycle-breakdown deltas, accelerator load pressure), source-attributed
// stall profiles ("which line burned the cycles"), and Chrome trace_event
// JSON for visual stage-overlap inspection in chrome://tracing / Perfetto.
//
// A Collector implements sim.Probe. Install it with Machine.Probe (or via
// core.Budget.Probe) before the timing phase; with no probe installed the
// simulator pays one nil test per hook and produces bit-identical Stats.
// Everything the Collector records is a pure function of the deterministic
// simulation, so exports are byte-identical across runs.
package telemetry

import (
	"phloem/internal/sim"
)

// stageInfo captures what the collector needs about one stage thread.
type stageInfo struct {
	name  string
	core  int
	slot  int
	lines []int32 // per-PC source lines (nil: untracked program)
}

// raInfo captures one reference accelerator.
type raInfo struct {
	name string
	core int
}

// span is a closed activity interval of one thread, in cycles.
type span struct {
	thread int
	state  sim.StallClass
	start  uint64
	end    uint64
}

// instant is a point event (handler fire) on one thread.
type instant struct {
	thread int
	pc     int
	at     uint64
}

// queueTrack integrates one queue's occupancy over the current sample
// window (time-weighted, so the average is exact, not event-weighted).
type queueTrack struct {
	cur      int
	min, max int
	lastAt   uint64
	winStart uint64
	integral uint64 // sum of len*cycles since winStart
}

func (qt *queueTrack) observe(ln int, now uint64) {
	if now > qt.lastAt {
		qt.integral += uint64(qt.cur) * (now - qt.lastAt)
		qt.lastAt = now
	}
	qt.cur = ln
	if ln < qt.min {
		qt.min = ln
	}
	if ln > qt.max {
		qt.max = ln
	}
}

// close finishes the window at cycle now and returns (min, max, avg).
func (qt *queueTrack) close(now uint64) (int, int, float64) {
	if now > qt.lastAt {
		qt.integral += uint64(qt.cur) * (now - qt.lastAt)
		qt.lastAt = now
	}
	mn, mx := qt.min, qt.max
	avg := float64(qt.cur)
	if width := now - qt.winStart; width > 0 {
		avg = float64(qt.integral) / float64(width)
	}
	qt.winStart = now
	qt.integral = 0
	qt.min, qt.max = qt.cur, qt.cur
	return mn, mx, avg
}

// siteKey identifies one attribution site: a stage-program PC, or the
// unattributed bucket (thread == -1).
type siteKey struct {
	thread int
	pc     int
}

// siteCount accumulates cycles and micro-ops at one site.
type siteCount struct {
	issue   uint64
	backend uint64
	queue   uint64
	other   uint64
	uops    uint64
}

// Collector records one timing run. Use one Collector per run; Reset is
// deliberately absent so stale state cannot leak between candidates.
type Collector struct {
	stages []stageInfo
	ras    []raInfo
	queues []string

	// time-series
	rows []SampleRow
	qt   []queueTrack
	raIn []int // current in-flight per RA
	prev sim.Stats

	// profile
	sites map[siteKey]*siteCount

	// chrome trace
	spans     []span
	instants  []instant
	open      []openSpan
	handlerN  uint64
	finalStat *sim.Stats
	endCycle  uint64
	meta      map[string]any
}

type openSpan struct {
	state sim.StallClass
	start uint64
	live  bool
	done  bool
}

// NewCollector returns an empty collector ready to install as a Probe.
func NewCollector() *Collector {
	return &Collector{sites: map[siteKey]*siteCount{}}
}

var _ sim.Probe = (*Collector)(nil)

// BeginTiming implements sim.Probe.
func (c *Collector) BeginTiming(m *sim.Machine) {
	c.stages = c.stages[:0]
	for _, st := range m.Stages {
		c.stages = append(c.stages, stageInfo{
			name:  st.Prog.Name,
			core:  st.Thread.Core,
			slot:  st.Thread.Thread,
			lines: st.Prog.Lines,
		})
	}
	for _, ra := range m.RAs {
		c.ras = append(c.ras, raInfo{name: ra.Name, core: ra.Core})
	}
	for _, q := range m.Queues {
		c.queues = append(c.queues, q.Name)
	}
	c.qt = make([]queueTrack, len(m.Queues))
	c.raIn = make([]int, len(m.RAs))
	c.open = make([]openSpan, len(m.Stages))
}

// Sample implements sim.Probe: it closes the current window into a row.
func (c *Collector) Sample(now uint64, snap *sim.Stats) {
	c.addRow(now, snap)
}

func (c *Collector) addRow(now uint64, snap *sim.Stats) {
	row := SampleRow{Cycle: now, Delta: snap.Delta(c.prev)}
	for q := range c.qt {
		mn, mx, avg := c.qt[q].close(now)
		row.Queues = append(row.Queues, QueueSample{Min: mn, Max: mx, Avg: avg, Len: c.qt[q].cur})
	}
	row.RAInflight = append(row.RAInflight, c.raIn...)
	c.rows = append(c.rows, row)
	c.prev = *snap
	c.prev.PerCore = append([]sim.Breakdown(nil), snap.PerCore...)
}

// QueueLen implements sim.Probe.
func (c *Collector) QueueLen(q, ln int, now uint64) {
	c.qt[q].observe(ln, now)
}

// ThreadState implements sim.Probe: consecutive identical states extend the
// open span; a change closes it.
func (c *Collector) ThreadState(thread int, state sim.StallClass, now uint64) {
	o := &c.open[thread]
	if !o.live {
		o.state, o.start, o.live = state, now, true
		return
	}
	if o.state == state {
		return
	}
	c.spans = append(c.spans, span{thread: thread, state: o.state, start: o.start, end: now})
	o.state, o.start = state, now
}

// ThreadDone implements sim.Probe.
func (c *Collector) ThreadDone(thread int, now uint64) {
	o := &c.open[thread]
	if o.live {
		c.spans = append(c.spans, span{thread: thread, state: o.state, start: o.start, end: now})
		o.live = false
	}
	o.done = true
}

// Issued implements sim.Probe.
func (c *Collector) Issued(thread, pc int, now uint64) {
	c.site(thread, pc).uops++
}

// CoreCycles implements sim.Probe. Unattributable cycles (thread == -1) land
// in a dedicated bucket so profile totals still reconcile with Stats.
func (c *Collector) CoreCycles(core int, class sim.StallClass, thread, pc int, weight uint64) {
	s := c.site(thread, pc)
	switch class {
	case sim.ClassIssue:
		s.issue += weight
	case sim.ClassBackend:
		s.backend += weight
	case sim.ClassQueue:
		s.queue += weight
	default:
		s.other += weight
	}
}

func (c *Collector) site(thread, pc int) *siteCount {
	k := siteKey{thread: thread, pc: pc}
	s := c.sites[k]
	if s == nil {
		s = &siteCount{}
		c.sites[k] = s
	}
	return s
}

// HandlerFire implements sim.Probe.
func (c *Collector) HandlerFire(thread, pc int, now uint64) {
	c.handlerN++
	c.instants = append(c.instants, instant{thread: thread, pc: pc, at: now})
}

// RAInflight implements sim.Probe.
func (c *Collector) RAInflight(ra, inflight, loads int, now uint64) {
	c.raIn[ra] = inflight
}

// EndTiming implements sim.Probe: it closes open spans and the final partial
// sample window.
func (c *Collector) EndTiming(stats *sim.Stats) {
	c.finalStat = stats
	c.endCycle = stats.Cycles
	for i := range c.open {
		o := &c.open[i]
		if o.live {
			c.spans = append(c.spans, span{thread: i, state: o.state, start: o.start, end: stats.Cycles})
			o.live = false
		}
	}
	// Final partial window (also the only row when sampling is off).
	c.addRow(stats.Cycles, stats)
}

// Final returns the run's end-of-run Stats (nil before EndTiming).
func (c *Collector) Final() *sim.Stats { return c.finalStat }

// SetMeta stamps a key into the Chrome trace's otherData block. The search
// layer uses it to label per-candidate sim traces (made via
// core.Options.CandidateProbe) with the candidate fingerprint, so a sim
// trace can be joined to its span in the search-level trace, which carries
// the same fp in its candidate span args.
func (c *Collector) SetMeta(key string, value any) {
	if c.meta == nil {
		c.meta = map[string]any{}
	}
	c.meta[key] = value
}
