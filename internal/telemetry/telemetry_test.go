package telemetry_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/telemetry"
	"phloem/internal/workloads"
)

// bfsSetup compiles the BFS benchmark's static pipeline once for the whole
// test file; every test instantiates its own machine from it.
var bfsSetup = sync.OnceValues(func() (*bfsEnv, error) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		return nil, err
	}
	prog, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		return nil, err
	}
	res, err := core.Compile(prog, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &bfsEnv{bench: bench, pipe: res.Pipeline}, nil
})

type bfsEnv struct {
	bench *workloads.Benchmark
	pipe  *pipeline.Pipeline
}

// runBFS executes the BFS pipeline on its smallest test input with the given
// probe installed (nil: unobserved run) and returns the run's Stats.
func runBFS(t *testing.T, probe sim.Probe, interval uint64) *sim.Stats {
	t.Helper()
	env, err := bfsSetup()
	if err != nil {
		t.Fatalf("BFS setup: %v", err)
	}
	in := env.bench.Test[0]
	inst, err := pipeline.Instantiate(env.pipe, arch.DefaultConfig(1), in.Bind())
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	inst.Machine.Probe = probe
	inst.Machine.Cfg.TelemetryInterval = interval
	st, err := inst.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := in.Verify(inst); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return st
}

// TestProbeDoesNotPerturbStats: installing a collector must not change any
// timing result — the acceptance bar for "observation only".
func TestProbeDoesNotPerturbStats(t *testing.T) {
	bare := runBFS(t, nil, 0)
	col := telemetry.NewCollector()
	observed := runBFS(t, col, 500)
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("probe changed Stats:\nbare:     %+v\nobserved: %+v", bare, observed)
	}
}

// TestProfileReconciles: the profile's cycle totals must equal the run's
// breakdown exactly — every classified core-cycle is attributed somewhere.
func TestProfileReconciles(t *testing.T) {
	col := telemetry.NewCollector()
	st := runBFS(t, col, 0)
	p := col.Profile()
	if got, want := p.Total, st.TotalBreakdown(); got != want {
		t.Errorf("Profile.Total = %+v, want Stats.TotalBreakdown() = %+v", got, want)
	}
	var lines sim.Breakdown
	for _, l := range p.Lines {
		lines.Add(sim.Breakdown{Issue: l.Issue, Backend: l.Backend, Queue: l.Queue, Other: l.Other})
	}
	lines.Add(p.Unattributed)
	if lines != p.Total {
		t.Errorf("per-line sums %+v != Total %+v", lines, p.Total)
	}
	if got := col.Final(); got == nil || got.Cycles != st.Cycles {
		t.Errorf("Final() = %+v, want cycles %d", got, st.Cycles)
	}
}

func TestProfileRender(t *testing.T) {
	p := &telemetry.Profile{
		Lines: []telemetry.LineStat{
			{Line: 3, Queue: 90, Issue: 10, Uops: 40, Stages: []string{"k.stage0"}},
			{Line: 0, Backend: 5, Issue: 2, Uops: 9, Stages: []string{"k.stage1"}},
		},
		Total:        sim.Breakdown{Issue: 12, Backend: 5, Queue: 90, Other: 3},
		Unattributed: sim.Breakdown{Other: 3},
	}
	out := p.Render(10, "line one\nline two\n  while (work) pop();\n")
	for _, want := range []string{
		"hot lines: 110 core-cycles observed (12 issue, 98 stall)",
		"line 3",
		"|   while (work) pop();",
		"generated",
		"unattributed: 3 cycles",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Top-k cutoff: k=1 shows only the hottest line.
	if out := p.Render(1, ""); strings.Contains(out, "generated") {
		t.Errorf("k=1 render shows second line:\n%s", out)
	}
}

// TestSeriesAccounting: interval rows must tile the run — per-row deltas sum
// to the end-of-run counters, rows close at interval boundaries, and queue
// window stats are internally consistent.
func TestSeriesAccounting(t *testing.T) {
	const interval = 500
	col := telemetry.NewCollector()
	st := runBFS(t, col, interval)
	s := col.Series()
	if len(s.Stages) == 0 || len(s.Queues) == 0 || len(s.RAs) == 0 {
		t.Fatalf("series shape: stages=%v queues=%v ras=%v", s.Stages, s.Queues, s.RAs)
	}
	if len(s.Rows) < 2 {
		t.Fatalf("expected multiple sample rows, got %d (cycles=%d)", len(s.Rows), st.Cycles)
	}
	// Samples fire at the first simulated cycle at or after each interval
	// boundary (idle fast-forward can skip over boundaries), so rows are
	// strictly increasing and there is at most one row per boundary.
	if max := int(st.Cycles/interval) + 1; len(s.Rows) > max {
		t.Errorf("%d rows for a %d-cycle run at interval %d (max %d)",
			len(s.Rows), st.Cycles, interval, max)
	}
	var cyc, issued, raLoads uint64
	for i, r := range s.Rows {
		cyc += r.Delta.Cycles
		issued += r.Delta.Issued
		raLoads += r.Delta.RALoads
		if i > 0 && r.Cycle <= s.Rows[i-1].Cycle {
			t.Errorf("row %d closes at cycle %d, not after row %d (%d)",
				i, r.Cycle, i-1, s.Rows[i-1].Cycle)
		}
		if len(r.Queues) != len(s.Queues) || len(r.RAInflight) != len(s.RAs) {
			t.Fatalf("row %d shape mismatch", i)
		}
		for q, qs := range r.Queues {
			if qs.Min > qs.Max || qs.Avg < float64(qs.Min) || qs.Avg > float64(qs.Max) {
				t.Errorf("row %d queue %d inconsistent window: %+v", i, q, qs)
			}
		}
	}
	if s.Rows[len(s.Rows)-1].Cycle != st.Cycles {
		t.Errorf("last row closes at %d, want end cycle %d", s.Rows[len(s.Rows)-1].Cycle, st.Cycles)
	}
	if cyc != st.Cycles || issued != st.Issued || raLoads != st.RALoads {
		t.Errorf("row deltas sum to cycles=%d issued=%d raloads=%d, want %d/%d/%d",
			cyc, issued, raLoads, st.Cycles, st.Issued, st.RALoads)
	}
}

func TestSeriesExports(t *testing.T) {
	col := telemetry.NewCollector()
	runBFS(t, col, 1000)
	s := col.Series()

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != len(s.Rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", len(lines), len(s.Rows))
	}
	if !strings.HasPrefix(lines[0], "cycle,dcycles,dissued,") {
		t.Errorf("CSV header: %q", lines[0])
	}
	cols := strings.Count(lines[0], ",")
	for i, ln := range lines[1:] {
		if strings.Count(ln, ",") != cols {
			t.Errorf("CSV row %d has ragged columns: %q", i, ln)
		}
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back telemetry.Series
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("series JSON does not parse: %v", err)
	}
	if len(back.Rows) != len(s.Rows) || !reflect.DeepEqual(back.Queues, s.Queues) {
		t.Errorf("JSON round-trip lost data: %d rows, queues %v", len(back.Rows), back.Queues)
	}
}

// TestChromeTraceWellFormed: the export must parse as trace_event JSON with
// one named track per stage and per RA, and every span within the run.
func TestChromeTraceWellFormed(t *testing.T) {
	col := telemetry.NewCollector()
	st := runBFS(t, col, 1000)
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	s := col.Series()
	stageTracks, raTracks, spans, instants := 0, 0, 0, 0
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				continue
			}
			name, _ := e.Args["name"].(string)
			switch {
			case strings.HasPrefix(name, "stage "):
				stageTracks++
			case strings.HasPrefix(name, "RA "):
				raTracks++
			default:
				t.Errorf("unclassified thread track %q", name)
			}
		case "X":
			spans++
			if e.Ts+e.Dur > st.Cycles+1 {
				t.Errorf("span %q ends at %d, past end cycle %d", e.Name, e.Ts+e.Dur, st.Cycles)
			}
			if e.Dur == 0 {
				t.Errorf("zero-duration span %q at %d", e.Name, e.Ts)
			}
		case "i":
			instants++
		}
		if e.Pid <= 0 {
			t.Errorf("event %q has pid %d", e.Name, e.Pid)
		}
	}
	if stageTracks != len(s.Stages) || raTracks != len(s.RAs) {
		t.Errorf("tracks: %d stage + %d RA, want %d + %d",
			stageTracks, raTracks, len(s.Stages), len(s.RAs))
	}
	if spans == 0 {
		t.Error("no activity spans")
	}
	if uint64(instants) != st.HandlerFires {
		t.Errorf("%d handler instants, want %d", instants, st.HandlerFires)
	}
	if cyc, ok := tr.OtherData["cycles"].(float64); !ok || uint64(cyc) != st.Cycles {
		t.Errorf("otherData cycles = %v, want %d", tr.OtherData["cycles"], st.Cycles)
	}
}

// TestExportsDeterministic: two identical runs must export byte-identical
// artifacts — the guard that telemetry is a pure function of the simulation.
func TestExportsDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		col := telemetry.NewCollector()
		runBFS(t, col, 500)
		var csv, chrome bytes.Buffer
		if err := col.Series().WriteCSV(&csv); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		if err := col.WriteChromeTrace(&chrome); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return csv.String(), chrome.String(), col.Profile().Render(10, "")
	}
	csv1, chrome1, prof1 := render()
	csv2, chrome2, prof2 := render()
	if csv1 != csv2 {
		t.Error("CSV series differs between identical runs")
	}
	if chrome1 != chrome2 {
		t.Error("chrome trace differs between identical runs")
	}
	if prof1 != prof2 {
		t.Error("profile report differs between identical runs")
	}
}
