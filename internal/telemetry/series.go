package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"phloem/internal/sim"
)

// QueueSample summarizes one queue's occupancy over one sample window.
type QueueSample struct {
	// Min/Max bound the occupancy observed in the window; Avg is the
	// time-weighted mean; Len is the occupancy at the window's close.
	Min int     `json:"min"`
	Max int     `json:"max"`
	Avg float64 `json:"avg"`
	Len int     `json:"len"`
}

// SampleRow is one interval of the time-series: the cycle it closed at, the
// Stats counters accumulated since the previous row, and instantaneous
// queue/RA state.
type SampleRow struct {
	Cycle uint64 `json:"cycle"`
	// Delta holds per-interval counter increments (cycles, issued uops,
	// per-core breakdown, cache events, queue stalls, RA loads).
	Delta      sim.Stats     `json:"delta"`
	Queues     []QueueSample `json:"queues"`
	RAInflight []int         `json:"raInflight"`
}

// Series is the exported interval time-series of one run.
type Series struct {
	Stages []string    `json:"stages"`
	Queues []string    `json:"queues"`
	RAs    []string    `json:"ras"`
	Rows   []SampleRow `json:"rows"`
}

// Series exports the collected time-series. The last row covers the final
// partial window, closed at the run's end cycle.
func (c *Collector) Series() *Series {
	s := &Series{Rows: c.rows}
	for _, st := range c.stages {
		s.Stages = append(s.Stages, st.name)
	}
	s.Queues = append(s.Queues, c.queues...)
	for _, ra := range c.ras {
		s.RAs = append(s.RAs, ra.name)
	}
	return s
}

// WriteJSON writes the series as one indented JSON document.
func (s *Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes one row per sample window: cycle, interval-wide counters,
// then min/avg/max per queue and in-flight count per RA. Columns are fixed
// by the machine shape, so rows align across a run.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "cycle,dcycles,dissued,dissue,dbackend,dqueue,dother,dl1miss,dmemacc,dempty,dfull,draloads"); err != nil {
		return err
	}
	for _, q := range s.Queues {
		if _, err := fmt.Fprintf(w, ",q:%s:min,q:%s:avg,q:%s:max", q, q, q); err != nil {
			return err
		}
	}
	for _, ra := range s.RAs {
		if _, err := fmt.Fprintf(w, ",ra:%s:inflight", ra); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, r := range s.Rows {
		tb := r.Delta.TotalBreakdown()
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			r.Cycle, r.Delta.Cycles, r.Delta.Issued,
			tb.Issue, tb.Backend, tb.Queue, tb.Other,
			r.Delta.Cache.L1Misses, r.Delta.Cache.MemAccesses,
			r.Delta.QueueEmptyStalls, r.Delta.QueueFullStalls, r.Delta.RALoads); err != nil {
			return err
		}
		for _, q := range r.Queues {
			if _, err := fmt.Fprintf(w, ",%d,%.2f,%d", q.Min, q.Avg, q.Max); err != nil {
				return err
			}
		}
		for _, n := range r.RAInflight {
			if _, err := fmt.Fprintf(w, ",%d", n); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
