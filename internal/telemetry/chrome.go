package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"phloem/internal/sim"
)

// chromeEvent is one entry of the Chrome trace_event format ("JSON array
// format" with a traceEvents wrapper). Cycles are written as microseconds
// 1:1, so the tracing UI's time axis reads directly in cycles.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// Track numbering: one process per core (pid = core+1), one thread track
// per stage (tid = stage index+1) and per RA (tid = raTidBase+RA index).
const raTidBase = 1001

// WriteChromeTrace writes the run as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto: one track per stage thread (activity spans
// classified run/queue/backend/other, handler-fire instants) and one
// counter track per RA (in-flight window occupancy, sampled at interval
// boundaries). Output is deterministic for a given run.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{OtherData: map[string]any{
		"cycles":       c.endCycle,
		"handlerFires": c.handlerN,
	}}
	for k, v := range c.meta {
		tr.OtherData[k] = v
	}
	ev := func(e chromeEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }

	// Metadata: name processes (cores) and thread tracks (stages, RAs).
	seenCore := map[int]bool{}
	proc := func(core int) {
		if !seenCore[core] {
			seenCore[core] = true
			ev(chromeEvent{Name: "process_name", Ph: "M", Pid: core + 1,
				Args: map[string]any{"name": fmt.Sprintf("core %d", core)}})
		}
	}
	for i, st := range c.stages {
		proc(st.core)
		ev(chromeEvent{Name: "thread_name", Ph: "M", Pid: st.core + 1, Tid: i + 1,
			Args: map[string]any{"name": fmt.Sprintf("stage %s (t%d)", st.name, st.slot)}})
	}
	for j, ra := range c.ras {
		proc(ra.core)
		ev(chromeEvent{Name: "thread_name", Ph: "M", Pid: ra.core + 1, Tid: raTidBase + j,
			Args: map[string]any{"name": fmt.Sprintf("RA %s", ra.name)}})
	}

	// Stage activity spans. Chrome drops zero-duration "X" events, so a
	// one-cycle state shows as dur=1.
	for _, sp := range c.spans {
		dur := sp.end - sp.start
		if dur == 0 {
			dur = 1
		}
		st := c.stages[sp.thread]
		name := "run"
		if sp.state != sim.ClassIssue {
			name = sp.state.String() + " stall"
		}
		ev(chromeEvent{Name: name, Ph: "X", Cat: "stage",
			Pid: st.core + 1, Tid: sp.thread + 1, Ts: sp.start, Dur: dur})
	}

	// Handler-fire instants on the firing stage's track.
	for _, in := range c.instants {
		st := c.stages[in.thread]
		ev(chromeEvent{Name: "handler fire", Ph: "i", S: "t", Cat: "handler",
			Pid: st.core + 1, Tid: in.thread + 1, Ts: in.at,
			Args: map[string]any{"pc": in.pc}})
	}

	// RA in-flight counters from the sampled time-series.
	for _, row := range c.rows {
		for j, n := range row.RAInflight {
			ra := c.ras[j]
			ev(chromeEvent{Name: "RA " + ra.name + " inflight", Ph: "C",
				Pid: ra.core + 1, Tid: raTidBase + j, Ts: row.Cycle,
				Args: map[string]any{"inflight": n}})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}
