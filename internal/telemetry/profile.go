package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"phloem/internal/sim"
)

// LineStat aggregates attributed cycles for one kernel source line across
// every stage-program PC that was lowered from it.
type LineStat struct {
	// Line is the 1-based kernel source line; 0 collects compiler-generated
	// glue (queue traffic, dispatch control flow, prologue constants).
	Line int `json:"line"`
	// Issue counts cycles where a micro-op from this line led the core's
	// issue group; Backend/Queue/Other count stall cycles whose oldest
	// blocked micro-op came from this line.
	Issue   uint64 `json:"issue"`
	Backend uint64 `json:"backend"`
	Queue   uint64 `json:"queue"`
	Other   uint64 `json:"other"`
	// Uops counts micro-ops issued from this line.
	Uops uint64 `json:"uops"`
	// Stages names the stage programs that contributed (sorted, deduped).
	Stages []string `json:"stages"`
}

// Stalls returns the summed stall cycles (everything but issue).
func (l *LineStat) Stalls() uint64 { return l.Backend + l.Queue + l.Other }

// Profile is the source-attributed cycle profile of one run.
type Profile struct {
	// Lines is sorted by stall cycles, descending (line number breaks ties).
	Lines []LineStat `json:"lines"`
	// Unattributed holds observed core cycles for which no blocked or
	// issuing micro-op was identifiable (e.g. empty instruction windows).
	Unattributed sim.Breakdown `json:"unattributed"`
	// Total sums every attributed and unattributed cycle. It reconciles
	// exactly with Stats.TotalBreakdown() of the same run.
	Total sim.Breakdown `json:"total"`
}

// Profile aggregates the per-PC attribution into per-source-line statistics.
func (c *Collector) Profile() *Profile {
	p := &Profile{}
	byLine := map[int]*LineStat{}
	stageSets := map[int]map[string]bool{}
	for k, s := range c.sites {
		p.Total.Issue += s.issue
		p.Total.Backend += s.backend
		p.Total.Queue += s.queue
		p.Total.Other += s.other
		if k.thread < 0 {
			p.Unattributed.Issue += s.issue
			p.Unattributed.Backend += s.backend
			p.Unattributed.Queue += s.queue
			p.Unattributed.Other += s.other
			continue
		}
		st := c.stages[k.thread]
		line := 0
		if k.pc >= 0 && k.pc < len(st.lines) {
			line = int(st.lines[k.pc])
		}
		ls := byLine[line]
		if ls == nil {
			ls = &LineStat{Line: line}
			byLine[line] = ls
			stageSets[line] = map[string]bool{}
		}
		ls.Issue += s.issue
		ls.Backend += s.backend
		ls.Queue += s.queue
		ls.Other += s.other
		ls.Uops += s.uops
		stageSets[line][st.name] = true
	}
	for line, ls := range byLine {
		for name := range stageSets[line] {
			ls.Stages = append(ls.Stages, name)
		}
		sort.Strings(ls.Stages)
		p.Lines = append(p.Lines, *ls)
	}
	sort.Slice(p.Lines, func(i, j int) bool {
		si, sj := p.Lines[i].Stalls(), p.Lines[j].Stalls()
		if si != sj {
			return si > sj
		}
		return p.Lines[i].Line < p.Lines[j].Line
	})
	return p
}

// Render writes the top-k hot-lines report. When source is non-empty it is
// the kernel source text; each reported line is then annotated with its
// source text. Lines with zero stall cycles are omitted from the top-k list
// (their issue cycles still show in the totals).
func (p *Profile) Render(k int, source string) string {
	var srcLines []string
	if source != "" {
		srcLines = strings.Split(source, "\n")
	}
	var sb strings.Builder
	tot := p.Total.Total()
	stallTot := p.Total.Backend + p.Total.Queue + p.Total.Other
	fmt.Fprintf(&sb, "hot lines: %d core-cycles observed (%d issue, %d stall)\n",
		tot, p.Total.Issue, stallTot)
	pct := func(v uint64) float64 {
		if tot == 0 {
			return 0
		}
		return 100 * float64(v) / float64(tot)
	}
	shown := 0
	for _, l := range p.Lines {
		if shown >= k || l.Stalls() == 0 {
			break
		}
		shown++
		where := fmt.Sprintf("line %d", l.Line)
		if l.Line == 0 {
			where = "generated"
		}
		fmt.Fprintf(&sb, "%2d. %-10s %10d stall (%5.1f%%)  queue=%d backend=%d other=%d  issue=%d uops=%d  [%s]\n",
			shown, where, l.Stalls(), pct(l.Stalls()),
			l.Queue, l.Backend, l.Other, l.Issue, l.Uops,
			strings.Join(l.Stages, ", "))
		if l.Line > 0 && l.Line <= len(srcLines) {
			fmt.Fprintf(&sb, "    | %s\n", strings.TrimRight(srcLines[l.Line-1], " \t"))
		}
	}
	if shown == 0 {
		sb.WriteString("(no stall cycles attributed)\n")
	}
	if u := p.Unattributed.Total(); u > 0 {
		fmt.Fprintf(&sb, "unattributed: %d cycles (issue=%d backend=%d queue=%d other=%d)\n",
			u, p.Unattributed.Issue, p.Unattributed.Backend,
			p.Unattributed.Queue, p.Unattributed.Other)
	}
	return sb.String()
}
