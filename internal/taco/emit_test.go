package taco

import (
	"strings"
	"testing"
)

func TestEmitAllKernelsParseable(t *testing.T) {
	for _, k := range Kernels() {
		src, err := Emit(k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !strings.Contains(src, "#pragma phloem") {
			t.Errorf("%s: emitted kernel must carry the phloem pragma", k)
		}
		if !strings.Contains(src, "restrict") {
			t.Errorf("%s: emitted arrays must be restrict-qualified", k)
		}
	}
	if _, err := Emit("nope"); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestEmitDPAddsPartitioning(t *testing.T) {
	for _, k := range Kernels() {
		src, err := EmitDP(k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !strings.Contains(src, "tid") || !strings.Contains(src, "nthreads") {
			t.Errorf("%s DP: missing thread parameters:\n%s", k, src)
		}
		if strings.Contains(src, "#pragma phloem") {
			t.Errorf("%s DP: data-parallel kernels are not phloem-compiled", k)
		}
	}
}

func TestExpressions(t *testing.T) {
	for _, k := range Kernels() {
		if Expression(k) == "" {
			t.Errorf("%s: missing expression", k)
		}
	}
	if Expression("nope") != "" {
		t.Error("unknown kernel expression should be empty")
	}
}
