package taco_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

func TestTacoKernelsSerialAndPhloem(t *testing.T) {
	m := matrix.Scattered("scircuit", 400, 3, 51)
	for _, k := range taco.Kernels() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			src, err := taco.Emit(k)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := workloads.CompileSerial(src)
			if err != nil {
				t.Fatalf("compile emitted kernel: %v", err)
			}
			inst, err := pipeline.Instantiate(pipeline.NewSerial(serial),
				arch.DefaultConfig(1), taco.Bindings(k, m, 7))
			if err != nil {
				t.Fatal(err)
			}
			sc, err := inst.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := taco.Verify(k, m, 7, inst); err != nil {
				t.Fatalf("serial: %v", err)
			}

			// The paper uses the static flow for Taco kernels (Sec. VI-C).
			res, err := core.Compile(serial, core.DefaultOptions())
			if err != nil {
				t.Fatalf("phloem: %v", err)
			}
			inst2, err := pipeline.Instantiate(res.Pipeline,
				arch.DefaultConfig(1), taco.Bindings(k, m, 7))
			if err != nil {
				t.Fatalf("instantiate: %v\n%s", err, res.Pipeline.DumpStages())
			}
			pc, err := inst2.Run()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, res.Pipeline.DumpStages())
			}
			if err := taco.Verify(k, m, 7, inst2); err != nil {
				t.Fatalf("phloem: %v", err)
			}
			t.Logf("%s: serial=%d phloem=%d (%.2fx) [%s]", k, sc.Cycles, pc.Cycles,
				float64(sc.Cycles)/float64(pc.Cycles), res.Pipeline.Description)
		})
	}
}

func TestTacoDataParallel(t *testing.T) {
	m := matrix.Banded("pwtk", 300, 10, 50, 54)
	for _, k := range taco.Kernels() {
		src, err := taco.EmitDP(k)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := workloads.BuildDataParallel(src, 4, 4)
		if err != nil {
			t.Fatalf("%s dp compile: %v", k, err)
		}
		b := taco.Bindings(k, m, 9)
		b.Scalars["tid"] = 0
		b.Scalars["nthreads"] = 4
		inst, err := pipeline.Instantiate(dp, arch.DefaultConfig(1), b)
		if err != nil {
			t.Fatal(err)
		}
		st, err := inst.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := taco.Verify(k, m, 9, inst); err != nil {
			t.Fatalf("%s dp: %v", k, err)
		}
		t.Logf("%s dp: %d cycles", k, st.Cycles)
	}
}
