// Package taco is a miniature stand-in for the Tensor Algebra Compiler
// (Taco) used in Sec. IV-D: it accepts a small family of sparse tensor
// expressions and emits kernels in Phloem's C subset, structured the way
// Taco lowers CSR expressions (position loops over compressed dimensions,
// dense loops over dense ones). The emitted code already satisfies Phloem's
// input requirements — restrict-qualified arrays, single kernel — so the
// Phloem pass sequence applies to it unchanged.
package taco

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"phloem/internal/matrix"
	"phloem/internal/pipeline"
)

// Kernel names the supported tensor expressions (the paper's Taco suite).
type Kernel string

const (
	// SpMV evaluates y(i) = A(i,j) * x(j).
	SpMV Kernel = "spmv"
	// SDDMM evaluates A = B ∘ (C D) with dense C, D (K-dimensional inner loop).
	SDDMM Kernel = "sddmm"
	// MTMul evaluates y = alpha*A^T*x + beta*z.
	MTMul Kernel = "mtmul"
	// Residual evaluates y = b - A*x.
	Residual Kernel = "residual"
)

// Kernels lists the supported kernels in the paper's order.
func Kernels() []Kernel { return []Kernel{SpMV, SDDMM, MTMul, Residual} }

// Expression returns the tensor expression the kernel implements.
func Expression(k Kernel) string {
	switch k {
	case SpMV:
		return "y(i) = A(i,j) * x(j)"
	case SDDMM:
		return "A(i,j) = B(i,j) * C(i,k) * D(k,j)"
	case MTMul:
		return "y(j) = alpha * A(i,j) * x(i) + beta * z(j)"
	case Residual:
		return "y(i) = b(i) - A(i,j) * x(j)"
	}
	return ""
}

// Emit generates the serial C-subset kernel for the expression. K is the
// dense dimension for SDDMM (ignored elsewhere).
func Emit(k Kernel) (string, error) {
	switch k {
	case SpMV:
		return `
#pragma phloem
void taco_spmv(int* restrict rows, int* restrict cols, float* restrict vals,
               float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int p0 = rows[i];
    int p1 = rows[i + 1];
    for (int p = p0; p < p1; p = p + 1) {
      int j = cols[p];
      float av = vals[p];
      float xv = x[j];
      acc = acc + av * xv;
    }
    y[i] = acc;
  }
}
`, nil
	case SDDMM:
		return `
#pragma phloem
void taco_sddmm(int* restrict rows, int* restrict cols, float* restrict bvals,
                float* restrict avals, float* restrict c, float* restrict d,
                int n, int kdim) {
  for (int i = 0; i < n; i = i + 1) {
    int p0 = rows[i];
    int p1 = rows[i + 1];
    int cbase = i * kdim;
    for (int p = p0; p < p1; p = p + 1) {
      int j = cols[p];
      int dbase = j * kdim;
      float acc = 0.0;
      for (int k = 0; k < kdim; k = k + 1) {
        float cv = c[cbase + k];
        float dv = d[dbase + k];
        acc = acc + cv * dv;
      }
      float bv = bvals[p];
      avals[p] = bv * acc;
    }
  }
}
`, nil
	case MTMul:
		// Phase 1 scales z into y; phase 2 scatter-adds alpha*A^T*x.
		return `
#pragma phloem
void taco_mtmul(int* restrict rows, int* restrict cols, float* restrict vals,
                float* restrict x, float* restrict z, float* restrict y,
                int n, float alpha, float beta) {
  for (int j = 0; j < n; j = j + 1) {
    float zv = z[j];
    y[j] = beta * zv;
  }
  for (int i = 0; i < n; i = i + 1) {
    float xi = x[i];
    float axi = alpha * xi;
    int p0 = rows[i];
    int p1 = rows[i + 1];
    for (int p = p0; p < p1; p = p + 1) {
      int j = cols[p];
      float av = vals[p];
      y[j] = y[j] + av * axi;
    }
  }
}
`, nil
	case Residual:
		return `
#pragma phloem
void taco_residual(int* restrict rows, int* restrict cols, float* restrict vals,
                   float* restrict x, float* restrict b, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int p0 = rows[i];
    int p1 = rows[i + 1];
    for (int p = p0; p < p1; p = p + 1) {
      int j = cols[p];
      float av = vals[p];
      float xv = x[j];
      acc = acc + av * xv;
    }
    float bv = b[i];
    y[i] = bv - acc;
  }
}
`, nil
	}
	return "", fmt.Errorf("taco: unknown kernel %q", k)
}

// EmitDP generates the data-parallel variant (rows partitioned by thread).
func EmitDP(k Kernel) (string, error) {
	src, err := Emit(k)
	if err != nil {
		return "", err
	}
	// Mechanical transformation mirroring taco's -parallelize flag: add
	// tid/nthreads parameters and partition the outer i loop. MTMul's
	// scatter phase keeps a private accumulation region per thread like
	// PRD would; for simplicity the DP variant partitions the *output*
	// (column) ranges, so writes stay private.
	switch k {
	case MTMul:
		return `
void taco_mtmul_dp(int* restrict rows, int* restrict cols, float* restrict vals,
                   float* restrict x, float* restrict z, float* restrict y,
                   int n, float alpha, float beta, int tid, int nthreads) {
  int lo = tid * n / nthreads;
  int hi = (tid + 1) * n / nthreads;
  for (int j = lo; j < hi; j = j + 1) {
    float zv = z[j];
    y[j] = beta * zv;
  }
  barrier();
  for (int i = 0; i < n; i = i + 1) {
    float xi = x[i];
    float axi = alpha * xi;
    int p0 = rows[i];
    int p1 = rows[i + 1];
    for (int p = p0; p < p1; p = p + 1) {
      int j = cols[p];
      if (j >= lo) {
        if (j < hi) {
          float av = vals[p];
          y[j] = y[j] + av * axi;
        }
      }
    }
  }
}
`, nil
	}
	src = strings.Replace(src, "#pragma phloem\n", "", 1)
	src = strings.Replace(src, ", int n)", ", int n, int tid, int nthreads)", 1)
	src = strings.Replace(src, "int n, int kdim)", "int n, int kdim, int tid, int nthreads)", 1)
	src = strings.Replace(src, "(int i = 0; i < n;",
		"(int i = tid * n / nthreads; i < (tid + 1) * n / nthreads;", 1)
	src = strings.Replace(src, "void taco_", "void dp_taco_", 1)
	return src, nil
}

// SDDMMK is the dense inner dimension used across the SDDMM evaluation.
const SDDMMK = 16

// Bindings builds pipeline bindings for a kernel on matrix m.
func Bindings(k Kernel, m *matrix.CSR, seed int64) pipeline.Bindings {
	rng := rand.New(rand.NewSource(seed))
	n := m.N
	vec := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	b := pipeline.Bindings{
		Ints:         map[string][]int64{"rows": m.Rows, "cols": m.Cols},
		Floats:       map[string][]float64{},
		Scalars:      map[string]int64{"n": int64(n)},
		FloatScalars: map[string]float64{},
	}
	switch k {
	case SpMV, Residual:
		b.Floats["vals"] = m.Vals
		b.Floats["x"] = vec()
		b.Floats["y"] = make([]float64, n)
		if k == Residual {
			b.Floats["b"] = vec()
		}
	case SDDMM:
		b.Floats["bvals"] = m.Vals
		b.Floats["avals"] = make([]float64, m.NNZ())
		c := make([]float64, n*SDDMMK)
		d := make([]float64, n*SDDMMK)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		b.Floats["c"] = c
		b.Floats["d"] = d
		b.Scalars["kdim"] = SDDMMK
	case MTMul:
		b.Floats["vals"] = m.Vals
		b.Floats["x"] = vec()
		b.Floats["z"] = vec()
		b.Floats["y"] = make([]float64, n)
		b.FloatScalars["alpha"] = 1.25
		b.FloatScalars["beta"] = -0.5
	}
	return b
}

// Verify checks a kernel's outputs against a plain Go reference.
func Verify(k Kernel, m *matrix.CSR, seed int64, inst *pipeline.Instance) error {
	// Rebuild the same inputs.
	b := Bindings(k, m, seed)
	n := m.N
	approx := func(name string, want []float64) error {
		got := inst.Arrays[name].Floats()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return fmt.Errorf("taco %s: %s[%d] = %g, want %g", k, name, i, got[i], want[i])
			}
		}
		return nil
	}
	switch k {
	case SpMV:
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			for p := m.Rows[i]; p < m.Rows[i+1]; p++ {
				want[i] += m.Vals[p] * b.Floats["x"][m.Cols[p]]
			}
		}
		return approx("y", want)
	case Residual:
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			acc := 0.0
			for p := m.Rows[i]; p < m.Rows[i+1]; p++ {
				acc += m.Vals[p] * b.Floats["x"][m.Cols[p]]
			}
			want[i] = b.Floats["b"][i] - acc
		}
		return approx("y", want)
	case SDDMM:
		want := make([]float64, m.NNZ())
		for i := 0; i < n; i++ {
			for p := m.Rows[i]; p < m.Rows[i+1]; p++ {
				j := m.Cols[p]
				acc := 0.0
				for kk := 0; kk < SDDMMK; kk++ {
					acc += b.Floats["c"][i*SDDMMK+kk] * b.Floats["d"][int(j)*SDDMMK+kk]
				}
				want[p] = m.Vals[p] * acc
			}
		}
		return approx("avals", want)
	case MTMul:
		want := make([]float64, n)
		for j := 0; j < n; j++ {
			want[j] = -0.5 * b.Floats["z"][j]
		}
		for i := 0; i < n; i++ {
			axi := 1.25 * b.Floats["x"][i]
			for p := m.Rows[i]; p < m.Rows[i+1]; p++ {
				want[m.Cols[p]] += m.Vals[p] * axi
			}
		}
		return approx("y", want)
	}
	return fmt.Errorf("taco: unknown kernel %q", k)
}
