package cache

import "testing"

func TestHitAfterMiss(t *testing.T) {
	h := NewHierarchy(DefaultConfig(1))
	lat1, miss1 := h.Access(0, 0x1000, 0)
	if !miss1 || lat1 < DefaultConfig(1).MemMinLatency {
		t.Errorf("cold access should miss to memory: lat=%d miss=%v", lat1, miss1)
	}
	lat2, miss2 := h.Access(0, 0x1000, 100)
	if miss2 || lat2 != DefaultConfig(1).L1.Latency {
		t.Errorf("second access should hit L1: lat=%d miss=%v", lat2, miss2)
	}
	// Same line, different word: still a hit.
	lat3, _ := h.Access(0, 0x1008, 200)
	if lat3 != DefaultConfig(1).L1.Latency {
		t.Errorf("same-line access should hit: lat=%d", lat3)
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := DefaultConfig(1)
	h := NewHierarchy(cfg)
	l1Sets := cfg.L1.SizeBytes / cfg.LineBytes / cfg.L1.Ways
	// Fill one L1 set with Ways+1 lines: the first should be evicted.
	stride := uint64(l1Sets * cfg.LineBytes)
	for i := 0; i <= cfg.L1.Ways; i++ {
		h.Access(0, uint64(i)*stride, uint64(i))
	}
	lat, _ := h.Access(0, 0, 1000)
	if lat == cfg.L1.Latency {
		t.Error("first line should have been evicted from L1")
	}
}

func TestL2Capture(t *testing.T) {
	cfg := DefaultConfig(1)
	h := NewHierarchy(cfg)
	h.Access(0, 0x4000, 0) // to memory
	// Evict from L1 by filling its set.
	l1Sets := cfg.L1.SizeBytes / cfg.LineBytes / cfg.L1.Ways
	stride := uint64(l1Sets * cfg.LineBytes)
	for i := 1; i <= cfg.L1.Ways; i++ {
		h.Access(0, 0x4000+uint64(i)*stride, uint64(i))
	}
	lat, miss := h.Access(0, 0x4000, 500)
	if lat != cfg.L2.Latency || !miss {
		t.Errorf("expected an L2 hit (lat %d), got lat=%d miss=%v", cfg.L2.Latency, lat, miss)
	}
}

func TestPerCorePrivacy(t *testing.T) {
	h := NewHierarchy(DefaultConfig(2))
	h.Access(0, 0x8000, 0)
	// Core 1 should not hit core 0's L1/L2, but shares L3.
	lat, _ := h.Access(1, 0x8000, 100)
	if lat != DefaultConfig(2).L3.Latency {
		t.Errorf("cross-core access should hit shared L3: lat=%d", lat)
	}
}

func TestMemoryBandwidthQueuing(t *testing.T) {
	cfg := DefaultConfig(1)
	h := NewHierarchy(cfg)
	// Issue many distinct-line accesses at the same cycle: controller
	// occupancy must serialize them.
	var last uint64
	for i := 0; i < 32; i++ {
		lat, _ := h.Access(0, uint64(i)*1<<20, 0)
		if lat > last {
			last = lat
		}
	}
	if last <= cfg.MemMinLatency {
		t.Errorf("bandwidth queuing should raise the worst latency above %d, got %d",
			cfg.MemMinLatency, last)
	}
	st := h.Stats()
	if st.MemAccesses != 32 {
		t.Errorf("expected 32 memory accesses, got %d", st.MemAccesses)
	}
}
