// Package cache implements the memory hierarchy timing model used by the
// Phloem evaluation: per-core L1 and L2, a shared L3, and a main-memory model
// with fixed minimum latency plus controller bandwidth queuing. Parameters
// default to Table III of the paper (Skylake-like).
//
// The model is a timing model only: it tracks tags and replacement state to
// decide hits and misses, and returns access latencies in cycles. Data always
// lives in the functional memory (internal/mem).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	Latency   uint64 // access latency in cycles (applied on hit at this level)
}

// HierarchyConfig describes the full memory system.
type HierarchyConfig struct {
	LineBytes int
	L1        Config // per core
	L2        Config // per core
	L3        Config // per core (scaled by core count, shared)
	// MemMinLatency is the minimum main-memory latency in cycles.
	MemMinLatency uint64
	// MemControllers is the number of memory controllers.
	MemControllers int
	// MemCyclesPerLine is the per-controller occupancy, in core cycles, of
	// transferring one cache line (bandwidth model). At 3.5 GHz and 25 GB/s
	// per controller, a 64-byte line occupies ~9 cycles.
	MemCyclesPerLine uint64
	Cores            int
}

// DefaultConfig returns the Table III memory system for the given core count.
func DefaultConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		LineBytes:        64,
		L1:               Config{SizeBytes: 32 << 10, Ways: 8, Latency: 4},
		L2:               Config{SizeBytes: 256 << 10, Ways: 8, Latency: 12},
		L3:               Config{SizeBytes: 2 << 20, Ways: 16, Latency: 40},
		MemMinLatency:    120,
		MemControllers:   2,
		MemCyclesPerLine: 9,
		Cores:            cores,
	}
}

// level is one set-associative cache with LRU replacement.
type level struct {
	sets     [][]line
	setMask  uint64
	lineBits uint
	stamp    uint64
	hits     uint64
	misses   uint64
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

func newLevel(cfg Config, lineBytes int) *level {
	nLines := cfg.SizeBytes / lineBytes
	nSets := nLines / cfg.Ways
	if nSets < 1 {
		nSets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	for nSets&(nSets-1) != 0 {
		nSets--
	}
	lv := &level{
		sets:    make([][]line, nSets),
		setMask: uint64(nSets - 1),
	}
	// All sets share one backing arena: the autotuner builds a fresh
	// hierarchy per measured candidate, and a per-set make() here dominated
	// its allocation counts.
	arena := make([]line, nSets*cfg.Ways)
	for i := range lv.sets {
		lv.sets[i] = arena[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	for lb := lineBytes; lb > 1; lb >>= 1 {
		lv.lineBits++
	}
	return lv
}

// access looks up lineAddr (already shifted) and returns true on hit.
// On miss the line is installed, evicting the LRU way.
func (lv *level) access(lineAddr uint64) bool {
	lv.stamp++
	set := lv.sets[lineAddr&lv.setMask]
	tag := lineAddr >> 1 // keep full address as tag; cheap and exact
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = lv.stamp
			lv.hits++
			return true
		}
	}
	lv.misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: lv.stamp}
	return false
}

// Stats aggregates hit/miss counts across a run.
type Stats struct {
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	L3Hits, L3Misses uint64
	MemAccesses      uint64
}

// Hierarchy is the complete memory system for one simulated machine.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*level // per core
	l2  []*level // per core
	l3  *level   // shared
	// ctrlFree[i] is the cycle at which memory controller i is next free.
	ctrlFree []uint64
	memAcc   uint64
}

// NewHierarchy builds the memory system described by cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores < 1 {
		panic(fmt.Sprintf("cache: invalid core count %d", cfg.Cores))
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, newLevel(cfg.L1, cfg.LineBytes))
		h.l2 = append(h.l2, newLevel(cfg.L2, cfg.LineBytes))
	}
	l3 := cfg.L3
	l3.SizeBytes *= cfg.Cores // the paper's L3 is 2 MB/core, shared
	h.l3 = newLevel(l3, cfg.LineBytes)
	h.ctrlFree = make([]uint64, cfg.MemControllers)
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Access simulates an access by core at byte address addr starting at cycle
// now, and returns the latency in cycles until the data is available plus
// whether the access missed in the L1 (and therefore occupies a fill buffer
// / MSHR until it completes). Writes are modeled with the same latency as
// reads (write-allocate).
func (h *Hierarchy) Access(core int, addr uint64, now uint64) (uint64, bool) {
	lineAddr := addr / uint64(h.cfg.LineBytes)
	if h.l1[core].access(lineAddr) {
		return h.cfg.L1.Latency, false
	}
	if h.l2[core].access(lineAddr) {
		return h.cfg.L2.Latency, true
	}
	if h.l3.access(lineAddr) {
		return h.cfg.L3.Latency, true
	}
	// Main memory: minimum latency plus bandwidth queuing on the least
	// loaded controller (addresses interleave across controllers by line).
	h.memAcc++
	c := int(lineAddr) % len(h.ctrlFree)
	start := now
	if h.ctrlFree[c] > start {
		start = h.ctrlFree[c]
	}
	h.ctrlFree[c] = start + h.cfg.MemCyclesPerLine
	return (start - now) + h.cfg.MemMinLatency, true
}

// Stats returns aggregate hit/miss counts summed over cores.
func (h *Hierarchy) Stats() Stats {
	var s Stats
	for i := range h.l1 {
		s.L1Hits += h.l1[i].hits
		s.L1Misses += h.l1[i].misses
		s.L2Hits += h.l2[i].hits
		s.L2Misses += h.l2[i].misses
	}
	s.L3Hits = h.l3.hits
	s.L3Misses = h.l3.misses
	s.MemAccesses = h.memAcc
	return s
}
