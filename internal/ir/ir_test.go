package ir

import (
	"strings"
	"testing"
)

func TestOptimizeDeadCode(t *testing.T) {
	p := &Prog{}
	a := p.NewVar("a", KInt)
	dead := p.NewVar("dead", KInt)
	body := []Stmt{
		&Assign{Dst: a, Src: &RvalUn{Op: OpMov, A: C(1)}},
		&Assign{Dst: dead, Src: &RvalBin{Op: OpAdd, A: V(a), B: C(2)}},
		&Enq{Q: 0, Val: V(a)},
	}
	out := Optimize(p, body)
	if len(out) != 2 {
		t.Fatalf("dead assign not removed: %d stmts", len(out))
	}
}

func TestOptimizeKeepsSideEffects(t *testing.T) {
	p := &Prog{Slots: []SlotInfo{{Name: "m", Kind: KInt}}}
	x := p.NewVar("x", KInt)
	body := []Stmt{
		&Assign{Dst: x, Src: &RvalDeq{Q: 3}}, // dequeues must survive
		&Store{Slot: 0, Idx: C(0), Val: C(1)},
	}
	out := Optimize(p, body)
	if len(out) != 2 {
		t.Fatalf("side-effecting statements removed: %d stmts", len(out))
	}
}

func TestOptimizeCopyMerge(t *testing.T) {
	p := &Prog{Slots: []SlotInfo{{Name: "m", Kind: KInt}}}
	tv := p.NewVar("t", KInt)
	v := p.NewVar("v", KInt)
	body := []Stmt{
		&Assign{Dst: tv, Src: &RvalLoad{Slot: 0, Idx: C(0)}},
		&Assign{Dst: v, Src: &RvalUn{Op: OpMov, A: V(tv)}},
		&Enq{Q: 0, Val: V(v)},
	}
	out := Optimize(p, body)
	if len(out) != 2 {
		t.Fatalf("copy not merged: %d stmts\n%s", len(out), p.PrintStmts(out))
	}
	a := out[0].(*Assign)
	if a.Dst != v {
		t.Errorf("merged destination: %d", a.Dst)
	}
	if _, ok := a.Src.(*RvalLoad); !ok {
		t.Error("merged statement should keep the load")
	}
}

func TestOptimizeDoesNotMergeMultiUse(t *testing.T) {
	p := &Prog{}
	tv := p.NewVar("t", KInt)
	v := p.NewVar("v", KInt)
	body := []Stmt{
		&Assign{Dst: tv, Src: &RvalDeq{Q: 1}},
		&Assign{Dst: v, Src: &RvalUn{Op: OpIsCtrl, A: V(tv)}},
		&Enq{Q: 0, Val: V(tv)},
		&Enq{Q: 0, Val: V(v)},
	}
	out := Optimize(p, body)
	if len(out) != 4 {
		t.Fatalf("multi-use value must not merge: %d stmts", len(out))
	}
}

func TestPrintCoversStatements(t *testing.T) {
	p := &Prog{Name: "t", Slots: []SlotInfo{{Name: "arr", Kind: KInt}}}
	v := p.NewVar("v", KInt)
	p.Body = []Stmt{
		&Assign{Dst: v, Src: &RvalLoad{LoadID: 1, Slot: 0, Idx: C(0)}},
		&If{Cond: V(v), Then: []Stmt{&Store{Slot: 0, Idx: C(0), Val: V(v)}}},
		&Loop{ID: 0, Cond: V(v), Body: []Stmt{&EnqCtrl{Q: 1, Code: 16}}},
		&Swap{A: 0, B: 0},
		&Barrier{},
		&Label{Name: "L"},
		&Goto{Name: "L"},
	}
	out := p.Print()
	for _, want := range []string{"load#1", "if", "loop#0", "swap", "barrier", "L:", "goto L"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}
