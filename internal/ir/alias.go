package ir

// AliasVerdict classifies one unordered pair of array slots by what the
// frontend's memory-effects analysis (internal/effects) could prove about
// them. The lattice is ordered from strongest to weakest guarantee; anything
// the analysis cannot place lands on AliasMayConflict.
type AliasVerdict uint8

const (
	// AliasDisjoint: the points-to sets do not intersect (restrict
	// qualification, or int*/float* kind separation). Accesses can be
	// reordered freely across stages.
	AliasDisjoint AliasVerdict = iota
	// AliasNoConflict: the arrays may refer to the same storage, but no
	// access pair includes a write, so overlap is harmless.
	AliasNoConflict
	// AliasBenign: the arrays may overlap and are written, but every
	// conflicting access pair is affine on the same induction variable at
	// distance 0 — overlap only ever touches the same element within one
	// iteration, so there is no loop-carried dependence. Safe to compile,
	// but decoupling must keep the accesses in one stage.
	AliasBenign
	// AliasSwapSync: the arrays are exchanged by swap() (double buffering);
	// their accesses are epoch-synchronized by the buffer flip, exactly like
	// the swap-class exemption of the Fig. 4 race rule.
	AliasSwapSync
	// AliasMayConflict: a write may race a conflicting access at an
	// unprovable distance (indirect index, mismatched induction roots).
	// Compilation of #pragma phloem kernels is rejected.
	AliasMayConflict
)

var aliasVerdictNames = [...]string{
	"disjoint", "no-conflict", "benign", "swap-sync", "may-alias",
}

func (v AliasVerdict) String() string { return aliasVerdictNames[v] }

// AliasInfo records the effects analysis's verdict for every unordered pair
// of array parameters, keyed by slot name. A nil *AliasInfo means "identity
// aliasing": distinct slots are disjoint and a slot conflicts only with
// itself — the assumption the compiler historically made for
// restrict-qualified kernels, and the right default for hand-built programs
// whose slot tables never came from source.
type AliasInfo struct {
	// Pairs maps a name-sorted slot pair to its verdict. Absent pairs are
	// AliasDisjoint.
	Pairs map[[2]string]AliasVerdict
}

// PairKey builds the canonical (sorted) map key for two slot names.
func PairKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Verdict returns the verdict for two slot names. Equal names always
// conflict (a slot aliases itself); unknown pairs are disjoint.
func (ai *AliasInfo) Verdict(a, b string) AliasVerdict {
	if a == b {
		return AliasMayConflict
	}
	if ai == nil {
		return AliasDisjoint
	}
	if v, ok := ai.Pairs[PairKey(a, b)]; ok {
		return v
	}
	return AliasDisjoint
}

// Conflicts reports whether accesses to the two named slots may touch the
// same element (a write to one can be observed through the other). Benign
// and swap-synchronized pairs conflict — they are compilable, but only
// because some other mechanism (same-stage placement, the epoch flip)
// orders their accesses; callers exempt swap classes themselves.
func (ai *AliasInfo) Conflicts(a, b string) bool {
	switch ai.Verdict(a, b) {
	case AliasDisjoint, AliasNoConflict:
		return false
	}
	return true
}
