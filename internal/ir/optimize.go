package ir

// Optimize performs the local cleanups a -O3 backend would: dead pure
// assignment elimination and adjacent copy merging (t = <op>; v = mov t
// becomes v = <op> when t has no other uses). It operates on one stage's
// body; stages have private registers, so per-body analysis is sound.
// The input tree is not mutated: statements are copied when changed.
func Optimize(p *Prog, body []Stmt) []Stmt {
	out := body
	for i := 0; i < 4; i++ {
		uses, defs := countVars(out)
		next, changed := rewrite(out, uses, defs)
		out = next
		if !changed {
			break
		}
	}
	return out
}

func countVars(body []Stmt) (uses, defs map[Var]int) {
	uses = map[Var]int{}
	defs = map[Var]int{}
	countOp := func(o Operand) {
		if !o.IsConst {
			uses[o.Var]++
		}
	}
	countRval := func(r Rval) {
		switch r := r.(type) {
		case *RvalBin:
			countOp(r.A)
			countOp(r.B)
		case *RvalUn:
			countOp(r.A)
		case *RvalLoad:
			countOp(r.Idx)
		}
	}
	var walk func(list []Stmt)
	walk = func(list []Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *Assign:
				countRval(s.Src)
				defs[s.Dst]++
			case *Store:
				countOp(s.Idx)
				countOp(s.Val)
			case *Prefetch:
				countOp(s.Idx)
			case *If:
				countOp(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *Loop:
				walk(s.Pre)
				countOp(s.Cond)
				walk(s.Body)
			case *Enq:
				countOp(s.Val)
			}
		}
	}
	walk(body)
	return uses, defs
}

// pureRval reports whether removing the assignment has no observable effect
// beyond its destination. Loads count as pure (a dead load would be removed
// by any optimizing backend); dequeues and handler reads have side effects.
func pureRval(r Rval) bool {
	switch r.(type) {
	case *RvalBin, *RvalUn, *RvalLoad:
		return true
	}
	return false
}

func rewrite(body []Stmt, uses, defs map[Var]int) ([]Stmt, bool) {
	changed := false
	var walk func(list []Stmt) []Stmt
	walk = func(list []Stmt) []Stmt {
		var out []Stmt
		for _, s := range list {
			switch s := s.(type) {
			case *Assign:
				// Dead pure assignment.
				if uses[s.Dst] == 0 && pureRval(s.Src) {
					changed = true
					continue
				}
				// Adjacent copy merge: previous assign defines t exactly
				// once, this is `v = mov t`, and t has no other uses.
				if un, ok := s.Src.(*RvalUn); ok && un.Op == OpMov && !un.A.IsConst {
					t := un.A.Var
					if len(out) > 0 && uses[t] == 1 && defs[t] == 1 {
						if prev, ok2 := out[len(out)-1].(*Assign); ok2 && prev.Dst == t {
							merged := *prev
							merged.Dst = s.Dst
							out[len(out)-1] = &merged
							changed = true
							continue
						}
					}
				}
				out = append(out, s)
			case *If:
				c := *s
				c.Then = walk(s.Then)
				c.Else = walk(s.Else)
				out = append(out, &c)
			case *Loop:
				c := *s
				c.Pre = walk(s.Pre)
				c.Body = walk(s.Body)
				out = append(out, &c)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	return walk(body), changed
}
