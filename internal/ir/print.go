package ir

import (
	"fmt"
	"math"
	"strings"
)

// Print renders the program in a readable indented form, used for debugging
// and golden tests of the lowering and pipelining passes.
func (p *Prog) Print() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "prog %s\n", p.Name)
	for i, s := range p.Slots {
		fmt.Fprintf(&sb, "  slot %d: %s %s\n", i, s.Kind, s.Name)
	}
	pr := &printer{sb: &sb, p: p}
	pr.stmts(p.Body, 1)
	return sb.String()
}

// PrintStmts renders a statement list (used for per-stage dumps).
func (p *Prog) PrintStmts(body []Stmt) string {
	var sb strings.Builder
	pr := &printer{sb: &sb, p: p}
	pr.stmts(body, 0)
	return sb.String()
}

type printer struct {
	sb *strings.Builder
	p  *Prog
}

func (pr *printer) indent(n int) {
	for i := 0; i < n; i++ {
		pr.sb.WriteString("  ")
	}
}

func (pr *printer) operand(o Operand) string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Imm)
	}
	name := pr.p.Vars[o.Var].Name
	if name == "" {
		return fmt.Sprintf("v%d", o.Var)
	}
	return fmt.Sprintf("%s.%d", name, o.Var)
}

func (pr *printer) fconst(o Operand) string {
	if o.IsConst {
		return fmt.Sprintf("%g", math.Float64frombits(uint64(o.Imm)))
	}
	return pr.operand(o)
}

func (pr *printer) stmts(list []Stmt, depth int) {
	for _, s := range list {
		pr.stmt(s, depth)
	}
}

func (pr *printer) stmt(s Stmt, depth int) {
	pr.indent(depth)
	switch s := s.(type) {
	case *Assign:
		dst := pr.operand(V(s.Dst))
		switch r := s.Src.(type) {
		case *RvalBin:
			suffix := ""
			if r.Float {
				suffix = "f"
			}
			a, b := pr.operand(r.A), pr.operand(r.B)
			if r.Float {
				a, b = pr.fconst(r.A), pr.fconst(r.B)
			}
			fmt.Fprintf(pr.sb, "%s = %s%s %s, %s\n", dst, r.Op, suffix, a, b)
		case *RvalUn:
			a := pr.operand(r.A)
			if r.Float && r.Op != OpF2I {
				a = pr.fconst(r.A)
			}
			fmt.Fprintf(pr.sb, "%s = %s %s\n", dst, r.Op, a)
		case *RvalLoad:
			fmt.Fprintf(pr.sb, "%s = load#%d %s[%s]\n", dst, r.LoadID,
				pr.p.Slots[r.Slot].Name, pr.operand(r.Idx))
		case *RvalDeq:
			fmt.Fprintf(pr.sb, "%s = deq q%d\n", dst, r.Q)
		case *RvalHandlerVal:
			fmt.Fprintf(pr.sb, "%s = handlerval\n", dst)
		}
	case *Store:
		fmt.Fprintf(pr.sb, "store#%d %s[%s] = %s\n", s.StoreID,
			pr.p.Slots[s.Slot].Name, pr.operand(s.Idx), pr.operand(s.Val))
	case *Prefetch:
		fmt.Fprintf(pr.sb, "prefetch %s[%s]\n", pr.p.Slots[s.Slot].Name, pr.operand(s.Idx))
	case *If:
		fmt.Fprintf(pr.sb, "if %s {\n", pr.operand(s.Cond))
		pr.stmts(s.Then, depth+1)
		if len(s.Else) > 0 {
			pr.indent(depth)
			pr.sb.WriteString("} else {\n")
			pr.stmts(s.Else, depth+1)
		}
		pr.indent(depth)
		pr.sb.WriteString("}\n")
	case *Loop:
		extra := ""
		if s.Counted != nil {
			extra = fmt.Sprintf(" counted(%s: %s..%s)", pr.operand(V(s.Counted.Ind)),
				pr.operand(s.Counted.Init), pr.operand(s.Counted.Bound))
		}
		fmt.Fprintf(pr.sb, "loop#%d%s {\n", s.ID, extra)
		if len(s.Pre) > 0 {
			pr.indent(depth + 1)
			pr.sb.WriteString("pre:\n")
			pr.stmts(s.Pre, depth+2)
		}
		pr.indent(depth + 1)
		fmt.Fprintf(pr.sb, "while %s:\n", pr.operand(s.Cond))
		pr.stmts(s.Body, depth+2)
		pr.indent(depth)
		pr.sb.WriteString("}\n")
	case *Swap:
		fmt.Fprintf(pr.sb, "swap %s, %s\n", pr.p.Slots[s.A].Name, pr.p.Slots[s.B].Name)
	case *Enq:
		fmt.Fprintf(pr.sb, "enq q%d, %s\n", s.Q, pr.operand(s.Val))
	case *EnqCtrl:
		fmt.Fprintf(pr.sb, "enq_ctrl q%d, %d\n", s.Q, s.Code)
	case *SetHandler:
		fmt.Fprintf(pr.sb, "set_handler q%d -> %s\n", s.Q, s.Label)
	case *Barrier:
		pr.sb.WriteString("barrier\n")
	case *DecoupleMark:
		pr.sb.WriteString("#decouple\n")
	case *Label:
		fmt.Fprintf(pr.sb, "%s:\n", s.Name)
	case *Goto:
		fmt.Fprintf(pr.sb, "goto %s\n", s.Name)
	case *Halt:
		pr.sb.WriteString("halt\n")
	default:
		fmt.Fprintf(pr.sb, "?%T\n", s)
	}
}
