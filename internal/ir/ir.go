// Package ir defines Phloem's intermediate representation (Sec. V of the
// paper): a structured tree of fine-grain operations with first-class queue
// operations and control-flow conveyance. Unlike conventional IRs, any two
// operations can be decoupled into separate pipeline stages.
//
// The IR is normalized: every operand is a virtual variable or a constant,
// every load/store is its own statement, and loops carry an explicit
// condition block. Virtual variables are mutable (non-SSA); stages get
// private register files when flattened, so cross-stage communication is
// explicit through queue operations.
package ir

import "fmt"

// Kind is a value kind.
type Kind uint8

const (
	KInt Kind = iota
	KFloat
)

func (k Kind) String() string {
	if k == KFloat {
		return "float"
	}
	return "int"
}

// Var names a virtual variable.
type Var int32

// VarInfo describes one virtual variable.
type VarInfo struct {
	Name  string
	Kind  Kind
	Param bool // scalar function parameter (initialized externally)
}

// SlotInfo describes one array slot.
type SlotInfo struct {
	Name string
	Kind Kind
}

// Operand is a variable reference or an immediate constant.
type Operand struct {
	IsConst bool
	Var     Var
	// Imm holds the constant (float64 bit pattern for KFloat constants).
	Imm int64
}

// V makes a variable operand.
func V(v Var) Operand { return Operand{Var: v} }

// C makes an integer constant operand.
func C(imm int64) Operand { return Operand{IsConst: true, Imm: imm} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Imm)
	}
	return fmt.Sprintf("v%d", o.Var)
}

// BinOp enumerates binary operations (kind determines int vs float form).
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

var binNames = [...]string{"add", "sub", "mul", "div", "rem", "and", "or",
	"xor", "shl", "shr", "eq", "ne", "lt", "le", "gt", "ge"}

func (o BinOp) String() string { return binNames[o] }

// IsCmp reports whether the op is a comparison (result kind is int).
func (o BinOp) IsCmp() bool { return o >= OpEQ }

// UnOp enumerates unary operations.
type UnOp uint8

const (
	OpMov UnOp = iota
	OpNeg
	OpNot  // logical ! (int)
	OpBNot // bitwise ~ (int)
	OpAbs
	OpI2F
	OpF2I
	OpIsCtrl   // 1 if the operand carries the control tag
	OpCtrlCode // control code of the operand
)

var unNames = [...]string{"mov", "neg", "not", "bnot", "abs", "i2f", "f2i",
	"isctrl", "ctrlcode"}

func (o UnOp) String() string { return unNames[o] }

// Rval is the right-hand side of an assignment.
type Rval interface{ rval() }

// RvalBin is a binary operation.
type RvalBin struct {
	Op    BinOp
	Float bool // operand kind
	A, B  Operand
}

// RvalUn is a unary operation (including plain moves).
type RvalUn struct {
	Op    UnOp
	Float bool
	A     Operand
}

// RvalLoad is a memory load. LoadID uniquely names the load site for the
// cost model and decoupling points.
type RvalLoad struct {
	LoadID int
	Slot   int
	Idx    Operand
}

// RvalDeq dequeues from a queue (inserted by the pipelining passes).
type RvalDeq struct{ Q int }

// RvalHandlerVal reads the control code that fired the current handler.
type RvalHandlerVal struct{}

func (*RvalBin) rval()        {}
func (*RvalUn) rval()         {}
func (*RvalLoad) rval()       {}
func (*RvalDeq) rval()        {}
func (*RvalHandlerVal) rval() {}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Statements that originate in kernel source carry the 1-based source line
// they were lowered from in a Line field (0: synthesized by the compiler).
// The pipelining passes preserve lines when they move or copy statements, so
// flattening can attribute each ISA instruction back to its source line for
// telemetry profiles. Glue the passes invent (queue traffic, dispatch
// control flow) keeps Line 0 and reports as generated code.

// Assign sets Dst from an Rval.
type Assign struct {
	Dst  Var
	Src  Rval
	Line int
}

// Store writes an array element. StoreID uniquely names the store site.
type Store struct {
	StoreID int
	Slot    int
	Idx     Operand
	Val     Operand
	Line    int
}

// Prefetch warms the cache line of an array element without reading it
// (emitted by pass 3 for loads the race rule pins to a later stage).
type Prefetch struct {
	Slot int
	Idx  Operand
	Line int
}

// If is a conditional.
type If struct {
	Cond Operand
	Then []Stmt
	Else []Stmt
	Line int
}

// Counted describes a canonical counted loop: for (v = Init; v < Bound; v++).
type Counted struct {
	Ind   Var
	Init  Operand
	Bound Operand
}

// Loop is a general loop: run Pre, test Cond, run Body, repeat. Counted is
// non-nil when the loop was recognized as a canonical counted loop (the Pre
// block then just computes Cond from the induction variable).
type Loop struct {
	// ID uniquely names the loop for decoupling bookkeeping.
	ID      int
	Pre     []Stmt
	Cond    Operand
	Body    []Stmt
	Counted *Counted
	// Decouple marks a #pragma decouple on this loop.
	Decouple bool
	Line     int
}

// Swap exchanges two array slot bindings machine-wide.
type Swap struct {
	A, B int
	Line int
}

// Enq enqueues a data value.
type Enq struct {
	Q   int
	Val Operand
}

// EnqCtrl enqueues a control value with a static code.
type EnqCtrl struct {
	Q    int
	Code int64
}

// SetHandler registers a control-value handler for a queue. Handler bodies
// are represented structurally by the passes and materialized at flatten
// time; Label names the handler block within the stage.
type SetHandler struct {
	Q     int
	Label string
}

// Barrier synchronizes all pipeline stages between program phases.
type Barrier struct{ Line int }

// DecoupleMark records a `#pragma decouple` statement boundary.
type DecoupleMark struct{}

// Label marks a jump target in generated stage code. The frontend never
// emits labels; the pipelining passes use them for control-value dispatch.
type Label struct{ Name string }

// Goto jumps to a Label in the same stage.
type Goto struct{ Name string }

// Halt ends a stage program explicitly (generated code only; flattening
// appends a final halt to every stage regardless).
type Halt struct{}

func (*Assign) stmt()       {}
func (*Store) stmt()        {}
func (*Prefetch) stmt()     {}
func (*If) stmt()           {}
func (*Loop) stmt()         {}
func (*Swap) stmt()         {}
func (*Enq) stmt()          {}
func (*EnqCtrl) stmt()      {}
func (*SetHandler) stmt()   {}
func (*Barrier) stmt()      {}
func (*DecoupleMark) stmt() {}
func (*Label) stmt()        {}
func (*Goto) stmt()         {}
func (*Halt) stmt()         {}

// Prog is one kernel in IR form.
type Prog struct {
	Name  string
	Vars  []VarInfo
	Slots []SlotInfo
	// ScalarParams lists the vars bound from scalar arguments, in the
	// declaration order of the original function's scalar parameters.
	ScalarParams []Var
	Body         []Stmt
	NumLoads     int
	NumStores    int
	NumLoops     int
	// Replicate and Distribute mirror the source pragmas.
	Replicate  int
	Distribute bool
	// Alias carries the frontend effects analysis's verdict per slot-name
	// pair (nil: identity aliasing — distinct slots are disjoint).
	Alias *AliasInfo
}

// NewVar appends a fresh variable and returns it.
func (p *Prog) NewVar(name string, k Kind) Var {
	p.Vars = append(p.Vars, VarInfo{Name: name, Kind: k})
	return Var(len(p.Vars) - 1)
}

// VarKind returns the kind of v.
func (p *Prog) VarKind(v Var) Kind { return p.Vars[v].Kind }

// SlotIndex finds a slot by name (-1 if absent).
func (p *Prog) SlotIndex(name string) int {
	for i, s := range p.Slots {
		if s.Name == name {
			return i
		}
	}
	return -1
}
