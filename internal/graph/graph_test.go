package graph

import (
	"testing"
	"testing/quick"
)

// csrWellFormed checks the structural CSR invariants.
func csrWellFormed(g *CSR) bool {
	n := g.NumVertices()
	if g.Nodes[0] != 0 || g.Nodes[n] != int64(len(g.Edges)) {
		return false
	}
	for v := 0; v < n; v++ {
		if g.Nodes[v] > g.Nodes[v+1] {
			return false
		}
		prev := int64(-1)
		for _, ngh := range g.Neighbors(v) {
			if ngh < 0 || ngh >= int64(n) || ngh == int64(v) || ngh == prev {
				return false
			}
			prev = ngh
		}
	}
	return true
}

// symmetric checks that every edge has a reverse edge.
func symmetric(g *CSR) bool {
	has := func(u, v int64) bool {
		for _, n := range g.Neighbors(int(u)) {
			if n == v {
				return true
			}
		}
		return false
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if !has(u, int64(v)) {
				return false
			}
		}
	}
	return true
}

func TestGeneratorsWellFormed(t *testing.T) {
	gs := []*CSR{
		Grid("g", 10, 12, 1),
		PowerLaw("p", 300, 3, 2),
		Uniform("u", 200, 3.0, 3),
		Trace("t", 8, 10, 4),
	}
	for _, g := range gs {
		if !csrWellFormed(g) {
			t.Errorf("%s: malformed CSR", g.Name)
		}
		if !symmetric(g) {
			t.Errorf("%s: not symmetric", g.Name)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", g.Name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PowerLaw("a", 200, 2, 7)
	b := PowerLaw("a", 200, 2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give the same graph")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("edge lists differ")
		}
	}
	c := PowerLaw("a", 200, 2, 8)
	same := c.NumEdges() == a.NumEdges()
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should give different graphs")
	}
}

func TestGridProperty(t *testing.T) {
	f := func(w8, h8, seed uint8) bool {
		w := int(w8%12) + 2
		h := int(h8%12) + 2
		g := Grid("g", w, h, int64(seed))
		return g.NumVertices() == w*h && csrWellFormed(g) && symmetric(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFromAdjacencyDedup(t *testing.T) {
	g := FromAdjacency("d", [][]int64{{1, 1, 2, 0}, {0}, {0}})
	if g.Degree(0) != 2 {
		t.Errorf("self-loops/dups not removed: deg=%d", g.Degree(0))
	}
}

func TestInputSuites(t *testing.T) {
	for _, in := range append(TrainingInputs(), TestInputs()...) {
		if !csrWellFormed(in.Graph) {
			t.Errorf("%s malformed", in.Graph.Name)
		}
	}
}
