// Package graph provides CSR graphs and deterministic synthetic generators
// standing in for the paper's input suite (Table IV). The generators control
// the properties the evaluation depends on — degree distribution, diameter,
// and locality — at sizes tractable for cycle-level simulation.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a graph in Compressed Sparse Row format, the layout the paper's
// benchmarks traverse: Nodes[v]..Nodes[v+1] delimit v's slice of Edges.
type CSR struct {
	Name  string
	Nodes []int64 // length NumVertices+1
	Edges []int64
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return len(g.Nodes) - 1 }

// NumEdges returns the directed edge count.
func (g *CSR) NumEdges() int { return len(g.Edges) }

// AvgDegree returns the average out-degree.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// Degree returns the out-degree of v.
func (g *CSR) Degree(v int) int64 { return g.Nodes[v+1] - g.Nodes[v] }

// Neighbors returns v's adjacency slice (aliases the Edges array).
func (g *CSR) Neighbors(v int) []int64 { return g.Edges[g.Nodes[v]:g.Nodes[v+1]] }

func (g *CSR) String() string {
	return fmt.Sprintf("%s: %d vertices, %d edges, avg deg %.1f",
		g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())
}

// FromAdjacency builds a CSR from an adjacency list, deduplicating and
// sorting each neighbor list.
func FromAdjacency(name string, adj [][]int64) *CSR {
	g := &CSR{Name: name, Nodes: make([]int64, len(adj)+1)}
	for v, ns := range adj {
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		prev := int64(-1)
		for _, n := range ns {
			if n == prev || n == int64(v) {
				continue
			}
			prev = n
			g.Edges = append(g.Edges, n)
		}
		g.Nodes[v+1] = int64(len(g.Edges))
	}
	return g
}

// symmetrize adds reverse edges.
func symmetrize(adj [][]int64) {
	type edge struct{ u, v int64 }
	var rev []edge
	for u, ns := range adj {
		for _, v := range ns {
			rev = append(rev, edge{v, int64(u)})
		}
	}
	for _, e := range rev {
		adj[e.u] = append(adj[e.u], e.v)
	}
}

// Grid generates a road-network-like graph: a w x h grid with a fraction of
// edges removed to create irregular detours. Road networks have low average
// degree (~2-3) and very high diameter, which is what makes BFS on them
// latency-bound. Vertex ids are randomly permuted: real road-network inputs
// are not laid out in traversal order, so neighbor accesses have poor
// spatial locality.
func Grid(name string, w, h int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	adj := make([][]int64, n)
	perm := rng.Perm(n)
	id := func(x, y int) int64 { return int64(perm[y*w+x]) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := id(x, y)
			// Drop ~10% of grid edges to create irregular detours.
			if x+1 < w && rng.Intn(10) != 0 {
				adj[v] = append(adj[v], id(x+1, y))
			}
			if y+1 < h && rng.Intn(10) != 0 {
				adj[v] = append(adj[v], id(x, y+1))
			}
		}
	}
	symmetrize(adj)
	return FromAdjacency(name, adj)
}

// PowerLaw generates an internet-like graph by preferential attachment
// (Barabási–Albert): heavy-tailed degrees, low diameter. m is the number of
// edges added per new vertex.
func PowerLaw(name string, n, m int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int64, n)
	// endpoint pool for preferential attachment
	pool := make([]int64, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	for v := 0; v < start; v++ {
		for u := 0; u < v; u++ {
			adj[v] = append(adj[v], int64(u))
			pool = append(pool, int64(v), int64(u))
		}
	}
	for v := start; v < n; v++ {
		for k := 0; k < m; k++ {
			var u int64
			if len(pool) > 0 {
				u = pool[rng.Intn(len(pool))]
			} else {
				u = int64(rng.Intn(v))
			}
			if u == int64(v) {
				continue
			}
			adj[v] = append(adj[v], u)
			pool = append(pool, int64(v), u)
		}
	}
	symmetrize(adj)
	return FromAdjacency(name, adj)
}

// Uniform generates an Erdős–Rényi-style graph with given average degree.
func Uniform(name string, n int, avgDeg float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int64, n)
	edges := int(float64(n) * avgDeg / 2)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], int64(v))
	}
	symmetrize(adj)
	return FromAdjacency(name, adj)
}

// Trace generates a "dynamic simulation trace"-like graph (hugetrace): a long
// path of clusters, giving moderate degree and very high diameter.
func Trace(name string, clusters, clusterSize int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := clusters * clusterSize
	adj := make([][]int64, n)
	for c := 0; c < clusters; c++ {
		base := c * clusterSize
		// ring within the cluster plus a chord
		for i := 0; i < clusterSize; i++ {
			v := base + i
			adj[v] = append(adj[v], int64(base+(i+1)%clusterSize))
			if clusterSize > 3 {
				adj[v] = append(adj[v], int64(base+rng.Intn(clusterSize)))
			}
		}
		// link to next cluster
		if c+1 < clusters {
			adj[base] = append(adj[base], int64(base+clusterSize))
		}
	}
	symmetrize(adj)
	return FromAdjacency(name, adj)
}

// Input describes one named benchmark input (Table IV rows).
type Input struct {
	Domain string
	Graph  *CSR
}

// TrainingInputs returns the scaled-down training suite: an internet-like
// graph and a road-network-like graph (internet / USA-road-d-NY in the
// paper).
func TrainingInputs() []Input {
	return []Input{
		{Domain: "Training internet graph", Graph: PowerLaw("internet", 3000, 2, 11)},
		{Domain: "Training road network", Graph: Grid("road-ny", 60, 60, 12)},
	}
}

// TestInputs returns the scaled-down test suite mirroring Table IV's domains:
// collaboration (power-law, mid degree), dynamic simulation trace (high
// diameter), circuit (uniform), internet (heavy power-law), road (grid).
func TestInputs() []Input {
	return []Input{
		{Domain: "Human collaboration", Graph: PowerLaw("coauthors", 6000, 3, 21)},
		{Domain: "Dynamic simulation", Graph: Trace("hugetrace", 220, 24, 22)},
		{Domain: "Circuit simulation", Graph: Uniform("freescale", 8000, 2.8, 23)},
		{Domain: "Internet graph", Graph: PowerLaw("skitter", 5000, 6, 24)},
		{Domain: "Road network", Graph: Grid("road-usa", 110, 110, 25)},
	}
}
