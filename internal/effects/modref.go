package effects

import (
	"fmt"
	"sort"
	"strings"

	"phloem/internal/ir"
	"phloem/internal/source"
)

// collectAccesses walks the function gathering one Access per textual array
// access, with indexes resolved through the affine environment.
func (a *Analysis) collectAccesses() {
	env := buildAffineEnv(a.Fn)
	var expr func(e source.Expr)
	expr = func(e source.Expr) {
		switch e := e.(type) {
		case *source.Index:
			expr(e.Idx)
			ac := Access{Param: e.Array, Line: e.Line, Ref: true}
			ac.Class, ac.Root, ac.Off = env.resolve(e.Idx, 0)
			a.Accesses = append(a.Accesses, ac)
		case *source.Binary:
			expr(e.L)
			expr(e.R)
		case *source.Unary:
			expr(e.X)
		case *source.Cast:
			expr(e.X)
		case *source.Call:
			for _, arg := range e.Args {
				expr(arg)
			}
		}
	}
	var walk func(list []source.Stmt)
	stmt := func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Block:
			walk(s.Stmts)
		case *source.DeclStmt:
			expr(s.Init)
		case *source.AssignStmt:
			if idx, ok := s.Target.(*source.Index); ok {
				expr(idx.Idx)
				ac := Access{Param: idx.Array, Line: s.Line, Mod: true, Ref: s.Op != "="}
				ac.Class, ac.Root, ac.Off = env.resolve(idx.Idx, 0)
				a.Accesses = append(a.Accesses, ac)
			}
			expr(s.Value)
		case *source.IfStmt:
			expr(s.Cond)
			walk(s.Then.Stmts)
			if s.Else != nil {
				walk(s.Else.Stmts)
			}
		case *source.WhileStmt:
			expr(s.Cond)
			walk(s.Body.Stmts)
		}
	}
	walk = func(list []source.Stmt) {
		for _, s := range list {
			if f, ok := s.(*source.ForStmt); ok {
				if f.Init != nil {
					stmt(f.Init)
				}
				expr(f.Cond)
				walk(f.Body.Stmts)
				if f.Post != nil {
					stmt(f.Post)
				}
				continue
			}
			stmt(s)
		}
	}
	walk(a.Fn.Body.Stmts)
}

// affineEnv resolves index expressions to (class, induction root, offset).
// A name is usable as a root or a link in an affine chain only when it has a
// single declaration in the whole function (ruling out shadowing and
// same-named roots of sibling loops) and is never reassigned outside the
// canonical induction increment — the AST-level analogue of
// analysis.FindAffineDefs' single-reaching-definition rule.
type affineEnv struct {
	inductionRoots map[string]bool
	declInit       map[string]source.Expr // single-decl, never-assigned locals
}

func buildAffineEnv(fn *source.Function) *affineEnv {
	declCount := map[string]int{}
	assignCount := map[string]int{}
	declInit := map[string]source.Expr{}
	type forInfo struct{ name string }
	var fors []forInfo

	var walk func(list []source.Stmt)
	stmt := func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Block:
			walk(s.Stmts)
		case *source.DeclStmt:
			declCount[s.Name]++
			declInit[s.Name] = s.Init
		case *source.AssignStmt:
			if id, ok := s.Target.(*source.Ident); ok {
				assignCount[id.Name]++
			}
		case *source.IfStmt:
			walk(s.Then.Stmts)
			if s.Else != nil {
				walk(s.Else.Stmts)
			}
		case *source.WhileStmt:
			walk(s.Body.Stmts)
		}
	}
	walk = func(list []source.Stmt) {
		for _, s := range list {
			if f, ok := s.(*source.ForStmt); ok {
				if f.Init != nil {
					stmt(f.Init)
				}
				walk(f.Body.Stmts)
				if f.Post != nil {
					stmt(f.Post)
				}
				if name, ok := canonicalInduction(f); ok {
					fors = append(fors, forInfo{name: name})
				}
				continue
			}
			stmt(s)
		}
	}
	walk(fn.Body.Stmts)

	env := &affineEnv{inductionRoots: map[string]bool{}, declInit: map[string]source.Expr{}}
	for _, f := range fors {
		// Exactly one declaration and one assignment (the increment itself).
		if declCount[f.name] == 1 && assignCount[f.name] == 1 {
			env.inductionRoots[f.name] = true
		}
	}
	for name, init := range declInit {
		if declCount[name] == 1 && assignCount[name] == 0 {
			env.declInit[name] = init
		}
	}
	return env
}

// canonicalInduction matches `for (int i = ...; i < ...; i = i + 1)` (or
// `i += 1`) and returns the induction variable's name.
func canonicalInduction(f *source.ForStmt) (string, bool) {
	decl, ok := f.Init.(*source.DeclStmt)
	if !ok || decl.Type != source.TypeInt || f.Post == nil {
		return "", false
	}
	tgt, ok := f.Post.Target.(*source.Ident)
	if !ok || tgt.Name != decl.Name {
		return "", false
	}
	if f.Post.Op == "+=" {
		if lit, ok := f.Post.Value.(*source.IntLit); ok && lit.Val == 1 {
			return decl.Name, true
		}
	}
	if f.Post.Op == "=" {
		if bin, ok := f.Post.Value.(*source.Binary); ok && bin.Op == "+" {
			if id, ok := bin.L.(*source.Ident); ok && id.Name == decl.Name {
				if lit, ok := bin.R.(*source.IntLit); ok && lit.Val == 1 {
					return decl.Name, true
				}
			}
		}
	}
	return "", false
}

const maxAffineDepth = 16

// resolve classifies an index expression. Affine results are a canonical
// induction root plus a constant offset, followed through single-def scalar
// chains; anything else (loaded values, multiplications, unstable names) is
// indirect.
func (env *affineEnv) resolve(e source.Expr, depth int) (IndexClass, string, int64) {
	if depth > maxAffineDepth {
		return IdxIndirect, "", 0
	}
	switch e := e.(type) {
	case *source.IntLit:
		return IdxConst, "", e.Val
	case *source.Ident:
		if env.inductionRoots[e.Name] {
			return IdxAffine, e.Name, 0
		}
		if init, ok := env.declInit[e.Name]; ok {
			return env.resolve(init, depth+1)
		}
		return IdxIndirect, "", 0
	case *source.Binary:
		if e.Op != "+" && e.Op != "-" {
			return IdxIndirect, "", 0
		}
		lc, lr, lo := env.resolve(e.L, depth+1)
		rc, rr, ro := env.resolve(e.R, depth+1)
		if e.Op == "-" {
			ro = -ro
			if rc == IdxAffine {
				return IdxIndirect, "", 0 // i - j and c - i are not affine forms here
			}
		}
		switch {
		case lc == IdxConst && rc == IdxConst:
			return IdxConst, "", lo + ro
		case lc == IdxAffine && rc == IdxConst:
			return IdxAffine, lr, lo + ro
		case lc == IdxConst && rc == IdxAffine && e.Op == "+":
			return IdxAffine, rr, lo + ro
		}
		return IdxIndirect, "", 0
	}
	return IdxIndirect, "", 0
}

// judgePairs assigns every unordered parameter pair its verdict and fills
// the precision counters.
func (a *Analysis) judgePairs() {
	byParam := map[string][]int{}
	for i, ac := range a.Accesses {
		byParam[ac.Param] = append(byParam[ac.Param], i)
	}
	for i := 0; i < len(a.Params); i++ {
		for j := i + 1; j < len(a.Params); j++ {
			p, q := a.Params[i].Name, a.Params[j].Name
			if q < p {
				p, q = q, p
			}
			pair := Pair{A: p, B: q, WitA: -1, WitB: -1}
			pair.Verdict = a.judge(&pair, byParam[p], byParam[q])
			a.Pairs = append(a.Pairs, pair)
		}
	}
	sort.Slice(a.Pairs, func(i, j int) bool {
		if a.Pairs[i].A != a.Pairs[j].A {
			return a.Pairs[i].A < a.Pairs[j].A
		}
		return a.Pairs[i].B < a.Pairs[j].B
	})
	for _, p := range a.Pairs {
		a.Stats.Pairs++
		switch p.Verdict {
		case ir.AliasDisjoint:
			a.Stats.Disjoint++
		case ir.AliasNoConflict:
			a.Stats.NoConflict++
		case ir.AliasBenign:
			a.Stats.Benign++
		case ir.AliasSwapSync:
			a.Stats.SwapSync++
		case ir.AliasMayConflict:
			a.Stats.MayAlias++
		}
	}
}

func (a *Analysis) judge(pair *Pair, accA, accB []int) ir.AliasVerdict {
	if !a.mayAlias(pair.A, pair.B) {
		return ir.AliasDisjoint
	}
	if a.sameSwapClass(pair.A, pair.B) {
		return ir.AliasSwapSync
	}
	conflict := false
	for _, ia := range accA {
		for _, ib := range accB {
			xa, xb := &a.Accesses[ia], &a.Accesses[ib]
			if !xa.Mod && !xb.Mod {
				continue // read/read never conflicts
			}
			if xa.Class == IdxConst && xb.Class == IdxConst && xa.Off != xb.Off {
				continue // provably different elements
			}
			conflict = true
			if !benignPair(xa, xb) {
				if pair.WitA < 0 {
					pair.WitA, pair.WitB = ia, ib
				}
				return ir.AliasMayConflict
			}
		}
	}
	if !conflict {
		return ir.AliasNoConflict
	}
	return ir.AliasBenign
}

// benignPair holds when both indexes are provably equal in every iteration:
// the same constant, or affine on the same induction root at distance 0.
// Overlap then only ever touches the same element within one iteration, so
// serial order (which same-stage placement preserves) is sufficient — there
// is no loop-carried dependence between different elements.
func benignPair(x, y *Access) bool {
	if x.Class == IdxConst && y.Class == IdxConst {
		return x.Off == y.Off
	}
	return x.Class == IdxAffine && y.Class == IdxAffine &&
		x.Root == y.Root && x.Off == y.Off
}

// Err returns the positioned E0 error for the first may-alias pair of a
// `#pragma phloem` kernel, or nil. Kernels without the pragma are
// hand-scheduled (barrier-based) and exempt, exactly as the old
// restrict-or-reject rule was.
func (a *Analysis) Err() error {
	if !a.Fn.Pragmas.Phloem {
		return nil
	}
	for _, p := range a.Pairs {
		if p.Verdict != ir.AliasMayConflict {
			continue
		}
		wa, wb := a.Accesses[p.WitA], a.Accesses[p.WitB]
		// Anchor the error on the write (the access that makes the pair a
		// race), falling back to the first witness.
		anchor := wa
		if !anchor.Mod && wb.Mod {
			anchor = wb
		}
		return &source.Error{
			Line: anchor.Line,
			Msg: fmt.Sprintf("[E0] parameters %q and %q may alias with an unprovable dependence: %s vs %s; "+
				"add restrict or make both indexes affine in the same loop variable (Sec. IV-A)",
				p.A, p.B, wa, wb),
		}
	}
	return nil
}

// Warnings reports, for a `#pragma phloem` kernel, every pointer parameter
// accepted without restrict together with the proof that made it safe.
// Sorted by (line, code, message).
func (a *Analysis) Warnings() []Warning {
	if !a.Fn.Pragmas.Phloem {
		return nil
	}
	var out []Warning
	for _, p := range a.Params {
		if p.Restrict {
			continue
		}
		worst := ir.AliasDisjoint
		partner := ""
		unproven := false
		for _, pr := range a.Pairs {
			if pr.A != p.Name && pr.B != p.Name {
				continue
			}
			if pr.Verdict == ir.AliasMayConflict {
				unproven = true
				break
			}
			if pr.Verdict > worst {
				worst = pr.Verdict
				partner = pr.A
				if partner == p.Name {
					partner = pr.B
				}
			}
		}
		if unproven {
			continue // Err() reports this pair; "proved safe" would be a lie
		}
		msg := fmt.Sprintf("array parameter %q is not restrict-qualified; effects analysis proved its accesses safe", p.Name)
		if partner != "" {
			msg += fmt.Sprintf(" (weakest pair: %s with %q)", worst, partner)
		}
		out = append(out, Warning{Line: p.Line, Code: "E0", Msg: msg})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// AliasInfo exports the verdicts in the form the IR carries (nil when the
// function has fewer than two pointer parameters — identity aliasing).
func (a *Analysis) AliasInfo() *ir.AliasInfo {
	if len(a.Pairs) == 0 {
		return nil
	}
	ai := &ir.AliasInfo{Pairs: map[[2]string]ir.AliasVerdict{}}
	for _, p := range a.Pairs {
		ai.Pairs[ir.PairKey(p.A, p.B)] = p.Verdict
	}
	return ai
}

// ModRef returns the MOD and REF access lists of one parameter, in source
// order (an entry with both flags appears in both lists).
func (a *Analysis) ModRef(param string) (mods, refs []Access) {
	for _, ac := range a.Accesses {
		if ac.Param != param {
			continue
		}
		if ac.Mod {
			mods = append(mods, ac)
		}
		if ac.Ref {
			refs = append(refs, ac)
		}
	}
	return mods, refs
}

// Dump renders the whole analysis in a stable, sorted, diffable format —
// the `phloemc -effects` report.
func (a *Analysis) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "effects %s:\n", a.Fn.Name)
	sb.WriteString("  params:\n")
	for _, p := range a.Params {
		q := ""
		if p.Restrict {
			q = " restrict"
		}
		fmt.Fprintf(&sb, "    %-12s %s%s -> {%s}\n", p.Name, p.Type, q, strings.Join(p.PointsTo, ", "))
	}
	sb.WriteString("  accesses:\n")
	for _, ac := range a.Accesses {
		fmt.Fprintf(&sb, "    line %-3d %-6s %s[%s]\n", ac.Line, ac.kind(), ac.Param, ac.idx())
	}
	sb.WriteString("  pairs:\n")
	for _, p := range a.Pairs {
		fmt.Fprintf(&sb, "    %s/%s: %s", p.A, p.B, p.Verdict)
		if p.Verdict == ir.AliasMayConflict && p.WitA >= 0 {
			fmt.Fprintf(&sb, " (%s vs %s)", a.Accesses[p.WitA], a.Accesses[p.WitB])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  stats: %s\n", a.Stats)
	return sb.String()
}
