package effects

// Table-driven unit tests for the points-to model, MOD/REF collection, and
// the pairwise alias verdicts, with exact expected access sets.

import (
	"strings"
	"testing"

	"phloem/internal/ir"
	"phloem/internal/source"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	fn, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := source.Check(fn); err != nil {
		t.Fatalf("check: %v", err)
	}
	return Analyze(fn)
}

func verdictOf(t *testing.T, a *Analysis, x, y string) ir.AliasVerdict {
	t.Helper()
	for _, pr := range a.Pairs {
		if pr.A == x && pr.B == y || pr.A == y && pr.B == x {
			return pr.Verdict
		}
	}
	t.Fatalf("no pair %s/%s in %v", x, y, a.Pairs)
	return 0
}

func accessStrings(list []Access) []string {
	var out []string
	for _, a := range list {
		out = append(out, a.String())
	}
	return out
}

func requireAccesses(t *testing.T, got []Access, want ...string) {
	t.Helper()
	gs := accessStrings(got)
	if len(gs) != len(want) {
		t.Fatalf("got %v, want %v", gs, want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Errorf("access %d = %q, want %q", i, gs[i], want[i])
		}
	}
}

func TestVerdicts(t *testing.T) {
	cases := []struct {
		name string
		src  string
		a, b string
		want ir.AliasVerdict
	}{
		{
			// The language has no call sites, so "two params bound to the
			// same argument" is modeled by unqualified params of one kind:
			// both point to the shared world location. restrict severs it.
			name: "restrict pair",
			src: `#pragma phloem
void k(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    a[i] = b[i];
  }
}`,
			a: "a", b: "b", want: ir.AliasDisjoint,
		},
		{
			name: "kind separation",
			src: `#pragma phloem
void k(int* a, float* f, int n) {
  for (int i = 0; i < n; i = i + 1) {
    f[i] = f[i] + 1.0;
    a[i] = i;
  }
}`,
			a: "a", b: "f", want: ir.AliasDisjoint,
		},
		{
			name: "read-only overlap",
			src: `#pragma phloem
void k(int* a, int* b, int* restrict out, int n) {
  for (int i = 0; i < n; i = i + 1) {
    out[i] = a[i] + b[i];
  }
}`,
			a: "a", b: "b", want: ir.AliasNoConflict,
		},
		{
			name: "same affine index is benign",
			src: `#pragma phloem
void k(int* a, int* b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    a[i] = b[i] + 1;
  }
}`,
			a: "a", b: "b", want: ir.AliasBenign,
		},
		{
			name: "swap partners are epoch-synchronized",
			src: `#pragma phloem
void k(int* restrict a, int* restrict b, int n) {
  for (int it = 0; it < n; it = it + 1) {
    for (int i = 0; i < n; i = i + 1) {
      b[i] = a[i] + 1;
    }
    swap(a, b);
  }
}`,
			a: "a", b: "b", want: ir.AliasSwapSync,
		},
		{
			name: "indirect store through loaded index",
			src: `#pragma phloem
void k(int* idx, int* data, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = idx[i];
    data[j] = i;
  }
}`,
			a: "idx", b: "data", want: ir.AliasMayConflict,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := analyze(t, c.src)
			if got := verdictOf(t, a, c.a, c.b); got != c.want {
				t.Errorf("verdict(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestVerdictDistanceOneNotBenign(t *testing.T) {
	a := analyze(t, `#pragma phloem
void k(int* a, int* b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    a[i] = b[i + 1];
  }
}`)
	if got := verdictOf(t, a, "a", "b"); got != ir.AliasMayConflict {
		t.Errorf("distance-1 pair should be may-alias, got %s", got)
	}
}

func TestModRefSets(t *testing.T) {
	a := analyze(t, `#pragma phloem
void k(int* idx, int* restrict data, int* restrict out, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = idx[i];
    data[j] = data[j] + 1;
    out[i] = j;
  }
}`)
	mods, refs := a.ModRef("idx")
	requireAccesses(t, mods)
	requireAccesses(t, refs, "ref idx[i] (line 4)")

	mods, refs = a.ModRef("data")
	requireAccesses(t, mods, "mod data[#indirect] (line 5)")
	requireAccesses(t, refs, "ref data[#indirect] (line 5)")

	mods, refs = a.ModRef("out")
	requireAccesses(t, mods, "mod out[i] (line 6)")
	requireAccesses(t, refs)
}

func TestErrOnlyForPhloemFunctions(t *testing.T) {
	src := `void k(int* idx, int* data, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = idx[i];
    data[j] = i;
  }
}`
	a := analyze(t, src)
	if err := a.Err(); err != nil {
		t.Errorf("non-phloem function should not be rejected: %v", err)
	}
	b := analyze(t, "#pragma phloem\n"+src)
	err := b.Err()
	if err == nil {
		t.Fatal("phloem function with a may-alias pair must be rejected")
	}
	if !strings.Contains(err.Error(), "[E0]") {
		t.Errorf("error should carry the E0 code: %v", err)
	}
}

func TestWarningsOnlyForProvenParams(t *testing.T) {
	a := analyze(t, `#pragma phloem
void k(int* rows, int* cols, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    y[i] = (float)(rows[i] + cols[i]);
  }
}`)
	ws := a.Warnings()
	if len(ws) != 2 {
		t.Fatalf("want warnings for rows and cols, got %v", ws)
	}
	for _, w := range ws {
		if w.Code != "E0" || w.Line != 2 {
			t.Errorf("warning should be E0 at the declaration line: %+v", w)
		}
	}
	// A param in a may-alias pair must not be called safe.
	b := analyze(t, `#pragma phloem
void k(int* idx, int* data, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = idx[i];
    data[j] = i;
  }
}`)
	if ws := b.Warnings(); len(ws) != 0 {
		t.Errorf("unproven params should not get a proved-safe warning: %v", ws)
	}
}
