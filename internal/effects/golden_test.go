package effects

// Golden-file test of the Dump format (`phloemc -effects` output) over the
// benchmark kernels and the deliberately aliased BFS variant. Regenerate
// with
//
//	go test ./internal/effects -run TestDumpGoldens -update
//
// after an intentional format change, and review the diff.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phloem/internal/source"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDumpGoldens(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bfs", `
#pragma phloem
void bfs(int* restrict nodes, int* restrict edges, int* restrict distances,
         int* restrict cur_fringe, int* restrict next_fringe,
         int root, int n) {
  int cur_size = 1;
  int next_size = 0;
  int cur_dist = 1;
  while (cur_size > 0) {
    for (int i = 0; i < cur_size; i = i + 1) {
      int v = cur_fringe[i];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int old_dist = distances[ngh];
        if (cur_dist < old_dist) {
          distances[ngh] = cur_dist;
          next_fringe[next_size] = ngh;
          next_size = next_size + 1;
        }
      }
    }
    swap(cur_fringe, next_fringe);
    cur_size = next_size;
    next_size = 0;
    cur_dist = cur_dist + 1;
  }
}`},
		{"bfs_aliased", `
#pragma phloem
void bfs(int* restrict nodes, int* edges, int* distances,
         int* restrict cur_fringe, int* restrict next_fringe,
         int root, int n) {
  int cur_size = 1;
  while (cur_size > 0) {
    for (int i = 0; i < cur_size; i = i + 1) {
      int v = cur_fringe[i];
      for (int e = nodes[v]; e < nodes[v + 1]; e = e + 1) {
        int ngh = edges[e];
        if (1 < distances[ngh]) {
          distances[ngh] = 1;
        }
      }
    }
    swap(cur_fringe, next_fringe);
    cur_size = 0;
  }
}`},
		{"prd_apply", `
#pragma phloem
void prd_apply(float* rank, float* delta, float* next_delta, int n) {
  for (int u = 0; u < n; u = u + 1) {
    float nd = next_delta[u];
    rank[u] = rank[u] + nd;
    delta[u] = nd;
    next_delta[u] = 0.0;
  }
}`},
		{"spmv_norestrict", `
#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}`},
	}
	var sb strings.Builder
	for _, c := range cases {
		fn, err := source.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if err := source.Check(fn); err != nil {
			t.Fatalf("%s: check: %v", c.name, err)
		}
		a := Analyze(fn)
		sb.WriteString("== " + c.name + "\n")
		sb.WriteString(a.Dump())
		for _, w := range a.Warnings() {
			sb.WriteString(w.String() + "\n")
		}
		if err := a.Err(); err != nil {
			sb.WriteString("error: " + err.Error() + "\n")
		}
	}
	got := sb.String()

	path := filepath.Join("testdata", "dumps.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("dump differs from %s (run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
