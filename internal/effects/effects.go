// Package effects implements the frontend's memory-effects and alias
// analysis: a flow-insensitive points-to model over the checked AST's array
// parameters, per-statement MOD/REF summaries of every array access, and a
// loop-carried dependence test for affine accesses. Together they let the
// compiler prove decoupling legality without `restrict` annotations
// (Sec. IV-A requires "precise aliasing"; this package supplies it
// statically) and let the Fig. 4 race rule reason about *proven* effects
// instead of identifier equality.
//
// The model is deliberately small because the kernel language is: pointers
// enter only as parameters, cannot be copied, offset, or stored, and the
// single pointer operation is the swap(a, b) double-buffer flip. Each
// pointer parameter p therefore roots one abstract location L_p; a
// non-restrict parameter additionally points to a per-element-kind world
// location (int* and float* cannot legally alias under strict aliasing), and
// swap() unions the points-to sets of its operands. Two parameters may alias
// iff their points-to sets intersect.
//
// On top of points-to, every array access is summarized as MOD (store) or
// REF (load) with its index classified as constant, affine in an enclosing
// induction variable (root + constant offset, resolved through single-def
// scalar temporaries), or indirect. Pairs of parameters get one of five
// verdicts (ir.AliasVerdict): disjoint, no-conflict (no write in any
// conflicting access pair), benign (every conflicting pair is affine at
// distance 0, i.e. the overlap only ever touches the same element within one
// iteration), swap-sync (epoch-synchronized double buffers), or may-alias.
// May-alias pairs in a `#pragma phloem` kernel are rejected with a
// positioned E0 error; everything else compiles, with the verdicts attached
// to the lowered program (ir.Prog.Alias) so the race rule, the pipelining
// passes, and the static verifier's E-checks can consume them.
package effects

import (
	"fmt"
	"sort"

	"phloem/internal/ir"
	"phloem/internal/source"
)

// IndexClass classifies an access's index expression.
type IndexClass uint8

const (
	// IdxConst is a compile-time constant index.
	IdxConst IndexClass = iota
	// IdxAffine is induction-root + constant offset (distance tests apply).
	IdxAffine
	// IdxIndirect is anything else: loaded values, data-dependent math.
	IdxIndirect
)

// Access is one MOD/REF summary entry: a single textual array access.
type Access struct {
	// Param is the accessed array parameter's name.
	Param string
	// Line is the source line of the access.
	Line int
	// Mod marks a store; Ref marks a load. Compound assignments
	// (a[i] += x) set both on one entry.
	Mod, Ref bool
	// Class classifies Idx; Root/Off describe it when affine (Off alone
	// when constant).
	Class IndexClass
	Root  string
	Off   int64
}

// String renders "mod a[i+1] (line 12)" style summaries.
func (ac Access) String() string {
	return fmt.Sprintf("%s %s[%s] (line %d)", ac.kind(), ac.Param, ac.idx(), ac.Line)
}

func (ac Access) kind() string {
	switch {
	case ac.Mod && ac.Ref:
		return "modref"
	case ac.Mod:
		return "mod"
	}
	return "ref"
}

func (ac Access) idx() string {
	switch ac.Class {
	case IdxConst:
		return fmt.Sprintf("%d", ac.Off)
	case IdxAffine:
		if ac.Off == 0 {
			return ac.Root
		}
		return fmt.Sprintf("%s%+d", ac.Root, ac.Off)
	}
	return "#indirect"
}

// ParamSummary describes one pointer parameter and its points-to set.
type ParamSummary struct {
	Name     string
	Type     source.Type
	Restrict bool
	Line     int
	// PointsTo is the sorted abstract-location set ("name" for parameter
	// roots, "W:int"/"W:float" for the world locations).
	PointsTo []string
}

// Pair is the verdict for one unordered parameter pair.
type Pair struct {
	A, B    string // sorted: A < B
	Verdict ir.AliasVerdict
	// WitA/WitB index Accesses with the pair that forced a may-alias
	// verdict (-1 otherwise). WitA belongs to A, WitB to B.
	WitA, WitB int
}

// Stats counts pairs per verdict — the compiler's alias-precision counters.
type Stats struct {
	Pairs      int
	Disjoint   int
	NoConflict int
	Benign     int
	SwapSync   int
	MayAlias   int
}

// Proven counts the pairs with a safety proof (everything but may-alias).
func (s Stats) Proven() int { return s.Pairs - s.MayAlias }

func (s Stats) String() string {
	return fmt.Sprintf("pairs=%d disjoint=%d no-conflict=%d benign=%d swap-sync=%d may-alias=%d",
		s.Pairs, s.Disjoint, s.NoConflict, s.Benign, s.SwapSync, s.MayAlias)
}

// Warning is a positioned, non-fatal effects diagnostic (e.g. a parameter
// compiled without restrict because the analysis proved it safe).
type Warning struct {
	Line int
	Code string
	Msg  string
}

func (w Warning) String() string {
	return fmt.Sprintf("warning [%s] line %d: %s", w.Code, w.Line, w.Msg)
}

// Analysis is the result of analyzing one function.
type Analysis struct {
	Fn       *source.Function
	Params   []ParamSummary
	Accesses []Access
	Pairs    []Pair
	Stats    Stats

	pts       map[string]map[string]bool
	swapClass map[string]string
}

// Analyze runs the full analysis over a checked function. It never fails:
// unprovable shapes degrade to may-alias verdicts, which Err reports.
func Analyze(fn *source.Function) *Analysis {
	a := &Analysis{
		Fn:        fn,
		pts:       map[string]map[string]bool{},
		swapClass: map[string]string{},
	}
	a.buildPointsTo()
	a.collectAccesses()
	a.judgePairs()
	return a
}

// worldLoc names the shared abstract location of all non-restrict pointers
// of one element kind.
func worldLoc(t source.Type) string {
	if t.Elem() == source.TypeFloat {
		return "W:float"
	}
	return "W:int"
}

func (a *Analysis) buildPointsTo() {
	for _, p := range a.Fn.Params {
		if !p.Type.IsPtr() {
			continue
		}
		set := map[string]bool{p.Name: true}
		if !p.Restrict {
			set[worldLoc(p.Type)] = true
		}
		a.pts[p.Name] = set
		a.swapClass[p.Name] = p.Name
	}
	// swap(a, b) exchanges bindings: flow-insensitively, each operand may
	// hold the other's location afterwards, so the sets merge. Union-find
	// over swap statements is the fixpoint of that propagation.
	var walk func(list []source.Stmt)
	walk = func(list []source.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *source.Block:
				walk(s.Stmts)
			case *source.IfStmt:
				walk(s.Then.Stmts)
				if s.Else != nil {
					walk(s.Else.Stmts)
				}
			case *source.WhileStmt:
				walk(s.Body.Stmts)
			case *source.ForStmt:
				walk(s.Body.Stmts)
			case *source.SwapStmt:
				if _, ok := a.pts[s.A]; ok {
					if _, ok := a.pts[s.B]; ok {
						a.union(s.A, s.B)
					}
				}
			}
		}
	}
	walk(a.Fn.Body.Stmts)
	// Merge points-to across each swap class.
	byClass := map[string]map[string]bool{}
	for p := range a.pts {
		r := a.rep(p)
		if byClass[r] == nil {
			byClass[r] = map[string]bool{}
		}
		for loc := range a.pts[p] {
			byClass[r][loc] = true
		}
	}
	for p := range a.pts {
		a.pts[p] = byClass[a.rep(p)]
	}
	for _, p := range a.Fn.Params {
		if !p.Type.IsPtr() {
			continue
		}
		a.Params = append(a.Params, ParamSummary{
			Name: p.Name, Type: p.Type, Restrict: p.Restrict, Line: p.Line,
			PointsTo: sortedKeys(a.pts[p.Name]),
		})
	}
}

func (a *Analysis) rep(p string) string {
	for a.swapClass[p] != p {
		p = a.swapClass[p]
	}
	return p
}

func (a *Analysis) union(p, q string) {
	rp, rq := a.rep(p), a.rep(q)
	if rp != rq {
		a.swapClass[rp] = rq
	}
}

// sameSwapClass reports whether two parameters are exchanged by swap().
func (a *Analysis) sameSwapClass(p, q string) bool { return a.rep(p) == a.rep(q) }

// mayAlias reports whether the points-to sets intersect.
func (a *Analysis) mayAlias(p, q string) bool {
	sp, sq := a.pts[p], a.pts[q]
	if len(sq) < len(sp) {
		sp, sq = sq, sp
	}
	for loc := range sp {
		if sq[loc] {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
