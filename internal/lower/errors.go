package lower

import "fmt"

// Error reports a lowering invariant violation as a structured error. The
// flattener's register-resolution path has no error return (it mirrors a
// table lookup), so internal violations are raised as typed panics and
// recovered at the Flatten boundary, where the stage name is attached.
type Error struct {
	// Stage is the stage program being flattened ("" before Flatten
	// attaches it).
	Stage string
	// Detail describes the violation.
	Detail string
}

func (e *Error) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("lower: stage %s: %s", e.Stage, e.Detail)
	}
	return "lower: " + e.Detail
}
