package lower

import (
	"fmt"

	"phloem/internal/ir"
	"phloem/internal/isa"
)

// Flatten lowers one stage's IR statement list to a flat stage program.
// Virtual variables map 1:1 to registers; constants are hoisted into a
// prologue (standing in for what gcc -O3 does with loop-invariant
// materialization), except where the ISA has immediate forms.
func Flatten(p *ir.Prog, stageName string, body []ir.Stmt) (prog *isa.Program, err error) {
	// Internal invariant violations (e.g. a constant the hoisting pre-scan
	// missed) are raised as typed panics on the register-resolution path and
	// surfaced here as structured errors.
	defer func() {
		if r := recover(); r != nil {
			le, ok := r.(*Error)
			if !ok {
				panic(r)
			}
			le.Stage = stageName
			prog, err = nil, le
		}
	}()
	f := &flattener{
		p:      p,
		b:      isa.NewBuilder(stageName),
		consts: map[int64]isa.Reg{},
	}
	// Reserve one register per program variable.
	for range p.Vars {
		f.b.Reg()
	}
	// Pre-scan for constants that need registers and hoist them.
	f.hoistConsts(body)
	if err := f.stmts(body); err != nil {
		return nil, err
	}
	f.b.SetLine(0) // epilogue halt is generated, not source
	f.b.Halt()
	return f.b.Build()
}

type flattener struct {
	p      *ir.Prog
	b      *isa.Builder
	consts map[int64]isa.Reg
	labelN int
}

func (f *flattener) newLabel(prefix string) string {
	f.labelN++
	return fmt.Sprintf(".%s%d", prefix, f.labelN)
}

// constReg returns the hoisted register for a constant.
func (f *flattener) constReg(imm int64) isa.Reg {
	r, ok := f.consts[imm]
	if !ok {
		panic(&Error{Detail: fmt.Sprintf("constant %d not hoisted", imm)})
	}
	return r
}

// reg resolves an operand to a register.
func (f *flattener) reg(o ir.Operand) isa.Reg {
	if o.IsConst {
		return f.constReg(o.Imm)
	}
	return isa.Reg(o.Var)
}

// immFoldable reports whether a binary op with constant B has an immediate
// ISA form (so the constant needs no register).
func immFoldable(op ir.BinOp, float bool) bool {
	if float {
		return false
	}
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpShr:
		return true
	}
	return false
}

// hoistConsts walks the statements and emits one Const per distinct
// register-needing constant.
func (f *flattener) hoistConsts(body []ir.Stmt) {
	need := func(o ir.Operand) {
		if !o.IsConst {
			return
		}
		if _, ok := f.consts[o.Imm]; ok {
			return
		}
		f.consts[o.Imm] = f.b.Const(o.Imm)
	}
	var walkRval func(r ir.Rval)
	walkRval = func(r ir.Rval) {
		switch r := r.(type) {
		case *ir.RvalBin:
			need(r.A)
			if !(r.B.IsConst && immFoldable(r.Op, r.Float)) {
				need(r.B)
			}
		case *ir.RvalUn:
			need(r.A)
			// Some unary forms expand using a constant register.
			switch {
			case r.Op == ir.OpNeg && !r.Float:
				need(ir.C(0))
			case r.Op == ir.OpNot:
				need(ir.C(0))
			case r.Op == ir.OpBNot:
				need(ir.C(-1))
			}
		case *ir.RvalLoad:
			need(r.Idx)
		}
	}
	var walk func(list []ir.Stmt)
	walk = func(list []ir.Stmt) {
		for _, s := range list {
			switch s := s.(type) {
			case *ir.Assign:
				walkRval(s.Src)
			case *ir.Store:
				need(s.Idx)
				need(s.Val)
			case *ir.Prefetch:
				need(s.Idx)
			case *ir.If:
				need(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *ir.Loop:
				walk(s.Pre)
				need(s.Cond)
				walk(s.Body)
			case *ir.Enq:
				need(s.Val)
			}
		}
	}
	walk(body)
}

func (f *flattener) stmts(list []ir.Stmt) error {
	for _, s := range list {
		if err := f.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

var binToISA = map[ir.BinOp][2]isa.Op{
	// {int form, float form}
	ir.OpAdd: {isa.OpIAdd, isa.OpFAdd},
	ir.OpSub: {isa.OpISub, isa.OpFSub},
	ir.OpMul: {isa.OpIMul, isa.OpFMul},
	ir.OpDiv: {isa.OpIDiv, isa.OpFDiv},
	ir.OpRem: {isa.OpIRem, isa.OpNop},
	ir.OpAnd: {isa.OpIAnd, isa.OpNop},
	ir.OpOr:  {isa.OpIOr, isa.OpNop},
	ir.OpXor: {isa.OpIXor, isa.OpNop},
	ir.OpShl: {isa.OpIShl, isa.OpNop},
	ir.OpShr: {isa.OpIShr, isa.OpNop},
	ir.OpEQ:  {isa.OpICmpEQ, isa.OpFCmpEQ},
	ir.OpNE:  {isa.OpICmpNE, isa.OpFCmpNE},
	ir.OpLT:  {isa.OpICmpLT, isa.OpFCmpLT},
	ir.OpLE:  {isa.OpICmpLE, isa.OpFCmpLE},
	ir.OpGT:  {isa.OpICmpGT, isa.OpFCmpGT},
	ir.OpGE:  {isa.OpICmpGE, isa.OpFCmpGE},
}

func (f *flattener) assign(s *ir.Assign) error {
	dst := isa.Reg(s.Dst)
	switch r := s.Src.(type) {
	case *ir.RvalBin:
		if r.B.IsConst && immFoldable(r.Op, r.Float) {
			switch r.Op {
			case ir.OpAdd:
				f.b.OpImmTo(dst, isa.OpIAddImm, f.reg(r.A), r.B.Imm)
			case ir.OpSub:
				f.b.OpImmTo(dst, isa.OpIAddImm, f.reg(r.A), -r.B.Imm)
			case ir.OpMul:
				f.b.OpImmTo(dst, isa.OpIMulImm, f.reg(r.A), r.B.Imm)
			case ir.OpAnd:
				f.b.OpImmTo(dst, isa.OpIAndImm, f.reg(r.A), r.B.Imm)
			case ir.OpShr:
				f.b.OpImmTo(dst, isa.OpIShrImm, f.reg(r.A), r.B.Imm)
			}
			return nil
		}
		forms, ok := binToISA[r.Op]
		if !ok {
			return fmt.Errorf("lower: unknown binop %v", r.Op)
		}
		op := forms[0]
		if r.Float {
			op = forms[1]
			if op == isa.OpNop {
				return fmt.Errorf("lower: %v has no float form", r.Op)
			}
		}
		f.b.Op2To(dst, op, f.reg(r.A), f.reg(r.B))
	case *ir.RvalUn:
		a := f.reg(r.A)
		switch r.Op {
		case ir.OpMov:
			f.b.MovTo(dst, a)
		case ir.OpNeg:
			if r.Float {
				f.b.Op2To(dst, isa.OpFNeg, a, isa.NoReg)
			} else {
				f.b.Op2To(dst, isa.OpISub, f.constReg(0), a)
			}
		case ir.OpNot:
			f.b.Op2To(dst, isa.OpICmpEQ, a, f.constReg(0))
		case ir.OpBNot:
			f.b.Op2To(dst, isa.OpIXor, a, f.constReg(-1))
		case ir.OpAbs:
			if !r.Float {
				return fmt.Errorf("lower: integer abs should be lowered to control flow")
			}
			f.b.Op2To(dst, isa.OpFAbs, a, isa.NoReg)
		case ir.OpI2F:
			f.b.Op2To(dst, isa.OpI2F, a, isa.NoReg)
		case ir.OpF2I:
			f.b.Op2To(dst, isa.OpF2I, a, isa.NoReg)
		case ir.OpIsCtrl:
			f.b.Op2To(dst, isa.OpIsCtrl, a, isa.NoReg)
		case ir.OpCtrlCode:
			f.b.Op2To(dst, isa.OpCtrlCode, a, isa.NoReg)
		default:
			return fmt.Errorf("lower: unknown unop %v", r.Op)
		}
	case *ir.RvalLoad:
		f.b.LoadTo(dst, r.Slot, f.reg(r.Idx))
	case *ir.RvalDeq:
		f.b.DeqTo(dst, r.Q)
	case *ir.RvalHandlerVal:
		f.b.Op2To(dst, isa.OpHandlerVal, isa.NoReg, isa.NoReg)
	default:
		return fmt.Errorf("lower: unknown rval %T", r)
	}
	return nil
}

// stmtLine extracts the source line a statement carries (0 for glue the
// passes synthesize, which has no Line field at all).
func stmtLine(s ir.Stmt) int32 {
	switch s := s.(type) {
	case *ir.Assign:
		return int32(s.Line)
	case *ir.Store:
		return int32(s.Line)
	case *ir.Prefetch:
		return int32(s.Line)
	case *ir.If:
		return int32(s.Line)
	case *ir.Loop:
		return int32(s.Line)
	case *ir.Swap:
		return int32(s.Line)
	case *ir.Barrier:
		return int32(s.Line)
	}
	return 0
}

func (f *flattener) stmt(s ir.Stmt) error {
	f.b.SetLine(stmtLine(s))
	switch s := s.(type) {
	case *ir.Assign:
		return f.assign(s)
	case *ir.Store:
		f.b.Store(s.Slot, f.reg(s.Idx), f.reg(s.Val))
	case *ir.Prefetch:
		f.b.Emit(isa.Instr{Op: isa.OpPrefetch, Slot: s.Slot, A: f.reg(s.Idx)})
	case *ir.If:
		if len(s.Then) == 0 && len(s.Else) == 0 {
			return nil
		}
		if len(s.Then) == 0 {
			// only else: branch to end when cond true
			end := f.newLabel("ifend")
			f.b.Br(f.reg(s.Cond), end)
			if err := f.stmts(s.Else); err != nil {
				return err
			}
			f.b.Label(end)
			return nil
		}
		elseL := f.newLabel("else")
		endL := f.newLabel("ifend")
		f.b.BrZ(f.reg(s.Cond), elseL)
		if err := f.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			f.b.Jmp(endL)
			f.b.Label(elseL)
			if err := f.stmts(s.Else); err != nil {
				return err
			}
			f.b.Label(endL)
		} else {
			f.b.Label(elseL)
		}
	case *ir.Loop:
		head := f.newLabel("loop")
		exit := f.newLabel("exit")
		f.b.Label(head)
		if err := f.stmts(s.Pre); err != nil {
			return err
		}
		f.b.BrZ(f.reg(s.Cond), exit)
		if err := f.stmts(s.Body); err != nil {
			return err
		}
		f.b.Jmp(head)
		f.b.Label(exit)
	case *ir.Swap:
		f.b.SwapSlots(s.A, s.B)
	case *ir.Enq:
		f.b.Enq(s.Q, f.reg(s.Val))
	case *ir.EnqCtrl:
		f.b.EnqCtrl(s.Q, s.Code)
	case *ir.SetHandler:
		f.b.SetHandler(s.Q, s.Label)
	case *ir.Barrier:
		f.b.Barrier()
	case *ir.DecoupleMark:
		// Compilation hint only; no code.
	case *ir.Label:
		f.b.Label(s.Name)
	case *ir.Goto:
		f.b.Jmp(s.Name)
	case *ir.Halt:
		f.b.Halt()
	default:
		return fmt.Errorf("lower: unknown statement %T", s)
	}
	return nil
}
