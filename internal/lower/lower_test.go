package lower_test

import (
	"testing"
	"testing/quick"

	"phloem/internal/arch"
	"phloem/internal/lower"
	"phloem/internal/pipeline"
	"phloem/internal/source"
)

// compile lowers source to IR, failing the test on errors.
func compile(t *testing.T, src string) *pipeline.Pipeline {
	t.Helper()
	fn, err := source.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := source.Check(fn); err != nil {
		t.Fatal(err)
	}
	p, err := lower.FromAST(fn)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline.NewSerial(p)
}

// run executes a serial kernel and returns the out array.
func run(t *testing.T, pl *pipeline.Pipeline, b pipeline.Bindings) *pipeline.Instance {
	t.Helper()
	inst, err := pipeline.Instantiate(pl, arch.DefaultConfig(1), b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestArithmeticSemantics(t *testing.T) {
	pl := compile(t, `
void k(int* restrict out, int a, int b) {
  out[0] = a + b;
  out[1] = a - b;
  out[2] = a * b;
  out[3] = a / b;
  out[4] = a % b;
  out[5] = a & b;
  out[6] = a | b;
  out[7] = a ^ b;
  out[8] = a << 2;
  out[9] = a >> 1;
  out[10] = -a;
  out[11] = !a;
  out[12] = ~a;
  out[13] = min(a, b);
  out[14] = max(a, b);
  out[15] = abs(0 - a);
}
`)
	f := func(a8, b8 int8) bool {
		a, b := int64(a8), int64(b8)
		if b == 0 {
			b = 1
		}
		inst := run(t, pl, pipeline.Bindings{
			Ints:    map[string][]int64{"out": make([]int64, 16)},
			Scalars: map[string]int64{"a": a, "b": b},
		})
		got := inst.Arrays["out"].Ints()
		bnot := a
		bnot = ^bnot
		want := []int64{a + b, a - b, a * b, a / b, a % b, a & b, a | b, a ^ b,
			a << 2, a >> 1, -a, boolToInt(a == 0), bnot,
			minI(a, b), maxI(a, b), absI(a)}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("a=%d b=%d out[%d]=%d want %d", a, b, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func absI(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func TestShortCircuitSemantics(t *testing.T) {
	// With guard=0, && must skip its right side: b[idx] would trap out of
	// bounds if evaluated.
	and := compile(t, `
void k(int* restrict b, int* restrict out, int guard, int idx, int n) {
  int x = 0;
  if (guard > 0 && b[idx] > 5) {
    x = 1;
  }
  out[0] = x;
}
`)
	inst := run(t, and, pipeline.Bindings{
		Ints:    map[string][]int64{"b": {10}, "out": make([]int64, 1)},
		Scalars: map[string]int64{"guard": 0, "idx": 99, "n": 1},
	})
	if got := inst.Arrays["out"].Ints()[0]; got != 0 {
		t.Errorf("&&: got %d", got)
	}
	// With guard=1, || must skip its right side.
	or := compile(t, `
void k(int* restrict b, int* restrict out, int guard, int idx, int n) {
  int y = 0;
  if (guard > 0 || b[idx] > 5) {
    y = 1;
  }
  out[0] = y;
}
`)
	inst2 := run(t, or, pipeline.Bindings{
		Ints:    map[string][]int64{"b": {10}, "out": make([]int64, 1)},
		Scalars: map[string]int64{"guard": 1, "idx": 99, "n": 1},
	})
	if got := inst2.Arrays["out"].Ints()[0]; got != 1 {
		t.Errorf("||: got %d", got)
	}
}

func TestFloatSemantics(t *testing.T) {
	pl := compile(t, `
void k(float* restrict out, float a, float b, int i) {
  out[0] = a + b;
  out[1] = a * b;
  out[2] = a / b;
  out[3] = fabs(a - b);
  out[4] = (float)i;
  int trunc = (int)a;
  out[5] = (float)trunc;
}
`)
	inst := run(t, pl, pipeline.Bindings{
		Floats:       map[string][]float64{"out": make([]float64, 6)},
		Scalars:      map[string]int64{"i": -3},
		FloatScalars: map[string]float64{"a": 2.5, "b": -1.25},
	})
	got := inst.Arrays["out"].Floats()
	want := []float64{1.25, -3.125, -2.0, 3.75, -3.0, 2.0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLoopSemantics(t *testing.T) {
	pl := compile(t, `
void k(int* restrict out, int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + i;
  }
  int w = 0;
  int c = n;
  while (c > 0) {
    w = w + c;
    c = c - 1;
  }
  out[0] = s;
  out[1] = w;
}
`)
	inst := run(t, pl, pipeline.Bindings{
		Ints:    map[string][]int64{"out": make([]int64, 2)},
		Scalars: map[string]int64{"n": 10},
	})
	got := inst.Arrays["out"].Ints()
	if got[0] != 45 || got[1] != 55 {
		t.Errorf("loops: %v", got)
	}
}

var _ = lower.Flatten // referenced through pipeline.Instantiate
