// Package lower translates between the compiler's representations: the C
// subset AST is lowered to the normalized Phloem IR, and (possibly
// transformed) IR stage code is flattened to the stage ISA executed by the
// Pipette machine model.
package lower

import (
	"fmt"
	"math"

	"phloem/internal/effects"
	"phloem/internal/ir"
	"phloem/internal/source"
)

// FromAST lowers a type-checked function to Phloem IR. Expressions are
// normalized to shallow operations over virtual variables; short-circuit
// logic and builtins become explicit control flow. The frontend's
// memory-effects verdicts ride along on Prog.Alias so the race rule and the
// static verifier reason about proven aliasing rather than assuming it.
func FromAST(fn *source.Function) (*ir.Prog, error) {
	lw := &astLowerer{
		p: &ir.Prog{Name: fn.Name, Replicate: fn.Pragmas.Replicate, Distribute: fn.Pragmas.Distribute,
			Alias: effects.Analyze(fn).AliasInfo()},
		scopes: []map[string]binding{{}},
	}
	for _, prm := range fn.Params {
		if prm.Type.IsPtr() {
			k := ir.KInt
			if prm.Type.Elem() == source.TypeFloat {
				k = ir.KFloat
			}
			lw.p.Slots = append(lw.p.Slots, ir.SlotInfo{Name: prm.Name, Kind: k})
			lw.scopes[0][prm.Name] = binding{isSlot: true, slot: len(lw.p.Slots) - 1}
		} else {
			k := ir.KInt
			if prm.Type == source.TypeFloat {
				k = ir.KFloat
			}
			v := lw.p.NewVar(prm.Name, k)
			lw.p.Vars[v].Param = true
			lw.p.ScalarParams = append(lw.p.ScalarParams, v)
			lw.scopes[0][prm.Name] = binding{v: v}
		}
	}
	body, err := lw.block(fn.Body)
	if err != nil {
		return nil, err
	}
	lw.p.Body = body
	return lw.p, nil
}

type binding struct {
	isSlot bool
	slot   int
	v      ir.Var
}

type astLowerer struct {
	p      *ir.Prog
	scopes []map[string]binding
	tmpN   int
}

func (lw *astLowerer) push() { lw.scopes = append(lw.scopes, map[string]binding{}) }
func (lw *astLowerer) pop()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *astLowerer) lookup(name string) (binding, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if b, ok := lw.scopes[i][name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

func (lw *astLowerer) tmp(k ir.Kind) ir.Var {
	lw.tmpN++
	return lw.p.NewVar(fmt.Sprintf("t%d", lw.tmpN), k)
}

func kindOf(t source.Type) ir.Kind {
	if t == source.TypeFloat {
		return ir.KFloat
	}
	return ir.KInt
}

func (lw *astLowerer) block(b *source.Block) ([]ir.Stmt, error) {
	lw.push()
	defer lw.pop()
	var out []ir.Stmt
	for _, s := range b.Stmts {
		stmts, err := lw.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	return out, nil
}

func (lw *astLowerer) stmt(s source.Stmt) ([]ir.Stmt, error) {
	switch s := s.(type) {
	case *source.Block:
		return lw.block(s)
	case *source.DeclStmt:
		var out []ir.Stmt
		op, err := lw.expr(&out, s.Init)
		if err != nil {
			return nil, err
		}
		v := lw.p.NewVar(s.Name, kindOf(s.Type))
		lw.scopes[len(lw.scopes)-1][s.Name] = binding{v: v}
		out = append(out, &ir.Assign{Dst: v, Src: movRval(op, kindOf(s.Type)), Line: s.Line})
		return out, nil
	case *source.AssignStmt:
		return lw.assign(s)
	case *source.IfStmt:
		var out []ir.Stmt
		cond, err := lw.expr(&out, s.Cond)
		if err != nil {
			return nil, err
		}
		thn, err := lw.block(s.Then)
		if err != nil {
			return nil, err
		}
		var els []ir.Stmt
		if s.Else != nil {
			els, err = lw.block(s.Else)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, &ir.If{Cond: cond, Then: thn, Else: els, Line: s.Line})
		return out, nil
	case *source.WhileStmt:
		var pre []ir.Stmt
		cond, err := lw.expr(&pre, s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := lw.block(s.Body)
		if err != nil {
			return nil, err
		}
		lw.p.NumLoops++
		return []ir.Stmt{&ir.Loop{ID: lw.p.NumLoops - 1, Pre: pre, Cond: cond, Line: s.Line,
			Body: body, Decouple: s.Decouple}}, nil
	case *source.ForStmt:
		lw.push()
		defer lw.pop()
		var out []ir.Stmt
		if s.Init != nil {
			initStmts, err := lw.stmt(s.Init)
			if err != nil {
				return nil, err
			}
			out = append(out, initStmts...)
		}
		var pre []ir.Stmt
		cond, err := lw.expr(&pre, s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := lw.block(s.Body)
		if err != nil {
			return nil, err
		}
		if s.Post != nil {
			post, err := lw.assign(s.Post)
			if err != nil {
				return nil, err
			}
			body = append(body, post...)
		}
		lw.p.NumLoops++
		loop := &ir.Loop{ID: lw.p.NumLoops - 1, Pre: pre, Cond: cond, Line: s.Line,
			Body: body, Decouple: s.Decouple}
		loop.Counted = lw.detectCounted(s, out)
		out = append(out, loop)
		return out, nil
	case *source.SwapStmt:
		ba, _ := lw.lookup(s.A)
		bb, _ := lw.lookup(s.B)
		if !ba.isSlot || !bb.isSlot {
			return nil, fmt.Errorf("line %d: swap() of non-array", s.Line)
		}
		return []ir.Stmt{&ir.Swap{A: ba.slot, B: bb.slot, Line: s.Line}}, nil
	case *source.DecoupleStmt:
		return []ir.Stmt{&ir.DecoupleMark{}}, nil
	case *source.BarrierStmt:
		return []ir.Stmt{&ir.Barrier{Line: s.Line}}, nil
	}
	return nil, fmt.Errorf("lower: unknown statement %T", s)
}

// detectCounted recognizes the canonical `for (v = init; v < bound; v++)`
// shape, where init and bound are constants or simple variables.
func (lw *astLowerer) detectCounted(s *source.ForStmt, initStmts []ir.Stmt) *ir.Counted {
	decl, ok := s.Init.(*source.DeclStmt)
	if !ok || decl.Type != source.TypeInt {
		return nil
	}
	bnd, ok := lw.lookup(decl.Name)
	if !ok || bnd.isSlot {
		return nil
	}
	cond, ok := s.Cond.(*source.Binary)
	if !ok || cond.Op != "<" {
		return nil
	}
	if id, ok := cond.L.(*source.Ident); !ok || id.Name != decl.Name {
		return nil
	}
	boundOp, ok := lw.simpleOperand(cond.R)
	if !ok {
		return nil
	}
	if s.Post == nil {
		return nil
	}
	tgt, ok := s.Post.Target.(*source.Ident)
	if !ok || tgt.Name != decl.Name {
		return nil
	}
	stepOK := false
	if s.Post.Op == "+=" {
		if lit, ok := s.Post.Value.(*source.IntLit); ok && lit.Val == 1 {
			stepOK = true
		}
	} else if s.Post.Op == "=" {
		if bin, ok := s.Post.Value.(*source.Binary); ok && bin.Op == "+" {
			if id, ok := bin.L.(*source.Ident); ok && id.Name == decl.Name {
				if lit, ok := bin.R.(*source.IntLit); ok && lit.Val == 1 {
					stepOK = true
				}
			}
		}
	}
	if !stepOK {
		return nil
	}
	initOp, ok := lw.simpleOperand(decl.Init)
	if !ok {
		// The init value was computed into the variable; use the variable's
		// value at loop entry, which the last init statement assigned.
		initOp = ir.V(bnd.v)
		_ = initStmts
	}
	return &ir.Counted{Ind: bnd.v, Init: initOp, Bound: boundOp}
}

// simpleOperand returns the operand for a constant or plain variable
// reference without emitting code.
func (lw *astLowerer) simpleOperand(e source.Expr) (ir.Operand, bool) {
	switch e := e.(type) {
	case *source.IntLit:
		return ir.C(e.Val), true
	case *source.Ident:
		b, ok := lw.lookup(e.Name)
		if !ok || b.isSlot {
			return ir.Operand{}, false
		}
		return ir.V(b.v), true
	}
	return ir.Operand{}, false
}

func movRval(op ir.Operand, k ir.Kind) ir.Rval {
	return &ir.RvalUn{Op: ir.OpMov, Float: k == ir.KFloat, A: op}
}

func (lw *astLowerer) assign(s *source.AssignStmt) ([]ir.Stmt, error) {
	var out []ir.Stmt
	// Compute the effective RHS (compound ops read the target first).
	switch tgt := s.Target.(type) {
	case *source.Ident:
		b, ok := lw.lookup(tgt.Name)
		if !ok || b.isSlot {
			return nil, fmt.Errorf("line %d: bad assignment target %q", s.Line, tgt.Name)
		}
		k := kindOf(tgt.ExprType())
		// Fold `x = x OP e` into a single operation (keeps induction
		// increments recognizable and matches what -O3 emits).
		if s.Op == "=" {
			if bin, ok := s.Value.(*source.Binary); ok {
				if id, ok2 := bin.L.(*source.Ident); ok2 && id.Name == tgt.Name {
					if op, simple := simpleBinOp(bin.Op); simple {
						r, err := lw.expr(&out, bin.R)
						if err != nil {
							return nil, err
						}
						out = append(out, &ir.Assign{Dst: b.v, Line: s.Line,
							Src: &ir.RvalBin{Op: op, Float: k == ir.KFloat, A: ir.V(b.v), B: r}})
						return out, nil
					}
				}
			}
		}
		rhs, err := lw.expr(&out, s.Value)
		if err != nil {
			return nil, err
		}
		if s.Op == "=" {
			out = append(out, &ir.Assign{Dst: b.v, Src: movRval(rhs, k), Line: s.Line})
		} else {
			op, err := compoundOp(s.Op)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", s.Line, err)
			}
			out = append(out, &ir.Assign{Dst: b.v, Line: s.Line,
				Src: &ir.RvalBin{Op: op, Float: k == ir.KFloat, A: ir.V(b.v), B: rhs}})
		}
		return out, nil
	case *source.Index:
		b, ok := lw.lookup(tgt.Array)
		if !ok || !b.isSlot {
			return nil, fmt.Errorf("line %d: bad array target %q", s.Line, tgt.Array)
		}
		idx, err := lw.expr(&out, tgt.Idx)
		if err != nil {
			return nil, err
		}
		// Pin the index to a variable so load and store use the same value.
		idx = lw.pin(&out, idx, ir.KInt)
		rhs, err := lw.expr(&out, s.Value)
		if err != nil {
			return nil, err
		}
		k := kindOf(tgt.ExprType())
		val := rhs
		if s.Op != "=" {
			op, err := compoundOp(s.Op)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", s.Line, err)
			}
			old := lw.tmp(k)
			out = append(out, &ir.Assign{Dst: old, Line: s.Line,
				Src: &ir.RvalLoad{LoadID: lw.newLoadID(), Slot: b.slot, Idx: idx}})
			nv := lw.tmp(k)
			out = append(out, &ir.Assign{Dst: nv, Line: s.Line,
				Src: &ir.RvalBin{Op: op, Float: k == ir.KFloat, A: ir.V(old), B: rhs}})
			val = ir.V(nv)
		}
		out = append(out, &ir.Store{StoreID: lw.newStoreID(), Slot: b.slot, Idx: idx, Val: val, Line: s.Line})
		return out, nil
	}
	return nil, fmt.Errorf("line %d: unsupported assignment target", s.Line)
}

func compoundOp(op string) (ir.BinOp, error) {
	switch op {
	case "+=":
		return ir.OpAdd, nil
	case "-=":
		return ir.OpSub, nil
	case "*=":
		return ir.OpMul, nil
	case "/=":
		return ir.OpDiv, nil
	}
	return 0, &Error{Detail: fmt.Sprintf("bad compound op %q", op)}
}

func (lw *astLowerer) newLoadID() int {
	lw.p.NumLoads++
	return lw.p.NumLoads - 1
}

func (lw *astLowerer) newStoreID() int {
	lw.p.NumStores++
	return lw.p.NumStores - 1
}

// pin ensures the operand is a variable (so it can be reused).
func (lw *astLowerer) pin(out *[]ir.Stmt, op ir.Operand, k ir.Kind) ir.Operand {
	if !op.IsConst {
		return op
	}
	v := lw.tmp(k)
	*out = append(*out, &ir.Assign{Dst: v, Src: movRval(op, k)})
	return ir.V(v)
}

// expr lowers an expression, emitting temporaries into out, and returns the
// operand holding the result.
func (lw *astLowerer) expr(out *[]ir.Stmt, e source.Expr) (ir.Operand, error) {
	switch e := e.(type) {
	case *source.IntLit:
		return ir.C(e.Val), nil
	case *source.FloatLit:
		return ir.Operand{IsConst: true, Imm: int64(math.Float64bits(e.Val))}, nil
	case *source.Ident:
		b, ok := lw.lookup(e.Name)
		if !ok {
			return ir.Operand{}, fmt.Errorf("line %d: undefined %q", e.Line, e.Name)
		}
		if b.isSlot {
			return ir.Operand{}, fmt.Errorf("line %d: array %q used as a value", e.Line, e.Name)
		}
		return ir.V(b.v), nil
	case *source.Index:
		b, ok := lw.lookup(e.Array)
		if !ok || !b.isSlot {
			return ir.Operand{}, fmt.Errorf("line %d: bad array %q", e.Line, e.Array)
		}
		idx, err := lw.expr(out, e.Idx)
		if err != nil {
			return ir.Operand{}, err
		}
		v := lw.tmp(kindOf(e.ExprType()))
		*out = append(*out, &ir.Assign{Dst: v, Line: e.Line,
			Src: &ir.RvalLoad{LoadID: lw.newLoadID(), Slot: b.slot, Idx: idx}})
		return ir.V(v), nil
	case *source.Binary:
		return lw.binary(out, e)
	case *source.Unary:
		x, err := lw.expr(out, e.X)
		if err != nil {
			return ir.Operand{}, err
		}
		k := kindOf(e.ExprType())
		v := lw.tmp(k)
		switch e.Op {
		case "-":
			if k == ir.KFloat {
				*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpNeg, Float: true, A: x}, Line: e.Line})
			} else {
				*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalBin{Op: ir.OpSub, A: ir.C(0), B: x}, Line: e.Line})
			}
		case "!":
			*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalBin{Op: ir.OpEQ, A: x, B: ir.C(0)}, Line: e.Line})
		case "~":
			*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalBin{Op: ir.OpXor, A: x, B: ir.C(-1)}, Line: e.Line})
		}
		return ir.V(v), nil
	case *source.Cast:
		x, err := lw.expr(out, e.X)
		if err != nil {
			return ir.Operand{}, err
		}
		from := kindOf(e.X.ExprType())
		to := kindOf(e.To)
		if from == to {
			return x, nil
		}
		v := lw.tmp(to)
		op := ir.OpI2F
		if to == ir.KInt {
			op = ir.OpF2I
		}
		*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: op, A: x}, Line: e.Line})
		return ir.V(v), nil
	case *source.Call:
		return lw.call(out, e)
	}
	return ir.Operand{}, fmt.Errorf("lower: unknown expression %T", e)
}

func (lw *astLowerer) binary(out *[]ir.Stmt, e *source.Binary) (ir.Operand, error) {
	// Short-circuit && and || become explicit control flow.
	if e.Op == "&&" || e.Op == "||" {
		l, err := lw.expr(out, e.L)
		if err != nil {
			return ir.Operand{}, err
		}
		res := lw.tmp(ir.KInt)
		*out = append(*out, &ir.Assign{Dst: res, Src: &ir.RvalBin{Op: ir.OpNE, A: l, B: ir.C(0)}, Line: e.Line})
		var inner []ir.Stmt
		r, err := lw.expr(&inner, e.R)
		if err != nil {
			return ir.Operand{}, err
		}
		inner = append(inner, &ir.Assign{Dst: res, Src: &ir.RvalBin{Op: ir.OpNE, A: r, B: ir.C(0)}, Line: e.Line})
		if e.Op == "&&" {
			*out = append(*out, &ir.If{Cond: ir.V(res), Then: inner, Line: e.Line})
		} else {
			*out = append(*out, &ir.If{Cond: ir.V(res), Else: inner, Line: e.Line})
		}
		return ir.V(res), nil
	}
	l, err := lw.expr(out, e.L)
	if err != nil {
		return ir.Operand{}, err
	}
	r, err := lw.expr(out, e.R)
	if err != nil {
		return ir.Operand{}, err
	}
	isFloat := kindOf(e.L.ExprType()) == ir.KFloat
	var op ir.BinOp
	switch e.Op {
	case "+":
		op = ir.OpAdd
	case "-":
		op = ir.OpSub
	case "*":
		op = ir.OpMul
	case "/":
		op = ir.OpDiv
	case "%":
		op = ir.OpRem
	case "&":
		op = ir.OpAnd
	case "|":
		op = ir.OpOr
	case "^":
		op = ir.OpXor
	case "<<":
		op = ir.OpShl
	case ">>":
		op = ir.OpShr
	case "==":
		op = ir.OpEQ
	case "!=":
		op = ir.OpNE
	case "<":
		op = ir.OpLT
	case "<=":
		op = ir.OpLE
	case ">":
		op = ir.OpGT
	case ">=":
		op = ir.OpGE
	default:
		return ir.Operand{}, fmt.Errorf("line %d: unknown operator %q", e.Line, e.Op)
	}
	v := lw.tmp(kindOf(e.ExprType()))
	*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalBin{Op: op, Float: isFloat, A: l, B: r}, Line: e.Line})
	return ir.V(v), nil
}

func (lw *astLowerer) call(out *[]ir.Stmt, e *source.Call) (ir.Operand, error) {
	var args []ir.Operand
	for _, a := range e.Args {
		op, err := lw.expr(out, a)
		if err != nil {
			return ir.Operand{}, err
		}
		args = append(args, op)
	}
	switch e.Name {
	case "fabs":
		v := lw.tmp(ir.KFloat)
		*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpAbs, Float: true, A: args[0]}, Line: e.Line})
		return ir.V(v), nil
	case "abs":
		v := lw.tmp(ir.KInt)
		*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpMov, A: args[0]}, Line: e.Line})
		neg := lw.tmp(ir.KInt)
		*out = append(*out, &ir.Assign{Dst: neg, Src: &ir.RvalBin{Op: ir.OpLT, A: args[0], B: ir.C(0)}, Line: e.Line})
		*out = append(*out, &ir.If{Cond: ir.V(neg), Line: e.Line, Then: []ir.Stmt{
			&ir.Assign{Dst: v, Src: &ir.RvalBin{Op: ir.OpSub, A: ir.C(0), B: args[0]}},
		}})
		return ir.V(v), nil
	case "min", "max":
		v := lw.tmp(ir.KInt)
		*out = append(*out, &ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpMov, A: args[0]}, Line: e.Line})
		cmpOp := ir.OpLT
		if e.Name == "max" {
			cmpOp = ir.OpGT
		}
		c := lw.tmp(ir.KInt)
		*out = append(*out, &ir.Assign{Dst: c, Src: &ir.RvalBin{Op: cmpOp, A: args[1], B: args[0]}, Line: e.Line})
		*out = append(*out, &ir.If{Cond: ir.V(c), Line: e.Line, Then: []ir.Stmt{
			&ir.Assign{Dst: v, Src: &ir.RvalUn{Op: ir.OpMov, A: args[1]}},
		}})
		return ir.V(v), nil
	}
	return ir.Operand{}, fmt.Errorf("line %d: unknown builtin %q", e.Line, e.Name)
}

// simpleBinOp maps arithmetic source operators usable in the x = x OP e
// folding (comparisons and short-circuit ops are excluded).
func simpleBinOp(op string) (ir.BinOp, bool) {
	switch op {
	case "+":
		return ir.OpAdd, true
	case "-":
		return ir.OpSub, true
	case "*":
		return ir.OpMul, true
	case "/":
		return ir.OpDiv, true
	case "&":
		return ir.OpAnd, true
	case "|":
		return ir.OpOr, true
	case "^":
		return ir.OpXor, true
	}
	return 0, false
}
