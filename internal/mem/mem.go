// Package mem provides the simulated flat address space used by the Phloem
// toolchain. Programs running on the simulated Pipette machine allocate typed
// arrays here; every array occupies a contiguous, cache-line-aligned range of
// the simulated address space so that the cache model can operate on realistic
// byte addresses while the functional interpreter accesses elements by index.
package mem

import "fmt"

// Error is the typed panic value raised by memory-system misuse (kind
// mismatches, bad allocation sizes). The accessors on the hot load/store
// path keep their panic-based signatures, but the panic payload is
// structured so boundaries like sim.RunFunctional can recover it into a
// structured trap instead of crashing the process.
type Error struct {
	// Op names the failing operation ("LoadInt", "Alloc", "Kind.Size", ...).
	Op string
	// Array is the array name, when the failure concerns one.
	Array string
	// Detail describes the violation.
	Detail string
}

func (e *Error) Error() string {
	if e.Array != "" {
		return fmt.Sprintf("mem: %s on %q: %s", e.Op, e.Array, e.Detail)
	}
	return fmt.Sprintf("mem: %s: %s", e.Op, e.Detail)
}

// Kind identifies the element type of a simulated array.
type Kind int

const (
	// I32 is a 32-bit signed integer element (e.g., CSR index arrays).
	I32 Kind = iota
	// I64 is a 64-bit signed integer element.
	I64
	// F64 is a 64-bit IEEE float element (e.g., sparse matrix values).
	F64
)

// Size returns the element size in bytes.
func (k Kind) Size() int {
	switch k {
	case I32:
		return 4
	case I64, F64:
		return 8
	}
	panic(&Error{Op: "Kind.Size", Detail: fmt.Sprintf("unknown kind %d", int(k))})
}

func (k Kind) String() string {
	switch k {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// LineBytes is the cache line size used for address alignment. It matches the
// line size of the cache model in internal/cache.
const LineBytes = 64

// Array is a typed, contiguous array in the simulated address space.
type Array struct {
	// Name is a human-readable identifier (usually the source parameter name).
	Name string
	// Kind is the element type.
	Kind Kind
	// Base is the simulated byte address of element 0. Always line-aligned.
	Base uint64

	i32 []int32
	i64 []int64
	f64 []float64
}

// Len returns the number of elements in the array.
func (a *Array) Len() int {
	switch a.Kind {
	case I32:
		return len(a.i32)
	case I64:
		return len(a.i64)
	default:
		return len(a.f64)
	}
}

// Addr returns the simulated byte address of element i.
func (a *Array) Addr(i int64) uint64 {
	return a.Base + uint64(i)*uint64(a.Kind.Size())
}

// LoadInt reads element i as an int64 (sign-extending I32 elements). For F64
// arrays it returns the raw bit pattern; use LoadFloat for the numeric value.
func (a *Array) LoadInt(i int64) int64 {
	switch a.Kind {
	case I32:
		return int64(a.i32[i])
	case I64:
		return a.i64[i]
	default:
		panic(&Error{Op: "LoadInt", Array: a.Name, Detail: "array holds floats"})
	}
}

// StoreInt writes element i from an int64 (truncating for I32 elements).
func (a *Array) StoreInt(i int64, v int64) {
	switch a.Kind {
	case I32:
		a.i32[i] = int32(v)
	case I64:
		a.i64[i] = v
	default:
		panic(&Error{Op: "StoreInt", Array: a.Name, Detail: "array holds floats"})
	}
}

// LoadFloat reads element i of an F64 array.
func (a *Array) LoadFloat(i int64) float64 {
	if a.Kind != F64 {
		panic(&Error{Op: "LoadFloat", Array: a.Name, Detail: "array holds ints"})
	}
	return a.f64[i]
}

// StoreFloat writes element i of an F64 array.
func (a *Array) StoreFloat(i int64, v float64) {
	if a.Kind != F64 {
		panic(&Error{Op: "StoreFloat", Array: a.Name, Detail: "array holds ints"})
	}
	a.f64[i] = v
}

// Ints returns the underlying int64 slice of an I64 array (nil otherwise).
// It is intended for test setup and result extraction, not simulation.
func (a *Array) Ints() []int64 { return a.i64 }

// Int32s returns the underlying int32 slice of an I32 array (nil otherwise).
func (a *Array) Int32s() []int32 { return a.i32 }

// Floats returns the underlying float64 slice of an F64 array (nil otherwise).
func (a *Array) Floats() []float64 { return a.f64 }

// InBounds reports whether index i is a valid element index.
func (a *Array) InBounds(i int64) bool { return i >= 0 && i < int64(a.Len()) }

// Space is a simulated address space. Arrays are allocated at increasing,
// line-aligned addresses and never freed (simulated programs run once).
// The zero page (addresses below 64) is never allocated, so address 0 can be
// used as a sentinel.
type Space struct {
	next   uint64
	arrays []*Array
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: LineBytes}
}

// Alloc allocates a zero-initialized array of n elements.
func (s *Space) Alloc(name string, kind Kind, n int) *Array {
	if n < 0 {
		panic(&Error{Op: "Alloc", Array: name, Detail: fmt.Sprintf("negative length %d", n)})
	}
	a := &Array{Name: name, Kind: kind, Base: s.next}
	switch kind {
	case I32:
		a.i32 = make([]int32, n)
	case I64:
		a.i64 = make([]int64, n)
	case F64:
		a.f64 = make([]float64, n)
	}
	bytes := uint64(n) * uint64(kind.Size())
	// Round the next base up to the following cache line so arrays never
	// share lines (matches how the evaluated workloads lay out their data).
	s.next += (bytes + LineBytes - 1) / LineBytes * LineBytes
	if bytes == 0 {
		s.next += LineBytes
	}
	s.arrays = append(s.arrays, a)
	return a
}

// AllocInts allocates an I64 array initialized from vals.
func (s *Space) AllocInts(name string, vals []int64) *Array {
	a := s.Alloc(name, I64, len(vals))
	copy(a.i64, vals)
	return a
}

// AllocInt32s allocates an I32 array initialized from vals.
func (s *Space) AllocInt32s(name string, vals []int32) *Array {
	a := s.Alloc(name, I32, len(vals))
	copy(a.i32, vals)
	return a
}

// AllocFloats allocates an F64 array initialized from vals.
func (s *Space) AllocFloats(name string, vals []float64) *Array {
	a := s.Alloc(name, F64, len(vals))
	copy(a.f64, vals)
	return a
}

// Arrays returns all allocated arrays in allocation order.
func (s *Space) Arrays() []*Array { return s.arrays }

// Footprint returns the total allocated bytes (including alignment padding).
func (s *Space) Footprint() uint64 { return s.next - LineBytes }
