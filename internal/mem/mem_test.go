package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndAddressing(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", I64, 10)
	b := s.Alloc("b", I32, 3)
	c := s.Alloc("c", F64, 5)
	for _, arr := range []*Array{a, b, c} {
		if arr.Base%LineBytes != 0 {
			t.Errorf("%s base %d not line-aligned", arr.Name, arr.Base)
		}
	}
	if a.Addr(2) != a.Base+16 {
		t.Errorf("i64 addressing: got %d", a.Addr(2)-a.Base)
	}
	if b.Addr(2) != b.Base+8 {
		t.Errorf("i32 addressing: got %d", b.Addr(2)-b.Base)
	}
	// Arrays must not overlap.
	if b.Base < a.Addr(9)+8 {
		t.Error("arrays overlap")
	}
	if s.Footprint() == 0 {
		t.Error("footprint should be nonzero")
	}
}

func TestInt32Truncation(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("x", I32, 2)
	a.StoreInt(0, -5)
	if got := a.LoadInt(0); got != -5 {
		t.Errorf("sign extension: got %d", got)
	}
	a.StoreInt(1, 1<<40|7)
	if got := a.LoadInt(1); got != 7 {
		t.Errorf("truncation: got %d", got)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("f", F64, 4)
	f := func(v float64, i uint8) bool {
		idx := int64(i) % 4
		a.StoreFloat(idx, v)
		return a.LoadFloat(idx) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("i", I64, 8)
	f := func(v int64, i uint8) bool {
		idx := int64(i) % 8
		a.StoreInt(idx, v)
		return a.LoadInt(idx) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBounds(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", I64, 3)
	if a.InBounds(-1) || a.InBounds(3) {
		t.Error("bounds check broken")
	}
	if !a.InBounds(0) || !a.InBounds(2) {
		t.Error("valid indices rejected")
	}
}

func TestInitializedAllocs(t *testing.T) {
	s := NewSpace()
	a := s.AllocInts("a", []int64{1, 2, 3})
	if a.Len() != 3 || a.Ints()[2] != 3 {
		t.Error("AllocInts broken")
	}
	f := s.AllocFloats("f", []float64{0.5})
	if f.Floats()[0] != 0.5 {
		t.Error("AllocFloats broken")
	}
	g := s.AllocInt32s("g", []int32{-7})
	if g.Int32s()[0] != -7 {
		t.Error("AllocInt32s broken")
	}
	if len(s.Arrays()) != 3 {
		t.Error("Arrays() should list allocations")
	}
}
