// Package bench regenerates the paper's evaluation (Sec. VII): one runner
// per table and figure, printing the same rows/series the paper reports.
// Absolute numbers come from this repo's simulator and synthetic inputs; the
// claims under test are the shapes — who wins, by roughly what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/workloads"
)

// Config sizes and steers a run.
type Config struct {
	Scale workloads.Scale
	// Out receives the formatted tables.
	Out io.Writer
	// Verbose also prints per-input rows.
	Verbose bool
	// Parallelism is passed to the autotune/Search engine (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for every value; only wall-clock
	// time changes.
	Parallelism int
	// SkipSearchBaseline drops the pre-engine baseline leg (serial, no
	// branch-and-bound pruning) from the SearchPerf comparison. The native
	// test suite sets it to keep the bench package inside the go test
	// timeout; `phloembench -exp search` measures the full four-way run.
	SkipSearchBaseline bool
	// TopK sets the K for SearchPerf's static rank-and-prune leg
	// (0 = DefaultSearchTopK).
	TopK int
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

func gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// runPipe instantiates, runs, and verifies one variant on one input.
func runPipe(pipe *pipeline.Pipeline, b pipeline.Bindings, in *workloads.Input,
	cores int, verify bool) (*sim.Stats, error) {
	return runPipeBudget(pipe, b, in, cores, verify, core.Budget{})
}

// runPipeBudget is runPipe with a measurement budget applied to the machine
// (zero Budget leaves the defaults).
func runPipeBudget(pipe *pipeline.Pipeline, b pipeline.Bindings, in *workloads.Input,
	cores int, verify bool, budget core.Budget) (*sim.Stats, error) {
	inst, err := pipeline.Instantiate(pipe, arch.DefaultConfig(cores), b)
	if err != nil {
		return nil, err
	}
	inst.Machine.MaxTraceEntries = 256 << 20
	budget.Apply(inst.Machine)
	st, err := inst.Run()
	if err != nil {
		return nil, err
	}
	if verify && in != nil && in.Verify != nil {
		if err := in.Verify(inst); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// VariantStats aggregates one variant's results across a benchmark's inputs.
type VariantStats struct {
	Name string
	// Speedups over serial, per input.
	Speedups []float64
	// Representative stats (from the last input) for breakdowns.
	Stats *sim.Stats
	// SerialStats pairs with Stats for normalization.
	SerialStats *sim.Stats
}

// BenchResult is everything Figs. 9-11 need for one benchmark.
type BenchResult struct {
	Bench    *workloads.Benchmark
	Serial   *sim.Stats
	Variants []*VariantStats
	// StaticSpeedup is the static-flow pipeline's gmean speedup (the x
	// marks in Fig. 9).
	StaticSpeedup float64
}

// Trainers builds the autotuner's training callbacks for a benchmark. Each
// callback applies the per-candidate budget so pathological candidates
// abort instead of hanging the search. The callbacks bind fresh input copies
// per call and share only the read-only input structures, so concurrent
// search workers may invoke them on different pipelines simultaneously.
func Trainers(bench *workloads.Benchmark) []core.TrainFunc {
	var out []core.TrainFunc
	for _, in := range bench.Train {
		in := in
		out = append(out, func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
			st, err := runPipeBudget(p, in.Bind(), in, 1, true, b)
			if err != nil {
				return 0, err
			}
			return st.Cycles, nil
		})
	}
	return out
}

// autotuneOptions is the standard profile-guided configuration for a
// benchmark under this Config.
func autotuneOptions(cfg Config, bench *workloads.Benchmark) core.Options {
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	opt.Training = Trainers(bench)
	opt.Parallelism = cfg.Parallelism
	return opt
}

// RunBenchmark measures serial, data-parallel, Phloem (PGO + static), and
// manual variants of one benchmark over its test inputs.
func RunBenchmark(cfg Config, bench *workloads.Benchmark) (*BenchResult, error) {
	serialProg, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", bench.Name, err)
	}
	serialPipe := pipeline.NewSerial(serialProg)

	staticRes, err := core.Compile(serialProg, core.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("%s static: %w", bench.Name, err)
	}
	pgoRes, err := core.Compile(serialProg, autotuneOptions(cfg, bench))
	if err != nil {
		return nil, fmt.Errorf("%s autotune: %w", bench.Name, err)
	}
	dp, err := workloads.BuildDataParallel(bench.DPSource, 4, 4)
	if err != nil {
		return nil, fmt.Errorf("%s dp: %w", bench.Name, err)
	}
	var manual *pipeline.Pipeline
	if bench.Manual != nil {
		manual, err = bench.Manual()
		if err != nil {
			return nil, fmt.Errorf("%s manual: %w", bench.Name, err)
		}
	} else {
		// Expert-selected points: oracle search over the training suite
		// stands in for hand tuning (see DESIGN.md substitutions).
		manual = pgoRes.Pipeline
	}

	res := &BenchResult{Bench: bench}
	dpV := &VariantStats{Name: "Data-parallel"}
	pgoV := &VariantStats{Name: "Phloem"}
	staticV := &VariantStats{Name: "Phloem-static"}
	manV := &VariantStats{Name: "Manual"}

	for _, in := range bench.Test {
		ser, err := runPipe(serialPipe, in.Bind(), in, 1, true)
		if err != nil {
			return nil, fmt.Errorf("%s/%s serial: %w", bench.Name, in.Name, err)
		}
		res.Serial = ser
		add := func(v *VariantStats, pipe *pipeline.Pipeline, b pipeline.Bindings) error {
			st, err := runPipe(pipe, b, in, 1, true)
			if err != nil {
				return fmt.Errorf("%s/%s %s: %w", bench.Name, in.Name, v.Name, err)
			}
			v.Speedups = append(v.Speedups, float64(ser.Cycles)/float64(st.Cycles))
			v.Stats = st
			v.SerialStats = ser
			return nil
		}
		if err := add(dpV, dp, in.BindDP(4)); err != nil {
			return nil, err
		}
		if err := add(pgoV, pgoRes.Pipeline, in.Bind()); err != nil {
			return nil, err
		}
		if err := add(staticV, staticRes.Pipeline, in.Bind()); err != nil {
			return nil, err
		}
		if err := add(manV, manual, in.Bind()); err != nil {
			return nil, err
		}
		if cfg.Verbose {
			cfg.printf("  %-12s serial=%-9d dp=%.2fx phloem=%.2fx static=%.2fx manual=%.2fx\n",
				in.Name, ser.Cycles,
				dpV.Speedups[len(dpV.Speedups)-1],
				pgoV.Speedups[len(pgoV.Speedups)-1],
				staticV.Speedups[len(staticV.Speedups)-1],
				manV.Speedups[len(manV.Speedups)-1])
		}
	}
	res.Variants = []*VariantStats{dpV, pgoV, manV}
	res.StaticSpeedup = gmean(staticV.Speedups)
	return res, nil
}

// Fig9 prints the per-benchmark speedups over serial.
func Fig9(cfg Config, results []*BenchResult) {
	cfg.printf("\nFig. 9: speedup over serial (gmean across test inputs)\n")
	cfg.printf("%-8s %14s %14s %16s %14s\n", "bench", "data-parallel", "phloem(PGO)", "phloem(static x)", "manual")
	var all []float64
	for _, r := range results {
		row := map[string]float64{}
		for _, v := range r.Variants {
			row[v.Name] = gmean(v.Speedups)
		}
		cfg.printf("%-8s %13.2fx %13.2fx %15.2fx %13.2fx\n",
			r.Bench.Name, row["Data-parallel"], row["Phloem"], r.StaticSpeedup, row["Manual"])
		all = append(all, row["Phloem"])
	}
	cfg.printf("%-8s %42.2fx  (paper: 1.7x)\n", "gmean", gmean(all))
}

// Fig10 prints the cycle breakdowns normalized to serial.
func Fig10(cfg Config, results []*BenchResult) {
	cfg.printf("\nFig. 10: cycle breakdown normalized to serial (issue/backend/queue/other)\n")
	cfg.printf("%-8s %-14s %8s %8s %8s %8s %8s\n",
		"bench", "variant", "total", "issue", "backend", "queue", "other")
	for _, r := range results {
		base := float64(breakdownTotal(r.Serial))
		print := func(name string, st *sim.Stats) {
			b := st.TotalBreakdown()
			cfg.printf("%-8s %-14s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
				r.Bench.Name, name, float64(b.Total())/base,
				float64(b.Issue)/base, float64(b.Backend)/base,
				float64(b.Queue)/base, float64(b.Other)/base)
		}
		print("Serial", r.Serial)
		for _, v := range r.Variants {
			print(v.Name, v.Stats)
		}
	}
}

func breakdownTotal(st *sim.Stats) uint64 {
	return st.TotalBreakdown().Total()
}

// Fig11 prints the energy breakdowns normalized to serial.
func Fig11(cfg Config, results []*BenchResult) {
	cfg.printf("\nFig. 11: energy normalized to serial (core/cache/dram/queue+ra/static)\n")
	cfg.printf("%-8s %-14s %8s %8s %8s %8s %8s %8s\n",
		"bench", "variant", "total", "core", "cache", "dram", "queue", "static")
	for _, r := range results {
		base := r.Serial.Energy.Total()
		print := func(name string, st *sim.Stats) {
			e := st.Energy
			cfg.printf("%-8s %-14s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
				r.Bench.Name, name, e.Total()/base, e.CoreDynamic/base,
				e.CacheAccess/base, e.DRAM/base, e.QueueRA/base, e.Static/base)
		}
		print("Serial", r.Serial)
		for _, v := range r.Variants {
			print(v.Name, v.Stats)
		}
	}
}

// Fig6 prints the BFS pass-ablation ladder (speedup as passes accumulate).
func Fig6(cfg Config) error {
	cfg.printf("\nFig. 6: BFS speedup with each added pass (road-network input)\n")
	bench, err := workloads.ByName(cfg.Scale, "BFS")
	if err != nil {
		return err
	}
	in := bench.Test[len(bench.Test)-1] // the road network
	serialProg, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		return err
	}
	ser, err := runPipe(pipeline.NewSerial(serialProg), in.Bind(), in, 1, true)
	if err != nil {
		return err
	}
	steps := []struct {
		name string
		opt  passes.Options
	}{
		{"Q (add queues)", passes.Options{}},
		{"R,Q", passes.Options{Recompute: true}},
		{"CV,R,Q", passes.Options{Recompute: true, CtrlValues: true}},
		{"CV,DCE,R,Q", passes.Options{Recompute: true, CtrlValues: true, InterstageDCE: true}},
		{"CH,CV,DCE,R,Q", passes.Options{Recompute: true, CtrlValues: true, InterstageDCE: true, Handlers: true}},
		{"RA,CH,CV,DCE,R,Q", passes.Default()},
	}
	cfg.printf("%-18s %10s %9s\n", "passes", "cycles", "speedup")
	cfg.printf("%-18s %10d %8.2fx\n", "serial", ser.Cycles, 1.0)
	for _, s := range steps {
		opt := core.DefaultOptions()
		opt.EnableAblation = true
		opt.Passes = s.opt
		res, err := core.Compile(serialProg, opt)
		if err != nil {
			return fmt.Errorf("fig6 %s: %w", s.name, err)
		}
		st, err := runPipe(res.Pipeline, in.Bind(), in, 1, true)
		if err != nil {
			return fmt.Errorf("fig6 %s: %w", s.name, err)
		}
		cfg.printf("%-18s %10d %8.2fx\n", s.name, st.Cycles, float64(ser.Cycles)/float64(st.Cycles))
	}
	cfg.printf("(paper: control passes build to ~1.85x; RAs lift BFS to ~4.7x)\n")
	return nil
}

// Fig13 prints the stage-count distribution of the pipeline search.
func Fig13(cfg Config) error {
	cfg.printf("\nFig. 13: training-input speedup of searched pipelines by stage count\n")
	for _, name := range []string{"BFS", "CC", "SpMM"} {
		bench, err := workloads.ByName(cfg.Scale, name)
		if err != nil {
			return err
		}
		serialProg, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return err
		}
		// Serial baseline summed over training inputs.
		var serTotal uint64
		for _, in := range bench.Train {
			st, err := runPipe(pipeline.NewSerial(serialProg), in.Bind(), in, 1, true)
			if err != nil {
				return err
			}
			serTotal += st.Cycles
		}
		opt := core.DefaultOptions()
		opt.Training = Trainers(bench)
		opt.Parallelism = cfg.Parallelism
		// Fig. 13 is the landscape itself: disable branch-and-bound so slow
		// candidates report true cycle counts instead of SkipBudget.
		opt.Exhaustive = true
		points, err := core.Search(serialProg, opt)
		if err != nil {
			return err
		}
		byStage := map[int][]float64{}
		measured, skipped := 0, 0
		for _, p := range points {
			if p.Skip != nil { // dropped candidates carry no cycle count
				skipped++
				continue
			}
			measured++
			byStage[p.TotalStages] = append(byStage[p.TotalStages],
				float64(serTotal)/float64(p.Cycles))
		}
		var stages []int
		for s := range byStage {
			stages = append(stages, s)
		}
		sort.Ints(stages)
		cfg.printf("%-6s searched %d pipelines (%d skipped)\n", name, measured, skipped)
		for _, s := range stages {
			xs := byStage[s]
			lo, hi := xs[0], xs[0]
			for _, x := range xs {
				lo = math.Min(lo, x)
				hi = math.Max(hi, x)
			}
			cfg.printf("  %2d stages (+RAs): n=%-3d best=%5.2fx worst=%5.2fx\n",
				s, len(xs), hi, lo)
		}
	}
	cfg.printf("(paper: BFS peaks at 4 stages; SpMM degrades as stages are added)\n")
	return nil
}
