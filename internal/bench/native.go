package bench

// The native-backend benchmark behind `phloembench -exp native`: every suite
// benchmark is compiled once (commopt on, so native channels carry the
// pass-inferred capacities) and its largest test input runs through the full
// timing simulator and the native Go-concurrency backend, comparing wall
// time at seed scale; then a BFS scale sweep grows grid graphs past the
// point the timing simulator can finish within a fixed cycle budget while
// the native backend keeps producing verified functional results. Both legs
// of every row are verified and must execute identical instruction counts —
// the report doubles as an end-to-end run of the differential contract.
//
// Honesty note, baked into the report's "note" field: on a single-core host
// the native backend's goroutines time-slice on one CPU, so the speedup
// column measures the cost of cycle-accurate *simulation* (trace recording
// plus timing replay) against direct execution — wall-clock speedup and
// scale reach, not parallel speedup. Wall columns are never compared by the
// regression differ.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/native"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/workloads"
)

// NativeSweepCycleBudget is the fixed simulator cycle budget for the scale
// sweep: a sweep row whose timing simulation would run past this many
// cycles is recorded as a DNF. The budget is part of the report schema so
// committed and fresh reports always mean the same thing by "the simulator
// cannot reach this size".
const NativeSweepCycleBudget = 32 << 20

// nativeSweepSides lists the BFS grid sweep sizes (side length of an
// n x n grid). BFS on an n x n grid costs ~n^2 cycles scaled by the
// frontier shape; 400x400 sits just inside the budget above and 800x800
// (~57M cycles) is past it, so the largest size demonstrates scale reach:
// only the native backend produces (verified) results there.
var nativeSweepSides = []int{50, 100, 200, 400, 800}

// NativeRow is one benchmark's seed-scale sim-vs-native comparison.
type NativeRow struct {
	Name  string `json:"name"`
	Input string `json:"input"`
	// Stages/Queues pin the compiled pipeline's shape (exact metrics).
	Stages int `json:"stages"`
	Queues int `json:"queues"`
	// Cycles is the timing simulator's result (the perf model's output;
	// compared with tolerance).
	Cycles uint64 `json:"cycles"`
	// Instructions is the dynamic micro-op count; both backends executed
	// exactly this many or the row would have failed.
	Instructions uint64 `json:"instructions"`
	// Wall columns are host-dependent and never compared.
	SimWallMS    float64 `json:"sim_wall_ms"`
	NativeWallMS float64 `json:"native_wall_ms"`
	// Speedup is SimWallMS/NativeWallMS (host-dependent, never compared).
	Speedup float64 `json:"speedup"`
}

// NativeSweepRow is one BFS sweep size. SimOK distinguishes completed
// simulations from cycle-budget DNFs; native results are present either
// way.
type NativeSweepRow struct {
	Input    string `json:"input"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// SimOK is false when the timing simulation was abandoned at the
	// sweep cycle budget (SimStatus says why); a committed true turning
	// false is a regression.
	SimOK     bool   `json:"sim_ok"`
	SimStatus string `json:"sim_status"` // ok|cycle-budget|trace-limit
	SimCycles uint64 `json:"sim_cycles,omitempty"`
	// Instructions is the native backend's executed micro-op count,
	// cross-checked against the functional phase when the simulator
	// finished this size.
	Instructions uint64  `json:"instructions"`
	SimWallMS    float64 `json:"sim_wall_ms,omitempty"`
	NativeWallMS float64 `json:"native_wall_ms"`
}

// NativeReport is the BENCH_native.json schema.
type NativeReport struct {
	HostInfo
	// Note states what the wall-clock numbers do and do not claim.
	Note             string           `json:"note"`
	SweepCycleBudget uint64           `json:"sweep_cycle_budget"`
	Benchmarks       []NativeRow      `json:"benchmarks"`
	Sweep            []NativeSweepRow `json:"sweep"`
	// SimDNF counts sweep sizes the simulator could not finish within the
	// cycle budget (exact: the budget and inputs are deterministic).
	SimDNF int `json:"sim_dnf"`
	// Speedup aggregates (host-dependent, never compared).
	MinSpeedup     float64 `json:"min_speedup"`
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// nativeNote is the report's standing honesty disclaimer.
const nativeNote = "wall-clock speedup of direct execution over cycle-accurate simulation " +
	"(functional pass + trace recording + timing replay) on this host; on a single-core " +
	"machine this is NOT parallel speedup — the native backend's goroutines time-slice " +
	"on one CPU. The sweep shows scale reach: sizes the simulator cannot finish within " +
	"the fixed cycle budget still produce verified functional results natively."

// nativeInstance compiles-and-instantiates with the bench suite's trace
// headroom. Native runs reuse MaxTraceEntries as an instruction cap, so the
// sweep raises it: the native backend records no trace and has no memory
// reason for the cap.
func nativeInstance(pl *pipeline.Pipeline, bind pipeline.Bindings, traceCap int) (*pipeline.Instance, error) {
	inst, err := pipeline.Instantiate(pl, arch.DefaultConfig(1), bind)
	if err != nil {
		return nil, err
	}
	inst.Machine.MaxTraceEntries = traceCap
	return inst, nil
}

// runNativeLeg executes the native leg and verifies it.
func runNativeLeg(pl *pipeline.Pipeline, in *workloads.Input, traceCap int) (*native.Stats, error) {
	inst, err := nativeInstance(pl, in.Bind(), traceCap)
	if err != nil {
		return nil, err
	}
	st, err := native.Run(inst.Machine, native.Options{})
	if err != nil {
		return nil, err
	}
	if err := in.Verify(inst); err != nil {
		return nil, err
	}
	return st, nil
}

// NativePerf runs the seed-scale comparison and the BFS scale sweep and
// returns the report. Families, when non-empty, restricts the seed-scale
// table (the sweep always runs) — the package tests use it to stay inside
// the go test timeout.
func NativePerf(cfg Config, families ...string) (*NativeReport, error) {
	rep := &NativeReport{
		HostInfo:         Host(cfg.Scale),
		Note:             nativeNote,
		SweepCycleBudget: NativeSweepCycleBudget,
	}
	keep := map[string]bool{}
	for _, f := range families {
		keep[f] = true
	}
	opt := core.DefaultOptions()
	opt.CommOpt = true

	cfg.printf("\nNative backend: wall time vs the timing simulator (largest test input per family)\n")
	cfg.printf("%-8s %-14s %7s %7s %12s %14s %12s %12s %8s\n",
		"bench", "input", "stages", "queues", "cycles", "instructions", "sim-wall", "native-wall", "speedup")
	var speedups []float64
	for _, b := range workloads.Benchmarks(cfg.Scale) {
		if len(keep) > 0 && !keep[b.Name] {
			continue
		}
		prog, err := workloads.CompileSerial(b.SerialSource)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		res, err := core.Compile(prog, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		in := b.Test[len(b.Test)-1]

		simStart := time.Now()
		st, err := runPipe(res.Pipeline, in.Bind(), in, 1, true)
		if err != nil {
			return nil, fmt.Errorf("%s (sim): %w", b.Name, err)
		}
		simWall := time.Since(simStart)

		nst, err := runNativeLeg(res.Pipeline, in, 256<<20)
		if err != nil {
			return nil, fmt.Errorf("%s (native): %w", b.Name, err)
		}
		if nst.Instructions != st.Instructions {
			return nil, fmt.Errorf("%s: native executed %d instructions, simulator %d — differential contract broken",
				b.Name, nst.Instructions, st.Instructions)
		}
		row := NativeRow{
			Name: b.Name, Input: in.Name,
			Stages: res.Pipeline.TotalStages(), Queues: len(res.Pipeline.Queues),
			Cycles: st.Cycles, Instructions: st.Instructions,
			SimWallMS:    float64(simWall.Microseconds()) / 1e3,
			NativeWallMS: float64(nst.Wall.Microseconds()) / 1e3,
		}
		row.Speedup = row.SimWallMS / row.NativeWallMS
		speedups = append(speedups, row.Speedup)
		rep.Benchmarks = append(rep.Benchmarks, row)
		cfg.printf("%-8s %-14s %7d %7d %12d %14d %10.1fms %10.1fms %7.1fx\n",
			row.Name, row.Input, row.Stages, row.Queues, row.Cycles, row.Instructions,
			row.SimWallMS, row.NativeWallMS, row.Speedup)
	}
	if len(speedups) > 0 {
		rep.MinSpeedup = speedups[0]
		for _, s := range speedups {
			rep.MinSpeedup = math.Min(rep.MinSpeedup, s)
		}
		rep.GeomeanSpeedup = gmean(speedups)
		cfg.printf("speedup: min %.1fx, geomean %.1fx (%s)\n", rep.MinSpeedup, rep.GeomeanSpeedup, "wall-clock vs timing simulation; see note")
	}

	if err := nativeSweep(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// nativeSweep grows BFS grid graphs past the simulator's cycle budget.
func nativeSweep(cfg Config, rep *NativeReport) error {
	b, err := workloads.ByName(cfg.Scale, "BFS")
	if err != nil {
		return err
	}
	prog, err := workloads.CompileSerial(b.SerialSource)
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	opt.CommOpt = true
	res, err := core.Compile(prog, opt)
	if err != nil {
		return err
	}

	cfg.printf("\nBFS grid sweep: scale reach past the simulator's %d-cycle budget\n", uint64(NativeSweepCycleBudget))
	cfg.printf("%-12s %9s %9s %-12s %12s %14s %12s %12s\n",
		"input", "vertices", "edges", "sim", "sim-cycles", "instructions", "sim-wall", "native-wall")
	for _, side := range nativeSweepSides {
		name := fmt.Sprintf("grid-%dx%d", side, side)
		g := graph.Grid(name, side, side, 25)
		in := &workloads.Input{
			Name: name,
			Bind: func() pipeline.Bindings { return workloads.BFSBindings(g, 0) },
			Verify: func(inst *pipeline.Instance) error {
				return workloads.BFSVerify(inst, g, 0)
			},
		}
		row := NativeSweepRow{Input: name, Vertices: g.NumVertices(), Edges: g.NumEdges()}

		simInst, err := nativeInstance(res.Pipeline, in.Bind(), 256<<20)
		if err != nil {
			return err
		}
		simInst.Machine.Cfg.CycleBudget = NativeSweepCycleBudget
		simStart := time.Now()
		st, simErr := simInst.Run()
		switch {
		case simErr == nil:
			if err := in.Verify(simInst); err != nil {
				return fmt.Errorf("%s (sim): %w", name, err)
			}
			row.SimOK, row.SimStatus = true, "ok"
			row.SimCycles = st.Cycles
			row.SimWallMS = float64(time.Since(simStart).Microseconds()) / 1e3
		case isBudgetStop(simErr):
			row.SimStatus = budgetStatus(simErr)
			rep.SimDNF++
		default:
			return fmt.Errorf("%s (sim): %w", name, simErr)
		}

		nst, err := runNativeLeg(res.Pipeline, in, 1<<40)
		if err != nil {
			return fmt.Errorf("%s (native): %w", name, err)
		}
		row.Instructions = nst.Instructions
		row.NativeWallMS = float64(nst.Wall.Microseconds()) / 1e3

		rep.Sweep = append(rep.Sweep, row)
		simWall, simCyc := "-", "-"
		if row.SimOK {
			simWall = fmt.Sprintf("%.1fms", row.SimWallMS)
			simCyc = fmt.Sprintf("%d", row.SimCycles)
		}
		cfg.printf("%-12s %9d %9d %-12s %12s %14d %12s %10.1fms\n",
			row.Input, row.Vertices, row.Edges, row.SimStatus, simCyc, row.Instructions,
			simWall, row.NativeWallMS)
	}
	cfg.printf("simulator DNFs: %d/%d sweep sizes (native completed and verified all %d)\n",
		rep.SimDNF, len(rep.Sweep), len(rep.Sweep))
	return nil
}

// isBudgetStop reports whether a simulator error is one of the two
// budget guardrails the sweep treats as a DNF rather than a failure.
func isBudgetStop(err error) bool {
	return errors.Is(err, sim.ErrCycleBudget) || errors.Is(err, sim.ErrTraceLimit)
}

func budgetStatus(err error) string {
	if errors.Is(err, sim.ErrTraceLimit) {
		return "trace-limit"
	}
	return "cycle-budget"
}

// NativeJSON runs NativePerf and writes the report to path.
func NativeJSON(cfg Config, path string) error {
	rep, err := NativePerf(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DiffNativeReports compares two native reports. Only deterministic
// metrics are compared: pipeline shape, simulator cycles, instruction
// counts, and sweep reachability. Wall columns and speedups are
// host-dependent and never compared.
func DiffNativeReports(old, new *NativeReport, opt DiffOptions) []DiffFinding {
	d := &differ{opt: opt}
	if old.Scale != new.Scale {
		d.structural("", fmt.Sprintf("scale mismatch: old %q vs new %q (not comparable)", old.Scale, new.Scale))
		return d.findings
	}
	d.count("", "sweep_cycle_budget", int(old.SweepCycleBudget), int(new.SweepCycleBudget))
	d.count("", "sim_dnf", old.SimDNF, new.SimDNF)
	byName := map[string]*NativeRow{}
	for i := range new.Benchmarks {
		byName[new.Benchmarks[i].Name] = &new.Benchmarks[i]
	}
	for i := range old.Benchmarks {
		o := &old.Benchmarks[i]
		n, ok := byName[o.Name]
		if !ok {
			d.structural(o.Name, "benchmark missing from new report")
			continue
		}
		delete(byName, o.Name)
		d.count(o.Name, "stages", o.Stages, n.Stages)
		d.count(o.Name, "queues", o.Queues, n.Queues)
		d.cycles(o.Name, "cycles", o.Cycles, n.Cycles)
		d.cycles(o.Name, "instructions", o.Instructions, n.Instructions)
	}
	for name := range byName {
		d.structural(name, "benchmark only in new report")
	}
	bySize := map[string]*NativeSweepRow{}
	for i := range new.Sweep {
		bySize[new.Sweep[i].Input] = &new.Sweep[i]
	}
	for i := range old.Sweep {
		o := &old.Sweep[i]
		n, ok := bySize[o.Input]
		if !ok {
			d.structural(o.Input, "sweep size missing from new report")
			continue
		}
		delete(bySize, o.Input)
		d.count(o.Input, "vertices", o.Vertices, n.Vertices)
		d.flag(o.Input, "sim_ok", o.SimOK, n.SimOK)
		d.cycles(o.Input, "instructions", o.Instructions, n.Instructions)
		if o.SimOK && n.SimOK {
			d.cycles(o.Input, "sim_cycles", o.SimCycles, n.SimCycles)
		}
	}
	for name := range bySize {
		d.structural(name, "sweep size only in new report")
	}
	return d.findings
}
