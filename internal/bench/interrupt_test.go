package bench

// Suite-wide interrupt/resume checks: on every benchmark family, an
// autotune interrupted mid-flight with a checkpoint journal and then
// resumed reproduces the uninterrupted serial run's winner, counters,
// skips, and SearchPoint order byte-identically — at Parallelism 1, 4,
// and GOMAXPROCS (trimmed to just 4 under -race and for SpMM, like the
// other suite sweeps, since the reference leg already pins serial
// equivalence and SpMM's exhaustive search dominates wall time).

import (
	"path/filepath"
	"testing"

	"phloem/internal/core"
	"phloem/internal/workloads"
)

// interruptParallelisms is the interrupt/resume sweep: under -race the
// expensive legs collapse to the fixed parallel one, and SpMM — whose
// exhaustive search dominates the suite's wall time — keeps a single leg
// in plain mode too. The journal/cancel surface is family-independent and
// the cheaper families sweep the full matrix, so the extra SpMM legs only
// buy per-package-timeout risk.
func interruptParallelisms(bench string) []int {
	if raceEnabled || bench == "SpMM" {
		return []int{4}
	}
	return []int{1, 4, 0}
}

func TestInterruptResumeAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run matrix in -short mode")
	}
	cfg := testConfig()
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			if raceEnabled && bench.Name == "SpMM" {
				// The journal/cancel concurrency surface is family-independent
				// and already swept by the cheaper families; SpMM's ~20-minute
				// race-mode matrix adds nothing but timeout risk.
				t.Skip("SpMM interrupt matrix under -race")
			}
			prog, err := workloads.CompileSerial(bench.SerialSource)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.Compile(prog, interruptOptions(cfg, bench, 1))
			if err != nil {
				t.Fatal(err)
			}
			want := searchSignature(ref)
			for _, par := range interruptParallelisms(bench.Name) {
				path := filepath.Join(t.TempDir(), "ckpt.jsonl")
				partial, resumed, err := interruptResume(cfg, bench, prog, path, par)
				if err != nil {
					t.Fatalf("par %d: %v", par, err)
				}
				if partial.Pipeline == nil {
					t.Fatalf("par %d: interrupted run returned no best-so-far pipeline", par)
				}
				if resumed.Replayed == 0 {
					t.Errorf("par %d: resumed run replayed nothing", par)
				}
				if got := searchSignature(resumed); got != want {
					t.Errorf("par %d: resumed result differs from uninterrupted:\n--- uninterrupted\n%s\n--- resumed\n%s",
						par, want, got)
				}
			}
		})
	}
}
