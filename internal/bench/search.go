package bench

// The search-engine benchmark: autotunes every benchmark in the suite four
// ways — the pre-engine baseline (serial, every candidate measured under the
// full BudgetFactor budget, the cost profile the search had before the
// branch-and-bound engine), the engine fully serial, the engine with the
// configured worker parallelism, and the engine with Options.TopK static
// rank-and-prune. The two engine runs must pick byte-identical results (the
// determinism contract), and the baseline must agree on the winning
// pipeline; the top-K leg records whether its winner agrees too (pruning by
// static prediction is allowed to miss, so disagreement is reported, not
// fatal). The report carries wall-clock time per leg, the headline speedup
// (baseline vs parallel engine: pruning + dedup + parallelism combined),
// the engine-only parallel speedup, the top-K leg's rank-phase/measure-phase
// split, and the per-benchmark Spearman correlation between the static cost
// model's predicted cycles and the simulator's measured cycles.
// `phloembench -exp search` writes the report to BENCH_search.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"phloem/internal/core"
	"phloem/internal/costmodel"
	"phloem/internal/workloads"
)

// DefaultSearchTopK is the K the SearchPerf top-K leg uses when Config.TopK
// is zero — the same K the cross-benchmark winner-agreement test pins.
const DefaultSearchTopK = 5

// SearchRow is one benchmark's search measurement across the four legs.
type SearchRow struct {
	Name string `json:"name"`
	// Enumerated counts candidate configurations walked (duplicates
	// included); Searched, Deduped, and Skipped split them up.
	Enumerated int `json:"enumerated"`
	Searched   int `json:"searched"`
	Deduped    int `json:"deduped"`
	Skipped    int `json:"skipped"`
	// BestStages/BestCycles identify the winning pipeline (identical
	// across the baseline/serial/parallel legs by construction; the top-K
	// leg's winner is reported separately via TopKCycles/TopKAgrees).
	BestStages int    `json:"best_stages"`
	BestCycles uint64 `json:"best_train_cycles"`
	// BaselineMS is the pre-engine search: serial, no candidate pruning
	// (0 when the baseline leg is skipped).
	BaselineMS float64 `json:"baseline_ms"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	// Speedup is baseline/parallel — the full win of the engine over the
	// search it replaced (serial/parallel when the baseline leg is skipped).
	Speedup float64 `json:"speedup"`
	// ParSpeedup is serial/parallel: the worker-pool contribution alone.
	ParSpeedup      float64 `json:"parallel_speedup"`
	SerialCandsSec  float64 `json:"candidates_per_sec_serial"`
	ParallelCandSec float64 `json:"candidates_per_sec_parallel"`
	// The top-K leg: serial engine with Options.TopK rank-and-prune.
	// TopKRankMS is the static rank phase alone (build + cost model);
	// TopKMS - TopKRankMS is the measurement phase.
	TopKMS       float64 `json:"topk_ms"`
	TopKRankMS   float64 `json:"topk_rank_ms"`
	TopKPruned   int     `json:"topk_pruned"`
	TopKMeasured int     `json:"topk_measured"`
	// TopKAgrees reports whether the top-K leg selected the same winner
	// (description and training cycles) as the unpruned engine.
	TopKAgrees bool `json:"topk_agrees"`
	// TopKCycles is the top-K leg winner's training cycle count (equals
	// BestCycles when TopKAgrees).
	TopKCycles uint64 `json:"topk_train_cycles"`
	// TopKSpeedup is serial/topk: the static-pruning contribution alone.
	TopKSpeedup float64 `json:"topk_speedup"`
	// RankCorrelation is the Spearman rank correlation between the cost
	// model's predicted cycles and the simulator's measured training cycles
	// over this benchmark's measured (non-skipped) candidates, taken from
	// the exhaustive baseline leg when it ran (every candidate measured to
	// completion) and the serial engine leg otherwise. RankPoints is the
	// number of candidates behind the number; 0 or 1 point yields 0.
	RankCorrelation float64 `json:"rank_correlation"`
	RankPoints      int     `json:"rank_points"`
}

// SearchReport is the BENCH_search.json schema.
type SearchReport struct {
	Parallelism int `json:"parallelism"`
	// TopK is the K the top-K leg pruned to.
	TopK int `json:"topk"`
	// HostInfo is the shared environment/scale metadata block (flattened
	// into the JSON header, same keys as every other BENCH_*.json report).
	HostInfo
	Benchmarks  []SearchRow `json:"benchmarks"`
	TotalBaseMS float64     `json:"total_baseline_ms"`
	TotalSerMS  float64     `json:"total_serial_ms"`
	TotalParMS  float64     `json:"total_parallel_ms"`
	TotalTopKMS float64     `json:"total_topk_ms"`
	// Speedup is total baseline/parallel (serial/parallel when the baseline
	// leg is skipped); ParSpeedup is total serial/parallel; TopKSpeedup is
	// total serial/topk.
	Speedup     float64 `json:"speedup"`
	ParSpeedup  float64 `json:"parallel_speedup"`
	TopKSpeedup float64 `json:"topk_speedup"`
	// MeanRankCorrelation averages RankCorrelation over benchmarks with 2+
	// measured points.
	MeanRankCorrelation float64 `json:"mean_rank_correlation"`
}

// searchSignature summarizes everything observable about an autotune result;
// serial and parallel engine runs must agree on it exactly.
func searchSignature(res *core.Result) string {
	sig := fmt.Sprintf("best=%q stages=%d ras=%d cycles=%d searched=%d deduped=%d enum=%d",
		res.Pipeline.Description, res.Pipeline.NumStages(), len(res.Pipeline.RAs),
		res.TrainCycles, res.Searched, res.Deduped, res.Enumerated)
	for _, s := range res.Skips {
		sig += fmt.Sprintf("|skip phase=%d subset=%v reason=%s err=%v", s.Phase, s.Subset, s.Reason, s.Err)
	}
	for _, p := range res.Points {
		sig += fmt.Sprintf("|pt subset=%v stages=%d cycles=%d pred=%d rank=%d skipped=%v",
			p.Subset, p.TotalStages, p.Cycles, p.PredictedCycles, p.PredictedRank, p.Skip != nil)
	}
	return sig
}

// rankCorrelation computes the Spearman correlation between predicted and
// measured cycles over a result's measured (non-skipped, priced) candidates.
func rankCorrelation(res *core.Result) (corr float64, n int) {
	var pred, meas []float64
	for _, pt := range res.Points {
		if pt.Skip == nil && pt.PredictedCycles > 0 {
			pred = append(pred, float64(pt.PredictedCycles))
			meas = append(meas, float64(pt.Cycles))
		}
	}
	return costmodel.SpearmanRank(pred, meas), len(pred)
}

// SearchPerf runs the baseline-vs-serial-vs-parallel-vs-topK autotune
// comparison over the whole suite and returns the report. Parallelism and
// TopK come from cfg (0 = GOMAXPROCS / DefaultSearchTopK);
// cfg.SkipSearchBaseline drops the (slow) baseline leg.
func SearchPerf(cfg Config) (*SearchReport, error) {
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	topK := cfg.TopK
	if topK <= 0 {
		topK = DefaultSearchTopK
	}
	rep := &SearchReport{Parallelism: par, TopK: topK, HostInfo: Host(cfg.Scale)}
	cfg.printf("\nSearch engine: baseline (no pruning) vs serial vs parallel vs top-%d autotune (parallelism %d)\n",
		topK, par)
	cfg.printf("%-8s %6s %6s %6s %6s %11s %10s %10s %10s %8s %8s %6s %6s\n",
		"bench", "enum", "meas", "dedup", "skip", "baseline ms", "serial ms", "par ms", "topk ms",
		"speedup", "par-only", "agree", "rho")
	for _, bench := range workloads.Benchmarks(cfg.Scale) {
		prog, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench.Name, err)
		}
		run := func(parallelism int, exhaustive bool, topk int) (*core.Result, float64, error) {
			opt := autotuneOptions(cfg, bench)
			opt.Parallelism = parallelism
			opt.Exhaustive = exhaustive
			opt.TopK = topk
			start := time.Now()
			res, err := core.Compile(prog, opt)
			if err != nil {
				return nil, 0, fmt.Errorf("%s (parallelism %d): %w", bench.Name, parallelism, err)
			}
			return res, float64(time.Since(start).Microseconds()) / 1e3, nil
		}
		var baseMS float64
		var baseRes *core.Result
		if !cfg.SkipSearchBaseline {
			if baseRes, baseMS, err = run(1, true, 0); err != nil {
				return nil, err
			}
		}
		serRes, serMS, err := run(1, false, 0)
		if err != nil {
			return nil, err
		}
		parRes, parMS, err := run(par, false, 0)
		if err != nil {
			return nil, err
		}
		topRes, topMS, err := run(1, false, topK)
		if err != nil {
			return nil, err
		}
		if s, p := searchSignature(serRes), searchSignature(parRes); s != p {
			return nil, fmt.Errorf("%s: parallel search diverged from serial:\nserial:   %s\nparallel: %s",
				bench.Name, s, p)
		}
		if baseRes != nil {
			// Pruning only aborts losers, so the exhaustive baseline must
			// crown the same winner with the same training cycle count.
			if baseRes.Pipeline.Description != serRes.Pipeline.Description ||
				baseRes.TrainCycles != serRes.TrainCycles {
				return nil, fmt.Errorf("%s: baseline search picked %q (%d cycles), engine picked %q (%d cycles)",
					bench.Name, baseRes.Pipeline.Description, baseRes.TrainCycles,
					serRes.Pipeline.Description, serRes.TrainCycles)
			}
		}
		row := SearchRow{
			Name:            bench.Name,
			Enumerated:      serRes.Enumerated,
			Searched:        serRes.Searched,
			Deduped:         serRes.Deduped,
			Skipped:         len(serRes.Skips),
			BestStages:      serRes.Pipeline.NumStages(),
			BestCycles:      serRes.TrainCycles,
			BaselineMS:      baseMS,
			SerialMS:        serMS,
			ParallelMS:      parMS,
			Speedup:         serMS / parMS,
			ParSpeedup:      serMS / parMS,
			SerialCandsSec:  float64(serRes.Enumerated) / (serMS / 1e3),
			ParallelCandSec: float64(serRes.Enumerated) / (parMS / 1e3),
			TopKMS:          topMS,
			TopKRankMS:      float64(topRes.RankMillis),
			TopKPruned:      topRes.Pruned,
			TopKMeasured:    topRes.Searched - 1, // exclude the serial baseline
			TopKCycles:      topRes.TrainCycles,
			TopKSpeedup:     serMS / topMS,
			TopKAgrees: topRes.Pipeline.Description == serRes.Pipeline.Description &&
				topRes.TrainCycles == serRes.TrainCycles,
		}
		if baseMS > 0 {
			row.Speedup = baseMS / parMS
		}
		// The exhaustive baseline measures every candidate to completion, so
		// its points give the model the fairest grading; the engine's
		// branch-and-bound leg aborts losers early and grades on fewer.
		corrRes := serRes
		if baseRes != nil {
			corrRes = baseRes
		}
		row.RankCorrelation, row.RankPoints = rankCorrelation(corrRes)
		rep.Benchmarks = append(rep.Benchmarks, row)
		rep.TotalBaseMS += baseMS
		rep.TotalSerMS += serMS
		rep.TotalParMS += parMS
		rep.TotalTopKMS += topMS
		agree := "yes"
		if !row.TopKAgrees {
			agree = "NO"
		}
		cfg.printf("%-8s %6d %6d %6d %6d %11.1f %10.1f %10.1f %10.1f %7.2fx %7.2fx %6s %+5.2f\n",
			row.Name, row.Enumerated, row.Searched, row.Deduped, row.Skipped,
			row.BaselineMS, row.SerialMS, row.ParallelMS, row.TopKMS,
			row.Speedup, row.ParSpeedup, agree, row.RankCorrelation)
	}
	rep.ParSpeedup = rep.TotalSerMS / rep.TotalParMS
	rep.TopKSpeedup = rep.TotalSerMS / rep.TotalTopKMS
	rep.Speedup = rep.ParSpeedup
	if rep.TotalBaseMS > 0 {
		rep.Speedup = rep.TotalBaseMS / rep.TotalParMS
	}
	nCorr := 0
	for _, row := range rep.Benchmarks {
		if row.RankPoints >= 2 {
			rep.MeanRankCorrelation += row.RankCorrelation
			nCorr++
		}
	}
	if nCorr > 0 {
		rep.MeanRankCorrelation /= float64(nCorr)
	}
	cfg.printf("%-8s %43.1f %10.1f %10.1f %10.1f %7.2fx %7.2fx %6s %+5.2f\n",
		"total", rep.TotalBaseMS, rep.TotalSerMS, rep.TotalParMS, rep.TotalTopKMS,
		rep.Speedup, rep.ParSpeedup, "", rep.MeanRankCorrelation)
	cfg.printf("top-%d: %.2fx over serial engine (rank phase %.0f ms total); mean rank correlation %+.2f\n",
		topK, rep.TopKSpeedup, totalRankMS(rep), rep.MeanRankCorrelation)
	return rep, nil
}

// totalRankMS sums the top-K leg's static rank-phase time across the suite.
func totalRankMS(rep *SearchReport) float64 {
	var total float64
	for _, row := range rep.Benchmarks {
		total += row.TopKRankMS
	}
	return total
}

// SearchPerfJSON runs SearchPerf and writes the report to path.
func SearchPerfJSON(cfg Config, path string) error {
	rep, err := SearchPerf(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
