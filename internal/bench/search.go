package bench

// The search-engine benchmark: autotunes every benchmark in the suite three
// ways — the pre-engine baseline (serial, every candidate measured under the
// full BudgetFactor budget, the cost profile the search had before the
// branch-and-bound engine), the engine fully serial, and the engine with the
// configured worker parallelism. The two engine runs must pick byte-identical
// results (the determinism contract), and the baseline must agree on the
// winning pipeline. The report carries wall-clock time per leg, the headline
// speedup (baseline vs parallel engine: pruning + dedup + parallelism
// combined), and the engine-only parallel speedup. `phloembench -exp search`
// writes the report to BENCH_search.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"phloem/internal/core"
	"phloem/internal/workloads"
)

// SearchRow is one benchmark's search measurement across the three legs.
type SearchRow struct {
	Name string `json:"name"`
	// Enumerated counts candidate configurations walked (duplicates
	// included); Searched, Deduped, and Skipped split them up.
	Enumerated int `json:"enumerated"`
	Searched   int `json:"searched"`
	Deduped    int `json:"deduped"`
	Skipped    int `json:"skipped"`
	// BestStages/BestCycles identify the winning pipeline (identical
	// across all three legs by construction).
	BestStages int    `json:"best_stages"`
	BestCycles uint64 `json:"best_train_cycles"`
	// BaselineMS is the pre-engine search: serial, no candidate pruning
	// (0 when the baseline leg is skipped).
	BaselineMS float64 `json:"baseline_ms"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	// Speedup is baseline/parallel — the full win of the engine over the
	// search it replaced (serial/parallel when the baseline leg is skipped).
	Speedup float64 `json:"speedup"`
	// ParSpeedup is serial/parallel: the worker-pool contribution alone.
	ParSpeedup      float64 `json:"parallel_speedup"`
	SerialCandsSec  float64 `json:"candidates_per_sec_serial"`
	ParallelCandSec float64 `json:"candidates_per_sec_parallel"`
}

// SearchReport is the BENCH_search.json schema.
type SearchReport struct {
	Parallelism int         `json:"parallelism"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"numcpu"`
	Scale       string      `json:"scale"`
	Benchmarks  []SearchRow `json:"benchmarks"`
	TotalBaseMS float64     `json:"total_baseline_ms"`
	TotalSerMS  float64     `json:"total_serial_ms"`
	TotalParMS  float64     `json:"total_parallel_ms"`
	// Speedup is total baseline/parallel (serial/parallel when the baseline
	// leg is skipped); ParSpeedup is total serial/parallel.
	Speedup    float64 `json:"speedup"`
	ParSpeedup float64 `json:"parallel_speedup"`
}

// searchSignature summarizes everything observable about an autotune result;
// serial and parallel engine runs must agree on it exactly.
func searchSignature(res *core.Result) string {
	sig := fmt.Sprintf("best=%q stages=%d ras=%d cycles=%d searched=%d deduped=%d enum=%d",
		res.Pipeline.Description, res.Pipeline.NumStages(), len(res.Pipeline.RAs),
		res.TrainCycles, res.Searched, res.Deduped, res.Enumerated)
	for _, s := range res.Skips {
		sig += fmt.Sprintf("|skip phase=%d subset=%v reason=%s err=%v", s.Phase, s.Subset, s.Reason, s.Err)
	}
	return sig
}

// SearchPerf runs the baseline-vs-serial-vs-parallel autotune comparison over
// the whole suite and returns the report. Parallelism comes from cfg
// (0 = GOMAXPROCS); cfg.SkipSearchBaseline drops the (slow) baseline leg.
func SearchPerf(cfg Config) (*SearchReport, error) {
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	scale := "test"
	if cfg.Scale == workloads.ScaleFull {
		scale = "full"
	}
	rep := &SearchReport{Parallelism: par, GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU: runtime.NumCPU(), Scale: scale}
	cfg.printf("\nSearch engine: baseline (no pruning) vs serial vs parallel autotune (parallelism %d)\n", par)
	cfg.printf("%-8s %6s %6s %6s %6s %11s %10s %10s %8s %8s\n",
		"bench", "enum", "meas", "dedup", "skip", "baseline ms", "serial ms", "par ms", "speedup", "par-only")
	for _, bench := range workloads.Benchmarks(cfg.Scale) {
		prog, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench.Name, err)
		}
		run := func(parallelism int, exhaustive bool) (*core.Result, float64, error) {
			opt := autotuneOptions(cfg, bench)
			opt.Parallelism = parallelism
			opt.Exhaustive = exhaustive
			start := time.Now()
			res, err := core.Compile(prog, opt)
			if err != nil {
				return nil, 0, fmt.Errorf("%s (parallelism %d): %w", bench.Name, parallelism, err)
			}
			return res, float64(time.Since(start).Microseconds()) / 1e3, nil
		}
		var baseMS float64
		var baseRes *core.Result
		if !cfg.SkipSearchBaseline {
			if baseRes, baseMS, err = run(1, true); err != nil {
				return nil, err
			}
		}
		serRes, serMS, err := run(1, false)
		if err != nil {
			return nil, err
		}
		parRes, parMS, err := run(par, false)
		if err != nil {
			return nil, err
		}
		if s, p := searchSignature(serRes), searchSignature(parRes); s != p {
			return nil, fmt.Errorf("%s: parallel search diverged from serial:\nserial:   %s\nparallel: %s",
				bench.Name, s, p)
		}
		if baseRes != nil {
			// Pruning only aborts losers, so the exhaustive baseline must
			// crown the same winner with the same training cycle count.
			if baseRes.Pipeline.Description != serRes.Pipeline.Description ||
				baseRes.TrainCycles != serRes.TrainCycles {
				return nil, fmt.Errorf("%s: baseline search picked %q (%d cycles), engine picked %q (%d cycles)",
					bench.Name, baseRes.Pipeline.Description, baseRes.TrainCycles,
					serRes.Pipeline.Description, serRes.TrainCycles)
			}
		}
		row := SearchRow{
			Name:            bench.Name,
			Enumerated:      serRes.Enumerated,
			Searched:        serRes.Searched,
			Deduped:         serRes.Deduped,
			Skipped:         len(serRes.Skips),
			BestStages:      serRes.Pipeline.NumStages(),
			BestCycles:      serRes.TrainCycles,
			BaselineMS:      baseMS,
			SerialMS:        serMS,
			ParallelMS:      parMS,
			Speedup:         serMS / parMS,
			ParSpeedup:      serMS / parMS,
			SerialCandsSec:  float64(serRes.Enumerated) / (serMS / 1e3),
			ParallelCandSec: float64(serRes.Enumerated) / (parMS / 1e3),
		}
		if baseMS > 0 {
			row.Speedup = baseMS / parMS
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		rep.TotalBaseMS += baseMS
		rep.TotalSerMS += serMS
		rep.TotalParMS += parMS
		cfg.printf("%-8s %6d %6d %6d %6d %11.1f %10.1f %10.1f %7.2fx %7.2fx\n",
			row.Name, row.Enumerated, row.Searched, row.Deduped, row.Skipped,
			row.BaselineMS, row.SerialMS, row.ParallelMS, row.Speedup, row.ParSpeedup)
	}
	rep.ParSpeedup = rep.TotalSerMS / rep.TotalParMS
	rep.Speedup = rep.ParSpeedup
	if rep.TotalBaseMS > 0 {
		rep.Speedup = rep.TotalBaseMS / rep.TotalParMS
	}
	cfg.printf("%-8s %43.1f %10.1f %10.1f %7.2fx %7.2fx\n",
		"total", rep.TotalBaseMS, rep.TotalSerMS, rep.TotalParMS, rep.Speedup, rep.ParSpeedup)
	return rep, nil
}

// SearchPerfJSON runs SearchPerf and writes the report to path.
func SearchPerfJSON(cfg Config, path string) error {
	rep, err := SearchPerf(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
