package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// searchFixture builds a small two-benchmark search report.
func searchFixture() *SearchReport {
	return &SearchReport{
		Parallelism: 4, TopK: 5,
		HostInfo: HostInfo{GOMAXPROCS: 1, NumCPU: 1, GoVersion: "go1.24.0", Scale: "test"},
		Benchmarks: []SearchRow{
			{Name: "BFS", Enumerated: 15, Searched: 15, Deduped: 1, Skipped: 12,
				BestStages: 3, BestCycles: 70000, TopKPruned: 9, TopKMeasured: 5,
				TopKCycles: 70000, TopKAgrees: true},
			{Name: "CC", Enumerated: 15, Searched: 15, Deduped: 1, Skipped: 12,
				BestStages: 3, BestCycles: 90000, TopKPruned: 9, TopKMeasured: 5,
				TopKCycles: 90000, TopKAgrees: true},
		},
	}
}

// commoptFixture builds a one-benchmark commopt report.
func commoptFixture() *CommOptReport {
	return &CommOptReport{
		HostInfo:   HostInfo{GOMAXPROCS: 1, NumCPU: 1, GoVersion: "go1.24.0", Scale: "test"},
		QueueDepth: 24, ImprovedFamilies: 1,
		Benchmarks: []CommOptRow{
			{Name: "BFS", Input: "road-usa", Queues: 6, Improved: true,
				Legs: []CommOptLeg{
					{Name: "default", Cycles: 100000, FullStalls: 500},
					{Name: "both", Cycles: 95000, FullStalls: 10, Assigned: 3, FanOuts: 1},
				}},
		},
	}
}

// nativeFixture builds a small native report: one seed-scale row plus a
// two-size sweep where the simulator DNFs at the larger size.
func nativeFixture() *NativeReport {
	return &NativeReport{
		HostInfo:         HostInfo{GOMAXPROCS: 1, NumCPU: 1, GoVersion: "go1.24.0", Scale: "test"},
		Note:             "fixture",
		SweepCycleBudget: NativeSweepCycleBudget,
		SimDNF:           1,
		MinSpeedup:       6.5, GeomeanSpeedup: 8.1,
		Benchmarks: []NativeRow{
			{Name: "BFS", Input: "road-usa", Stages: 4, Queues: 6,
				Cycles: 100000, Instructions: 500000,
				SimWallMS: 130, NativeWallMS: 20, Speedup: 6.5},
		},
		Sweep: []NativeSweepRow{
			{Input: "grid-50x50", Vertices: 2500, Edges: 5000, SimOK: true,
				SimStatus: "ok", SimCycles: 100000, Instructions: 500000,
				SimWallMS: 130, NativeWallMS: 20},
			{Input: "grid-400x400", Vertices: 160000, Edges: 320000,
				SimStatus: "cycle-budget", Instructions: 32000000, NativeWallMS: 900},
		},
	}
}

// TestDiffNative: wall/speedup columns are never compared; cycles and
// instruction counts are; losing sweep reach (sim_ok true -> false) and a
// DNF-count change regress.
func TestDiffNative(t *testing.T) {
	if r := Regressions(DiffNativeReports(nativeFixture(), nativeFixture(), DefaultDiffOptions())); len(r) != 0 {
		t.Errorf("identical native reports regressed: %+v", r)
	}

	// Wall-time noise must be invisible: triple every wall column.
	noisy := nativeFixture()
	noisy.Benchmarks[0].SimWallMS *= 3
	noisy.Benchmarks[0].NativeWallMS *= 3
	noisy.Benchmarks[0].Speedup = 1
	noisy.MinSpeedup, noisy.GeomeanSpeedup = 1, 1
	noisy.Sweep[0].NativeWallMS *= 3
	f := DiffNativeReports(nativeFixture(), noisy, DefaultDiffOptions())
	for _, x := range f {
		if x.Changed {
			t.Errorf("wall-only change surfaced as a compared metric: %+v", x)
		}
	}

	worse := nativeFixture()
	worse.Benchmarks[0].Instructions = 800000 // +60%
	worse.Sweep[0].SimOK = false
	worse.Sweep[0].SimStatus = "cycle-budget"
	worse.SimDNF = 2
	r := Regressions(DiffNativeReports(nativeFixture(), worse, DefaultDiffOptions()))
	var metrics []string
	for _, x := range r {
		metrics = append(metrics, x.Metric)
	}
	got := strings.Join(metrics, ",")
	for _, want := range []string{"instructions", "sim_ok", "sim_dnf"} {
		if !strings.Contains(got, want) {
			t.Errorf("want %q regression, got %v", want, r)
		}
	}
}

func TestDiffSearchIdentical(t *testing.T) {
	f := DiffSearchReports(searchFixture(), searchFixture(), DefaultDiffOptions())
	if len(f) == 0 {
		t.Fatal("no metrics compared")
	}
	for _, x := range f {
		if x.Changed || x.Regression {
			t.Errorf("identical reports flagged %+v", x)
		}
	}
}

// TestDiffSearchInjectedRegression is the gate's core contract: a cycles
// regression beyond the threshold must be flagged, one within it must not,
// and an improvement never is.
func TestDiffSearchInjectedRegression(t *testing.T) {
	opt := DiffOptions{CyclesTolPct: 10}
	within := searchFixture()
	within.Benchmarks[0].BestCycles = 75000 // +7.1%, inside 10%
	if r := Regressions(DiffSearchReports(searchFixture(), within, opt)); len(r) != 0 {
		t.Errorf("+7%% cycles within 10%% tolerance flagged as regression: %+v", r)
	}

	beyond := searchFixture()
	beyond.Benchmarks[0].BestCycles = 80000 // +14.3%
	r := Regressions(DiffSearchReports(searchFixture(), beyond, opt))
	if len(r) != 1 || r[0].Metric != "best_train_cycles" || r[0].Bench != "BFS" {
		t.Fatalf("+14%% cycles should be exactly one regression, got %+v", r)
	}

	improved := searchFixture()
	improved.Benchmarks[1].BestCycles = 50000
	if r := Regressions(DiffSearchReports(searchFixture(), improved, opt)); len(r) != 0 {
		t.Errorf("cycle improvement flagged as regression: %+v", r)
	}
}

func TestDiffSearchCountDrift(t *testing.T) {
	// Counts are exact by default: any drift regresses.
	drift := searchFixture()
	drift.Benchmarks[0].Enumerated = 16
	r := Regressions(DiffSearchReports(searchFixture(), drift, DefaultDiffOptions()))
	if len(r) != 1 || r[0].Metric != "enumerated" {
		t.Fatalf("enumerated drift should regress, got %+v", r)
	}
	// ...unless CountTol allows it.
	opt := DiffOptions{CyclesTolPct: 10, CountTol: 2}
	if r := Regressions(DiffSearchReports(searchFixture(), drift, opt)); len(r) != 0 {
		t.Errorf("drift of 1 within CountTol 2 flagged: %+v", r)
	}
}

func TestDiffSearchStructuralAndFlags(t *testing.T) {
	// topk_agrees true -> false is a regression; a missing benchmark is too.
	worse := searchFixture()
	worse.Benchmarks[0].TopKAgrees = false
	worse.Benchmarks = worse.Benchmarks[:1]
	r := Regressions(DiffSearchReports(searchFixture(), worse, DefaultDiffOptions()))
	var metrics []string
	for _, x := range r {
		metrics = append(metrics, x.Metric)
	}
	got := strings.Join(metrics, ",")
	if !strings.Contains(got, "topk_agrees") || !strings.Contains(got, "structure") {
		t.Errorf("want topk_agrees + structure regressions, got %v", r)
	}
	// Scale mismatch short-circuits: nothing is comparable.
	full := searchFixture()
	full.Scale = "full"
	f := DiffSearchReports(searchFixture(), full, DefaultDiffOptions())
	if len(f) != 1 || !f[0].Regression || !strings.Contains(f[0].Note, "scale mismatch") {
		t.Errorf("scale mismatch should be a single structural regression, got %+v", f)
	}
}

func TestDiffCommOpt(t *testing.T) {
	if r := Regressions(DiffCommOptReports(commoptFixture(), commoptFixture(), DefaultDiffOptions())); len(r) != 0 {
		t.Errorf("identical commopt reports regressed: %+v", r)
	}
	worse := commoptFixture()
	worse.Benchmarks[0].Legs[1].Cycles = 120000  // +26% on the "both" leg
	worse.Benchmarks[0].Legs[1].FullStalls = 400 // was 10: +3900%
	r := Regressions(DiffCommOptReports(commoptFixture(), worse, DefaultDiffOptions()))
	if len(r) != 2 {
		t.Fatalf("want 2 regressions (both.cycles, both.queue_full_stalls), got %+v", r)
	}
	for _, x := range r {
		if !strings.HasPrefix(x.Metric, "both.") {
			t.Errorf("regression on unexpected metric %q", x.Metric)
		}
	}
}

// TestLoadReportSniffing: the loader detects the schema from the benchmark
// rows, so benchdiff needs no -kind flag.
func TestLoadReportSniffing(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, v any) string {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	sp := write("search.json", searchFixture())
	cp := write("commopt.json", commoptFixture())
	np := write("native.json", nativeFixture())
	if r, err := LoadReport(sp); err != nil || r.Search == nil || r.CommOpt != nil || r.Native != nil {
		t.Errorf("search.json sniffed wrong: %+v %v", r, err)
	}
	if r, err := LoadReport(cp); err != nil || r.CommOpt == nil || r.Search != nil || r.Native != nil {
		t.Errorf("commopt.json sniffed wrong: %+v %v", r, err)
	}
	if r, err := LoadReport(np); err != nil || r.Native == nil || r.Search != nil || r.CommOpt != nil {
		t.Errorf("native.json sniffed wrong: %+v %v", r, err)
	}
	junk := write("junk.json", map[string]any{"benchmarks": []map[string]any{{"name": "x"}}})
	if _, err := LoadReport(junk); err == nil {
		t.Error("unrecognizable report should error")
	}

	// DiffReportFiles: same kind diffs, mixed kinds error.
	var buf bytes.Buffer
	if _, err := DiffReportFiles(&buf, sp, sp, DefaultDiffOptions()); err != nil {
		t.Errorf("same-kind diff: %v", err)
	}
	if !strings.Contains(buf.String(), "ok: no metric changes") {
		t.Errorf("self-diff should render clean:\n%s", buf.String())
	}
	buf.Reset()
	if _, err := DiffReportFiles(&buf, np, np, DefaultDiffOptions()); err != nil {
		t.Errorf("native self-diff: %v", err)
	}
	if !strings.Contains(buf.String(), "ok: no metric changes") {
		t.Errorf("native self-diff should render clean:\n%s", buf.String())
	}
	if _, err := DiffReportFiles(&buf, sp, cp, DefaultDiffOptions()); err == nil {
		t.Error("mixed-kind diff should error")
	}
	if _, err := DiffReportFiles(&buf, np, sp, DefaultDiffOptions()); err == nil {
		t.Error("native-vs-search diff should error")
	}
}

// TestHostInfoHeader: both report schemas flatten the shared HostInfo block
// into their JSON headers.
func TestHostInfoHeader(t *testing.T) {
	for name, v := range map[string]any{"search": searchFixture(), "commopt": commoptFixture(), "native": nativeFixture()} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"gomaxprocs", "numcpu", "go_version", "scale"} {
			if _, ok := m[key]; !ok {
				t.Errorf("%s report header missing %q: %s", name, key, data)
			}
		}
		if _, ok := m["host"]; ok {
			t.Errorf("%s report did not flatten HostInfo: %s", name, data)
		}
	}
}

func TestRenderDiffMarksRegressions(t *testing.T) {
	var buf bytes.Buffer
	beyond := searchFixture()
	beyond.Benchmarks[0].BestCycles = 80000
	RenderDiff(&buf, "t", DiffSearchReports(searchFixture(), beyond, DefaultDiffOptions()))
	out := buf.String()
	if !strings.Contains(out, "! BFS.best_train_cycles") || !strings.Contains(out, "REGRESSION: 1 metric(s)") {
		t.Errorf("render missing regression marks:\n%s", out)
	}
}
