//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; long
// simulation sweeps scale themselves down under its ~10x slowdown.
const raceEnabled = true
