package bench

import (
	"fmt"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// Ablations runs the design-choice studies DESIGN.md calls out beyond the
// paper's figures: queue-depth sweep, RA outstanding-window sweep, handler
// versus explicit is_control checks, and the cost model's frequency
// weighting (via static versus ranked-only selection).
func Ablations(cfg Config) error {
	bench, err := workloads.ByName(cfg.Scale, "BFS")
	if err != nil {
		return err
	}
	in := bench.Test[len(bench.Test)-1] // road network
	serialProg, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		return err
	}
	ser, err := runPipe(pipeline.NewSerial(serialProg), in.Bind(), in, 1, true)
	if err != nil {
		return err
	}
	full, err := core.Compile(serialProg, core.DefaultOptions())
	if err != nil {
		return err
	}

	runWith := func(p *pipeline.Pipeline, mc arch.Config) (uint64, error) {
		inst, err := pipeline.Instantiate(p, mc, in.Bind())
		if err != nil {
			return 0, err
		}
		st, err := inst.Run()
		if err != nil {
			return 0, err
		}
		if err := in.Verify(inst); err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}

	cfg.printf("\nAblation: queue depth (BFS, full pipeline; paper default 24)\n")
	for _, depth := range []int{4, 8, 16, 24, 64} {
		mc := arch.DefaultConfig(1)
		mc.QueueDepth = depth
		cycles, err := runWith(full.Pipeline, mc)
		if err != nil {
			return fmt.Errorf("queue depth %d: %w", depth, err)
		}
		cfg.printf("  depth %-3d %10d cycles  speedup %5.2fx\n",
			depth, cycles, float64(ser.Cycles)/float64(cycles))
	}

	cfg.printf("\nAblation: RA outstanding requests (BFS, full pipeline)\n")
	for _, w := range []int{2, 4, 8, 16, 32} {
		mc := arch.DefaultConfig(1)
		mc.RAOutstanding = w
		cycles, err := runWith(full.Pipeline, mc)
		if err != nil {
			return fmt.Errorf("RA window %d: %w", w, err)
		}
		cfg.printf("  window %-3d %9d cycles  speedup %5.2fx\n",
			w, cycles, float64(ser.Cycles)/float64(cycles))
	}

	cfg.printf("\nAblation: control-value handling (BFS)\n")
	for _, s := range []struct {
		name string
		opt  passes.Options
	}{
		{"is_control() checks", passes.Options{Recompute: true, RAs: true, CtrlValues: true, InterstageDCE: true}},
		{"hardware handlers", passes.Default()},
	} {
		opt := core.DefaultOptions()
		opt.EnableAblation = true
		opt.Passes = s.opt
		res, err := core.Compile(serialProg, opt)
		if err != nil {
			return err
		}
		cycles, err := runWith(res.Pipeline, arch.DefaultConfig(1))
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		cfg.printf("  %-22s %10d cycles  speedup %5.2fx\n",
			s.name, cycles, float64(ser.Cycles)/float64(cycles))
	}

	cfg.printf("\nAblation: MSHR-limited core miss parallelism (serial BFS)\n")
	for _, m := range []int{4, 10, 16, 0} {
		mc := arch.DefaultConfig(1)
		mc.MSHRs = m
		cycles, err := runWith(pipeline.NewSerial(serialProg), mc)
		if err != nil {
			return err
		}
		label := fmt.Sprint(m)
		if m == 0 {
			label = "inf"
		}
		cfg.printf("  MSHRs %-4s %10d cycles\n", label, cycles)
	}
	return nil
}
