package bench

import (
	"fmt"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/fault"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// Chaos sweeps every benchmark's compiled pipeline across the deterministic
// fault-plan suite (named plans plus `seeds` seeded ones). Each plan perturbs
// only timing — queue capacities, RA windows, memory/control latencies, SMT
// scheduling — so every run must still match the Go reference bit-for-bit;
// any divergence, deadlock, or hang is an error. This is the runtime
// counterpart of the static verifier: it demonstrates the decoupled queue
// and control-value protocols tolerate adversarial timing.
func Chaos(cfg Config, seeds int) error {
	plans := fault.Suite(seeds)
	cfg.printf("\nChaos sweep: %d fault plans, results must stay bit-identical\n", len(plans))
	for _, p := range plans {
		cfg.printf("  %-14s %s\n", p.Name, p.Desc)
	}
	for _, bench := range workloads.Benchmarks(cfg.Scale) {
		serialProg, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return fmt.Errorf("%s: %w", bench.Name, err)
		}
		res, err := core.Compile(serialProg, core.DefaultOptions())
		if err != nil {
			return fmt.Errorf("%s: %w", bench.Name, err)
		}
		in := bench.Train[0]
		base, err := chaosRun(res.Pipeline, in, fault.Plan{})
		if err != nil {
			return fmt.Errorf("%s baseline: %w", bench.Name, err)
		}
		worst := base
		for _, plan := range plans {
			cycles, err := chaosRun(res.Pipeline, in, plan)
			if err != nil {
				return fmt.Errorf("%s under %s: %w", bench.Name, plan, err)
			}
			if cycles > worst {
				worst = cycles
			}
			if cfg.Verbose {
				cfg.printf("  %-50s %10d cycles (%.2fx base)\n",
					plan, cycles, float64(cycles)/float64(base))
			}
		}
		cfg.printf("%-6s on %-10s ok: base=%d worst=%d (%.2fx slowdown), all results identical\n",
			bench.Name, in.Name, base, worst, float64(worst)/float64(base))
	}
	return nil
}

// chaosRun executes one pipeline under one fault plan and verifies the
// result against the Go reference.
func chaosRun(pipe *pipeline.Pipeline, in *workloads.Input, plan fault.Plan) (uint64, error) {
	inst, err := pipeline.Instantiate(pipe, arch.DefaultConfig(1), in.Bind())
	if err != nil {
		return 0, err
	}
	plan.Apply(inst.Machine)
	st, err := inst.Run()
	if err != nil {
		return 0, err
	}
	if err := in.Verify(inst); err != nil {
		return 0, fmt.Errorf("%s: results diverge from Go reference: %w", plan, err)
	}
	return st.Cycles, nil
}
