package bench

import (
	"runtime"

	"phloem/internal/workloads"
)

// HostInfo is the shared metadata block every committed BENCH_*.json report
// carries, so a reader (or the benchdiff regression gate) can tell what
// environment and input scale produced the numbers. Simulator cycle counts
// are host-independent; the host fields contextualize the wall-time columns,
// which the regression gate never compares.
type HostInfo struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoVersion  string `json:"go_version"`
	Scale      string `json:"scale"`
}

// Host captures the current process environment and the report's input
// scale.
func Host(scale workloads.Scale) HostInfo {
	s := "test"
	if scale == workloads.ScaleFull {
		s = "full"
	}
	return HostInfo{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Scale:      s,
	}
}

// ParseScale maps a report's scale string back to the workloads scale.
func ParseScale(s string) workloads.Scale {
	if s == "full" {
		return workloads.ScaleFull
	}
	return workloads.ScaleTest
}
