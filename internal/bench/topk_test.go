package bench

// Cross-benchmark validation of the static cost model (internal/costmodel)
// and the Options.TopK rank-and-prune path: for every benchmark family the
// top-5 search must select the same winning pipeline as the unpruned
// search, while simulating at most half of the suite's unique candidates in
// aggregate, and the model's predicted cycles must correlate positively
// with simulator-measured cycles across the suite.

import (
	"fmt"
	"testing"

	"phloem/internal/core"
	"phloem/internal/costmodel"
	"phloem/internal/workloads"
)

// autotuneWith runs one benchmark's autotune with a single training input.
func autotuneWith(t *testing.T, bench *workloads.Benchmark, topk int) *core.Result {
	t.Helper()
	prog, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	opt := autotuneOptions(testConfig(), bench)
	opt.Training = opt.Training[:1]
	opt.Parallelism = 1
	opt.TopK = topk
	res, err := core.Compile(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTopKSelectsSameWinnerAllBenchmarks(t *testing.T) {
	const topk = 5
	totalUnique, totalMeasured := 0, 0
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			full := autotuneWith(t, bench, 0)
			top := autotuneWith(t, bench, topk)
			if got, want := top.Pipeline.Description, full.Pipeline.Description; got != want {
				t.Errorf("top-%d selected %q (%d cycles), unpruned search selected %q (%d cycles)",
					topk, got, top.TrainCycles, want, full.TrainCycles)
			}
			if top.TrainCycles != full.TrainCycles {
				t.Errorf("top-%d winner trains at %d cycles, unpruned winner at %d",
					topk, top.TrainCycles, full.TrainCycles)
			}
			unique := top.Enumerated - top.Deduped
			measured := top.Searched - 1 // exclude the serial baseline
			totalUnique += unique
			totalMeasured += measured
			t.Logf("unique=%d measured=%d pruned=%d winner=%q",
				unique, measured, top.Pruned, top.Pipeline.Description)
		})
	}
	if totalMeasured*2 > totalUnique {
		t.Errorf("top-%d simulated %d of %d unique candidates across the suite; want at most half",
			topk, totalMeasured, totalUnique)
	}
}

// measuredSignature renders everything about an autotune result except the
// predicted rank: a TopK >= #unique run still executes the rank phase (which
// stamps PredictedRank on every point), while a TopK=0 run prices candidates
// lazily and leaves ranks 0 — but both must measure identically.
func measuredSignature(res *core.Result) string {
	sig := fmt.Sprintf("best=%q cycles=%d searched=%d deduped=%d enum=%d pruned=%d",
		res.Pipeline.Description, res.TrainCycles, res.Searched, res.Deduped,
		res.Enumerated, res.Pruned)
	for _, s := range res.Skips {
		sig += fmt.Sprintf("|skip phase=%d subset=%v reason=%s err=%v", s.Phase, s.Subset, s.Reason, s.Err)
	}
	for _, pt := range res.Points {
		sig += fmt.Sprintf("|pt subset=%v stages=%d cycles=%d pred=%d skipped=%v",
			pt.Subset, pt.TotalStages, pt.Cycles, pt.PredictedCycles, pt.Skip != nil)
	}
	return sig
}

// TestTopKCoveringAllCandidatesMatchesExhaustive pins the escape hatch: a K
// at least as large as the unique candidate count must prune nothing and
// reproduce the unpruned search bit for bit (winner, cycles, skips, and
// per-candidate measurements).
func TestTopKCoveringAllCandidatesMatchesExhaustive(t *testing.T) {
	for _, name := range []string{"BFS", "PRD"} {
		bench, err := workloads.ByName(workloads.ScaleTest, name)
		if err != nil {
			t.Fatal(err)
		}
		full := autotuneWith(t, bench, 0)
		unique := full.Enumerated - full.Deduped
		wide := autotuneWith(t, bench, unique)
		if wide.Pruned != 0 {
			t.Errorf("%s: top-%d (covering all %d unique candidates) pruned %d",
				name, unique, unique, wide.Pruned)
		}
		if got, want := measuredSignature(wide), measuredSignature(full); got != want {
			t.Errorf("%s: top-%d diverged from exhaustive:\nexhaustive: %s\ntop-K:      %s",
				name, unique, want, got)
		}
	}
}

// TestTopKDeterministicAcrossParallelism pins that rank-and-prune decisions
// (made serially before the worker pool) keep the search deterministic at
// every parallelism level, including with aggressive pruning in effect.
func TestTopKDeterministicAcrossParallelism(t *testing.T) {
	const topk = 2
	for _, name := range []string{"BFS", "PRD"} {
		bench, err := workloads.ByName(workloads.ScaleTest, name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			t.Fatal(err)
		}
		run := func(par int) string {
			opt := autotuneOptions(testConfig(), bench)
			opt.Training = opt.Training[:1]
			opt.Parallelism = par
			opt.TopK = topk
			res, err := core.Compile(prog, opt)
			if err != nil {
				t.Fatalf("%s (parallelism %d): %v", name, par, err)
			}
			return searchSignature(res)
		}
		want := run(1)
		for _, par := range []int{4, 0} {
			if got := run(par); got != want {
				t.Errorf("%s: parallelism %d diverged:\nserial:   %s\nparallel: %s",
					name, par, want, got)
			}
		}
	}
}

// TestPredictionRankCorrelation measures how well the static predictions
// order the candidates the simulator actually measured. Individual families
// have as few as 2-3 measured (non-budget-aborted) points, so the assertion
// is aggregate: the suite-wide mean Spearman correlation must be positive.
func TestPredictionRankCorrelation(t *testing.T) {
	var sum float64
	n := 0
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		prog, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			t.Fatal(err)
		}
		opt := autotuneOptions(testConfig(), bench)
		opt.Training = opt.Training[:1]
		opt.Parallelism = 1
		points, err := core.Search(prog, opt)
		if err != nil {
			t.Fatal(err)
		}
		var pred, meas []float64
		for _, pt := range points {
			if pt.Skip == nil && pt.PredictedCycles > 0 {
				pred = append(pred, float64(pt.PredictedCycles))
				meas = append(meas, float64(pt.Cycles))
			}
		}
		corr := costmodel.SpearmanRank(pred, meas)
		t.Logf("%s: %d measured points, spearman %.2f", bench.Name, len(pred), corr)
		if len(pred) >= 2 {
			sum += corr
			n++
		}
	}
	if n == 0 {
		t.Fatal("no benchmark yielded 2+ measured points")
	}
	if mean := sum / float64(n); mean <= 0 {
		t.Errorf("mean Spearman correlation %.2f across %d benchmarks; want > 0", mean, n)
	}
}
