package bench

// The queue-communication optimization benchmark: every suite benchmark is
// compiled once per leg and simulated on its largest test input under four
// commopt configurations — the uniform machine default (every queue at the
// architectural capacity), inferred per-queue capacities only, the multicast
// fan-out rewrite only, and both together. Each leg reports total cycles and
// queue-full stalls with deltas against the default leg, plus how many
// capacities the pass assigned and how many fan-out edges it created.
// Functional results are verified on every leg, so the report doubles as an
// end-to-end correctness check of the rewrites. `phloembench -exp commopt`
// writes the report to BENCH_commopt.json.

import (
	"encoding/json"
	"fmt"
	"os"

	"phloem/internal/arch"
	"phloem/internal/commopt"
	"phloem/internal/core"
	"phloem/internal/workloads"
)

// CommOptLeg is one configuration's measurement for one benchmark.
type CommOptLeg struct {
	Name   string `json:"name"` // default|caps|multicast|both
	Cycles uint64 `json:"cycles"`
	// FullStalls counts producer cycles lost to a full queue.
	FullStalls uint64 `json:"queue_full_stalls"`
	// CyclesPct is the cycle delta vs the default leg in percent
	// (negative = faster).
	CyclesPct float64 `json:"cycles_pct"`
	// FullDelta is the queue-full-stall delta vs the default leg.
	FullDelta int64 `json:"full_stalls_delta"`
	// Assigned counts queues whose capacity the pass set; FanOuts counts
	// fan-out edges the multicast rewrite created.
	Assigned int `json:"assigned"`
	FanOuts  int `json:"fanouts"`
}

// CommOptRow is one benchmark's four-leg comparison.
type CommOptRow struct {
	Name   string       `json:"name"`
	Input  string       `json:"input"`
	Queues int          `json:"queues"`
	Legs   []CommOptLeg `json:"legs"`
	// Improved reports whether any non-default leg beat the default on
	// cycles or queue-full stalls without regressing the other.
	Improved bool `json:"improved"`
}

// CommOptReport is the BENCH_commopt.json schema.
type CommOptReport struct {
	// HostInfo is the shared environment/scale metadata block (flattened
	// into the JSON header, same keys as BENCH_search.json).
	HostInfo
	QueueDepth int          `json:"default_queue_depth"`
	Benchmarks []CommOptRow `json:"benchmarks"`
	// ImprovedFamilies counts benchmarks where an optimized leg improved on
	// the uniform default.
	ImprovedFamilies int `json:"improved_families"`
}

// commOptLegs enumerates the four configurations in report order.
var commOptLegs = []struct {
	name string
	opt  commopt.Options
}{
	{"default", commopt.Options{}},
	{"caps", commopt.Options{Capacities: true}},
	{"multicast", commopt.Options{Multicast: true}},
	{"both", commopt.Options{Capacities: true, Multicast: true}},
}

// CommOptPerf runs the four-leg commopt comparison over the whole suite and
// returns the report.
func CommOptPerf(cfg Config) (*CommOptReport, error) {
	rep := &CommOptReport{HostInfo: Host(cfg.Scale), QueueDepth: arch.DefaultConfig(1).QueueDepth}
	cfg.printf("\nQueue-communication optimization: uniform default vs inferred capacities vs multicast fan-out\n")
	cfg.printf("%-8s %-10s %12s %9s %8s %10s %9s %6s\n",
		"bench", "leg", "cycles", "delta", "full", "delta", "assigned", "fanout")
	for _, bench := range workloads.Benchmarks(cfg.Scale) {
		prog, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", bench.Name, err)
		}
		in := bench.Test[len(bench.Test)-1]
		row := CommOptRow{Name: bench.Name, Input: in.Name}
		var base CommOptLeg
		for i, leg := range commOptLegs {
			res, err := core.Compile(prog, core.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", bench.Name, err)
			}
			plan, err := commopt.Apply(res.Pipeline, arch.DefaultConfig(1), leg.opt)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", bench.Name, leg.name, err)
			}
			st, err := runPipe(res.Pipeline, in.Bind(), in, 1, true)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", bench.Name, leg.name, err)
			}
			l := CommOptLeg{Name: leg.name, Cycles: st.Cycles, FullStalls: st.QueueFullStalls,
				FanOuts: len(plan.FanOuts)}
			for _, q := range plan.Queues {
				if q.Assigned && leg.opt.Capacities {
					l.Assigned++
				}
			}
			if i == 0 {
				base = l
				row.Queues = len(plan.Queues)
			}
			l.CyclesPct = 100 * (float64(l.Cycles) - float64(base.Cycles)) / float64(base.Cycles)
			l.FullDelta = int64(l.FullStalls) - int64(base.FullStalls)
			row.Legs = append(row.Legs, l)
			cfg.printf("%-8s %-10s %12d %+8.3f%% %8d %+10d %9d %6d\n",
				row.Name, l.Name, l.Cycles, l.CyclesPct, l.FullStalls, l.FullDelta, l.Assigned, l.FanOuts)
		}
		for _, l := range row.Legs[1:] {
			better := l.Cycles < base.Cycles || l.FullStalls < base.FullStalls
			worse := l.Cycles > base.Cycles && l.FullStalls > base.FullStalls
			if better && !worse {
				row.Improved = true
			}
		}
		if row.Improved {
			rep.ImprovedFamilies++
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
	}
	cfg.printf("improved families: %d/%d (an optimized leg beat the uniform default on cycles or full stalls)\n",
		rep.ImprovedFamilies, len(rep.Benchmarks))
	return rep, nil
}

// CommOptJSON runs CommOptPerf and writes the report to path.
func CommOptJSON(cfg Config, path string) error {
	rep, err := CommOptPerf(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
