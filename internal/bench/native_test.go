package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNativePerfSmoke runs the experiment end to end at reduced scope (one
// family, tiny sweep) and checks the report's internal invariants: the
// differential contract held on every row (NativePerf fails otherwise),
// wall columns are populated, and the report self-diffs clean through the
// JSON roundtrip — the same path `phloembench -benchdiff` takes.
func TestNativePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the timing simulator")
	}
	defer func(s []int) { nativeSweepSides = s }(nativeSweepSides)
	nativeSweepSides = []int{16, 24}

	var out bytes.Buffer
	cfg := Config{Scale: 0, Out: &out}
	rep, err := NativePerf(cfg, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BFS" {
		t.Fatalf("families filter ignored: %+v", rep.Benchmarks)
	}
	r := rep.Benchmarks[0]
	if r.Instructions == 0 || r.Cycles == 0 || r.SimWallMS <= 0 || r.NativeWallMS <= 0 {
		t.Errorf("degenerate seed row: %+v", r)
	}
	if r.Speedup <= 0 {
		t.Errorf("speedup not computed: %+v", r)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("want 2 sweep rows, got %+v", rep.Sweep)
	}
	for _, s := range rep.Sweep {
		if s.Instructions == 0 || s.NativeWallMS <= 0 {
			t.Errorf("degenerate sweep row: %+v", s)
		}
		// Tiny grids finish well inside the budget.
		if !s.SimOK || s.SimStatus != "ok" {
			t.Errorf("tiny sweep size DNFed: %+v", s)
		}
	}
	if rep.SimDNF != 0 {
		t.Errorf("SimDNF = %d on tiny sweep", rep.SimDNF)
	}
	if !strings.Contains(rep.Note, "NOT parallel speedup") {
		t.Errorf("report note lost the single-core disclaimer: %q", rep.Note)
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Errorf("no human-readable table rendered:\n%s", out.String())
	}

	// JSON roundtrip + self-diff must be clean.
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back NativeReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if r := Regressions(DiffNativeReports(rep, &back, DefaultDiffOptions())); len(r) != 0 {
		t.Errorf("roundtripped report regressed against itself: %+v", r)
	}
}
