package bench

import (
	"fmt"

	"phloem/internal/core"
	"phloem/internal/telemetry"
	"phloem/internal/workloads"
)

// Telemetry runs each benchmark's static-flow pipeline on its largest test
// input with a telemetry collector installed and prints a per-benchmark
// observability summary: where the cycles went, the hottest stall site, and
// the busiest queue. With Verbose set it also prints each benchmark's top-5
// hot-lines report. The probe never changes timing, so the cycle counts
// match an unobserved run exactly.
func Telemetry(cfg Config) error {
	cfg.printf("--- telemetry: per-benchmark pipeline observability (static flow)\n")
	cfg.printf("%-6s %-10s %10s %7s %6s  %-30s %s\n",
		"bench", "input", "cycles", "queue%", "hfires", "hottest stall site", "busiest queue (avg occupancy)")
	for _, b := range workloads.Benchmarks(cfg.Scale) {
		serialProg, err := workloads.CompileSerial(b.SerialSource)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		res, err := core.Compile(serialProg, core.DefaultOptions())
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		in := b.Test[len(b.Test)-1]
		col := telemetry.NewCollector()
		st, err := runPipeBudget(res.Pipeline, in.Bind(), in, 1, true, core.Budget{Probe: col})
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}

		prof := col.Profile()
		hottest := "(no stalls)"
		if len(prof.Lines) > 0 && prof.Lines[0].Stalls() > 0 {
			l := prof.Lines[0]
			where := fmt.Sprintf("line %d", l.Line)
			if l.Line == 0 {
				where = "generated"
			}
			hottest = fmt.Sprintf("%s: %d cycles", where, l.Stalls())
		}

		// With no sampling interval the series has exactly one row covering
		// the whole run, so each queue's Avg is its run-wide time-weighted
		// mean occupancy.
		s := col.Series()
		busiest := "(no queues)"
		if len(s.Rows) > 0 && len(s.Queues) > 0 {
			row := s.Rows[len(s.Rows)-1]
			best := 0
			for q := range row.Queues {
				if row.Queues[q].Avg > row.Queues[best].Avg {
					best = q
				}
			}
			busiest = fmt.Sprintf("%s avg=%.1f max=%d", s.Queues[best],
				row.Queues[best].Avg, row.Queues[best].Max)
		}

		tb := st.TotalBreakdown()
		qpct := 0.0
		if t := tb.Total(); t > 0 {
			qpct = 100 * float64(tb.Queue) / float64(t)
		}
		cfg.printf("%-6s %-10s %10d %6.1f%% %6d  %-30s %s\n",
			b.Name, in.Name, st.Cycles, qpct, st.HandlerFires, hottest, busiest)
		if cfg.Verbose {
			cfg.printf("%s", prof.Render(5, b.SerialSource))
		}
	}
	return nil
}
